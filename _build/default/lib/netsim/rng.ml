type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for simulation purposes: modulo bias is negligible for
     the small bounds used here, but we mask to 62 bits to stay positive. *)
  Int64.to_int (Int64.logand (bits64 t) 0x3FFFFFFFFFFFFFFFL) mod n

let float t x =
  if x < 0.0 then invalid_arg "Rng.float: bound must be non-negative";
  let u = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  u /. 9007199254740992.0 *. x

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t ~p = float t 1.0 < p

let exponential t ~mean =
  let u = float t 1.0 in
  (* Avoid log 0. *)
  let u = if u <= 0.0 then 1e-300 else u in
  -.mean *. log u

let uniform t ~lo ~hi = lo +. float t (hi -. lo)

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
