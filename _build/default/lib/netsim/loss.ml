type kind =
  | None_
  | Bernoulli of float
  | Gilbert of {
      p_good_to_bad : float;
      p_bad_to_good : float;
      loss_good : float;
      loss_bad : float;
      mutable bad : bool;
    }
  | Every of { n : int; mutable count : int }

type t = kind

let none () = None_

let check_p name p =
  if p < 0.0 || p > 1.0 then
    invalid_arg (Printf.sprintf "Loss: %s=%g not a probability" name p)

let bernoulli ~p =
  check_p "p" p;
  Bernoulli p

let gilbert ~p_good_to_bad ~p_bad_to_good ~loss_good ~loss_bad =
  check_p "p_good_to_bad" p_good_to_bad;
  check_p "p_bad_to_good" p_bad_to_good;
  check_p "loss_good" loss_good;
  check_p "loss_bad" loss_bad;
  Gilbert { p_good_to_bad; p_bad_to_good; loss_good; loss_bad; bad = false }

let deterministic_every n =
  if n < 1 then invalid_arg "Loss.deterministic_every: n must be >= 1";
  Every { n; count = 0 }

let drop t rng =
  match t with
  | None_ -> false
  | Bernoulli p -> Rng.bernoulli rng ~p
  | Gilbert g ->
    (if g.bad then begin
       if Rng.bernoulli rng ~p:g.p_bad_to_good then g.bad <- false
     end
     else if Rng.bernoulli rng ~p:g.p_good_to_bad then g.bad <- true);
    Rng.bernoulli rng ~p:(if g.bad then g.loss_bad else g.loss_good)
  | Every e ->
    e.count <- e.count + 1;
    if e.count = e.n then begin
      e.count <- 0;
      true
    end
    else false
