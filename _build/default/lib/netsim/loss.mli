(** Packet loss processes.

    The paper's channels "can be subject to packet loss and corruption",
    including burst errors (§2). Corruption is modeled as loss: the paper
    assumes "any packet corruption causes the packet to be discarded, and
    not handed over to the resequencing algorithm" (§5). Two processes are
    provided: independent Bernoulli loss and a two-state Gilbert–Elliott
    model for bursty loss. A loss process is stateful; create one per
    channel. *)

type t

val none : unit -> t
(** Never drops. *)

val bernoulli : p:float -> t
(** Independent loss with probability [p] per packet. *)

val gilbert :
  p_good_to_bad:float ->
  p_bad_to_good:float ->
  loss_good:float ->
  loss_bad:float ->
  t
(** Two-state Markov (Gilbert–Elliott) loss. At each packet the chain may
    switch state; the packet is then dropped with the loss probability of
    the current state. Models the paper's "burst errors", including
    channels that occasionally deviate from FIFO delivery (§2). *)

val drop : t -> Rng.t -> bool
(** [drop t rng] advances the process one packet and reports whether that
    packet is lost. *)

val deterministic_every : int -> t
(** [deterministic_every n] drops exactly every [n]-th packet (the 1st,
    [n+1]-th, ... survive; packet number [n], [2n], ... are dropped).
    Useful for reproducible walkthroughs such as Figures 8–13. Requires
    [n >= 1]. *)
