type t = {
  mutable clock : float;
  mutable stopped : bool;
  events : (unit -> unit) Eventq.t;
}

let create () = { clock = 0.0; stopped = false; events = Eventq.create () }

let now t = t.clock

let schedule t ~at f =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.schedule: time %g is before now (%g)" at t.clock);
  Eventq.add t.events ~time:at f

let schedule_after t ~delay f =
  if delay < 0.0 then invalid_arg "Sim.schedule_after: negative delay";
  schedule t ~at:(t.clock +. delay) f

let step t =
  match Eventq.pop t.events with
  | None -> false
  | Some (time, f) ->
    t.clock <- time;
    f ();
    true

let run t =
  t.stopped <- false;
  let continue = ref true in
  while !continue do
    if t.stopped then continue := false else continue := step t
  done

let run_until t horizon =
  t.stopped <- false;
  let continue = ref true in
  while !continue do
    if t.stopped then continue := false
    else
      match Eventq.peek_time t.events with
      | Some time when time <= horizon -> ignore (step t)
      | Some _ | None -> continue := false
  done;
  if t.clock < horizon then t.clock <- horizon

let pending t = Eventq.length t.events

let stop t = t.stopped <- true
