(** Event trace recorder.

    Collects timestamped textual events during a simulation run. Used for
    the golden tests that replay the paper's worked examples (Figures 5–6
    and 8–13) and for debugging. *)

type t

val create : unit -> t

val record : t -> time:float -> string -> unit

val recordf :
  t -> time:float -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** [recordf t ~time fmt ...] records a formatted event. *)

val events : t -> (float * string) list
(** Events in recording order. *)

val messages : t -> string list
(** Just the message strings, in recording order. *)

val clear : t -> unit

val pp : Format.formatter -> t -> unit
(** One event per line as ["%.6f  %s"]. *)
