(** Priority queue of timed events, keyed by simulated time.

    Ties are broken by insertion order so that events scheduled at the same
    instant fire in the order they were scheduled — this keeps simulations
    fully deterministic. Implemented as a growable binary heap. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int

val add : 'a t -> time:float -> 'a -> unit
(** [add q ~time v] inserts [v] to fire at [time]. *)

val peek_time : 'a t -> float option
(** Earliest scheduled time, if any. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event as [(time, value)]. *)

val clear : 'a t -> unit
