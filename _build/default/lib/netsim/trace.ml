type t = { mutable rev_events : (float * string) list }

let create () = { rev_events = [] }

let record t ~time msg = t.rev_events <- (time, msg) :: t.rev_events

let recordf t ~time fmt =
  Format.kasprintf (fun msg -> record t ~time msg) fmt

let events t = List.rev t.rev_events

let messages t = List.map snd (events t)

let clear t = t.rev_events <- []

let pp fmt t =
  List.iter
    (fun (time, msg) -> Format.fprintf fmt "%.6f  %s@." time msg)
    (events t)
