lib/netsim/loss.ml: Printf Rng
