lib/netsim/rng.mli:
