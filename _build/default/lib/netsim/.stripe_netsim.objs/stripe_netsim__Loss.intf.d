lib/netsim/loss.mli: Rng
