lib/netsim/link.ml: Loss Printf Queue Rng Sim
