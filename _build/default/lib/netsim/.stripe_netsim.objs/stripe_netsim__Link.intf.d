lib/netsim/link.mli: Loss Rng Sim
