lib/netsim/sim.mli:
