lib/netsim/sim.ml: Eventq Printf
