lib/netsim/eventq.mli:
