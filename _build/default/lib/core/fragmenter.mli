(** Fragmenting striping (minipackets), the road not taken by strIPe.

    §6.2 notes that strIPe "restricts the maximum packet size ... to the
    minimum MTU of the underlying physical interfaces", that throughput
    depends strongly on MTU ("we obtain throughputs in excess of 70 Mbps
    over an ATM interface using 8 KB sized packets"), and that the
    limitation applies to "any striping algorithm that does not
    internally fragment and reassemble packets". The Gigabit-testbed
    adaptors the paper surveys — notably OSIRIS [DP94], where "a single
    packet is sent as a number of minipackets on each channel and a
    parallel reassembly of the packets is done at the receiver" — do
    fragment, at the price of modifying what travels on the wire.

    This module implements that alternative so the trade-off can be
    measured: every datagram is split into one {e minipacket per
    channel}, sized proportionally to the channel shares (so load sharing
    is exact by construction), each carrying a small fragment header.
    Because every channel carries a piece of every datagram, the bundle
    MTU is roughly the {e sum} of member MTUs, and the receiver detects a
    dead datagram as soon as every channel has moved past its id —
    reassembly is parallel and delivery is in datagram order
    (guaranteed FIFO; this is a modify-the-packets scheme, so carrying
    ids is fair game).

    Costs, also measurable: header overhead per channel per datagram,
    per-fragment processing at both ends, and the loss amplification of
    needing all fragments — exactly the §7 argument for striping whole
    packets when AAL boundaries matter. *)

val header_size : int
(** Wire overhead per fragment (8 bytes). *)

type fragment = {
  fg_id : int;  (** Datagram id, consecutive from 0 per sender. *)
  fg_channel : int;
  fg_n : int;  (** Number of fragments (= channels). *)
  fg_payload : int;  (** Bytes of the datagram carried here (may be 0). *)
  fg_total : int;  (** Original datagram size. *)
  fg_seq : int;  (** Original [Packet.seq], measurement metadata. *)
  fg_frame : int;
  fg_born : float;
}

val wire_size : fragment -> int
(** [fg_payload + header_size]. *)

module Sender : sig
  type t

  val create :
    shares:float array ->
    emit:(channel:int -> fragment -> unit) ->
    unit ->
    t
  (** [shares] weight the byte split across channels (typically the
      channel rates). Every push emits exactly one fragment per channel,
      possibly payload-free on channels whose share rounds to zero —
      keeping the every-channel-sees-every-id invariant the reassembler's
      loss detection relies on. *)

  val push : t -> Stripe_packet.Packet.t -> unit

  val pushed : t -> int

  val channel_payload_bytes : t -> int -> int
  (** Datagram bytes (headers excluded) sent to a channel. *)
end

module Reassembler : sig
  type t

  val create :
    n_channels:int -> deliver:(Stripe_packet.Packet.t -> unit) -> unit -> t
  (** [deliver] receives reconstructed datagrams in id order. *)

  val receive : t -> channel:int -> fragment -> unit

  val delivered : t -> int

  val dropped_incomplete : t -> int
  (** Datagrams abandoned because a fragment was lost (detected once
      every channel had advanced past the id). *)

  val pending : t -> int
  (** Datagrams with at least one fragment received, not yet released. *)
end
