(** Ordinary round robin striping.

    The simplest scheme of §2.1: the sender sends packets in round-robin
    order on the channels, one packet per channel per round, regardless of
    packet size. It is causal (the state is just the pointer; [f] is the
    identity, [g] increments the pointer), so logical reception applies,
    but it provides poor load sharing with variable-length packets — if
    big and small packets alternate over two channels, all the big packets
    ride one channel — and its throughput over dissimilar links is limited
    by the slowest link (Figure 15).

    Implemented as the deficit engine in packet-cost mode with all quanta
    equal to 1, which gives RR the same implicit (round, DC) packet
    numbering that the marker protocol needs — the round-number-only
    markers of the §5 walkthrough are exactly this. *)

val create : n:int -> unit -> Deficit.t
