open Stripe_packet

type t = {
  quanta : int array;
  n : int;
  queues : Packet.t Fifo_queue.t array;
  dcs : int array;
  active : int Queue.t;  (* flows with packets, in round-robin order *)
  in_active : bool array;
  served : int array;
}

let create ~quanta () =
  let n = Array.length quanta in
  if n = 0 then invalid_arg "Fair_queue.create: no flows";
  Array.iter
    (fun q -> if q <= 0 then invalid_arg "Fair_queue.create: quantum must be positive")
    quanta;
  {
    quanta = Array.copy quanta;
    n;
    queues = Array.init n (fun _ -> Fifo_queue.create ());
    dcs = Array.make n 0;
    active = Queue.create ();
    in_active = Array.make n false;
    served = Array.make n 0;
  }

let n_flows t = t.n

let enqueue t ~flow pkt =
  if flow < 0 || flow >= t.n then invalid_arg "Fair_queue.enqueue: bad flow";
  if Packet.is_marker pkt then invalid_arg "Fair_queue.enqueue: marker packet";
  Fifo_queue.push t.queues.(flow) ~size:pkt.Packet.size pkt;
  if not t.in_active.(flow) then begin
    (* A newly active flow joins the scan with a fresh account: idle
       periods neither bank credit nor carry debt into the new busy
       period beyond what the SRR overdraw already recorded. *)
    t.in_active.(flow) <- true;
    Queue.add flow t.active
  end

(* Serve the active list DRR-style: the flow at the head has already
   received its quantum for this visit if its DC is positive; otherwise
   grant it and, if the DC is still not positive (deep overdraw), rotate
   it to the back. *)
let rec dequeue t =
  match Queue.peek_opt t.active with
  | None -> None
  | Some flow ->
    if Fifo_queue.is_empty t.queues.(flow) then begin
      (* Went idle: leave the scan and forfeit any remaining credit;
         keep (negative) surplus debt so a flow cannot cheat by cycling
         idle. *)
      ignore (Queue.pop t.active);
      t.in_active.(flow) <- false;
      if t.dcs.(flow) > 0 then t.dcs.(flow) <- 0;
      dequeue t
    end
    else if t.dcs.(flow) > 0 then begin
      match Fifo_queue.pop t.queues.(flow) with
      | Some pkt ->
        t.dcs.(flow) <- t.dcs.(flow) - pkt.Packet.size;
        t.served.(flow) <- t.served.(flow) + pkt.Packet.size;
        if t.dcs.(flow) <= 0 then begin
          (* Visit over (possibly overdrawn): rotate to the back. *)
          ignore (Queue.pop t.active);
          if Fifo_queue.is_empty t.queues.(flow) then begin
            t.in_active.(flow) <- false;
            if t.dcs.(flow) > 0 then t.dcs.(flow) <- 0
          end
          else Queue.add flow t.active
        end;
        Some (flow, pkt)
      | None -> assert false
    end
    else begin
      (* Start of a visit: grant the quantum. A deeply overdrawn flow
         may need several rounds to recover, exactly as at the striper. *)
      t.dcs.(flow) <- t.dcs.(flow) + t.quanta.(flow);
      if t.dcs.(flow) <= 0 then begin
        ignore (Queue.pop t.active);
        Queue.add flow t.active
      end;
      dequeue t
    end

let backlog t ~flow = Fifo_queue.bytes t.queues.(flow)

let served_bytes t ~flow = t.served.(flow)

let is_empty t =
  Array.for_all Fifo_queue.is_empty t.queues
