open Stripe_packet

type t = {
  sim : Stripe_netsim.Sim.t;
  comp : float array;
  deliver : Packet.t -> unit;
  (* Release strictly in adjusted-time order even when equal-delay
     releases collide: the event queue's FIFO tie-break plus a single
     release path gives a deterministic order. *)
  mutable n_delivered : int;
  mutable n_held : int;
}

let create sim ~skews ~deliver () =
  let n = Array.length skews in
  if n = 0 then invalid_arg "Skew_comp.create: no channels";
  Array.iter
    (fun s -> if s < 0.0 then invalid_arg "Skew_comp.create: negative skew")
    skews;
  let max_skew = Array.fold_left max 0.0 skews in
  {
    sim;
    comp = Array.map (fun s -> max_skew -. s) skews;
    deliver;
    n_delivered = 0;
    n_held = 0;
  }

let receive t ~channel pkt =
  if channel < 0 || channel >= Array.length t.comp then
    invalid_arg "Skew_comp.receive: bad channel";
  if not (Packet.is_marker pkt) then begin
    t.n_held <- t.n_held + 1;
    Stripe_netsim.Sim.schedule_after t.sim ~delay:t.comp.(channel) (fun () ->
        t.n_held <- t.n_held - 1;
        t.n_delivered <- t.n_delivered + 1;
        t.deliver pkt)
  end

let delivered t = t.n_delivered

let held t = t.n_held

let compensation t c = t.comp.(c)
