let create ~n () =
  if n <= 0 then invalid_arg "Rr.create: n must be positive";
  Deficit.create ~cost:Packets ~overdraw:true ~quanta:(Array.make n 1) ()
