(** Multilink PPP (RFC 1717) — the IETF alternative the paper contrasts.

    §2.1: "The Internet standard RFC1717 specifies MPPP ... a framework
    and packet formats for striping across multiple PPP links. However,
    no algorithm is specified for either the sending or the receiving
    end. In addition, the sender modifies each packet by adding sequence
    numbers to it." strIPe differs by working over any interface, never
    modifying data packets, and actually specifying the algorithms.

    This module implements the RFC's mechanism so the comparison can be
    measured: every transmitted fragment carries a {e multilink header}
    (4 bytes in the long-sequence format) holding a global sequence
    number and begin/end flags. A datagram may be sent whole
    (B and E both set) or fragmented across links. The receiver keeps
    per-link streams; because each link delivers its sequence numbers in
    increasing order, the minimum over the links of the most recent
    sequence number per link — the RFC's [M] — lower-bounds everything
    still in flight, so a gap below [M] is a detected loss and any
    partially assembled datagram spanning it is discarded. Delivery is in
    sequence-number order: guaranteed FIFO, bought with a header on every
    fragment.

    Since the paper's scheme deliberately adds no header, the measurable
    trade is: MPPP gets guaranteed FIFO and a bundle MTU above the member
    MTU (via fragmentation), and pays header bytes per fragment plus the
    requirement that every link speak the modified format. *)

val header_size : int
(** 4 bytes: the RFC 1717 long sequence number format. *)

type fragment = {
  mp_seq : int;  (** Global multilink sequence number, consecutive. *)
  mp_begin : bool;
  mp_end : bool;
  mp_payload : int;  (** Payload bytes carried. *)
  mp_dg_seq : int;  (** Measurement: originating datagram. *)
  mp_dg_size : int;  (** Measurement: original datagram size. *)
}

val wire_size : fragment -> int

module Sender : sig
  type t

  val create :
    scheduler:Scheduler.t ->
    ?fragment_threshold:int ->
    emit:(link:int -> fragment -> unit) ->
    unit ->
    t
  (** Datagrams at most [fragment_threshold] bytes (default 1500) travel
      as a single B+E fragment on the link the scheduler picks; larger
      ones are split into threshold-sized fragments, each dispatched
      through the scheduler independently (the RFC leaves the policy
      open; any {!Scheduler} works because the header carries the
      ordering). *)

  val push : t -> Stripe_packet.Packet.t -> unit

  val pushed : t -> int

  val fragments_sent : t -> int

  val header_bytes_sent : t -> int
  (** Total overhead added to the wire — what "no header modification"
      saves. *)
end

module Receiver : sig
  type t

  val create :
    n_links:int -> deliver:(Stripe_packet.Packet.t -> unit) -> unit -> t

  val receive : t -> link:int -> fragment -> unit

  val delivered : t -> int

  val lost_fragments : t -> int
  (** Sequence numbers skipped via the minimum-sequence rule. *)

  val discarded_datagrams : t -> int
  (** Datagrams dropped because one of their fragments was lost. *)

  val pending : t -> int
end
