open Stripe_packet

type t = {
  tolerance : int;
  suspect_after : int;
  reseq : Resequencer.t;
  request_reset : unit -> unit;
  mutable consecutive : int;
  mutable n_suspicious : int;
  mutable n_resets : int;
  mutable awaiting_reset : bool;
}

let create ?(tolerance = 2) ?(suspect_after = 3) ~resequencer ~request_reset ()
    =
  if tolerance < 0 then invalid_arg "Stabilizer.create: negative tolerance";
  if suspect_after < 1 then invalid_arg "Stabilizer.create: suspect_after < 1";
  {
    tolerance;
    suspect_after;
    reseq = resequencer;
    request_reset;
    consecutive = 0;
    n_suspicious = 0;
    n_resets = 0;
    awaiting_reset = false;
  }

let inspect t pkt =
  match pkt.Packet.kind with
  | Packet.Data -> ()
  | Packet.Marker m ->
    if m.m_reset then begin
      (* The reset we asked for (or a spontaneous one): state will be
         reinitialized; stand down. *)
      t.consecutive <- 0;
      t.awaiting_reset <- false
    end
    else begin
      (* Compare the marker's snapshot of the sender with our local
         round. The receiver always lags the sender (packets in flight),
         so markers legitimately run ahead — and if our G was corrupted
         *low*, the rc > G skip rule self-heals by fast-forwarding. The
         unrecoverable direction is G corrupted *high*: no marker can
         pull it back, delivery numbering stays wrong forever. Hence the
         asymmetric test: a marker behind our round beyond tolerance is
         the corruption signature. *)
      let local_round = Resequencer.round t.reseq in
      let gap = local_round - m.m_round in
      if gap > t.tolerance then begin
        t.n_suspicious <- t.n_suspicious + 1;
        t.consecutive <- t.consecutive + 1;
        if t.consecutive >= t.suspect_after && not t.awaiting_reset then begin
          t.n_resets <- t.n_resets + 1;
          t.awaiting_reset <- true;
          t.request_reset ()
        end
      end
      else t.consecutive <- 0
    end

let suspicious_markers t = t.n_suspicious

let resets_requested t = t.n_resets
