type instance = {
  select : unit -> int;
  update : size:int -> unit;
}

type t = {
  name : string;
  n : int;
  fresh : unit -> instance;
}

let of_deficit ~name make =
  let probe = make () in
  {
    name;
    n = Deficit.n_channels probe;
    fresh =
      (fun () ->
        let d = make () in
        {
          select = (fun () -> Deficit.select d);
          update = (fun ~size -> Deficit.consume d ~size);
        });
  }

let seeded_random ~name ~n ~seed =
  if n <= 0 then invalid_arg "Cfq.seeded_random: n must be positive";
  {
    name;
    n;
    fresh =
      (fun () ->
        let rng = Stripe_netsim.Rng.create seed in
        (* The channel for packet k is drawn when packet k is dispatched;
           selection must be stable across repeated [select] calls before
           the matching [update], so we draw lazily and cache. *)
        let pending = ref None in
        let select () =
          match !pending with
          | Some c -> c
          | None ->
            let c = Stripe_netsim.Rng.int rng n in
            pending := Some c;
            c
        in
        let update ~size:_ = pending := None in
        { select; update });
  }

let load_share cfq packets =
  let inst = cfq.fresh () in
  List.map
    (fun (size, payload) ->
      let c = inst.select () in
      inst.update ~size;
      (c, (size, payload)))
    packets

let outputs_by_channel ~n dispatch =
  let rev = Array.make n [] in
  List.iter (fun (c, p) -> rev.(c) <- p :: rev.(c)) dispatch;
  Array.map List.rev rev

let fair_queue cfq queues =
  let remaining = Array.map (fun q -> ref q) queues in
  let inst = cfq.fresh () in
  let total = Array.fold_left (fun acc q -> acc + List.length !q) 0 remaining in
  let rec loop acc k =
    if k = total then Some (List.rev acc)
    else
      let c = inst.select () in
      match !(remaining.(c)) with
      | [] -> None
      | ((size, _) as p) :: rest ->
        remaining.(c) := rest;
        inst.update ~size;
        loop ((c, p) :: acc) (k + 1)
  in
  loop [] 0
