(** Throughput-fairness measurement (§3.3).

    Fairness of a load-sharing execution is judged by the bytes allocated
    to each channel. For SRR the paper bounds the deviation of channel [i]
    from its entitlement [K * Quantum_i] after [K] rounds by
    [Max + 2 * Quantum] (Lemma 3.3); for a deterministic scheme to be
    fair, deviations must stay bounded by a constant as executions grow. *)

type report = {
  rounds : int;  (** Completed rounds [K]. *)
  bytes : int array;  (** Bytes actually allocated per channel. *)
  entitlement : int array;  (** [K * Quantum_i] per channel. *)
  deviation : int array;  (** [|bytes_i - entitlement_i|]. *)
  max_deviation : int;
  bound : int;  (** [Max + 2 * Quantum] for the supplied max packet size. *)
  within_bound : bool;
}

val measure : deficit:Deficit.t -> bytes:int array -> max_packet:int -> report
(** [measure ~deficit ~bytes ~max_packet] evaluates an execution that left
    the engine in its current state having carried [bytes.(i)] data bytes
    on channel [i]. For packet-cost engines (RR/GRR) the entitlement is
    computed in packets; pass packet counts as [bytes] and [1] as
    [max_packet]. *)

val spread : int array -> int
(** [spread bytes] is [max - min] over channels — the pairwise-imbalance
    view of fairness ("the difference in the bits allocated to any two
    queues differs by at most a constant"). *)

val jain_index : int array -> float
(** Jain's fairness index in [0, 1]; 1 is perfectly fair. A modern summary
    statistic used by the benchmarks alongside the paper's bound. *)

val pp_report : Format.formatter -> report -> unit
