type report = {
  rounds : int;
  bytes : int array;
  entitlement : int array;
  deviation : int array;
  max_deviation : int;
  bound : int;
  within_bound : bool;
}

let measure ~deficit ~bytes ~max_packet =
  let quanta = Deficit.quanta deficit in
  let n = Array.length quanta in
  if Array.length bytes <> n then invalid_arg "Fairness.measure: arity mismatch";
  let k = Deficit.round deficit in
  let entitlement = Array.map (fun q -> k * q) quanta in
  let deviation = Array.init n (fun i -> abs (bytes.(i) - entitlement.(i))) in
  let max_deviation = Array.fold_left max 0 deviation in
  let max_quantum = Array.fold_left max 0 quanta in
  let bound = max_packet + (2 * max_quantum) in
  {
    rounds = k;
    bytes = Array.copy bytes;
    entitlement;
    deviation;
    max_deviation;
    bound;
    within_bound = max_deviation <= bound;
  }

let spread bytes =
  if Array.length bytes = 0 then 0
  else
    Array.fold_left max bytes.(0) bytes - Array.fold_left min bytes.(0) bytes

let jain_index bytes =
  let n = Array.length bytes in
  if n = 0 then 1.0
  else begin
    let sum = Array.fold_left (fun a b -> a +. float_of_int b) 0.0 bytes in
    let sumsq =
      Array.fold_left (fun a b -> a +. (float_of_int b *. float_of_int b)) 0.0 bytes
    in
    if sumsq = 0.0 then 1.0 else sum *. sum /. (float_of_int n *. sumsq)
  end

let pp_report fmt r =
  Format.fprintf fmt
    "rounds=%d max_deviation=%d bound=%d within=%b jain=%.4f bytes=[%s]" r.rounds
    r.max_deviation r.bound r.within_bound (jain_index r.bytes)
    (String.concat "; " (Array.to_list (Array.map string_of_int r.bytes)))
