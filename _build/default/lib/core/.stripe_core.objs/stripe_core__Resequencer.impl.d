lib/core/resequencer.ml: Array Deficit Fifo_queue Fun List Packet Stripe_packet
