lib/core/reorder.ml: Hashtbl
