lib/core/fairness.ml: Array Deficit Format String
