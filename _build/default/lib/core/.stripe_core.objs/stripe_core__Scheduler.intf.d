lib/core/scheduler.mli: Deficit Stripe_packet
