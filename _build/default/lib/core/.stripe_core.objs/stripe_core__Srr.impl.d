lib/core/srr.ml: Array Deficit Float Printf
