lib/core/fair_queue.ml: Array Fifo_queue Packet Queue Stripe_packet
