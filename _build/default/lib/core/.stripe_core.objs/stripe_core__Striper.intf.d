lib/core/striper.mli: Marker Scheduler Stripe_packet
