lib/core/skew_comp.ml: Array Packet Stripe_netsim Stripe_packet
