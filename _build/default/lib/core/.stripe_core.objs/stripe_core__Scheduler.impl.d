lib/core/scheduler.ml: Deficit Grr Packet Rr Srr Stripe_netsim Stripe_packet
