lib/core/fair_queue.mli: Stripe_packet
