lib/core/stabilizer.ml: Packet Resequencer Stripe_packet
