lib/core/fairness.mli: Deficit Format
