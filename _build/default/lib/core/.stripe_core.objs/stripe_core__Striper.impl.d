lib/core/striper.ml: Array Deficit Marker Option Packet Scheduler Stripe_packet
