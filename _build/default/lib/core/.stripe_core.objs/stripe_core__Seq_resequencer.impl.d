lib/core/seq_resequencer.ml: Array Deficit Fifo_queue List Packet Stripe_packet
