lib/core/resequencer.mli: Deficit Stripe_packet
