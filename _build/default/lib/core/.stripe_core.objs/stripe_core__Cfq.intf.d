lib/core/cfq.mli: Deficit
