lib/core/rr.ml: Array Deficit
