lib/core/grr.mli: Deficit
