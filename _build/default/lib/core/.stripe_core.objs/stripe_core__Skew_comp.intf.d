lib/core/skew_comp.mli: Stripe_netsim Stripe_packet
