lib/core/rr.mli: Deficit
