lib/core/deficit.mli: Format
