lib/core/mppp.ml: Array Hashtbl Packet Scheduler Stripe_packet
