lib/core/fragmenter.ml: Array Hashtbl Packet Stripe_packet
