lib/core/grr.ml: Array Deficit Float
