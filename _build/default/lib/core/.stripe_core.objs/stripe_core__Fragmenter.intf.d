lib/core/fragmenter.mli: Stripe_packet
