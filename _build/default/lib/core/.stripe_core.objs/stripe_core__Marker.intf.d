lib/core/marker.mli: Deficit Stripe_packet
