lib/core/stabilizer.mli: Resequencer Stripe_packet
