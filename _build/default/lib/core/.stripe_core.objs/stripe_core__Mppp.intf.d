lib/core/mppp.mli: Scheduler Stripe_packet
