lib/core/srr.mli: Deficit
