lib/core/deficit.ml: Array Format String
