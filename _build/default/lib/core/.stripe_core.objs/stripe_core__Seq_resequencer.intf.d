lib/core/seq_resequencer.mli: Deficit Stripe_packet
