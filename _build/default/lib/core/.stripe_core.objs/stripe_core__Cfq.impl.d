lib/core/cfq.ml: Array Deficit List Stripe_netsim
