lib/core/marker.ml: Deficit Option Stripe_packet
