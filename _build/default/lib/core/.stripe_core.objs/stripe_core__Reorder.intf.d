lib/core/reorder.mli:
