open Stripe_packet

let header_size = 8

type fragment = {
  fg_id : int;
  fg_channel : int;
  fg_n : int;
  fg_payload : int;
  fg_total : int;
  fg_seq : int;
  fg_frame : int;
  fg_born : float;
}

let wire_size f = f.fg_payload + header_size

module Sender = struct
  type t = {
    shares : float array;
    total_share : float;
    emit : channel:int -> fragment -> unit;
    payload_bytes : int array;
    mutable next_id : int;
  }

  let create ~shares ~emit () =
    let n = Array.length shares in
    if n = 0 then invalid_arg "Fragmenter.Sender.create: no channels";
    Array.iter
      (fun s ->
        if s <= 0.0 then
          invalid_arg "Fragmenter.Sender.create: shares must be positive")
      shares;
    {
      shares = Array.copy shares;
      total_share = Array.fold_left ( +. ) 0.0 shares;
      emit;
      payload_bytes = Array.make n 0;
      next_id = 0;
    }

  let push t pkt =
    if Packet.is_marker pkt then
      invalid_arg "Fragmenter.Sender.push: markers do not apply here";
    let n = Array.length t.shares in
    let id = t.next_id in
    t.next_id <- id + 1;
    (* Proportional split with largest-remainder rounding so the pieces
       sum exactly to the datagram size. *)
    let size = pkt.Packet.size in
    let exact =
      Array.map (fun s -> float_of_int size *. s /. t.total_share) t.shares
    in
    let floors = Array.map int_of_float exact in
    let assigned = Array.fold_left ( + ) 0 floors in
    let remainder = size - assigned in
    let by_frac =
      Array.init n (fun i -> (exact.(i) -. float_of_int floors.(i), i))
    in
    Array.sort (fun (a, _) (b, _) -> compare b a) by_frac;
    for k = 0 to remainder - 1 do
      let _, i = by_frac.(k mod n) in
      floors.(i) <- floors.(i) + 1
    done;
    for channel = 0 to n - 1 do
      let payload = floors.(channel) in
      t.payload_bytes.(channel) <- t.payload_bytes.(channel) + payload;
      t.emit ~channel
        {
          fg_id = id;
          fg_channel = channel;
          fg_n = n;
          fg_payload = payload;
          fg_total = size;
          fg_seq = pkt.Packet.seq;
          fg_frame = pkt.Packet.frame;
          fg_born = pkt.Packet.born;
        }
    done

  let pushed t = t.next_id

  let channel_payload_bytes t c = t.payload_bytes.(c)
end

module Reassembler = struct
  type entry = {
    mutable received : int;  (* fragments seen *)
    mutable bytes : int;
    mutable seq : int;
    mutable frame : int;
    mutable born : float;
    mutable total : int;
  }

  type t = {
    n : int;
    deliver : Packet.t -> unit;
    table : (int, entry) Hashtbl.t;
    max_seen : int array;  (* highest id seen per channel; -1 initially *)
    mutable next_id : int;
    mutable n_delivered : int;
    mutable n_dropped : int;
  }

  let create ~n_channels ~deliver () =
    if n_channels <= 0 then invalid_arg "Fragmenter.Reassembler.create: no channels";
    {
      n = n_channels;
      deliver;
      table = Hashtbl.create 256;
      max_seen = Array.make n_channels (-1);
      next_id = 0;
      n_delivered = 0;
      n_dropped = 0;
    }

  (* A datagram id is provably dead once every channel has delivered a
     fragment with a higher id: channels are FIFO and every datagram puts
     one fragment on every channel, so nothing older can still arrive. *)
  let horizon t = Array.fold_left min max_int t.max_seen

  let rec release t =
    if t.next_id <= horizon t then begin
      (match Hashtbl.find_opt t.table t.next_id with
      | Some e when e.received = t.n ->
        Hashtbl.remove t.table t.next_id;
        t.n_delivered <- t.n_delivered + 1;
        t.deliver
          (Packet.data ~flow:0 ~frame:e.frame ~born:e.born ~seq:e.seq
             ~size:e.total ())
      | Some _ ->
        Hashtbl.remove t.table t.next_id;
        t.n_dropped <- t.n_dropped + 1
      | None ->
        (* No fragment of it arrived at all. *)
        t.n_dropped <- t.n_dropped + 1);
      t.next_id <- t.next_id + 1;
      release t
    end
    else
      (* The id at the release point may be complete even before every
         channel moved past it. *)
      match Hashtbl.find_opt t.table t.next_id with
      | Some e when e.received = t.n ->
        Hashtbl.remove t.table t.next_id;
        t.n_delivered <- t.n_delivered + 1;
        t.deliver
          (Packet.data ~flow:0 ~frame:e.frame ~born:e.born ~seq:e.seq
             ~size:e.total ());
        t.next_id <- t.next_id + 1;
        release t
      | Some _ | None -> ()

  let receive t ~channel f =
    if channel < 0 || channel >= t.n then
      invalid_arg "Fragmenter.Reassembler.receive: bad channel";
    if f.fg_id >= t.next_id then begin
      let e =
        match Hashtbl.find_opt t.table f.fg_id with
        | Some e -> e
        | None ->
          let e =
            { received = 0; bytes = 0; seq = 0; frame = -1; born = 0.0; total = 0 }
          in
          Hashtbl.add t.table f.fg_id e;
          e
      in
      e.received <- e.received + 1;
      e.bytes <- e.bytes + f.fg_payload;
      e.seq <- f.fg_seq;
      e.frame <- f.fg_frame;
      e.born <- f.fg_born;
      e.total <- f.fg_total
    end;
    if f.fg_id > t.max_seen.(channel) then t.max_seen.(channel) <- f.fg_id;
    release t

  let delivered t = t.n_delivered
  let dropped_incomplete t = t.n_dropped
  let pending t = Hashtbl.length t.table
end
