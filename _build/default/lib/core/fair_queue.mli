(** Fair queuing proper: serving one output channel from many queues.

    This is the {e untransformed} direction of §3 — the algorithm family
    the striping scheme is derived from, implemented as a real queueing
    discipline rather than the backlogged abstraction {!Cfq} uses for the
    duality proof. It follows DRR [SV94] with the SRR surplus
    modification: each flow has a quantum and a deficit counter; a
    round-robin scan serves the {e active} flows, granting the quantum at
    each visit and letting the counter go negative by at most one packet
    (the overdraw that makes the load-sharing transformation causal).

    The non-backlogged case is where this differs from {!Cfq}: an empty
    queue is skipped via an active list (O(1) per packet, the DRR
    headline), and a flow that goes idle forfeits its deficit — the
    classic rule that stops an idle flow from hoarding service. It is
    precisely this active-list dependence on queue contents that makes
    general fair queuing {e non-causal} and unusable for striping (§3.1);
    having both implementations side by side makes the distinction
    concrete and testable.

    Usage: [enqueue] packets for flows; [dequeue] yields the next packet
    to transmit, or [None] when all queues are empty. *)

type t

val create : quanta:int array -> unit -> t
(** One quantum per flow, in bytes; all positive. *)

val n_flows : t -> int

val enqueue : t -> flow:int -> Stripe_packet.Packet.t -> unit
(** Append a packet to a flow's queue. Raises on marker packets or bad
    flow ids. *)

val dequeue : t -> (int * Stripe_packet.Packet.t) option
(** Next packet in service order, with its flow. [None] iff every queue
    is empty. *)

val backlog : t -> flow:int -> int
(** Queued bytes of a flow. *)

val served_bytes : t -> flow:int -> int
(** Cumulative bytes dequeued per flow — the fairness measurement. *)

val is_empty : t -> bool
