open Stripe_packet

let header_size = 4

type fragment = {
  mp_seq : int;
  mp_begin : bool;
  mp_end : bool;
  mp_payload : int;
  mp_dg_seq : int;
  mp_dg_size : int;
}

let wire_size f = f.mp_payload + header_size

module Sender = struct
  type t = {
    scheduler : Scheduler.t;
    threshold : int;
    emit : link:int -> fragment -> unit;
    mutable next_seq : int;
    mutable n_pushed : int;
    mutable n_fragments : int;
    mutable header_bytes : int;
  }

  let create ~scheduler ?(fragment_threshold = 1500) ~emit () =
    if fragment_threshold <= 0 then
      invalid_arg "Mppp.Sender.create: fragment_threshold must be positive";
    {
      scheduler;
      threshold = fragment_threshold;
      emit;
      next_seq = 0;
      n_pushed = 0;
      n_fragments = 0;
      header_bytes = 0;
    }

  let emit_fragment t frag =
    (* Dispatch each fragment through the scheduler as its own unit; SRR
       charges the fragment's wire size. *)
    let carrier =
      Packet.data ~seq:frag.mp_seq ~size:(wire_size frag) ()
    in
    let link = Scheduler.choose t.scheduler carrier in
    Scheduler.account t.scheduler carrier link;
    t.n_fragments <- t.n_fragments + 1;
    t.header_bytes <- t.header_bytes + header_size;
    t.emit ~link frag

  let push t pkt =
    if Packet.is_marker pkt then invalid_arg "Mppp.Sender.push: marker";
    t.n_pushed <- t.n_pushed + 1;
    let total = pkt.Packet.size in
    let rec cut offset =
      let remaining = total - offset in
      if remaining > 0 then begin
        let payload = min t.threshold remaining in
        emit_fragment t
          {
            mp_seq = t.next_seq;
            mp_begin = offset = 0;
            mp_end = offset + payload = total;
            mp_payload = payload;
            mp_dg_seq = pkt.Packet.seq;
            mp_dg_size = total;
          };
        t.next_seq <- t.next_seq + 1;
        cut (offset + payload)
      end
    in
    cut 0

  let pushed t = t.n_pushed
  let fragments_sent t = t.n_fragments
  let header_bytes_sent t = t.header_bytes
end

module Receiver = struct
  type t = {
    n : int;
    deliver : Packet.t -> unit;
    buffered : (int, fragment) Hashtbl.t;  (* mp_seq -> fragment *)
    link_max : int array;  (* highest mp_seq seen per link; -1 initially *)
    mutable next : int;  (* next mp_seq to release *)
    mutable assembling : (int * int * int) option;  (* dg_seq, size, got *)
    mutable skipping : bool;  (* discard until the next Begin fragment *)
    mutable n_delivered : int;
    mutable n_lost : int;
    mutable n_discarded : int;
  }

  let create ~n_links ~deliver () =
    if n_links <= 0 then invalid_arg "Mppp.Receiver.create: no links";
    {
      n = n_links;
      deliver;
      buffered = Hashtbl.create 256;
      link_max = Array.make n_links (-1);
      next = 0;
      assembling = None;
      skipping = false;
      n_delivered = 0;
      n_lost = 0;
      n_discarded = 0;
    }

  let abandon_assembly t =
    match t.assembling with
    | Some _ ->
      t.assembling <- None;
      t.n_discarded <- t.n_discarded + 1
    | None -> ()

  let process t f =
    if f.mp_begin then begin
      (* A new datagram starts; any partial one is dead. *)
      abandon_assembly t;
      t.skipping <- false;
      t.assembling <- Some (f.mp_dg_seq, f.mp_dg_size, f.mp_payload)
    end
    else if not t.skipping then begin
      match t.assembling with
      | Some (dg, size, got) -> t.assembling <- Some (dg, size, got + f.mp_payload)
      | None -> (* middle fragment with no beginning: drop *) t.skipping <- true
    end;
    if f.mp_end && not t.skipping then begin
      match t.assembling with
      | Some (dg, size, got) when got = size ->
        t.assembling <- None;
        t.n_delivered <- t.n_delivered + 1;
        t.deliver (Packet.data ~seq:dg ~size ())
      | Some _ ->
        abandon_assembly t;
        t.skipping <- true
      | None -> ()
    end

  (* The RFC's M: the minimum over links of the latest sequence number
     delivered by each link. Since links are FIFO and stamp sequence
     numbers increasingly, nothing <= M can still arrive. *)
  let horizon t = Array.fold_left min max_int t.link_max

  let rec release t =
    match Hashtbl.find_opt t.buffered t.next with
    | Some f ->
      Hashtbl.remove t.buffered t.next;
      process t f;
      t.next <- t.next + 1;
      release t
    | None ->
      if t.next < horizon t then begin
        (* Lost for sure: skip it and resynchronize at the next Begin. *)
        t.n_lost <- t.n_lost + 1;
        abandon_assembly t;
        t.skipping <- true;
        t.next <- t.next + 1;
        release t
      end

  let receive t ~link f =
    if link < 0 || link >= t.n then invalid_arg "Mppp.Receiver.receive: bad link";
    if f.mp_seq > t.link_max.(link) then t.link_max.(link) <- f.mp_seq;
    if f.mp_seq >= t.next then Hashtbl.replace t.buffered f.mp_seq f;
    release t

  let delivered t = t.n_delivered
  let lost_fragments t = t.n_lost
  let discarded_datagrams t = t.n_discarded
  let pending t = Hashtbl.length t.buffered
end
