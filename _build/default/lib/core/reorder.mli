(** Out-of-order delivery metrics.

    Observes the stream a receiver hands to the application and counts
    misordering relative to the sender's input sequence, using the
    measurement-only [seq] metadata on data packets. An {e out-of-order
    delivery} is a packet whose [seq] is smaller than some previously
    delivered [seq] (late packet); {e displacement} is how far it arrived
    after its in-order position. This is what the §6.3 marker frequency
    and position experiments report. *)

type t

val create : unit -> t

val observe : t -> seq:int -> unit

val observed : t -> int
(** Packets observed. *)

val out_of_order : t -> int
(** Late deliveries: packets with [seq] below the running maximum. *)

val max_displacement : t -> int
(** Largest [max_seq_seen - seq] over late deliveries. *)

val missing : t -> int
(** Sequence numbers skipped and never delivered so far, assuming the
    sender numbered packets consecutively from the first observed one:
    [max_seq - min_seq + 1 - observed - duplicates]. *)

val duplicates : t -> int
(** Packets whose [seq] was already delivered (should be zero under this
    protocol; tracked defensively). *)

val is_sorted_suffix : t -> int
(** Length of the longest strictly increasing suffix of the delivery
    sequence — used to verify FIFO delivery was restored and persisted
    after losses stop. *)

val last_disorder_index : t -> int
(** Index (0-based, in delivery order) of the last late delivery, or -1
    if the whole stream was in order. *)
