type t = {
  mutable n : int;
  mutable max_seq : int;
  mutable min_seq : int;
  mutable late : int;
  mutable max_disp : int;
  mutable dups : int;
  mutable last_seq : int;  (* previous delivery, for suffix tracking *)
  mutable suffix : int;  (* current strictly increasing suffix length *)
  mutable last_disorder : int;
  seen : (int, unit) Hashtbl.t;
}

let create () =
  {
    n = 0;
    max_seq = min_int;
    min_seq = max_int;
    late = 0;
    max_disp = 0;
    dups = 0;
    last_seq = min_int;
    suffix = 0;
    last_disorder = -1;
    seen = Hashtbl.create 1024;
  }

let observe t ~seq =
  if Hashtbl.mem t.seen seq then t.dups <- t.dups + 1
  else Hashtbl.add t.seen seq ();
  if seq < t.max_seq then begin
    t.late <- t.late + 1;
    if t.max_seq - seq > t.max_disp then t.max_disp <- t.max_seq - seq
  end;
  if seq > t.last_seq then t.suffix <- t.suffix + 1
  else begin
    t.suffix <- 1;
    t.last_disorder <- t.n
  end;
  t.last_seq <- seq;
  if seq > t.max_seq then t.max_seq <- seq;
  if seq < t.min_seq then t.min_seq <- seq;
  t.n <- t.n + 1

let observed t = t.n

let out_of_order t = t.late

let max_displacement t = t.max_disp

let missing t =
  if t.n = 0 then 0 else t.max_seq - t.min_seq + 1 - (t.n - t.dups)

let duplicates t = t.dups

let is_sorted_suffix t = t.suffix

let last_disorder_index t = t.last_disorder
