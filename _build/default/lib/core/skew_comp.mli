(** Skew-compensation resequencing — the BONDING-style baseline.

    §2.1: BONDING and the proposed ATM AIM standard reorder by {e delay
    compensation}: if each channel's skew is known and tightly bounded,
    delaying channel [c]'s arrivals by [max_skew - skew_c] equalizes the
    paths, and round-robin pickup reproduces the send order. §2 is
    explicit about the weakness this module exists to demonstrate: "we
    allow the end-to-end latency or skew across each channel to be
    potentially different and to vary on a packet to packet basis ...
    This also rules out simple solutions to the resequencing problem
    based on skew compensation, if the skew cannot be bounded."

    The implementation holds each arrival until its equalization delay
    has elapsed, then releases in (adjusted-time, arrival-index) order.
    With constant skews matching the configuration this is exact FIFO;
    with jitter beyond the configured bounds, misordering leaks through —
    the ablation benchmark quantifies exactly that, against logical
    reception which needs no skew knowledge at all. *)

type t

val create :
  Stripe_netsim.Sim.t ->
  skews:float array ->
  deliver:(Stripe_packet.Packet.t -> unit) ->
  unit ->
  t
(** [skews.(c)] is the configured one-way delay of channel [c]; channel
    [c]'s arrivals are held for [max skews - skews.(c)] seconds. *)

val receive : t -> channel:int -> Stripe_packet.Packet.t -> unit
(** Markers are ignored (this scheme predates them). *)

val delivered : t -> int

val held : t -> int
(** Packets currently in the equalization buffers. *)

val compensation : t -> int -> float
(** The hold time applied to a channel. *)
