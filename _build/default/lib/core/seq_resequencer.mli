(** Guaranteed-FIFO resequencing with sequence numbers.

    The "with header" rows of Table 1: when a sequence number {e can} be
    added to each packet, FIFO delivery can be guaranteed outright —
    including across loss — rather than quasi-FIFO. §4 observes that even
    then logical reception earns its keep: "logical reception can be used
    to avoid such sorting. The sequence number inserted by the sender is
    now needed only for confirmation, since logical reception suffices
    for FIFO delivery."

    This resequencer therefore runs two paths:

    - {b Fast path}: simulate the sender's CFQ algorithm exactly like
      {!Resequencer}; the head of the expected channel is delivered after
      a constant-time {e confirmation} that its sequence number is the
      next one. No searching or sorting happens while the simulation
      holds (the loss-free common case).
    - {b Sequenced path}: after a confirmation failure (a loss broke the
      simulation), delivery is driven by sequence numbers alone: the
      channel holding the next sequence number is found by scanning the
      buffer heads — per-channel FIFO means only heads need examining.

    Losses are {e detected}, never reordered past: if every channel's
    buffer head has advanced beyond the expected sequence number, the
    missing packets can no longer arrive (channels are FIFO) and the gap
    is skipped. If some channel's buffer is empty the expected packet may
    still be in flight there, so the receiver waits — a real deployment
    would add a timeout; finite experiments use [drain].

    In this mode the [Packet.seq] field is an on-the-wire header, which
    is precisely the cost the header-free protocol avoids. *)

type t

val create :
  ?deficit:Deficit.t ->
  n_channels:int ->
  deliver:(Stripe_packet.Packet.t -> unit) ->
  unit ->
  t
(** [create ~n_channels ~deliver ()] builds a sequence-number
    resequencer. Passing [?deficit] (a fresh engine mirroring the
    sender's, as for {!Resequencer}) enables the logical-reception fast
    path; without it every delivery scans the buffer heads. [first_seq]
    is 0. *)

val receive : t -> channel:int -> Stripe_packet.Packet.t -> unit
(** Physical arrival. Markers are not used in this mode and are
    ignored. *)

val delivered : t -> int

val pending : t -> int

val next_seq : t -> int
(** The sequence number delivery is waiting for. *)

val detected_losses : t -> int
(** Sequence numbers skipped because every channel had provably moved
    past them. *)

val confirmations_failed : t -> int
(** Fast-path confirmation failures (each marks a simulation break). *)

val fast_deliveries : t -> int
(** Packets delivered by the logical-reception fast path, i.e. without
    scanning. *)

val drain : t -> Stripe_packet.Packet.t list
(** Remaining buffered packets in sequence order (end-of-run
    accounting). *)
