(** Self-stabilization monitor for the receiver.

    Theorem 5.1 covers channel errors (detectable loss/corruption). For
    arbitrary {e state} corruption — a receiver variable flipped by a
    software bug or memory error — §5 notes the marker algorithm can be
    made self-stabilizing "by periodically running a snapshot [CL85] and
    then doing a reset [Var93]", and that node crashes are handled by a
    reset.

    This module is that watchdog, built on the observation that every
    marker is a {e local snapshot} of the sender's state for one channel:
    the receiver's own (round, DC) expectation for the channel is
    directly comparable to the marker's. A bounded disagreement is normal
    (losses in flight, skew between channels); persistent disagreement
    beyond what markers themselves repair means the state is corrupt
    (e.g. the global round counter was damaged, which ordinary marker
    application cannot fix because the skip rule only waits, forever, if
    [G] jumped {e ahead} of the sender).

    The monitor inspects each marker on arrival. Disagreement is judged
    asymmetrically: markers legitimately run {e ahead} of the receiver
    (packets in flight), and a receiver round corrupted {e low}
    self-heals through the skip rule — but a round corrupted {e high} is
    unrecoverable by markers alone (no skip ever fires again, and the
    implicit numbering stays wrong). So when [suspect_after] consecutive
    markers trail the local round by more than [tolerance], the monitor
    invokes [request_reset] — wired, over any control path, to
    {!Striper.send_reset} at the sender, whose barrier restores a clean
    epoch (§5's reset). *)

type t

val create :
  ?tolerance:int ->
  ?suspect_after:int ->
  resequencer:Resequencer.t ->
  request_reset:(unit -> unit) ->
  unit ->
  t
(** [tolerance] (default 2 rounds) is the disagreement considered
    explainable by in-flight loss; [suspect_after] (default 3) the
    consecutive suspicious markers needed to declare corruption.
    [request_reset] is debounced: it will not fire again until a marker
    has agreed with the local state (i.e. the reset took effect). *)

val inspect : t -> Stripe_packet.Packet.t -> unit
(** Feed every arriving packet (markers are examined, data ignored)
    {e before} handing it to the resequencer. *)

val suspicious_markers : t -> int
(** Markers that disagreed beyond tolerance. *)

val resets_requested : t -> int
