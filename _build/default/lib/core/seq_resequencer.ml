open Stripe_packet

type t = {
  d : Deficit.t option;
  n : int;
  buffers : Packet.t Fifo_queue.t array;
  deliver : Packet.t -> unit;
  mutable next : int;
  mutable in_sync : bool;  (* fast path valid *)
  mutable n_delivered : int;
  mutable n_losses : int;
  mutable n_failed : int;
  mutable n_fast : int;
}

let create ?deficit ~n_channels ~deliver () =
  if n_channels <= 0 then invalid_arg "Seq_resequencer.create: no channels";
  (match deficit with
  | Some d when Deficit.n_channels d <> n_channels ->
    invalid_arg "Seq_resequencer.create: deficit arity mismatch"
  | Some _ | None -> ());
  {
    d = deficit;
    n = n_channels;
    buffers = Array.init n_channels (fun _ -> Fifo_queue.create ());
    deliver;
    next = 0;
    in_sync = deficit <> None;
    n_delivered = 0;
    n_losses = 0;
    n_failed = 0;
    n_fast = 0;
  }

let head_seq t c =
  match Fifo_queue.peek t.buffers.(c) with
  | Some pkt -> Some pkt.Packet.seq
  | None -> None

let deliver_from t c =
  match Fifo_queue.pop t.buffers.(c) with
  | Some pkt ->
    t.n_delivered <- t.n_delivered + 1;
    t.next <- t.next + 1;
    t.deliver pkt;
    pkt
  | None -> assert false

(* Sequence-driven delivery: scan buffer heads for the next number; when
   every channel has provably moved past a gap, skip it. Per-channel FIFO
   guarantees heads are the per-channel minima, so heads suffice. Heads
   below [next] are stale — duplicates from retransmission — and are
   discarded so they cannot wedge the scan. *)
let rec sequenced_progress t =
  for c = 0 to t.n - 1 do
    let rec drop_stale () =
      match head_seq t c with
      | Some s when s < t.next ->
        ignore (Fifo_queue.pop t.buffers.(c));
        drop_stale ()
      | Some _ | None -> ()
    in
    drop_stale ()
  done;
  let found = ref None in
  for c = 0 to t.n - 1 do
    if !found = None && head_seq t c = Some t.next then found := Some c
  done;
  match !found with
  | Some c ->
    ignore (deliver_from t c);
    sequenced_progress t
  | None ->
    let all_nonempty = ref true in
    let min_head = ref max_int in
    for c = 0 to t.n - 1 do
      match head_seq t c with
      | Some s -> if s < !min_head then min_head := s
      | None -> all_nonempty := false
    done;
    if !all_nonempty && !min_head > t.next then begin
      (* The missing numbers can no longer arrive on any channel. *)
      t.n_losses <- t.n_losses + (!min_head - t.next);
      t.next <- !min_head;
      sequenced_progress t
    end
(* else: wait for more arrivals. *)

let break_sync t =
  t.in_sync <- false;
  t.n_failed <- t.n_failed + 1;
  sequenced_progress t

(* Logical-reception fast path: the simulation names the channel; the
   sequence number only confirms. *)
let rec fast_progress t d =
  let c = Deficit.current d in
  if not (Deficit.in_service d) then Deficit.begin_visit d;
  if Deficit.dc d c <= 0 then begin
    Deficit.advance d;
    fast_progress t d
  end
  else
    match Fifo_queue.peek t.buffers.(c) with
    | Some pkt when pkt.Packet.seq = t.next ->
      let pkt = deliver_from t c in
      t.n_fast <- t.n_fast + 1;
      Deficit.consume d ~size:pkt.Packet.size;
      fast_progress t d
    | Some _ ->
      (* The head is not the expected packet: a loss broke the
         simulation. *)
      break_sync t
    | None ->
      (* The expected packet may still be in flight on [c] — unless
         another channel already holds the next number, which proves the
         simulation wrong. *)
      let elsewhere = ref false in
      for c' = 0 to t.n - 1 do
        if c' <> c && head_seq t c' = Some t.next then elsewhere := true
      done;
      if !elsewhere then break_sync t
(* else: block on [c], exactly like logical reception. *)

let progress t =
  match t.d with
  | Some d when t.in_sync -> fast_progress t d
  | Some _ | None -> sequenced_progress t

let receive t ~channel pkt =
  if channel < 0 || channel >= t.n then
    invalid_arg "Seq_resequencer.receive: bad channel";
  if not (Packet.is_marker pkt) then begin
    Fifo_queue.push t.buffers.(channel) ~size:pkt.Packet.size pkt;
    progress t
  end

let delivered t = t.n_delivered

let pending t = Array.fold_left (fun acc b -> acc + Fifo_queue.length b) 0 t.buffers

let next_seq t = t.next

let detected_losses t = t.n_losses

let confirmations_failed t = t.n_failed

let fast_deliveries t = t.n_fast

let drain t =
  let all =
    Array.to_list t.buffers
    |> List.concat_map (fun b ->
           let rec pop acc =
             match Fifo_queue.pop b with
             | Some pkt -> pop (pkt :: acc)
             | None -> List.rev acc
           in
           pop [])
  in
  List.sort Packet.compare_seq all
