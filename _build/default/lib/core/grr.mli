(** Generalized round robin (§6.2).

    GRR "allocates packets to interfaces based on the closest integer
    ratio of their bandwidths": per round, channel [i] carries [k_i]
    packets where [k_0 : k_1 : ...] approximates the bandwidth ratio.
    Counting packets rather than bytes, GRR shares load well on average
    for random size mixes but has deterministic worst cases: with two
    equal-rate channels (where GRR reduces to RR) and strictly alternating
    big/small packets, all big packets ride one channel — the experiment
    the paper uses to show SRR's guaranteed advantage (11.2 vs 6.8 Mbps).

    Implemented as the deficit engine in packet-cost mode with quanta
    [k_i]; it is causal, so logical reception and markers apply. *)

val create : ratios:int array -> unit -> Deficit.t
(** [create ~ratios ()] carries [ratios.(i)] packets per round on channel
    [i]. All ratios must be positive. *)

val for_rates : rates_bps:float array -> unit -> Deficit.t
(** Derive per-round packet counts as the closest integer ratio of the
    given bandwidths: each rate divided by the slowest, rounded to the
    nearest integer and floored at 1. *)
