let create ~ratios () =
  Array.iter
    (fun k -> if k <= 0 then invalid_arg "Grr.create: ratios must be positive")
    ratios;
  Deficit.create ~cost:Packets ~overdraw:true ~quanta:ratios ()

let for_rates ~rates_bps () =
  if Array.length rates_bps = 0 then invalid_arg "Grr.for_rates: no channels";
  Array.iter
    (fun r -> if r <= 0.0 then invalid_arg "Grr.for_rates: rates must be positive")
    rates_bps;
  let slowest = Array.fold_left min rates_bps.(0) rates_bps in
  let ratios =
    Array.map (fun r -> max 1 (int_of_float (Float.round (r /. slowest)))) rates_bps
  in
  create ~ratios ()
