(** Minimal IP datagram model.

    Only what the strIPe architecture of §6.1 needs: 32-bit addresses
    with dotted-quad notation, network masks for routing, and a datagram
    that wraps a transport payload. The datagram's [body] is a
    {!Stripe_packet.Packet.t}; its [size] is the full IP datagram length
    on the wire (header included), which is what striping charges to
    deficit counters. strIPe never modifies datagrams — it stripes them
    whole. *)

type addr = int
(** IPv4 address as a non-negative int (host order). *)

val addr : string -> addr
(** [addr "192.168.1.2"] parses dotted-quad notation. Raises
    [Invalid_argument] on malformed input. *)

val addr_to_string : addr -> string

val network : addr -> prefix:int -> addr
(** [network a ~prefix] masks [a] to its leading [prefix] bits. *)

val same_network : addr -> addr -> prefix:int -> bool

type t = {
  src : addr;
  dst : addr;
  proto : int;  (** Transport protocol number (6 TCP-lite, 17 UDP-lite). *)
  body : Stripe_packet.Packet.t;  (** Payload; [body.size] includes the IP header. *)
}

val make : src:addr -> dst:addr -> ?proto:int -> Stripe_packet.Packet.t -> t

val size : t -> int
(** Wire size of the datagram = [body.size]. *)

val pp : Format.formatter -> t -> unit
