type addr = int

let addr s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] ->
    let part x =
      match int_of_string_opt x with
      | Some v when v >= 0 && v <= 255 -> v
      | Some _ | None -> invalid_arg ("Ip.addr: bad octet in " ^ s)
    in
    (part a lsl 24) lor (part b lsl 16) lor (part c lsl 8) lor part d
  | _ -> invalid_arg ("Ip.addr: expected dotted quad, got " ^ s)

let addr_to_string a =
  Printf.sprintf "%d.%d.%d.%d"
    ((a lsr 24) land 0xFF)
    ((a lsr 16) land 0xFF)
    ((a lsr 8) land 0xFF)
    (a land 0xFF)

let network a ~prefix =
  if prefix < 0 || prefix > 32 then invalid_arg "Ip.network: bad prefix";
  if prefix = 0 then 0 else a land (0xFFFFFFFF lsl (32 - prefix)) land 0xFFFFFFFF

let same_network a b ~prefix = network a ~prefix = network b ~prefix

type t = {
  src : addr;
  dst : addr;
  proto : int;
  body : Stripe_packet.Packet.t;
}

let make ~src ~dst ?(proto = 17) body = { src; dst; proto; body }

let size t = t.body.Stripe_packet.Packet.size

let pp fmt t =
  Format.fprintf fmt "%s -> %s proto=%d %a" (addr_to_string t.src)
    (addr_to_string t.dst) t.proto Stripe_packet.Packet.pp t.body
