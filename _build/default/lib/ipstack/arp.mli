(** Address resolution for IP convergence layers.

    §6.1: "The convergence layer is responsible for mapping IP addresses
    to data link addresses". This models an ARP-like cache with aging and
    an asynchronous resolution path: a miss queues the caller and
    completes after a configurable resolution delay by consulting the
    LAN's oracle (the simulation's stand-in for broadcasting a request
    and receiving the owner's reply). Entries expire so re-resolution
    traffic and its latency are represented. *)

type mac = int

type t

val create :
  Stripe_netsim.Sim.t ->
  ?entry_ttl:float ->
  ?resolve_delay:float ->
  lookup:(Ip.addr -> mac option) ->
  unit ->
  t
(** [entry_ttl] defaults to 600 s; [resolve_delay] — the simulated
    request/reply round trip — to 1 ms. *)

val resolve : t -> Ip.addr -> (mac option -> unit) -> unit
(** [resolve t a k] calls [k (Some mac)] immediately on a cache hit, or
    after the resolution delay otherwise; [k None] if the oracle does not
    know the address. Concurrent misses for one address share a single
    resolution. *)

val insert : t -> Ip.addr -> mac -> unit
(** Prime the cache (gratuitous ARP / static entry). *)

val cached : t -> Ip.addr -> mac option
(** Non-aging peek, honoring expiry. *)

val misses : t -> int
val hits : t -> int
