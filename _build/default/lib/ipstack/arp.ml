type mac = int

type entry = { mac : mac; expires : float }

type t = {
  sim : Stripe_netsim.Sim.t;
  entry_ttl : float;
  resolve_delay : float;
  lookup : Ip.addr -> mac option;
  cache : (Ip.addr, entry) Hashtbl.t;
  in_flight : (Ip.addr, (mac option -> unit) list ref) Hashtbl.t;
  mutable n_hits : int;
  mutable n_misses : int;
}

let create sim ?(entry_ttl = 600.0) ?(resolve_delay = 0.001) ~lookup () =
  {
    sim;
    entry_ttl;
    resolve_delay;
    lookup;
    cache = Hashtbl.create 64;
    in_flight = Hashtbl.create 8;
    n_hits = 0;
    n_misses = 0;
  }

let cached t a =
  match Hashtbl.find_opt t.cache a with
  | Some e when e.expires > Stripe_netsim.Sim.now t.sim -> Some e.mac
  | Some _ ->
    Hashtbl.remove t.cache a;
    None
  | None -> None

let insert t a mac =
  Hashtbl.replace t.cache a
    { mac; expires = Stripe_netsim.Sim.now t.sim +. t.entry_ttl }

let resolve t a k =
  match cached t a with
  | Some mac ->
    t.n_hits <- t.n_hits + 1;
    k (Some mac)
  | None -> (
    t.n_misses <- t.n_misses + 1;
    match Hashtbl.find_opt t.in_flight a with
    | Some waiters -> waiters := k :: !waiters
    | None ->
      let waiters = ref [ k ] in
      Hashtbl.add t.in_flight a waiters;
      Stripe_netsim.Sim.schedule_after t.sim ~delay:t.resolve_delay (fun () ->
          Hashtbl.remove t.in_flight a;
          let answer = t.lookup a in
          (match answer with Some mac -> insert t a mac | None -> ());
          List.iter (fun k -> k answer) (List.rev !waiters)))

let misses t = t.n_misses
let hits t = t.n_hits
