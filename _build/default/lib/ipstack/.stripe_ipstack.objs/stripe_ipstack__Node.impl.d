lib/ipstack/node.ml: Iface Ip List Routing Stripe_layer
