lib/ipstack/ip.mli: Format Stripe_packet
