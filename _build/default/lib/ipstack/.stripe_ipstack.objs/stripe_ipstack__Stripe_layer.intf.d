lib/ipstack/stripe_layer.mli: Iface Ip Stripe_core
