lib/ipstack/iface.mli: Arp Ip Stripe_netsim Stripe_packet
