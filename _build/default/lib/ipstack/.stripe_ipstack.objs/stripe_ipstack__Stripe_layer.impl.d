lib/ipstack/stripe_layer.ml: Array Hashtbl Iface Ip Packet Printf Stripe_core Stripe_packet
