lib/ipstack/ip.ml: Format Printf String Stripe_packet
