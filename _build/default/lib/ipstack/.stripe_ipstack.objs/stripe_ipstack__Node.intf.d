lib/ipstack/node.mli: Iface Ip Routing Stripe_layer
