lib/ipstack/arp.ml: Hashtbl Ip List Stripe_netsim
