lib/ipstack/routing.ml: Ip List
