lib/ipstack/iface.ml: Arp Ip List Printf Queue Stripe_netsim Stripe_packet
