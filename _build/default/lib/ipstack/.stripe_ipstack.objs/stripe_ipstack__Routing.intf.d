lib/ipstack/routing.mli: Ip
