lib/ipstack/arp.mli: Ip Stripe_netsim
