type out_iface =
  | Real of Iface.t
  | Virtual of Stripe_layer.t

type t = {
  node_name : string;
  table : Routing.t;
  mutable out_ifaces : (string * out_iface) list;
  mutable protocols : (int * (Ip.t -> unit)) list;
  mutable n_no_route : int;
  mutable n_local : int;
}

let create ~name () =
  {
    node_name = name;
    table = Routing.create ();
    out_ifaces = [];
    protocols = [];
    n_no_route = 0;
    n_local = 0;
  }

let name t = t.node_name
let routing t = t.table

let ip_input t ip =
  t.n_local <- t.n_local + 1;
  match List.assoc_opt ip.Ip.proto t.protocols with
  | Some f -> f ip
  | None -> ()

let add_iface t iface =
  t.out_ifaces <- (Iface.name iface, Real iface) :: t.out_ifaces;
  Iface.set_handler iface Iface.Cp_ip (function
    | Iface.Ip_frame ip -> ip_input t ip
    | Iface.Striped_frame _ | Iface.Marker_frame _ -> ())

let add_stripe t layer =
  t.out_ifaces <- (Stripe_layer.name layer, Virtual layer) :: t.out_ifaces

let send t ip =
  match Routing.lookup t.table ip.Ip.dst with
  | None -> t.n_no_route <- t.n_no_route + 1
  | Some target -> (
    match List.assoc_opt target t.out_ifaces with
    | Some (Real iface) -> Iface.send iface (Iface.Ip_frame ip)
    | Some (Virtual layer) -> Stripe_layer.send layer ip
    | None -> t.n_no_route <- t.n_no_route + 1)

let set_protocol_handler t ~proto f =
  t.protocols <- (proto, f) :: List.remove_assoc proto t.protocols

let no_route_drops t = t.n_no_route
let delivered_local t = t.n_local
