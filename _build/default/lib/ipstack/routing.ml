type target = string

type entry = { net : Ip.addr; prefix : int; target : target }

type t = { mutable entries : entry list }

let create () = { entries = [] }

let add t net prefix target =
  (* Keep the list sorted by decreasing prefix; new entries go ahead of
     equal-prefix ones so the latest insertion wins ties. *)
  let e = { net = Ip.network net ~prefix; prefix; target } in
  let before, after = List.partition (fun x -> x.prefix > prefix) t.entries in
  t.entries <- before @ (e :: after)

let add_host t a target = add t a 32 target

let add_network t a ~prefix target =
  if prefix < 0 || prefix > 32 then invalid_arg "Routing.add_network: bad prefix";
  add t a prefix target

let add_default t target = add t 0 0 target

let remove_host t a =
  t.entries <-
    List.filter (fun e -> not (e.prefix = 32 && e.net = a)) t.entries

let lookup t a =
  let matches e = Ip.network a ~prefix:e.prefix = e.net in
  match List.find_opt matches t.entries with
  | Some e -> Some e.target
  | None -> None

let entries t = List.map (fun e -> (e.net, e.prefix, e.target)) t.entries
