(** An IP host: interfaces, a routing table, and local protocol demux.

    Ties the stack together the way §6.1 describes the sending host: the
    routing table decides which interface (real or strIPe-virtual) an
    outgoing datagram leaves through, host routes steering the receiver's
    addresses onto the strIPe interface; incoming datagrams are handed to
    the transport registered for their protocol number. Forwarding is out
    of scope — nodes in the reproduced experiments are always endpoints. *)

type t

val create : name:string -> unit -> t

val name : t -> string

val routing : t -> Routing.t

val add_iface : t -> Iface.t -> unit
(** Attach a real interface; its [Cp_ip] frames are delivered to this
    node's IP input. *)

val add_stripe : t -> Stripe_layer.t -> unit
(** Attach a strIPe virtual interface (create it with
    [~deliver_up:(Node.ip_input node)]). Its name becomes routable. *)

val send : t -> Ip.t -> unit
(** Route and transmit a datagram. Datagrams with no route are counted
    and dropped. *)

val ip_input : t -> Ip.t -> unit
(** Local delivery: demux on the protocol number. *)

val set_protocol_handler : t -> proto:int -> (Ip.t -> unit) -> unit

val no_route_drops : t -> int
val delivered_local : t -> int
