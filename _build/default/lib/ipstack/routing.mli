(** IP routing table with host-route override.

    §6.1 hinges on one property of IP routing: "it is possible for host
    specific routes to override network specific routes. Thus, if the two
    ethernets are on IP networks Net1 and Net2, and if the receiving
    host's two IP addresses are Net1.B and Net2.B, then we simply make
    entries in the sending host's routing table, asking it to route
    packets to Net1.B and Net2.B to interface C, which corresponds to the
    strIPe interface." Lookup is longest-prefix-match: host routes
    (/32) beat network routes beat the default. *)

type target = string
(** Interface name the route resolves to. *)

type t

val create : unit -> t

val add_host : t -> Ip.addr -> target -> unit
(** /32 route. *)

val add_network : t -> Ip.addr -> prefix:int -> target -> unit

val add_default : t -> target -> unit

val remove_host : t -> Ip.addr -> unit

val lookup : t -> Ip.addr -> target option
(** Longest-prefix match; ties broken by most recent insertion. *)

val entries : t -> (Ip.addr * int * target) list
(** (network, prefix, target), most specific first. *)
