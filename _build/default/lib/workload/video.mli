(** Synthetic NV-style video-conference trace (§6.3).

    The paper captured traces from the NV video conferencing application
    and replayed them over striped lossy UDP channels. NV sends one video
    frame at a fixed rate, each frame split into several packets (image
    slices), with occasional larger refresh frames. This module generates
    an equivalent synthetic trace: a timed sequence of packets, each
    tagged with its frame id, plus per-frame bookkeeping for the
    {!Playback} quality model. *)

type frame = {
  id : int;
  send_time : float;  (** Instant the frame's packets enter the network. *)
  packet_sizes : int array;
}

type t = {
  fps : float;
  frames : frame array;
}

val generate :
  rng:Stripe_netsim.Rng.t ->
  ?fps:float ->
  ?packets_per_frame:int ->
  ?packet_size:int ->
  ?refresh_every:int ->
  ?refresh_scale:int ->
  n_frames:int ->
  unit ->
  t
(** Defaults modeled on NV over a LAN: 10 frames/s, 6 packets of ~1000 B
    per frame, a refresh every 30 frames carrying [refresh_scale] (3)
    times the packets. Packet sizes get ±25 % jitter. *)

val packets : t -> (float * Stripe_packet.Packet.t) list
(** The trace as [(send_time, packet)] pairs in send order: packets carry
    their frame id in [Packet.frame] and consecutive [seq] numbers. *)

val n_packets : t -> int

val frame_packet_count : t -> int -> int
(** Packets belonging to a frame id. *)

val duration : t -> float
