(** Packet-size generators.

    The paper's experiments are parameterized by packet-size mixtures: "a
    random mixture of small and large packets" for Figure 15, and "bigger
    (1000 bytes) packets alternating with the smaller (200 bytes) ones" —
    the deterministic worst case that collapses GRR while leaving SRR
    unaffected (§6.2). A generator is a thunk producing the next packet
    size in bytes. *)

type t = unit -> int

val fixed : int -> t

val alternating : small:int -> large:int -> t
(** Deterministic [large, small, large, small, ...] — the GRR worst-case
    sequence (starts with [large]). *)

val bimodal : rng:Stripe_netsim.Rng.t -> ?p_small:float -> small:int -> large:int -> unit -> t
(** Random mixture: [small] with probability [p_small] (default 0.5),
    else [large]. *)

val uniform : rng:Stripe_netsim.Rng.t -> lo:int -> hi:int -> t
(** Uniform on [\[lo, hi\]]. *)

val imix : rng:Stripe_netsim.Rng.t -> t
(** The classic Internet mix: 40 B : 576 B : 1500 B in 7 : 4 : 1
    proportion. *)

val pareto : rng:Stripe_netsim.Rng.t -> ?alpha:float -> min_size:int -> cap:int -> t
(** Heavy-tailed sizes, capped at [cap] (an MTU); [alpha] defaults to
    1.2. *)

val counted : t -> int ref * t
(** Instrument a generator: the returned reference counts total bytes
    produced. *)

val take : t -> int -> int list
(** First [n] sizes of a generator. *)
