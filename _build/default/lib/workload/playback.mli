(** Video playback quality model (§6.3).

    The paper fed received traces — with controlled loss and the packet
    reordering introduced by quasi-FIFO delivery — back into NV and looked
    for perceptible playback differences, finding none below 40 % packet
    loss, and crucially that pure loss at the same rate looked the same:
    "the effect of packet reordering was insignificant compared to the
    effect of packet loss."

    The model: each frame is presented at [send_time + playout_delay]; a
    frame {e glitches} if any of its packets is missing or arrives after
    its presentation instant. Reordered packets that still make the
    deadline are harmless — which is exactly why modest reordering is
    imperceptible while loss is not. *)

type t

type report = {
  frames : int;
  glitched_frames : int;
      (** Frames with {e any} packet missing or late: the strictest
          measure — one lost slice mars the frame slightly. *)
  glitch_rate : float;
  degraded_frames : int;
      (** Frames that lost at least half their packets by the deadline:
          the perceptibility proxy — NV renders the slices that arrive,
          so a frame reads as visibly broken only when much of it is
          gone. This is the measure that crosses over around the paper's
          40 % threshold. *)
  degraded_rate : float;
  late_packets : int;
  arrived_packets : int;
  missing_packets : int;
}

val create : trace:Video.t -> ?playout_delay:float -> unit -> t
(** [playout_delay] defaults to 0.4 s — a typical conferencing jitter
    buffer. *)

val packet_arrived : t -> frame:int -> now:float -> unit
(** Record the arrival of one packet of [frame] at time [now]. *)

val finalize : t -> report
(** Judge every frame (call after the simulation drains). *)

val pp_report : Format.formatter -> report -> unit
