lib/workload/genpkt.ml: List Stripe_netsim
