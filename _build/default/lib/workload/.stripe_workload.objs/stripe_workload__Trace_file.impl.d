lib/workload/trace_file.ml: Buffer Fun List Printf String Stripe_packet Video
