lib/workload/video.ml: Array List Stripe_netsim Stripe_packet
