lib/workload/playback.ml: Array Format Video
