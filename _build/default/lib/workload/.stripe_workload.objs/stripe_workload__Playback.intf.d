lib/workload/playback.mli: Format Video
