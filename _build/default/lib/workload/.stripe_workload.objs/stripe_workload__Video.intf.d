lib/workload/video.mli: Stripe_netsim Stripe_packet
