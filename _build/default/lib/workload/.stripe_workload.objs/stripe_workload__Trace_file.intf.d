lib/workload/trace_file.mli: Stripe_packet Video
