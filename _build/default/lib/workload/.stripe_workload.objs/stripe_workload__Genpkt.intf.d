lib/workload/genpkt.mli: Stripe_netsim
