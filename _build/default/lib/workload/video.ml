type frame = {
  id : int;
  send_time : float;
  packet_sizes : int array;
}

type t = {
  fps : float;
  frames : frame array;
}

let generate ~rng ?(fps = 10.0) ?(packets_per_frame = 6) ?(packet_size = 1000)
    ?(refresh_every = 30) ?(refresh_scale = 3) ~n_frames () =
  if fps <= 0.0 then invalid_arg "Video.generate: fps must be positive";
  if n_frames <= 0 then invalid_arg "Video.generate: n_frames must be positive";
  if packets_per_frame <= 0 || packet_size <= 0 then
    invalid_arg "Video.generate: bad frame shape";
  let jittered () =
    let spread = packet_size / 4 in
    packet_size - spread + Stripe_netsim.Rng.int rng (max 1 (2 * spread))
  in
  let frames =
    Array.init n_frames (fun id ->
        let count =
          if refresh_every > 0 && id mod refresh_every = 0 then
            packets_per_frame * refresh_scale
          else packets_per_frame
        in
        {
          id;
          send_time = float_of_int id /. fps;
          packet_sizes = Array.init count (fun _ -> jittered ());
        })
  in
  { fps; frames }

let packets t =
  let seq = ref 0 in
  Array.to_list t.frames
  |> List.concat_map (fun f ->
         Array.to_list f.packet_sizes
         |> List.map (fun size ->
                let pkt =
                  Stripe_packet.Packet.data ~frame:f.id ~born:f.send_time
                    ~seq:!seq ~size ()
                in
                incr seq;
                (f.send_time, pkt)))

let n_packets t =
  Array.fold_left (fun acc f -> acc + Array.length f.packet_sizes) 0 t.frames

let frame_packet_count t id =
  if id < 0 || id >= Array.length t.frames then 0
  else Array.length t.frames.(id).packet_sizes

let duration t =
  match Array.length t.frames with
  | 0 -> 0.0
  | n -> t.frames.(n - 1).send_time +. (1.0 /. t.fps)
