type entry = {
  time : float;
  packet : Stripe_packet.Packet.t;
}

let to_string entries =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "# stripe trace v1: time seq size flow frame\n";
  List.iter
    (fun e ->
      let p = e.packet in
      Buffer.add_string buf
        (Printf.sprintf "%.6f %d %d %d %d\n" e.time p.Stripe_packet.Packet.seq
           p.Stripe_packet.Packet.size p.Stripe_packet.Packet.flow
           p.Stripe_packet.Packet.frame))
    entries;
  Buffer.contents buf

let of_string s =
  let entries = ref [] in
  List.iteri
    (fun lineno line ->
      let line = String.trim line in
      if line <> "" && line.[0] <> '#' then begin
        match String.split_on_char ' ' line |> List.filter (fun x -> x <> "") with
        | [ time; seq; size; flow; frame ] -> (
          match
            ( float_of_string_opt time,
              int_of_string_opt seq,
              int_of_string_opt size,
              int_of_string_opt flow,
              int_of_string_opt frame )
          with
          | Some time, Some seq, Some size, Some flow, Some frame ->
            entries :=
              {
                time;
                packet =
                  Stripe_packet.Packet.data ~flow ~frame ~born:time ~seq ~size ();
              }
              :: !entries
          | _ ->
            failwith
              (Printf.sprintf "Trace_file: malformed fields at line %d"
                 (lineno + 1)))
        | _ ->
          failwith
            (Printf.sprintf "Trace_file: expected 5 fields at line %d" (lineno + 1))
      end)
    (String.split_on_char '\n' s);
  List.rev !entries

let save path entries =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string entries))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      of_string (really_input_string ic len))

let of_video trace =
  List.map (fun (time, packet) -> { time; packet }) (Video.packets trace)

let total_bytes entries =
  List.fold_left (fun acc e -> acc + e.packet.Stripe_packet.Packet.size) 0 entries

let duration entries =
  List.fold_left (fun acc e -> max acc e.time) 0.0 entries
