type t = unit -> int

let fixed size =
  if size <= 0 then invalid_arg "Genpkt.fixed: size must be positive";
  fun () -> size

let alternating ~small ~large =
  if small <= 0 || large <= 0 then invalid_arg "Genpkt.alternating: bad sizes";
  let next_large = ref true in
  fun () ->
    let size = if !next_large then large else small in
    next_large := not !next_large;
    size

let bimodal ~rng ?(p_small = 0.5) ~small ~large () =
  if small <= 0 || large <= 0 then invalid_arg "Genpkt.bimodal: bad sizes";
  fun () -> if Stripe_netsim.Rng.bernoulli rng ~p:p_small then small else large

let uniform ~rng ~lo ~hi =
  if lo <= 0 || hi < lo then invalid_arg "Genpkt.uniform: bad bounds";
  fun () -> lo + Stripe_netsim.Rng.int rng (hi - lo + 1)

let imix ~rng =
  let sizes = [| 40; 40; 40; 40; 40; 40; 40; 576; 576; 576; 576; 1500 |] in
  fun () -> Stripe_netsim.Rng.pick rng sizes

let pareto ~rng ?(alpha = 1.2) ~min_size ~cap =
  if min_size <= 0 || cap < min_size then invalid_arg "Genpkt.pareto: bad bounds";
  if alpha <= 0.0 then invalid_arg "Genpkt.pareto: alpha must be positive";
  fun () ->
    let u = max 1e-12 (Stripe_netsim.Rng.float rng 1.0) in
    let x = float_of_int min_size /. (u ** (1.0 /. alpha)) in
    min cap (int_of_float x)

let counted gen =
  let total = ref 0 in
  ( total,
    fun () ->
      let size = gen () in
      total := !total + size;
      size )

let take gen n = List.init n (fun _ -> gen ())
