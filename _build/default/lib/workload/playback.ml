type t = {
  trace : Video.t;
  playout_delay : float;
  on_time : int array;  (* packets arrived by the frame's deadline *)
  mutable n_late : int;
  mutable n_arrived : int;
}

type report = {
  frames : int;
  glitched_frames : int;
  glitch_rate : float;
  degraded_frames : int;
  degraded_rate : float;
  late_packets : int;
  arrived_packets : int;
  missing_packets : int;
}

let create ~trace ?(playout_delay = 0.4) () =
  if playout_delay < 0.0 then invalid_arg "Playback.create: negative delay";
  {
    trace;
    playout_delay;
    on_time = Array.make (Array.length trace.Video.frames) 0;
    n_late = 0;
    n_arrived = 0;
  }

let packet_arrived t ~frame ~now =
  if frame < 0 || frame >= Array.length t.trace.Video.frames then
    invalid_arg "Playback.packet_arrived: unknown frame";
  t.n_arrived <- t.n_arrived + 1;
  let deadline =
    t.trace.Video.frames.(frame).Video.send_time +. t.playout_delay
  in
  if now <= deadline then t.on_time.(frame) <- t.on_time.(frame) + 1
  else t.n_late <- t.n_late + 1

let finalize t =
  let frames = Array.length t.trace.Video.frames in
  let glitched = ref 0 in
  let degraded = ref 0 in
  let expected_total = ref 0 in
  Array.iteri
    (fun i f ->
      let expected = Array.length f.Video.packet_sizes in
      expected_total := !expected_total + expected;
      if t.on_time.(i) < expected then incr glitched;
      if 2 * t.on_time.(i) < expected then incr degraded)
    t.trace.Video.frames;
  let rate n = if frames = 0 then 0.0 else float_of_int n /. float_of_int frames in
  {
    frames;
    glitched_frames = !glitched;
    glitch_rate = rate !glitched;
    degraded_frames = !degraded;
    degraded_rate = rate !degraded;
    late_packets = t.n_late;
    arrived_packets = t.n_arrived;
    missing_packets = max 0 (!expected_total - t.n_arrived);
  }

let pp_report fmt r =
  Format.fprintf fmt
    "frames=%d glitched=%d (%.1f%%) degraded=%d (%.1f%%) late=%d arrived=%d \
     missing=%d"
    r.frames r.glitched_frames (100.0 *. r.glitch_rate) r.degraded_frames
    (100.0 *. r.degraded_rate) r.late_packets r.arrived_packets
    r.missing_packets
