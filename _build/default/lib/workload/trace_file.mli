(** Saving and replaying packet traces.

    §6.3's methodology was trace-driven: "video traces sent by the NV
    video conferencing application were captured. The stored traces were
    then striped over multiple UDP channels ... The received traces ...
    were fed to the NV application." This module provides the same
    capture/replay workflow: a timed packet trace serializes to a plain
    text format (one packet per line: [time seq size flow frame]), so
    workloads can be captured from one experiment, stored, edited, and
    replayed into another — or generated outside and imported.

    Lines starting with ['#'] are comments; blank lines are ignored. *)

type entry = {
  time : float;  (** Send instant, seconds. *)
  packet : Stripe_packet.Packet.t;
}

val save : string -> entry list -> unit
(** [save path entries] writes the trace. Raises [Sys_error] on I/O
    failure. *)

val load : string -> entry list
(** Parse a trace file. Raises [Failure] with the offending line number
    on malformed input. *)

val of_video : Video.t -> entry list
(** Convert a generated video trace into storable entries. *)

val to_string : entry list -> string
(** The serialized form, for tests and in-memory use. *)

val of_string : string -> entry list
(** Parse from a string (same format/failure behavior as [load]). *)

val total_bytes : entry list -> int

val duration : entry list -> float
(** Last send instant, 0 for the empty trace. *)
