type kind =
  | Data of {
      eof : bool;
      dg_seq : int;
      dg_cells : int;
      dg_size : int;
      cell_idx : int;
      dg_frame : int;
    }
  | Oam of Stripe_packet.Packet.marker

type t = {
  vci : int;
  kind : kind;
}

let size = 53
let payload = 48

let is_eof t = match t.kind with Data d -> d.eof | Oam _ -> false

let is_oam t = match t.kind with Oam _ -> true | Data _ -> false

let pp fmt t =
  match t.kind with
  | Data d ->
    Format.fprintf fmt "cell(vci=%d,dg=%d,%d/%d%s)" t.vci d.dg_seq
      (d.cell_idx + 1) d.dg_cells
      (if d.eof then ",eof" else "")
  | Oam m ->
    Format.fprintf fmt "oam(vci=%d,R=%d,DC=%d)" t.vci m.Stripe_packet.Packet.m_round
      m.Stripe_packet.Packet.m_dc
