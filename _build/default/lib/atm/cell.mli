(** ATM cells.

    The paper's conclusions single out ATM virtual circuits as a prime
    striping substrate: markers can ride OAM cells "sent on the same
    Virtual Circuit that implements the channel", and it argues for
    striping at the {e packet} layer rather than the cell layer, because
    cell striping makes AAL boundaries unavailable inside the network,
    defeating early-discard policies [RF94]. This module models what
    those arguments need: 53-byte cells with a VCI, the AAL5
    end-of-frame indication (the PTI user bit), and an OAM cell type
    that can carry marker state.

    Measurement-only metadata ([dg_seq], [dg_cells], [dg_size],
    [cell_idx]) identifies the datagram a cell belongs to, standing in
    for the payload bytes a real cell would carry. *)

type kind =
  | Data of {
      eof : bool;  (** AAL5 end-of-frame (PTI user bit). *)
      dg_seq : int;  (** Datagram the cell belongs to. *)
      dg_cells : int;  (** Cells in that datagram's AAL5 frame. *)
      dg_size : int;  (** Original datagram size in bytes. *)
      cell_idx : int;  (** Index of this cell within the frame. *)
      dg_frame : int;  (** Application frame id (video), -1 otherwise. *)
    }
  | Oam of Stripe_packet.Packet.marker
      (** OAM cell carrying striping-marker state. *)

type t = {
  vci : int;
  kind : kind;
}

val size : int
(** 53 bytes on the wire, always. *)

val payload : int
(** 48 payload bytes per cell. *)

val is_eof : t -> bool
(** False for OAM cells. *)

val is_oam : t -> bool

val pp : Format.formatter -> t -> unit
