lib/atm/epd_switch.mli: Cell Stripe_netsim
