lib/atm/cell.mli: Format Stripe_packet
