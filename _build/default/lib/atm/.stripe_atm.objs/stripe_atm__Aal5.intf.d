lib/atm/aal5.mli: Cell Stripe_packet
