lib/atm/stripe_vc.ml: Aal5 Array Cell List Packet Stripe_core Stripe_packet
