lib/atm/aal5.ml: Cell Fun List Packet Stripe_packet
