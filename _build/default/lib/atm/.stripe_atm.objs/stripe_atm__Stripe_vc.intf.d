lib/atm/stripe_vc.mli: Cell Stripe_core Stripe_packet
