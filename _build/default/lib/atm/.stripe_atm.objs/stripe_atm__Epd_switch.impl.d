lib/atm/epd_switch.ml: Cell Hashtbl Option Stripe_netsim
