lib/atm/cell.ml: Format Stripe_packet
