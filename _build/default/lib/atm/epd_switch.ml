type policy =
  | Tail_drop
  | Early_packet_discard of { threshold : int }

type t = {
  sim : Stripe_netsim.Sim.t;
  policy : policy;
  buffer_cells : int;
  out_link : Cell.t Stripe_netsim.Link.t;
  (* EPD per-VC state: are we currently shedding this VC's frame? Frame
     starts are recognized as the first cell after an EOF (or ever). *)
  shedding : (int, bool) Hashtbl.t;
  mid_frame : (int, bool) Hashtbl.t;
  mutable n_in : int;
  mutable n_dropped : int;
  mutable n_shed_frames : int;
}

let create sim ~policy ~buffer_cells ~out_rate_bps ~deliver () =
  if buffer_cells <= 0 then invalid_arg "Epd_switch.create: buffer must be positive";
  {
    sim;
    policy;
    buffer_cells;
    out_link =
      Stripe_netsim.Link.create sim ~name:"atm-out" ~rate_bps:out_rate_bps
        ~prop_delay:0.001
        ~txq_capacity_bytes:(buffer_cells * Cell.size)
        ~deliver ();
    shedding = Hashtbl.create 16;
    mid_frame = Hashtbl.create 16;
    n_in = 0;
    n_dropped = 0;
    n_shed_frames = 0;
  }

let occupancy t = Stripe_netsim.Link.queue_bytes t.out_link / Cell.size

let enqueue t cell =
  if not (Stripe_netsim.Link.send t.out_link ~size:Cell.size cell) then
    t.n_dropped <- t.n_dropped + 1

let input t cell =
  t.n_in <- t.n_in + 1;
  match t.policy with
  | Tail_drop -> enqueue t cell
  | Early_packet_discard { threshold } ->
    if Cell.is_oam cell then enqueue t cell
    else begin
      let vci = cell.Cell.vci in
      let starting = not (Option.value ~default:false (Hashtbl.find_opt t.mid_frame vci)) in
      if starting then begin
        (* Frame-start decision point. *)
        let shed = occupancy t > threshold in
        Hashtbl.replace t.shedding vci shed;
        if shed then t.n_shed_frames <- t.n_shed_frames + 1
      end;
      Hashtbl.replace t.mid_frame vci (not (Cell.is_eof cell));
      if Option.value ~default:false (Hashtbl.find_opt t.shedding vci) then
        t.n_dropped <- t.n_dropped + 1
      else enqueue t cell
    end

let cells_in t = t.n_in
let cells_dropped t = t.n_dropped
let frames_shed_early t = t.n_shed_frames
