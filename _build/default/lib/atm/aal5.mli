(** AAL5 segmentation and reassembly.

    A datagram of [n] bytes becomes [ceil((n + 8) / 48)] cells (8 bytes
    of AAL5 trailer with length and CRC), the last cell marked
    end-of-frame. Reassembly accumulates cells per VC until the EOF cell
    and then validates the frame — the CRC check is modeled as "every
    cell of exactly this frame present, in order": any lost or foreign
    cell corrupts the frame, which is discarded, exactly the behavior
    that makes partial frames worthless and early discard valuable
    [RF94]. *)

val cells_for : int -> int
(** Number of cells an [n]-byte datagram needs. *)

val wire_bytes : int -> int
(** Total wire bytes for an [n]-byte datagram ([cells_for n * 53]). *)

val segment : vci:int -> Stripe_packet.Packet.t -> Cell.t list
(** Cut a datagram into its AAL5 cells on the given VC. *)

module Reassembler : sig
  type t

  val create : deliver:(Stripe_packet.Packet.t -> unit) -> unit -> t
  (** Reassembles one VC's cell stream. [deliver] receives reconstructed
      datagrams. *)

  val receive : t -> Cell.t -> unit
  (** OAM cells are ignored here (demultiplex them before reassembly). *)

  val delivered : t -> int

  val corrupted_frames : t -> int
  (** Frames discarded because cells were missing or interleaved (the
      modeled CRC failure). *)
end
