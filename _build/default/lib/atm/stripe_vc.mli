(** Striping IP packets across ATM virtual circuits, with OAM markers.

    The configuration §7 calls "the most important application of our
    techniques": each channel is a VC; datagrams are carried whole as
    AAL5 frames; the resynchronization markers ride OAM cells "sent on
    the same Virtual Circuit that implements the channel" — no packet or
    cell format is modified.

    The sender runs SRR over the VCs ({e packet}-level striping, so each
    VC carries complete AAL5 frames and the network keeps its frame
    boundaries); each VC's receive side reassembles AAL5 independently
    and feeds the shared logical-reception resequencer. A corrupted
    frame is a packet loss, which the marker protocol absorbs. *)

type t

val create :
  n_vcs:int ->
  quanta:int array ->
  ?marker:Stripe_core.Marker.policy ->
  ?now:(unit -> float) ->
  send_cell:(vc:int -> Cell.t -> unit) ->
  deliver:(Stripe_packet.Packet.t -> unit) ->
  unit ->
  t
(** [send_cell] transmits one cell on a VC (wire the VCs' links here);
    [deliver] receives resequenced datagrams at the far end. *)

val push : t -> Stripe_packet.Packet.t -> unit
(** Stripe one datagram: it is segmented to AAL5 cells on the chosen VC.
    Deficit counters are charged the payload size on both ends (they
    must match for the receiver's simulation to track); cell padding is
    the same bounded factor on every VC. *)

val receive_cell : t -> vc:int -> Cell.t -> unit
(** Far-end entry point: demultiplexes OAM cells to the resequencer as
    markers and data cells to the VC's AAL5 reassembler. *)

val pushed : t -> int
val delivered : t -> int
val corrupted_frames : t -> int
val markers_sent : t -> int
val resequencer : t -> Stripe_core.Resequencer.t
