(** An ATM output port with selectable discard policy.

    Models the congestion point of [RF94] (Romanov & Floyd, "Dynamics of
    TCP Traffic over ATM Networks"): several input VCs multiplex into
    one output link with a finite cell buffer. Under overload the
    discard policy decides what the surviving cells are worth:

    - {b Tail drop} discards individual cells as the buffer fills. The
      remaining cells of each clipped frame still traverse the link and
      are thrown away at reassembly — goodput collapses.
    - {b Early packet discard (EPD)}: when occupancy is above a
      threshold as a frame {e starts} on a VC, the whole frame is
      discarded up front, so the buffer carries only frames that can
      complete.

    EPD needs to see AAL5 frame boundaries per VC. That is the §7
    argument for striping whole packets across VCs: "striping cells
    across channels would mean that AAL boundaries are unavailable
    within the ATM networks; however, these boundaries are needed in
    order to implement early discard policies." A cell-striped stream
    presents interleaved fragments on every VC, EPD's bookkeeping never
    sees a clean frame, and the policy degenerates. *)

type policy =
  | Tail_drop
  | Early_packet_discard of { threshold : int }
      (** Cell occupancy above which newly starting frames are shed. *)

type t

val create :
  Stripe_netsim.Sim.t ->
  policy:policy ->
  buffer_cells:int ->
  out_rate_bps:float ->
  deliver:(Cell.t -> unit) ->
  unit ->
  t
(** One output port: [buffer_cells] of queueing ahead of a link of
    [out_rate_bps]; [deliver] fires per cell at the far end. *)

val input : t -> Cell.t -> unit
(** A cell arrives from some input VC. *)

val cells_in : t -> int
val cells_dropped : t -> int
val frames_shed_early : t -> int
(** Whole frames dropped by EPD before buffering anything. *)

val occupancy : t -> int
