open Stripe_packet

let cells_for n =
  if n < 0 then invalid_arg "Aal5.cells_for: negative size";
  (n + 8 + Cell.payload - 1) / Cell.payload

let wire_bytes n = cells_for n * Cell.size

let segment ~vci pkt =
  if Packet.is_marker pkt then invalid_arg "Aal5.segment: marker packet";
  let count = cells_for pkt.Packet.size in
  List.init count (fun cell_idx ->
      {
        Cell.vci;
        kind =
          Cell.Data
            {
              eof = cell_idx = count - 1;
              dg_seq = pkt.Packet.seq;
              dg_cells = count;
              dg_size = pkt.Packet.size;
              cell_idx;
              dg_frame = pkt.Packet.frame;
            };
      })

module Reassembler = struct
  type t = {
    deliver : Packet.t -> unit;
    (* Accumulated cells of the frame in progress: (dg_seq, cell_idx)
       pairs in arrival order. *)
    mutable acc : (int * int * int * int) list;  (* seq, idx, cells, size *)
    mutable acc_frame : int;
    mutable n_delivered : int;
    mutable n_corrupted : int;
  }

  let create ~deliver () =
    { deliver; acc = []; acc_frame = -1; n_delivered = 0; n_corrupted = 0 }

  (* The modeled CRC: the accumulated run must be exactly cells 0..n-1 of
     one datagram, ending at its EOF. *)
  let frame_valid cells =
    match cells with
    | [] -> false
    | (seq0, _, count, _) :: _ ->
      List.length cells = count
      && List.for_all2
           (fun (seq, idx, _, _) expected_idx -> seq = seq0 && idx = expected_idx)
           cells
           (List.init (List.length cells) Fun.id)

  let receive t cell =
    match cell.Cell.kind with
    | Cell.Oam _ -> ()
    | Cell.Data d ->
      t.acc <- (d.dg_seq, d.cell_idx, d.dg_cells, d.dg_size) :: t.acc;
      if d.dg_frame >= 0 then t.acc_frame <- d.dg_frame;
      if d.eof then begin
        let cells = List.rev t.acc in
        if frame_valid cells then begin
          let _, _, _, size = List.hd cells in
          let seq, _, _, _ = List.hd cells in
          t.n_delivered <- t.n_delivered + 1;
          t.deliver (Packet.data ~frame:t.acc_frame ~seq ~size ())
        end
        else t.n_corrupted <- t.n_corrupted + 1;
        t.acc <- [];
        t.acc_frame <- -1
      end

  let delivered t = t.n_delivered
  let corrupted_frames t = t.n_corrupted
end
