(** Credit-based flow control (FCVC, Kung & Chapman [KC93], §6.3).

    For channels that provide no flow control — UDP sockets — the paper
    found the FCVC credit scheme "very effective in eliminating packet
    loss due to channel congestion", with credits piggybacked on periodic
    marker packets.

    The scheme uses cumulative counters, so lost credit messages are
    harmless (any later message supersedes them): per channel, the
    receiver advertises a {e limit} — the total number of packets it has
    ever been able to accept, i.e. packets already consumed by the
    application plus its buffer capacity. The sender transmits on a
    channel only while its cumulative send count stays below the latest
    advertised limit. *)

module Sender : sig
  type t

  val create : n_channels:int -> initial_limit:int -> t
  (** [initial_limit] is the credit each channel starts with (the
      receiver's buffer capacity, learned at connection setup). *)

  val can_send : t -> channel:int -> bool

  val record_send : t -> channel:int -> unit
  (** Raises [Invalid_argument] if the channel has no credit — callers
      must check [can_send]. *)

  val update_limit : t -> channel:int -> limit:int -> unit
  (** Apply an advertised limit; stale (lower) values are ignored. *)

  val presume_lost : t -> channel:int -> unit
  (** Credit resynchronization for lossy channels (the analogue of FCVC's
      credit-sync procedure): a data packet that was lost in flight never
      reaches the receiver's buffer, so its credit would otherwise be
      burned forever and the sender could deadlock once losses exceed the
      buffer size. When the sender has solid evidence a packet died — it
      has been stalled for far longer than the in-flight time with no
      limit movement — it presumes one loss, permanently raising its
      effective limit for the channel by one. A wrong presumption can
      overrun the receiver by at most the number of presumptions, which
      the caller bounds by presuming slowly (see {!Duplex}). *)

  val presumed : t -> channel:int -> int
  (** Losses presumed so far on a channel. *)

  val sent : t -> channel:int -> int

  val limit : t -> channel:int -> int
  (** Effective limit: the latest advertisement plus the loss
      allowance. *)

  val stalls : t -> int
  (** Times [can_send] returned [false] — back-pressure events. *)
end

module Receiver : sig
  type t

  val create : n_channels:int -> buffer:int -> t
  (** [buffer] is the per-channel buffer capacity in packets. *)

  val accept : t -> channel:int -> bool
  (** Whether a newly arriving packet fits the channel's buffer. With a
      correct sender this never returns [false]; without flow control it
      is the drop decision. *)

  val record_arrival : t -> channel:int -> unit
  val record_consume : t -> channel:int -> unit
  (** The application drained one packet from the channel's buffer. *)

  val current_limit : t -> channel:int -> int
  (** The cumulative limit to advertise: consumed + buffer capacity. *)

  val occupancy : t -> channel:int -> int
end
