lib/transport/duplex.ml: Array Credit Option Packet Printf Queue Socket_stripe Stripe_core Stripe_netsim Stripe_packet
