lib/transport/tcp_lite.mli: Stripe_netsim
