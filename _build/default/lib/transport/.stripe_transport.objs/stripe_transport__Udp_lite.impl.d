lib/transport/udp_lite.ml: Stripe_netsim Stripe_packet
