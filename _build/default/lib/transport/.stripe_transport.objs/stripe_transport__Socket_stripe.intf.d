lib/transport/socket_stripe.mli: Stripe_core Stripe_netsim Stripe_packet
