lib/transport/credit.mli:
