lib/transport/tcp_lite.ml: Float Hashtbl List Stripe_netsim
