lib/transport/socket_stripe.ml: Array Credit Packet Printf Queue Stripe_core Stripe_netsim Stripe_packet
