lib/transport/udp_lite.mli: Stripe_netsim Stripe_packet
