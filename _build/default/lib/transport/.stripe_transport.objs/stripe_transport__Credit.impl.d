lib/transport/credit.ml: Array
