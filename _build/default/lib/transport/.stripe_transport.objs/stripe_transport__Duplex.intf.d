lib/transport/duplex.mli: Socket_stripe Stripe_netsim Stripe_packet
