(** Unreliable datagram endpoint — a UDP socket over one simulated link.

    No acknowledgment, no retransmission, no flow control of its own:
    exactly the kind of channel §6.3 stripes over and then protects with
    the {!Credit} scheme. Pairs a transmit link with an application
    receive callback and keeps send/receive counters. *)

type t

val create :
  name:string ->
  link:Stripe_packet.Packet.t Stripe_netsim.Link.t ->
  unit ->
  t
(** Wire the peer's receive side separately: give the link's [deliver]
    callback to the receiving endpoint via {!rx_entry}. *)

val send : t -> Stripe_packet.Packet.t -> bool
(** Transmit a datagram; [false] if the link's transmit queue dropped
    it. *)

val rx_entry : t -> (Stripe_packet.Packet.t -> unit) -> Stripe_packet.Packet.t -> unit
(** [rx_entry t app pkt] — receive-side entry point: counts and passes to
    [app]. Partially apply to obtain a link [deliver] callback. *)

val name : t -> string
val sent : t -> int
val received : t -> int
