(** Full-duplex striping session with credits piggybacked on markers.

    §6.3: the FCVC credit scheme "was particularly well suited to our
    striping scheme, since the credits could be piggybacked on the
    periodic marker packets." That requires traffic in both directions —
    credits for the A→B data direction ride on the B→A markers and vice
    versa. This module wires two symmetric striped directions ("the same
    analysis and algorithms apply for the reverse direction", §2) between
    endpoints A and B:

    - each endpoint runs a striper (markers included) for its outbound
      data and a logical-reception resequencer for its inbound data;
    - each endpoint's outbound markers carry, per channel, the cumulative
      credit limit of its {e inbound} socket buffers;
    - when consumption frees enough buffer and no outbound data is due
      soon, a standalone credit marker is emitted so the peer is never
      starved by an idle reverse direction.

    Senders stall (their application queue grows) rather than overrun
    the peer; with correct configuration no packet is ever dropped for
    congestion, while both directions share every channel. *)

type stats = {
  sent : int;  (** Data packets transmitted (excludes queued). *)
  delivered : int;  (** In-order data packets handed to the application. *)
  congestion_drops : int;
  stalls : int;
  markers : int;  (** Markers emitted by this side, periodic + standalone. *)
  app_queue : int;
}

type t

val create :
  Stripe_netsim.Sim.t ->
  channels:Socket_stripe.channel_spec array ->
  quanta:int array ->
  buffer:int ->
  ?marker_every:int ->
  ?credit_refresh:float ->
  deliver_to_a:(Stripe_packet.Packet.t -> unit) ->
  deliver_to_b:(Stripe_packet.Packet.t -> unit) ->
  unit ->
  t
(** [create sim ~channels ~quanta ~buffer ~deliver_to_a ~deliver_to_b ()]
    builds both directions over mirrored copies of [channels] (each
    direction gets its own links with the same specs). [buffer] is the
    per-channel receive-socket capacity in packets at each endpoint;
    [marker_every] (default 4) the periodic marker interval in rounds.
    [credit_refresh] (default 50 ms) bounds stall time when credit
    markers are lost: while either side has stalled traffic, inbound
    limits are re-advertised at this period (idempotent — limits are
    cumulative). *)

val send_from_a : t -> Stripe_packet.Packet.t -> unit
(** Offer a packet for the A→B direction. *)

val send_from_b : t -> Stripe_packet.Packet.t -> unit

val stats_a : t -> stats
(** A's view: its outbound sends/stalls and its inbound deliveries. *)

val stats_b : t -> stats
