open Stripe_packet

type stats = {
  sent : int;
  delivered : int;
  congestion_drops : int;
  stalls : int;
  markers : int;
  app_queue : int;
}

type endpoint = {
  scheduler : Stripe_core.Scheduler.t;
  striper : Stripe_core.Striper.t;
  reseq : Stripe_core.Resequencer.t;
  out_credits : Credit.Sender.t;  (* pace my outbound data *)
  in_credits : Credit.Receiver.t;  (* account my inbound buffers *)
  marker_policy : Stripe_core.Marker.policy;
  out_links : Packet.t Stripe_netsim.Link.t array;
  app_q : Packet.t Queue.t;
  advertised : int array;
  advertise_batch : int;
  mutable n_delivered : int;
  mutable n_drops : int;
  mutable n_standalone_markers : int;
}

type t = {
  a : endpoint;
  b : endpoint;
  sim : Stripe_netsim.Sim.t;
  refresh_period : float;
  mutable timer_active : bool;
  (* Stall snapshots per endpoint per channel: (sent, effective limit)
     at the previous tick, for the loss-presumption rule. *)
  stall_snap_a : (int * int) array;
  stall_snap_b : (int * int) array;
}

let rec pump e =
  if not (Queue.is_empty e.app_q) then begin
    let pkt = Queue.peek e.app_q in
    let channel = Stripe_core.Scheduler.choose e.scheduler pkt in
    if Credit.Sender.can_send e.out_credits ~channel then begin
      ignore (Queue.pop e.app_q);
      Credit.Sender.record_send e.out_credits ~channel;
      Stripe_core.Striper.push e.striper pkt;
      pump e
    end
  end

(* Emit a standalone credit marker on [channel]: carries the current
   implicit packet number (always valid) plus the fresh credit, so an
   idle reverse direction cannot starve the peer. *)
let advertise e ~channel ~deficit ~now =
  e.advertised.(channel) <- Credit.Receiver.current_limit e.in_credits ~channel;
  e.n_standalone_markers <- e.n_standalone_markers + 1;
  let pkt =
    Stripe_core.Marker.packet_for e.marker_policy ~deficit ~channel ~now
  in
  ignore
    (Stripe_netsim.Link.send e.out_links.(channel) ~size:pkt.Packet.size pkt)

(* Inbound processing at [me]; credits on markers apply to my outbound
   direction immediately on arrival. *)
let on_arrival me ~channel pkt =
  if Packet.is_marker pkt then begin
    (match (Packet.get_marker pkt).m_credit with
    | Some limit ->
      Credit.Sender.update_limit me.out_credits ~channel ~limit;
      pump me
    | None -> ());
    Stripe_core.Resequencer.receive me.reseq ~channel pkt
  end
  else if Credit.Receiver.accept me.in_credits ~channel then begin
    Credit.Receiver.record_arrival me.in_credits ~channel;
    Stripe_core.Resequencer.receive me.reseq ~channel pkt
  end
  else me.n_drops <- me.n_drops + 1

let make_endpoint sim ~channels ~quanta ~buffer ~marker_every ~deliver
    ~peer_ref () =
  let n = Array.length channels in
  let engine = Stripe_core.Srr.create ~quanta () in
  let in_credits = Credit.Receiver.create ~n_channels:n ~buffer in
  let out_credits = Credit.Sender.create ~n_channels:n ~initial_limit:buffer in
  let marker_policy =
    Stripe_core.Marker.make
      ~credit_of:(fun c -> Credit.Receiver.current_limit in_credits ~channel:c)
      ~every_rounds:marker_every ()
  in
  let self = ref None in
  let force_self () = match !self with Some e -> e | None -> assert false in
  let out_links =
    Array.mapi
      (fun i (spec : Socket_stripe.channel_spec) ->
        Stripe_netsim.Link.create sim
          ~name:(Printf.sprintf "duplex%d" i)
          ~rate_bps:spec.rate_bps ~prop_delay:spec.prop_delay
          ?jitter:spec.jitter
          ~loss:(spec.loss ())
          ~deliver:(fun pkt ->
            match !peer_ref with
            | Some peer -> on_arrival peer ~channel:i pkt
            | None -> ())
          ())
      channels
  in
  let scheduler = Stripe_core.Scheduler.of_deficit ~name:"SRR" engine in
  let striper =
    Stripe_core.Striper.create ~scheduler ~marker:marker_policy
      ~now:(fun () -> Stripe_netsim.Sim.now sim)
      ~emit:(fun ~channel pkt ->
        let e = force_self () in
        (if Packet.is_marker pkt then
           (* Periodic marker: it carries the latest limit; note it. *)
           match (Packet.get_marker pkt).m_credit with
           | Some limit -> e.advertised.(channel) <- limit
           | None -> ());
        ignore
          (Stripe_netsim.Link.send e.out_links.(channel) ~size:pkt.Packet.size
             pkt))
      ()
  in
  let reseq =
    Stripe_core.Resequencer.create
      ~deficit:(Stripe_core.Deficit.clone_initial engine)
      ~deliver:(fun ~channel pkt ->
        let e = force_self () in
        Credit.Receiver.record_consume e.in_credits ~channel;
        e.n_delivered <- e.n_delivered + 1;
        deliver pkt;
        (* Enough buffer freed and the periodic markers lagging: push a
           standalone credit marker so the peer resumes promptly. *)
        let limit = Credit.Receiver.current_limit e.in_credits ~channel in
        if limit - e.advertised.(channel) >= e.advertise_batch then
          advertise e ~channel
            ~deficit:(Option.get (Stripe_core.Scheduler.deficit e.scheduler))
            ~now:(Stripe_netsim.Sim.now sim))
      ()
  in
  let e =
    {
      scheduler;
      striper;
      reseq;
      out_credits;
      in_credits;
      marker_policy;
      out_links;
      app_q = Queue.create ();
      advertised = Array.make n buffer;
      advertise_batch = max 1 (buffer / 2);
      n_delivered = 0;
      n_drops = 0;
      n_standalone_markers = 0;
    }
  in
  self := Some e;
  e

let create sim ~channels ~quanta ~buffer ?(marker_every = 4)
    ?(credit_refresh = 0.05) ~deliver_to_a ~deliver_to_b () =
  let n = Array.length channels in
  if n = 0 then invalid_arg "Duplex.create: no channels";
  if Array.length quanta <> n then invalid_arg "Duplex.create: quanta arity";
  if buffer <= 0 then invalid_arg "Duplex.create: buffer must be positive";
  let a_ref = ref None and b_ref = ref None in
  (* A's outbound links deliver to B, and vice versa. *)
  let a =
    make_endpoint sim ~channels ~quanta ~buffer ~marker_every
      ~deliver:deliver_to_a ~peer_ref:b_ref ()
  in
  let b =
    make_endpoint sim ~channels ~quanta ~buffer ~marker_every
      ~deliver:deliver_to_b ~peer_ref:a_ref ()
  in
  a_ref := Some a;
  b_ref := Some b;
  {
    a;
    b;
    sim;
    refresh_period = credit_refresh;
    timer_active = false;
    stall_snap_a = Array.make n (-1, -1);
    stall_snap_b = Array.make n (-1, -1);
  }

(* Credit-loss resilience, two mechanisms driven by one timer while
   either side has stalled traffic (dormant otherwise so finite
   simulations terminate):

   1. Re-advertisement: event-driven credit markers can be lost; each
      tick both sides re-send their inbound limits (idempotent, limits
      are cumulative).
   2. Loss presumption (FCVC credit-sync analogue): a *data* packet lost
      in flight never occupies the peer's buffer, yet it consumed a
      credit; enough such losses deadlock the sender. If a channel is
      still stalled after a full tick during which neither its sent
      count nor its limit moved — far longer than the in-flight time —
      the sender presumes one packet dead and reclaims its credit. A
      wrong presumption can overrun the peer by at most the presumption
      count, which this pacing (one per channel per tick, only under
      proven stall) keeps negligible. *)
let rec refresh_tick t () =
  if Queue.is_empty t.a.app_q && Queue.is_empty t.b.app_q then
    t.timer_active <- false
  else begin
    let readvertise me snap =
      let deficit =
        Option.get (Stripe_core.Scheduler.deficit me.scheduler)
      in
      for channel = 0 to Array.length me.out_links - 1 do
        advertise me ~channel ~deficit ~now:(Stripe_netsim.Sim.now t.sim);
        let state =
          ( Credit.Sender.sent me.out_credits ~channel,
            Credit.Sender.limit me.out_credits ~channel )
        in
        if
          (not (Queue.is_empty me.app_q))
          && (not (Credit.Sender.can_send me.out_credits ~channel))
          && snap.(channel) = state
        then Credit.Sender.presume_lost me.out_credits ~channel;
        snap.(channel) <- state
      done;
      pump me
    in
    readvertise t.a t.stall_snap_a;
    readvertise t.b t.stall_snap_b;
    Stripe_netsim.Sim.schedule_after t.sim ~delay:t.refresh_period
      (refresh_tick t)
  end

let ensure_timer t =
  if
    (not t.timer_active)
    && not (Queue.is_empty t.a.app_q && Queue.is_empty t.b.app_q)
  then begin
    t.timer_active <- true;
    Stripe_netsim.Sim.schedule_after t.sim ~delay:t.refresh_period
      (refresh_tick t)
  end

let send t e pkt =
  Queue.add pkt e.app_q;
  pump e;
  ensure_timer t

let send_from_a t pkt = send t t.a pkt
let send_from_b t pkt = send t t.b pkt

let stats_of e =
  {
    sent = Stripe_core.Striper.pushed_packets e.striper;
    delivered = e.n_delivered;
    congestion_drops = e.n_drops;
    stalls = Credit.Sender.stalls e.out_credits;
    markers = Stripe_core.Striper.markers_sent e.striper + e.n_standalone_markers;
    app_queue = Queue.length e.app_q;
  }

let stats_a t =
  let s = stats_of t.a in
  (* A's inbound drops are counted at A; keep the view self-consistent. *)
  s

let stats_b t = stats_of t.b
