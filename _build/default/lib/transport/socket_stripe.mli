(** Transport-level striping across datagram sockets (§6.3).

    "A striping protocol was also implemented at the transport layer by
    striping packets across multiple application sockets using the same
    SRR striping and resequencing algorithm." This module is that
    harness: it builds [n] unidirectional UDP-like channels (each a
    simulated link with its own rate, delay and loss process), runs a CFQ
    striper with markers on the send side and logical reception on the
    receive side, and optionally protects the un-flow-controlled channels
    with the FCVC {!Credit} scheme over a lossless low-rate reverse
    control path.

    With flow control on, each channel's receive socket buffer holds at
    most [buffer] packets; the sender stalls (its application queue
    grows) instead of overrunning it, so congestion loss is eliminated —
    experiment E4. Without flow control, arrivals beyond the buffer are
    dropped and counted. All the §6.3 experiments (loss sweeps, marker
    frequency and position, video) drive this module. *)

type channel_spec = {
  rate_bps : float;
  prop_delay : float;
  jitter : (Stripe_netsim.Rng.t -> float) option;
  loss : unit -> Stripe_netsim.Loss.t;
      (** Fresh loss process per channel instance. *)
}

val spec :
  ?prop_delay:float ->
  ?jitter:(Stripe_netsim.Rng.t -> float) ->
  ?loss:(unit -> Stripe_netsim.Loss.t) ->
  rate_bps:float ->
  unit ->
  channel_spec
(** Defaults: 5 ms propagation, no jitter, lossless. *)

type flow_control =
  | No_flow_control
      (** Arrivals beyond the receive-socket buffer are dropped. *)
  | Credit_based of { buffer : int }
      (** Per-channel receive-socket buffer capacity, packets; the sender
          is paced so the buffer never overflows. *)

type t

val create :
  Stripe_netsim.Sim.t ->
  channels:channel_spec array ->
  scheduler:Stripe_core.Scheduler.t ->
  ?marker:Stripe_core.Marker.policy ->
  ?flow_control:flow_control ->
  ?socket_buffer:int ->
  ?credit_delay:float ->
  ?rng:Stripe_netsim.Rng.t ->
  deliver:(Stripe_packet.Packet.t -> unit) ->
  unit ->
  t
(** The scheduler must be CFQ (embed a deficit engine) — logical
    reception needs it. [socket_buffer] (default 10000 packets) is the
    per-channel receive-socket capacity used when flow control is off;
    with [Credit_based] the capacity comes from the policy.
    [credit_delay] (default 5 ms) is the reverse-path latency of credit
    updates. [deliver] receives the resequenced application stream. *)

val send : t -> Stripe_packet.Packet.t -> unit
(** Offer a packet. It is transmitted immediately unless flow control
    has the chosen channel stalled, in which case it queues in the
    application send queue until credit returns. *)

val sent_packets : t -> int
(** Packets actually transmitted onto channels (excludes queued). *)

val delivered_packets : t -> int
val app_queue_length : t -> int
val congestion_drops : t -> int
(** Receive-socket overflows (only without flow control). *)

val channel_losses : t -> int
(** Packets lost in flight across all channels (the loss processes). *)

val sender_stalls : t -> int
val markers_sent : t -> int
val resequencer : t -> Stripe_core.Resequencer.t
val striper : t -> Stripe_core.Striper.t
