module Sender = struct
  type t = {
    sent_counts : int array;
    advertised : int array;
    allowance : int array;  (* presumed-lost packets, per channel *)
    mutable n_stalls : int;
  }

  let create ~n_channels ~initial_limit =
    if n_channels <= 0 then invalid_arg "Credit.Sender.create: no channels";
    if initial_limit < 0 then invalid_arg "Credit.Sender.create: negative limit";
    {
      sent_counts = Array.make n_channels 0;
      advertised = Array.make n_channels initial_limit;
      allowance = Array.make n_channels 0;
      n_stalls = 0;
    }

  let limit t ~channel = t.advertised.(channel) + t.allowance.(channel)

  let can_send t ~channel =
    let ok = t.sent_counts.(channel) < limit t ~channel in
    if not ok then t.n_stalls <- t.n_stalls + 1;
    ok

  let record_send t ~channel =
    if t.sent_counts.(channel) >= limit t ~channel then
      invalid_arg "Credit.Sender.record_send: no credit";
    t.sent_counts.(channel) <- t.sent_counts.(channel) + 1

  let update_limit t ~channel ~limit =
    if limit > t.advertised.(channel) then t.advertised.(channel) <- limit

  let presume_lost t ~channel =
    t.allowance.(channel) <- t.allowance.(channel) + 1

  let presumed t ~channel = t.allowance.(channel)
  let sent t ~channel = t.sent_counts.(channel)
  let stalls t = t.n_stalls
end

module Receiver = struct
  type t = {
    buffer : int;
    arrived : int array;
    consumed : int array;
  }

  let create ~n_channels ~buffer =
    if n_channels <= 0 then invalid_arg "Credit.Receiver.create: no channels";
    if buffer <= 0 then invalid_arg "Credit.Receiver.create: buffer must be positive";
    {
      buffer;
      arrived = Array.make n_channels 0;
      consumed = Array.make n_channels 0;
    }

  let occupancy t ~channel = t.arrived.(channel) - t.consumed.(channel)

  let accept t ~channel = occupancy t ~channel < t.buffer

  let record_arrival t ~channel = t.arrived.(channel) <- t.arrived.(channel) + 1

  let record_consume t ~channel =
    if occupancy t ~channel <= 0 then
      invalid_arg "Credit.Receiver.record_consume: buffer empty";
    t.consumed.(channel) <- t.consumed.(channel) + 1

  let current_limit t ~channel = t.consumed.(channel) + t.buffer
end
