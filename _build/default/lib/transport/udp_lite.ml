type t = {
  sock_name : string;
  link : Stripe_packet.Packet.t Stripe_netsim.Link.t;
  mutable n_sent : int;
  mutable n_received : int;
}

let create ~name ~link () = { sock_name = name; link; n_sent = 0; n_received = 0 }

let send t pkt =
  t.n_sent <- t.n_sent + 1;
  Stripe_netsim.Link.send t.link ~size:pkt.Stripe_packet.Packet.size pkt

let rx_entry t app pkt =
  t.n_received <- t.n_received + 1;
  app pkt

let name t = t.sock_name
let sent t = t.n_sent
let received t = t.n_received
