(** Simplified reliable byte-stream transport.

    The Figure 15 measurements run "a sending program which sent a random
    mixture of small and large packets to the receiving program ... over
    a TCP connection". What that TCP contributes to the experiment is:
    (a) a backlogged sender that keeps the striping layer's transmit
    queues full, paced by a window; (b) in-order application delivery via
    a reassembly buffer, so striping-induced reordering costs receiver
    work rather than correctness; (c) recovery of genuinely lost
    segments. [Tcp_lite] provides exactly those: sliding window on byte
    offsets, cumulative ACKs, go-back-N on timeout.

    Deliberately absent (and irrelevant to the reproduced effects at the
    paper's loss-free saturation points): congestion control, fast
    retransmit — the latter intentionally, because packet reordering
    below the striping layer would trigger spurious fast retransmits and
    the paper's variants without logical reception still achieve close to
    full throughput, implying a reorder-tolerant receiver.

    Segmentation is delegated to a size generator so the application's
    packet-size mixture — the paper's experimental variable — passes
    through unchanged. *)

module Sender : sig
  type t

  val create :
    Stripe_netsim.Sim.t ->
    ?window:int ->
    ?rto:float ->
    next_segment_size:(unit -> int) ->
    transmit:(off:int -> size:int -> unit) ->
    unit ->
    t
  (** [window] (bytes, default 131072) bounds unacknowledged data; [rto]
      (default 0.2 s) is the fixed retransmission timeout, doubled on
      consecutive timeouts up to 8×. [next_segment_size] is consulted for
      every new segment; [transmit] puts a segment on the wire. *)

  val start : t -> unit
  (** Begin backlogged transmission: fill the window and keep it full as
      ACKs arrive. *)

  val stop : t -> unit
  (** Stop offering new data (outstanding segments are still
      retransmitted until acknowledged or [shutdown]). *)

  val shutdown : t -> unit
  (** Stop everything, including retransmission. *)

  val on_ack : t -> int -> unit
  (** Cumulative acknowledgment: the receiver's next expected byte. *)

  val bytes_acked : t -> int
  val segments_sent : t -> int
  val retransmissions : t -> int
  val timeouts : t -> int
  val in_flight : t -> int
  (** Unacknowledged bytes. *)
end

module Receiver : sig
  type t

  val create :
    send_ack:(int -> unit) ->
    deliver:(bytes:int -> unit) ->
    unit ->
    t
  (** [send_ack] transmits a cumulative ACK (called on every received
      segment); [deliver] reports in-order bytes reaching the
      application. *)

  val rx : t -> off:int -> len:int -> [ `In_order | `Out_of_order | `Duplicate ]
  (** Process a segment; the return value lets callers charge
      differentiated processing costs (out-of-order segments cost more —
      the receiver-bottleneck effect of §6.2/§7). *)

  val rcv_nxt : t -> int
  val bytes_delivered : t -> int
  val ooo_segments : t -> int
  val duplicate_segments : t -> int
  val reassembly_buffered : t -> int
  (** Segments currently parked in the reassembly buffer. *)
end
