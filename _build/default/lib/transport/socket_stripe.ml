open Stripe_packet

type channel_spec = {
  rate_bps : float;
  prop_delay : float;
  jitter : (Stripe_netsim.Rng.t -> float) option;
  loss : unit -> Stripe_netsim.Loss.t;
}

let spec ?(prop_delay = 0.005) ?jitter ?(loss = Stripe_netsim.Loss.none)
    ~rate_bps () =
  { rate_bps; prop_delay; jitter; loss }

type flow_control =
  | No_flow_control
  | Credit_based of { buffer : int }

type t = {
  sim : Stripe_netsim.Sim.t;
  links : Packet.t Stripe_netsim.Link.t array;
  striper : Stripe_core.Striper.t;
  scheduler : Stripe_core.Scheduler.t;
  reseq : Stripe_core.Resequencer.t;
  credit_sender : Credit.Sender.t option;
  credit_receiver : Credit.Receiver.t option;
  credit_delay : float;
  advertised : int array;  (* last limit sent upstream, per channel *)
  app_queue : Packet.t Queue.t;
  mutable n_congestion_drops : int;
  mutable n_delivered : int;
}

let rec pump t =
  if not (Queue.is_empty t.app_queue) then begin
    let pkt = Queue.peek t.app_queue in
    let channel = Stripe_core.Scheduler.choose t.scheduler pkt in
    let allowed =
      match t.credit_sender with
      | None -> true
      | Some cs -> Credit.Sender.can_send cs ~channel
    in
    if allowed then begin
      ignore (Queue.pop t.app_queue);
      (match t.credit_sender with
      | Some cs -> Credit.Sender.record_send cs ~channel
      | None -> ());
      Stripe_core.Striper.push t.striper pkt;
      pump t
    end
  end

(* Receive side: the per-channel socket buffer is the resequencer's
   buffer; the credit receiver mirrors its occupancy to decide drops
   (without flow control) and limits (with it). *)
let on_arrival t ~channel pkt =
  if Packet.is_marker pkt then Stripe_core.Resequencer.receive t.reseq ~channel pkt
  else
    match t.credit_receiver with
    | None -> Stripe_core.Resequencer.receive t.reseq ~channel pkt
    | Some cr ->
      if Credit.Receiver.accept cr ~channel then begin
        Credit.Receiver.record_arrival cr ~channel;
        Stripe_core.Resequencer.receive t.reseq ~channel pkt
      end
      else t.n_congestion_drops <- t.n_congestion_drops + 1

let create sim ~channels ~scheduler ?marker
    ?(flow_control = No_flow_control) ?(socket_buffer = 10_000)
    ?(credit_delay = 0.005) ?rng ~deliver () =
  let n = Array.length channels in
  if n = 0 then invalid_arg "Socket_stripe.create: no channels";
  if Stripe_core.Scheduler.n_channels scheduler <> n then
    invalid_arg "Socket_stripe.create: scheduler arity mismatch";
  let deficit =
    match Stripe_core.Scheduler.deficit scheduler with
    | Some d -> d
    | None ->
      invalid_arg "Socket_stripe.create: logical reception requires a CFQ scheduler"
  in
  let master_rng =
    match rng with Some r -> r | None -> Stripe_netsim.Rng.create 0x50C4
  in
  let credit_sender, credit_receiver =
    match flow_control with
    | No_flow_control ->
      (* Even without flow control a real socket has a finite buffer;
         overflow is congestion loss. *)
      (None, Some (Credit.Receiver.create ~n_channels:n ~buffer:socket_buffer))
    | Credit_based { buffer } ->
      ( Some (Credit.Sender.create ~n_channels:n ~initial_limit:buffer),
        Some (Credit.Receiver.create ~n_channels:n ~buffer) )
  in
  let self = ref None in
  let force_self () = match !self with Some x -> x | None -> assert false in
  let reseq =
    Stripe_core.Resequencer.create
      ~deficit:(Stripe_core.Deficit.clone_initial deficit)
      ~deliver:(fun ~channel pkt ->
        let t = force_self () in
        t.n_delivered <- t.n_delivered + 1;
        (match t.credit_receiver with
        | Some cr -> (
          Credit.Receiver.record_consume cr ~channel;
          (* Advertise new credit when enough has accumulated; the
             update crosses a lossless reverse control path. *)
          match t.credit_sender with
          | Some cs ->
            let limit = Credit.Receiver.current_limit cr ~channel in
            if limit - t.advertised.(channel) >= 1 then begin
              t.advertised.(channel) <- limit;
              Stripe_netsim.Sim.schedule_after t.sim ~delay:t.credit_delay
                (fun () ->
                  Credit.Sender.update_limit cs ~channel ~limit;
                  pump t)
            end
          | None -> ())
        | None -> ());
        deliver pkt)
      ()
  in
  let links =
    Array.mapi
      (fun i spec ->
        Stripe_netsim.Link.create sim
          ~name:(Printf.sprintf "sock%d" i)
          ~rate_bps:spec.rate_bps ~prop_delay:spec.prop_delay
          ?jitter:spec.jitter
          ~rng:(Stripe_netsim.Rng.split master_rng)
          ~loss:(spec.loss ())
          ~deliver:(fun pkt -> on_arrival (force_self ()) ~channel:i pkt)
          ())
      channels
  in
  let striper =
    Stripe_core.Striper.create ~scheduler ?marker
      ~now:(fun () -> Stripe_netsim.Sim.now sim)
      ~emit:(fun ~channel pkt ->
        ignore
          (Stripe_netsim.Link.send links.(channel) ~size:pkt.Packet.size pkt))
      ()
  in
  let t =
    {
      sim;
      links;
      striper;
      scheduler;
      reseq;
      credit_sender;
      credit_receiver;
      credit_delay;
      advertised =
        (match flow_control with
        | Credit_based { buffer } -> Array.make n buffer
        | No_flow_control -> Array.make n 0);
      app_queue = Queue.create ();
      n_congestion_drops = 0;
      n_delivered = 0;
    }
  in
  self := Some t;
  t

let send t pkt =
  Queue.add pkt t.app_queue;
  pump t

let sent_packets t = Stripe_core.Striper.pushed_packets t.striper
let delivered_packets t = t.n_delivered
let app_queue_length t = Queue.length t.app_queue
let congestion_drops t = t.n_congestion_drops

let channel_losses t =
  Array.fold_left (fun acc l -> acc + Stripe_netsim.Link.lost_packets l) 0 t.links

let sender_stalls t =
  match t.credit_sender with None -> 0 | Some cs -> Credit.Sender.stalls cs

let markers_sent t = Stripe_core.Striper.markers_sent t.striper
let resequencer t = t.reseq
let striper t = t.striper
