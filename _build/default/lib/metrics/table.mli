(** Plain-text tables and data series for the benchmark harness.

    Renders the rows and series of the paper's tables and figures as
    aligned monospace text, so [bench/main.exe] output reads like the
    artifacts it reproduces. *)

type t

val create : title:string -> columns:string list -> t

val add_row : t -> string list -> unit
(** Must match the column count. *)

val add_rowf : t -> ('a, unit, string, unit) format4 -> 'a
(** Single-cell convenience: formats one string and splits on ['|']
    into cells. *)

val render : t -> string
(** Title, header, separator, rows — columns padded to content width. *)

val print : t -> unit
(** [render] to stdout followed by a blank line. *)

val series :
  title:string -> x_label:string -> x:float list ->
  (string * float list) list -> string
(** [series ~title ~x_label ~x ys] renders a figure as columns: the x
    vector and one named column per series ("who wins, by what factor,
    where crossovers fall" is readable directly). All vectors must have
    the length of [x]. *)

val fmt_mbps : float -> string
val fmt_float : float -> string
val fmt_pct : float -> string
