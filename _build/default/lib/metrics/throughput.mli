(** Throughput measurement.

    Accumulates delivered bytes against simulated time and reports rates
    in bits per second and megabits per second, matching the units of
    Figure 15 (application-level Mbps). *)

type t

val create : unit -> t

val account : t -> now:float -> bytes:int -> unit
(** Record a delivery of [bytes] at simulated time [now]. *)

val start_at : t -> float -> unit
(** Set the measurement epoch (defaults to the first [account] time). *)

val bytes : t -> int

val packets : t -> int

val duration : t -> float
(** Time from the epoch to the latest accounted delivery. *)

val bps : t -> float
(** Average bits per second over [duration]; 0 if no time has passed. *)

val mbps : t -> float
