lib/metrics/recovery.mli:
