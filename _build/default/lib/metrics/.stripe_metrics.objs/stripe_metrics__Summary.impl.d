lib/metrics/summary.ml: Array Format List
