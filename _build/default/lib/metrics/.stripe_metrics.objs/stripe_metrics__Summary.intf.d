lib/metrics/summary.mli: Format
