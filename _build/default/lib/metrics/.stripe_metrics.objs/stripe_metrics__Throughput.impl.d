lib/metrics/throughput.ml:
