lib/metrics/table.mli:
