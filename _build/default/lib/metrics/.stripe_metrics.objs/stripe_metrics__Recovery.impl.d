lib/metrics/recovery.ml: List
