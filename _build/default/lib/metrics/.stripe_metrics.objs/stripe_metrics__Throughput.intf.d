lib/metrics/throughput.mli:
