type t = {
  mutable epoch : float option;
  mutable last : float;
  mutable b : int;
  mutable n : int;
}

let create () = { epoch = None; last = 0.0; b = 0; n = 0 }

let start_at t at = t.epoch <- Some at

let account t ~now ~bytes =
  (match t.epoch with None -> t.epoch <- Some now | Some _ -> ());
  if now > t.last then t.last <- now;
  t.b <- t.b + bytes;
  t.n <- t.n + 1

let bytes t = t.b

let packets t = t.n

let duration t =
  match t.epoch with None -> 0.0 | Some e -> max 0.0 (t.last -. e)

let bps t =
  let d = duration t in
  if d <= 0.0 then 0.0 else float_of_int (t.b * 8) /. d

let mbps t = bps t /. 1e6
