(** Streaming summary statistics.

    Single-pass mean/variance (Welford) plus min/max, with optional full
    retention for exact percentiles. Used by the benchmark harness to
    report distributions of per-packet latency, buffer occupancy, and
    recovery times. *)

type t

val create : ?keep_samples:bool -> unit -> t
(** [keep_samples] (default [false]) retains every observation so
    [percentile] is exact; otherwise [percentile] raises. *)

val add : t -> float -> unit

val count : t -> int
val mean : t -> float
(** 0 when empty. *)

val stddev : t -> float
(** Sample standard deviation; 0 with fewer than two observations. *)

val min_value : t -> float
(** Raises [Invalid_argument] when empty. *)

val max_value : t -> float
(** Raises [Invalid_argument] when empty. *)

val total : t -> float

val percentile : t -> float -> float
(** [percentile t p] with [p] in [0, 100]; nearest-rank on retained
    samples. Raises if empty or samples were not kept. *)

val pp : Format.formatter -> t -> unit
