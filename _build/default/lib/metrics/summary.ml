type t = {
  keep : bool;
  mutable n : int;
  mutable mean_acc : float;
  mutable m2 : float;
  mutable mn : float;
  mutable mx : float;
  mutable sum : float;
  mutable samples : float list;
}

let create ?(keep_samples = false) () =
  {
    keep = keep_samples;
    n = 0;
    mean_acc = 0.0;
    m2 = 0.0;
    mn = infinity;
    mx = neg_infinity;
    sum = 0.0;
    samples = [];
  }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean_acc in
  t.mean_acc <- t.mean_acc +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean_acc));
  if x < t.mn then t.mn <- x;
  if x > t.mx then t.mx <- x;
  t.sum <- t.sum +. x;
  if t.keep then t.samples <- x :: t.samples

let count t = t.n

let mean t = if t.n = 0 then 0.0 else t.mean_acc

let stddev t = if t.n < 2 then 0.0 else sqrt (t.m2 /. float_of_int (t.n - 1))

let min_value t =
  if t.n = 0 then invalid_arg "Summary.min_value: empty";
  t.mn

let max_value t =
  if t.n = 0 then invalid_arg "Summary.max_value: empty";
  t.mx

let total t = t.sum

let percentile t p =
  if not t.keep then invalid_arg "Summary.percentile: samples not kept";
  if t.n = 0 then invalid_arg "Summary.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Summary.percentile: p out of range";
  let sorted = List.sort compare t.samples in
  let arr = Array.of_list sorted in
  let rank =
    int_of_float (ceil (p /. 100.0 *. float_of_int t.n)) - 1
  in
  arr.(max 0 (min (t.n - 1) rank))

let pp fmt t =
  if t.n = 0 then Format.fprintf fmt "n=0"
  else
    Format.fprintf fmt "n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g" t.n (mean t)
      (stddev t) t.mn t.mx
