type t = {
  title : string;
  columns : string list;
  mutable rev_rows : string list list;
}

let create ~title ~columns = { title; columns; rev_rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Table.add_row: wrong arity";
  t.rev_rows <- row :: t.rev_rows

let add_rowf t fmt =
  Printf.ksprintf (fun s -> add_row t (String.split_on_char '|' s)) fmt

let render t =
  let rows = List.rev t.rev_rows in
  let all = t.columns :: rows in
  let n = List.length t.columns in
  let widths = Array.make n 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  let pad i cell = cell ^ String.make (widths.(i) - String.length cell) ' ' in
  let line row = String.concat "  " (List.mapi pad row) in
  let sep =
    String.concat "  "
      (List.mapi (fun i _ -> String.make widths.(i) '-') t.columns)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (line t.columns);
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (line row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let fmt_mbps v = Printf.sprintf "%.2f" v
let fmt_float v = Printf.sprintf "%.3g" v
let fmt_pct v = Printf.sprintf "%.1f%%" (v *. 100.0)

let series ~title ~x_label ~x ys =
  let columns = x_label :: List.map fst ys in
  let tbl = create ~title ~columns in
  List.iteri
    (fun i xi ->
      let row =
        fmt_float xi
        :: List.map
             (fun (_, col) ->
               if List.length col <> List.length x then
                 invalid_arg "Table.series: ragged series"
               else fmt_mbps (List.nth col i))
             ys
      in
      add_row tbl row)
    x;
  render tbl
