type t = {
  sim : Stripe_netsim.Sim.t;
  mutable free_at : float;
  mutable consumed : float;
}

let create sim () = { sim; free_at = 0.0; consumed = 0.0 }

let execute t ~cost k =
  if cost < 0.0 then invalid_arg "Cpu.execute: negative cost";
  let now = Stripe_netsim.Sim.now t.sim in
  let start = max now t.free_at in
  t.free_at <- start +. cost;
  t.consumed <- t.consumed +. cost;
  Stripe_netsim.Sim.schedule t.sim ~at:t.free_at k

let busy_until t = t.free_at

let backlog t = max 0.0 (t.free_at -. Stripe_netsim.Sim.now t.sim)

let busy_seconds t = t.consumed

let utilization t =
  let now = Stripe_netsim.Sim.now t.sim in
  if now <= 0.0 then 0.0 else t.consumed /. now
