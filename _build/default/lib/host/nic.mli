(** Network interface with interrupt-driven receive processing.

    Arriving packets enter a bounded rx ring. If no interrupt is pending
    for this NIC, one is posted to the CPU; when the handler runs it
    drains {e everything} then in the ring in one batch, paying the fixed
    interrupt cost once plus a per-packet cost for the batch.

    This reproduces the effect the paper identifies in Figure 15: "with a
    single interface under heavy load, multiple packets can be received
    in a single interrupt routine. This effect is less pronounced with
    striping, where interrupts are received from multiple interfaces" —
    under load a single busy NIC accumulates large batches between
    handler runs (few interrupts per packet), while the same aggregate
    rate split across several NICs yields smaller batches per NIC and
    more interrupts in total, raising CPU overhead. Coalescing here is
    emergent, not parameterized. *)

type 'a t

val create :
  Stripe_netsim.Sim.t ->
  cpu:Cpu.t ->
  ?name:string ->
  ?ring_capacity:int ->
  ?max_batch:int ->
  intr_cost:float ->
  per_packet_cost:float ->
  deliver:('a -> unit) ->
  unit ->
  'a t
(** [ring_capacity] defaults to 256 packets; overflow is dropped and
    counted. [intr_cost] is the fixed cost per handler activation;
    [per_packet_cost] per packet drained. [max_batch] bounds how many
    packets one handler activation may drain (a driver's rx budget);
    leftovers re-post the interrupt. Default: unbounded. Bounding the
    batch caps how far coalescing can amortize the interrupt cost, which
    is what makes a single saturated interface eventually CPU-bound. *)

val rx : 'a t -> 'a -> unit
(** A packet arrives from the wire. *)

val name : 'a t -> string
val interrupts : 'a t -> int
val packets : 'a t -> int
val ring_drops : 'a t -> int

val mean_batch : 'a t -> float
(** Average packets drained per interrupt — the coalescing factor. *)
