lib/host/nic.mli: Cpu Stripe_netsim
