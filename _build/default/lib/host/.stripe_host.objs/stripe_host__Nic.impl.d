lib/host/nic.ml: Cpu List Queue Stripe_netsim
