lib/host/cpu.ml: Stripe_netsim
