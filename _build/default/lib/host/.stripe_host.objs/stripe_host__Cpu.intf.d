lib/host/cpu.mli: Stripe_netsim
