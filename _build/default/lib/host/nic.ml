type 'a t = {
  sim : Stripe_netsim.Sim.t;
  cpu : Cpu.t;
  nic_name : string;
  ring_capacity : int;
  max_batch : int option;
  intr_cost : float;
  per_packet_cost : float;
  deliver : 'a -> unit;
  ring : 'a Queue.t;
  mutable intr_pending : bool;
  mutable n_interrupts : int;
  mutable n_packets : int;
  mutable n_drops : int;
}

let create sim ~cpu ?(name = "nic") ?(ring_capacity = 256) ?max_batch
    ~intr_cost ~per_packet_cost ~deliver () =
  if ring_capacity <= 0 then invalid_arg "Nic.create: ring_capacity must be positive";
  (match max_batch with
  | Some b when b <= 0 -> invalid_arg "Nic.create: max_batch must be positive"
  | Some _ | None -> ());
  {
    sim;
    cpu;
    nic_name = name;
    ring_capacity;
    max_batch;
    intr_cost;
    per_packet_cost;
    deliver;
    ring = Queue.create ();
    intr_pending = false;
    n_interrupts = 0;
    n_packets = 0;
    n_drops = 0;
  }

(* Post an interrupt: the handler starts after the fixed cost; it then
   drains the ring — up to the rx budget — as one batch, paying the
   per-packet cost, and re-posts itself if packets remain or arrived
   meanwhile. *)
let rec post_interrupt t =
  t.intr_pending <- true;
  t.n_interrupts <- t.n_interrupts + 1;
  Cpu.execute t.cpu ~cost:t.intr_cost (fun () ->
      let batch =
        match t.max_batch with
        | Some budget -> min budget (Queue.length t.ring)
        | None -> Queue.length t.ring
      in
      let drained = ref [] in
      for _ = 1 to batch do
        drained := Queue.pop t.ring :: !drained
      done;
      let drained = List.rev !drained in
      Cpu.execute t.cpu
        ~cost:(float_of_int batch *. t.per_packet_cost)
        (fun () ->
          t.n_packets <- t.n_packets + batch;
          List.iter t.deliver drained;
          t.intr_pending <- false;
          if not (Queue.is_empty t.ring) then post_interrupt t))

let rx t pkt =
  if Queue.length t.ring >= t.ring_capacity then t.n_drops <- t.n_drops + 1
  else begin
    Queue.add pkt t.ring;
    if not t.intr_pending then post_interrupt t
  end

let name t = t.nic_name
let interrupts t = t.n_interrupts
let packets t = t.n_packets
let ring_drops t = t.n_drops

let mean_batch t =
  if t.n_interrupts = 0 then 0.0
  else float_of_int t.n_packets /. float_of_int t.n_interrupts
