(** Host CPU model.

    A single work-conserving processor: work items queue FIFO and each
    occupies the CPU for its cost in seconds. This is the bottleneck that
    shapes Figure 15 — "the CPU cannot keep up with the network at higher
    speeds", and "the bottleneck is in the interrupt driver processing,
    as opposed to the striping overhead". Protocol work (per-packet send
    processing, interrupt handling) is charged here; when offered work
    exceeds capacity, completion times slide and upstream queues back
    up. *)

type t

val create : Stripe_netsim.Sim.t -> unit -> t

val execute : t -> cost:float -> (unit -> unit) -> unit
(** [execute t ~cost k] queues a work item taking [cost] seconds of CPU
    and calls [k] at its completion time. [cost] must be non-negative. *)

val busy_until : t -> float
(** Time at which all currently queued work completes. *)

val backlog : t -> float
(** Seconds of queued work not yet completed ([busy_until - now],
    floored at 0). *)

val busy_seconds : t -> float
(** Cumulative CPU seconds consumed by completed-or-scheduled work. *)

val utilization : t -> float
(** [busy_seconds / now]; 0 before time advances. May exceed 1 transiently
    because scheduled work is counted when queued. *)
