(** Common link and packet size constants.

    Values match the environments the paper stripes over: Ethernet and an
    ATM PVC carrying IP, plus the packet sizes used in its experiments
    (random mixes of small/large packets; the deterministic 1000/200-byte
    alternation of the GRR worst case). *)

val ethernet_mtu : int
(** 1500 bytes. *)

val ethernet_overhead : int
(** Per-frame overhead on the wire: MAC header + FCS + preamble + IFG
    equivalent (38 bytes), charged per packet by the link model. *)

val atm_cell : int
(** 53 bytes per cell, 48 payload. *)

val atm_overhead_for : int -> int
(** [atm_overhead_for n] is the AAL5 wire cost of an [n]-byte IP packet:
    the padding + cell headers beyond the payload bytes, i.e.
    [cells * 53 - n] with [cells = ceil((n + 8) / 48)] (8 = AAL5
    trailer). *)

val ip_header : int
(** 20 bytes. *)

val small_packet : int
(** 200 bytes — the paper's small packet. *)

val large_packet : int
(** 1000 bytes — the paper's large packet. *)
