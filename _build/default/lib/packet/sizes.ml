let ethernet_mtu = 1500
let ethernet_overhead = 38
let atm_cell = 53
let ip_header = 20
let small_packet = 200
let large_packet = 1000

let atm_overhead_for n =
  if n < 0 then invalid_arg "Sizes.atm_overhead_for: negative size";
  let cells = (n + 8 + 47) / 48 in
  (cells * atm_cell) - n
