type 'a t = {
  q : ('a * int) Queue.t;
  mutable total_bytes : int;
  mutable hw_packets : int;
  mutable hw_bytes : int;
}

let create () = { q = Queue.create (); total_bytes = 0; hw_packets = 0; hw_bytes = 0 }

let push t ~size v =
  Queue.add (v, size) t.q;
  t.total_bytes <- t.total_bytes + size;
  if Queue.length t.q > t.hw_packets then t.hw_packets <- Queue.length t.q;
  if t.total_bytes > t.hw_bytes then t.hw_bytes <- t.total_bytes

let pop t =
  match Queue.take_opt t.q with
  | None -> None
  | Some (v, size) ->
    t.total_bytes <- t.total_bytes - size;
    Some v

let peek t = Option.map fst (Queue.peek_opt t.q)

let is_empty t = Queue.is_empty t.q

let length t = Queue.length t.q

let bytes t = t.total_bytes

let high_water_packets t = t.hw_packets

let high_water_bytes t = t.hw_bytes

let clear t =
  Queue.clear t.q;
  t.total_bytes <- 0

let to_list t = List.map fst (List.of_seq (Queue.to_seq t.q))
