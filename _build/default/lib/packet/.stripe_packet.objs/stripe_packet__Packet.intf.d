lib/packet/packet.mli: Format
