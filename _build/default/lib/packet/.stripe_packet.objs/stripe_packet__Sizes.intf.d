lib/packet/sizes.mli:
