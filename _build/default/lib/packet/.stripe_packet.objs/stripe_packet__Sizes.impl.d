lib/packet/sizes.ml:
