lib/packet/fifo_queue.ml: List Option Queue
