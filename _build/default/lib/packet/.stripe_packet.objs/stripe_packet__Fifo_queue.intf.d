lib/packet/fifo_queue.mli:
