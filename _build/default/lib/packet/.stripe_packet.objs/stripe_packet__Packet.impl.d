lib/packet/packet.ml: Format Printf
