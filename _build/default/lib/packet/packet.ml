type marker = {
  m_channel : int;
  m_round : int;
  m_dc : int;
  m_credit : int option;
  m_reset : bool;
}

type kind =
  | Data
  | Marker of marker

type t = {
  seq : int;
  size : int;
  kind : kind;
  flow : int;
  frame : int;
  off : int;
  born : float;
}

let marker_size = 32

let data ?(flow = 0) ?(frame = -1) ?(off = -1) ?(born = 0.0) ~seq ~size () =
  if size <= 0 then invalid_arg "Packet.data: size must be positive";
  { seq; size; kind = Data; flow; frame; off; born }

let marker ?credit ?(reset = false) ~channel ~round ~dc ~born () =
  {
    seq = -1;
    size = marker_size;
    kind =
      Marker
        {
          m_channel = channel;
          m_round = round;
          m_dc = dc;
          m_credit = credit;
          m_reset = reset;
        };
    flow = 0;
    frame = -1;
    off = -1;
    born;
  }

let is_marker t = match t.kind with Marker _ -> true | Data -> false

let get_marker t =
  match t.kind with
  | Marker m -> m
  | Data -> invalid_arg "Packet.get_marker: data packet"

let pp fmt t =
  match t.kind with
  | Data -> Format.fprintf fmt "#%d(%dB)" t.seq t.size
  | Marker m ->
    Format.fprintf fmt "M(ch=%d,R=%d,DC=%d%s%s)" m.m_channel m.m_round m.m_dc
      (match m.m_credit with
      | None -> ""
      | Some c -> Printf.sprintf ",credit=%d" c)
      (if m.m_reset then ",reset" else "")

let equal a b = a = b

let compare_seq a b = compare a.seq b.seq
