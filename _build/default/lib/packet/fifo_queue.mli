(** FIFO packet buffer with byte accounting.

    Used for the per-channel receive buffers of logical reception (§4) and
    for transmit queues. Tracks current and high-water occupancy in both
    packets and bytes, which the benchmarks report to size real buffers
    against channel skew. The size of each element is supplied at [push]
    so the queue stays generic. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> size:int -> 'a -> unit

val pop : 'a t -> 'a option
(** Remove the oldest element. *)

val peek : 'a t -> 'a option
(** Oldest element without removing it. *)

val is_empty : 'a t -> bool

val length : 'a t -> int

val bytes : 'a t -> int

val high_water_packets : 'a t -> int
(** Maximum simultaneous occupancy (packets) observed since creation. *)

val high_water_bytes : 'a t -> int

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Oldest first. O(n). *)
