(* §6.3's transport-level striping: packets striped across UDP-like
   sockets with SRR + logical reception, protected by the FCVC credit
   scheme so an overdriven sender never overruns the receive buffers.

   Run with: dune exec examples/transport_striping.exe *)

open Stripe_netsim
open Stripe_packet
open Stripe_transport

let () =
  let sim = Sim.create () in
  let channels =
    [|
      Socket_stripe.spec ~rate_bps:5e6 ~prop_delay:0.004 ();
      Socket_stripe.spec ~rate_bps:2e6 ~prop_delay:0.012 ();
      Socket_stripe.spec ~rate_bps:1e6 ~prop_delay:0.020 ();
    |]
  in
  (* Quanta proportional to the socket rates: weighted SRR. *)
  let delivered = ref 0 in
  let in_order = ref true in
  let last = ref (-1) in
  let sock =
    Socket_stripe.create sim ~channels
      ~scheduler:
        (Stripe_core.Scheduler.of_deficit ~name:"WSRR"
           (Stripe_core.Srr.for_rates ~rates_bps:[| 5e6; 2e6; 1e6 |]
              ~quantum_unit:1500 ()))
      ~marker:(Stripe_core.Marker.make ~every_rounds:4 ())
      ~flow_control:(Socket_stripe.Credit_based { buffer = 24 })
      ~deliver:(fun pkt ->
        incr delivered;
        if pkt.Packet.seq < !last then in_order := false;
        last := pkt.Packet.seq)
      ()
  in
  (* Offer 12 Mbps into an 8 Mbps bundle: credits must absorb the excess
     as sender-side queueing, not loss. *)
  let n = 4_000 in
  for seq = 0 to n - 1 do
    Sim.schedule sim ~at:(float_of_int seq *. 0.000666) (fun () ->
        Socket_stripe.send sock (Packet.data ~seq ~size:1000 ()))
  done;
  Sim.run sim;

  Printf.printf "striped %d packets over 3 UDP sockets (5/2/1 Mbps), credits B=24\n" n;
  Printf.printf "  delivered: %d, in order: %b\n" !delivered !in_order;
  Printf.printf "  congestion drops: %d (credits make this zero)\n"
    (Socket_stripe.congestion_drops sock);
  Printf.printf "  channel losses: %d, sender stalls: %d\n"
    (Socket_stripe.channel_losses sock)
    (Socket_stripe.sender_stalls sock);
  Printf.printf "  markers carrying the schedule state: %d\n"
    (Socket_stripe.markers_sent sock);
  if !delivered <> n || not !in_order then exit 1
