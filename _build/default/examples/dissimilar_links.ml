(* The paper's §6.1 architecture end to end: transparent IP striping over
   an Ethernet and an ATM link between two hosts, using the strIPe
   virtual interface and host routes — exactly the NetBSD setup, in the
   simulator. The aggregate throughput approaches the sum of the two
   links.

   Run with: dune exec examples/dissimilar_links.exe *)

open Stripe_netsim
open Stripe_packet
open Stripe_ipstack

(* A unidirectional wire between two interfaces. *)
let wire sim ~rate_bps ~prop_delay ~mtu ~src ~dst =
  let arp = Arp.create sim ~lookup:(fun _ -> Some 0x1) () in
  let rx_side = ref None in
  let link =
    Link.create sim ~rate_bps ~prop_delay
      ~deliver:(fun frame ->
        match !rx_side with Some iface -> Iface.rx iface frame | None -> ())
      ()
  in
  let tx = Iface.create sim ~name:"tx" ~addr:(Ip.addr src) ~prefix:24 ~mtu ~arp ~link () in
  let rx = Iface.create sim ~name:"rx" ~addr:(Ip.addr dst) ~prefix:24 ~mtu ~arp ~link () in
  rx_side := Some rx;
  (tx, rx)

let () =
  let sim = Sim.create () in
  let sender = Node.create ~name:"sender" () in
  let receiver = Node.create ~name:"receiver" () in

  (* Two physical paths: 10 Mbps Ethernet and a 16 Mbps ATM PVC. *)
  let eth_tx, eth_rx =
    wire sim ~rate_bps:10e6 ~prop_delay:0.001 ~mtu:1500 ~src:"10.1.0.1"
      ~dst:"10.1.0.9"
  in
  let atm_tx, atm_rx =
    wire sim ~rate_bps:16e6 ~prop_delay:0.004 ~mtu:1500 ~src:"10.2.0.1"
      ~dst:"10.2.0.9"
  in

  (* strIPe virtual interfaces on both hosts, weighted SRR matching the
     link rates, markers every 4 rounds. *)
  let rates = [| 10e6; 16e6 |] in
  let engine = Stripe_core.Srr.for_rates ~rates_bps:rates ~quantum_unit:1500 () in
  let tx_layer =
    Stripe_layer.create ~name:"stripe0" ~members:[| eth_tx; atm_tx |]
      ~scheduler:(Stripe_core.Scheduler.of_deficit ~name:"SRR" engine)
      ~marker:(Stripe_core.Marker.make ~every_rounds:4 ())
      ~now:(fun () -> Sim.now sim)
      ~deliver_up:(fun _ -> ())
      ()
  in
  let goodput = Stripe_metrics.Throughput.create () in
  Stripe_metrics.Throughput.start_at goodput 0.0;
  let rx_layer =
    Stripe_layer.create ~name:"stripe0" ~members:[| eth_rx; atm_rx |]
      ~scheduler:
        (Stripe_core.Scheduler.of_deficit ~name:"SRR"
           (Stripe_core.Deficit.clone_initial engine))
      ~deliver_up:(fun ip -> Node.ip_input receiver ip)
      ()
  in
  Node.add_stripe sender tx_layer;
  Node.add_stripe receiver rx_layer;

  (* Host routes override network routes: both of the receiver's
     addresses route through the bundle. *)
  Routing.add_host (Node.routing sender) (Ip.addr "10.1.0.9") "stripe0";
  Routing.add_host (Node.routing sender) (Ip.addr "10.2.0.9") "stripe0";

  Node.set_protocol_handler receiver ~proto:17 (fun ip ->
      Stripe_metrics.Throughput.account goodput ~now:(Sim.now sim)
        ~bytes:(Ip.size ip));

  (* A backlogged application: keep ~60 KB in flight for 2 simulated
     seconds of mixed-size datagrams. *)
  let rng = Rng.create 7 in
  let seq = ref 0 in
  let duration = 2.0 in
  let rec offer () =
    if Sim.now sim < duration then begin
      let queued =
        Stripe_layer.member_queue_bytes tx_layer 0
        + Stripe_layer.member_queue_bytes tx_layer 1
      in
      if queued < 60_000 then
        for _ = 1 to 16 do
          let size = if Rng.bool rng then 200 else 1000 in
          Node.send sender
            (Ip.make ~src:(Ip.addr "10.1.0.1") ~dst:(Ip.addr "10.1.0.9")
               (Packet.data ~seq:!seq ~size ()));
          incr seq
        done;
      Sim.schedule_after sim ~delay:0.001 offer
    end
  in
  offer ();
  Sim.run sim;

  let mbps =
    float_of_int (Stripe_metrics.Throughput.bytes goodput * 8) /. duration /. 1e6
  in
  Printf.printf "strIPe over 10 Mbps Ethernet + 16 Mbps ATM PVC\n";
  Printf.printf "  datagrams striped: %d, delivered in order: %d (reordered: %d)\n"
    (Stripe_layer.sent_datagrams tx_layer)
    (Stripe_layer.delivered_datagrams rx_layer)
    (Stripe_core.Reorder.out_of_order (Stripe_layer.reorder rx_layer));
  Printf.printf "  aggregate IP throughput: %.1f Mbps (links sum to 26 raw)\n" mbps;
  let s = Stripe_layer.striper tx_layer in
  Printf.printf "  byte split eth/atm: %d / %d (rate ratio 10:16)\n"
    (Stripe_core.Striper.channel_bytes s 0)
    (Stripe_core.Striper.channel_bytes s 1)
