(* Quasi-FIFO and marker recovery (§5): stripe through a loss burst and
   watch delivery go out of order, then snap back to FIFO one marker
   interval after the burst ends.

   Run with: dune exec examples/lossy_resync.exe *)

open Stripe_netsim
open Stripe_packet
open Stripe_core

let () =
  let sim = Sim.create () in
  let lossy = ref false in
  let loss_rng = Rng.create 99 in
  let recovery = Stripe_metrics.Recovery.create () in
  let reorder = Reorder.create () in

  let engine = Srr.create ~quanta:[| 1500; 1500 |] () in
  let resequencer =
    Resequencer.create
      ~deficit:(Deficit.clone_initial engine)
      ~deliver:(fun ~channel:_ pkt ->
        Stripe_metrics.Recovery.observe recovery ~now:(Sim.now sim)
          ~seq:pkt.Packet.seq;
        Reorder.observe reorder ~seq:pkt.Packet.seq)
      ()
  in
  let links =
    Array.init 2 (fun i ->
        Link.create sim
          ~name:(Printf.sprintf "ch%d" i)
          ~rate_bps:10e6 ~prop_delay:0.005
          ~deliver:(fun pkt ->
            let drop =
              !lossy
              && (not (Packet.is_marker pkt))
              && Rng.bernoulli loss_rng ~p:0.4
            in
            if not drop then Resequencer.receive resequencer ~channel:i pkt)
          ())
  in
  let striper =
    Striper.create
      ~scheduler:(Scheduler.of_deficit ~name:"SRR" engine)
      ~marker:(Marker.make ~every_rounds:4 ())
      ~now:(fun () -> Sim.now sim)
      ~emit:(fun ~channel pkt ->
        ignore (Link.send links.(channel) ~size:pkt.Packet.size pkt))
      ()
  in

  (* Paced mixed-size stream for 3 s; 40% loss between t=1s and t=2s. *)
  let rng = Rng.create 4 in
  let seq = ref 0 in
  let rec tick () =
    if Sim.now sim < 3.0 then begin
      Striper.push striper
        (Packet.data ~seq:!seq ~size:(if Rng.bool rng then 200 else 1000) ());
      incr seq;
      Sim.schedule_after sim ~delay:0.0008 tick
    end
  in
  tick ();
  Sim.schedule sim ~at:1.0 (fun () -> lossy := true);
  Sim.schedule sim ~at:2.0 (fun () -> lossy := false);
  Sim.run sim;

  Printf.printf "3 s stream, 40%% loss burst during [1 s, 2 s], markers every 4 rounds\n";
  Printf.printf "  delivered: %d  out-of-order deliveries: %d (all during the burst)\n"
    (Reorder.observed reorder) (Reorder.out_of_order reorder);
  Printf.printf "  channel visits skipped by the marker rule: %d\n"
    (Resequencer.skips resequencer);
  (match Stripe_metrics.Recovery.resync_time recovery ~errors_stop:2.0 with
  | Some dt ->
    Printf.printf "  FIFO delivery restored %.1f ms after the burst ended\n"
      (1000.0 *. dt)
  | None -> Printf.printf "  stream never recovered (unexpected)\n");
  Printf.printf "  in order after recovery: %b\n"
    (Stripe_metrics.Recovery.in_order_after recovery ~time:2.05)
