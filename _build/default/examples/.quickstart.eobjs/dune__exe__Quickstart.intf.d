examples/quickstart.mli:
