examples/transport_striping.mli:
