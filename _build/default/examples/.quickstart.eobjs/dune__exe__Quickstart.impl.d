examples/quickstart.ml: Array Deficit Fun Link List Marker Packet Printf Resequencer Rng Scheduler Sim Srr Stripe_core Stripe_netsim Stripe_packet Striper
