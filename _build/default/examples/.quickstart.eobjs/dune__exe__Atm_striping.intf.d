examples/atm_striping.mli:
