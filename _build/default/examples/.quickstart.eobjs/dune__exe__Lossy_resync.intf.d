examples/lossy_resync.mli:
