examples/duality.mli:
