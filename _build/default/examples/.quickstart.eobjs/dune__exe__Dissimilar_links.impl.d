examples/dissimilar_links.ml: Arp Iface Ip Link Node Packet Printf Rng Routing Sim Stripe_core Stripe_ipstack Stripe_layer Stripe_metrics Stripe_netsim Stripe_packet
