examples/video_striping.ml: Array Deficit Link List Marker Packet Playback Printf Reorder Resequencer Rng Scheduler Sim Srr Stripe_core Stripe_netsim Stripe_packet Stripe_workload Striper Video
