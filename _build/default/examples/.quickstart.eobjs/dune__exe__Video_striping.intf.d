examples/video_striping.mli:
