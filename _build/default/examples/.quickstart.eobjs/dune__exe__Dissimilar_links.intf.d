examples/dissimilar_links.mli:
