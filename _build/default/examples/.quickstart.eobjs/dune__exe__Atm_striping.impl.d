examples/atm_striping.ml: Array Cell Link List Packet Printf Rng Sim Stripe_atm Stripe_core Stripe_netsim Stripe_packet Stripe_vc
