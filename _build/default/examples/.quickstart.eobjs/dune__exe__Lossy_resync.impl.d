examples/lossy_resync.ml: Array Deficit Link Marker Packet Printf Reorder Resequencer Rng Scheduler Sim Srr Stripe_core Stripe_metrics Stripe_netsim Stripe_packet Striper
