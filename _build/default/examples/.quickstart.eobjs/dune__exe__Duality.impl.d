examples/duality.ml: Array Cfq Fair_queue Fun List Packet Printf Rng Scheduler Srr String Stripe_core Stripe_netsim Stripe_packet Striper
