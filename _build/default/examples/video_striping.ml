(* §6.3's application study: an NV-style video-conference trace striped
   over two lossy UDP channels with quasi-FIFO delivery, judged by a
   playout-buffer quality model. Reordering that stays inside the playout
   window is invisible; loss is what hurts.

   Run with: dune exec examples/video_striping.exe *)

open Stripe_netsim
open Stripe_packet
open Stripe_core
open Stripe_workload

let () =
  let rng = Rng.create 11 in
  let trace = Video.generate ~rng ~fps:10.0 ~n_frames:200 () in
  Printf.printf "NV-style trace: %d frames, %d packets, %.0f s at %g fps\n"
    (Array.length trace.Video.frames)
    (Video.n_packets trace) (Video.duration trace) trace.Video.fps;

  let run ~loss_p =
    let sim = Sim.create () in
    let loss_rng = Rng.create 5 in
    let playback = Playback.create ~trace ~playout_delay:0.4 () in
    let reorder = Reorder.create () in
    let engine = Srr.create ~quanta:[| 1500; 1500 |] () in
    let resequencer =
      Resequencer.create
        ~deficit:(Deficit.clone_initial engine)
        ~deliver:(fun ~channel:_ pkt ->
          Reorder.observe reorder ~seq:pkt.Packet.seq;
          Playback.packet_arrived playback ~frame:pkt.Packet.frame
            ~now:(Sim.now sim))
        ()
    in
    let links =
      Array.init 2 (fun i ->
          Link.create sim
            ~name:(Printf.sprintf "udp%d" i)
            ~rate_bps:2e6
            ~prop_delay:(0.01 +. (0.02 *. float_of_int i))
            ~deliver:(fun pkt ->
              if Packet.is_marker pkt || not (Rng.bernoulli loss_rng ~p:loss_p)
              then Resequencer.receive resequencer ~channel:i pkt)
            ())
    in
    let striper =
      Striper.create
        ~scheduler:(Scheduler.of_deficit ~name:"SRR" engine)
        ~marker:(Marker.make ~every_rounds:4 ())
        ~now:(fun () -> Sim.now sim)
        ~emit:(fun ~channel pkt ->
          ignore (Link.send links.(channel) ~size:pkt.Packet.size pkt))
        ()
    in
    List.iter
      (fun (t, pkt) -> Sim.schedule sim ~at:t (fun () -> Striper.push striper pkt))
      (Video.packets trace);
    Sim.run sim;
    (Playback.finalize playback, Reorder.out_of_order reorder)
  in

  List.iter
    (fun loss_p ->
      let report, ooo = run ~loss_p in
      Printf.printf
        "loss %2.0f%%: %3d reordered packets, %3d frames glitched, %3d badly \
         degraded (%.0f%%)\n"
        (100.0 *. loss_p) ooo report.Playback.glitched_frames
        report.Playback.degraded_frames
        (100.0 *. report.Playback.degraded_rate))
    [ 0.0; 0.1; 0.2; 0.4; 0.6 ];
  print_endline
    "Reordering from quasi-FIFO delivery never shows; degradation tracks loss."
