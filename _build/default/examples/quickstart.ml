(* Quickstart: stripe a packet stream over three channels with SRR and
   logical reception, and watch FIFO order survive wildly different
   channel delays.

   Run with: dune exec examples/quickstart.exe *)

open Stripe_netsim
open Stripe_packet
open Stripe_core

let () =
  let sim = Sim.create () in

  (* 1. One SRR engine defines the striping schedule; the receiver
        simulates a clone of it (logical reception, §4 of the paper). *)
  let engine = Srr.create ~quanta:[| 1500; 1500; 1500 |] () in

  let delivered = ref [] in
  let resequencer =
    Resequencer.create
      ~deficit:(Deficit.clone_initial engine)
      ~deliver:(fun ~channel:_ pkt -> delivered := pkt.Packet.seq :: !delivered)
      ()
  in

  (* 2. Three channels with very different latencies and rates. Each is
        FIFO on its own, as the protocol requires; nothing else is
        assumed. *)
  let channel_specs = [| (40e6, 0.001); (10e6, 0.015); (4e6, 0.040) |] in
  let links =
    Array.mapi
      (fun i (rate_bps, prop_delay) ->
        Link.create sim
          ~name:(Printf.sprintf "channel-%d" i)
          ~rate_bps ~prop_delay
          ~deliver:(fun pkt -> Resequencer.receive resequencer ~channel:i pkt)
          ())
      channel_specs
  in

  (* 3. The sender: SRR striping with periodic resynchronization
        markers. *)
  let striper =
    Striper.create
      ~scheduler:(Scheduler.of_deficit ~name:"SRR" engine)
      ~marker:(Marker.make ~every_rounds:4 ())
      ~now:(fun () -> Sim.now sim)
      ~emit:(fun ~channel pkt ->
        ignore (Link.send links.(channel) ~size:pkt.Packet.size pkt))
      ()
  in

  (* 4. Push a mixed-size stream. *)
  let rng = Rng.create 2024 in
  let n = 2_000 in
  for seq = 0 to n - 1 do
    let size = 64 + Rng.int rng 1400 in
    Striper.push striper (Packet.data ~seq ~size ())
  done;
  Sim.run sim;

  (* 5. Check what came out. *)
  let out = List.rev !delivered in
  let in_order = out = List.init n Fun.id in
  Printf.printf "sent %d packets over %d channels\n" n (Array.length links);
  Array.iteri
    (fun i _ ->
      Printf.printf "  channel %d carried %d packets / %d bytes\n" i
        (Striper.channel_packets striper i)
        (Striper.channel_bytes striper i))
    links;
  Printf.printf "markers sent: %d\n" (Striper.markers_sent striper);
  Printf.printf "receiver buffered at most %d packets while waiting on skew\n"
    (Resequencer.buffer_high_water_packets resequencer);
  Printf.printf "delivered %d packets, FIFO order preserved: %b\n"
    (List.length out) in_order;
  if not in_order then exit 1
