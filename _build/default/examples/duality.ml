(* The theoretical heart of the paper, hands on: load sharing algorithms
   are time-reversed fair queuing algorithms (§3, Theorem 3.1).

   This example runs the same SRR engine in both roles - striping a
   stream across channels, then fair-queuing the per-channel outputs
   back into one stream - and checks the round trip is the identity. It
   then shows why causality is the hinge: a deployable fair queuing
   discipline with idle-skipping is *not* simulatable by a receiver.

   Run with: dune exec examples/duality.exe *)

open Stripe_netsim
open Stripe_packet
open Stripe_core

let () =
  let rng = Rng.create 123 in
  let quanta = [| 1500; 1500; 1500 |] in

  (* A random stream of 30 packets. *)
  let input =
    List.init 30 (fun seq -> (64 + Rng.int rng 1400, Printf.sprintf "p%d" seq))
  in
  Printf.printf "input stream: %s...\n"
    (String.concat " " (List.filteri (fun i _ -> i < 8) (List.map snd input)));

  (* Forward direction: stripe it (Figure 3). *)
  let cfq = Cfq.of_deficit ~name:"SRR" (fun () -> Srr.create ~quanta ()) in
  let dispatch = Cfq.load_share cfq input in
  let per_channel = Cfq.outputs_by_channel ~n:3 dispatch in
  Array.iteri
    (fun c q ->
      Printf.printf "channel %d carries: %s%s\n" c
        (String.concat " " (List.filteri (fun i _ -> i < 6) (List.map snd q)))
        (if List.length q > 6 then " ..." else ""))
    per_channel;

  (* Reverse direction: fair-queue the channels back (Figure 2). *)
  (match Cfq.fair_queue cfq per_channel with
  | Some order ->
    let restored = List.map snd order in
    Printf.printf "fair-queuing the channels restores the stream: %b\n"
      (restored = input)
  | None -> print_endline "unexpected: left the backlogged regime");

  (* The same correspondence through the deployable components: a real
     striper feeding per-channel queues of a real Fair_queue. *)
  let engine = Srr.create ~quanta () in
  let fq = Fair_queue.create ~quanta () in
  let striper =
    Striper.create
      ~scheduler:(Scheduler.of_deficit ~name:"SRR" engine)
      ~emit:(fun ~channel pkt -> Fair_queue.enqueue fq ~flow:channel pkt)
      ()
  in
  List.iteri
    (fun seq (size, _) -> Striper.push striper (Packet.data ~seq ~size ()))
    input;
  let rec drain acc =
    match Fair_queue.dequeue fq with
    | Some (_, pkt) -> drain (pkt.Packet.seq :: acc)
    | None -> List.rev acc
  in
  let restored = drain [] in
  Printf.printf
    "striper -> Fair_queue round trip is also the identity: %b\n"
    (restored = List.init 30 Fun.id);

  (* Causality, the hinge (§3.1): logical reception needs the sender's
     choices to be a function of previously sent packets only. SRR
     qualifies; shortest-queue-first does not - its choice depends on
     instantaneous queue depths the receiver cannot see. *)
  let depths = [| ref 0; ref 0; ref 0 |] in
  let sqf =
    Scheduler.shortest_queue ~queue_bytes:(fun c -> !(depths.(c))) ~n:3
  in
  Printf.printf "SRR is causal: %b; shortest-queue-first is causal: %b\n"
    (Scheduler.causal (Scheduler.srr ~quanta ()))
    (Scheduler.causal sqf);
  print_endline
    "=> only the causal family supports receiver simulation, which is why";
  print_endline
    "   the paper transforms fair queuing rather than inventing a scheduler."
