(* §7's flagship application: striping IP packets across ATM virtual
   circuits, markers riding OAM cells on the same VCs, surviving cell
   loss (each lost cell costs one AAL5 frame, which the marker protocol
   absorbs like any packet loss).

   Run with: dune exec examples/atm_striping.exe *)

open Stripe_netsim
open Stripe_packet
open Stripe_atm

let () =
  let sim = Sim.create () in
  let rng = Rng.create 8 in
  let loss_rng = Rng.create 9 in
  let delivered = ref [] in
  let lossy = ref true in
  let vc_links = ref [||] in
  let svc =
    Stripe_vc.create ~n_vcs:3 ~quanta:[| 1500; 1500; 1500 |]
      ~marker:(Stripe_core.Marker.make ~every_rounds:4 ())
      ~now:(fun () -> Sim.now sim)
      ~send_cell:(fun ~vc cell ->
        ignore (Link.send !vc_links.(vc) ~size:Cell.size cell))
      ~deliver:(fun pkt -> delivered := pkt.Packet.seq :: !delivered)
      ()
  in
  vc_links :=
    Array.init 3 (fun i ->
        Link.create sim
          ~name:(Printf.sprintf "vc%d" i)
          ~rate_bps:25e6
          ~prop_delay:(0.002 +. (0.003 *. float_of_int i))
          ~deliver:(fun cell ->
            (* 0.1% cell loss during the first half of the run; OAM
               cells carrying markers get through. *)
            let drop =
              !lossy
              && (not (Cell.is_oam cell))
              && Rng.bernoulli loss_rng ~p:0.001
            in
            if not drop then Stripe_vc.receive_cell svc ~vc:i cell)
          ());
  let n = 3000 in
  let seq = ref 0 in
  let rec tick () =
    if !seq < n then begin
      Stripe_vc.push svc (Packet.data ~seq:!seq ~size:(100 + Rng.int rng 1400) ());
      incr seq;
      if !seq = n / 2 then lossy := false;
      Sim.schedule_after sim ~delay:0.0002 tick
    end
  in
  tick ();
  Sim.run sim;
  let out = List.rev !delivered in
  let tail = List.filteri (fun i _ -> i >= List.length out - n / 3) out in
  Printf.printf "striped %d IP packets over 3 ATM VCs (AAL5 cells, OAM markers)\n" n;
  Printf.printf "  delivered: %d  frames killed by cell loss: %d\n"
    (List.length out)
    (Stripe_vc.corrupted_frames svc);
  Printf.printf "  OAM marker cells: %d  receiver skips: %d\n"
    (Stripe_vc.markers_sent svc)
    (Stripe_core.Resequencer.skips (Stripe_vc.resequencer svc));
  Printf.printf "  FIFO after cell loss stopped: %b\n"
    (List.sort compare tail = tail);
  if not (List.sort compare tail = tail) then exit 1
