(* Tests for the FIFO link model: serialization timing, FIFO preservation
   under jitter, rate changes, MTU, transmit-queue overflow, and
   counters. *)

open Stripe_netsim

let make_link ?jitter ?rng ?loss ?txq_capacity_bytes ?mtu ~rate_bps ~prop_delay
    () =
  let sim = Sim.create () in
  let arrivals = ref [] in
  let link =
    Link.create sim ~name:"test" ~rate_bps ~prop_delay ?jitter ?rng ?loss
      ?txq_capacity_bytes ?mtu
      ~deliver:(fun v -> arrivals := (Sim.now sim, v) :: !arrivals)
      ()
  in
  (sim, link, fun () -> List.rev !arrivals)

let test_serialization_timing () =
  (* 1000 bytes at 8 Mbps = 1 ms serialization; +2 ms propagation. *)
  let sim, link, arrivals = make_link ~rate_bps:8e6 ~prop_delay:0.002 () in
  ignore (Link.send link ~size:1000 "p1");
  Sim.run sim;
  match arrivals () with
  | [ (t, "p1") ] -> Alcotest.(check (float 1e-9)) "arrival at 3 ms" 0.003 t
  | _ -> Alcotest.fail "expected exactly one arrival"

let test_back_to_back_serialization () =
  let sim, link, arrivals = make_link ~rate_bps:8e6 ~prop_delay:0.0 () in
  ignore (Link.send link ~size:1000 1);
  ignore (Link.send link ~size:1000 2);
  Sim.run sim;
  match arrivals () with
  | [ (t1, 1); (t2, 2) ] ->
    Alcotest.(check (float 1e-9)) "first at 1 ms" 0.001 t1;
    Alcotest.(check (float 1e-9)) "second serialized after first" 0.002 t2
  | _ -> Alcotest.fail "expected two arrivals"

let test_fifo_under_jitter () =
  let rng = Rng.create 42 in
  let sim, link, arrivals =
    make_link ~rate_bps:1e6 ~prop_delay:0.001
      ~jitter:(fun r -> Rng.float r 0.050)
      ~rng ()
  in
  for i = 1 to 200 do
    ignore (Link.send link ~size:100 i)
  done;
  Sim.run sim;
  let vals = List.map snd (arrivals ()) in
  Alcotest.(check (list int)) "jitter never reorders a FIFO channel"
    (List.init 200 (fun i -> i + 1))
    vals;
  let times = List.map fst (arrivals ()) in
  let monotone = List.for_all2 (fun a b -> a <= b) times (List.tl times @ [ infinity ]) in
  Alcotest.(check bool) "arrival times non-decreasing" true monotone

let test_rate_change () =
  let sim, link, arrivals = make_link ~rate_bps:8e6 ~prop_delay:0.0 () in
  ignore (Link.send link ~size:1000 1);
  Sim.run sim;
  Link.set_rate_bps link 16e6;
  ignore (Link.send link ~size:1000 2);
  Sim.run sim;
  match arrivals () with
  | [ (t1, 1); (t2, 2) ] ->
    Alcotest.(check (float 1e-9)) "slow rate" 0.001 t1;
    Alcotest.(check (float 1e-9)) "fast rate" 0.0015 t2
  | _ -> Alcotest.fail "expected two arrivals"

let test_loss_counting () =
  let rng = Rng.create 9 in
  let sim, link, arrivals =
    make_link ~rate_bps:1e9 ~prop_delay:0.0 ~loss:(Loss.bernoulli ~p:0.5) ~rng ()
  in
  for i = 1 to 1000 do
    ignore (Link.send link ~size:100 i)
  done;
  Sim.run sim;
  let delivered = List.length (arrivals ()) in
  Alcotest.(check int) "sent counter" 1000 (Link.sent_packets link);
  Alcotest.(check int) "lost + delivered = sent" 1000
    (Link.lost_packets link + Link.delivered_packets link);
  Alcotest.(check int) "delivered counter matches callback" delivered
    (Link.delivered_packets link);
  Alcotest.(check bool) "roughly half lost" true
    (Link.lost_packets link > 400 && Link.lost_packets link < 600)

let test_mtu_enforcement () =
  let _, link, _ = make_link ~rate_bps:1e6 ~prop_delay:0.0 ~mtu:1500 () in
  Alcotest.check_raises "oversize send raises"
    (Invalid_argument "Link.send: size 1501 exceeds MTU 1500 on test")
    (fun () -> ignore (Link.send link ~size:1501 ()))

let test_bad_size () =
  let _, link, _ = make_link ~rate_bps:1e6 ~prop_delay:0.0 () in
  Alcotest.check_raises "zero size raises"
    (Invalid_argument "Link.send: size must be positive") (fun () ->
      ignore (Link.send link ~size:0 ()))

let test_txq_overflow () =
  let sim, link, arrivals =
    make_link ~rate_bps:1e6 ~prop_delay:0.0 ~txq_capacity_bytes:1000 ()
  in
  (* First packet starts serializing immediately (leaves the queue);
     then 1000 bytes of queue fill; the next is dropped. *)
  let results = List.init 4 (fun i -> Link.send link ~size:500 i) in
  Alcotest.(check (list bool)) "fourth packet tail-dropped"
    [ true; true; true; false ] results;
  Alcotest.(check int) "drop counted" 1 (Link.txq_drops link);
  Sim.run sim;
  Alcotest.(check int) "three delivered" 3 (List.length (arrivals ()))

let test_queue_accounting () =
  let sim, link, _ = make_link ~rate_bps:1e6 ~prop_delay:0.0 () in
  ignore (Link.send link ~size:500 1);
  ignore (Link.send link ~size:300 2);
  ignore (Link.send link ~size:200 3);
  (* Packet 1 is being serialized; 2 and 3 wait in the queue. *)
  Alcotest.(check int) "queued bytes" 500 (Link.queue_bytes link);
  Alcotest.(check int) "queued packets" 2 (Link.queue_packets link);
  Alcotest.(check bool) "busy while serializing" true (Link.busy link);
  Sim.run sim;
  Alcotest.(check int) "drained" 0 (Link.queue_bytes link);
  Alcotest.(check bool) "idle after drain" false (Link.busy link)

let test_byte_counters () =
  let sim, link, _ = make_link ~rate_bps:1e6 ~prop_delay:0.0 () in
  ignore (Link.send link ~size:700 1);
  ignore (Link.send link ~size:300 2);
  Sim.run sim;
  Alcotest.(check int) "sent bytes" 1000 (Link.sent_bytes link);
  Alcotest.(check int) "delivered bytes" 1000 (Link.delivered_bytes link)

let test_invalid_create () =
  let sim = Sim.create () in
  Alcotest.check_raises "zero rate rejected"
    (Invalid_argument "Link.create: rate_bps must be > 0") (fun () ->
      ignore
        (Link.create sim ~rate_bps:0.0 ~prop_delay:0.0 ~deliver:ignore ()))

let suites =
  [
    ( "link",
      [
        Alcotest.test_case "serialization timing" `Quick test_serialization_timing;
        Alcotest.test_case "back-to-back" `Quick test_back_to_back_serialization;
        Alcotest.test_case "fifo under jitter" `Quick test_fifo_under_jitter;
        Alcotest.test_case "rate change" `Quick test_rate_change;
        Alcotest.test_case "loss counting" `Quick test_loss_counting;
        Alcotest.test_case "mtu" `Quick test_mtu_enforcement;
        Alcotest.test_case "bad size" `Quick test_bad_size;
        Alcotest.test_case "txq overflow" `Quick test_txq_overflow;
        Alcotest.test_case "queue accounting" `Quick test_queue_accounting;
        Alcotest.test_case "byte counters" `Quick test_byte_counters;
        Alcotest.test_case "invalid create" `Quick test_invalid_create;
      ] );
  ]
