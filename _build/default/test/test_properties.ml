(* Cross-stack properties: conservation laws, burst-loss recovery, TCP
   stream integrity under random loss, and a large soak run guarding the
   per-packet cost of the protocol machinery. *)

open Stripe_netsim
open Stripe_packet
open Stripe_core

(* Conservation through Socket_stripe: every offered packet is delivered,
   still queued, lost in flight, or dropped at the receive socket. *)
let prop_socket_stripe_conservation =
  QCheck.Test.make ~name:"socket_stripe: packet conservation" ~count:30
    QCheck.(triple (int_range 0 500) (float_range 0.0 0.3) bool)
    (fun (seed, loss_p, with_credits) ->
      let sim = Sim.create () in
      let channels =
        [|
          Stripe_transport.Socket_stripe.spec ~rate_bps:8e6
            ~loss:(fun () -> Loss.bernoulli ~p:loss_p)
            ();
          Stripe_transport.Socket_stripe.spec ~rate_bps:4e6 ~prop_delay:0.01
            ~loss:(fun () -> Loss.bernoulli ~p:loss_p)
            ();
        |]
      in
      let delivered = ref 0 in
      let sock =
        Stripe_transport.Socket_stripe.create sim ~channels
          ~scheduler:(Scheduler.srr ~quanta:[| 1000; 1000 |] ())
          ~marker:(Marker.make ~every_rounds:4 ())
          ~flow_control:
            (if with_credits then
               Stripe_transport.Socket_stripe.Credit_based { buffer = 32 }
             else Stripe_transport.Socket_stripe.No_flow_control)
          ~rng:(Rng.create seed)
          ~deliver:(fun _ -> incr delivered)
          ()
      in
      let n = 600 in
      for seq = 0 to n - 1 do
        Sim.schedule sim ~at:(float_of_int seq *. 0.001) (fun () ->
            Stripe_transport.Socket_stripe.send sock
              (Packet.data ~seq ~size:1000 ()))
      done;
      Sim.run sim;
      let open Stripe_transport.Socket_stripe in
      let buffered = Resequencer.pending (resequencer sock) in
      (* channel_losses counts markers too, so data losses are bounded by
         it rather than equal to it. *)
      let unaccounted =
        sent_packets sock - !delivered - buffered - congestion_drops sock
      in
      sent_packets sock + app_queue_length sock = n
      && unaccounted >= 0
      && unaccounted <= channel_losses sock)

(* Burst (Gilbert-Elliott) loss: recovery must hold for bursty errors,
   not just independent ones - the paper models non-FIFO blips as burst
   errors too. *)
let prop_recovery_under_burst_loss =
  QCheck.Test.make ~name:"marker recovery survives bursty loss" ~count:30
    QCheck.(int_range 0 500)
    (fun seed ->
      let rng = Rng.create seed in
      let engine = Srr.create ~quanta:[| 1500; 1500 |] () in
      let loss = Loss.gilbert ~p_good_to_bad:0.05 ~p_bad_to_good:0.3
          ~loss_good:0.0 ~loss_bad:0.8
      in
      let delivered = ref [] in
      let reseq =
        Resequencer.create ~deficit:(Deficit.clone_initial engine)
          ~deliver:(fun ~channel:_ p -> delivered := p.Packet.seq :: !delivered)
          ()
      in
      let wires = Array.init 2 (fun _ -> Queue.create ()) in
      let striper =
        Striper.create
          ~scheduler:(Scheduler.of_deficit ~name:"SRR" engine)
          ~marker:(Marker.make ~every_rounds:3 ())
          ~emit:(fun ~channel pkt -> Queue.add pkt wires.(channel))
          ()
      in
      let n_lossy = 400 and n_clean = 400 in
      for seq = 0 to n_lossy + n_clean - 1 do
        Striper.push striper
          (Packet.data ~seq ~size:(100 + Rng.int rng 1300) ())
      done;
      let rec shuttle () =
        let live =
          Array.to_list wires
          |> List.mapi (fun i q -> (i, q))
          |> List.filter (fun (_, q) -> not (Queue.is_empty q))
        in
        match live with
        | [] -> ()
        | live ->
          let c, q = List.nth live (Rng.int rng (List.length live)) in
          let pkt = Queue.pop q in
          let drop =
            (not (Packet.is_marker pkt))
            && pkt.Packet.seq < n_lossy
            && Loss.drop loss rng
          in
          if not drop then Resequencer.receive reseq ~channel:c pkt;
          shuttle ()
      in
      shuttle ();
      let out = List.rev !delivered in
      let tail = List.filter (fun s -> s >= n_lossy + 150) out in
      List.sort compare tail = tail
      && List.length tail = n_clean - 150)

(* TCP over striping under loss: the byte stream the receiver assembles
   has no gaps and matches what the sender believes was acknowledged. *)
let run_tcp_over_striping ~seed ~loss_p =
  let sim = Sim.create () in
  let rng = Rng.create seed in
  let engine = Srr.create ~quanta:[| 1500; 1500 |] () in
  let tcp_rx = ref None in
  let reseq =
    Resequencer.create ~deficit:(Deficit.clone_initial engine)
      ~deliver:(fun ~channel:_ pkt ->
        match !tcp_rx with
        | Some rx ->
          ignore
            (Stripe_transport.Tcp_lite.Receiver.rx rx ~off:pkt.Packet.off
               ~len:pkt.Packet.size)
        | None -> ())
      ()
  in
  let links =
    Array.init 2 (fun i ->
        Link.create sim
          ~name:(Printf.sprintf "ch%d" i)
          ~rate_bps:8e6
          ~prop_delay:(0.002 +. (0.004 *. float_of_int i))
          ~rng:(Rng.split rng)
          ~deliver:(fun pkt ->
            let drop =
              (not (Packet.is_marker pkt)) && Rng.bernoulli rng ~p:loss_p
            in
            if not drop then Resequencer.receive reseq ~channel:i pkt)
          ())
  in
  let striper =
    Striper.create
      ~scheduler:(Scheduler.of_deficit ~name:"SRR" engine)
      ~marker:(Marker.make ~every_rounds:4 ())
      ~now:(fun () -> Sim.now sim)
      ~emit:(fun ~channel pkt ->
        ignore (Link.send links.(channel) ~size:pkt.Packet.size pkt))
      ()
  in
  let tcp_tx = ref None in
  let ack_wire =
    Link.create sim ~name:"acks" ~rate_bps:1e8 ~prop_delay:0.002
      ~deliver:(fun ack ->
        match !tcp_tx with
        | Some s -> Stripe_transport.Tcp_lite.Sender.on_ack s ack
        | None -> ())
      ()
  in
  let rx =
    Stripe_transport.Tcp_lite.Receiver.create
      ~send_ack:(fun a -> ignore (Link.send ack_wire ~size:40 a))
      ~deliver:(fun ~bytes:_ -> ())
      ()
  in
  tcp_rx := Some rx;
  let seq = ref 0 in
  let tx =
    Stripe_transport.Tcp_lite.Sender.create sim ~window:32768 ~rto:0.1
      ~next_segment_size:(fun () -> 400 + Rng.int rng 1000)
      ~transmit:(fun ~off ~size ->
        let pkt = Packet.data ~seq:!seq ~off ~size () in
        incr seq;
        Striper.push striper pkt)
      ()
  in
  tcp_tx := Some tx;
  Stripe_transport.Tcp_lite.Sender.start tx;
  Sim.run_until sim 1.0;
  Stripe_transport.Tcp_lite.Sender.stop tx;
  Sim.run_until sim 8.0;
  Stripe_transport.Tcp_lite.Sender.shutdown tx;
  Sim.run sim;
  ( Stripe_transport.Tcp_lite.Sender.bytes_acked tx,
    Stripe_transport.Tcp_lite.Receiver.bytes_delivered rx )

let prop_tcp_over_striping_integrity =
  QCheck.Test.make ~name:"tcp over striped lossy channels: stream integrity"
    ~count:15
    QCheck.(pair (int_range 0 100) (float_range 0.0 0.05))
    (fun (seed, loss_p) ->
      let acked, delivered = run_tcp_over_striping ~seed ~loss_p in
      acked = delivered && acked > 0)

(* Soak: a million packets through the full striper -> resequencer loop
   must complete quickly - the per-packet work is constant-time, the
   paper's "few more instructions" claim at scale. *)
let test_soak_million_packets () =
  let engine = Srr.create ~quanta:[| 1500; 1500; 1500; 1500 |] () in
  let delivered = ref 0 in
  let reseq =
    Resequencer.create ~deficit:(Deficit.clone_initial engine)
      ~deliver:(fun ~channel:_ _ -> incr delivered)
      ()
  in
  let striper =
    Striper.create
      ~scheduler:(Scheduler.of_deficit ~name:"SRR" engine)
      ~marker:(Marker.make ~every_rounds:8 ())
      ~emit:(fun ~channel pkt -> Resequencer.receive reseq ~channel pkt)
      ()
  in
  let t0 = Sys.time () in
  let n = 1_000_000 in
  for seq = 0 to n - 1 do
    Striper.push striper (Packet.data ~seq ~size:(64 + (seq * 37 mod 1400)) ())
  done;
  let dt = Sys.time () -. t0 in
  Alcotest.(check int) "all delivered" n !delivered;
  Alcotest.(check bool)
    (Printf.sprintf "1M packets in %.2f s" dt)
    true (dt < 30.0)

let suites =
  [
    ( "properties",
      [
        QCheck_alcotest.to_alcotest prop_socket_stripe_conservation;
        QCheck_alcotest.to_alcotest prop_recovery_under_burst_loss;
        QCheck_alcotest.to_alcotest prop_tcp_over_striping_integrity;
        Alcotest.test_case "soak: 1M packets" `Slow test_soak_million_packets;
      ] );
  ]
