(* Tests for the self-stabilization watchdog: detection of a corrupted
   receiver round and automatic recovery through the reset barrier. *)

open Stripe_core
open Stripe_packet

type rig = {
  striper : Striper.t;
  reseq : Resequencer.t;
  receiver_engine : Deficit.t;
  stabilizer : Stabilizer.t;
  wires : Packet.t Queue.t array;
  delivered : int list ref;
}

let make ?tolerance ?suspect_after () =
  let quanta = [| 1000; 1000 |] in
  let engine = Srr.create ~quanta () in
  let wires = Array.init 2 (fun _ -> Queue.create ()) in
  let delivered = ref [] in
  let receiver_engine = Deficit.clone_initial engine in
  let reseq =
    Resequencer.create ~deficit:receiver_engine
      ~deliver:(fun ~channel:_ p -> delivered := p.Packet.seq :: !delivered)
      ()
  in
  let striper_cell = ref None in
  let stabilizer =
    Stabilizer.create ?tolerance ?suspect_after ~resequencer:reseq
      ~request_reset:(fun () ->
        (* The control path back to the sender. *)
        match !striper_cell with
        | Some s -> Striper.send_reset s
        | None -> ())
      ()
  in
  let striper =
    Striper.create
      ~scheduler:(Scheduler.of_deficit ~name:"SRR" engine)
      ~marker:(Marker.make ~every_rounds:2 ())
      ~emit:(fun ~channel pkt -> Queue.add pkt wires.(channel))
      ()
  in
  striper_cell := Some striper;
  { striper; reseq; receiver_engine; stabilizer; wires; delivered }

(* Interleave wire delivery round-robin; every packet passes the
   stabilizer first. *)
let shuttle t =
  let remaining = ref true in
  while !remaining do
    remaining := false;
    Array.iteri
      (fun c q ->
        match Queue.take_opt q with
        | Some pkt ->
          remaining := true;
          Stabilizer.inspect t.stabilizer pkt;
          Resequencer.receive t.reseq ~channel:c pkt
        | None -> ())
      t.wires
  done

let send t ~from_seq ~count =
  for seq = from_seq to from_seq + count - 1 do
    Striper.push t.striper (Packet.data ~seq ~size:1000 ())
  done

let test_healthy_run_never_triggers () =
  let t = make () in
  send t ~from_seq:0 ~count:400;
  shuttle t;
  Alcotest.(check int) "no suspicion on a clean run" 0
    (Stabilizer.suspicious_markers t.stabilizer);
  Alcotest.(check int) "no resets requested" 0
    (Stabilizer.resets_requested t.stabilizer);
  Alcotest.(check (list int)) "stream intact" (List.init 400 Fun.id)
    (List.rev !(t.delivered))

let test_corrupted_round_detected_and_recovered () =
  let t = make ~tolerance:2 ~suspect_after:3 () in
  send t ~from_seq:0 ~count:100;
  shuttle t;
  (* Fault injection: the receiver's global round jumps far ahead - the
     direction markers alone cannot repair. *)
  Deficit.set_round t.receiver_engine (Deficit.round t.receiver_engine + 50);
  t.delivered := [];
  send t ~from_seq:1000 ~count:300;
  shuttle t;
  Alcotest.(check bool) "corruption noticed" true
    (Stabilizer.suspicious_markers t.stabilizer >= 3);
  Alcotest.(check int) "exactly one reset requested" 1
    (Stabilizer.resets_requested t.stabilizer);
  Alcotest.(check int) "the barrier completed" 1 (Resequencer.resets t.reseq);
  (* Everything from the post-reset epoch flows in order; packets sent
     between corruption and reset are the (bounded) casualty. *)
  let out = List.rev !(t.delivered) in
  let tail = List.filteri (fun i _ -> i >= List.length out - 200) out in
  Alcotest.(check bool) "recovered to FIFO delivery" true
    (List.sort compare tail = tail && List.length out >= 200)

let test_low_round_corruption_self_heals () =
  (* G corrupted low: the rc > G skip rule fast-forwards without any
     stabilizer involvement. *)
  let t = make ~tolerance:2 ~suspect_after:3 () in
  send t ~from_seq:0 ~count:100;
  shuttle t;
  Deficit.set_round t.receiver_engine
    (max 0 (Deficit.round t.receiver_engine - 30));
  t.delivered := [];
  send t ~from_seq:1000 ~count:300;
  shuttle t;
  Alcotest.(check int) "no reset needed" 0
    (Stabilizer.resets_requested t.stabilizer);
  let out = List.rev !(t.delivered) in
  Alcotest.(check int) "nothing lost" 300 (List.length out);
  (* The skip rule may cost a transient misorder while it fast-forwards;
     after the first few packets delivery is FIFO again, reset-free. *)
  let tail = List.filteri (fun i _ -> i >= 10) out in
  Alcotest.(check bool) "skip rule recovers on its own" true
    (List.sort compare tail = tail)

let test_debounce () =
  (* Once a reset is requested, further suspicious markers must not fire
     additional resets until the barrier lands. *)
  let requests = ref 0 in
  let engine = Srr.create ~quanta:[| 1000 |] () in
  let receiver_engine = Deficit.clone_initial engine in
  let reseq =
    Resequencer.create ~deficit:receiver_engine ~deliver:(fun ~channel:_ _ -> ()) ()
  in
  let st =
    Stabilizer.create ~tolerance:0 ~suspect_after:1 ~resequencer:reseq
      ~request_reset:(fun () -> incr requests)
      ()
  in
  Deficit.set_round receiver_engine 100;
  for _ = 1 to 5 do
    Stabilizer.inspect st (Packet.marker ~channel:0 ~round:3 ~dc:1000 ~born:0.0 ())
  done;
  Alcotest.(check int) "single request while awaiting reset" 1 !requests;
  (* The reset marker arrives: the watchdog re-arms. *)
  Stabilizer.inspect st
    (Packet.marker ~reset:true ~channel:0 ~round:0 ~dc:1000 ~born:0.0 ());
  Deficit.set_round receiver_engine 100;
  Stabilizer.inspect st (Packet.marker ~channel:0 ~round:3 ~dc:1000 ~born:0.0 ());
  Alcotest.(check int) "re-armed after the barrier" 2 !requests

let test_validation () =
  let engine = Srr.create ~quanta:[| 1000 |] () in
  let reseq =
    Resequencer.create ~deficit:engine ~deliver:(fun ~channel:_ _ -> ()) ()
  in
  Alcotest.check_raises "bad suspect_after"
    (Invalid_argument "Stabilizer.create: suspect_after < 1") (fun () ->
      ignore
        (Stabilizer.create ~suspect_after:0 ~resequencer:reseq
           ~request_reset:(fun () -> ())
           ()))

let suites =
  [
    ( "stabilizer",
      [
        Alcotest.test_case "healthy run" `Quick test_healthy_run_never_triggers;
        Alcotest.test_case "high-round corruption" `Quick
          test_corrupted_round_detected_and_recovered;
        Alcotest.test_case "low-round self-heals" `Quick
          test_low_round_corruption_self_heals;
        Alcotest.test_case "debounce" `Quick test_debounce;
        Alcotest.test_case "validation" `Quick test_validation;
      ] );
  ]
