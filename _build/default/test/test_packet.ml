(* Tests for packet construction, marker codepoints, queues, and size
   helpers. *)

open Stripe_packet

let test_data_fields () =
  let p = Packet.data ~flow:3 ~frame:7 ~off:100 ~born:1.5 ~seq:42 ~size:550 () in
  Alcotest.(check int) "seq" 42 p.Packet.seq;
  Alcotest.(check int) "size" 550 p.Packet.size;
  Alcotest.(check int) "flow" 3 p.Packet.flow;
  Alcotest.(check int) "frame" 7 p.Packet.frame;
  Alcotest.(check int) "off" 100 p.Packet.off;
  Alcotest.(check bool) "not a marker" false (Packet.is_marker p)

let test_data_defaults () =
  let p = Packet.data ~seq:0 ~size:1 () in
  Alcotest.(check int) "default flow" 0 p.Packet.flow;
  Alcotest.(check int) "default frame" (-1) p.Packet.frame;
  Alcotest.(check int) "default off" (-1) p.Packet.off

let test_data_validation () =
  Alcotest.check_raises "zero size rejected"
    (Invalid_argument "Packet.data: size must be positive") (fun () ->
      ignore (Packet.data ~seq:0 ~size:0 ()))

let test_marker_fields () =
  let m = Packet.marker ~credit:12 ~channel:1 ~round:7 ~dc:300 ~born:2.0 () in
  Alcotest.(check bool) "is marker" true (Packet.is_marker m);
  Alcotest.(check int) "marker wire size" Packet.marker_size m.Packet.size;
  let info = Packet.get_marker m in
  Alcotest.(check int) "channel" 1 info.Packet.m_channel;
  Alcotest.(check int) "round" 7 info.Packet.m_round;
  Alcotest.(check int) "dc" 300 info.Packet.m_dc;
  Alcotest.(check (option int)) "credit" (Some 12) info.Packet.m_credit

let test_get_marker_on_data () =
  let p = Packet.data ~seq:0 ~size:10 () in
  Alcotest.check_raises "get_marker on data raises"
    (Invalid_argument "Packet.get_marker: data packet") (fun () ->
      ignore (Packet.get_marker p))

let test_pp () =
  let p = Packet.data ~seq:12 ~size:550 () in
  Alcotest.(check string) "data pp" "#12(550B)" (Format.asprintf "%a" Packet.pp p);
  let m = Packet.marker ~channel:1 ~round:7 ~dc:300 ~born:0.0 () in
  Alcotest.(check string) "marker pp" "M(ch=1,R=7,DC=300)"
    (Format.asprintf "%a" Packet.pp m)

let test_fifo_queue_order () =
  let q = Fifo_queue.create () in
  Fifo_queue.push q ~size:10 "a";
  Fifo_queue.push q ~size:20 "b";
  Fifo_queue.push q ~size:30 "c";
  Alcotest.(check (option string)) "peek oldest" (Some "a") (Fifo_queue.peek q);
  Alcotest.(check (option string)) "pop oldest" (Some "a") (Fifo_queue.pop q);
  Alcotest.(check (list string)) "to_list order" [ "b"; "c" ] (Fifo_queue.to_list q)

let test_fifo_queue_bytes () =
  let q = Fifo_queue.create () in
  Fifo_queue.push q ~size:10 ();
  Fifo_queue.push q ~size:20 ();
  Alcotest.(check int) "bytes" 30 (Fifo_queue.bytes q);
  ignore (Fifo_queue.pop q);
  Alcotest.(check int) "bytes after pop" 20 (Fifo_queue.bytes q)

let test_fifo_queue_high_water () =
  let q = Fifo_queue.create () in
  Fifo_queue.push q ~size:10 ();
  Fifo_queue.push q ~size:10 ();
  ignore (Fifo_queue.pop q);
  ignore (Fifo_queue.pop q);
  Fifo_queue.push q ~size:50 ();
  Alcotest.(check int) "hw packets" 2 (Fifo_queue.high_water_packets q);
  Alcotest.(check int) "hw bytes" 50 (Fifo_queue.high_water_bytes q)

let test_fifo_queue_clear () =
  let q = Fifo_queue.create () in
  Fifo_queue.push q ~size:10 ();
  Fifo_queue.clear q;
  Alcotest.(check bool) "empty after clear" true (Fifo_queue.is_empty q);
  Alcotest.(check int) "bytes zero" 0 (Fifo_queue.bytes q)

let test_atm_overhead () =
  (* A 40-byte packet + 8-byte trailer fits one 48-byte cell payload:
     one 53-byte cell, overhead 13. *)
  Alcotest.(check int) "40B in one cell" 13 (Sizes.atm_overhead_for 40);
  (* 41..88 payload bytes need two cells. *)
  Alcotest.(check int) "41B needs two cells" (106 - 41) (Sizes.atm_overhead_for 41);
  (* 1000B: (1000+8+47)/48 = 21 cells; 21*53 - 1000 = 113. *)
  Alcotest.(check int) "1000B" 113 (Sizes.atm_overhead_for 1000)

let test_constants () =
  Alcotest.(check int) "ethernet mtu" 1500 Sizes.ethernet_mtu;
  Alcotest.(check int) "paper small packet" 200 Sizes.small_packet;
  Alcotest.(check int) "paper large packet" 1000 Sizes.large_packet

let prop_queue_fifo =
  QCheck.Test.make ~name:"fifo_queue preserves order for any sequence"
    ~count:200
    QCheck.(list small_nat)
    (fun xs ->
      let q = Fifo_queue.create () in
      List.iter (fun x -> Fifo_queue.push q ~size:1 x) xs;
      let rec drain acc =
        match Fifo_queue.pop q with
        | Some x -> drain (x :: acc)
        | None -> List.rev acc
      in
      drain [] = xs)

let suites =
  [
    ( "packet",
      [
        Alcotest.test_case "data fields" `Quick test_data_fields;
        Alcotest.test_case "data defaults" `Quick test_data_defaults;
        Alcotest.test_case "data validation" `Quick test_data_validation;
        Alcotest.test_case "marker fields" `Quick test_marker_fields;
        Alcotest.test_case "get_marker on data" `Quick test_get_marker_on_data;
        Alcotest.test_case "pp" `Quick test_pp;
        Alcotest.test_case "queue order" `Quick test_fifo_queue_order;
        Alcotest.test_case "queue bytes" `Quick test_fifo_queue_bytes;
        Alcotest.test_case "queue high water" `Quick test_fifo_queue_high_water;
        Alcotest.test_case "queue clear" `Quick test_fifo_queue_clear;
        Alcotest.test_case "atm overhead" `Quick test_atm_overhead;
        Alcotest.test_case "constants" `Quick test_constants;
        QCheck_alcotest.to_alcotest prop_queue_fifo;
      ] );
  ]
