(* Tests for the unified scheduler interface and the non-causal baselines
   of §2.1 (Table 1's rows). *)

open Stripe_core
open Stripe_packet

let pkt ?(flow = 0) ~seq ~size () = Packet.data ~flow ~seq ~size ()

let dispatch sched packets =
  List.map
    (fun p ->
      let c = Scheduler.choose sched p in
      Scheduler.account sched p c;
      c)
    packets

let test_srr_metadata () =
  let s = Scheduler.srr ~quanta:[| 500; 500 |] () in
  Alcotest.(check string) "name" "SRR" (Scheduler.name s);
  Alcotest.(check bool) "causal" true (Scheduler.causal s);
  Alcotest.(check int) "channels" 2 (Scheduler.n_channels s);
  Alcotest.(check bool) "has deficit engine" true (Scheduler.deficit s <> None)

let test_srr_ignores_flow () =
  let s = Scheduler.srr ~quanta:[| 500; 500 |] () in
  let order =
    dispatch s
      [ pkt ~flow:1 ~seq:0 ~size:550 (); pkt ~flow:9 ~seq:1 ~size:200 () ]
  in
  Alcotest.(check (list int)) "SRR assignment independent of flow" [ 0; 1 ] order

let test_choose_idempotent () =
  let s = Scheduler.srr ~quanta:[| 500; 500 |] () in
  let p = pkt ~seq:0 ~size:100 () in
  let c1 = Scheduler.choose s p in
  let c2 = Scheduler.choose s p in
  Alcotest.(check int) "repeated choose stable" c1 c2

let test_rr_alternates () =
  let s = Scheduler.rr ~n:2 () in
  let packets = List.init 6 (fun i -> pkt ~seq:i ~size:(100 * (i + 1)) ()) in
  Alcotest.(check (list int)) "pure alternation" [ 0; 1; 0; 1; 0; 1 ]
    (dispatch s packets)

let test_grr_ratio () =
  let s = Scheduler.grr ~ratios:[| 3; 1 |] () in
  let packets = List.init 8 (fun i -> pkt ~seq:i ~size:100 ()) in
  Alcotest.(check (list int)) "3:1 interleave" [ 0; 0; 0; 1; 0; 0; 0; 1 ]
    (dispatch s packets)

let test_random_selection_spread () =
  let s = Scheduler.random_selection ~n:3 ~seed:1 in
  Alcotest.(check bool) "non-causal" false (Scheduler.causal s);
  Alcotest.(check bool) "no deficit" true (Scheduler.deficit s = None);
  let counts = Array.make 3 0 in
  List.iter
    (fun c -> counts.(c) <- counts.(c) + 1)
    (dispatch s (List.init 3000 (fun i -> pkt ~seq:i ~size:100 ())));
  Alcotest.(check bool) "roughly uniform" true
    (Array.for_all (fun c -> c > 800 && c < 1200) counts)

let test_shortest_queue_picks_min () =
  let queues = [| 500; 100; 300 |] in
  let s = Scheduler.shortest_queue ~queue_bytes:(fun i -> queues.(i)) ~n:3 in
  Alcotest.(check int) "min queue chosen" 1
    (Scheduler.choose s (pkt ~seq:0 ~size:100 ()));
  queues.(1) <- 900;
  Alcotest.(check int) "tracks changing queues" 2
    (Scheduler.choose s (pkt ~seq:1 ~size:100 ()))

let test_shortest_queue_tie_lowest_index () =
  let s = Scheduler.shortest_queue ~queue_bytes:(fun _ -> 42) ~n:4 in
  Alcotest.(check int) "tie broken to lowest index" 0
    (Scheduler.choose s (pkt ~seq:0 ~size:100 ()))

let test_hashing_per_flow_affinity () =
  let s = Scheduler.address_hashing ~n:4 in
  let flow_channel flow = Scheduler.choose s (pkt ~flow ~seq:0 ~size:100 ()) in
  let stable = List.for_all (fun f -> flow_channel f = flow_channel f) [ 1; 2; 3; 99 ] in
  Alcotest.(check bool) "same flow always maps to same channel" true stable

let test_hashing_spreads_flows () =
  let s = Scheduler.address_hashing ~n:4 in
  let channels =
    List.init 64 (fun f -> Scheduler.choose s (pkt ~flow:f ~seq:0 ~size:100 ()))
  in
  let distinct = List.sort_uniq compare channels in
  Alcotest.(check bool) "many flows hit several channels" true
    (List.length distinct >= 3)

let test_hashing_single_flow_no_sharing () =
  (* Table 1's criticism: packets of one flow all ride one channel. *)
  let s = Scheduler.address_hashing ~n:4 in
  let channels =
    dispatch s (List.init 50 (fun i -> pkt ~flow:7 ~seq:i ~size:1000 ()))
  in
  Alcotest.(check int) "one channel used" 1
    (List.length (List.sort_uniq compare channels))

let test_reset_restores_initial_state () =
  let s = Scheduler.srr ~quanta:[| 500; 500 |] () in
  let run sched =
    dispatch sched (List.init 10 (fun i -> pkt ~seq:i ~size:(137 * (i mod 5 + 1)) ()))
  in
  let first = run s in
  let again = run (Scheduler.reset s) in
  Alcotest.(check (list int)) "reset replays identically" first again

let test_reset_random_replays () =
  let s = Scheduler.random_selection ~n:3 ~seed:42 in
  let run sched =
    dispatch sched (List.init 50 (fun i -> pkt ~seq:i ~size:10 ()))
  in
  let first = run s in
  let again = run (Scheduler.reset s) in
  Alcotest.(check (list int)) "seeded randomness replays" first again

let suites =
  [
    ( "scheduler",
      [
        Alcotest.test_case "srr metadata" `Quick test_srr_metadata;
        Alcotest.test_case "srr ignores flow" `Quick test_srr_ignores_flow;
        Alcotest.test_case "choose idempotent" `Quick test_choose_idempotent;
        Alcotest.test_case "rr alternates" `Quick test_rr_alternates;
        Alcotest.test_case "grr ratio" `Quick test_grr_ratio;
        Alcotest.test_case "random spread" `Quick test_random_selection_spread;
        Alcotest.test_case "sqf picks min" `Quick test_shortest_queue_picks_min;
        Alcotest.test_case "sqf tie break" `Quick test_shortest_queue_tie_lowest_index;
        Alcotest.test_case "hashing affinity" `Quick test_hashing_per_flow_affinity;
        Alcotest.test_case "hashing spreads flows" `Quick test_hashing_spreads_flows;
        Alcotest.test_case "hashing no sharing" `Quick
          test_hashing_single_flow_no_sharing;
        Alcotest.test_case "reset srr" `Quick test_reset_restores_initial_state;
        Alcotest.test_case "reset random" `Quick test_reset_random_replays;
      ] );
  ]
