(* Tests for the host model: CPU work queue and NIC interrupt
   coalescing — the mechanism behind Figure 15's saturation shape. *)

open Stripe_netsim
open Stripe_host

let test_cpu_serializes_work () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim () in
  let log = ref [] in
  Cpu.execute cpu ~cost:0.010 (fun () -> log := ("a", Sim.now sim) :: !log);
  Cpu.execute cpu ~cost:0.020 (fun () -> log := ("b", Sim.now sim) :: !log);
  Sim.run sim;
  match List.rev !log with
  | [ ("a", ta); ("b", tb) ] ->
    Alcotest.(check (float 1e-9)) "first completes at its cost" 0.010 ta;
    Alcotest.(check (float 1e-9)) "second queues behind first" 0.030 tb
  | _ -> Alcotest.fail "expected two completions"

let test_cpu_idle_gap () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim () in
  let t = ref 0.0 in
  Cpu.execute cpu ~cost:0.010 (fun () -> ());
  Sim.run sim;
  (* Submit again after the CPU went idle: starts at now, not at 0. *)
  Sim.schedule sim ~at:1.0 (fun () ->
      Cpu.execute cpu ~cost:0.005 (fun () -> t := Sim.now sim));
  Sim.run sim;
  Alcotest.(check (float 1e-9)) "starts from idle time" 1.005 !t

let test_cpu_accounting () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim () in
  Cpu.execute cpu ~cost:0.25 (fun () -> ());
  Sim.run sim;
  Alcotest.(check (float 1e-9)) "busy seconds" 0.25 (Cpu.busy_seconds cpu);
  Alcotest.(check (float 1e-9)) "utilization at completion" 1.0 (Cpu.utilization cpu)

let test_cpu_negative_cost () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim () in
  Alcotest.check_raises "negative cost"
    (Invalid_argument "Cpu.execute: negative cost") (fun () ->
      Cpu.execute cpu ~cost:(-1.0) (fun () -> ()))

let test_nic_single_packet () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim () in
  let got = ref [] in
  let nic =
    Nic.create sim ~cpu ~intr_cost:0.001 ~per_packet_cost:0.0005
      ~deliver:(fun v -> got := (v, Sim.now sim) :: !got)
      ()
  in
  Nic.rx nic "p";
  Sim.run sim;
  (match !got with
  | [ ("p", t) ] ->
    Alcotest.(check (float 1e-9)) "intr + 1 packet cost" 0.0015 t
  | _ -> Alcotest.fail "expected one delivery");
  Alcotest.(check int) "one interrupt" 1 (Nic.interrupts nic)

let test_nic_coalescing_under_burst () =
  (* A burst that arrives while the handler is busy is drained by far
     fewer interrupts than packets. *)
  let sim = Sim.create () in
  let cpu = Cpu.create sim () in
  let n = ref 0 in
  let nic =
    Nic.create sim ~cpu ~intr_cost:0.001 ~per_packet_cost:0.0001
      ~deliver:(fun _ -> incr n)
      ()
  in
  for i = 0 to 99 do
    Sim.schedule sim ~at:(float_of_int i *. 0.00001) (fun () -> Nic.rx nic i)
  done;
  Sim.run sim;
  Alcotest.(check int) "all delivered" 100 !n;
  Alcotest.(check bool)
    (Printf.sprintf "coalesced: %d interrupts for 100 packets" (Nic.interrupts nic))
    true
    (Nic.interrupts nic < 20);
  Alcotest.(check bool) "mean batch > 5" true (Nic.mean_batch nic > 5.0)

let test_nic_split_load_more_interrupts () =
  (* The same aggregate arrival rate split over two NICs takes more
     interrupts than over one: the Figure 15 striping overhead. *)
  let run n_nics =
    let sim = Sim.create () in
    let cpu = Cpu.create sim () in
    let nics =
      Array.init n_nics (fun i ->
          Nic.create sim ~cpu
            ~name:(Printf.sprintf "nic%d" i)
            ~intr_cost:0.0005 ~per_packet_cost:0.0001
            ~deliver:(fun _ -> ())
            ())
    in
    for i = 0 to 399 do
      Sim.schedule sim ~at:(float_of_int i *. 0.0002) (fun () ->
          Nic.rx nics.(i mod n_nics) i)
    done;
    Sim.run sim;
    Array.fold_left (fun acc nic -> acc + Nic.interrupts nic) 0 nics
  in
  let one = run 1 and two = run 2 in
  Alcotest.(check bool)
    (Printf.sprintf "interrupts: 1 NIC %d < 2 NICs %d" one two)
    true (one < two)

let test_nic_rx_budget () =
  (* A bounded rx budget splits a burst into several activations instead
     of one big batch. *)
  let sim = Sim.create () in
  let cpu = Cpu.create sim () in
  let n = ref 0 in
  let nic =
    Nic.create sim ~cpu ~max_batch:4 ~intr_cost:0.001 ~per_packet_cost:0.0001
      ~deliver:(fun _ -> incr n)
      ()
  in
  for i = 0 to 19 do
    Nic.rx nic i
  done;
  Sim.run sim;
  Alcotest.(check int) "all delivered" 20 !n;
  Alcotest.(check bool)
    (Printf.sprintf "budget forces >= 5 activations (got %d)" (Nic.interrupts nic))
    true
    (Nic.interrupts nic >= 5);
  Alcotest.(check bool) "mean batch capped at the budget" true
    (Nic.mean_batch nic <= 4.0)

let test_nic_budget_validation () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim () in
  Alcotest.check_raises "zero budget"
    (Invalid_argument "Nic.create: max_batch must be positive") (fun () ->
      ignore
        (Nic.create sim ~cpu ~max_batch:0 ~intr_cost:1.0 ~per_packet_cost:1.0
           ~deliver:(fun (_ : int) -> ())
           ()))

let test_nic_ring_overflow () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim () in
  let nic =
    Nic.create sim ~cpu ~ring_capacity:4 ~intr_cost:1.0 ~per_packet_cost:0.1
      ~deliver:(fun _ -> ())
      ()
  in
  (* The handler takes 1 s; ten immediate arrivals overflow the 4-slot
     ring. *)
  for i = 0 to 9 do
    Nic.rx nic i
  done;
  Alcotest.(check int) "drops counted" 6 (Nic.ring_drops nic);
  Sim.run sim;
  Alcotest.(check int) "survivors delivered" 4 (Nic.packets nic)

let suites =
  [
    ( "host",
      [
        Alcotest.test_case "cpu serializes" `Quick test_cpu_serializes_work;
        Alcotest.test_case "cpu idle gap" `Quick test_cpu_idle_gap;
        Alcotest.test_case "cpu accounting" `Quick test_cpu_accounting;
        Alcotest.test_case "cpu negative cost" `Quick test_cpu_negative_cost;
        Alcotest.test_case "nic single packet" `Quick test_nic_single_packet;
        Alcotest.test_case "nic coalescing" `Quick test_nic_coalescing_under_burst;
        Alcotest.test_case "nic split load" `Quick test_nic_split_load_more_interrupts;
        Alcotest.test_case "nic rx budget" `Quick test_nic_rx_budget;
        Alcotest.test_case "nic budget validation" `Quick test_nic_budget_validation;
        Alcotest.test_case "nic ring overflow" `Quick test_nic_ring_overflow;
      ] );
  ]
