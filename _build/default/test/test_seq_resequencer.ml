(* Tests for the guaranteed-FIFO sequence-number resequencer: fast-path
   confirmation, loss detection, and the FIFO guarantee under arbitrary
   loss (the "with header" rows of Table 1). *)

open Stripe_core
open Stripe_packet

let p seq = Packet.data ~seq ~size:100 ()

(* Stripe with SRR, deliver arrivals under a random per-channel-FIFO
   interleaving with losses, feed the Seq_resequencer. Returns delivered
   seq list and the resequencer. *)
let run ?(with_fast_path = true) ~seed ~n_channels ~n_packets ~loss_p () =
  let rng = Stripe_netsim.Rng.create seed in
  let quanta = Array.make n_channels 1500 in
  let engine = Srr.create ~quanta () in
  let wires = Array.init n_channels (fun _ -> Queue.create ()) in
  let striper =
    Striper.create
      ~scheduler:(Scheduler.of_deficit ~name:"SRR" engine)
      ~emit:(fun ~channel pkt -> Queue.add pkt wires.(channel))
      ()
  in
  for seq = 0 to n_packets - 1 do
    Striper.push striper
      (Packet.data ~seq ~size:(50 + Stripe_netsim.Rng.int rng 1450) ())
  done;
  let delivered = ref [] in
  let reseq =
    Seq_resequencer.create
      ?deficit:(if with_fast_path then Some (Deficit.clone_initial engine) else None)
      ~n_channels
      ~deliver:(fun pkt -> delivered := pkt.Packet.seq :: !delivered)
      ()
  in
  let nonempty () =
    Array.to_list wires
    |> List.mapi (fun i q -> (i, q))
    |> List.filter (fun (_, q) -> not (Queue.is_empty q))
  in
  let rec shuttle () =
    match nonempty () with
    | [] -> ()
    | live ->
      let c, q = List.nth live (Stripe_netsim.Rng.int rng (List.length live)) in
      let pkt = Queue.pop q in
      if not (Stripe_netsim.Rng.bernoulli rng ~p:loss_p) then
        Seq_resequencer.receive reseq ~channel:c pkt;
      shuttle ()
  in
  shuttle ();
  (List.rev !delivered, reseq)

let is_strictly_increasing l =
  let rec go = function
    | a :: (b :: _ as rest) -> a < b && go rest
    | [ _ ] | [] -> true
  in
  go l

let test_lossless_uses_fast_path () =
  let out, reseq = run ~seed:1 ~n_channels:3 ~n_packets:500 ~loss_p:0.0 () in
  Alcotest.(check (list int)) "exact FIFO" (List.init 500 Fun.id) out;
  Alcotest.(check int) "every delivery on the fast path" 500
    (Seq_resequencer.fast_deliveries reseq);
  Alcotest.(check int) "no confirmation failures" 0
    (Seq_resequencer.confirmations_failed reseq);
  Alcotest.(check int) "no losses detected" 0
    (Seq_resequencer.detected_losses reseq)

let test_loss_never_reorders () =
  let out, reseq = run ~seed:2 ~n_channels:2 ~n_packets:800 ~loss_p:0.2 () in
  Alcotest.(check bool) "strictly increasing despite 20% loss" true
    (is_strictly_increasing out);
  Alcotest.(check bool) "losses were detected" true
    (Seq_resequencer.detected_losses reseq > 0);
  Alcotest.(check bool) "the simulation break was noticed" true
    (Seq_resequencer.confirmations_failed reseq >= 1)

let test_without_fast_path () =
  let out, reseq =
    run ~with_fast_path:false ~seed:3 ~n_channels:3 ~n_packets:400 ~loss_p:0.1 ()
  in
  Alcotest.(check bool) "pure sequenced mode also FIFO" true
    (is_strictly_increasing out);
  Alcotest.(check int) "no fast deliveries without a deficit engine" 0
    (Seq_resequencer.fast_deliveries reseq)

let test_blocking_on_empty_channel () =
  (* seq 1 is missing but channel 1's buffer is empty: it could still be
     in flight there, so delivery must wait rather than skip. *)
  let reseq =
    Seq_resequencer.create ~n_channels:2 ~deliver:(fun _ -> ()) ()
  in
  Seq_resequencer.receive reseq ~channel:0 (p 0);
  Seq_resequencer.receive reseq ~channel:0 (p 2);
  Alcotest.(check int) "0 delivered, 2 held" 1 (Seq_resequencer.delivered reseq);
  Alcotest.(check int) "waiting for seq 1" 1 (Seq_resequencer.next_seq reseq);
  (* seq 1 arrives late on the other channel: everything drains. *)
  Seq_resequencer.receive reseq ~channel:1 (p 1);
  Alcotest.(check int) "all delivered in order" 3 (Seq_resequencer.delivered reseq);
  Alcotest.(check int) "nothing skipped" 0 (Seq_resequencer.detected_losses reseq)

let test_gap_skip_when_provably_lost () =
  (* Both channels have advanced past seq 1: FIFO channels mean it can
     never arrive, so the gap is skipped. *)
  let delivered = ref [] in
  let reseq =
    Seq_resequencer.create ~n_channels:2
      ~deliver:(fun pkt -> delivered := pkt.Packet.seq :: !delivered)
      ()
  in
  Seq_resequencer.receive reseq ~channel:0 (p 0);
  Seq_resequencer.receive reseq ~channel:0 (p 2);
  Seq_resequencer.receive reseq ~channel:1 (p 3);
  Alcotest.(check (list int)) "gap skipped, order preserved" [ 0; 2; 3 ]
    (List.rev !delivered);
  Alcotest.(check int) "one loss detected" 1 (Seq_resequencer.detected_losses reseq);
  Alcotest.(check int) "now expecting 4" 4 (Seq_resequencer.next_seq reseq)

let test_markers_ignored () =
  let reseq = Seq_resequencer.create ~n_channels:1 ~deliver:(fun _ -> ()) () in
  Seq_resequencer.receive reseq ~channel:0
    (Packet.marker ~channel:0 ~round:3 ~dc:100 ~born:0.0 ());
  Alcotest.(check int) "marker not buffered" 0 (Seq_resequencer.pending reseq);
  Seq_resequencer.receive reseq ~channel:0 (p 0);
  Alcotest.(check int) "data still flows" 1 (Seq_resequencer.delivered reseq)

let test_drain_sorted () =
  let delivered = ref [] in
  let reseq =
    Seq_resequencer.create ~n_channels:2
      ~deliver:(fun pkt -> delivered := pkt.Packet.seq :: !delivered)
      ()
  in
  Seq_resequencer.receive reseq ~channel:0 (p 5);
  (* Once both heads are past seq 0..2, the gap skips and 3 delivers;
     5 and 7 stay parked behind the (possibly in-flight) 4 on channel 1. *)
  Seq_resequencer.receive reseq ~channel:1 (p 3);
  Seq_resequencer.receive reseq ~channel:0 (p 7);
  Alcotest.(check (list int)) "gap skip delivered 3" [ 3 ] (List.rev !delivered);
  let drained = Seq_resequencer.drain reseq in
  Alcotest.(check (list int)) "drain in sequence order" [ 5; 7 ]
    (List.map (fun q -> q.Packet.seq) drained)

let test_arity_checks () =
  Alcotest.check_raises "zero channels"
    (Invalid_argument "Seq_resequencer.create: no channels") (fun () ->
      ignore (Seq_resequencer.create ~n_channels:0 ~deliver:(fun _ -> ()) ()));
  let d = Srr.create ~quanta:[| 100 |] () in
  Alcotest.check_raises "deficit arity"
    (Invalid_argument "Seq_resequencer.create: deficit arity mismatch")
    (fun () ->
      ignore
        (Seq_resequencer.create ~deficit:d ~n_channels:2 ~deliver:(fun _ -> ()) ()))

let prop_guaranteed_fifo =
  QCheck.Test.make
    ~name:"seq resequencer: delivery strictly increasing under any loss"
    ~count:100
    QCheck.(triple (int_range 0 1000) (float_range 0.0 0.7) (int_range 1 4))
    (fun (seed, loss_p, n_channels) ->
      let out, _ = run ~seed ~n_channels ~n_packets:300 ~loss_p () in
      is_strictly_increasing out)

let prop_lossless_complete =
  QCheck.Test.make
    ~name:"seq resequencer: lossless delivery is complete and exact" ~count:80
    QCheck.(pair (int_range 0 1000) (int_range 1 5))
    (fun (seed, n_channels) ->
      let out, _ = run ~seed ~n_channels ~n_packets:250 ~loss_p:0.0 () in
      out = List.init 250 Fun.id)

let suites =
  [
    ( "seq_resequencer",
      [
        Alcotest.test_case "lossless fast path" `Quick test_lossless_uses_fast_path;
        Alcotest.test_case "loss never reorders" `Quick test_loss_never_reorders;
        Alcotest.test_case "without fast path" `Quick test_without_fast_path;
        Alcotest.test_case "blocks on empty channel" `Quick
          test_blocking_on_empty_channel;
        Alcotest.test_case "gap skip" `Quick test_gap_skip_when_provably_lost;
        Alcotest.test_case "markers ignored" `Quick test_markers_ignored;
        Alcotest.test_case "drain sorted" `Quick test_drain_sorted;
        Alcotest.test_case "arity checks" `Quick test_arity_checks;
        QCheck_alcotest.to_alcotest prop_guaranteed_fifo;
        QCheck_alcotest.to_alcotest prop_lossless_complete;
      ] );
  ]
