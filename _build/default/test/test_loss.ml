(* Tests for loss processes: rates, burstiness of Gilbert-Elliott, and the
   deterministic drop pattern used in golden walkthroughs. *)

open Stripe_netsim

let rate process rng n =
  let dropped = ref 0 in
  for _ = 1 to n do
    if Loss.drop process rng then incr dropped
  done;
  float_of_int !dropped /. float_of_int n

let test_none () =
  let rng = Rng.create 1 in
  Alcotest.(check (float 0.0)) "lossless drops nothing" 0.0
    (rate (Loss.none ()) rng 1000)

let test_bernoulli_rate () =
  let rng = Rng.create 2 in
  let r = rate (Loss.bernoulli ~p:0.2) rng 100_000 in
  Alcotest.(check bool)
    (Printf.sprintf "bernoulli rate %.3f near 0.2" r)
    true
    (abs_float (r -. 0.2) < 0.01)

let test_bernoulli_extremes () =
  let rng = Rng.create 3 in
  Alcotest.(check (float 0.0)) "p=0 never drops" 0.0
    (rate (Loss.bernoulli ~p:0.0) rng 1000);
  Alcotest.(check (float 0.0)) "p=1 always drops" 1.0
    (rate (Loss.bernoulli ~p:1.0) rng 1000)

let test_bernoulli_validation () =
  Alcotest.check_raises "p > 1 rejected"
    (Invalid_argument "Loss: p=1.5 not a probability") (fun () ->
      ignore (Loss.bernoulli ~p:1.5))

(* Gilbert-Elliott with a lossy bad state must produce longer loss runs
   than a Bernoulli process of the same average rate. *)
let test_gilbert_burstiness () =
  let rng = Rng.create 4 in
  let mean_run process rng n =
    let runs = ref 0 and losses = ref 0 and in_run = ref false in
    for _ = 1 to n do
      if Loss.drop process rng then begin
        incr losses;
        if not !in_run then begin
          incr runs;
          in_run := true
        end
      end
      else in_run := false
    done;
    if !runs = 0 then 0.0 else float_of_int !losses /. float_of_int !runs
  in
  let gilbert =
    Loss.gilbert ~p_good_to_bad:0.01 ~p_bad_to_good:0.2 ~loss_good:0.0
      ~loss_bad:0.9
  in
  let g_run = mean_run gilbert rng 200_000 in
  let b_run = mean_run (Loss.bernoulli ~p:0.05) rng 200_000 in
  Alcotest.(check bool)
    (Printf.sprintf "gilbert run %.2f > bernoulli run %.2f" g_run b_run)
    true (g_run > b_run *. 1.5)

let test_gilbert_rate_bounds () =
  let rng = Rng.create 5 in
  let g =
    Loss.gilbert ~p_good_to_bad:0.05 ~p_bad_to_good:0.05 ~loss_good:0.0
      ~loss_bad:1.0
  in
  let r = rate g rng 100_000 in
  (* Symmetric chain spends half its time in each state. *)
  Alcotest.(check bool)
    (Printf.sprintf "gilbert rate %.3f near 0.5" r)
    true
    (abs_float (r -. 0.5) < 0.03)

let test_deterministic_every () =
  let rng = Rng.create 6 in
  let p = Loss.deterministic_every 3 in
  let pattern = List.init 9 (fun _ -> Loss.drop p rng) in
  Alcotest.(check (list bool)) "every 3rd packet dropped"
    [ false; false; true; false; false; true; false; false; true ]
    pattern

let test_deterministic_every_one () =
  let rng = Rng.create 7 in
  let p = Loss.deterministic_every 1 in
  Alcotest.(check (float 0.0)) "n=1 drops everything" 1.0 (rate p rng 100)

let test_deterministic_validation () =
  Alcotest.check_raises "n=0 rejected"
    (Invalid_argument "Loss.deterministic_every: n must be >= 1") (fun () ->
      ignore (Loss.deterministic_every 0))

let suites =
  [
    ( "loss",
      [
        Alcotest.test_case "none" `Quick test_none;
        Alcotest.test_case "bernoulli rate" `Quick test_bernoulli_rate;
        Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
        Alcotest.test_case "bernoulli validation" `Quick test_bernoulli_validation;
        Alcotest.test_case "gilbert burstiness" `Quick test_gilbert_burstiness;
        Alcotest.test_case "gilbert rate" `Quick test_gilbert_rate_bounds;
        Alcotest.test_case "deterministic every" `Quick test_deterministic_every;
        Alcotest.test_case "deterministic n=1" `Quick test_deterministic_every_one;
        Alcotest.test_case "deterministic validation" `Quick
          test_deterministic_validation;
      ] );
  ]
