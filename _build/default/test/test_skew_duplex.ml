(* Tests for the skew-compensation baseline and the full-duplex session
   with credits piggybacked on markers. *)

open Stripe_netsim
open Stripe_packet
open Stripe_core
open Stripe_transport

(* --- Skew compensation ------------------------------------------------ *)

let skew_rig sim ~skews ~jitter ~deliver =
  let comp = Skew_comp.create sim ~skews ~deliver () in
  let rng = Rng.create 31 in
  let links =
    Array.mapi
      (fun i skew ->
        Link.create sim
          ~name:(Printf.sprintf "ch%d" i)
          ~rate_bps:10e6 ~prop_delay:skew
          ?jitter:(if jitter > 0.0 then Some (fun r -> Rng.float r jitter) else None)
          ~rng:(Rng.split rng)
          ~deliver:(fun pkt -> Skew_comp.receive comp ~channel:i pkt)
          ())
      skews
  in
  let engine = Srr.create ~quanta:[| 1500; 1500 |] () in
  let striper =
    Striper.create
      ~scheduler:(Scheduler.of_deficit ~name:"SRR" engine)
      ~emit:(fun ~channel pkt ->
        ignore (Link.send links.(channel) ~size:pkt.Packet.size pkt))
      ()
  in
  (comp, striper)

(* Send paced fixed-size packets so serialization does not reorder. *)
let drive sim striper ~n =
  let seq = ref 0 in
  let rec tick () =
    if !seq < n then begin
      Striper.push striper (Packet.data ~seq:!seq ~size:1000 ());
      incr seq;
      Sim.schedule_after sim ~delay:0.001 tick
    end
  in
  tick ()

let test_skew_comp_constant_skews () =
  let sim = Sim.create () in
  let out = ref [] in
  let comp, striper =
    skew_rig sim ~skews:[| 0.002; 0.030 |] ~jitter:0.0
      ~deliver:(fun pkt -> out := pkt.Packet.seq :: !out)
  in
  Alcotest.(check (float 1e-9)) "slow channel gets no extra delay" 0.0
    (Skew_comp.compensation comp 1);
  Alcotest.(check (float 1e-9)) "fast channel equalized" 0.028
    (Skew_comp.compensation comp 0);
  drive sim striper ~n:200;
  Sim.run sim;
  Alcotest.(check (list int)) "bounded constant skew -> FIFO"
    (List.init 200 Fun.id) (List.rev !out)

let test_skew_comp_breaks_under_jitter () =
  let sim = Sim.create () in
  let late = ref 0 in
  let max_seen = ref (-1) in
  let _, striper =
    skew_rig sim ~skews:[| 0.002; 0.030 |] ~jitter:0.040
      ~deliver:(fun pkt ->
        if pkt.Packet.seq < !max_seen then incr late;
        if pkt.Packet.seq > !max_seen then max_seen := pkt.Packet.seq)
  in
  drive sim striper ~n:400;
  Sim.run sim;
  Alcotest.(check bool)
    (Printf.sprintf "unbounded jitter leaks %d misorders" !late)
    true (!late > 0)

let test_logical_reception_same_jitter_is_fifo () =
  (* The same jittery channels, resequenced by logical reception: FIFO.
     This is the §2 argument for not depending on skew bounds. *)
  let sim = Sim.create () in
  let rng = Rng.create 31 in
  let engine = Srr.create ~quanta:[| 1500; 1500 |] () in
  let out = ref [] in
  let reseq =
    Resequencer.create ~deficit:(Deficit.clone_initial engine)
      ~deliver:(fun ~channel:_ pkt -> out := pkt.Packet.seq :: !out)
      ()
  in
  let links =
    Array.mapi
      (fun i skew ->
        Link.create sim
          ~name:(Printf.sprintf "ch%d" i)
          ~rate_bps:10e6 ~prop_delay:skew
          ~jitter:(fun r -> Rng.float r 0.040)
          ~rng:(Rng.split rng)
          ~deliver:(fun pkt -> Resequencer.receive reseq ~channel:i pkt)
          ())
      [| 0.002; 0.030 |]
  in
  let striper =
    Striper.create
      ~scheduler:(Scheduler.of_deficit ~name:"SRR" engine)
      ~emit:(fun ~channel pkt ->
        ignore (Link.send links.(channel) ~size:pkt.Packet.size pkt))
      ()
  in
  drive sim striper ~n:400;
  Sim.run sim;
  Alcotest.(check (list int)) "logical reception unaffected by jitter"
    (List.init 400 Fun.id) (List.rev !out)

let test_skew_comp_validation () =
  let sim = Sim.create () in
  Alcotest.check_raises "no channels"
    (Invalid_argument "Skew_comp.create: no channels") (fun () ->
      ignore (Skew_comp.create sim ~skews:[||] ~deliver:ignore ()))

(* --- Duplex session with piggybacked credits -------------------------- *)

let duplex_rig sim ?(buffer = 16) () =
  let channels =
    [|
      Socket_stripe.spec ~rate_bps:4e6 ~prop_delay:0.004 ();
      Socket_stripe.spec ~rate_bps:2e6 ~prop_delay:0.010 ();
    |]
  in
  let got_a = ref [] and got_b = ref [] in
  let d =
    Duplex.create sim ~channels ~quanta:[| 1200; 1200 |] ~buffer
      ~deliver_to_a:(fun pkt -> got_a := pkt.Packet.seq :: !got_a)
      ~deliver_to_b:(fun pkt -> got_b := pkt.Packet.seq :: !got_b)
      ()
  in
  (d, got_a, got_b)

let test_duplex_both_directions_fifo () =
  let sim = Sim.create () in
  let d, got_a, got_b = duplex_rig sim () in
  for seq = 0 to 499 do
    Sim.schedule sim ~at:(float_of_int seq *. 0.002) (fun () ->
        Duplex.send_from_a d (Packet.data ~seq ~size:800 ());
        Duplex.send_from_b d (Packet.data ~seq:(10_000 + seq) ~size:500 ()))
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "A->B stream FIFO and complete"
    (List.init 500 Fun.id) (List.rev !got_b);
  Alcotest.(check (list int)) "B->A stream FIFO and complete"
    (List.init 500 (fun i -> 10_000 + i))
    (List.rev !got_a)

let test_duplex_credits_prevent_overrun () =
  let sim = Sim.create () in
  let d, _, got_b = duplex_rig sim ~buffer:8 () in
  (* Blast A->B at 4x the bundle capacity; B sends a trickle so periodic
     B->A markers exist to carry credits. *)
  for seq = 0 to 1999 do
    Sim.schedule sim ~at:(float_of_int seq *. 0.0002) (fun () ->
        Duplex.send_from_a d (Packet.data ~seq ~size:1000 ()))
  done;
  for seq = 0 to 99 do
    Sim.schedule sim ~at:(float_of_int seq *. 0.01) (fun () ->
        Duplex.send_from_b d (Packet.data ~seq:(50_000 + seq) ~size:200 ()))
  done;
  Sim.run sim;
  let sa = Duplex.stats_a d and sb = Duplex.stats_b d in
  Alcotest.(check int) "no congestion drops at B" 0 sb.Duplex.congestion_drops;
  Alcotest.(check int) "everything delivered to B" 2000 (List.length !got_b);
  Alcotest.(check bool) "A was back-pressured" true (sa.Duplex.stalls > 0);
  Alcotest.(check bool) "credits rode markers" true (sb.Duplex.markers > 0)

let test_duplex_idle_reverse_direction () =
  (* B never sends data: standalone credit markers must keep A flowing
     anyway. *)
  let sim = Sim.create () in
  let d, _, got_b = duplex_rig sim ~buffer:8 () in
  for seq = 0 to 999 do
    Sim.schedule sim ~at:(float_of_int seq *. 0.0004) (fun () ->
        Duplex.send_from_a d (Packet.data ~seq ~size:1000 ()))
  done;
  Sim.run sim;
  let sb = Duplex.stats_b d in
  Alcotest.(check int) "complete despite idle reverse path" 1000
    (List.length !got_b);
  Alcotest.(check int) "still no drops" 0 sb.Duplex.congestion_drops;
  Alcotest.(check (list int)) "and in order" (List.init 1000 Fun.id)
    (List.rev !got_b)

let prop_duplex_lossy_channels_no_stall =
  QCheck.Test.make
    ~name:
      "duplex: lossy channels (markers included) never stall the sender or \
       overrun buffers"
    ~count:15
    QCheck.(pair (int_range 0 200) (float_range 0.0 0.1))
    (fun (seed, loss_p) ->
      let sim = Sim.create () in
      (* Loss applies to everything on the wire, credit markers
         included: the periodic re-advertisement must keep the sender
         from deadlocking on lost credits. *)
      let channels =
        [|
          Socket_stripe.spec ~rate_bps:4e6 ~prop_delay:0.003
            ~loss:(fun () -> Stripe_netsim.Loss.bernoulli ~p:loss_p)
            ();
          Socket_stripe.spec ~rate_bps:2e6 ~prop_delay:0.008
            ~loss:(fun () -> Stripe_netsim.Loss.bernoulli ~p:loss_p)
            ();
        |]
      in
      ignore seed;
      let delivered = ref 0 in
      let d =
        Duplex.create sim ~channels ~quanta:[| 1200; 1200 |] ~buffer:12
          ~deliver_to_a:(fun _ -> ())
          ~deliver_to_b:(fun _ -> incr delivered)
          ()
      in
      let n = 400 in
      for seq = 0 to n - 1 do
        Sim.schedule sim ~at:(float_of_int seq *. 0.002) (fun () ->
            Duplex.send_from_a d (Packet.data ~seq ~size:1000 ()))
      done;
      Sim.run sim;
      let sa = Duplex.stats_a d and sb = Duplex.stats_b d in
      (* No deadlock: the queue drains and everything is transmitted.
         Loss presumptions may overrun the peer by a handful of packets
         at most; with no loss the run must be perfect. *)
      sa.Duplex.app_queue = 0
      && sa.Duplex.sent = n
      && sb.Duplex.congestion_drops <= 4
      && (loss_p > 0.0 || (!delivered = n && sb.Duplex.congestion_drops = 0))
      && !delivered >= (n * 6) / 10)

let test_duplex_validation () =
  let sim = Sim.create () in
  Alcotest.check_raises "bad buffer"
    (Invalid_argument "Duplex.create: buffer must be positive") (fun () ->
      ignore
        (Duplex.create sim
           ~channels:[| Socket_stripe.spec ~rate_bps:1e6 () |]
           ~quanta:[| 1000 |] ~buffer:0 ~deliver_to_a:ignore
           ~deliver_to_b:ignore ()))

let suites =
  [
    ( "skew_comp",
      [
        Alcotest.test_case "constant skews" `Quick test_skew_comp_constant_skews;
        Alcotest.test_case "breaks under jitter" `Quick
          test_skew_comp_breaks_under_jitter;
        Alcotest.test_case "logical reception under jitter" `Quick
          test_logical_reception_same_jitter_is_fifo;
        Alcotest.test_case "validation" `Quick test_skew_comp_validation;
      ] );
    ( "duplex",
      [
        Alcotest.test_case "both directions fifo" `Quick
          test_duplex_both_directions_fifo;
        Alcotest.test_case "credits prevent overrun" `Quick
          test_duplex_credits_prevent_overrun;
        Alcotest.test_case "idle reverse direction" `Quick
          test_duplex_idle_reverse_direction;
        Alcotest.test_case "validation" `Quick test_duplex_validation;
        QCheck_alcotest.to_alcotest prop_duplex_lossy_channels_no_stall;
      ] );
  ]
