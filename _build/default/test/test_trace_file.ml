(* Tests for the trace capture/replay format. *)

open Stripe_packet
open Stripe_workload

let entry time seq size =
  { Trace_file.time; packet = Packet.data ~born:time ~seq ~size () }

let test_roundtrip_string () =
  let entries = [ entry 0.0 0 100; entry 0.125 1 1400; entry 0.25 2 64 ] in
  let parsed = Trace_file.of_string (Trace_file.to_string entries) in
  Alcotest.(check int) "count" 3 (List.length parsed);
  List.iter2
    (fun a b ->
      Alcotest.(check (float 1e-6)) "time" a.Trace_file.time b.Trace_file.time;
      Alcotest.(check int) "seq" a.packet.Packet.seq b.packet.Packet.seq;
      Alcotest.(check int) "size" a.packet.Packet.size b.packet.Packet.size)
    entries parsed

let test_roundtrip_file () =
  let path = Filename.temp_file "stripe_trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let entries = [ entry 0.0 0 500; entry 1.5 1 200 ] in
      Trace_file.save path entries;
      let loaded = Trace_file.load path in
      Alcotest.(check int) "count" 2 (List.length loaded);
      Alcotest.(check int) "bytes" 700 (Trace_file.total_bytes loaded);
      Alcotest.(check (float 1e-9)) "duration" 1.5 (Trace_file.duration loaded))

let test_comments_and_blanks () =
  let text = "# header\n\n0.5 7 100 0 -1\n# trailing comment\n" in
  let parsed = Trace_file.of_string text in
  Alcotest.(check int) "one entry" 1 (List.length parsed);
  Alcotest.(check int) "seq" 7 (List.hd parsed).packet.Packet.seq

let test_malformed_reports_line () =
  Alcotest.check_raises "bad field count"
    (Failure "Trace_file: expected 5 fields at line 2") (fun () ->
      ignore (Trace_file.of_string "# ok\n0.5 7 100\n"));
  Alcotest.check_raises "bad number"
    (Failure "Trace_file: malformed fields at line 1") (fun () ->
      ignore (Trace_file.of_string "zero 7 100 0 -1\n"))

let test_of_video () =
  let rng = Stripe_netsim.Rng.create 3 in
  let video = Video.generate ~rng ~n_frames:10 () in
  let entries = Trace_file.of_video video in
  Alcotest.(check int) "entry per packet" (Video.n_packets video)
    (List.length entries);
  (* Round-trip the converted trace too. *)
  let parsed = Trace_file.of_string (Trace_file.to_string entries) in
  Alcotest.(check int) "frame ids preserved"
    (List.hd entries).packet.Packet.frame
    (List.hd parsed).packet.Packet.frame

let test_replay_preserves_experiment () =
  (* A stored trace replayed through striping gives the same delivery as
     the live generator: capture/replay is faithful. *)
  let run entries =
    let sim = Stripe_netsim.Sim.create () in
    let engine = Stripe_core.Srr.create ~quanta:[| 1500; 1500 |] () in
    let out = ref [] in
    let reseq =
      Stripe_core.Resequencer.create
        ~deficit:(Stripe_core.Deficit.clone_initial engine)
        ~deliver:(fun ~channel:_ p -> out := p.Packet.seq :: !out)
        ()
    in
    let links =
      Array.init 2 (fun i ->
          Stripe_netsim.Link.create sim
            ~name:(Printf.sprintf "ch%d" i)
            ~rate_bps:5e6
            ~prop_delay:(0.001 +. (0.01 *. float_of_int i))
            ~deliver:(fun pkt -> Stripe_core.Resequencer.receive reseq ~channel:i pkt)
            ())
    in
    let striper =
      Stripe_core.Striper.create
        ~scheduler:(Stripe_core.Scheduler.of_deficit ~name:"SRR" engine)
        ~emit:(fun ~channel pkt ->
          ignore (Stripe_netsim.Link.send links.(channel) ~size:pkt.Packet.size pkt))
        ()
    in
    List.iter
      (fun e ->
        Stripe_netsim.Sim.schedule sim ~at:e.Trace_file.time (fun () ->
            Stripe_core.Striper.push striper e.Trace_file.packet))
      entries;
    Stripe_netsim.Sim.run sim;
    List.rev !out
  in
  let rng = Stripe_netsim.Rng.create 4 in
  let video = Video.generate ~rng ~n_frames:20 () in
  let live = Trace_file.of_video video in
  let replayed = Trace_file.of_string (Trace_file.to_string live) in
  Alcotest.(check (list int)) "identical delivery" (run live) (run replayed)

let suites =
  [
    ( "trace_file",
      [
        Alcotest.test_case "roundtrip string" `Quick test_roundtrip_string;
        Alcotest.test_case "roundtrip file" `Quick test_roundtrip_file;
        Alcotest.test_case "comments/blanks" `Quick test_comments_and_blanks;
        Alcotest.test_case "malformed lines" `Quick test_malformed_reports_line;
        Alcotest.test_case "of_video" `Quick test_of_video;
        Alcotest.test_case "replay fidelity" `Quick test_replay_preserves_experiment;
      ] );
  ]
