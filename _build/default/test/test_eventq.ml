(* Unit tests for the event queue: ordering, tie-breaking stability,
   growth, and clearing. *)

open Stripe_netsim

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_empty () =
  let q = Eventq.create () in
  check "fresh queue is empty" true (Eventq.is_empty q);
  check_int "fresh queue length" 0 (Eventq.length q);
  check "no peek time" true (Eventq.peek_time q = None);
  check "pop on empty" true (Eventq.pop q = None)

let test_time_order () =
  let q = Eventq.create () in
  List.iter (fun t -> Eventq.add q ~time:t (int_of_float t)) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  let order = List.init 5 (fun _ -> match Eventq.pop q with Some (_, v) -> v | None -> -1) in
  Alcotest.(check (list int)) "ascending time order" [ 1; 2; 3; 4; 5 ] order

let test_fifo_ties () =
  let q = Eventq.create () in
  for i = 0 to 9 do
    Eventq.add q ~time:1.0 i
  done;
  let order = List.init 10 (fun _ -> match Eventq.pop q with Some (_, v) -> v | None -> -1) in
  Alcotest.(check (list int)) "same-time events pop in insertion order"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] order

let test_interleaved_ties () =
  let q = Eventq.create () in
  Eventq.add q ~time:2.0 "b1";
  Eventq.add q ~time:1.0 "a1";
  Eventq.add q ~time:2.0 "b2";
  Eventq.add q ~time:1.0 "a2";
  let pop () = match Eventq.pop q with Some (_, v) -> v | None -> "?" in
  let order = List.init 4 (fun _ -> pop ()) in
  Alcotest.(check (list string)) "ties stable across interleaving"
    [ "a1"; "a2"; "b1"; "b2" ] order

let test_peek_does_not_remove () =
  let q = Eventq.create () in
  Eventq.add q ~time:7.5 ();
  check "peek sees earliest" true (Eventq.peek_time q = Some 7.5);
  check_int "peek leaves element" 1 (Eventq.length q)

let test_growth () =
  let q = Eventq.create () in
  let n = 10_000 in
  for i = n downto 1 do
    Eventq.add q ~time:(float_of_int i) i
  done;
  check_int "all inserted" n (Eventq.length q);
  let prev = ref 0 in
  let sorted = ref true in
  for _ = 1 to n do
    match Eventq.pop q with
    | Some (_, v) ->
      if v < !prev then sorted := false;
      prev := v
    | None -> sorted := false
  done;
  check "large reverse-order insert pops sorted" true !sorted

let test_clear () =
  let q = Eventq.create () in
  Eventq.add q ~time:1.0 ();
  Eventq.add q ~time:2.0 ();
  Eventq.clear q;
  check "cleared queue is empty" true (Eventq.is_empty q)

let prop_heap_sorts =
  QCheck.Test.make ~name:"eventq pops any insertion sequence in time order"
    ~count:200
    QCheck.(list (float_range 0.0 1000.0))
    (fun times ->
      let q = Eventq.create () in
      List.iteri (fun i t -> Eventq.add q ~time:t i) times;
      let rec drain acc =
        match Eventq.pop q with
        | Some (t, _) -> drain (t :: acc)
        | None -> List.rev acc
      in
      let popped = drain [] in
      popped = List.sort compare times)

let suites =
  [
    ( "eventq",
      [
        Alcotest.test_case "empty" `Quick test_empty;
        Alcotest.test_case "time order" `Quick test_time_order;
        Alcotest.test_case "fifo ties" `Quick test_fifo_ties;
        Alcotest.test_case "interleaved ties" `Quick test_interleaved_ties;
        Alcotest.test_case "peek" `Quick test_peek_does_not_remove;
        Alcotest.test_case "growth" `Quick test_growth;
        Alcotest.test_case "clear" `Quick test_clear;
        QCheck_alcotest.to_alcotest prop_heap_sorts;
      ] );
  ]
