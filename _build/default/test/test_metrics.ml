(* Tests for summary statistics, throughput meters, recovery measurement,
   and table rendering. *)

open Stripe_metrics

let test_summary_moments () =
  let s = Summary.create () in
  List.iter (Summary.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check int) "count" 8 (Summary.count s);
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Summary.mean s);
  Alcotest.(check (float 1e-6)) "sample stddev" 2.13809 (Summary.stddev s);
  Alcotest.(check (float 0.0)) "min" 2.0 (Summary.min_value s);
  Alcotest.(check (float 0.0)) "max" 9.0 (Summary.max_value s);
  Alcotest.(check (float 0.0)) "total" 40.0 (Summary.total s)

let test_summary_empty () =
  let s = Summary.create () in
  Alcotest.(check (float 0.0)) "mean of empty" 0.0 (Summary.mean s);
  Alcotest.(check (float 0.0)) "stddev of empty" 0.0 (Summary.stddev s);
  Alcotest.check_raises "min of empty raises"
    (Invalid_argument "Summary.min_value: empty") (fun () ->
      ignore (Summary.min_value s))

let test_summary_percentile () =
  let s = Summary.create ~keep_samples:true () in
  for i = 1 to 100 do
    Summary.add s (float_of_int i)
  done;
  Alcotest.(check (float 0.0)) "p50" 50.0 (Summary.percentile s 50.0);
  Alcotest.(check (float 0.0)) "p99" 99.0 (Summary.percentile s 99.0);
  Alcotest.(check (float 0.0)) "p100" 100.0 (Summary.percentile s 100.0)

let test_summary_percentile_requires_samples () =
  let s = Summary.create () in
  Summary.add s 1.0;
  Alcotest.check_raises "percentile without retention"
    (Invalid_argument "Summary.percentile: samples not kept") (fun () ->
      ignore (Summary.percentile s 50.0))

let test_throughput () =
  let t = Throughput.create () in
  Throughput.account t ~now:1.0 ~bytes:1000;
  Throughput.account t ~now:2.0 ~bytes:1000;
  Throughput.account t ~now:3.0 ~bytes:1000;
  Alcotest.(check int) "bytes" 3000 (Throughput.bytes t);
  Alcotest.(check int) "packets" 3 (Throughput.packets t);
  Alcotest.(check (float 1e-9)) "duration from first account" 2.0
    (Throughput.duration t);
  (* 2000 payload bytes over the 2 s window after the epoch packet. *)
  Alcotest.(check (float 1e-6)) "bps" 12000.0 (Throughput.bps t);
  Alcotest.(check (float 1e-9)) "mbps" 0.012 (Throughput.mbps t)

let test_throughput_epoch () =
  let t = Throughput.create () in
  Throughput.start_at t 0.0;
  Throughput.account t ~now:2.0 ~bytes:1000;
  Alcotest.(check (float 1e-9)) "explicit epoch" 2.0 (Throughput.duration t);
  Alcotest.(check (float 1e-6)) "rate over epoch window" 4000.0 (Throughput.bps t)

let test_recovery_immediate () =
  let r = Recovery.create () in
  List.iteri (fun i seq -> Recovery.observe r ~now:(float_of_int i) ~seq)
    [ 0; 1; 2; 3 ];
  Alcotest.(check (option (float 0.0))) "already in order" (Some 0.0)
    (Recovery.resync_time r ~errors_stop:1.0)

let test_recovery_after_disorder () =
  let r = Recovery.create () in
  (* Disordered until t=3, in order from t=4 on. *)
  List.iter (fun (now, seq) -> Recovery.observe r ~now ~seq)
    [ (0.0, 0); (1.0, 5); (2.0, 2); (3.0, 8); (4.0, 7); (5.0, 9); (6.0, 10) ];
  (match Recovery.resync_time r ~errors_stop:3.5 with
  | Some dt -> Alcotest.(check (float 1e-9)) "resync at t=4" 0.5 dt
  | None -> Alcotest.fail "expected recovery");
  Alcotest.(check bool) "in order after 3.5" true
    (Recovery.in_order_after r ~time:3.5);
  Alcotest.(check bool) "not in order after 0.5" false
    (Recovery.in_order_after r ~time:0.5)

let test_recovery_never () =
  let r = Recovery.create () in
  List.iter (fun (now, seq) -> Recovery.observe r ~now ~seq)
    [ (0.0, 0); (1.0, 2); (2.0, 1) ];
  Alcotest.(check (option (float 0.0))) "no post-stop deliveries in suffix" None
    (Recovery.resync_time r ~errors_stop:5.0)

let test_recovery_out_of_order_count () =
  let r = Recovery.create () in
  List.iter (fun (now, seq) -> Recovery.observe r ~now ~seq)
    [ (0.0, 0); (1.0, 3); (2.0, 1); (3.0, 2); (4.0, 4) ];
  Alcotest.(check int) "late in tail" 2 (Recovery.out_of_order_after r ~time:0.5)

let test_table_render () =
  let t = Table.create ~title:"T" ~columns:[ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_row t [ "333"; "4" ];
  let expected = "T\na    bb\n---  --\n1    2 \n333  4 \n" in
  Alcotest.(check string) "aligned" expected (Table.render t)

let test_table_arity () =
  let t = Table.create ~title:"T" ~columns:[ "a" ] in
  Alcotest.check_raises "row arity" (Invalid_argument "Table.add_row: wrong arity")
    (fun () -> Table.add_row t [ "1"; "2" ])

let test_table_rowf () =
  let t = Table.create ~title:"T" ~columns:[ "x"; "y" ] in
  Table.add_rowf t "%d|%s" 5 "hi";
  Alcotest.(check bool) "formatted row present" true
    (String.length (Table.render t) > 0)

let test_series () =
  let s =
    Table.series ~title:"fig" ~x_label:"x" ~x:[ 1.0; 2.0 ]
      [ ("a", [ 10.0; 20.0 ]); ("b", [ 1.5; 2.5 ]) ]
  in
  Alcotest.(check bool) "contains series name" true
    (String.length s > 0 && String.index_opt s 'a' <> None)

let suites =
  [
    ( "metrics",
      [
        Alcotest.test_case "summary moments" `Quick test_summary_moments;
        Alcotest.test_case "summary empty" `Quick test_summary_empty;
        Alcotest.test_case "summary percentile" `Quick test_summary_percentile;
        Alcotest.test_case "percentile retention" `Quick
          test_summary_percentile_requires_samples;
        Alcotest.test_case "throughput" `Quick test_throughput;
        Alcotest.test_case "throughput epoch" `Quick test_throughput_epoch;
        Alcotest.test_case "recovery immediate" `Quick test_recovery_immediate;
        Alcotest.test_case "recovery after disorder" `Quick
          test_recovery_after_disorder;
        Alcotest.test_case "recovery never" `Quick test_recovery_never;
        Alcotest.test_case "recovery ooo count" `Quick
          test_recovery_out_of_order_count;
        Alcotest.test_case "table render" `Quick test_table_render;
        Alcotest.test_case "table arity" `Quick test_table_arity;
        Alcotest.test_case "table rowf" `Quick test_table_rowf;
        Alcotest.test_case "series" `Quick test_series;
      ] );
  ]
