(* Tests for the real fair-queuing discipline (DRR/SRR over an output
   link), including consistency with the backlogged Cfq abstraction and
   the non-backlogged behaviors that make general FQ non-causal. *)

open Stripe_core
open Stripe_packet

let pkt seq size = Packet.data ~seq ~size ()

let drain fq =
  let rec go acc =
    match Fair_queue.dequeue fq with
    | Some (flow, p) -> go ((flow, p.Packet.seq) :: acc)
    | None -> List.rev acc
  in
  go []

let test_paper_example () =
  (* Figure 5: queues [a b c] / [d e f], quantum 500: service order
     a d e b c f. *)
  let fq = Fair_queue.create ~quanta:[| 500; 500 |] () in
  List.iteri (fun i size -> Fair_queue.enqueue fq ~flow:0 (pkt i size))
    [ 550; 150; 300 ];
  List.iteri (fun i size -> Fair_queue.enqueue fq ~flow:1 (pkt (10 + i) size))
    [ 200; 400; 400 ];
  Alcotest.(check (list (pair int int))) "Figure 5 service order"
    [ (0, 0); (1, 10); (1, 11); (0, 1); (0, 2); (1, 12) ]
    (drain fq)

let test_matches_cfq_when_backlogged () =
  (* The deployable FQ and the duality abstraction agree on backlogged
     inputs: same quanta, same service order. *)
  let rng = Stripe_netsim.Rng.create 12 in
  let quanta = [| 1500; 1500; 1500 |] in
  (* Identical size sequences per flow keep all queues draining in
     lockstep, so the Cfq execution stays backlogged to the end. *)
  let shared = List.init 120 (fun _ -> 50 + Stripe_netsim.Rng.int rng 1450) in
  let sizes = Array.init 3 (fun _ -> shared) in
  let fq = Fair_queue.create ~quanta () in
  Array.iteri
    (fun flow list ->
      List.iteri
        (fun i size -> Fair_queue.enqueue fq ~flow (pkt ((flow * 1000) + i) size))
        list)
    sizes;
  let real_order = List.map fst (drain fq) in
  (* Reference: the raw deficit engine driven as the backlogged FQ of
     §3.1, stopped at the instant the backlog assumption first breaks
     (it would select a drained queue). *)
  let d = Srr.create ~quanta () in
  let remaining = Array.map (fun l -> ref l) sizes in
  let rec reference acc =
    let flow = Deficit.select d in
    match !(remaining.(flow)) with
    | [] -> List.rev acc
    | size :: rest ->
      remaining.(flow) := rest;
      Deficit.consume d ~size;
      reference (flow :: acc)
  in
  let ref_order = reference [] in
  let truncated real = List.filteri (fun i _ -> i < List.length ref_order) real in
  Alcotest.(check bool) "reference covers most of the run" true
    (List.length ref_order > 300);
  Alcotest.(check (list int)) "flow service order identical while backlogged"
    ref_order (truncated real_order)

let test_skips_empty_queues () =
  let fq = Fair_queue.create ~quanta:[| 500; 500; 500 |] () in
  Fair_queue.enqueue fq ~flow:2 (pkt 0 400);
  Alcotest.(check (option (pair int int))) "only active flow served"
    (Some (2, 0))
    (Option.map (fun (f, p) -> (f, p.Packet.seq)) (Fair_queue.dequeue fq));
  Alcotest.(check bool) "then empty" true (Fair_queue.dequeue fq = None)

let test_idle_flow_forfeits_credit () =
  let fq = Fair_queue.create ~quanta:[| 1000; 1000 |] () in
  (* Flow 0 sends one tiny packet and goes idle with 900 credit; flow 1
     is backlogged. When flow 0 returns it must not burst 1900 bytes. *)
  Fair_queue.enqueue fq ~flow:0 (pkt 0 100);
  for i = 0 to 9 do
    Fair_queue.enqueue fq ~flow:1 (pkt (100 + i) 1000)
  done;
  ignore (Fair_queue.dequeue fq);
  (* flow 0 served, idle *)
  ignore (Fair_queue.dequeue fq);
  (* flow 1 serving *)
  Fair_queue.enqueue fq ~flow:0 (pkt 1 1000);
  Fair_queue.enqueue fq ~flow:0 (pkt 2 1000);
  let order = List.map fst (drain fq) in
  (* If credit were hoarded, flow 0 would send both packets back to back
     on its first visit. It must alternate. *)
  let rec first_two_zero = function
    | 0 :: 0 :: _ -> true
    | _ :: rest -> first_two_zero rest
    | [] -> false
  in
  ignore first_two_zero;
  let rec has_adjacent_pair = function
    | 0 :: 0 :: _ -> true
    | _ :: rest -> has_adjacent_pair rest
    | [] -> false
  in
  Alcotest.(check bool) "no double service from banked credit" false
    (has_adjacent_pair order)

let test_fairness_on_backlog () =
  let rng = Stripe_netsim.Rng.create 13 in
  let fq = Fair_queue.create ~quanta:[| 1500; 1500 |] () in
  for i = 0 to 1999 do
    Fair_queue.enqueue fq ~flow:(i mod 2)
      (pkt i (50 + Stripe_netsim.Rng.int rng 1450))
  done;
  (* Dequeue most of the backlog, then compare service. *)
  for _ = 1 to 1800 do
    ignore (Fair_queue.dequeue fq)
  done;
  let s0 = Fair_queue.served_bytes fq ~flow:0
  and s1 = Fair_queue.served_bytes fq ~flow:1 in
  Alcotest.(check bool)
    (Printf.sprintf "served bytes within bound: %d vs %d" s0 s1)
    true
    (abs (s0 - s1) <= 1500 + (2 * 1500))

let test_weighted_service () =
  let fq = Fair_queue.create ~quanta:[| 3000; 1000 |] () in
  for i = 0 to 999 do
    Fair_queue.enqueue fq ~flow:(i mod 2) (pkt i 500)
  done;
  (* Stop while both flows are still backlogged. *)
  for _ = 1 to 400 do
    ignore (Fair_queue.dequeue fq)
  done;
  let s0 = Fair_queue.served_bytes fq ~flow:0
  and s1 = Fair_queue.served_bytes fq ~flow:1 in
  let ratio = float_of_int s0 /. float_of_int s1 in
  Alcotest.(check bool)
    (Printf.sprintf "3:1 weights give ratio %.2f" ratio)
    true
    (ratio > 2.5 && ratio < 3.5)

let test_backlog_accounting () =
  let fq = Fair_queue.create ~quanta:[| 500 |] () in
  Fair_queue.enqueue fq ~flow:0 (pkt 0 300);
  Fair_queue.enqueue fq ~flow:0 (pkt 1 200);
  Alcotest.(check int) "backlog" 500 (Fair_queue.backlog fq ~flow:0);
  ignore (Fair_queue.dequeue fq);
  Alcotest.(check int) "after service" 200 (Fair_queue.backlog fq ~flow:0);
  Alcotest.(check bool) "not yet empty" false (Fair_queue.is_empty fq)

let test_validation () =
  Alcotest.check_raises "no flows" (Invalid_argument "Fair_queue.create: no flows")
    (fun () -> ignore (Fair_queue.create ~quanta:[||] ()));
  let fq = Fair_queue.create ~quanta:[| 100 |] () in
  Alcotest.check_raises "bad flow" (Invalid_argument "Fair_queue.enqueue: bad flow")
    (fun () -> Fair_queue.enqueue fq ~flow:3 (pkt 0 10));
  Alcotest.check_raises "marker" (Invalid_argument "Fair_queue.enqueue: marker packet")
    (fun () ->
      Fair_queue.enqueue fq ~flow:0
        (Packet.marker ~channel:0 ~round:0 ~dc:1 ~born:0.0 ()))

let prop_work_conserving =
  QCheck.Test.make ~name:"fair_queue: dequeues everything enqueued" ~count:100
    QCheck.(pair (int_range 1 4) (list_of_size (Gen.int_range 0 200) (int_range 1 1500)))
    (fun (n, sizes) ->
      let fq = Fair_queue.create ~quanta:(Array.make n 1500) () in
      List.iteri
        (fun i size -> Fair_queue.enqueue fq ~flow:(i mod n) (pkt i size))
        sizes;
      let out = drain fq in
      List.length out = List.length sizes && Fair_queue.is_empty fq)

let prop_per_flow_fifo =
  QCheck.Test.make ~name:"fair_queue: per-flow order preserved" ~count:100
    QCheck.(list_of_size (Gen.int_range 0 200) (pair (int_range 0 2) (int_range 1 1500)))
    (fun jobs ->
      let fq = Fair_queue.create ~quanta:[| 1000; 1000; 1000 |] () in
      List.iteri
        (fun i (flow, size) -> Fair_queue.enqueue fq ~flow (pkt i size))
        jobs;
      let out = drain fq in
      List.for_all
        (fun flow ->
          let seqs = List.filter_map (fun (f, s) -> if f = flow then Some s else None) out in
          List.sort compare seqs = seqs)
        [ 0; 1; 2 ])

let suites =
  [
    ( "fair_queue",
      [
        Alcotest.test_case "paper example" `Quick test_paper_example;
        Alcotest.test_case "matches cfq backlogged" `Quick
          test_matches_cfq_when_backlogged;
        Alcotest.test_case "skips empty queues" `Quick test_skips_empty_queues;
        Alcotest.test_case "idle forfeits credit" `Quick test_idle_flow_forfeits_credit;
        Alcotest.test_case "fairness on backlog" `Quick test_fairness_on_backlog;
        Alcotest.test_case "weighted service" `Quick test_weighted_service;
        Alcotest.test_case "backlog accounting" `Quick test_backlog_accounting;
        Alcotest.test_case "validation" `Quick test_validation;
        QCheck_alcotest.to_alcotest prop_work_conserving;
        QCheck_alcotest.to_alcotest prop_per_flow_fifo;
      ] );
  ]
