(* Full-stack integration: TCP over the strIPe virtual interface over
   two dissimilar links, with the interrupt-driven receive path of the
   host model in between - every substrate in one scenario, asserting
   end-to-end properties rather than per-module behavior. *)

open Stripe_netsim
open Stripe_packet
open Stripe_ipstack

type world = {
  sim : Sim.t;
  goodput_bytes : int ref;
  tx : Stripe_transport.Tcp_lite.Sender.t;
  rx : Stripe_transport.Tcp_lite.Receiver.t;
  tx_layer : Stripe_layer.t;
  rx_layer : Stripe_layer.t;
  rx_cpu : Stripe_host.Cpu.t;
}

(* Sender host -> [eth wire, atm wire] -> receiver NICs -> CPU -> strIPe
   layer -> IP -> TCP, acks on a clean reverse wire. *)
let build ?(resequence = true) () =
  let sim = Sim.create () in
  let sender = Node.create ~name:"S" () in
  let receiver = Node.create ~name:"R" () in
  let rx_cpu = Stripe_host.Cpu.create sim () in
  let arp = Arp.create sim ~lookup:(fun _ -> Some 0x1) () in
  let mk_wire ~rate ~delay ~src ~dst ~nic_name =
    let rx_iface = ref None in
    let nic =
      Stripe_host.Nic.create sim ~cpu:rx_cpu ~name:nic_name ~intr_cost:40e-6
        ~per_packet_cost:40e-6
        ~deliver:(fun frame ->
          match !rx_iface with Some i -> Iface.rx i frame | None -> ())
        ()
    in
    let link =
      Link.create sim ~rate_bps:rate ~prop_delay:delay
        ~deliver:(fun frame -> Stripe_host.Nic.rx nic frame)
        ()
    in
    let tx_if =
      Iface.create sim ~name:(nic_name ^ "-tx") ~addr:(Ip.addr src) ~prefix:24
        ~mtu:1500 ~arp ~link ()
    in
    let rx_if =
      Iface.create sim ~name:(nic_name ^ "-rx") ~addr:(Ip.addr dst) ~prefix:24
        ~mtu:1500 ~arp ~link ()
    in
    rx_iface := Some rx_if;
    (tx_if, rx_if)
  in
  let eth_tx, eth_rx =
    mk_wire ~rate:10e6 ~delay:0.001 ~src:"10.1.0.1" ~dst:"10.1.0.9" ~nic_name:"eth"
  in
  let atm_tx, atm_rx =
    mk_wire ~rate:16e6 ~delay:0.006 ~src:"10.2.0.1" ~dst:"10.2.0.9" ~nic_name:"atm"
  in
  let rates = [| 10e6; 16e6 |] in
  let engine = Stripe_core.Srr.for_rates ~rates_bps:rates ~quantum_unit:1500 () in
  let tx_layer =
    Stripe_layer.create ~name:"stripe0" ~members:[| eth_tx; atm_tx |]
      ~scheduler:(Stripe_core.Scheduler.of_deficit ~name:"SRR" engine)
      ~marker:(Stripe_core.Marker.make ~every_rounds:8 ())
      ~now:(fun () -> Sim.now sim)
      ~deliver_up:(fun _ -> ())
      ()
  in
  let rx_layer =
    Stripe_layer.create ~name:"stripe0" ~members:[| eth_rx; atm_rx |]
      ~scheduler:
        (Stripe_core.Scheduler.of_deficit ~name:"SRR"
           (Stripe_core.Deficit.clone_initial engine))
      ~resequence
      ~deliver_up:(fun ip -> Node.ip_input receiver ip)
      ()
  in
  Node.add_stripe sender tx_layer;
  Node.add_stripe receiver rx_layer;
  Routing.add_host (Node.routing sender) (Ip.addr "10.1.0.9") "stripe0";
  Routing.add_host (Node.routing sender) (Ip.addr "10.2.0.9") "stripe0";
  (* TCP endpoints; acks ride a dedicated clean wire. *)
  let tcp_tx = ref None in
  let ack_wire =
    Link.create sim ~rate_bps:1e8 ~prop_delay:0.002
      ~deliver:(fun ack ->
        match !tcp_tx with
        | Some s -> Stripe_transport.Tcp_lite.Sender.on_ack s ack
        | None -> ())
      ()
  in
  let goodput_bytes = ref 0 in
  let rx =
    Stripe_transport.Tcp_lite.Receiver.create
      ~send_ack:(fun a -> ignore (Link.send ack_wire ~size:40 a))
      ~deliver:(fun ~bytes -> goodput_bytes := !goodput_bytes + bytes)
      ()
  in
  Node.set_protocol_handler receiver ~proto:6 (fun ip ->
      ignore
        (Stripe_transport.Tcp_lite.Receiver.rx rx ~off:ip.Ip.body.Packet.off
           ~len:(ip.Ip.body.Packet.size - 40)));
  let rng = Rng.create 77 in
  let seq = ref 0 in
  let tx =
    Stripe_transport.Tcp_lite.Sender.create sim ~window:65536 ~rto:0.25
      ~next_segment_size:(fun () -> if Rng.bool rng then 200 else 1000)
      ~transmit:(fun ~off ~size ->
        let body = Packet.data ~seq:!seq ~off ~size:(size + 40) () in
        incr seq;
        Node.send sender
          (Ip.make ~src:(Ip.addr "10.1.0.1") ~dst:(Ip.addr "10.1.0.9") ~proto:6
             body))
      ()
  in
  tcp_tx := Some tx;
  { sim; goodput_bytes; tx; rx; tx_layer; rx_layer; rx_cpu }

let run_world w ~duration =
  Stripe_transport.Tcp_lite.Sender.start w.tx;
  Sim.run_until w.sim duration;
  Stripe_transport.Tcp_lite.Sender.shutdown w.tx;
  Sim.run w.sim;
  float_of_int (!(w.goodput_bytes) * 8) /. duration /. 1e6

let test_full_stack_throughput_and_order () =
  let w = build () in
  let mbps = run_world w ~duration:2.0 in
  (* Aggregate raw capacity 26 Mbps minus framing/header overheads and
     ramp-up: expect well above either link alone and below raw. *)
  Alcotest.(check bool)
    (Printf.sprintf "aggregate goodput %.1f Mbps above any single link" mbps)
    true
    (mbps > 12.0 && mbps < 26.0);
  Alcotest.(check int) "strIPe delivered IP datagrams in order" 0
    (Stripe_core.Reorder.out_of_order (Stripe_layer.reorder w.rx_layer));
  Alcotest.(check int) "TCP saw a gapless stream"
    (Stripe_transport.Tcp_lite.Sender.bytes_acked w.tx)
    (Stripe_transport.Tcp_lite.Receiver.bytes_delivered w.rx);
  Alcotest.(check bool) "both links carried substantial traffic" true
    (let s = Stripe_layer.striper w.tx_layer in
     let b0 = Stripe_core.Striper.channel_bytes s 0
     and b1 = Stripe_core.Striper.channel_bytes s 1 in
     b0 > 100_000 && b1 > 100_000);
  Alcotest.(check bool) "receive CPU did real work" true
    (Stripe_host.Cpu.busy_seconds w.rx_cpu > 0.1)

let test_full_stack_reordering_without_lr () =
  let w = build ~resequence:false () in
  let mbps = run_world w ~duration:1.0 in
  Alcotest.(check bool) "still delivers" true (mbps > 5.0);
  Alcotest.(check bool) "skewed links reorder the IP stream without LR" true
    (Stripe_core.Reorder.out_of_order (Stripe_layer.reorder w.rx_layer) > 0);
  (* TCP reassembly still yields a gapless byte stream. *)
  Alcotest.(check int) "TCP stream intact despite reordering"
    (Stripe_transport.Tcp_lite.Sender.bytes_acked w.tx)
    (Stripe_transport.Tcp_lite.Receiver.bytes_delivered w.rx)

let suites =
  [
    ( "integration",
      [
        Alcotest.test_case "full stack, logical reception" `Quick
          test_full_stack_throughput_and_order;
        Alcotest.test_case "full stack, no resequencing" `Quick
          test_full_stack_reordering_without_lr;
      ] );
  ]
