(* Tests for the fragmenting (minipacket) striping mode: exact splits,
   parallel reassembly, in-order release, and loss amplification. *)

open Stripe_core
open Stripe_packet

let collect_fragments shares pkts =
  let out = ref [] in
  let sender =
    Fragmenter.Sender.create ~shares
      ~emit:(fun ~channel f -> out := (channel, f) :: !out)
      ()
  in
  List.iter (Fragmenter.Sender.push sender) pkts;
  (sender, List.rev !out)

let test_split_conserves_bytes () =
  let _, frags =
    collect_fragments [| 1.0; 2.0; 3.0 |] [ Packet.data ~seq:0 ~size:1000 () ]
  in
  Alcotest.(check int) "one fragment per channel" 3 (List.length frags);
  let payloads = List.map (fun (_, f) -> f.Fragmenter.fg_payload) frags in
  Alcotest.(check int) "payloads sum to the datagram" 1000
    (List.fold_left ( + ) 0 payloads);
  (* 1:2:3 split of 1000 ~ 167/333/500. *)
  Alcotest.(check (list int)) "proportional split" [ 167; 333; 500 ] payloads

let test_tiny_packet_still_covers_channels () =
  let _, frags =
    collect_fragments [| 1.0; 1.0; 1.0; 1.0 |] [ Packet.data ~seq:0 ~size:2 () ]
  in
  Alcotest.(check int) "four fragments for a 2-byte packet" 4 (List.length frags);
  let payloads = List.map (fun (_, f) -> f.Fragmenter.fg_payload) frags in
  Alcotest.(check int) "bytes conserved" 2 (List.fold_left ( + ) 0 payloads);
  Alcotest.(check bool) "some fragments are header-only" true
    (List.mem 0 payloads)

let test_sender_accounting () =
  let sender, _ =
    collect_fragments [| 1.0; 1.0 |]
      [ Packet.data ~seq:0 ~size:500 (); Packet.data ~seq:1 ~size:300 () ]
  in
  Alcotest.(check int) "pushed" 2 (Fragmenter.Sender.pushed sender);
  Alcotest.(check int) "byte split"
    (Fragmenter.Sender.channel_payload_bytes sender 0)
    (Fragmenter.Sender.channel_payload_bytes sender 1);
  Alcotest.(check int) "total accounted" 800
    (Fragmenter.Sender.channel_payload_bytes sender 0
    + Fragmenter.Sender.channel_payload_bytes sender 1)

let test_wire_size () =
  let f =
    {
      Fragmenter.fg_id = 0; fg_channel = 0; fg_n = 2; fg_payload = 100;
      fg_total = 200; fg_seq = 0; fg_frame = -1; fg_born = 0.0;
    }
  in
  Alcotest.(check int) "payload + header" (100 + Fragmenter.header_size)
    (Fragmenter.wire_size f)

(* End-to-end: fragment, interleave arrivals arbitrarily per channel
   FIFO, reassemble. *)
let roundtrip ~seed ~shares ~loss_p ~sizes =
  let rng = Stripe_netsim.Rng.create seed in
  let n = Array.length shares in
  let wires = Array.init n (fun _ -> Queue.create ()) in
  let sender =
    Fragmenter.Sender.create ~shares
      ~emit:(fun ~channel f -> Queue.add f wires.(channel))
      ()
  in
  List.iteri
    (fun seq size -> Fragmenter.Sender.push sender (Packet.data ~seq ~size ()))
    sizes;
  let delivered = ref [] in
  let reasm =
    Fragmenter.Reassembler.create ~n_channels:n
      ~deliver:(fun pkt -> delivered := pkt :: !delivered)
      ()
  in
  let nonempty () =
    Array.to_list wires
    |> List.mapi (fun i q -> (i, q))
    |> List.filter (fun (_, q) -> not (Queue.is_empty q))
  in
  let rec shuttle () =
    match nonempty () with
    | [] -> ()
    | live ->
      let c, q = List.nth live (Stripe_netsim.Rng.int rng (List.length live)) in
      let f = Queue.pop q in
      if not (Stripe_netsim.Rng.bernoulli rng ~p:loss_p) then
        Fragmenter.Reassembler.receive reasm ~channel:c f;
      shuttle ()
  in
  shuttle ();
  (List.rev !delivered, reasm)

let test_lossless_roundtrip () =
  let rng = Stripe_netsim.Rng.create 3 in
  let sizes = List.init 300 (fun _ -> 10 + Stripe_netsim.Rng.int rng 8000) in
  let out, reasm = roundtrip ~seed:4 ~shares:[| 2.0; 1.0; 1.0 |] ~loss_p:0.0 ~sizes in
  Alcotest.(check int) "all delivered" 300 (List.length out);
  Alcotest.(check (list int)) "in order"
    (List.init 300 Fun.id)
    (List.map (fun p -> p.Packet.seq) out);
  Alcotest.(check (list int)) "sizes reconstructed" sizes
    (List.map (fun p -> p.Packet.size) out);
  Alcotest.(check int) "no drops" 0 (Fragmenter.Reassembler.dropped_incomplete reasm)

let test_loss_drops_whole_datagram () =
  let sizes = List.init 400 (fun _ -> 1000) in
  let out, reasm = roundtrip ~seed:5 ~shares:[| 1.0; 1.0 |] ~loss_p:0.05 ~sizes in
  let seqs = List.map (fun p -> p.Packet.seq) out in
  Alcotest.(check bool) "delivery stays in order" true
    (List.sort compare seqs = seqs);
  Alcotest.(check bool) "incomplete datagrams dropped" true
    (Fragmenter.Reassembler.dropped_incomplete reasm > 0);
  (* Loss amplification: with 2 fragments at 5% each, ~9.75% of datagrams
     die - more than the per-fragment rate. *)
  let drop_rate =
    float_of_int (Fragmenter.Reassembler.dropped_incomplete reasm) /. 400.0
  in
  Alcotest.(check bool)
    (Printf.sprintf "drop rate %.3f amplified above 0.05" drop_rate)
    true (drop_rate > 0.06)

let test_bundle_mtu_exceeds_members () =
  (* An 8 KB datagram fits nowhere individually but fragments fit
     everywhere: the bundle MTU grows with the member count. *)
  let _, frags =
    collect_fragments [| 1.0; 1.0; 1.0; 1.0; 1.0; 1.0 |]
      [ Packet.data ~seq:0 ~size:8192 () ]
  in
  List.iter
    (fun (_, f) ->
      Alcotest.(check bool) "each fragment within a 1500 MTU" true
        (Fragmenter.wire_size f <= 1500))
    frags

let test_validation () =
  Alcotest.check_raises "no channels"
    (Invalid_argument "Fragmenter.Sender.create: no channels") (fun () ->
      ignore (Fragmenter.Sender.create ~shares:[||] ~emit:(fun ~channel:_ _ -> ()) ()));
  Alcotest.check_raises "bad share"
    (Invalid_argument "Fragmenter.Sender.create: shares must be positive")
    (fun () ->
      ignore
        (Fragmenter.Sender.create ~shares:[| 1.0; 0.0 |]
           ~emit:(fun ~channel:_ _ -> ())
           ()))

let prop_roundtrip_fifo =
  QCheck.Test.make
    ~name:"fragmenter: reassembly is ordered and complete-or-dropped under loss"
    ~count:80
    QCheck.(triple (int_range 0 1000) (float_range 0.0 0.3) (int_range 1 4))
    (fun (seed, loss_p, n) ->
      let rng = Stripe_netsim.Rng.create (seed + 1) in
      let sizes = List.init 150 (fun _ -> 1 + Stripe_netsim.Rng.int rng 9000) in
      let shares = Array.init n (fun i -> 1.0 +. float_of_int i) in
      let out, _reasm = roundtrip ~seed ~shares ~loss_p ~sizes in
      let seqs = List.map (fun p -> p.Packet.seq) out in
      List.sort compare seqs = seqs
      && (loss_p > 0.0 || List.length out = 150)
      && List.for_all2
           (fun p expected -> p.Packet.size = expected)
           out
           (List.filteri (fun i _ -> List.mem i seqs) sizes))

let suites =
  [
    ( "fragmenter",
      [
        Alcotest.test_case "split conserves bytes" `Quick test_split_conserves_bytes;
        Alcotest.test_case "tiny packets" `Quick test_tiny_packet_still_covers_channels;
        Alcotest.test_case "sender accounting" `Quick test_sender_accounting;
        Alcotest.test_case "wire size" `Quick test_wire_size;
        Alcotest.test_case "lossless roundtrip" `Quick test_lossless_roundtrip;
        Alcotest.test_case "loss amplification" `Quick test_loss_drops_whole_datagram;
        Alcotest.test_case "bundle mtu" `Quick test_bundle_mtu_exceeds_members;
        Alcotest.test_case "validation" `Quick test_validation;
        QCheck_alcotest.to_alcotest prop_roundtrip_fifo;
      ] );
  ]
