(* Second coverage batch: edge cases across netsim, workload, marker
   construction, and the scheduler/deficit surfaces not hit elsewhere. *)

open Stripe_netsim
open Stripe_packet
open Stripe_core

let test_select_for_in_overdraw_mode () =
  (* On an overdraw engine select_for ignores the size and equals
     select. *)
  let d = Srr.create ~quanta:[| 100; 100 |] () in
  Alcotest.(check int) "same selection" (Deficit.select_for d ~size:99_999) 0;
  Deficit.consume d ~size:50;
  Alcotest.(check int) "still current" 0 (Deficit.select_for d ~size:1)

let test_marker_packet_for () =
  let d = Srr.create ~quanta:[| 500; 300 |] () in
  let policy = Marker.make ~credit_of:(fun c -> 100 + c) ~every_rounds:2 () in
  let pkt = Marker.packet_for policy ~deficit:d ~channel:1 ~now:3.5 in
  let m = Packet.get_marker pkt in
  Alcotest.(check int) "channel" 1 m.Packet.m_channel;
  Alcotest.(check int) "round from next_stamp" 0 m.Packet.m_round;
  Alcotest.(check int) "dc from next_stamp" 300 m.Packet.m_dc;
  Alcotest.(check (option int)) "credit from policy" (Some 101) m.Packet.m_credit;
  Alcotest.(check (float 0.0)) "timestamp" 3.5 pkt.Packet.born

let test_marker_policy_validation () =
  Alcotest.check_raises "every_rounds 0"
    (Invalid_argument "Marker.make: every_rounds must be >= 1") (fun () ->
      ignore (Marker.make ~every_rounds:0 ()))

let test_default_marker_policy () =
  Alcotest.(check int) "default interval" 4 Marker.default.Marker.every_rounds;
  Alcotest.(check bool) "default position is round end" true
    (Marker.default.Marker.position = Marker.Round_end)

let test_throughput_empty () =
  let t = Stripe_metrics.Throughput.create () in
  Alcotest.(check (float 0.0)) "no samples, no rate" 0.0
    (Stripe_metrics.Throughput.bps t);
  Alcotest.(check (float 0.0)) "no duration" 0.0
    (Stripe_metrics.Throughput.duration t)

let test_genpkt_validation () =
  Alcotest.check_raises "fixed 0"
    (Invalid_argument "Genpkt.fixed: size must be positive") (fun () ->
      let (_ : Stripe_workload.Genpkt.t) = Stripe_workload.Genpkt.fixed 0 in
      ());
  let rng = Rng.create 1 in
  Alcotest.check_raises "uniform inverted"
    (Invalid_argument "Genpkt.uniform: bad bounds") (fun () ->
      let (_ : Stripe_workload.Genpkt.t) =
        Stripe_workload.Genpkt.uniform ~rng ~lo:100 ~hi:50
      in
      ())

let test_video_validation () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "zero frames"
    (Invalid_argument "Video.generate: n_frames must be positive") (fun () ->
      ignore (Stripe_workload.Video.generate ~rng ~n_frames:0 ()))

let test_video_no_refresh () =
  let rng = Rng.create 2 in
  let t = Stripe_workload.Video.generate ~rng ~refresh_every:0 ~n_frames:5 () in
  Alcotest.(check int) "uniform frames without refresh" 6
    (Stripe_workload.Video.frame_packet_count t 0)

let test_ip_pp () =
  let ip =
    Stripe_ipstack.Ip.make
      ~src:(Stripe_ipstack.Ip.addr "10.0.0.1")
      ~dst:(Stripe_ipstack.Ip.addr "10.0.0.2")
      ~proto:6
      (Packet.data ~seq:1 ~size:100 ())
  in
  let rendered = Format.asprintf "%a" Stripe_ipstack.Ip.pp ip in
  Alcotest.(check bool) "mentions endpoints" true
    (String.length rendered > 0)

let test_cell_pp () =
  let data_cell = List.hd (Stripe_atm.Aal5.segment ~vci:3 (Packet.data ~seq:0 ~size:40 ())) in
  let rendered = Format.asprintf "%a" Stripe_atm.Cell.pp data_cell in
  Alcotest.(check string) "single-cell frame pp" "cell(vci=3,dg=0,1/1,eof)" rendered

let test_rng_pick_validation () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "empty pick" (Invalid_argument "Rng.pick: empty array")
    (fun () -> ignore (Rng.pick rng [||]))

let test_skew_comp_held_counter () =
  let sim = Sim.create () in
  let comp =
    Skew_comp.create sim ~skews:[| 0.0; 0.010 |] ~deliver:(fun _ -> ()) ()
  in
  Skew_comp.receive comp ~channel:0 (Packet.data ~seq:0 ~size:10 ());
  Alcotest.(check int) "held while equalizing" 1 (Skew_comp.held comp);
  Sim.run sim;
  Alcotest.(check int) "released" 0 (Skew_comp.held comp);
  Alcotest.(check int) "delivered" 1 (Skew_comp.delivered comp)

let test_striper_channel_stats_for_marker_exclusion () =
  (* Markers never count in the per-channel data statistics. *)
  let sched = Scheduler.srr ~quanta:[| 100 |] () in
  let striper =
    Striper.create ~scheduler:sched
      ~marker:(Marker.make ~every_rounds:1 ())
      ~emit:(fun ~channel:_ _ -> ())
      ()
  in
  for seq = 0 to 9 do
    Striper.push striper (Packet.data ~seq ~size:100 ())
  done;
  Alcotest.(check int) "data packets only" 10 (Striper.channel_packets striper 0);
  Alcotest.(check int) "data bytes only" 1000 (Striper.channel_bytes striper 0);
  Alcotest.(check bool) "markers flowed separately" true
    (Striper.markers_sent striper > 0)

let test_seq_resequencer_duplicate_tolerance () =
  (* Retransmission-style duplicates must not confuse the guaranteed-FIFO
     mode. *)
  let delivered = ref [] in
  let r =
    Seq_resequencer.create ~n_channels:1
      ~deliver:(fun p -> delivered := p.Packet.seq :: !delivered)
      ()
  in
  let p seq = Packet.data ~seq ~size:10 () in
  Seq_resequencer.receive r ~channel:0 (p 0);
  Seq_resequencer.receive r ~channel:0 (p 0);
  Seq_resequencer.receive r ~channel:0 (p 1);
  Alcotest.(check (list int)) "duplicate ignored" [ 0; 1 ] (List.rev !delivered)

let test_mppp_empty_links_wait () =
  let rx = Mppp.Receiver.create ~n_links:3 ~deliver:(fun _ -> ()) () in
  Alcotest.(check int) "nothing delivered from nothing" 0 (Mppp.Receiver.delivered rx);
  Alcotest.(check int) "no pending" 0 (Mppp.Receiver.pending rx)

let test_stripe_layer_reset () =
  (* A layer-level reset crosses the wire and reinitializes the peer. *)
  let sim = Sim.create () in
  let arp = Stripe_ipstack.Arp.create sim ~lookup:(fun _ -> Some 1) () in
  let rx_ref = ref None in
  let link =
    Link.create sim ~rate_bps:1e7 ~prop_delay:0.001
      ~deliver:(fun f ->
        match !rx_ref with
        | Some i -> Stripe_ipstack.Iface.rx i f
        | None -> ())
      ()
  in
  let mk name addr =
    Stripe_ipstack.Iface.create sim ~name ~addr:(Stripe_ipstack.Ip.addr addr)
      ~prefix:24 ~mtu:1500 ~arp ~link ()
  in
  let tx_if = mk "tx" "10.1.0.1" and rx_if = mk "rx" "10.1.0.9" in
  rx_ref := Some rx_if;
  let mk_layer members deliver_up =
    Stripe_ipstack.Stripe_layer.create ~name:"s0" ~members
      ~scheduler:(Scheduler.srr ~quanta:[| 1500 |] ())
      ~deliver_up ()
  in
  let seqs = ref [] in
  let tx_layer = mk_layer [| tx_if |] (fun _ -> ()) in
  let rx_layer =
    mk_layer [| rx_if |] (fun ip ->
        seqs := ip.Stripe_ipstack.Ip.body.Packet.seq :: !seqs)
  in
  let send seq =
    Stripe_ipstack.Stripe_layer.send tx_layer
      (Stripe_ipstack.Ip.make
         ~src:(Stripe_ipstack.Ip.addr "10.1.0.1")
         ~dst:(Stripe_ipstack.Ip.addr "10.1.0.9")
         (Packet.data ~seq ~size:500 ()))
  in
  send 0;
  Stripe_ipstack.Stripe_layer.send_reset tx_layer;
  send 1;
  Sim.run sim;
  Alcotest.(check (list int)) "stream crosses the barrier" [ 0; 1 ]
    (List.rev !seqs);
  Alcotest.(check int) "peer resequencer reinitialized" 1
    (Resequencer.resets
       (Option.get (Stripe_ipstack.Stripe_layer.resequencer rx_layer)))

let test_duplex_stats_shape () =
  let sim = Sim.create () in
  let d =
    Stripe_transport.Duplex.create sim
      ~channels:[| Stripe_transport.Socket_stripe.spec ~rate_bps:1e6 () |]
      ~quanta:[| 1000 |] ~buffer:4 ~deliver_to_a:ignore ~deliver_to_b:ignore ()
  in
  Stripe_transport.Duplex.send_from_a d (Packet.data ~seq:0 ~size:500 ());
  Sim.run sim;
  let sa = Stripe_transport.Duplex.stats_a d in
  let sb = Stripe_transport.Duplex.stats_b d in
  Alcotest.(check int) "a sent one" 1 sa.Stripe_transport.Duplex.sent;
  Alcotest.(check int) "b received one" 1 sb.Stripe_transport.Duplex.delivered;
  Alcotest.(check int) "a queue drained" 0 sa.Stripe_transport.Duplex.app_queue

let suites =
  [
    ( "misc2",
      [
        Alcotest.test_case "select_for overdraw" `Quick test_select_for_in_overdraw_mode;
        Alcotest.test_case "marker packet_for" `Quick test_marker_packet_for;
        Alcotest.test_case "marker validation" `Quick test_marker_policy_validation;
        Alcotest.test_case "default policy" `Quick test_default_marker_policy;
        Alcotest.test_case "throughput empty" `Quick test_throughput_empty;
        Alcotest.test_case "genpkt validation" `Quick test_genpkt_validation;
        Alcotest.test_case "video validation" `Quick test_video_validation;
        Alcotest.test_case "video no refresh" `Quick test_video_no_refresh;
        Alcotest.test_case "ip pp" `Quick test_ip_pp;
        Alcotest.test_case "cell pp" `Quick test_cell_pp;
        Alcotest.test_case "rng pick" `Quick test_rng_pick_validation;
        Alcotest.test_case "skew held counter" `Quick test_skew_comp_held_counter;
        Alcotest.test_case "striper marker exclusion" `Quick
          test_striper_channel_stats_for_marker_exclusion;
        Alcotest.test_case "seq duplicate tolerance" `Quick
          test_seq_resequencer_duplicate_tolerance;
        Alcotest.test_case "stripe layer reset" `Quick test_stripe_layer_reset;
        Alcotest.test_case "mppp empty" `Quick test_mppp_empty_links_wait;
        Alcotest.test_case "duplex stats" `Quick test_duplex_stats_shape;
      ] );
  ]
