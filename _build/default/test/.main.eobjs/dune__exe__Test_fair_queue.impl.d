test/test_fair_queue.ml: Alcotest Array Deficit Fair_queue Gen List Option Packet Printf QCheck QCheck_alcotest Srr Stripe_core Stripe_netsim Stripe_packet
