test/test_fairness.ml: Alcotest Array Deficit Fairness Gen List QCheck QCheck_alcotest Reorder Srr Stripe_core
