test/test_seq_resequencer.ml: Alcotest Array Deficit Fun List Packet QCheck QCheck_alcotest Queue Scheduler Seq_resequencer Srr Stripe_core Stripe_netsim Stripe_packet Striper
