test/test_atm.ml: Aal5 Alcotest Array Cell Epd_switch Fun Link List Packet Printf Rng Sim Stripe_atm Stripe_core Stripe_netsim Stripe_packet Stripe_vc
