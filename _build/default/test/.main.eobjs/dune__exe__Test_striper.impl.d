test/test_striper.ml: Alcotest Array Deficit Fairness Gen Hashtbl List Marker Option Packet Printf QCheck QCheck_alcotest Scheduler Srr Stripe_core Stripe_netsim Stripe_packet Striper
