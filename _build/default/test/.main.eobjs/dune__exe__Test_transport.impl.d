test/test_transport.ml: Alcotest Credit Link List Loss Packet Printf Rng Sim Socket_stripe Stripe_core Stripe_netsim Stripe_packet Stripe_transport Tcp_lite
