test/test_metrics.ml: Alcotest List Recovery String Stripe_metrics Summary Table Throughput
