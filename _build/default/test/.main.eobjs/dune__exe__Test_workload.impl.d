test/test_workload.ml: Alcotest Array Fun Genpkt List Playback Printf Rng Stripe_netsim Stripe_packet Stripe_workload Video
