test/test_sim.ml: Alcotest List Sim Stripe_netsim
