test/test_mppp.ml: Alcotest Array List Mppp Packet QCheck QCheck_alcotest Queue Scheduler Stripe_core Stripe_netsim Stripe_packet
