test/test_host.ml: Alcotest Array Cpu List Nic Printf Sim Stripe_host Stripe_netsim
