test/test_fragmenter.ml: Alcotest Array Fragmenter Fun List Packet Printf QCheck QCheck_alcotest Queue Stripe_core Stripe_netsim Stripe_packet
