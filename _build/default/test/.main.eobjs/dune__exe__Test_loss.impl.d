test/test_loss.ml: Alcotest List Loss Printf Rng Stripe_netsim
