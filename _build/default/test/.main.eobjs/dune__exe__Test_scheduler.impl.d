test/test_scheduler.ml: Alcotest Array List Packet Scheduler Stripe_core Stripe_packet
