test/test_reset.ml: Alcotest Array Deficit Fun List Packet QCheck QCheck_alcotest Queue Resequencer Scheduler Srr Stripe_core Stripe_netsim Stripe_packet Striper
