test/test_rng.ml: Alcotest Array Fun List Printf Rng Stripe_netsim
