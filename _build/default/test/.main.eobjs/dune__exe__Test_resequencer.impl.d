test/test_resequencer.ml: Alcotest Array Deficit Fun Gen List Marker Packet QCheck QCheck_alcotest Queue Resequencer Scheduler Srr Stripe_core Stripe_netsim Stripe_packet Striper
