test/test_packet.ml: Alcotest Fifo_queue Format List Packet QCheck QCheck_alcotest Sizes Stripe_packet
