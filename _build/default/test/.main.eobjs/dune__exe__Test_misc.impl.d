test/test_misc.ml: Alcotest Arp Format Iface Ip Link List Node Packet Printf Sim String Stripe_core Stripe_host Stripe_ipstack Stripe_layer Stripe_metrics Stripe_netsim Stripe_packet Trace
