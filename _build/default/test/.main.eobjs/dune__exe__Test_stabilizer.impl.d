test/test_stabilizer.ml: Alcotest Array Deficit Fun List Marker Packet Queue Resequencer Scheduler Srr Stabilizer Stripe_core Stripe_packet Striper
