test/main.mli:
