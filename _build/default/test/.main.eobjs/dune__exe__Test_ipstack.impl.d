test/test_ipstack.ml: Alcotest Arp Array Fun Iface Ip Link List Node Packet Printf Rng Routing Sim Stripe_core Stripe_ipstack Stripe_layer Stripe_netsim Stripe_packet
