test/test_eventq.ml: Alcotest Eventq List QCheck QCheck_alcotest Stripe_netsim
