test/test_cfq.ml: Alcotest Array Cfq Gen List QCheck QCheck_alcotest Rr Srr Stripe_core
