test/test_link.ml: Alcotest Link List Loss Rng Sim Stripe_netsim
