test/test_deficit.ml: Alcotest Array Deficit Format Gen Grr List QCheck QCheck_alcotest Rr Srr Stripe_core Stripe_netsim
