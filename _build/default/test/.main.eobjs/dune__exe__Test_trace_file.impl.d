test/test_trace_file.ml: Alcotest Array Filename Fun List Packet Printf Stripe_core Stripe_netsim Stripe_packet Stripe_workload Sys Trace_file Video
