test/test_integration.ml: Alcotest Arp Iface Ip Link Node Packet Printf Rng Routing Sim Stripe_core Stripe_host Stripe_ipstack Stripe_layer Stripe_netsim Stripe_packet Stripe_transport
