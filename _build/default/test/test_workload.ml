(* Tests for workload generators and the video playback model. *)

open Stripe_netsim
open Stripe_workload

let test_fixed () =
  let g = Genpkt.fixed 700 in
  Alcotest.(check (list int)) "constant" [ 700; 700; 700 ] (Genpkt.take g 3)

let test_alternating () =
  let g = Genpkt.alternating ~small:200 ~large:1000 in
  Alcotest.(check (list int)) "paper's worst case starts large"
    [ 1000; 200; 1000; 200 ] (Genpkt.take g 4)

let test_bimodal_rate () =
  let rng = Rng.create 1 in
  let g = Genpkt.bimodal ~rng ~p_small:0.25 ~small:200 ~large:1000 () in
  let sizes = Genpkt.take g 20_000 in
  let smalls = List.length (List.filter (fun s -> s = 200) sizes) in
  let rate = float_of_int smalls /. 20_000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "small rate %.3f near 0.25" rate)
    true
    (abs_float (rate -. 0.25) < 0.02);
  Alcotest.(check bool) "only the two modes" true
    (List.for_all (fun s -> s = 200 || s = 1000) sizes)

let test_uniform_bounds () =
  let rng = Rng.create 2 in
  let g = Genpkt.uniform ~rng ~lo:64 ~hi:1500 in
  Alcotest.(check bool) "bounds respected" true
    (List.for_all (fun s -> s >= 64 && s <= 1500) (Genpkt.take g 5000))

let test_imix_values () =
  let rng = Rng.create 3 in
  let g = Genpkt.imix ~rng in
  Alcotest.(check bool) "classic sizes only" true
    (List.for_all (fun s -> s = 40 || s = 576 || s = 1500) (Genpkt.take g 1000))

let test_pareto_bounds () =
  let rng = Rng.create 4 in
  let g = Genpkt.pareto ~rng ~min_size:64 ~cap:1500 in
  let sizes = Genpkt.take g 5000 in
  Alcotest.(check bool) "bounds respected" true
    (List.for_all (fun s -> s >= 64 && s <= 1500) sizes);
  (* Heavy tail: some packets should hit the cap. *)
  Alcotest.(check bool) "tail reaches the cap" true (List.mem 1500 sizes)

let test_counted () =
  let total, g = Genpkt.counted (Genpkt.fixed 100) in
  ignore (Genpkt.take g 5);
  Alcotest.(check int) "byte counter" 500 !total

let test_video_shape () =
  let rng = Rng.create 5 in
  let trace =
    Video.generate ~rng ~fps:10.0 ~packets_per_frame:6 ~refresh_every:30
      ~refresh_scale:3 ~n_frames:60 ()
  in
  Alcotest.(check int) "refresh frames are larger" 18 (Video.frame_packet_count trace 0);
  Alcotest.(check int) "normal frames" 6 (Video.frame_packet_count trace 1);
  Alcotest.(check (float 1e-9)) "frame cadence" 0.1
    trace.Video.frames.(1).Video.send_time;
  Alcotest.(check (float 1e-9)) "duration" 6.0 (Video.duration trace);
  let pkts = Video.packets trace in
  Alcotest.(check int) "packet count consistent" (Video.n_packets trace)
    (List.length pkts);
  (* seqs are consecutive and packets carry their frame ids. *)
  let seqs = List.map (fun (_, p) -> p.Stripe_packet.Packet.seq) pkts in
  Alcotest.(check (list int)) "consecutive seqs"
    (List.init (List.length pkts) Fun.id) seqs

let test_playback_all_on_time () =
  let rng = Rng.create 6 in
  let trace = Video.generate ~rng ~n_frames:20 () in
  let pb = Playback.create ~trace ~playout_delay:0.5 () in
  List.iter
    (fun (t, p) ->
      Playback.packet_arrived pb ~frame:p.Stripe_packet.Packet.frame ~now:(t +. 0.05))
    (Video.packets trace);
  let r = Playback.finalize pb in
  Alcotest.(check int) "no glitches" 0 r.Playback.glitched_frames;
  Alcotest.(check int) "nothing missing" 0 r.Playback.missing_packets

let test_playback_missing_packet_glitches () =
  let rng = Rng.create 7 in
  let trace = Video.generate ~rng ~refresh_every:0 ~n_frames:10 () in
  let pb = Playback.create ~trace () in
  (* Drop one packet of frame 3. *)
  let dropped = ref false in
  List.iter
    (fun (t, p) ->
      let frame = p.Stripe_packet.Packet.frame in
      if frame = 3 && not !dropped then dropped := true
      else Playback.packet_arrived pb ~frame ~now:(t +. 0.01))
    (Video.packets trace);
  let r = Playback.finalize pb in
  Alcotest.(check int) "exactly one glitched frame" 1 r.Playback.glitched_frames;
  Alcotest.(check int) "one missing packet" 1 r.Playback.missing_packets

let test_playback_late_packet_glitches () =
  let rng = Rng.create 8 in
  let trace = Video.generate ~rng ~refresh_every:0 ~n_frames:5 () in
  let pb = Playback.create ~trace ~playout_delay:0.2 () in
  List.iter
    (fun (t, p) ->
      let frame = p.Stripe_packet.Packet.frame in
      (* Frame 2's packets arrive half a second late. *)
      let delay = if frame = 2 then 0.5 else 0.01 in
      Playback.packet_arrived pb ~frame ~now:(t +. delay))
    (Video.packets trace);
  let r = Playback.finalize pb in
  Alcotest.(check int) "late frame glitches" 1 r.Playback.glitched_frames;
  Alcotest.(check bool) "late packets counted" true (r.Playback.late_packets > 0)

let test_playback_reordering_within_deadline_harmless () =
  (* The core of the paper's E5 finding: reordering that stays inside the
     playout buffer does not glitch. *)
  let rng = Rng.create 9 in
  let trace = Video.generate ~rng ~refresh_every:0 ~n_frames:10 () in
  let pb = Playback.create ~trace ~playout_delay:0.4 () in
  let pkts = Video.packets trace in
  (* Deliver each frame's packets in reverse order with small jitter. *)
  List.iter
    (fun (t, p) ->
      let frame = p.Stripe_packet.Packet.frame in
      Playback.packet_arrived pb ~frame
        ~now:(t +. 0.3 -. (0.001 *. float_of_int p.Stripe_packet.Packet.seq)))
    (List.rev pkts);
  let r = Playback.finalize pb in
  Alcotest.(check int) "reordering alone causes no glitches" 0
    r.Playback.glitched_frames

let suites =
  [
    ( "workload",
      [
        Alcotest.test_case "fixed" `Quick test_fixed;
        Alcotest.test_case "alternating" `Quick test_alternating;
        Alcotest.test_case "bimodal" `Quick test_bimodal_rate;
        Alcotest.test_case "uniform" `Quick test_uniform_bounds;
        Alcotest.test_case "imix" `Quick test_imix_values;
        Alcotest.test_case "pareto" `Quick test_pareto_bounds;
        Alcotest.test_case "counted" `Quick test_counted;
        Alcotest.test_case "video shape" `Quick test_video_shape;
        Alcotest.test_case "playback on time" `Quick test_playback_all_on_time;
        Alcotest.test_case "playback missing" `Quick
          test_playback_missing_packet_glitches;
        Alcotest.test_case "playback late" `Quick test_playback_late_packet_glitches;
        Alcotest.test_case "playback reordering harmless" `Quick
          test_playback_reordering_within_deadline_harmless;
      ] );
  ]
