(* Tests for the RFC 1717 Multilink PPP implementation: fragmentation
   format, min-sequence loss detection, reassembly, and the guaranteed
   FIFO property the header buys. *)

open Stripe_core
open Stripe_packet

let collect ~threshold pkts =
  let out = ref [] in
  let sender =
    Mppp.Sender.create
      ~scheduler:(Scheduler.rr ~n:2 ())
      ~fragment_threshold:threshold
      ~emit:(fun ~link f -> out := (link, f) :: !out)
      ()
  in
  List.iter (Mppp.Sender.push sender) pkts;
  (sender, List.rev !out)

let test_small_packet_single_fragment () =
  let _, frags = collect ~threshold:1500 [ Packet.data ~seq:0 ~size:500 () ] in
  match frags with
  | [ (_, f) ] ->
    Alcotest.(check bool) "begin set" true f.Mppp.mp_begin;
    Alcotest.(check bool) "end set" true f.Mppp.mp_end;
    Alcotest.(check int) "payload" 500 f.Mppp.mp_payload;
    Alcotest.(check int) "wire adds the multilink header" (500 + 4)
      (Mppp.wire_size f)
  | _ -> Alcotest.fail "expected one fragment"

let test_large_packet_fragments () =
  let _, frags = collect ~threshold:1000 [ Packet.data ~seq:0 ~size:2500 () ] in
  Alcotest.(check int) "three fragments" 3 (List.length frags);
  let fs = List.map snd frags in
  Alcotest.(check (list bool)) "begin flags" [ true; false; false ]
    (List.map (fun f -> f.Mppp.mp_begin) fs);
  Alcotest.(check (list bool)) "end flags" [ false; false; true ]
    (List.map (fun f -> f.Mppp.mp_end) fs);
  Alcotest.(check (list int)) "payload split" [ 1000; 1000; 500 ]
    (List.map (fun f -> f.Mppp.mp_payload) fs);
  Alcotest.(check (list int)) "consecutive sequence numbers" [ 0; 1; 2 ]
    (List.map (fun f -> f.Mppp.mp_seq) fs)

let test_sender_accounting () =
  let sender, frags =
    collect ~threshold:1000
      [ Packet.data ~seq:0 ~size:2500 (); Packet.data ~seq:1 ~size:300 () ]
  in
  Alcotest.(check int) "datagrams pushed" 2 (Mppp.Sender.pushed sender);
  Alcotest.(check int) "fragments" 4 (Mppp.Sender.fragments_sent sender);
  Alcotest.(check int) "header overhead" (4 * 4)
    (Mppp.Sender.header_bytes_sent sender);
  Alcotest.(check int) "emitted equals counted" 4 (List.length frags)

(* Round-trip with per-link FIFO interleaving and optional loss. *)
let roundtrip ~seed ~loss_p ~threshold ~sizes =
  let rng = Stripe_netsim.Rng.create seed in
  let wires = Array.init 2 (fun _ -> Queue.create ()) in
  let sender =
    Mppp.Sender.create
      ~scheduler:(Scheduler.srr ~quanta:[| 1500; 1500 |] ())
      ~fragment_threshold:threshold
      ~emit:(fun ~link f -> Queue.add f wires.(link))
      ()
  in
  List.iteri
    (fun seq size -> Mppp.Sender.push sender (Packet.data ~seq ~size ()))
    sizes;
  let delivered = ref [] in
  let receiver =
    Mppp.Receiver.create ~n_links:2
      ~deliver:(fun pkt -> delivered := pkt :: !delivered)
      ()
  in
  let rec shuttle () =
    let live =
      Array.to_list wires
      |> List.mapi (fun i q -> (i, q))
      |> List.filter (fun (_, q) -> not (Queue.is_empty q))
    in
    match live with
    | [] -> ()
    | live ->
      let l, q = List.nth live (Stripe_netsim.Rng.int rng (List.length live)) in
      let f = Queue.pop q in
      if not (Stripe_netsim.Rng.bernoulli rng ~p:loss_p) then
        Mppp.Receiver.receive receiver ~link:l f;
      shuttle ()
  in
  shuttle ();
  (List.rev !delivered, receiver)

let test_lossless_roundtrip () =
  let rng = Stripe_netsim.Rng.create 9 in
  let sizes = List.init 300 (fun _ -> 100 + Stripe_netsim.Rng.int rng 4000) in
  let out, rx = roundtrip ~seed:1 ~loss_p:0.0 ~threshold:1500 ~sizes in
  Alcotest.(check (list (pair int int))) "exact FIFO with sizes"
    (List.mapi (fun i s -> (i, s)) sizes)
    (List.map (fun p -> (p.Packet.seq, p.Packet.size)) out);
  Alcotest.(check int) "no losses detected" 0 (Mppp.Receiver.lost_fragments rx)

let test_loss_detected_and_fifo_kept () =
  let sizes = List.init 500 (fun _ -> 3000) in
  let out, rx = roundtrip ~seed:2 ~loss_p:0.03 ~threshold:1500 ~sizes in
  let seqs = List.map (fun p -> p.Packet.seq) out in
  Alcotest.(check bool) "delivery strictly increasing despite loss" true
    (let rec incr_ok = function
       | a :: (b :: _ as rest) -> a < b && incr_ok rest
       | _ -> true
     in
     incr_ok seqs);
  Alcotest.(check bool) "lost fragments detected via min-sequence rule" true
    (Mppp.Receiver.lost_fragments rx > 0);
  Alcotest.(check bool) "clipped datagrams discarded whole" true
    (Mppp.Receiver.discarded_datagrams rx > 0)

let test_min_sequence_waits_for_quiet_link () =
  (* Fragment 1 missing while link 1 has shown nothing beyond it: the
     receiver must wait, because it could still arrive there. *)
  let rx = Mppp.Receiver.create ~n_links:2 ~deliver:(fun _ -> ()) () in
  let frag seq = {
    Mppp.mp_seq = seq; mp_begin = true; mp_end = true; mp_payload = 100;
    mp_dg_seq = seq; mp_dg_size = 100;
  } in
  Mppp.Receiver.receive rx ~link:0 (frag 0);
  Mppp.Receiver.receive rx ~link:0 (frag 2);
  Alcotest.(check int) "only fragment 0 delivered" 1 (Mppp.Receiver.delivered rx);
  Alcotest.(check int) "fragment 2 parked" 1 (Mppp.Receiver.pending rx);
  (* The missing fragment arrives late on the other link. *)
  Mppp.Receiver.receive rx ~link:1 (frag 1);
  Alcotest.(check int) "all three out in order" 3 (Mppp.Receiver.delivered rx);
  Alcotest.(check int) "no false loss" 0 (Mppp.Receiver.lost_fragments rx)

let test_min_sequence_skips_proven_loss () =
  let rx = Mppp.Receiver.create ~n_links:2 ~deliver:(fun _ -> ()) () in
  let frag seq = {
    Mppp.mp_seq = seq; mp_begin = true; mp_end = true; mp_payload = 100;
    mp_dg_seq = seq; mp_dg_size = 100;
  } in
  Mppp.Receiver.receive rx ~link:0 (frag 0);
  Mppp.Receiver.receive rx ~link:0 (frag 2);
  (* Link 1 shows seq 3: both links are past 1, so it is lost. *)
  Mppp.Receiver.receive rx ~link:1 (frag 3);
  Alcotest.(check int) "gap skipped" 1 (Mppp.Receiver.lost_fragments rx);
  Alcotest.(check int) "2 and 3 released" 3 (Mppp.Receiver.delivered rx)

let prop_mppp_guaranteed_fifo =
  QCheck.Test.make ~name:"mppp: strictly increasing delivery under any loss"
    ~count:60
    QCheck.(pair (int_range 0 500) (float_range 0.0 0.3))
    (fun (seed, loss_p) ->
      let rng = Stripe_netsim.Rng.create (seed + 7) in
      let sizes = List.init 200 (fun _ -> 100 + Stripe_netsim.Rng.int rng 5000) in
      let out, _ = roundtrip ~seed ~loss_p ~threshold:1400 ~sizes in
      let seqs = List.map (fun p -> p.Packet.seq) out in
      List.sort_uniq compare seqs = seqs)

let suites =
  [
    ( "mppp",
      [
        Alcotest.test_case "single fragment" `Quick test_small_packet_single_fragment;
        Alcotest.test_case "fragmentation" `Quick test_large_packet_fragments;
        Alcotest.test_case "sender accounting" `Quick test_sender_accounting;
        Alcotest.test_case "lossless roundtrip" `Quick test_lossless_roundtrip;
        Alcotest.test_case "loss detection" `Quick test_loss_detected_and_fifo_kept;
        Alcotest.test_case "waits for quiet link" `Quick
          test_min_sequence_waits_for_quiet_link;
        Alcotest.test_case "skips proven loss" `Quick test_min_sequence_skips_proven_loss;
        QCheck_alcotest.to_alcotest prop_mppp_guaranteed_fifo;
      ] );
  ]
