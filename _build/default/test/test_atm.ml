(* Tests for the ATM substrate: AAL5 segmentation/reassembly, the EPD
   switch, and packet striping over VCs with OAM-cell markers. *)

open Stripe_netsim
open Stripe_packet
open Stripe_atm

let test_cells_for () =
  (* 40 B + 8 trailer = 48 -> 1 cell; 41 -> 2; 1000 -> 21. *)
  Alcotest.(check int) "one cell" 1 (Aal5.cells_for 40);
  Alcotest.(check int) "two cells" 2 (Aal5.cells_for 41);
  Alcotest.(check int) "1000B" 21 (Aal5.cells_for 1000);
  Alcotest.(check int) "wire bytes" (21 * 53) (Aal5.wire_bytes 1000)

let test_segment_shape () =
  let cells = Aal5.segment ~vci:7 (Packet.data ~seq:3 ~size:100 ()) in
  Alcotest.(check int) "cell count" 3 (List.length cells);
  List.iteri
    (fun i cell ->
      Alcotest.(check int) "vci" 7 cell.Cell.vci;
      Alcotest.(check bool) "eof only on last" (i = 2) (Cell.is_eof cell))
    cells

let test_segment_rejects_marker () =
  Alcotest.check_raises "marker rejected"
    (Invalid_argument "Aal5.segment: marker packet") (fun () ->
      ignore
        (Aal5.segment ~vci:0 (Packet.marker ~channel:0 ~round:0 ~dc:1 ~born:0.0 ())))

let test_reassembly_roundtrip () =
  let out = ref [] in
  let r = Aal5.Reassembler.create ~deliver:(fun p -> out := p :: !out) () in
  List.iter
    (fun pkt -> List.iter (Aal5.Reassembler.receive r) (Aal5.segment ~vci:0 pkt))
    [ Packet.data ~seq:0 ~size:100 (); Packet.data ~seq:1 ~size:2000 () ];
  let out = List.rev !out in
  Alcotest.(check (list (pair int int))) "sizes and seqs reconstructed"
    [ (0, 100); (1, 2000) ]
    (List.map (fun p -> (p.Packet.seq, p.Packet.size)) out);
  Alcotest.(check int) "no corruption" 0 (Aal5.Reassembler.corrupted_frames r)

let test_reassembly_detects_missing_cell () =
  let out = ref 0 in
  let r = Aal5.Reassembler.create ~deliver:(fun _ -> incr out) () in
  let cells = Aal5.segment ~vci:0 (Packet.data ~seq:0 ~size:1000 ()) in
  (* Drop the third cell. *)
  List.iteri (fun i c -> if i <> 2 then Aal5.Reassembler.receive r c) cells;
  Alcotest.(check int) "frame discarded" 0 !out;
  Alcotest.(check int) "corruption counted" 1 (Aal5.Reassembler.corrupted_frames r);
  (* The stream recovers for the next frame. *)
  List.iter (Aal5.Reassembler.receive r)
    (Aal5.segment ~vci:0 (Packet.data ~seq:1 ~size:500 ()));
  Alcotest.(check int) "next frame delivered" 1 !out

let test_reassembly_detects_interleaving () =
  (* Cell-striping artifact: two frames' cells interleaved on one VC. *)
  let out = ref 0 in
  let r = Aal5.Reassembler.create ~deliver:(fun _ -> incr out) () in
  let a = Aal5.segment ~vci:0 (Packet.data ~seq:0 ~size:100 ()) in
  let b = Aal5.segment ~vci:0 (Packet.data ~seq:1 ~size:100 ()) in
  (match (a, b) with
  | a0 :: a_rest, b0 :: _ ->
    Aal5.Reassembler.receive r a0;
    Aal5.Reassembler.receive r b0;
    List.iter (Aal5.Reassembler.receive r) a_rest
  | _ -> Alcotest.fail "expected multi-cell frames");
  Alcotest.(check int) "interleaved frames rejected" 0 !out;
  Alcotest.(check bool) "corruption counted" true
    (Aal5.Reassembler.corrupted_frames r >= 1)

let frame_cells ~vci ~seq ~size = Aal5.segment ~vci (Packet.data ~seq ~size ())

let test_epd_passes_when_uncongested () =
  let sim = Sim.create () in
  let got = ref 0 in
  let sw =
    Epd_switch.create sim
      ~policy:(Epd_switch.Early_packet_discard { threshold = 50 })
      ~buffer_cells:100 ~out_rate_bps:100e6
      ~deliver:(fun _ -> incr got)
      ()
  in
  List.iter (Epd_switch.input sw) (frame_cells ~vci:1 ~seq:0 ~size:1000);
  Sim.run sim;
  Alcotest.(check int) "all cells through" 21 !got;
  Alcotest.(check int) "nothing shed" 0 (Epd_switch.frames_shed_early sw)

let test_epd_sheds_whole_frames () =
  let sim = Sim.create () in
  let sw =
    Epd_switch.create sim
      ~policy:(Epd_switch.Early_packet_discard { threshold = 10 })
      ~buffer_cells:1000 ~out_rate_bps:1e6
      ~deliver:(fun _ -> ())
      ()
  in
  (* Burst enough frames at t=0 that occupancy passes the threshold. *)
  for seq = 0 to 9 do
    List.iter (Epd_switch.input sw) (frame_cells ~vci:1 ~seq ~size:1000)
  done;
  Alcotest.(check bool) "later frames shed at the boundary" true
    (Epd_switch.frames_shed_early sw > 0);
  (* Shedding is all-or-nothing per frame: drops are a multiple of 21. *)
  Alcotest.(check int) "whole frames only" 0 (Epd_switch.cells_dropped sw mod 21);
  Sim.run sim

let test_tail_drop_clips_frames () =
  let sim = Sim.create () in
  let sw =
    Epd_switch.create sim ~policy:Epd_switch.Tail_drop ~buffer_cells:30
      ~out_rate_bps:1e6
      ~deliver:(fun _ -> ())
      ()
  in
  for seq = 0 to 4 do
    List.iter (Epd_switch.input sw) (frame_cells ~vci:1 ~seq ~size:1000)
  done;
  Sim.run sim;
  Alcotest.(check bool) "cells dropped" true (Epd_switch.cells_dropped sw > 0);
  Alcotest.(check bool) "but frames were clipped, not shed" true
    (Epd_switch.cells_dropped sw mod 21 <> 0
    || Epd_switch.frames_shed_early sw = 0)

(* Striping over VCs with OAM markers, end to end over lossy cell links.
   Cell loss is applied manually so it can be stopped mid-run, letting
   the marker-recovery guarantee be checked on the tail. *)
let run_stripe_vc ~loss_p ~loss_stop ~n_packets =
  let sim = Sim.create () in
  let rng = Rng.create 17 in
  let loss_rng = Rng.create 18 in
  let out = ref [] in
  let vc_links = ref [||] in
  let svc =
    Stripe_vc.create ~n_vcs:2 ~quanta:[| 1500; 1500 |]
      ~marker:(Stripe_core.Marker.make ~every_rounds:4 ())
      ~send_cell:(fun ~vc cell ->
        ignore (Link.send !vc_links.(vc) ~size:Cell.size cell))
      ~deliver:(fun pkt -> out := pkt.Packet.seq :: !out)
      ()
  in
  vc_links :=
    Array.init 2 (fun i ->
        Link.create sim
          ~name:(Printf.sprintf "vc%d" i)
          ~rate_bps:20e6
          ~prop_delay:(0.002 +. (0.004 *. float_of_int i))
          ~rng:(Rng.split rng)
          ~deliver:(fun cell ->
            let drop =
              loss_p > 0.0
              && Sim.now sim < loss_stop
              && (not (Cell.is_oam cell))
              && Rng.bernoulli loss_rng ~p:loss_p
            in
            if not drop then Stripe_vc.receive_cell svc ~vc:i cell)
          ());
  for seq = 0 to n_packets - 1 do
    Stripe_vc.push svc (Packet.data ~seq ~size:(100 + Rng.int rng 1400) ())
  done;
  Sim.run sim;
  (List.rev !out, svc)

let test_stripe_vc_lossless_fifo () =
  let out, svc = run_stripe_vc ~loss_p:0.0 ~loss_stop:0.0 ~n_packets:400 in
  Alcotest.(check (list int)) "FIFO datagrams over cells"
    (List.init 400 Fun.id) out;
  Alcotest.(check int) "no corrupted frames" 0 (Stripe_vc.corrupted_frames svc);
  Alcotest.(check bool) "OAM markers flowed" true (Stripe_vc.markers_sent svc > 0)

let test_stripe_vc_cell_loss_recovers () =
  (* Cell loss corrupts whole AAL5 frames (packet loss), and the OAM
     marker protocol keeps resynchronizing. *)
  (* ~0.2 s of transmission; cell loss stops at 0.1 s. *)
  let out, svc = run_stripe_vc ~loss_p:0.002 ~loss_stop:0.1 ~n_packets:1200 in
  Alcotest.(check bool) "frames were corrupted" true
    (Stripe_vc.corrupted_frames svc > 0);
  Alcotest.(check bool) "most of the stream still arrives" true
    (List.length out > 900);
  (* After losses stop, marker recovery restores FIFO: the last quarter
     of deliveries must be increasing. *)
  let tail = List.filteri (fun i _ -> i >= List.length out - 300) out in
  Alcotest.(check bool) "tail in order" true (List.sort compare tail = tail)

let suites =
  [
    ( "atm",
      [
        Alcotest.test_case "cells_for" `Quick test_cells_for;
        Alcotest.test_case "segment shape" `Quick test_segment_shape;
        Alcotest.test_case "segment rejects marker" `Quick test_segment_rejects_marker;
        Alcotest.test_case "reassembly roundtrip" `Quick test_reassembly_roundtrip;
        Alcotest.test_case "missing cell" `Quick test_reassembly_detects_missing_cell;
        Alcotest.test_case "interleaving" `Quick test_reassembly_detects_interleaving;
        Alcotest.test_case "epd uncongested" `Quick test_epd_passes_when_uncongested;
        Alcotest.test_case "epd sheds frames" `Quick test_epd_sheds_whole_frames;
        Alcotest.test_case "tail drop clips" `Quick test_tail_drop_clips_frames;
        Alcotest.test_case "stripe over VCs fifo" `Quick test_stripe_vc_lossless_fifo;
        Alcotest.test_case "stripe over VCs loss" `Quick
          test_stripe_vc_cell_loss_recovers;
      ] );
  ]
