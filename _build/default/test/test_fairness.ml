(* Tests for fairness measurement and the Reorder metrics. *)

open Stripe_core

let test_measure_basics () =
  let d = Srr.create ~quanta:[| 500; 500 |] () in
  (* Drive two full rounds with perfectly balanced traffic. *)
  List.iter
    (fun size ->
      ignore (Deficit.select d);
      Deficit.consume d ~size)
    [ 500; 500; 500; 500 ];
  let report = Fairness.measure ~deficit:d ~bytes:[| 1000; 1000 |] ~max_packet:500 in
  Alcotest.(check int) "rounds" 2 report.Fairness.rounds;
  Alcotest.(check (list int)) "entitlement" [ 1000; 1000 ]
    (Array.to_list report.Fairness.entitlement);
  Alcotest.(check int) "max deviation" 0 report.Fairness.max_deviation;
  Alcotest.(check int) "bound" (500 + 1000) report.Fairness.bound;
  Alcotest.(check bool) "within bound" true report.Fairness.within_bound

let test_measure_violation () =
  let d = Srr.create ~quanta:[| 100; 100 |] () in
  List.iter
    (fun size ->
      ignore (Deficit.select d);
      Deficit.consume d ~size)
    [ 100; 100; 100; 100 ];
  let report = Fairness.measure ~deficit:d ~bytes:[| 2000; 0 |] ~max_packet:100 in
  Alcotest.(check bool) "gross imbalance flagged" false report.Fairness.within_bound

let test_measure_arity () =
  let d = Srr.create ~quanta:[| 100; 100 |] () in
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Fairness.measure: arity mismatch") (fun () ->
      ignore (Fairness.measure ~deficit:d ~bytes:[| 1 |] ~max_packet:100))

let test_spread () =
  Alcotest.(check int) "spread" 700 (Fairness.spread [| 300; 1000; 500 |]);
  Alcotest.(check int) "spread singleton" 0 (Fairness.spread [| 5 |]);
  Alcotest.(check int) "spread empty" 0 (Fairness.spread [||])

let test_jain_index () =
  Alcotest.(check (float 1e-9)) "perfect fairness" 1.0
    (Fairness.jain_index [| 100; 100; 100 |]);
  Alcotest.(check (float 1e-9)) "single-channel hog over n=2" 0.5
    (Fairness.jain_index [| 100; 0 |]);
  Alcotest.(check (float 1e-9)) "empty treated as fair" 1.0 (Fairness.jain_index [||])

let test_reorder_in_order_stream () =
  let r = Reorder.create () in
  List.iter (fun seq -> Reorder.observe r ~seq) [ 0; 1; 2; 3; 4 ];
  Alcotest.(check int) "observed" 5 (Reorder.observed r);
  Alcotest.(check int) "no late packets" 0 (Reorder.out_of_order r);
  Alcotest.(check int) "suffix covers all" 5 (Reorder.is_sorted_suffix r);
  Alcotest.(check int) "no disorder index" (-1) (Reorder.last_disorder_index r)

let test_reorder_late_packet () =
  let r = Reorder.create () in
  List.iter (fun seq -> Reorder.observe r ~seq) [ 0; 1; 4; 2; 3; 5 ];
  Alcotest.(check int) "two late deliveries" 2 (Reorder.out_of_order r);
  Alcotest.(check int) "displacement of 2 after 4" 2 (Reorder.max_displacement r);
  Alcotest.(check int) "disorder at index 3" 3 (Reorder.last_disorder_index r)

let test_reorder_missing () =
  let r = Reorder.create () in
  List.iter (fun seq -> Reorder.observe r ~seq) [ 0; 1; 3; 5 ];
  Alcotest.(check int) "two holes" 2 (Reorder.missing r)

let test_reorder_duplicates_simple () =
  let r = Reorder.create () in
  List.iter (fun seq -> Reorder.observe r ~seq) [ 0; 1; 1; 2 ];
  Alcotest.(check int) "duplicate counted once" 1 (Reorder.duplicates r)

let prop_reorder_sorted_never_flags =
  QCheck.Test.make ~name:"reorder: strictly increasing stream is clean"
    ~count:200
    QCheck.(list_of_size (Gen.int_range 1 100) small_nat)
    (fun xs ->
      let sorted = List.sort_uniq compare xs in
      let r = Reorder.create () in
      List.iter (fun seq -> Reorder.observe r ~seq) sorted;
      Reorder.out_of_order r = 0
      && Reorder.is_sorted_suffix r = List.length sorted)

let prop_reorder_counts_inversions_vs_max =
  QCheck.Test.make
    ~name:"reorder: late count equals packets below running max" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 100) (int_range 0 1000))
    (fun xs ->
      let r = Reorder.create () in
      List.iter (fun seq -> Reorder.observe r ~seq) xs;
      let expected =
        let max_seen = ref min_int and late = ref 0 in
        List.iter
          (fun x ->
            if x < !max_seen then incr late;
            if x > !max_seen then max_seen := x)
          xs;
        !late
      in
      Reorder.out_of_order r = expected)

let suites =
  [
    ( "fairness+reorder",
      [
        Alcotest.test_case "measure basics" `Quick test_measure_basics;
        Alcotest.test_case "measure violation" `Quick test_measure_violation;
        Alcotest.test_case "measure arity" `Quick test_measure_arity;
        Alcotest.test_case "spread" `Quick test_spread;
        Alcotest.test_case "jain index" `Quick test_jain_index;
        Alcotest.test_case "reorder clean stream" `Quick test_reorder_in_order_stream;
        Alcotest.test_case "reorder late packet" `Quick test_reorder_late_packet;
        Alcotest.test_case "reorder missing" `Quick test_reorder_missing;
        Alcotest.test_case "reorder duplicates" `Quick test_reorder_duplicates_simple;
        QCheck_alcotest.to_alcotest prop_reorder_sorted_never_flags;
        QCheck_alcotest.to_alcotest prop_reorder_counts_inversions_vs_max;
      ] );
  ]
