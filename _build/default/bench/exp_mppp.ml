(* strIPe vs Multilink PPP (RFC 1717), the §2.1 comparison: MPPP adds a
   4-byte multilink header to every fragment and requires every link to
   speak the modified format; in exchange it gets guaranteed FIFO and
   loss detection. strIPe adds nothing to data packets and buys
   quasi-FIFO + fast marker resynchronization with a trickle of control
   cells. Same channels, same workload, measured side by side. *)

open Stripe_netsim
open Stripe_packet
open Stripe_core

type outcome = {
  delivered : int;
  ooo : int;
  overhead_bytes : int;  (* markers or multilink headers on the wire *)
  discarded : int;
  resync_note : string;
}

let channels sim ~loss_rng ~loss_p ~lossy ~receive =
  Array.init 2 (fun i ->
      Link.create sim
        ~name:(Printf.sprintf "ch%d" i)
        ~rate_bps:8e6
        ~prop_delay:(0.003 +. (0.006 *. float_of_int i))
        ~deliver:(fun pkt ->
          let drop = !lossy && Rng.bernoulli loss_rng ~p:loss_p in
          if not drop then receive i pkt)
        ())

let drive sim push ~n =
  let rng = Rng.create 3 in
  let seq = ref 0 in
  let rec tick () =
    if !seq < n then begin
      push (Packet.data ~seq:!seq ~size:(200 + Rng.int rng 1200) ());
      incr seq;
      Sim.schedule_after sim ~delay:0.0008 tick
    end
  in
  tick ()

let n_packets = 8000

let run_stripe ~loss_p =
  let sim = Sim.create () in
  let loss_rng = Rng.create 11 in
  let lossy = ref true in
  let reorder = Reorder.create () in
  let engine = Srr.create ~quanta:[| 1400; 1400 |] () in
  let reseq =
    Resequencer.create ~deficit:(Deficit.clone_initial engine)
      ~deliver:(fun ~channel:_ pkt -> Reorder.observe reorder ~seq:pkt.Packet.seq)
      ()
  in
  let links =
    channels sim ~loss_rng ~loss_p ~lossy ~receive:(fun i pkt ->
        Resequencer.receive reseq ~channel:i pkt)
  in
  let marker_bytes = ref 0 in
  let striper =
    Striper.create
      ~scheduler:(Scheduler.of_deficit ~name:"SRR" engine)
      ~marker:(Marker.make ~every_rounds:4 ())
      ~now:(fun () -> Sim.now sim)
      ~emit:(fun ~channel pkt ->
        if Packet.is_marker pkt then marker_bytes := !marker_bytes + pkt.Packet.size;
        ignore (Link.send links.(channel) ~size:pkt.Packet.size pkt))
      ()
  in
  drive sim (Striper.push striper) ~n:n_packets;
  Sim.schedule sim ~at:5.0 (fun () -> lossy := false);
  Sim.run sim;
  {
    delivered = Reorder.observed reorder;
    ooo = Reorder.out_of_order reorder;
    overhead_bytes = !marker_bytes;
    discarded = n_packets - Reorder.observed reorder - Resequencer.pending reseq;
    resync_note = "quasi-FIFO; markers resync after loss";
  }

let run_mppp ~loss_p =
  let sim = Sim.create () in
  let loss_rng = Rng.create 11 in
  let lossy = ref true in
  let reorder = Reorder.create () in
  let receiver = ref None in
  let links =
    channels sim ~loss_rng ~loss_p ~lossy ~receive:(fun i frag ->
        match !receiver with
        | Some r -> Mppp.Receiver.receive r ~link:i frag
        | None -> ())
  in
  let rx =
    Mppp.Receiver.create ~n_links:2
      ~deliver:(fun pkt -> Reorder.observe reorder ~seq:pkt.Packet.seq)
      ()
  in
  receiver := Some rx;
  let sender =
    Mppp.Sender.create
      ~scheduler:(Scheduler.srr ~quanta:[| 1400; 1400 |] ())
      ~emit:(fun ~link f ->
        ignore (Link.send links.(link) ~size:(Mppp.wire_size f) f))
      ()
  in
  drive sim (Mppp.Sender.push sender) ~n:n_packets;
  Sim.schedule sim ~at:5.0 (fun () -> lossy := false);
  Sim.run sim;
  {
    delivered = Reorder.observed reorder;
    ooo = Reorder.out_of_order reorder;
    overhead_bytes = Mppp.Sender.header_bytes_sent sender;
    discarded = Mppp.Receiver.discarded_datagrams rx + Mppp.Receiver.lost_fragments rx;
    resync_note = "guaranteed FIFO; per-fragment headers";
  }

let run () =
  Exp_common.section
    "strIPe vs Multilink PPP (RFC 1717) - the Section 2.1 comparison";
  let tbl =
    Stripe_metrics.Table.create
      ~title:
        (Printf.sprintf
           "%d datagrams over 2 channels; 1%% loss that stops mid-run"
           n_packets)
      ~columns:
        [
          "protocol"; "delivered"; "out-of-order"; "overhead (B)";
          "lost/discarded"; "wire format";
        ]
  in
  let row name r fmt_note =
    Stripe_metrics.Table.add_row tbl
      [
        name;
        string_of_int r.delivered;
        string_of_int r.ooo;
        string_of_int r.overhead_bytes;
        string_of_int r.discarded;
        fmt_note;
      ]
  in
  let s = run_stripe ~loss_p:0.01 in
  let m = run_mppp ~loss_p:0.01 in
  row "strIPe (SRR+LR+markers)" s "unmodified data packets";
  row "MPPP (RFC 1717)" m "4-B header on every fragment";
  Stripe_metrics.Table.print tbl;
  Printf.printf "strIPe: %s\nMPPP:   %s\n\n" s.resync_note m.resync_note;
  print_endline
    "The trade the paper states: MPPP modifies every packet (impossible on";
  print_endline
    "fixed formats like ATM cells or maximum-sized frames) and specifies no";
  print_endline
    "striping/resequencing algorithm; strIPe leaves packets untouched and";
  print_endline
    "pays only periodic markers - a few dozen bytes per round - accepting";
  print_endline "quasi- instead of guaranteed FIFO.\n"
