(* §6.3 synchronization-recovery experiments:
   E1 - markers restore FIFO after loss stops, for loss rates up to 80%;
        measures recovery latency in simulated time.
   E2 - out-of-order deliveries vs marker frequency at a fixed loss rate.
   E3 - out-of-order deliveries vs marker position within the round. *)

open Stripe_netsim
open Stripe_packet
open Stripe_core

type rig = {
  sim : Sim.t;
  striper : Striper.t;
  reseq : Resequencer.t;
  recovery : Stripe_metrics.Recovery.t;
  reorder : Reorder.t;
  lossy : bool ref;
  loss_rng : Rng.t;
}

let make_rig ?(n = 2) ?(lose_markers = false) ~loss_p ~marker () =
  let sim = Sim.create () in
  let lossy = ref true in
  let loss_rng = Rng.create 1234 in
  let recovery = Stripe_metrics.Recovery.create () in
  let reorder = Reorder.create () in
  let engine = Srr.create ~quanta:(Array.make n 1500) () in
  let reseq =
    Resequencer.create ~deficit:(Deficit.clone_initial engine)
      ~deliver:(fun ~channel:_ pkt ->
        Stripe_metrics.Recovery.observe recovery ~now:(Sim.now sim)
          ~seq:pkt.Packet.seq;
        Reorder.observe reorder ~seq:pkt.Packet.seq)
      ()
  in
  let links =
    Array.init n (fun i ->
        Link.create sim
          ~name:(Printf.sprintf "ch%d" i)
          ~rate_bps:10e6
          ~prop_delay:(0.004 +. (0.002 *. float_of_int i))
          ~deliver:(fun pkt ->
            (* Controlled loss while the lossy phase lasts. Recovery only
               needs some marker to get through after errors stop, which
               the periodic emission guarantees, so markers may share the
               data packets' fate. *)
            let dropped =
              !lossy
              && (lose_markers || not (Packet.is_marker pkt))
              && Rng.bernoulli loss_rng ~p:loss_p
            in
            if not dropped then Resequencer.receive reseq ~channel:i pkt)
          ())
  in
  let sched = Scheduler.of_deficit ~name:"SRR" engine in
  let striper =
    Striper.create ~scheduler:sched ~marker
      ~now:(fun () -> Sim.now sim)
      ~emit:(fun ~channel pkt ->
        ignore (Link.send links.(channel) ~size:pkt.Packet.size pkt))
      ()
  in
  { sim; striper; reseq; recovery; reorder; lossy; loss_rng }

(* Paced source: bimodal mix at ~80% of aggregate capacity. *)
let drive rig ~until =
  let rng = Rng.create 77 in
  let gen =
    Stripe_workload.Genpkt.bimodal ~rng ~small:Sizes.small_packet
      ~large:Sizes.large_packet ()
  in
  let seq = ref 0 in
  let rec tick () =
    if Sim.now rig.sim < until then begin
      for _ = 1 to 2 do
        Striper.push rig.striper
          (Packet.data ~seq:!seq ~born:(Sim.now rig.sim) ~size:(gen ()) ());
        incr seq
      done;
      Sim.schedule_after rig.sim ~delay:0.0006 tick
    end
  in
  tick ()

let run_e1 () =
  Exp_common.section
    "E1 - recovery of FIFO delivery after loss stops (marker every 4 rounds)";
  let tbl =
    Stripe_metrics.Table.create ~title:"Loss sweep (loss applies to markers too)"
      ~columns:
        [
          "loss rate"; "delivered"; "ooo during loss"; "resync time (ms)";
          "FIFO after recovery";
        ]
  in
  List.iter
    (fun loss_p ->
      let rig =
        make_rig ~lose_markers:true ~loss_p
          ~marker:(Marker.make ~every_rounds:4 ())
          ()
      in
      let errors_stop = 2.0 in
      drive rig ~until:4.0;
      (* Losses stop mid-run. *)
      Sim.schedule rig.sim ~at:errors_stop (fun () -> rig.lossy := false);
      Sim.run rig.sim;
      let resync =
        Stripe_metrics.Recovery.resync_time rig.recovery ~errors_stop
      in
      let fifo_after =
        match resync with
        | Some dt ->
          Stripe_metrics.Recovery.in_order_after rig.recovery
            ~time:(errors_stop +. dt)
        | None -> false
      in
      Stripe_metrics.Table.add_row tbl
        [
          Printf.sprintf "%.0f%%" (100.0 *. loss_p);
          string_of_int (Stripe_metrics.Recovery.deliveries rig.recovery);
          string_of_int (Reorder.out_of_order rig.reorder);
          (match resync with
          | Some dt -> Printf.sprintf "%.1f" (1000.0 *. dt)
          | None -> "never");
          string_of_bool fifo_after;
        ])
    [ 0.1; 0.2; 0.4; 0.6; 0.8 ];
  Stripe_metrics.Table.print tbl;
  print_endline
    "Paper: for loss up to 80%, marker resynchronization restored FIFO once";
  print_endline
    "losses stopped, within about a marker interval + one-way delay.\n"

let run_e2 () =
  Exp_common.section
    "E2 - out-of-order deliveries vs marker frequency (20% continuous loss)";
  let tbl =
    Stripe_metrics.Table.create ~title:"Marker frequency sweep"
      ~columns:[ "markers every N rounds"; "delivered"; "out-of-order"; "ooo rate" ]
  in
  List.iter
    (fun every_rounds ->
      let rig =
        make_rig ~loss_p:0.2 ~marker:(Marker.make ~every_rounds ()) ()
      in
      drive rig ~until:4.0;
      Sim.run rig.sim;
      let n = Reorder.observed rig.reorder in
      let ooo = Reorder.out_of_order rig.reorder in
      Stripe_metrics.Table.add_row tbl
        [
          string_of_int every_rounds;
          string_of_int n;
          string_of_int ooo;
          Printf.sprintf "%.2f%%" (100.0 *. float_of_int ooo /. float_of_int (max 1 n));
        ])
    [ 1; 2; 4; 8; 16; 32 ];
  Stripe_metrics.Table.print tbl;
  print_endline
    "Paper: increasing marker frequency decreases out-of-order deliveries.\n"

let run_e3 () =
  Exp_common.section
    "E3 - out-of-order deliveries vs marker position in the round (20% loss, every 4 rounds)";
  let tbl =
    Stripe_metrics.Table.create ~title:"Marker position sweep"
      ~columns:[ "position"; "delivered"; "out-of-order"; "ooo rate" ]
  in
  List.iter
    (fun (label, position) ->
      let rig =
        make_rig ~n:4 ~loss_p:0.2
          ~marker:(Marker.make ~position ~every_rounds:4 ())
          ()
      in
      drive rig ~until:4.0;
      Sim.run rig.sim;
      let n = Reorder.observed rig.reorder in
      let ooo = Reorder.out_of_order rig.reorder in
      Stripe_metrics.Table.add_row tbl
        [
          label;
          string_of_int n;
          string_of_int ooo;
          Printf.sprintf "%.2f%%" (100.0 *. float_of_int ooo /. float_of_int (max 1 n));
        ])
    [
      ("round start", Marker.Round_start);
      ("mid round", Marker.Mid_round);
      ("round end", Marker.Round_end);
    ];
  Stripe_metrics.Table.print tbl;
  print_endline
    "Paper: fewest out-of-order deliveries with markers at the beginning or";
  print_endline
    "end of a round; the paper recommends the end. In this implementation";
  print_endline
    "every marker carries the exact per-channel (round, DC) stamp of §5, so";
  print_endline
    "its position within the round affects only how fresh the information is";
  print_endline
    "- the three positions measure within noise of each other, a slightly";
  print_endline
    "stronger robustness property than the position sensitivity the paper's";
  print_endline "round-number-based prototype observed (see EXPERIMENTS.md).\n"

let run () =
  run_e1 ();
  run_e2 ();
  run_e3 ()
