(* Figure 15: application-level TCP throughput as the ATM PVC capacity is
   varied from 3.8 to 23.8 Mbps, striping over Ethernet + ATM.

   Seven series as in the paper: the sum of the two interfaces measured
   individually (an upper bound), and {SRR, GRR, RR} x {logical
   reception, none}. Expected shape: strIPe (SRR + logical reception)
   tracks the upper bound until the ATM rate reaches the mid-teens, then
   flattens as the receiving CPU saturates on interrupts (striped
   interfaces coalesce less than one loaded interface); RR is capped by
   the slowest interface; disabling logical reception costs receiver CPU
   on out-of-order segments. *)

open Exp_common

let atm_points = [ 3.8e6; 7.8e6; 11.8e6; 15.8e6; 19.8e6; 23.8e6 ]

let run () =
  section
    "Figure 15 - application throughput vs ATM PVC capacity (Ethernet + ATM)";
  let series name f = (name, List.map f atm_points) in
  let seeds = [ 1; 2; 3 ] in
  let striped scheme logical_reception atm =
    (* Average over seeds: the saturated no-resequencing runs are
       sensitive to retransmission timing. *)
    let runs =
      List.map
        (fun seed ->
          (run_striped_tcp ~seed ~links:[| Ethernet; Atm atm |] ~scheme
             ~logical_reception ())
            .goodput_mbps)
        seeds
    in
    List.fold_left ( +. ) 0.0 runs /. float_of_int (List.length runs)
  in
  let columns =
    [
      series "Sum(upper bound)" (fun atm -> upper_bound ~atm_bps:atm ());
      series "SRR+LR" (striped Srr_scheme true);
      series "SRR" (striped Srr_scheme false);
      series "GRR+LR" (striped Grr_scheme true);
      series "GRR" (striped Grr_scheme false);
      series "RR+LR" (striped Rr_scheme true);
      series "RR" (striped Rr_scheme false);
    ]
  in
  print_string
    (Stripe_metrics.Table.series ~title:"Throughput (Mbps) vs ATM capacity (Mbps)"
       ~x_label:"ATM Mbps"
       ~x:(List.map (fun r -> r /. 1e6) atm_points)
       columns);
  print_newline ();
  print_endline
    "Paper's shape: strIPe ~ sum of interfaces until ATM ~14 Mbps, then";
  print_endline
    "flattens (interrupt load); RR limited by the slowest interface; logical";
  print_endline "reception beats no resequencing; SRR >= GRR >= RR.\n"
