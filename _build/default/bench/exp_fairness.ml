(* B1: empirical verification of the fairness bounds (Theorem 3.2 /
   Lemma 3.3) and the design-choice ablation of DESIGN.md §5 - SRR's
   overdraw-and-penalize versus the strict DRR variant, plus the other
   schedulers on identical workloads. *)

open Stripe_netsim
open Stripe_packet
open Stripe_core

let dispatch_bytes scheduler sizes =
  let n = Scheduler.n_channels scheduler in
  let bytes = Array.make n 0 in
  List.iteri
    (fun seq size ->
      let pkt = Packet.data ~flow:(seq mod 5) ~seq ~size () in
      let c = Scheduler.choose scheduler pkt in
      Scheduler.account scheduler pkt c;
      bytes.(c) <- bytes.(c) + size)
    sizes;
  bytes

let workloads rng =
  [
    ("uniform 64..1500", Stripe_workload.Genpkt.uniform ~rng ~lo:64 ~hi:1500);
    ( "bimodal 200/1000",
      Stripe_workload.Genpkt.bimodal ~rng ~small:200 ~large:1000 () );
    ( "alternating 1000/200",
      Stripe_workload.Genpkt.alternating ~small:200 ~large:1000 );
    ("imix", Stripe_workload.Genpkt.imix ~rng);
    ("pareto", Stripe_workload.Genpkt.pareto ~rng ~alpha:1.2 ~min_size:64 ~cap:1500);
  ]

let run () =
  Exp_common.section
    "B1 - fairness bound verification (Max + 2*Quantum) and scheduler ablation";
  let n_packets = 20_000 in
  let tbl =
    Stripe_metrics.Table.create
      ~title:
        (Printf.sprintf
           "Byte spread across 3 equal channels after %d packets (bound: dev <= Max+2Q)"
           n_packets)
      ~columns:[ "workload"; "scheduler"; "spread (B)"; "max dev"; "bound"; "ok"; "jain" ]
  in
  let rng = Rng.create 11 in
  List.iter
    (fun (wname, gen) ->
      let sizes = Stripe_workload.Genpkt.take gen n_packets in
      let schedulers =
        [
          ("SRR", Scheduler.srr ~quanta:[| 1500; 1500; 1500 |] ());
          ( "DRR-strict",
            Scheduler.of_deficit ~name:"DRR"
              (Srr.strict_drr ~quanta:[| 1500; 1500; 1500 |] ()) );
          ("RR", Scheduler.rr ~n:3 ());
          ("Random", Scheduler.random_selection ~n:3 ~seed:3);
          ("Hash", Scheduler.address_hashing ~n:3);
        ]
      in
      List.iter
        (fun (sname, sched) ->
          (* The strict-DRR engine cannot use the packet-blind [choose];
             drive it through select_for directly. *)
          let bytes =
            if sname = "DRR-strict" then begin
              let d = Srr.strict_drr ~quanta:[| 1500; 1500; 1500 |] () in
              let bytes = Array.make 3 0 in
              List.iter
                (fun size ->
                  let c = Deficit.select_for d ~size in
                  Deficit.consume d ~size;
                  bytes.(c) <- bytes.(c) + size)
                sizes;
              bytes
            end
            else dispatch_bytes sched sizes
          in
          let bound = 1500 + (2 * 1500) in
          let total = Array.fold_left ( + ) 0 bytes in
          let mean = total / 3 in
          let max_dev =
            Array.fold_left (fun acc b -> max acc (abs (b - mean))) 0 bytes
          in
          Stripe_metrics.Table.add_row tbl
            [
              wname;
              sname;
              string_of_int (Fairness.spread bytes);
              string_of_int max_dev;
              string_of_int bound;
              (if max_dev <= bound then "yes" else "NO");
              Printf.sprintf "%.4f" (Fairness.jain_index bytes);
            ])
        schedulers)
    (workloads rng);
  Stripe_metrics.Table.print tbl;
  print_endline
    "SRR and strict DRR stay within the Lemma 3.3 bound on every workload;";
  print_endline
    "RR's deviation grows without bound on random variable sizes (and its";
  print_endline
    "byte split collapses entirely when sizes alternate over an even channel";
  print_endline "count, cf. the GRR worst case); hashing concentrates flows.";
  print_endline
    "(Deviation here is measured against the mean, since non-CFQ schemes";
  print_endline "have no round count; for SRR it coincides with K*Quantum_i.)\n";

  (* Buffer sizing vs skew: the logical-reception ablation hook of
     DESIGN.md §5. *)
  let tbl2 =
    Stripe_metrics.Table.create
      ~title:"Logical-reception buffer high-water vs channel skew (SRR, 2 channels)"
      ~columns:[ "skew (ms)"; "buffer high-water (pkts)"; "buffer high-water (bytes)" ]
  in
  List.iter
    (fun skew ->
      let sim = Sim.create () in
      let engine = Srr.create ~quanta:[| 1500; 1500 |] () in
      let reseq =
        Resequencer.create ~deficit:(Deficit.clone_initial engine)
          ~deliver:(fun ~channel:_ _ -> ())
          ()
      in
      let links =
        Array.init 2 (fun i ->
            Link.create sim
              ~name:(Printf.sprintf "ch%d" i)
              ~rate_bps:10e6
              ~prop_delay:(if i = 0 then 0.001 else 0.001 +. skew)
              ~deliver:(fun pkt -> Resequencer.receive reseq ~channel:i pkt)
              ())
      in
      let striper =
        Striper.create
          ~scheduler:(Scheduler.of_deficit ~name:"SRR" engine)
          ~emit:(fun ~channel pkt ->
            ignore (Link.send links.(channel) ~size:pkt.Packet.size pkt))
          ()
      in
      let gen = Stripe_workload.Genpkt.bimodal ~rng ~small:200 ~large:1000 () in
      let seq = ref 0 in
      let rec tick () =
        if Sim.now sim < 2.0 then begin
          Striper.push striper (Packet.data ~seq:!seq ~size:(gen ()) ());
          incr seq;
          Sim.schedule_after sim ~delay:0.0006 tick
        end
      in
      tick ();
      Sim.run sim;
      Stripe_metrics.Table.add_row tbl2
        [
          Printf.sprintf "%.0f" (skew *. 1000.0);
          string_of_int (Resequencer.buffer_high_water_packets reseq);
          string_of_int (Resequencer.buffer_high_water_bytes reseq);
        ])
    [ 0.0; 0.005; 0.02; 0.05; 0.1 ];
  Stripe_metrics.Table.print tbl2;
  print_endline
    "Receiver buffering grows linearly with skew x rate: physical reception";
  print_endline "runs ahead of logical reception by exactly the skew window.\n"
