(* MTU ablation (§6.2): strIPe limits the bundle MTU to the smallest
   member MTU, and "the overall throughput is considerably dependent on
   MTU size" - the paper saw >70 Mbps on a lone ATM interface with 8 KB
   packets. The alternative the Gigabit-testbed adaptors chose (OSIRIS
   minipackets) fragments each datagram across the channels, buying a
   large bundle MTU at the price of modifying the wire format and
   amplifying loss. This bench measures the trade on both sides, with the
   per-packet receive costs of the Figure 15 host model as the thing the
   big MTU saves. *)

open Stripe_netsim
open Stripe_packet
open Stripe_core
open Stripe_host

let rates = [| 60e6; 100e6 |]
let member_mtu = 1500

(* Common receive path: NICs feed a CPU; goodput counts datagram bytes
   handed to the application in order. *)
let make_rx sim ~n ~deliver =
  let cpu = Cpu.create sim () in
  let nics =
    Array.init n (fun i ->
        Nic.create sim ~cpu ~ring_capacity:512 ~max_batch:Exp_common.rx_max_batch
          ~name:(Printf.sprintf "nic%d" i)
          ~intr_cost:Exp_common.rx_intr_cost
          ~per_packet_cost:Exp_common.rx_per_packet_cost
          ~deliver:(fun (channel, payload) -> deliver channel payload)
          ())
  in
  nics

(* Whole-packet striping: the application must segment each datagram to
   the bundle MTU; SRR + logical reception carries the segments. *)
let run_whole ~datagram ~loss_p ~duration =
  let sim = Sim.create () in
  let rng = Rng.create 21 in
  let app_bytes = ref 0 in
  let engine = Srr.for_rates ~rates_bps:rates ~quantum_unit:member_mtu () in
  let reseq = ref None in
  let nics =
    make_rx sim ~n:2 ~deliver:(fun channel pkt ->
        match !reseq with
        | Some r -> Resequencer.receive r ~channel pkt
        | None -> ())
  in
  reseq :=
    Some
      (Resequencer.create ~deficit:(Deficit.clone_initial engine)
         ~deliver:(fun ~channel:_ pkt -> app_bytes := !app_bytes + pkt.Packet.size)
         ());
  let links =
    Array.init 2 (fun i ->
        Link.create sim
          ~name:(Printf.sprintf "ch%d" i)
          ~rate_bps:rates.(i)
          ~prop_delay:0.002
          ~rng:(Rng.split rng)
          ~loss:
            (if loss_p > 0.0 then Loss.bernoulli ~p:loss_p else Loss.none ())
          ~deliver:(fun pkt -> Nic.rx nics.(i) (i, pkt))
          ())
  in
  let striper =
    Striper.create
      ~scheduler:(Scheduler.of_deficit ~name:"SRR" engine)
      ~marker:(Marker.make ~every_rounds:8 ())
      ~now:(fun () -> Sim.now sim)
      ~emit:(fun ~channel pkt ->
        ignore (Link.send links.(channel) ~size:pkt.Packet.size pkt))
      ()
  in
  (* Backlogged source: segment each datagram to the bundle MTU. *)
  let seq = ref 0 in
  let rec offer () =
    if Sim.now sim < duration then begin
      while Link.queue_bytes links.(0) + Link.queue_bytes links.(1) < 120_000 do
        let remaining = ref datagram in
        while !remaining > 0 do
          let size = min member_mtu !remaining in
          remaining := !remaining - size;
          Striper.push striper (Packet.data ~seq:!seq ~size ());
          incr seq
        done
      done;
      Sim.schedule_after sim ~delay:0.001 offer
    end
  in
  offer ();
  Sim.run sim;
  float_of_int (!app_bytes * 8) /. duration /. 1e6

(* Fragmenting striping: whole datagrams, one minipacket per channel. *)
let run_fragmenting ~datagram ~loss_p ~duration =
  let sim = Sim.create () in
  let rng = Rng.create 22 in
  let app_bytes = ref 0 in
  let reasm = ref None in
  let nics =
    make_rx sim ~n:2 ~deliver:(fun channel frag ->
        match !reasm with
        | Some r -> Fragmenter.Reassembler.receive r ~channel frag
        | None -> ())
  in
  reasm :=
    Some
      (Fragmenter.Reassembler.create ~n_channels:2
         ~deliver:(fun pkt -> app_bytes := !app_bytes + pkt.Packet.size)
         ());
  let links =
    Array.init 2 (fun i ->
        Link.create sim
          ~name:(Printf.sprintf "ch%d" i)
          ~rate_bps:rates.(i)
          ~prop_delay:0.002
          ~rng:(Rng.split rng)
          ~loss:
            (if loss_p > 0.0 then Loss.bernoulli ~p:loss_p else Loss.none ())
          ~deliver:(fun frag -> Nic.rx nics.(i) (i, frag))
          ())
  in
  let sender =
    Fragmenter.Sender.create ~shares:rates
      ~emit:(fun ~channel frag ->
        ignore
          (Link.send links.(channel) ~size:(Fragmenter.wire_size frag) frag))
      ()
  in
  let seq = ref 0 in
  let rec offer () =
    if Sim.now sim < duration then begin
      while Link.queue_bytes links.(0) + Link.queue_bytes links.(1) < 120_000 do
        Fragmenter.Sender.push sender (Packet.data ~seq:!seq ~size:datagram ());
        incr seq
      done;
      Sim.schedule_after sim ~delay:0.001 offer
    end
  in
  offer ();
  Sim.run sim;
  float_of_int (!app_bytes * 8) /. duration /. 1e6

let run () =
  Exp_common.section
    "MTU ablation (Section 6.2) - whole-packet strIPe vs fragmenting minipackets";
  let tbl =
    Stripe_metrics.Table.create
      ~title:
        "Application goodput (Mbps) over 60+100 Mbps links, member MTU 1500, \
         receiver CPU as in Fig 15"
      ~columns:
        [
          "datagram"; "strIPe (segmented)"; "fragmenting"; "strIPe @1% loss";
          "fragmenting @1% loss";
        ]
  in
  List.iter
    (fun datagram ->
      let w = run_whole ~datagram ~loss_p:0.0 ~duration:3.0 in
      let f = run_fragmenting ~datagram ~loss_p:0.0 ~duration:3.0 in
      let wl = run_whole ~datagram ~loss_p:0.01 ~duration:3.0 in
      let fl = run_fragmenting ~datagram ~loss_p:0.01 ~duration:3.0 in
      Stripe_metrics.Table.add_row tbl
        [
          Printf.sprintf "%d B" datagram;
          Printf.sprintf "%.1f" w;
          Printf.sprintf "%.1f" f;
          Printf.sprintf "%.1f" wl;
          Printf.sprintf "%.1f" fl;
        ])
    [ 1000; 1500; 4096; 8192; 16384 ];
  Stripe_metrics.Table.print tbl;
  print_endline
    "Large datagrams favor fragmentation (2 receive events per datagram";
  print_endline
    "instead of one per MTU segment) - the §6.2 observation that throughput";
  print_endline
    "is considerably dependent on MTU size. Small datagrams invert it: the";
  print_endline
    "doubled receive events saturate the CPU, rings overflow, and because";
  print_endline
    "any lost minipacket kills its whole datagram the damage is amplified -";
  print_endline
    "catastrophically so at this saturated offered load. Loss amplification";
  print_endline
    "plus the modified wire format are the reasons strIPe stripes whole";
  print_endline "packets.\n"
