(* E4 (§6.3): credit-based flow control over un-flow-controlled (UDP)
   channels. Offered load exceeds what the receive path can absorb;
   without credits the receive socket buffers overflow and drop, with the
   FCVC scheme the sender stalls instead and no packet is lost. *)

open Stripe_netsim
open Stripe_packet
open Stripe_transport

let run_case sim ~flow_control ~socket_buffer =
  let channels =
    [|
      Socket_stripe.spec ~rate_bps:4e6 ~prop_delay:0.003 ();
      Socket_stripe.spec ~rate_bps:1e6 ~prop_delay:0.008 ();
    |]
  in
  (* Equal quanta over unequal channel rates exaggerate the skew between
     arrival and logical consumption - the congestion source. *)
  let sched = Stripe_core.Scheduler.srr ~quanta:[| 1200; 1200 |] () in
  let delivered = ref 0 in
  let sock =
    Socket_stripe.create sim ~channels ~scheduler:sched
      ~marker:(Stripe_core.Marker.make ~every_rounds:4 ())
      ~flow_control ~socket_buffer
      ~deliver:(fun _ -> incr delivered)
      ()
  in
  for seq = 0 to 2999 do
    Sim.schedule sim ~at:(float_of_int seq *. 0.0004) (fun () ->
        Socket_stripe.send sock (Packet.data ~seq ~size:1000 ()))
  done;
  Sim.run sim;
  (sock, !delivered)

let run () =
  Exp_common.section
    "E4 - FCVC credit flow control on UDP channels (offered load > capacity)";
  let tbl =
    Stripe_metrics.Table.create ~title:"Congestion behavior"
      ~columns:
        [
          "flow control"; "offered"; "delivered"; "congestion drops";
          "sender stalls"; "buffer high-water (pkts)";
        ]
  in
  let describe label fc ~buffer =
    let sim = Sim.create () in
    (* Both cases get the same 32-packet socket buffer; the only
       difference is whether the FCVC protocol paces the sender. *)
    let sock, delivered = run_case sim ~flow_control:fc ~socket_buffer:buffer in
    Stripe_metrics.Table.add_row tbl
      [
        label;
        "3000";
        string_of_int delivered;
        string_of_int (Socket_stripe.congestion_drops sock);
        string_of_int (Socket_stripe.sender_stalls sock);
        string_of_int
          (Stripe_core.Resequencer.buffer_high_water_packets
             (Socket_stripe.resequencer sock));
      ]
  in
  describe "none" Socket_stripe.No_flow_control ~buffer:32;
  describe "FCVC credits (B=32)"
    (Socket_stripe.Credit_based { buffer = 32 })
    ~buffer:32;
  Stripe_metrics.Table.print tbl;
  print_endline
    "Paper: the credit scheme of [KC93] proved very effective in eliminating";
  print_endline
    "packet loss due to channel congestion; credits piggyback on markers.\n"
