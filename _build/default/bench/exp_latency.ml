(* Latency ablation: what logical reception costs in delay. The §4
   blocking discipline holds fast-channel packets until the slow
   channel's turn passes, so per-packet latency inherits the skew the
   buffers absorb; without resequencing latency is minimal but order is
   lost. Reported as distribution percentiles against the channel skew. *)

open Stripe_netsim
open Stripe_packet
open Stripe_core

type mode =
  | Logical_reception
  | No_resequencing

let run_one ~mode ~skew =
  let sim = Sim.create () in
  let rng = Rng.create 5 in
  let lat = Stripe_metrics.Summary.create ~keep_samples:true () in
  let reorder = Reorder.create () in
  let observe pkt =
    Stripe_metrics.Summary.add lat (Sim.now sim -. pkt.Packet.born);
    Reorder.observe reorder ~seq:pkt.Packet.seq
  in
  let engine = Srr.create ~quanta:[| 1400; 1400 |] () in
  let receive =
    match mode with
    | Logical_reception ->
      let r =
        Resequencer.create ~deficit:(Deficit.clone_initial engine)
          ~deliver:(fun ~channel:_ pkt -> observe pkt)
          ()
      in
      fun ~channel pkt -> Resequencer.receive r ~channel pkt
    | No_resequencing ->
      fun ~channel:_ pkt -> if not (Packet.is_marker pkt) then observe pkt
  in
  let links =
    Array.init 2 (fun i ->
        Link.create sim
          ~name:(Printf.sprintf "ch%d" i)
          ~rate_bps:10e6
          ~prop_delay:(0.002 +. (if i = 1 then skew else 0.0))
          ~deliver:(fun pkt -> receive ~channel:i pkt)
          ())
  in
  let striper =
    Striper.create
      ~scheduler:(Scheduler.of_deficit ~name:"SRR" engine)
      ?marker:
        (match mode with
        | Logical_reception -> Some (Marker.make ~every_rounds:8 ())
        | No_resequencing -> None)
      ~now:(fun () -> Sim.now sim)
      ~emit:(fun ~channel pkt ->
        ignore (Link.send links.(channel) ~size:pkt.Packet.size pkt))
      ()
  in
  let seq = ref 0 in
  let rec tick () =
    if !seq < 4000 then begin
      Striper.push striper
        (Packet.data ~seq:!seq ~born:(Sim.now sim)
           ~size:(if Rng.bool rng then 200 else 1000)
           ());
      incr seq;
      Sim.schedule_after sim ~delay:0.0006 tick
    end
  in
  tick ();
  Sim.run sim;
  (lat, Reorder.out_of_order reorder)

let run () =
  Exp_common.section
    "Latency ablation - the delay cost of logical reception vs channel skew";
  let tbl =
    Stripe_metrics.Table.create
      ~title:
        "Per-packet latency (ms) over two 10 Mbps channels, channel 2 slower \
         by the skew"
      ~columns:
        [
          "skew (ms)"; "mode"; "p50"; "p95"; "p99"; "max"; "out-of-order";
        ]
  in
  List.iter
    (fun skew ->
      List.iter
        (fun (label, mode) ->
          let lat, ooo = run_one ~mode ~skew in
          let ms p = Printf.sprintf "%.2f" (1000.0 *. Stripe_metrics.Summary.percentile lat p) in
          Stripe_metrics.Table.add_row tbl
            [
              Printf.sprintf "%.0f" (1000.0 *. skew);
              label;
              ms 50.0;
              ms 95.0;
              ms 99.0;
              Printf.sprintf "%.2f" (1000.0 *. Stripe_metrics.Summary.max_value lat);
              string_of_int ooo;
            ])
        [ ("logical reception", Logical_reception); ("none", No_resequencing) ])
    [ 0.0; 0.005; 0.020; 0.050 ];
  Stripe_metrics.Table.print tbl;
  print_endline
    "Logical reception pins every packet's latency to the slower channel's";
  print_endline
    "(the price of order without headers); without resequencing fast-channel";
  print_endline
    "packets arrive early but half the stream is misordered. Applications";
  print_endline
    "that need order anyway (TCP, MPEG - Section 7) pay the skew either way,";
  print_endline "in the striping layer or in their own reassembly buffers.\n"
