(* E5 (§6.3): NV video traces striped over lossy UDP channels with
   quasi-FIFO delivery, compared against pure loss at the same rate
   without any reordering. The paper found perceptible playback
   degradation only at ~40% loss and above, and that reordering's
   contribution was insignificant next to loss itself. *)

open Stripe_netsim
open Stripe_packet
open Stripe_core

(* Stripe the trace over two channels with the given loss; the playback
   model receives the quasi-FIFO (possibly reordered) stream. *)
let striped_playback ~loss_p ~trace =
  let sim = Sim.create () in
  let loss_rng = Rng.create 5 in
  let playback = Stripe_workload.Playback.create ~trace ~playout_delay:0.4 () in
  let reorder = Reorder.create () in
  let engine = Srr.create ~quanta:[| 1500; 1500 |] () in
  let reseq =
    Resequencer.create ~deficit:(Deficit.clone_initial engine)
      ~deliver:(fun ~channel:_ pkt ->
        Reorder.observe reorder ~seq:pkt.Packet.seq;
        Stripe_workload.Playback.packet_arrived playback ~frame:pkt.Packet.frame
          ~now:(Sim.now sim))
      ()
  in
  let links =
    Array.init 2 (fun i ->
        Link.create sim
          ~name:(Printf.sprintf "udp%d" i)
          ~rate_bps:2e6
          ~prop_delay:(0.010 +. (0.015 *. float_of_int i))
          ~deliver:(fun pkt ->
            if Packet.is_marker pkt || not (Rng.bernoulli loss_rng ~p:loss_p)
            then Resequencer.receive reseq ~channel:i pkt)
          ())
  in
  let striper =
    Striper.create
      ~scheduler:(Scheduler.of_deficit ~name:"SRR" engine)
      ~marker:(Marker.make ~every_rounds:4 ())
      ~now:(fun () -> Sim.now sim)
      ~emit:(fun ~channel pkt ->
        ignore (Link.send links.(channel) ~size:pkt.Packet.size pkt))
      ()
  in
  List.iter
    (fun (t, pkt) -> Sim.schedule sim ~at:t (fun () -> Striper.push striper pkt))
    (Stripe_workload.Video.packets trace);
  Sim.run sim;
  (* End of trace: whatever logical reception still holds is handed up
     (the application reads out the tail). *)
  List.iter
    (fun pkt ->
      Stripe_workload.Playback.packet_arrived playback ~frame:pkt.Packet.frame
        ~now:(Sim.now sim))
    (Resequencer.drain reseq);
  let report = Stripe_workload.Playback.finalize playback in
  (report, Reorder.out_of_order reorder)

(* The control condition: one channel, same loss rate, no reordering
   possible. *)
let pure_loss_playback ~loss_p ~trace =
  let sim = Sim.create () in
  let loss_rng = Rng.create 6 in
  let playback = Stripe_workload.Playback.create ~trace ~playout_delay:0.4 () in
  let link =
    Link.create sim ~name:"udp" ~rate_bps:4e6 ~prop_delay:0.015
      ~deliver:(fun pkt ->
        if not (Rng.bernoulli loss_rng ~p:loss_p) then
          Stripe_workload.Playback.packet_arrived playback
            ~frame:pkt.Packet.frame ~now:(Sim.now sim))
      ()
  in
  List.iter
    (fun (t, pkt) ->
      Sim.schedule sim ~at:t (fun () ->
          ignore (Link.send link ~size:pkt.Packet.size pkt)))
    (Stripe_workload.Video.packets trace);
  Sim.run sim;
  Stripe_workload.Playback.finalize playback

let run () =
  Exp_common.section
    "E5 - NV video over striped lossy UDP: quasi-FIFO reordering vs pure loss";
  let rng = Rng.create 42 in
  let trace = Stripe_workload.Video.generate ~rng ~fps:10.0 ~n_frames:300 () in
  let tbl =
    Stripe_metrics.Table.create
      ~title:
        "Playback quality over 300 frames (degraded = frame lost >= half its \
         slices; the perceptibility proxy)"
      ~columns:
        [
          "loss rate"; "striped degraded"; "pure-loss degraded";
          "striped glitched"; "pure-loss glitched"; "striped ooo pkts";
          "reorder cost";
        ]
  in
  List.iter
    (fun loss_p ->
      let striped, ooo = striped_playback ~loss_p ~trace in
      let pure = pure_loss_playback ~loss_p ~trace in
      let open Stripe_workload.Playback in
      Stripe_metrics.Table.add_row tbl
        [
          Printf.sprintf "%.0f%%" (100.0 *. loss_p);
          Printf.sprintf "%d (%.0f%%)" striped.degraded_frames
            (100.0 *. striped.degraded_rate);
          Printf.sprintf "%d (%.0f%%)" pure.degraded_frames
            (100.0 *. pure.degraded_rate);
          Printf.sprintf "%.0f%%" (100.0 *. striped.glitch_rate);
          Printf.sprintf "%.0f%%" (100.0 *. pure.glitch_rate);
          string_of_int ooo;
          Printf.sprintf "%+d frames" (striped.degraded_frames - pure.degraded_frames);
        ])
    [ 0.0; 0.05; 0.1; 0.2; 0.3; 0.4; 0.6 ];
  Stripe_metrics.Table.print tbl;
  print_endline
    "Paper: only at 40% loss and above were differences perceptible in NV";
  print_endline
    "playback, and pure loss at the same rate looked the same. Here the";
  print_endline
    "badly-degraded-frame rate stays low until ~30-40% loss and then climbs";
  print_endline
    "steeply, while the striped-vs-pure-loss difference (the reordering";
  print_endline "contribution of quasi-FIFO delivery) is within noise throughout.\n"
