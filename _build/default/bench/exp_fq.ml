(* Fair queuing proper (§3's foundation): the deployable DRR/SRR output
   discipline isolating flows on one link - the algorithm whose time
   reversal is the striping scheme. Shown against a plain FIFO queue: a
   hog flow blasting large packets starves small flows under FIFO and is
   contained to its fair share under DRR. *)

open Stripe_netsim
open Stripe_packet
open Stripe_core

(* Three flows into a 10 Mbps link: a hog (1500 B packets as fast as it
   can), and two modest interactive flows (300 B at a paced rate).
   Service discipline drains the shared link. *)
type result = { hog_p95_ms : float; small_p95_ms : float }

let run_discipline ~drr =
  let sim = Sim.create () in
  let served = Array.make 3 0 in
  let hog_latency = Stripe_metrics.Summary.create ~keep_samples:true () in
  let small_latency = Stripe_metrics.Summary.create ~keep_samples:true () in
  let fq = Fair_queue.create ~quanta:[| 1500; 1500; 1500 |] () in
  let fifo : (int * Packet.t) Queue.t = Queue.create () in
  let link_busy = ref false in
  let rate = 10e6 in
  let rec serve () =
    let next =
      if drr then Fair_queue.dequeue fq
      else Queue.take_opt fifo
    in
    match next with
    | None -> link_busy := false
    | Some (flow, pkt) ->
      link_busy := true;
      let ser = float_of_int (pkt.Packet.size * 8) /. rate in
      Sim.schedule_after sim ~delay:ser (fun () ->
          served.(flow) <- served.(flow) + pkt.Packet.size;
          Stripe_metrics.Summary.add
            (if flow = 0 then hog_latency else small_latency)
            (Sim.now sim -. pkt.Packet.born);
          serve ())
  in
  let offer flow pkt =
    if drr then Fair_queue.enqueue fq ~flow pkt else Queue.add (flow, pkt) fifo;
    if not !link_busy then serve ()
  in
  let seq = ref 0 in
  (* Hog: 1500 B every 0.4 ms = 30 Mbps offered, 3x the link. *)
  let rec hog () =
    if Sim.now sim < 2.0 then begin
      offer 0 (Packet.data ~seq:!seq ~born:(Sim.now sim) ~size:1500 ());
      incr seq;
      Sim.schedule_after sim ~delay:0.0004 hog
    end
  in
  (* Small flows: 300 B every 2 ms = 1.2 Mbps each. *)
  let rec small flow () =
    if Sim.now sim < 2.0 then begin
      offer flow (Packet.data ~seq:!seq ~born:(Sim.now sim) ~size:300 ());
      incr seq;
      Sim.schedule_after sim ~delay:0.002 (small flow)
    end
  in
  hog ();
  small 1 ();
  small 2 ();
  Sim.run sim;
  ignore served;
  {
    hog_p95_ms = 1000.0 *. Stripe_metrics.Summary.percentile hog_latency 95.0;
    small_p95_ms = 1000.0 *. Stripe_metrics.Summary.percentile small_latency 95.0;
  }

let run () =
  Exp_common.section
    "Fair queuing foundation (Section 3) - DRR/SRR flow isolation on one link";
  let tbl =
    Stripe_metrics.Table.create
      ~title:
        "10 Mbps link; flow 0 offers 30 Mbps of 1500-B packets, flows 1-2 \
         offer 1.2 Mbps of 300-B packets each"
      ~columns:
        [ "discipline"; "small flows p95 latency (ms)"; "hog p95 latency (ms)" ]
  in
  let row name r =
    Stripe_metrics.Table.add_row tbl
      [
        name;
        Printf.sprintf "%.2f" r.small_p95_ms;
        Printf.sprintf "%.1f" r.hog_p95_ms;
      ]
  in
  row "FIFO" (run_discipline ~drr:false);
  row "DRR/SRR fair queuing" (run_discipline ~drr:true);
  Stripe_metrics.Table.print tbl;
  print_endline
    "Fair queuing decouples the small flows' latency from the hog's queue";
  print_endline
    "(three orders of magnitude here) while the overloaded hog absorbs its";
  print_endline
    "own backlog. This is the [SV94] algorithm whose causal, backlogged form";
  print_endline "the paper time-reverses into the striping scheme (Theorem 3.1).\n"
