bench/exp_figures.ml: Cfq Deficit Exp_common List Marker Packet Printf Queue Resequencer Scheduler Srr Stripe_core Stripe_packet Striper
