bench/main.mli:
