bench/exp_video.ml: Array Deficit Exp_common Link List Marker Packet Printf Reorder Resequencer Rng Scheduler Sim Srr Stripe_core Stripe_metrics Stripe_netsim Stripe_packet Stripe_workload Striper
