bench/exp_fig15.ml: Exp_common List Stripe_metrics
