bench/exp_fq.ml: Array Exp_common Fair_queue Packet Printf Queue Sim Stripe_core Stripe_metrics Stripe_netsim Stripe_packet
