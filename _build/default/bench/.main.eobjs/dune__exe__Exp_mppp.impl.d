bench/exp_mppp.ml: Array Deficit Exp_common Link Marker Mppp Packet Printf Reorder Resequencer Rng Scheduler Sim Srr Stripe_core Stripe_metrics Stripe_netsim Stripe_packet Striper
