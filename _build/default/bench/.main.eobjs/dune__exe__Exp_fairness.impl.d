bench/exp_fairness.ml: Array Deficit Exp_common Fairness Link List Packet Printf Resequencer Rng Scheduler Sim Srr Stripe_core Stripe_metrics Stripe_netsim Stripe_packet Stripe_workload Striper
