bench/micro.ml: Analyze Bechamel Benchmark Exp_common Hashtbl Instance List Measure Printf Staged Stripe_core Stripe_packet Test Time Toolkit
