bench/exp_grr_worst.ml: Array Deficit Exp_common Grr Link Marker Packet Printf Resequencer Rng Scheduler Sim Sizes Srr Stripe_core Stripe_metrics Stripe_netsim Stripe_packet Stripe_workload Striper
