bench/exp_skew.ml: Array Deficit Exp_common Link List Packet Printf Reorder Resequencer Rng Scheduler Sim Skew_comp Srr Stripe_core Stripe_metrics Stripe_netsim Stripe_packet Striper
