bench/exp_atm.ml: Aal5 Array Cell Epd_switch Exp_common Hashtbl Link List Packet Printf Rng Sim Stripe_atm Stripe_metrics Stripe_netsim Stripe_packet
