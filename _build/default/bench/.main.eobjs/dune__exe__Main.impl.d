bench/main.ml: Exp_atm Exp_credit Exp_fairness Exp_fig15 Exp_figures Exp_fq Exp_grr_worst Exp_latency Exp_mppp Exp_mtu Exp_resync Exp_skew Exp_table1 Exp_video List Micro Printf String Sys
