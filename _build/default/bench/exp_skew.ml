(* Skew-compensation ablation (§2, §2.1): BONDING/AIM-style delay
   equalization works only when skew is tightly bounded; logical
   reception needs no skew knowledge at all. Sweep per-packet jitter and
   compare misordering. *)

open Stripe_netsim
open Stripe_packet
open Stripe_core

type mode =
  | Compensation
  | Logical

let run_one ~mode ~jitter =
  let sim = Sim.create () in
  let rng = Rng.create 55 in
  let reorder = Reorder.create () in
  let deliver pkt = Reorder.observe reorder ~seq:pkt.Packet.seq in
  let skews = [| 0.002; 0.030 |] in
  let engine = Srr.create ~quanta:[| 1000; 1000 |] () in
  let receive =
    match mode with
    | Compensation ->
      let comp = Skew_comp.create sim ~skews ~deliver () in
      fun ~channel pkt -> Skew_comp.receive comp ~channel pkt
    | Logical ->
      let r =
        Resequencer.create ~deficit:(Deficit.clone_initial engine)
          ~deliver:(fun ~channel:_ pkt -> deliver pkt)
          ()
      in
      fun ~channel pkt -> Resequencer.receive r ~channel pkt
  in
  let links =
    Array.mapi
      (fun i skew ->
        Link.create sim
          ~name:(Printf.sprintf "ch%d" i)
          ~rate_bps:10e6 ~prop_delay:skew
          ?jitter:
            (if jitter > 0.0 then Some (fun r -> Rng.float r jitter) else None)
          ~rng:(Rng.split rng)
          ~deliver:(fun pkt -> receive ~channel:i pkt)
          ())
      skews
  in
  let striper =
    Striper.create
      ~scheduler:(Scheduler.of_deficit ~name:"SRR" engine)
      ~emit:(fun ~channel pkt ->
        ignore (Link.send links.(channel) ~size:pkt.Packet.size pkt))
      ()
  in
  let seq = ref 0 in
  let rec tick () =
    if !seq < 3000 then begin
      Striper.push striper (Packet.data ~seq:!seq ~size:1000 ());
      incr seq;
      Sim.schedule_after sim ~delay:0.0008 tick
    end
  in
  tick ();
  Sim.run sim;
  (Reorder.observed reorder, Reorder.out_of_order reorder)

let run () =
  Exp_common.section
    "Skew ablation (Section 2) - delay compensation vs logical reception";
  let tbl =
    Stripe_metrics.Table.create
      ~title:
        "Out-of-order deliveries of 3000 packets (channels with 2 ms / 30 ms \
         base skew; compensation configured for the base skews only)"
      ~columns:
        [ "per-packet jitter"; "compensation ooo"; "logical reception ooo" ]
  in
  List.iter
    (fun jitter ->
      let _, comp_ooo = run_one ~mode:Compensation ~jitter in
      let _, lr_ooo = run_one ~mode:Logical ~jitter in
      Stripe_metrics.Table.add_row tbl
        [
          Printf.sprintf "%.0f ms" (jitter *. 1000.0);
          string_of_int comp_ooo;
          string_of_int lr_ooo;
        ])
    [ 0.0; 0.005; 0.020; 0.050 ];
  Stripe_metrics.Table.print tbl;
  print_endline
    "With skew exactly as configured, delay compensation is FIFO - the";
  print_endline
    "BONDING regime of synchronized serial channels. Any jitter beyond the";
  print_endline
    "configured bound leaks misordering, while logical reception is immune:";
  print_endline
    "the receiver simulation depends on no timing assumptions (§2's argument";
  print_endline "for ruling out skew-based resequencing on network channels).\n"
