(* The §6.2 worst-case experiment: PVC tuned so both interfaces have the
   same application throughput (where GRR reduces to RR), workload
   strictly alternating 1000-byte and 200-byte packets. The paper
   measured SRR at 11.2 Mbps and GRR collapsing to 6.8 Mbps, because GRR
   puts every large packet on one interface. Also included: the random
   mixture on the same setup, where GRR and SRR are comparable — GRR's
   failure is adversarial, not average-case. *)

open Stripe_netsim
open Stripe_packet
open Stripe_core

(* Both "interfaces" at the same application-level rate; deterministic
   alternation vs random mixture. *)
let run_case ~scheme_name ~engine ~alternating () =
  let sim = Sim.create () in
  let rng = Rng.create 7 in
  let goodput = Stripe_metrics.Throughput.create () in
  Stripe_metrics.Throughput.start_at goodput 0.0;
  let reseq = ref None in
  let links =
    Array.init 2 (fun i ->
        Link.create sim
          ~name:(Printf.sprintf "if%d" i)
          ~rate_bps:6e6 ~prop_delay:0.002
          ~deliver:(fun pkt ->
            match !reseq with
            | Some r -> Resequencer.receive r ~channel:i pkt
            | None -> ())
          ())
  in
  reseq :=
    Some
      (Resequencer.create ~deficit:(Deficit.clone_initial engine)
         ~deliver:(fun ~channel:_ pkt ->
           Stripe_metrics.Throughput.account goodput ~now:(Sim.now sim)
             ~bytes:pkt.Packet.size)
         ());
  let sched = Scheduler.of_deficit ~name:scheme_name engine in
  let striper =
    Striper.create ~scheduler:sched
      ~marker:(Marker.make ~every_rounds:8 ())
      ~now:(fun () -> Sim.now sim)
      ~emit:(fun ~channel pkt ->
        ignore (Link.send links.(channel) ~size:pkt.Packet.size pkt))
      ()
  in
  let gen =
    if alternating then
      Stripe_workload.Genpkt.alternating ~small:Sizes.small_packet
        ~large:Sizes.large_packet
    else
      Stripe_workload.Genpkt.bimodal ~rng ~small:Sizes.small_packet
        ~large:Sizes.large_packet ()
  in
  (* Backlogged sender paced just above aggregate capacity: feed packets
     whenever any transmit queue has room. *)
  let duration = 4.0 in
  let seq = ref 0 in
  let rec feed () =
    if Sim.now sim < duration then begin
      let queued c = Link.queue_bytes links.(c) in
      if queued 0 + queued 1 < 40_000 then begin
        for _ = 1 to 8 do
          Striper.push striper (Packet.data ~seq:!seq ~size:(gen ()) ());
          incr seq
        done
      end;
      Sim.schedule_after sim ~delay:0.002 feed
    end
  in
  feed ();
  Sim.run sim;
  float_of_int (Stripe_metrics.Throughput.bytes goodput * 8) /. duration /. 1e6

let run () =
  Exp_common.section
    "GRR worst case (Section 6.2) - equal-rate interfaces, alternating 1000/200 B";
  let tbl =
    Stripe_metrics.Table.create ~title:"Striped throughput (Mbps)"
      ~columns:[ "Workload"; "SRR"; "GRR(=RR here)"; "SRR/GRR" ]
  in
  let srr () = Srr.create ~quanta:[| 1000; 1000 |] () in
  let grr () = Grr.create ~ratios:[| 1; 1 |] () in
  let srr_alt = run_case ~scheme_name:"SRR" ~engine:(srr ()) ~alternating:true () in
  let grr_alt = run_case ~scheme_name:"GRR" ~engine:(grr ()) ~alternating:true () in
  let srr_mix = run_case ~scheme_name:"SRR" ~engine:(srr ()) ~alternating:false () in
  let grr_mix = run_case ~scheme_name:"GRR" ~engine:(grr ()) ~alternating:false () in
  Stripe_metrics.Table.add_row tbl
    [
      "alternating 1000/200";
      Printf.sprintf "%.1f" srr_alt;
      Printf.sprintf "%.1f" grr_alt;
      Printf.sprintf "%.2fx" (srr_alt /. grr_alt);
    ];
  Stripe_metrics.Table.add_row tbl
    [
      "random 1000/200 mix";
      Printf.sprintf "%.1f" srr_mix;
      Printf.sprintf "%.1f" grr_mix;
      Printf.sprintf "%.2fx" (srr_mix /. grr_mix);
    ];
  Stripe_metrics.Table.print tbl;
  print_endline
    "Paper: SRR 11.2 Mbps vs GRR 6.8 Mbps (1.65x) on the alternating sequence;";
  print_endline "on random mixes the two are comparable.\n"
