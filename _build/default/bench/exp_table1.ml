(* Regenerates Table 1 behaviorally: each striping scheme is run over two
   skewed channels with the adversarial alternating workload, and the
   qualitative columns (FIFO delivery, load sharing with variable length
   packets) are derived from measured misordering and byte imbalance.

   All five of the paper's software rows appear: round robin with and
   without headers, the fair-queuing-derived scheme with and without
   headers, plus the non-causal baselines it discusses. Only the BONDING
   row is out of scope - it needs synchronous serial hardware. *)

open Stripe_netsim
open Stripe_core
open Stripe_packet

type reseq_mode =
  | No_resequencing
  | Logical_reception  (* quasi-FIFO, no headers *)
  | Sequence_numbers  (* guaranteed FIFO, packets carry a header *)

type row = {
  label : string;
  reorder_rate : float;
  imbalance : float;  (* byte spread / total bytes *)
}

let run_scheme ~label ~scheduler ~mode ~sizes () =
  let sim = Sim.create () in
  let reorder = Reorder.create () in
  let deliver pkt = Reorder.observe reorder ~seq:pkt.Packet.seq in
  let receive =
    match mode, Scheduler.deficit scheduler with
    | Logical_reception, Some d ->
      let r =
        Resequencer.create ~deficit:(Deficit.clone_initial d)
          ~deliver:(fun ~channel:_ pkt -> deliver pkt)
          ()
      in
      fun ~channel pkt -> Resequencer.receive r ~channel pkt
    | Sequence_numbers, deficit ->
      let r =
        Seq_resequencer.create
          ?deficit:(Option.map Deficit.clone_initial deficit)
          ~n_channels:(Scheduler.n_channels scheduler) ~deliver ()
      in
      fun ~channel pkt -> Seq_resequencer.receive r ~channel pkt
    | (No_resequencing | Logical_reception), _ ->
      fun ~channel:_ pkt -> if not (Packet.is_marker pkt) then deliver pkt
  in
  (* Channel 1 has both more skew and a little loss, so quasi-FIFO (FIFO
     except during loss recovery) is distinguishable from guaranteed
     FIFO. *)
  let links =
    Array.init 2 (fun i ->
        Link.create sim
          ~name:(Printf.sprintf "ch%d" i)
          ~rate_bps:8e6
          ~prop_delay:(if i = 0 then 0.001 else 0.020)
          ~rng:(Rng.create (1000 + i))
          ~loss:(if i = 1 then Loss.bernoulli ~p:0.005 else Loss.none ())
          ~deliver:(fun pkt -> receive ~channel:i pkt)
          ())
  in
  let bytes = Array.make 2 0 in
  let striper =
    Striper.create ~scheduler
      ?marker:
        (match mode, Scheduler.deficit scheduler with
        | Logical_reception, Some _ -> Some (Marker.make ~every_rounds:4 ())
        | _ -> None)
      ~emit:(fun ~channel pkt ->
        if not (Packet.is_marker pkt) then
          bytes.(channel) <- bytes.(channel) + pkt.Packet.size;
        ignore (Link.send links.(channel) ~size:pkt.Packet.size pkt))
      ()
  in
  List.iteri
    (fun seq size -> Striper.push striper (Packet.data ~flow:(seq mod 3) ~seq ~size ()))
    sizes;
  Sim.run sim;
  let total = float_of_int (bytes.(0) + bytes.(1)) in
  {
    label;
    reorder_rate =
      (if Reorder.observed reorder = 0 then 1.0
       else
         float_of_int (Reorder.out_of_order reorder)
         /. float_of_int (Reorder.observed reorder));
    imbalance =
      (if total = 0.0 then 0.0
       else float_of_int (Fairness.spread bytes) /. total);
  }

let fifo_verdict rate =
  if rate = 0.0 then "FIFO"
  else if rate < 0.02 then "quasi-FIFO"
  else "non-FIFO"

let sharing_verdict imbalance = if imbalance < 0.05 then "Good" else "Poor"

let run () =
  Exp_common.section
    "Table 1 - features of channel striping schemes (measured over two skewed channels)";
  (* The adversarial workload of §2.1: strictly alternating large and
     small packets, the case where round robin's load sharing fails. *)
  let sizes =
    List.init 4000 (fun i ->
        if i mod 2 = 0 then Sizes.large_packet else Sizes.small_packet)
  in
  let rows =
    [
      run_scheme ~label:"Round-Robin, no header" ~mode:No_resequencing
        ~scheduler:(Scheduler.rr ~n:2 ()) ~sizes ();
      run_scheme ~label:"Round-Robin with header (seq numbers)"
        ~mode:Sequence_numbers ~scheduler:(Scheduler.rr ~n:2 ()) ~sizes ();
      run_scheme ~label:"FQ algorithm (SRR) with header" ~mode:Sequence_numbers
        ~scheduler:(Scheduler.srr ~quanta:[| 1000; 1000 |] ())
        ~sizes ();
      run_scheme ~label:"FQ algorithm (SRR), no header (strIPe)"
        ~mode:Logical_reception
        ~scheduler:(Scheduler.srr ~quanta:[| 1000; 1000 |] ())
        ~sizes ();
      run_scheme ~label:"SRR, no resequencing" ~mode:No_resequencing
        ~scheduler:(Scheduler.srr ~quanta:[| 1000; 1000 |] ())
        ~sizes ();
      run_scheme ~label:"Random selection [Bay95]" ~mode:No_resequencing
        ~scheduler:(Scheduler.random_selection ~n:2 ~seed:5)
        ~sizes ();
      run_scheme ~label:"Address hashing [Bay95]" ~mode:No_resequencing
        ~scheduler:(Scheduler.address_hashing ~n:2) ~sizes ();
    ]
  in
  let tbl =
    Stripe_metrics.Table.create ~title:"Derived Table 1"
      ~columns:
        [ "Scheme"; "FIFO delivery"; "Load sharing (var. sizes)"; "reorder"; "imbalance" ]
  in
  List.iter
    (fun r ->
      Stripe_metrics.Table.add_row tbl
        [
          r.label;
          fifo_verdict r.reorder_rate;
          sharing_verdict r.imbalance;
          Printf.sprintf "%.2f%%" (100.0 *. r.reorder_rate);
          Printf.sprintf "%.1f%%" (100.0 *. r.imbalance);
        ])
    rows;
  Stripe_metrics.Table.print tbl;
  print_endline
    "Paper's rows reproduced: RR no header -> may be non-FIFO, poor sharing;";
  print_endline
    "RR with header -> guaranteed FIFO, still poor sharing; FQ-derived with";
  print_endline
    "header -> guaranteed FIFO + good sharing; FQ-derived without header ->";
  print_endline
    "quasi-FIFO + good sharing (the paper's new scheme). BONDING needs";
  print_endline "synchronous serial hardware and is out of scope.\n"
