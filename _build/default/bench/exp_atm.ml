(* ATM ablation (§7, [RF94]): why stripe whole packets, not cells, across
   virtual circuits. Two VCs share a congested output port (2:1
   overload). Early packet discard keeps goodput near the output capacity
   - but only if the per-VC cell streams carry intact AAL5 frames, which
   cell-level striping destroys: "striping cells across channels would
   mean that AAL boundaries are unavailable within the ATM networks;
   however, these boundaries are needed in order to implement early
   discard policies". *)

open Stripe_netsim
open Stripe_packet
open Stripe_atm

type striping =
  | Packet_striping  (* whole AAL5 frames per VC (strIPe's choice) *)
  | Cell_striping  (* cells of each frame alternate across VCs *)

(* Reassembly that tolerates cell striping: collect cells of a datagram
   across VCs by id; complete = all indices present (the AAL5 CRC
   equivalent once cells are re-merged). *)
module Merge_reassembler = struct
  type entry = { mutable got : int; mutable cells : int; mutable size : int }

  type t = {
    table : (int, entry) Hashtbl.t;
    mutable delivered_bytes : int;
    mutable delivered_frames : int;
  }

  let create () =
    { table = Hashtbl.create 512; delivered_bytes = 0; delivered_frames = 0 }

  let receive t cell =
    match cell.Cell.kind with
    | Cell.Oam _ -> ()
    | Cell.Data d ->
      let e =
        match Hashtbl.find_opt t.table d.dg_seq with
        | Some e -> e
        | None ->
          let e = { got = 0; cells = d.dg_cells; size = d.dg_size } in
          Hashtbl.add t.table d.dg_seq e;
          e
      in
      e.got <- e.got + 1;
      if e.got = e.cells then begin
        Hashtbl.remove t.table d.dg_seq;
        t.delivered_frames <- t.delivered_frames + 1;
        t.delivered_bytes <- t.delivered_bytes + e.size
      end
end

let run_case ~striping ~policy ~duration =
  let sim = Sim.create () in
  let rng = Rng.create 77 in
  let reasm = Merge_reassembler.create () in
  let switch =
    Epd_switch.create sim ~policy ~buffer_cells:200 ~out_rate_bps:20e6
      ~deliver:(fun cell -> Merge_reassembler.receive reasm cell)
      ()
  in
  (* Eight input VCs, each fed at 5 Mbps: 2x overload at the port, with
     heavy interleaving so cell drops scatter across concurrent frames -
     the [RF94] regime. The input links model the access segments ahead
     of the switch. *)
  let n_vcs = 8 in
  let inputs =
    Array.init n_vcs (fun i ->
        Link.create sim
          ~name:(Printf.sprintf "in%d" i)
          ~rate_bps:5e6 ~prop_delay:0.001
          ~jitter:(fun r -> Rng.float r 0.0002)
          ~rng:(Rng.split rng)
          ~deliver:(fun cell -> Epd_switch.input switch cell)
          ())
  in
  let offered = ref 0 in
  let send_frame seq size =
    offered := !offered + size;
    match striping with
    | Packet_striping ->
      (* Whole frames alternate across VCs (RR is enough here: equal
         frame sizes keep it fair, and the port merges both anyway). *)
      let vc = seq mod n_vcs in
      List.iter
        (fun cell -> ignore (Link.send inputs.(vc) ~size:Cell.size cell))
        (Aal5.segment ~vci:vc (Packet.data ~seq ~size ()))
    | Cell_striping ->
      (* Cells of each frame alternate across VCs; the VCI each cell
         carries is its transport VC, so the switch's per-VC EPD state
         sees interleaved fragments. *)
      List.iteri
        (fun k cell ->
          let vc = k mod n_vcs in
          ignore
            (Link.send inputs.(vc) ~size:Cell.size { cell with Cell.vci = vc }))
        (Aal5.segment ~vci:0 (Packet.data ~seq ~size ()))
  in
  let seq = ref 0 in
  let rec tick () =
    if Sim.now sim < duration then begin
      (* 1000-byte frames at 2x the output rate. *)
      while
        Array.fold_left (fun acc l -> acc + Link.queue_bytes l) 0 inputs
        < 40_000
      do
        send_frame !seq (900 + Rng.int rng 200);
        incr seq
      done;
      Sim.schedule_after sim ~delay:0.001 tick
    end
  in
  tick ();
  Sim.run sim;
  let goodput =
    float_of_int (reasm.Merge_reassembler.delivered_bytes * 8) /. duration /. 1e6
  in
  (goodput, Epd_switch.frames_shed_early switch, Epd_switch.cells_dropped switch)

let run () =
  Exp_common.section
    "ATM ablation (Section 7 / [RF94]) - packet vs cell striping through a \
     congested EPD switch";
  let tbl =
    Stripe_metrics.Table.create
      ~title:
        "Goodput (Mbps of complete frames) at a 20 Mbps port, 8 VCs at 2x \
         overload, 1000-B frames"
      ~columns:
        [ "striping"; "discard policy"; "goodput"; "frames shed early"; "cells dropped" ]
  in
  let case label striping policy =
    let goodput, shed, dropped = run_case ~striping ~policy ~duration:2.0 in
    Stripe_metrics.Table.add_row tbl
      [
        label;
        (match policy with
        | Epd_switch.Tail_drop -> "tail drop"
        | Epd_switch.Early_packet_discard _ -> "EPD");
        Printf.sprintf "%.1f" goodput;
        string_of_int shed;
        string_of_int dropped;
      ]
  in
  let epd = Epd_switch.Early_packet_discard { threshold = 100 } in
  case "packet (strIPe)" Packet_striping epd;
  case "packet (strIPe)" Packet_striping Epd_switch.Tail_drop;
  case "cell" Cell_striping epd;
  case "cell" Cell_striping Epd_switch.Tail_drop;
  Stripe_metrics.Table.print tbl;
  print_endline
    "Packet striping preserves AAL5 boundaries per VC, so EPD sheds whole";
  print_endline
    "frames and goodput stays near the port rate. Cell striping interleaves";
  print_endline
    "fragments on every VC: EPD's frame bookkeeping is meaningless and";
  print_endline
    "clipped frames waste the port - the paper's reason to stripe at the";
  print_endline "packet layer across ATM circuits.\n"
