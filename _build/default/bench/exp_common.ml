(* Shared scaffolding for the paper-reproduction experiments.

   The Figure 15 test rig: a TCP-lite connection whose segments are
   striped (or not) over simulated Ethernet and ATM links, with a
   receive-side CPU processing NIC interrupts — the bottleneck the paper
   identifies. All constants are calibrated to the 1996 testbed's shape,
   not its absolute numbers; see EXPERIMENTS.md. *)

open Stripe_netsim
open Stripe_packet
open Stripe_core
open Stripe_host
open Stripe_transport

(* --- Link models ------------------------------------------------------ *)

type link_kind =
  | Ethernet
      (* 10Base-T. The effective MAC throughput is well below 10 Mbps for
         mixed packet sizes (CSMA/CD, IFG, preamble); the paper measured
         about 6 Mbps at application level. We model the effective rate
         directly. *)
  | Atm of float  (* PVC with the given raw rate in bps. *)

let ethernet_effective_bps = 6.5e6

let rate_of = function
  | Ethernet -> ethernet_effective_bps
  | Atm rate -> rate

(* Wire cost of carrying an IP datagram of [n] bytes. *)
let wire_size kind n =
  match kind with
  | Ethernet -> n + Sizes.ethernet_overhead
  | Atm _ -> n + Sizes.atm_overhead_for n

(* Application-level capacity of a link for a given mean datagram size:
   used for the "sum of individual throughputs" upper-bound series. *)
let app_capacity kind ~mean_datagram =
  rate_of kind *. float_of_int mean_datagram
  /. float_of_int (wire_size kind mean_datagram)

(* --- Receiver host model ---------------------------------------------- *)

(* Per-packet protocol processing and per-interrupt overhead on the
   receiving host (1996 Pentium running NetBSD). Coalescing is emergent:
   a single loaded NIC batches many packets per interrupt; striped NICs
   batch less, which is exactly why Figure 15's striped curves flatten
   below the single-interface sum. *)
let rx_per_packet_cost = 210e-6
let rx_intr_cost = 150e-6

(* Driver rx budget: at most this many packets per handler activation
   (the era's drivers serviced small fixed batches). Bounding the batch
   caps how far a single loaded interface can amortize interrupts, which
   is what makes the Figure 15 upper bound eventually fall. *)
let rx_max_batch = 3

(* Extra receiver work to file an out-of-order TCP segment into the
   reassembly queue; only paid by the variants without logical
   reception. *)
let rx_ooo_cost = 80e-6

(* Sender-side per-packet cost (TCP output + striping + driver). *)
let tx_per_packet_cost = 60e-6

(* TCP + IP header bytes riding each segment on the wire. *)
let tcp_ip_headers = Sizes.ip_header + 20

(* --- The striped-TCP rig ---------------------------------------------- *)

type scheme =
  | Srr_scheme
  | Grr_scheme
  | Rr_scheme

let scheme_name = function
  | Srr_scheme -> "SRR"
  | Grr_scheme -> "GRR"
  | Rr_scheme -> "RR"

type result = {
  goodput_mbps : float;
  ooo_segments : int;
  retransmissions : int;
  ring_drops : int;
  interrupts : int;
  rx_packets : int;
}

(* Run one TCP transfer of [duration] simulated seconds over the given
   links. [scheme] picks the striping algorithm; [logical_reception]
   enables the resequencer. With a single link the striper degenerates to
   a pass-through, which is how the upper-bound points are measured. *)
let run_striped_tcp ?(duration = 4.0) ?(seed = 1) ~links ~scheme
    ~logical_reception () =
  let sim = Sim.create () in
  let rng = Rng.create seed in
  let n = Array.length links in
  let rx_cpu = Cpu.create sim () in
  let tx_cpu = Cpu.create sim () in
  (* Receiver-side plumbing is wired back to front. *)
  let tcp_rx = ref None in
  let reseq = ref None in
  let ooo = ref 0 in
  let tcp_deliver pkt =
    match !tcp_rx with
    | None -> ()
    | Some rx -> (
      match
        Tcp_lite.Receiver.rx rx ~off:pkt.Packet.off
          ~len:(pkt.Packet.size - tcp_ip_headers)
      with
      | `In_order -> ()
      | `Duplicate -> ()
      | `Out_of_order ->
        incr ooo;
        (* Reassembly insertion burns extra CPU. *)
        Cpu.execute rx_cpu ~cost:rx_ooo_cost (fun () -> ()))
  in
  let after_nic channel pkt =
    match !reseq with
    | Some r -> Resequencer.receive r ~channel pkt
    | None -> if not (Packet.is_marker pkt) then tcp_deliver pkt
  in
  let nics =
    Array.init n (fun i ->
        Nic.create sim ~cpu:rx_cpu ~ring_capacity:512 ~max_batch:rx_max_batch
          ~name:(Printf.sprintf "nic%d" i)
          ~intr_cost:rx_intr_cost ~per_packet_cost:rx_per_packet_cost
          ~deliver:(fun (channel, pkt) -> after_nic channel pkt)
          ())
  in
  let wires =
    Array.mapi
      (fun i kind ->
        Link.create sim
          ~name:(Printf.sprintf "link%d" i)
          ~rate_bps:(rate_of kind) ~prop_delay:0.002
          ~deliver:(fun pkt -> Nic.rx nics.(i) (i, pkt))
          ())
      links
  in
  let rates = Array.map rate_of links in
  let engine =
    match scheme with
    | Srr_scheme -> Srr.for_rates ~rates_bps:rates ~quantum_unit:1500 ()
    | Grr_scheme -> Grr.for_rates ~rates_bps:rates ()
    | Rr_scheme -> Rr.create ~n ()
  in
  let sched = Scheduler.of_deficit ~name:(scheme_name scheme) engine in
  (if logical_reception then
     reseq :=
       Some
         (Resequencer.create ~deficit:(Deficit.clone_initial engine)
            ~deliver:(fun ~channel:_ pkt -> tcp_deliver pkt)
            ()));
  let striper =
    Striper.create ~scheduler:sched
      (* The paper's no-resequencing variants run without the protocol's
         control plane entirely. *)
      ?marker:
        (if logical_reception then Some (Marker.make ~every_rounds:8 ())
         else None)
      ~now:(fun () -> Sim.now sim)
      ~emit:(fun ~channel pkt ->
        ignore
          (Link.send wires.(channel)
             ~size:(wire_size links.(channel) pkt.Packet.size)
             pkt))
      ()
  in
  (* Ack path: lossless, fast, bypasses the striped direction. *)
  let tcp_tx = ref None in
  let ack_wire =
    Link.create sim ~name:"acks" ~rate_bps:1e8 ~prop_delay:0.002
      ~deliver:(fun ack ->
        match !tcp_tx with Some s -> Tcp_lite.Sender.on_ack s ack | None -> ())
      ()
  in
  let goodput = Stripe_metrics.Throughput.create () in
  Stripe_metrics.Throughput.start_at goodput 0.0;
  let rx =
    Tcp_lite.Receiver.create
      ~send_ack:(fun a -> ignore (Link.send ack_wire ~size:40 a))
      ~deliver:(fun ~bytes ->
        Stripe_metrics.Throughput.account goodput ~now:(Sim.now sim) ~bytes)
      ()
  in
  tcp_rx := Some rx;
  (* The paper's sending program: a random mixture of small and large
     packets. Sizes are TCP payload; 40 bytes of TCP/IP header ride each
     segment on the wire. *)
  let seg_gen =
    Stripe_workload.Genpkt.bimodal ~rng ~small:Sizes.small_packet
      ~large:Sizes.large_packet ()
  in
  let seq = ref 0 in
  let tx =
    Tcp_lite.Sender.create sim ~window:262144 ~rto:0.25
      ~next_segment_size:(fun () -> seg_gen ())
      ~transmit:(fun ~off ~size ->
        (* Send-side CPU, then the striping layer. *)
        Cpu.execute tx_cpu ~cost:tx_per_packet_cost (fun () ->
            let pkt =
              Packet.data ~seq:!seq ~off ~born:(Sim.now sim)
                ~size:(size + tcp_ip_headers) ()
            in
            incr seq;
            Striper.push striper pkt))
      ()
  in
  tcp_tx := Some tx;
  Tcp_lite.Sender.start tx;
  Sim.run_until sim duration;
  Tcp_lite.Sender.shutdown tx;
  Sim.run sim;
  {
    goodput_mbps =
      (* Rate over the fixed measurement window. *)
      float_of_int (Stripe_metrics.Throughput.bytes goodput * 8)
      /. duration /. 1e6;
    ooo_segments = !ooo;
    retransmissions = Tcp_lite.Sender.retransmissions tx;
    ring_drops = Array.fold_left (fun acc nic -> acc + Nic.ring_drops nic) 0 nics;
    interrupts = Array.fold_left (fun acc nic -> acc + Nic.interrupts nic) 0 nics;
    rx_packets = Array.fold_left (fun acc nic -> acc + Nic.packets nic) 0 nics;
  }

(* Upper bound of Figure 15: the sum of the two interfaces' individual
   TCP throughputs, measured one at a time (only one interface active,
   so the receiver gets maximal interrupt coalescing). *)
let upper_bound ?duration ?seed ~atm_bps () =
  let eth =
    run_striped_tcp ?duration ?seed ~links:[| Ethernet |] ~scheme:Rr_scheme
      ~logical_reception:false ()
  in
  let atm =
    run_striped_tcp ?duration ?seed ~links:[| Atm atm_bps |] ~scheme:Rr_scheme
      ~logical_reception:false ()
  in
  eth.goodput_mbps +. atm.goodput_mbps

let hr () = print_endline (String.make 78 '=')

let section title =
  hr ();
  print_endline title;
  hr ()
