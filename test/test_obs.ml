(* Tests for the structured observability subsystem (Stripe_obs): typed
   event export, pluggable sinks, the per-channel counter registry, and
   the trace-driven theorem checkers — Theorem 4.1 (FIFO delivery) and
   Theorem 5.1 (marker resynchronization) verified mechanically against a
   recorded event stream. *)

open Stripe_core
open Stripe_packet
module Obs = Stripe_obs

let test_event_json () =
  let e =
    Obs.Event.v ~channel:2 ~round:3 ~dc:150 ~size:700 ~seq:42 ~time:1.5
      Obs.Event.Deliver
  in
  Alcotest.(check string) "json object"
    "{\"t\":1.500000000,\"ev\":\"deliver\",\"ch\":2,\"round\":3,\"dc\":150,\"size\":700,\"seq\":42}"
    (Obs.Event.to_json e)

let test_event_csv () =
  Alcotest.(check string) "header" "time,event,channel,round,dc,size,seq"
    Obs.Event.csv_header;
  let e = Obs.Event.v ~channel:0 ~time:0.25 Obs.Event.Drop in
  Alcotest.(check string) "row with sentinel fields"
    "0.250000000,drop,0,-1,0,-1,-1" (Obs.Event.to_csv e)

let test_kind_names_roundtrip () =
  List.iter
    (fun k ->
      let name = Obs.Event.kind_name k in
      match Obs.Event.kind_of_name name with
      | Some k' -> Alcotest.(check bool) name true (k = k')
      | None -> Alcotest.failf "kind %s does not parse back" name)
    Obs.Event.
      [
        Enqueue; Dequeue; Transmit; Drop; Txq_drop; Arrival; Marker_sent;
        Marker_applied; Skip; Block; Unblock; Reset_barrier; Deliver; Round;
      ];
  Alcotest.(check bool) "unknown name rejected" true
    (Obs.Event.kind_of_name "bogus" = None)

let seq_event i =
  Obs.Event.v ~seq:i ~time:(float_of_int i) Obs.Event.Enqueue

let recorded_seqs sink =
  List.map (fun e -> e.Obs.Event.seq) (Obs.Sink.events sink)

let test_collector_sink () =
  Alcotest.(check bool) "null sink inactive" false
    (Obs.Sink.active Obs.Sink.null);
  let c = Obs.Sink.collector () in
  Alcotest.(check bool) "collector active" true (Obs.Sink.active c);
  for i = 0 to 9 do
    Obs.Sink.emit c (seq_event i)
  done;
  Alcotest.(check (list int)) "emission order preserved" (List.init 10 Fun.id)
    (recorded_seqs c)

let test_ring_sink () =
  let r = Obs.Sink.ring ~capacity:4 in
  for i = 0 to 9 do
    Obs.Sink.emit r (seq_event i)
  done;
  Alcotest.(check (list int)) "most recent events, oldest first" [ 6; 7; 8; 9 ]
    (recorded_seqs r);
  let small = Obs.Sink.ring ~capacity:4 in
  Obs.Sink.emit small (seq_event 0);
  Alcotest.(check (list int)) "partial fill" [ 0 ] (recorded_seqs small)

let test_tee_sink () =
  Alcotest.(check bool) "tee of nulls collapses to inactive" false
    (Obs.Sink.active (Obs.Sink.tee Obs.Sink.null Obs.Sink.null));
  let a = Obs.Sink.collector () and b = Obs.Sink.collector () in
  let t = Obs.Sink.tee a b in
  Obs.Sink.emit t (seq_event 7);
  Alcotest.(check (list int)) "left side fed" [ 7 ] (recorded_seqs a);
  Alcotest.(check (list int)) "right side fed" [ 7 ] (recorded_seqs b);
  Alcotest.(check (list int)) "tee reads back from retaining side" [ 7 ]
    (recorded_seqs t)

let test_file_sinks () =
  let path = Filename.temp_file "stripe_obs" ".jsonl" in
  let oc = open_out path in
  let s = Obs.Sink.jsonl oc in
  Obs.Sink.emit s (Obs.Event.v ~channel:1 ~size:700 ~time:0.5 Obs.Event.Transmit);
  Obs.Sink.flush s;
  close_out oc;
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "one JSON object per line"
    "{\"t\":0.500000000,\"ev\":\"transmit\",\"ch\":1,\"round\":-1,\"dc\":0,\"size\":700,\"seq\":-1}"
    line;
  let path = Filename.temp_file "stripe_obs" ".csv" in
  let oc = open_out path in
  let s = Obs.Sink.csv oc in
  Obs.Sink.emit s (Obs.Event.v ~channel:0 ~time:1.0 Obs.Event.Skip);
  Obs.Sink.flush s;
  close_out oc;
  let ic = open_in path in
  let header = input_line ic in
  let row = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "csv header first" Obs.Event.csv_header header;
  Alcotest.(check string) "csv row" "1.000000000,skip,0,-1,0,-1,-1" row

let test_counters_registry () =
  let reg = Obs.Counters.create ~n:2 in
  let s = Obs.Counters.sink reg in
  let emit ?channel ?round ?dc ?size ?seq kind =
    Obs.Sink.emit s (Obs.Event.v ?channel ?round ?dc ?size ?seq ~time:0.0 kind)
  in
  emit ~channel:0 ~size:700 Obs.Event.Transmit;
  emit ~channel:0 ~size:700 ~seq:0 Obs.Event.Enqueue;
  emit ~channel:0 ~size:300 ~seq:1 Obs.Event.Enqueue;
  emit ~channel:0 ~size:700 ~seq:0 Obs.Event.Deliver;
  emit ~channel:1 Obs.Event.Drop;
  emit ~channel:1 Obs.Event.Skip;
  emit ~channel:0 Obs.Event.Marker_sent;
  emit ~channel:0 Obs.Event.Marker_applied;
  emit ~round:3 Obs.Event.Round;
  emit Obs.Event.Reset_barrier;
  emit ~channel:9 Obs.Event.Drop;
  (* out of range: global count only *)
  let c0 = Obs.Counters.channel reg 0 and c1 = Obs.Counters.channel reg 1 in
  Alcotest.(check int) "tx packets" 1 c0.Obs.Counters.tx_packets;
  Alcotest.(check int) "tx bytes" 700 c0.Obs.Counters.tx_bytes;
  Alcotest.(check int) "high-water occupancy peaks at 2" 2
    c0.Obs.Counters.hw_buffered_packets;
  Alcotest.(check int) "occupancy after one delivery" 1
    c0.Obs.Counters.buffered_packets;
  Alcotest.(check int) "delivered" 1 c0.Obs.Counters.delivered_packets;
  Alcotest.(check int) "markers" 1 c0.Obs.Counters.markers_sent;
  Alcotest.(check int) "drops on ch1" 1 c1.Obs.Counters.drops;
  Alcotest.(check int) "skips on ch1" 1 c1.Obs.Counters.skips;
  Alcotest.(check int) "per-channel drop total ignores unknown channel" 1
    (Obs.Counters.total_drops reg);
  Alcotest.(check int) "rounds high water" 3 (Obs.Counters.rounds reg);
  Alcotest.(check int) "resets" 1 (Obs.Counters.resets reg);
  Alcotest.(check int) "every event counted" 11 (Obs.Counters.events_seen reg)

(* A synchronous striper/resequencer pair sharing one sink, as in
   test_resequencer's Pair but instrumented. *)
module Pair = struct
  type t = {
    striper : Striper.t;
    reseq : Resequencer.t;
    wires : Packet.t Queue.t array;
  }

  let create ?marker ~quanta ~sink () =
    let n = Array.length quanta in
    let engine = Srr.create ~quanta () in
    let wires = Array.init n (fun _ -> Queue.create ()) in
    let reseq =
      Resequencer.create ~deficit:(Deficit.clone_initial engine) ~sink
        ~deliver:(fun ~channel:_ _ -> ())
        ()
    in
    let striper =
      Striper.create
        ~scheduler:(Scheduler.of_deficit ~name:"SRR" engine)
        ?marker ~sink
        ~emit:(fun ~channel pkt -> Queue.add pkt wires.(channel))
        ()
    in
    { striper; reseq; wires }

  let send t sizes =
    List.iteri
      (fun seq size -> Striper.push t.striper (Packet.data ~seq ~size ()))
      sizes

  let shuttle ~rng t =
    let nonempty () =
      Array.to_list t.wires
      |> List.mapi (fun i q -> (i, q))
      |> List.filter (fun (_, q) -> not (Queue.is_empty q))
    in
    let rec go () =
      match nonempty () with
      | [] -> ()
      | live ->
        let c, q =
          List.nth live (Stripe_netsim.Rng.int rng (List.length live))
        in
        Resequencer.receive t.reseq ~channel:c (Queue.pop q);
        go ()
    in
    go ()
end

let test_theorem41_trace_check () =
  (* Theorem 4.1 verified against the event stream rather than the
     delivery callback: a clean run's Deliver events must carry the
     sender's sequence in order. Counters are tee'd alongside to
     cross-check totals against the trace. *)
  let rng = Stripe_netsim.Rng.create 7 in
  let reg = Obs.Counters.create ~n:3 in
  let collector = Obs.Sink.collector () in
  let sink = Obs.Sink.tee (Obs.Counters.sink reg) collector in
  let pair = Pair.create ~quanta:[| 1500; 1500; 1500 |] ~sink () in
  let sizes = List.init 400 (fun _ -> 50 + Stripe_netsim.Rng.int rng 1450) in
  Pair.send pair sizes;
  Pair.shuttle ~rng pair;
  let events = Obs.Sink.events collector in
  Alcotest.(check (list (pair int int))) "Theorem 4.1: no FIFO violations" []
    (Obs.Check.fifo_violations events);
  Alcotest.(check (list int)) "every packet delivered once, in order"
    (List.init 400 Fun.id)
    (Obs.Check.delivered_seqs events);
  Alcotest.(check int) "counters agree with trace" 400
    (Obs.Counters.total_delivered_packets reg);
  Alcotest.(check int) "transmitted bytes accounted"
    (List.fold_left ( + ) 0 sizes)
    (Obs.Counters.total_tx_bytes reg);
  Alcotest.(check int) "transmit events match sends" 400
    (Obs.Check.count Obs.Event.Transmit events)

let test_scheduler_round_events () =
  let sink = Obs.Sink.collector () in
  let sched = Scheduler.srr ~quanta:[| 100; 100 |] () in
  Scheduler.observe sched sink;
  let striper =
    Striper.create ~scheduler:sched ~emit:(fun ~channel:_ _ -> ()) ()
  in
  for seq = 0 to 7 do
    Striper.push striper (Packet.data ~seq ~size:100 ())
  done;
  (* 8 packets over 2 channels at one packet per visit = 4 rounds; each
     round's last consume wraps the pointer into the next, so the wraps
     land in rounds 1..4. *)
  let rounds =
    List.filter_map
      (fun e ->
        if e.Obs.Event.kind = Obs.Event.Round then Some e.Obs.Event.round
        else None)
      (Obs.Sink.events sink)
  in
  Alcotest.(check (list int)) "one event per round wrap" [ 1; 2; 3; 4 ] rounds

let test_theorem51_trace_check () =
  (* A lossy simulated run, traced end to end: links emit wire events,
     the striper stamps transmissions, the resequencer reports skips and
     deliveries. Losses stop halfway; Theorem 5.1 promises no Skip event
     later than one marker interval (plus the one-way delay) after the
     last Drop, and FIFO delivery from that point on. *)
  let open Stripe_netsim in
  let sim = Sim.create () in
  let rng = Rng.create 11 in
  let trace = Obs.Sink.collector () in
  let engine = Srr.create ~quanta:[| 1500; 1500 |] () in
  let lossy = ref true in
  let errors_stop = ref 0.0 in
  let reseq =
    Resequencer.create
      ~deficit:(Deficit.clone_initial engine)
      ~now:(fun () -> Sim.now sim)
      ~sink:trace
      ~deliver:(fun ~channel:_ _ -> ())
      ()
  in
  let links =
    Array.init 2 (fun i ->
        Link.create sim
          ~name:(Printf.sprintf "ch%d" i)
          ~rate_bps:8e6 ~prop_delay:0.005 ~channel:i ~sink:trace
          ~deliver:(fun pkt ->
            let dropped =
              !lossy
              && (not (Packet.is_marker pkt))
              && Rng.bernoulli rng ~p:0.25
            in
            if dropped then
              Obs.Sink.emit trace
                (Obs.Event.v ~time:(Sim.now sim) ~channel:i
                   ~size:pkt.Packet.size Obs.Event.Drop)
            else Resequencer.receive reseq ~channel:i pkt)
          ())
  in
  let every_rounds = 4 in
  let striper =
    Striper.create
      ~scheduler:(Scheduler.of_deficit ~name:"SRR" engine)
      ~marker:(Marker.make ~every_rounds ())
      ~now:(fun () -> Sim.now sim)
      ~sink:trace
      ~emit:(fun ~channel pkt ->
        ignore (Link.send links.(channel) ~size:pkt.Packet.size pkt))
      ()
  in
  let n_packets = 3000 and size = 700 in
  (* Offer ~90% of the 16 Mbps aggregate. *)
  let interval = float_of_int (size * 8) /. (16e6 *. 0.9) in
  let seq = ref 0 in
  let rec tick () =
    if !seq < n_packets then begin
      Striper.push striper (Packet.data ~seq:!seq ~born:(Sim.now sim) ~size ());
      incr seq;
      if 2 * !seq >= n_packets && !lossy then begin
        lossy := false;
        errors_stop := Sim.now sim
      end;
      Sim.schedule_after sim ~delay:interval tick
    end
  in
  tick ();
  Sim.run sim;
  let events = Obs.Sink.events trace in
  Alcotest.(check bool) "losses occurred" true
    (Obs.Check.count Obs.Event.Drop events > 0);
  Alcotest.(check bool) "receiver skipped channel visits" true
    (Obs.Check.count Obs.Event.Skip events > 0);
  (* One round moves ~2 * 1500 quantum bytes at the offered rate; the
     marker interval is [every_rounds] such rounds. One extra round of
     slack absorbs the boundary discretization (a marker is only sent
     when the round it stamps begins). *)
  let round_time = float_of_int (2 * 1500 * 8) /. (16e6 *. 0.9) in
  let bound =
    (float_of_int (every_rounds + 1) *. round_time) +. 0.005
  in
  Alcotest.(check bool)
    "Theorem 5.1: no skip later than a marker interval after the last drop"
    true
    (Obs.Check.resync_within ~bound events);
  Alcotest.(check bool) "FIFO delivery restored after resynchronization" true
    (Obs.Check.fifo_from ~time:(!errors_stop +. bound) events)

let test_channel_report () =
  let reg = Obs.Counters.create ~n:2 in
  let s = Obs.Counters.sink reg in
  Obs.Sink.emit s (Obs.Event.v ~channel:0 ~size:700 ~time:0.0 Obs.Event.Transmit);
  Obs.Sink.emit s (Obs.Event.v ~channel:1 ~time:0.0 Obs.Event.Drop);
  let rendered = Stripe_metrics.Channel_report.render reg in
  Alcotest.(check bool) "table mentions both channels" true
    (String.length rendered > 0);
  let balance = Stripe_metrics.Channel_report.balance reg in
  Alcotest.(check int) "one summary point per channel" 2
    (Stripe_metrics.Summary.count balance);
  Alcotest.(check (float 1e-9)) "balance totals tx bytes" 700.0
    (Stripe_metrics.Summary.total balance)

let suites =
  [
    ( "obs",
      [
        Alcotest.test_case "event json export" `Quick test_event_json;
        Alcotest.test_case "event csv export" `Quick test_event_csv;
        Alcotest.test_case "kind names roundtrip" `Quick
          test_kind_names_roundtrip;
        Alcotest.test_case "collector sink" `Quick test_collector_sink;
        Alcotest.test_case "ring sink" `Quick test_ring_sink;
        Alcotest.test_case "tee sink" `Quick test_tee_sink;
        Alcotest.test_case "file sinks" `Quick test_file_sinks;
        Alcotest.test_case "counters registry" `Quick test_counters_registry;
        Alcotest.test_case "theorem 4.1 from trace" `Quick
          test_theorem41_trace_check;
        Alcotest.test_case "scheduler round events" `Quick
          test_scheduler_round_events;
        Alcotest.test_case "theorem 5.1 from trace" `Quick
          test_theorem51_trace_check;
        Alcotest.test_case "channel report" `Quick test_channel_report;
      ] );
  ]
