(* Tests for the sender-side striper: dispatch accounting, fairness of the
   dispatched bytes (Lemma 3.3), and marker emission policies. *)

open Stripe_core
open Stripe_packet

type emitted = { channel : int; packet : Packet.t }

let harness ?marker scheduler =
  let log = ref [] in
  let striper =
    Striper.create ~scheduler ?marker
      ~emit:(fun ~channel packet -> log := { channel; packet } :: !log)
      ()
  in
  (striper, fun () -> List.rev !log)

let feed striper sizes =
  List.iteri
    (fun seq size -> Striper.push striper (Packet.data ~seq ~size ()))
    sizes

let test_dispatch_counters () =
  let striper, _ = harness (Scheduler.srr ~quanta:[| 500; 500 |] ()) in
  feed striper [ 550; 200; 400; 150; 300; 400 ];
  Alcotest.(check int) "pushed packets" 6 (Striper.pushed_packets striper);
  Alcotest.(check int) "pushed bytes" 2000 (Striper.pushed_bytes striper);
  Alcotest.(check int) "ch0 packets" 3 (Striper.channel_packets striper 0);
  Alcotest.(check int) "ch0 bytes" 1000 (Striper.channel_bytes striper 0);
  Alcotest.(check int) "ch1 bytes" 1000 (Striper.channel_bytes striper 1);
  Alcotest.(check (option int)) "rounds" (Some 2) (Striper.rounds striper)

let test_rejects_marker_push () =
  let striper, _ = harness (Scheduler.srr ~quanta:[| 500; 500 |] ()) in
  Alcotest.check_raises "marker push rejected"
    (Invalid_argument "Striper.push: markers are generated internally")
    (fun () ->
      Striper.push striper (Packet.marker ~channel:0 ~round:0 ~dc:1 ~born:0.0 ()))

let test_marker_requires_cfq () =
  Alcotest.check_raises "marker policy on non-causal scheduler"
    (Invalid_argument
       "Striper.create: marker policy requires a CFQ (deficit-based) scheduler")
    (fun () ->
      ignore
        (Striper.create
           ~scheduler:(Scheduler.random_selection ~n:2 ~seed:1)
           ~marker:Marker.default ~emit:(fun ~channel:_ _ -> ())
           ()))

let count_markers log = List.length (List.filter (fun e -> Packet.is_marker e.packet) log)

let test_marker_frequency () =
  (* 2 equal channels, quantum = packet size: one packet per channel per
     round; 100 packets = 50 rounds. Markers every 5 rounds on both
     channels: the boundary fires on rounds 1, 5, 10, ... 50. *)
  let sched = Scheduler.srr ~quanta:[| 100; 100 |] () in
  let striper, log =
    harness ~marker:(Marker.make ~every_rounds:5 ()) sched
  in
  feed striper (List.init 100 (fun _ -> 100));
  let markers = count_markers (log ()) in
  (* Boundary batches at wrap into rounds 1, 5, 10, ..., 50: 11 batches of
     2 markers. *)
  Alcotest.(check int) "marker count" 22 markers;
  Alcotest.(check int) "striper counter agrees" 22 (Striper.markers_sent striper)

let test_round_start_markers_precede_data () =
  (* With markers every round at round start, each channel's stream must
     begin with a marker. *)
  let sched = Scheduler.srr ~quanta:[| 100; 100 |] () in
  let striper, log =
    harness ~marker:(Marker.make ~position:Marker.Round_start ~every_rounds:1 ()) sched
  in
  feed striper [ 100; 100; 100; 100 ];
  let first_per_channel = Array.make 2 None in
  List.iter
    (fun e ->
      if first_per_channel.(e.channel) = None then
        first_per_channel.(e.channel) <- Some (Packet.is_marker e.packet))
    (log ());
  Alcotest.(check (array (option bool))) "first frame on each channel is a marker"
    [| Some true; Some true |] first_per_channel

let test_round_end_markers_follow_round () =
  let sched = Scheduler.srr ~quanta:[| 100; 100 |] () in
  let striper, log =
    harness ~marker:(Marker.make ~position:Marker.Round_end ~every_rounds:1 ()) sched
  in
  feed striper [ 100; 100; 100; 100 ];
  let kinds =
    List.map (fun e -> (e.channel, Packet.is_marker e.packet)) (log ())
  in
  ignore striper;
  (* Round 0 data (ch0, ch1), then the boundary batch, then round 1 data,
     then its batch. *)
  Alcotest.(check (list (pair int bool))) "data then marker batches"
    [
      (0, false); (1, false); (0, true); (1, true);
      (0, false); (1, false); (0, true); (1, true);
    ]
    kinds

let test_mid_round_markers_staggered () =
  let sched = Scheduler.srr ~quanta:[| 100; 100; 100 |] () in
  let striper, log =
    harness ~marker:(Marker.make ~position:Marker.Mid_round ~every_rounds:1 ()) sched
  in
  feed striper [ 100; 100; 100 ];
  ignore striper;
  let kinds =
    List.map (fun e -> (e.channel, Packet.is_marker e.packet)) (log ())
  in
  (* Each channel's marker follows its own visit, inside the round. *)
  Alcotest.(check (list (pair int bool))) "markers interleave with visits"
    [ (0, false); (0, true); (1, false); (1, true); (2, false); (2, true) ]
    kinds

let test_marker_stamps_match_next_data () =
  (* Every marker's (round, dc) must equal the implicit number of the next
     data packet actually sent on that channel afterwards. *)
  let rng = Stripe_netsim.Rng.create 3 in
  let engine = Srr.create ~quanta:[| 1500; 1500 |] () in
  let sched = Scheduler.of_deficit ~name:"SRR" engine in
  let pending : (int, Packet.marker) Hashtbl.t = Hashtbl.create 8 in
  let ok = ref true in
  let striper = ref None in
  let emit ~channel pkt =
    if Packet.is_marker pkt then
      Hashtbl.replace pending channel (Packet.get_marker pkt)
    else (
      (match Hashtbl.find_opt pending channel with
      | Some m ->
        let r = Deficit.round engine and dc = Deficit.dc engine channel in
        if m.Packet.m_round <> r || m.Packet.m_dc <> dc then ok := false;
        Hashtbl.remove pending channel
      | None -> ()))
  in
  let s =
    Striper.create ~scheduler:sched ~marker:(Marker.make ~every_rounds:3 ())
      ~emit ()
  in
  striper := Some s;
  for seq = 0 to 999 do
    Striper.push s (Packet.data ~seq ~size:(100 + Stripe_netsim.Rng.int rng 1400) ())
  done;
  Alcotest.(check bool) "marker stamps always realized" true !ok

let fairness_of scheduler sizes max_packet =
  let striper, _ = harness scheduler in
  feed striper sizes;
  let d = Option.get (Scheduler.deficit (Striper.scheduler striper)) in
  let n = Scheduler.n_channels scheduler in
  let bytes = Array.init n (Striper.channel_bytes striper) in
  Fairness.measure ~deficit:d ~bytes ~max_packet

let test_srr_fairness_bound_random () =
  let rng = Stripe_netsim.Rng.create 21 in
  let sizes = List.init 5000 (fun _ -> 50 + Stripe_netsim.Rng.int rng 1450) in
  let report =
    fairness_of (Scheduler.srr ~quanta:[| 1500; 1500; 1500 |] ()) sizes 1500
  in
  Alcotest.(check bool) "within Max + 2*Quantum" true report.Fairness.within_bound

let test_srr_fairness_bound_adversarial () =
  (* The alternating big/small sequence that breaks GRR must leave SRR
     fair. *)
  let sizes = List.init 4000 (fun i -> if i mod 2 = 0 then 1000 else 200) in
  let report = fairness_of (Scheduler.srr ~quanta:[| 1000; 1000 |] ()) sizes 1000 in
  Alcotest.(check bool) "alternating sizes stay fair under SRR" true
    report.Fairness.within_bound;
  Alcotest.(check bool) "nearly perfect balance" true
    (Fairness.spread report.Fairness.bytes <= 3000)

let test_rr_unfair_on_alternation () =
  (* Table 1: round robin's load sharing is poor for variable sizes — all
     big packets ride one channel. *)
  let striper, _ = harness (Scheduler.rr ~n:2 ()) in
  feed striper (List.init 1000 (fun i -> if i mod 2 = 0 then 1000 else 200));
  let b0 = Striper.channel_bytes striper 0
  and b1 = Striper.channel_bytes striper 1 in
  Alcotest.(check bool)
    (Printf.sprintf "RR imbalance %d vs %d grows with execution" b0 b1)
    true
    (Fairness.spread [| b0; b1 |] >= 1000 * 400)

let test_fairness_bound_formula () =
  (* Theorem 3.2 / Lemma 3.3: the deviation bound is Max + 2 * Quantum,
     with Max the maximum packet size recorded at creation. *)
  let d = Srr.create ~max_packet:1500 ~quanta:[| 2000; 3000 |] () in
  Alcotest.(check int) "Max + 2*Quantum" (1500 + (2 * 3000))
    (Srr.fairness_bound d);
  (* Without a recorded Max, the bound assumes packets as large as the
     biggest quantum — the marker-recovery precondition's ceiling. *)
  let d = Srr.create ~quanta:[| 1000; 3000 |] () in
  Alcotest.(check int) "Max falls back to the largest quantum"
    (3000 + (2 * 3000))
    (Srr.fairness_bound d)

let test_for_rates_retains_max_packet () =
  (* 4 vs 8 Mbps with unit 1500 scales quanta to 1500 and 3000; the
     supplied Max must survive the delegation to [create] so the bound
     uses it (a dropped ~max_packet would silently widen the bound). *)
  let d =
    Srr.for_rates ~max_packet:1500 ~rates_bps:[| 4e6; 8e6 |]
      ~quantum_unit:1500 ()
  in
  Alcotest.(check int) "bound built from the supplied Max" (1500 + (2 * 3000))
    (Srr.fairness_bound d);
  (* A skew that rounds the smallest quantum below Max used to slip
     through to [create] and raise (or, without max_packet, silently
     violate Thm 5.1's precondition). Now every quantum is scaled up by
     a common factor instead: proportions survive, the precondition
     holds. Unit 100 gives raw quanta [100; 200]; factor 15 restores
     Quantum_i >= Max. *)
  let d =
    Srr.for_rates ~max_packet:1500 ~rates_bps:[| 4e6; 8e6 |] ~quantum_unit:100
      ()
  in
  Alcotest.(check (array int)) "undersized quanta scaled up proportionally"
    [| 1500; 3000 |] (Deficit.quanta d);
  Alcotest.(check int) "bound uses the scaled quanta" (1500 + (2 * 3000))
    (Srr.fairness_bound d)

let test_for_rates_clamps_rounding () =
  (* Underflow side: tiny ratios still clamp to a positive quantum. *)
  let d = Srr.for_rates ~rates_bps:[| 1.0; 1.0001 |] ~quantum_unit:1 () in
  Alcotest.(check bool) "all quanta at least 1" true
    (Array.for_all (fun q -> q >= 1) (Deficit.quanta d));
  (* Overflow side: a ratio past int_of_float's domain used to produce
     garbage quanta; it is now a clear error. *)
  Alcotest.(check bool) "unrepresentable skew rejected" true
    (try
       ignore (Srr.for_rates ~rates_bps:[| 1e300; 1.0 |] ~quantum_unit:1 ());
       false
     with Invalid_argument msg ->
       (* The message should diagnose the skew, not be a generic
          positivity complaint. *)
       String.length msg > 0
       && String.sub msg 0 20 = "Srr.quanta_for_rates")

let prop_srr_fairness =
  QCheck.Test.make
    ~name:"striper: SRR deviation bounded by Max + 2*Quantum on random loads"
    ~count:60
    QCheck.(pair (int_range 2 6) (list_of_size (Gen.return 800) (int_range 1 1500)))
    (fun (n, sizes) ->
      let report =
        fairness_of (Scheduler.srr ~quanta:(Array.make n 1500) ()) sizes 1500
      in
      report.Fairness.within_bound)

let prop_weighted_srr_fairness =
  QCheck.Test.make
    ~name:"striper: weighted SRR respects proportional entitlements" ~count:40
    QCheck.(list_of_size (Gen.return 1500) (int_range 1 1000))
    (fun sizes ->
      let quanta = [| 1000; 2000; 3000 |] in
      let report =
        fairness_of (Scheduler.srr ~quanta ()) sizes 1000
      in
      report.Fairness.within_bound)

let suites =
  [
    ( "striper",
      [
        Alcotest.test_case "dispatch counters" `Quick test_dispatch_counters;
        Alcotest.test_case "rejects marker push" `Quick test_rejects_marker_push;
        Alcotest.test_case "marker requires cfq" `Quick test_marker_requires_cfq;
        Alcotest.test_case "marker frequency" `Quick test_marker_frequency;
        Alcotest.test_case "round start position" `Quick
          test_round_start_markers_precede_data;
        Alcotest.test_case "round end position" `Quick
          test_round_end_markers_follow_round;
        Alcotest.test_case "mid round position" `Quick test_mid_round_markers_staggered;
        Alcotest.test_case "marker stamps realized" `Quick
          test_marker_stamps_match_next_data;
        Alcotest.test_case "fairness random" `Quick test_srr_fairness_bound_random;
        Alcotest.test_case "fairness adversarial" `Quick
          test_srr_fairness_bound_adversarial;
        Alcotest.test_case "rr unfair" `Quick test_rr_unfair_on_alternation;
        Alcotest.test_case "fairness bound formula" `Quick
          test_fairness_bound_formula;
        Alcotest.test_case "for_rates retains max packet" `Quick
          test_for_rates_retains_max_packet;
        Alcotest.test_case "for_rates clamps rounding" `Quick
          test_for_rates_clamps_rounding;
        QCheck_alcotest.to_alcotest prop_srr_fairness;
        QCheck_alcotest.to_alcotest prop_weighted_srr_fairness;
      ] );
  ]
