(* Tests for the IP substrate: addresses, routing with host-route
   override, ARP, interface demux, and the strIPe virtual interface
   end-to-end. *)

open Stripe_netsim
open Stripe_ipstack
open Stripe_packet

let test_addr_roundtrip () =
  let a = Ip.addr "192.168.1.2" in
  Alcotest.(check string) "roundtrip" "192.168.1.2" (Ip.addr_to_string a)

let test_addr_validation () =
  Alcotest.check_raises "bad octet"
    (Invalid_argument "Ip.addr: bad octet in 1.2.3.256") (fun () ->
      ignore (Ip.addr "1.2.3.256"));
  Alcotest.check_raises "not dotted quad"
    (Invalid_argument "Ip.addr: expected dotted quad, got 1.2.3") (fun () ->
      ignore (Ip.addr "1.2.3"))

let test_network_mask () =
  let a = Ip.addr "10.1.2.3" in
  Alcotest.(check string) "/24 network" "10.1.2.0"
    (Ip.addr_to_string (Ip.network a ~prefix:24));
  Alcotest.(check string) "/8 network" "10.0.0.0"
    (Ip.addr_to_string (Ip.network a ~prefix:8));
  Alcotest.(check bool) "same /24" true
    (Ip.same_network a (Ip.addr "10.1.2.99") ~prefix:24);
  Alcotest.(check bool) "different /24" false
    (Ip.same_network a (Ip.addr "10.1.3.1") ~prefix:24)

let test_routing_host_overrides_network () =
  (* The exact §6.1 trick: host routes to the receiver's addresses send
     traffic to the strIPe interface, overriding the network routes. *)
  let table = Routing.create () in
  Routing.add_network table (Ip.addr "10.1.0.0") ~prefix:16 "eth0";
  Routing.add_network table (Ip.addr "10.2.0.0") ~prefix:16 "eth1";
  Routing.add_host table (Ip.addr "10.1.0.9") "stripe0";
  Routing.add_host table (Ip.addr "10.2.0.9") "stripe0";
  Alcotest.(check (option string)) "host B on net1 -> stripe" (Some "stripe0")
    (Routing.lookup table (Ip.addr "10.1.0.9"));
  Alcotest.(check (option string)) "host B on net2 -> stripe" (Some "stripe0")
    (Routing.lookup table (Ip.addr "10.2.0.9"));
  Alcotest.(check (option string)) "other host on net1 -> eth0" (Some "eth0")
    (Routing.lookup table (Ip.addr "10.1.0.7"))

let test_routing_default_and_miss () =
  let table = Routing.create () in
  Alcotest.(check (option string)) "empty table misses" None
    (Routing.lookup table (Ip.addr "1.2.3.4"));
  Routing.add_default table "eth9";
  Alcotest.(check (option string)) "default catches" (Some "eth9")
    (Routing.lookup table (Ip.addr "1.2.3.4"))

let test_routing_remove_host () =
  let table = Routing.create () in
  Routing.add_network table (Ip.addr "10.0.0.0") ~prefix:8 "eth0";
  Routing.add_host table (Ip.addr "10.0.0.1") "stripe0";
  Routing.remove_host table (Ip.addr "10.0.0.1");
  Alcotest.(check (option string)) "falls back to network route" (Some "eth0")
    (Routing.lookup table (Ip.addr "10.0.0.1"))

let test_arp_cache_and_resolution () =
  let sim = Sim.create () in
  let arp =
    Arp.create sim ~resolve_delay:0.001
      ~lookup:(fun a -> if a = Ip.addr "10.0.0.2" then Some 0xBEEF else None)
      ()
  in
  let result = ref None in
  Arp.resolve arp (Ip.addr "10.0.0.2") (fun r -> result := Some (r, Sim.now sim));
  Alcotest.(check bool) "miss is asynchronous" true (!result = None);
  Sim.run sim;
  (match !result with
  | Some (Some 0xBEEF, t) ->
    Alcotest.(check (float 1e-9)) "resolved after delay" 0.001 t
  | _ -> Alcotest.fail "expected resolution");
  (* Second resolution hits the cache synchronously. *)
  let hit = ref false in
  Arp.resolve arp (Ip.addr "10.0.0.2") (fun _ -> hit := true);
  Alcotest.(check bool) "cache hit synchronous" true !hit;
  Alcotest.(check int) "one miss recorded" 1 (Arp.misses arp);
  Alcotest.(check int) "one hit recorded" 1 (Arp.hits arp)

let test_arp_unknown_address () =
  let sim = Sim.create () in
  let arp = Arp.create sim ~lookup:(fun _ -> None) () in
  let result = ref (Some 1) in
  Arp.resolve arp (Ip.addr "9.9.9.9") (fun r -> result := r);
  Sim.run sim;
  Alcotest.(check (option int)) "unresolvable" None !result

let test_arp_expiry () =
  let sim = Sim.create () in
  let arp = Arp.create sim ~entry_ttl:10.0 ~lookup:(fun _ -> Some 7) () in
  Arp.insert arp (Ip.addr "10.0.0.5") 7;
  Alcotest.(check (option int)) "cached" (Some 7) (Arp.cached arp (Ip.addr "10.0.0.5"));
  Sim.run_until sim 11.0;
  Alcotest.(check (option int)) "expired" None (Arp.cached arp (Ip.addr "10.0.0.5"))

(* Build a unidirectional wire: a sender-side iface whose link delivers
   into a receiver-side iface's rx. *)
let make_wire sim ~rate_bps ~mtu ~src_addr ~dst_addr =
  let arp = Arp.create sim ~lookup:(fun _ -> Some 0xAA) () in
  let rx_iface = ref None in
  let link =
    Link.create sim ~rate_bps ~prop_delay:0.001
      ~deliver:(fun frame ->
        match !rx_iface with Some i -> Iface.rx i frame | None -> ())
      ()
  in
  let tx =
    Iface.create sim ~name:"tx" ~addr:src_addr ~prefix:24 ~mtu ~arp ~link ()
  in
  let rx =
    Iface.create sim ~name:"rx" ~addr:dst_addr ~prefix:24 ~mtu ~arp ~link ()
  in
  rx_iface := Some rx;
  (tx, rx)

let test_iface_demux_by_codepoint () =
  let sim = Sim.create () in
  let tx, rx =
    make_wire sim ~rate_bps:1e7 ~mtu:1500 ~src_addr:(Ip.addr "10.0.0.1")
      ~dst_addr:(Ip.addr "10.0.0.2")
  in
  let got_ip = ref 0 and got_striped = ref 0 and got_marker = ref 0 in
  Iface.set_handler rx Iface.Cp_ip (fun _ -> incr got_ip);
  Iface.set_handler rx Iface.Cp_striped_ip (fun _ -> incr got_striped);
  Iface.set_handler rx Iface.Cp_marker (fun _ -> incr got_marker);
  let ip =
    Ip.make ~src:(Ip.addr "10.0.0.1") ~dst:(Ip.addr "10.0.0.2")
      (Packet.data ~seq:0 ~size:500 ())
  in
  Iface.send tx (Iface.Ip_frame ip);
  Iface.send tx (Iface.Striped_frame ip);
  Iface.send tx (Iface.Marker_frame (Packet.marker ~channel:0 ~round:0 ~dc:1 ~born:0.0 ()));
  Sim.run sim;
  Alcotest.(check int) "plain IP to IP handler" 1 !got_ip;
  Alcotest.(check int) "striped to stripe handler" 1 !got_striped;
  Alcotest.(check int) "marker to marker handler" 1 !got_marker;
  Alcotest.(check int) "tx counted" 3 (Iface.tx_frames tx);
  Alcotest.(check int) "rx counted" 3 (Iface.rx_frames rx)

let test_iface_unclaimed () =
  let sim = Sim.create () in
  let tx, rx =
    make_wire sim ~rate_bps:1e7 ~mtu:1500 ~src_addr:(Ip.addr "10.0.0.1")
      ~dst_addr:(Ip.addr "10.0.0.2")
  in
  let ip =
    Ip.make ~src:(Ip.addr "10.0.0.1") ~dst:(Ip.addr "10.0.0.2")
      (Packet.data ~seq:0 ~size:100 ())
  in
  Iface.send tx (Iface.Ip_frame ip);
  Sim.run sim;
  Alcotest.(check int) "no handler -> unclaimed" 1 (Iface.unclaimed_frames rx)

let test_iface_mtu_enforced () =
  let sim = Sim.create () in
  let tx, _ =
    make_wire sim ~rate_bps:1e7 ~mtu:576 ~src_addr:(Ip.addr "10.0.0.1")
      ~dst_addr:(Ip.addr "10.0.0.2")
  in
  let ip =
    Ip.make ~src:(Ip.addr "10.0.0.1") ~dst:(Ip.addr "10.0.0.2")
      (Packet.data ~seq:0 ~size:1500 ())
  in
  Alcotest.check_raises "oversize rejected"
    (Invalid_argument "Iface.send(tx): payload 1500 exceeds MTU 576") (fun () ->
      Iface.send tx (Iface.Ip_frame ip))

let test_arp_failure_counted () =
  let sim = Sim.create () in
  let arp = Arp.create sim ~lookup:(fun _ -> None) () in
  let link =
    Link.create sim ~rate_bps:1e7 ~prop_delay:0.001 ~deliver:(fun _ -> ()) ()
  in
  let tx =
    Iface.create sim ~name:"tx" ~addr:(Ip.addr "10.0.0.1") ~prefix:24 ~mtu:1500
      ~arp ~link ()
  in
  let ip =
    Ip.make ~src:(Ip.addr "10.0.0.1") ~dst:(Ip.addr "10.0.0.99")
      (Packet.data ~seq:0 ~size:100 ())
  in
  Iface.send tx (Iface.Ip_frame ip);
  Sim.run sim;
  Alcotest.(check int) "arp failure drop" 1 (Iface.arp_failures tx);
  Alcotest.(check int) "nothing transmitted" 0 (Iface.tx_frames tx)

(* Full strIPe stack: two member wires, a virtual interface on each node,
   host routes steering the flow through it. *)
let build_stripe_pair sim ~rates =
  let n = Array.length rates in
  let sender = Node.create ~name:"S" () in
  let receiver = Node.create ~name:"R" () in
  let wires =
    Array.init n (fun i ->
        make_wire sim ~rate_bps:rates.(i) ~mtu:1500
          ~src_addr:(Ip.addr (Printf.sprintf "10.%d.0.1" (i + 1)))
          ~dst_addr:(Ip.addr (Printf.sprintf "10.%d.0.9" (i + 1))))
  in
  let tx_members = Array.map fst wires in
  let rx_members = Array.map snd wires in
  let engine = Stripe_core.Srr.for_rates ~rates_bps:rates ~quantum_unit:1500 () in
  let sched = Stripe_core.Scheduler.of_deficit ~name:"SRR" engine in
  (* The wires are simplex (sender -> receiver), so the sender's receive
     path never sees a frame: disable its resequencer. With it enabled, a
     membership change would stage a receive-side transition whose
     barrier (the peer's matching reset) can never arrive on a
     one-directional harness. *)
  let tx_layer =
    Stripe_layer.create ~name:"stripe0" ~members:tx_members ~scheduler:sched
      ~marker:(Stripe_core.Marker.make ~every_rounds:4 ())
      ~now:(fun () -> Sim.now sim)
      ~resequence:false
      ~deliver_up:(fun _ -> ())
      ()
  in
  let rx_sched =
    Stripe_core.Scheduler.of_deficit ~name:"SRR"
      (Stripe_core.Deficit.clone_initial engine)
  in
  let rx_layer =
    Stripe_layer.create ~name:"stripe0" ~members:rx_members ~scheduler:rx_sched
      ~deliver_up:(fun ip -> Node.ip_input receiver ip)
      ()
  in
  Node.add_stripe sender tx_layer;
  Node.add_stripe receiver rx_layer;
  (* Host routes: both of R's addresses go through the stripe bundle. *)
  for i = 1 to n do
    Routing.add_host (Node.routing sender)
      (Ip.addr (Printf.sprintf "10.%d.0.9" i))
      "stripe0"
  done;
  (sender, receiver, tx_layer, rx_layer)

let test_stripe_layer_end_to_end () =
  let sim = Sim.create () in
  let sender, receiver, tx_layer, rx_layer =
    build_stripe_pair sim ~rates:[| 10e6; 4e6 |]
  in
  let seqs = ref [] in
  Node.set_protocol_handler receiver ~proto:17 (fun ip ->
      seqs := ip.Ip.body.Packet.seq :: !seqs);
  let rng = Rng.create 13 in
  for seq = 0 to 399 do
    let body = Packet.data ~seq ~size:(60 + Rng.int rng 1400) () in
    Node.send sender
      (Ip.make ~src:(Ip.addr "10.1.0.1") ~dst:(Ip.addr "10.1.0.9") body)
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "transparent, in-order delivery up to IP"
    (List.init 400 Fun.id) (List.rev !seqs);
  Alcotest.(check int) "sender striped everything" 400
    (Stripe_layer.sent_datagrams tx_layer);
  Alcotest.(check int) "receiver layer delivered everything" 400
    (Stripe_layer.delivered_datagrams rx_layer);
  Alcotest.(check int) "no reordering observed" 0
    (Stripe_core.Reorder.out_of_order (Stripe_layer.reorder rx_layer));
  Alcotest.(check bool) "both members carried traffic" true
    (let s = Stripe_layer.striper tx_layer in
     Stripe_core.Striper.channel_bytes s 0 > 0
     && Stripe_core.Striper.channel_bytes s 1 > 0)

(* Live bundle membership (PROTOCOL.md §11): grow from two members to
   three mid-stream, then remove the original first member, with traffic
   in every phase. Both layers perform the matching change (symmetric
   configuration), receive side first so its resequencer is staged
   before the sender's barrier arrives; delivery must stay FIFO
   throughout and the newcomer must actually carry load. *)
let test_stripe_layer_hot_add_remove () =
  let sim = Sim.create () in
  let sender, receiver, tx_layer, rx_layer =
    build_stripe_pair sim ~rates:[| 10e6; 10e6 |]
  in
  let seqs = ref [] in
  Node.set_protocol_handler receiver ~proto:17 (fun ip ->
      seqs := ip.Ip.body.Packet.seq :: !seqs);
  let rng = Rng.create 7 in
  let send_burst lo hi =
    for seq = lo to hi do
      let body = Packet.data ~seq ~size:(60 + Rng.int rng 1400) () in
      Node.send sender
        (Ip.make ~src:(Ip.addr "10.2.0.1") ~dst:(Ip.addr "10.2.0.9") body)
    done;
    Sim.run sim
  in
  send_burst 0 199;
  let tx3, rx3 =
    make_wire sim ~rate_bps:10e6 ~mtu:1500 ~src_addr:(Ip.addr "10.3.0.1")
      ~dst_addr:(Ip.addr "10.3.0.9")
  in
  Alcotest.(check int) "new member index (rx)" 2
    (Stripe_layer.add_member rx_layer ~quantum:1500 rx3);
  Alcotest.(check int) "new member index (tx)" 2
    (Stripe_layer.add_member tx_layer ~quantum:1500 tx3);
  send_burst 200 399;
  Alcotest.(check int) "three members" 3 (Stripe_layer.n_members tx_layer);
  Alcotest.(check bool) "newcomer carried traffic" true
    (Stripe_core.Striper.channel_bytes (Stripe_layer.striper tx_layer) 2 > 0);
  Stripe_layer.remove_member rx_layer 0;
  Stripe_layer.remove_member tx_layer 0;
  send_burst 400 599;
  Alcotest.(check int) "two members left" 2 (Stripe_layer.n_members tx_layer);
  Alcotest.(check (list int)) "FIFO across add and remove"
    (List.init 600 Fun.id) (List.rev !seqs);
  Alcotest.(check int) "no reordering observed" 0
    (Stripe_core.Reorder.out_of_order (Stripe_layer.reorder rx_layer));
  Alcotest.(check int) "every datagram accounted" 600
    (Stripe_layer.delivered_datagrams rx_layer)

let test_stripe_layer_mtu_is_min () =
  let sim = Sim.create () in
  let w1_tx, _ =
    make_wire sim ~rate_bps:1e7 ~mtu:1500 ~src_addr:(Ip.addr "10.1.0.1")
      ~dst_addr:(Ip.addr "10.1.0.9")
  and w2_tx, _ =
    make_wire sim ~rate_bps:1e7 ~mtu:576 ~src_addr:(Ip.addr "10.2.0.1")
      ~dst_addr:(Ip.addr "10.2.0.9")
  in
  let sched = Stripe_core.Scheduler.srr ~quanta:[| 1500; 1500 |] () in
  let layer =
    Stripe_layer.create ~name:"stripe0" ~members:[| w1_tx; w2_tx |]
      ~scheduler:sched ~deliver_up:(fun _ -> ()) ()
  in
  Alcotest.(check int) "bundle MTU = min member MTU" 576 (Stripe_layer.mtu layer);
  let ip =
    Ip.make ~src:(Ip.addr "10.1.0.1") ~dst:(Ip.addr "10.1.0.9")
      (Packet.data ~seq:0 ~size:1000 ())
  in
  Alcotest.check_raises "oversize datagram rejected"
    (Invalid_argument "Stripe_layer.send(stripe0): datagram 1000 exceeds bundle MTU 576")
    (fun () -> Stripe_layer.send layer ip)

let test_stripe_layer_no_resequence_variant () =
  let sim = Sim.create () in
  (* Fast and slow member: without logical reception, arrival order leaks
     through to IP. *)
  let w1_tx, w1_rx =
    make_wire sim ~rate_bps:50e6 ~mtu:1500 ~src_addr:(Ip.addr "10.1.0.1")
      ~dst_addr:(Ip.addr "10.1.0.9")
  and w2_tx, w2_rx =
    make_wire sim ~rate_bps:1e6 ~mtu:1500 ~src_addr:(Ip.addr "10.2.0.1")
      ~dst_addr:(Ip.addr "10.2.0.9")
  in
  let tx_layer =
    Stripe_layer.create ~name:"stripe0" ~members:[| w1_tx; w2_tx |]
      ~scheduler:(Stripe_core.Scheduler.srr ~quanta:[| 1500; 1500 |] ())
      ~resequence:false ~deliver_up:(fun _ -> ()) ()
  in
  let reorder = ref 0 in
  let seen = ref (-1) in
  let rx_layer =
    Stripe_layer.create ~name:"stripe0" ~members:[| w1_rx; w2_rx |]
      ~scheduler:(Stripe_core.Scheduler.srr ~quanta:[| 1500; 1500 |] ())
      ~resequence:false
      ~deliver_up:(fun ip ->
        let s = ip.Ip.body.Packet.seq in
        if s < !seen then incr reorder;
        if s > !seen then seen := s)
      ()
  in
  Alcotest.(check bool) "no resequencer in this mode" true
    (Stripe_layer.resequencer rx_layer = None);
  for seq = 0 to 199 do
    Stripe_layer.send tx_layer
      (Ip.make ~src:(Ip.addr "10.1.0.1") ~dst:(Ip.addr "10.1.0.9")
         (Packet.data ~seq ~size:1000 ()))
  done;
  Sim.run sim;
  Alcotest.(check bool)
    (Printf.sprintf "skew reorders %d datagrams without logical reception" !reorder)
    true (!reorder > 0)

let test_node_no_route () =
  let node = Node.create ~name:"S" () in
  Node.send node
    (Ip.make ~src:(Ip.addr "10.0.0.1") ~dst:(Ip.addr "10.0.0.2")
       (Packet.data ~seq:0 ~size:100 ()));
  Alcotest.(check int) "no-route drop counted" 1 (Node.no_route_drops node)

let suites =
  [
    ( "ipstack",
      [
        Alcotest.test_case "addr roundtrip" `Quick test_addr_roundtrip;
        Alcotest.test_case "addr validation" `Quick test_addr_validation;
        Alcotest.test_case "network mask" `Quick test_network_mask;
        Alcotest.test_case "host route override" `Quick
          test_routing_host_overrides_network;
        Alcotest.test_case "default route" `Quick test_routing_default_and_miss;
        Alcotest.test_case "remove host route" `Quick test_routing_remove_host;
        Alcotest.test_case "arp cache" `Quick test_arp_cache_and_resolution;
        Alcotest.test_case "arp unknown" `Quick test_arp_unknown_address;
        Alcotest.test_case "arp expiry" `Quick test_arp_expiry;
        Alcotest.test_case "iface demux" `Quick test_iface_demux_by_codepoint;
        Alcotest.test_case "iface unclaimed" `Quick test_iface_unclaimed;
        Alcotest.test_case "iface mtu" `Quick test_iface_mtu_enforced;
        Alcotest.test_case "arp failure" `Quick test_arp_failure_counted;
        Alcotest.test_case "stripe end-to-end" `Quick test_stripe_layer_end_to_end;
        Alcotest.test_case "stripe hot add/remove" `Quick
          test_stripe_layer_hot_add_remove;
        Alcotest.test_case "stripe mtu min" `Quick test_stripe_layer_mtu_is_min;
        Alcotest.test_case "stripe no-reseq variant" `Quick
          test_stripe_layer_no_resequence_variant;
        Alcotest.test_case "node no route" `Quick test_node_no_route;
      ] );
  ]
