(* Tests for the deficit-counter engine, including the paper's Figure 5/6
   worked example as a golden trace of DC values. *)

open Stripe_core

let stamp = Alcotest.testable (fun fmt (s : Deficit.stamp) ->
    Format.fprintf fmt "(R=%d,DC=%d)" s.round s.dc)
    (fun a b -> a = b)

(* The paper's example: two channels, quantum 500 each; input packets
   a(550) d(200) e(400) b(150) c(300) f(400) with the SRR assignment
   a->ch0, d,e->ch1, b,c->ch0, f->ch1 (Figure 6). *)
let paper_sizes = [ 550; 200; 400; 150; 300; 400 ]
let paper_channels = [ 0; 1; 1; 0; 0; 1 ]

let test_figure6_assignment () =
  let d = Srr.create ~quanta:[| 500; 500 |] () in
  let assignment =
    List.map
      (fun size ->
        let c = Deficit.select d in
        Deficit.consume d ~size;
        c)
      paper_sizes
  in
  Alcotest.(check (list int)) "Figure 6 channel assignment" paper_channels
    assignment

let test_figure5_dc_trace () =
  let d = Srr.create ~quanta:[| 500; 500 |] () in
  let events = ref [] in
  Deficit.set_hook d (Some (fun e -> events := e :: !events));
  List.iter
    (fun size ->
      ignore (Deficit.select d);
      Deficit.consume d ~size)
    paper_sizes;
  let dc_trace =
    List.rev !events
    |> List.filter_map (function
         | Deficit.Consume { channel; dc_after; _ } -> Some (channel, dc_after)
         | Deficit.Begin_visit _ | Deficit.End_visit _ | Deficit.New_round _
         | Deficit.Retune _ ->
           None)
  in
  (* Figure 5's DC narration: ch1 500-550=-50; ch2 500-200=300, 300-400=-100;
     round 2: ch1 450-150=300, 300-300=0; ch2 400-400=0. *)
  Alcotest.(check (list (pair int int))) "Figure 5 DC values after each send"
    [ (0, -50); (1, 300); (1, -100); (0, 300); (0, 0); (1, 0) ]
    dc_trace

let test_figure5_round_structure () =
  let d = Srr.create ~quanta:[| 500; 500 |] () in
  List.iter
    (fun size ->
      ignore (Deficit.select d);
      Deficit.consume d ~size)
    paper_sizes;
  (* After f the second round completes: both visits ended with DC = 0. *)
  Alcotest.(check int) "two rounds completed" 2 (Deficit.round d);
  Alcotest.(check int) "ch0 DC carried" 0 (Deficit.dc d 0);
  Alcotest.(check int) "ch1 DC carried" 0 (Deficit.dc d 1)

let test_overdraw_penalty () =
  (* A channel that overdraws by x starts its next visit with quantum - x:
     the paper's "penalized by this amount in the next round". *)
  let d = Srr.create ~quanta:[| 500; 500 |] () in
  ignore (Deficit.select d);
  Deficit.consume d ~size:900;
  (* ch0 overdrew to -400. *)
  Alcotest.(check int) "overdraw recorded" (-400) (Deficit.dc d 0);
  ignore (Deficit.select d);
  Deficit.consume d ~size:500;
  (* ch1's visit ends exactly at zero; next visit of ch0 gets
     500 - 400 = 100. *)
  ignore (Deficit.select d);
  Alcotest.(check int) "pointer back at ch0" 0 (Deficit.current d);
  Alcotest.(check int) "penalized quantum" 100 (Deficit.dc d 0)

let test_deep_overdraw_skips_rounds () =
  (* DC so negative that one quantum does not recover: the channel is
     passed over for entire rounds until it is positive again. *)
  let d = Deficit.create ~quanta:[| 100; 100 |] () in
  ignore (Deficit.select d);
  Deficit.consume d ~size:350;
  (* ch0 at -250; needs 3 quanta to reach +50. *)
  ignore (Deficit.select d);
  Deficit.consume d ~size:100;
  (* round 1 begins; ch0: -250+100 = -150 -> skipped; ch1 serves. *)
  Alcotest.(check int) "ch1 selected while ch0 recovers" 1 (Deficit.select d);
  Deficit.consume d ~size:100;
  Alcotest.(check int) "ch1 again in round 2" 1 (Deficit.select d);
  Deficit.consume d ~size:100;
  Alcotest.(check int) "ch0 back in round 3" 0 (Deficit.select d);
  Alcotest.(check int) "ch0 recovered DC" 50 (Deficit.dc d 0)

let test_packets_mode_rr () =
  let d = Rr.create ~n:3 () in
  let picks =
    List.init 7 (fun _ ->
        let c = Deficit.select d in
        Deficit.consume d ~size:9999;
        c)
  in
  Alcotest.(check (list int)) "RR cycles regardless of size"
    [ 0; 1; 2; 0; 1; 2; 0 ] picks;
  Alcotest.(check int) "rounds counted" 2 (Deficit.round d)

let test_packets_mode_grr () =
  let d = Grr.create ~ratios:[| 2; 1 |] () in
  let picks =
    List.init 6 (fun _ ->
        let c = Deficit.select d in
        Deficit.consume d ~size:1;
        c)
  in
  Alcotest.(check (list int)) "GRR 2:1 pattern" [ 0; 0; 1; 0; 0; 1 ] picks

let test_grr_for_rates () =
  let d = Grr.for_rates ~rates_bps:[| 10e6; 20.4e6; 5e6 |] () in
  Alcotest.(check (list int)) "closest integer ratios" [ 2; 4; 1 ]
    (Array.to_list (Deficit.quanta d))

let test_next_stamp_initial () =
  let d = Srr.create ~quanta:[| 500; 400 |] () in
  Alcotest.check stamp "ch0 first packet" { Deficit.round = 0; dc = 500 }
    (Deficit.next_stamp d 0);
  Alcotest.check stamp "ch1 first packet" { Deficit.round = 0; dc = 400 }
    (Deficit.next_stamp d 1)

let test_next_stamp_mid_visit () =
  let d = Srr.create ~quanta:[| 500; 400 |] () in
  ignore (Deficit.select d);
  Deficit.consume d ~size:200;
  (* ch0 serving, DC 300: next packet on ch0 is (0, 300); ch1 still ahead
     this round at (0, 400). *)
  Alcotest.check stamp "current channel mid-visit" { Deficit.round = 0; dc = 300 }
    (Deficit.next_stamp d 0);
  Alcotest.check stamp "later channel same round" { Deficit.round = 0; dc = 400 }
    (Deficit.next_stamp d 1)

let test_next_stamp_after_visit () =
  let d = Srr.create ~quanta:[| 500; 400 |] () in
  ignore (Deficit.select d);
  Deficit.consume d ~size:550;
  (* ch0 done (DC -50): its next packet comes in round 1 with 450. *)
  Alcotest.check stamp "served channel next round" { Deficit.round = 1; dc = 450 }
    (Deficit.next_stamp d 0)

let test_next_stamp_deep_negative () =
  let d = Deficit.create ~quanta:[| 100; 100 |] () in
  ignore (Deficit.select d);
  Deficit.consume d ~size:350;
  (* ch0 at -250: visits at rounds 1 (-150), 2 (-50) are skipped; round 3
     serves with +50. *)
  Alcotest.check stamp "stamp skips recovery rounds" { Deficit.round = 3; dc = 50 }
    (Deficit.next_stamp d 0)

let test_stamp_matches_actual_send () =
  (* The stamp predicted for a channel must equal the (round, dc) actually
     observed when the next packet goes to that channel. *)
  let rng = Stripe_netsim.Rng.create 77 in
  let d = Srr.create ~quanta:[| 600; 600; 600 |] () in
  let ok = ref true in
  let predictions = Array.make 3 None in
  for _ = 1 to 500 do
    (* Predict for every channel, then dispatch one packet. *)
    for c = 0 to 2 do
      if predictions.(c) = None then
        predictions.(c) <- Some (Deficit.next_stamp d c)
    done;
    let c = Deficit.select d in
    let actual = { Deficit.round = Deficit.round d; dc = Deficit.dc d c } in
    (match predictions.(c) with
    | Some p when p <> actual -> ok := false
    | Some _ -> ()
    | None -> ());
    predictions.(c) <- None;
    Deficit.consume d ~size:(100 + Stripe_netsim.Rng.int rng 500)
  done;
  Alcotest.(check bool) "next_stamp always matches the realized send" true !ok

let test_strict_drr_select_for () =
  let d = Srr.strict_drr ~quanta:[| 500; 500 |] () in
  (* 600-byte packet cannot be covered by one quantum: both channels are
     passed over in round 0 and DC accumulates. *)
  let c = Deficit.select_for d ~size:600 in
  Alcotest.(check int) "first channel with 2 quanta" 0 c;
  Alcotest.(check int) "accumulated DC" 1000 (Deficit.dc d 0);
  Deficit.consume d ~size:600;
  Alcotest.(check int) "DC after strict send" 400 (Deficit.dc d 0)

let test_strict_drr_never_negative () =
  let rng = Stripe_netsim.Rng.create 5 in
  let d = Srr.strict_drr ~quanta:[| 500; 700 |] () in
  let ok = ref true in
  for _ = 1 to 1000 do
    let size = 50 + Stripe_netsim.Rng.int rng 450 in
    let c = Deficit.select_for d ~size in
    Deficit.consume d ~size;
    if Deficit.dc d c < 0 then ok := false
  done;
  Alcotest.(check bool) "strict DRR never overdraws" true !ok

let test_select_requires_overdraw () =
  let d = Srr.strict_drr ~quanta:[| 500 |] () in
  Alcotest.check_raises "select on strict engine raises"
    (Invalid_argument "Deficit.select: non-overdraw engine needs select_for")
    (fun () -> ignore (Deficit.select d))

let test_clone_initial () =
  let d = Srr.create ~quanta:[| 500; 300 |] () in
  ignore (Deficit.select d);
  Deficit.consume d ~size:400;
  let fresh = Deficit.clone_initial d in
  Alcotest.(check int) "clone at round 0" 0 (Deficit.round fresh);
  Alcotest.(check int) "clone DC zero" 0 (Deficit.dc fresh 0);
  Alcotest.(check (list int)) "clone keeps quanta" [ 500; 300 ]
    (Array.to_list (Deficit.quanta fresh))

let test_create_validation () =
  Alcotest.check_raises "empty quanta"
    (Invalid_argument "Deficit.create: no channels") (fun () ->
      ignore (Deficit.create ~quanta:[||] ()));
  Alcotest.check_raises "zero quantum"
    (Invalid_argument "Deficit.create: quantum must be positive") (fun () ->
      ignore (Deficit.create ~quanta:[| 100; 0 |] ()))

let test_srr_max_packet_check () =
  Alcotest.check_raises "quantum below max packet rejected"
    (Invalid_argument
       "Srr.create: quantum 400 below max packet size 1500 violates the \
        marker-recovery precondition (Quantum_i >= Max)") (fun () ->
      ignore (Srr.create ~max_packet:1500 ~quanta:[| 1500; 400 |] ()))

let test_srr_for_rates () =
  let d = Srr.for_rates ~rates_bps:[| 10e6; 25e6 |] ~quantum_unit:1500 () in
  Alcotest.(check (list int)) "quanta proportional to rates" [ 1500; 3750 ]
    (Array.to_list (Deficit.quanta d))

let prop_conservation =
  QCheck.Test.make
    ~name:"deficit: bytes dispatched per channel ~ K*quantum within bound"
    ~count:100
    QCheck.(pair (int_range 1 4) (list_of_size (Gen.return 400) (int_range 1 1000)))
    (fun (n, sizes) ->
      let quanta = Array.make n 1000 in
      let d = Deficit.create ~quanta () in
      let bytes = Array.make n 0 in
      List.iter
        (fun size ->
          let c = Deficit.select d in
          Deficit.consume d ~size;
          bytes.(c) <- bytes.(c) + size)
        sizes;
      let k = Deficit.round d in
      let bound = 1000 + (2 * 1000) in
      Array.for_all (fun b -> abs (b - (k * 1000)) <= bound) bytes)

let suites =
  [
    ( "deficit",
      [
        Alcotest.test_case "figure 6 assignment" `Quick test_figure6_assignment;
        Alcotest.test_case "figure 5 DC trace" `Quick test_figure5_dc_trace;
        Alcotest.test_case "figure 5 rounds" `Quick test_figure5_round_structure;
        Alcotest.test_case "overdraw penalty" `Quick test_overdraw_penalty;
        Alcotest.test_case "deep overdraw skips" `Quick test_deep_overdraw_skips_rounds;
        Alcotest.test_case "RR packets mode" `Quick test_packets_mode_rr;
        Alcotest.test_case "GRR packets mode" `Quick test_packets_mode_grr;
        Alcotest.test_case "GRR for_rates" `Quick test_grr_for_rates;
        Alcotest.test_case "next_stamp initial" `Quick test_next_stamp_initial;
        Alcotest.test_case "next_stamp mid visit" `Quick test_next_stamp_mid_visit;
        Alcotest.test_case "next_stamp after visit" `Quick test_next_stamp_after_visit;
        Alcotest.test_case "next_stamp deep negative" `Quick
          test_next_stamp_deep_negative;
        Alcotest.test_case "stamp matches send" `Quick test_stamp_matches_actual_send;
        Alcotest.test_case "strict DRR select_for" `Quick test_strict_drr_select_for;
        Alcotest.test_case "strict DRR non-negative" `Quick
          test_strict_drr_never_negative;
        Alcotest.test_case "select requires overdraw" `Quick
          test_select_requires_overdraw;
        Alcotest.test_case "clone_initial" `Quick test_clone_initial;
        Alcotest.test_case "create validation" `Quick test_create_validation;
        Alcotest.test_case "srr max packet check" `Quick test_srr_max_packet_check;
        Alcotest.test_case "srr for_rates" `Quick test_srr_for_rates;
        QCheck_alcotest.to_alcotest prop_conservation;
      ] );
  ]
