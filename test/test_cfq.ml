(* Tests for the CFQ framework and the load-sharing transformation: the
   Figure 2/3 worked example and the executable E <-> E' correspondence
   at the heart of Theorem 3.1's proof. *)

open Stripe_core

let srr_cfq quanta =
  Cfq.of_deficit ~name:"SRR" (fun () -> Srr.create ~quanta ())

(* The paper's packets: identifier, size. *)
let a = (550, "a")
let b = (150, "b")
let c = (300, "c")
let d = (200, "d")
let e = (400, "e")
let f = (400, "f")

let test_figure2_fair_queue () =
  let cfq = srr_cfq [| 500; 500 |] in
  let queues = [| [ a; b; c ]; [ d; e; f ] |] in
  match Cfq.fair_queue cfq queues with
  | None -> Alcotest.fail "execution left the backlogged regime"
  | Some order ->
    Alcotest.(check (list string)) "Figure 2 service order"
      [ "a"; "d"; "e"; "b"; "c"; "f" ]
      (List.map (fun (_, (_, id)) -> id) order)

let test_figure3_load_share () =
  let cfq = srr_cfq [| 500; 500 |] in
  let input = [ a; d; e; b; c; f ] in
  let dispatch = Cfq.load_share cfq input in
  Alcotest.(check (list (pair int string))) "Figure 3 dispatch"
    [ (0, "a"); (1, "d"); (1, "e"); (0, "b"); (0, "c"); (1, "f") ]
    (List.map (fun (ch, (_, id)) -> (ch, id)) dispatch)

let test_outputs_by_channel () =
  let dispatch = [ (0, "x"); (1, "y"); (0, "z") ] in
  let grouped = Cfq.outputs_by_channel ~n:2 dispatch in
  Alcotest.(check (list string)) "channel 0" [ "x"; "z" ] grouped.(0);
  Alcotest.(check (list string)) "channel 1" [ "y" ] grouped.(1)

let test_fair_queue_detects_starvation () =
  (* Queue 1 empty while queue 0 still holds packets: RR immediately
     selects the exhausted queue in round 0 -> non-backlogged. *)
  let cfq = Cfq.of_deficit ~name:"RR" (fun () -> Rr.create ~n:2 ()) in
  let queues = [| [ (100, "p"); (100, "q") ]; [] |] in
  Alcotest.(check bool) "returns None outside backlogged regime" true
    (Cfq.fair_queue cfq queues = None)

(* Theorem 3.1's correspondence, executable: striping an input and then
   fair-queuing the per-channel outputs reproduces the input exactly. *)
let duality_roundtrip cfq input =
  let dispatch = Cfq.load_share cfq input in
  let queues = Cfq.outputs_by_channel ~n:cfq.Cfq.n dispatch in
  match Cfq.fair_queue cfq queues with
  | None -> false
  | Some order -> List.map snd order = input

let test_duality_paper_example () =
  Alcotest.(check bool) "paper example round-trips" true
    (duality_roundtrip (srr_cfq [| 500; 500 |]) [ a; d; e; b; c; f ])

let sizes_gen = QCheck.(list_of_size (Gen.int_range 0 300) (int_range 1 1500))

let prop_duality_srr =
  QCheck.Test.make ~name:"duality: SRR load_share inverts via fair_queue"
    ~count:150
    QCheck.(pair (int_range 1 5) sizes_gen)
    (fun (n, sizes) ->
      let quanta = Array.make n 1500 in
      let input = List.mapi (fun i size -> (size, i)) sizes in
      duality_roundtrip (srr_cfq quanta) input)

let prop_duality_uneven_quanta =
  QCheck.Test.make ~name:"duality holds for weighted quanta" ~count:150
    sizes_gen
    (fun sizes ->
      let cfq = Cfq.of_deficit ~name:"WSRR" (fun () ->
          Srr.create ~quanta:[| 1500; 3000; 4500 |] ())
      in
      let input = List.mapi (fun i size -> (size, i)) sizes in
      duality_roundtrip cfq input)

let prop_duality_rr =
  QCheck.Test.make ~name:"duality holds for RR" ~count:100 sizes_gen
    (fun sizes ->
      let cfq = Cfq.of_deficit ~name:"RR" (fun () -> Rr.create ~n:3 ()) in
      let input = List.mapi (fun i size -> (size, i)) sizes in
      duality_roundtrip cfq input)

let prop_duality_seeded_random =
  QCheck.Test.make ~name:"duality holds for seeded RFQ" ~count:100 sizes_gen
    (fun sizes ->
      let cfq = Cfq.seeded_random ~name:"RFQ" ~n:4 ~seed:31 in
      let input = List.mapi (fun i size -> (size, i)) sizes in
      duality_roundtrip cfq input)

(* The audit the fixed-interleaving tests above miss: [Srr.for_rates]
   derives quanta by scaling and rounding a rate vector (clamping to
   >= 1, inflating to restore Quantum_i >= Max), so the engine the
   duality runs over is itself a function of arbitrary float inputs.
   Random rate skews x random size sequences probe exactly the
   clamp/rounding corners. *)
let rates_gen = QCheck.(list_of_size (Gen.int_range 1 5) (int_range 1 40))

let rates_bps_of mbps =
  Array.of_list (List.map (fun m -> 1e6 *. float_of_int m) mbps)

let prop_duality_for_rates =
  QCheck.Test.make
    ~name:"duality: for_rates-derived quanta under random sizes" ~count:200
    QCheck.(pair rates_gen sizes_gen)
    (fun (mbps, sizes) ->
      let rates_bps = rates_bps_of mbps in
      let cfq =
        Cfq.of_deficit ~name:"SRR/for_rates" (fun () ->
            Srr.for_rates ~max_packet:1500 ~rates_bps ~quantum_unit:1500 ())
      in
      let input = List.mapi (fun i size -> (size, i)) sizes in
      duality_roundtrip cfq input)

let prop_duality_sprinklers =
  QCheck.Test.make
    ~name:"duality holds for Sprinklers (seeded permuted rounds)" ~count:200
    QCheck.(triple small_nat rates_gen sizes_gen)
    (fun (seed, mbps, sizes) ->
      let rates_bps = rates_bps_of mbps in
      let cfq =
        Cfq.of_deficit ~name:"Sprinklers" (fun () ->
            Sprinklers.for_rates ~max_packet:1500 ~seed ~rates_bps
              ~quantum_unit:1500 ())
      in
      let input = List.mapi (fun i size -> (size, i)) sizes in
      duality_roundtrip cfq input)

let prop_duality_load_aware =
  QCheck.Test.make ~name:"duality holds for pure min-load selection"
    ~count:200
    QCheck.(pair rates_gen sizes_gen)
    (fun (w, sizes) ->
      let weights = Array.of_list (List.map float_of_int w) in
      let cfq =
        Cfq.load_aware ~weights ~name:"LA" ~n:(Array.length weights) ()
      in
      let input = List.mapi (fun i size -> (size, i)) sizes in
      duality_roundtrip cfq input)

let test_seeded_random_is_causal () =
  (* Two instances from the same configuration make identical decisions:
     exactly what lets a seed-sharing receiver simulate the sender. *)
  let cfq = Cfq.seeded_random ~name:"RFQ" ~n:5 ~seed:7 in
  let i1 = cfq.Cfq.fresh () and i2 = cfq.Cfq.fresh () in
  let picks inst =
    List.init 200 (fun _ ->
        let ch = inst.Cfq.select () in
        inst.Cfq.update ~size:100;
        ch)
  in
  Alcotest.(check (list int)) "identical selection streams" (picks i1) (picks i2)

let test_seeded_random_select_stable () =
  let cfq = Cfq.seeded_random ~name:"RFQ" ~n:5 ~seed:7 in
  let inst = cfq.Cfq.fresh () in
  let first = inst.Cfq.select () in
  Alcotest.(check int) "repeated select stable before update" first
    (inst.Cfq.select ());
  inst.Cfq.update ~size:1;
  ignore (inst.Cfq.select ())

(* §5 reset-barrier degenerate cases. The reseed point must discard a
   draw cached by a [select] whose packet never dispatched (a packet
   selected but still queued when the barrier fired): keeping it would
   leave the sender consuming draw k while the receiver's replay
   consumes draw k+1, permanently offset. *)
let test_seeded_random_reset_discards_cached_draw () =
  let cfq = Cfq.seeded_random ~name:"RFQ" ~n:5 ~seed:7 in
  let sender = cfq.Cfq.fresh () in
  for _ = 1 to 17 do
    ignore (sender.Cfq.select ());
    sender.Cfq.update ~size:100
  done;
  (* A selection that never reaches [update]... *)
  ignore (sender.Cfq.select ());
  (* ...then the barrier. *)
  sender.Cfq.reset ();
  (* The receiver joins the barrier by restarting its replay at s0. *)
  let receiver = cfq.Cfq.fresh () in
  let stream inst =
    List.init 100 (fun _ ->
        let c = inst.Cfq.select () in
        inst.Cfq.update ~size:100;
        c)
  in
  Alcotest.(check (list int)) "post-barrier selection streams aligned"
    (stream receiver) (stream sender)

let test_seeded_random_single_channel_reset () =
  (* n = 1: every draw maps to channel 0, so a desync would be silent —
     the reset still must not raise, must stay on channel 0, and must
     keep sender and replay draw-aligned (observable once the membership
     grows back, covered by the n > 1 test above). *)
  let cfq = Cfq.seeded_random ~name:"RFQ" ~n:1 ~seed:3 in
  let inst = cfq.Cfq.fresh () in
  ignore (inst.Cfq.select ());
  inst.Cfq.reset ();
  for _ = 1 to 50 do
    Alcotest.(check int) "single channel" 0 (inst.Cfq.select ());
    inst.Cfq.update ~size:10
  done;
  inst.Cfq.reset ();
  Alcotest.(check int) "still channel 0 after second barrier" 0
    (inst.Cfq.select ())

let test_seeded_random_spread () =
  let cfq = Cfq.seeded_random ~name:"RFQ" ~n:4 ~seed:11 in
  let inst = cfq.Cfq.fresh () in
  let counts = Array.make 4 0 in
  for _ = 1 to 4000 do
    let ch = inst.Cfq.select () in
    inst.Cfq.update ~size:100;
    counts.(ch) <- counts.(ch) + 1
  done;
  Alcotest.(check bool) "RFQ spreads across all channels" true
    (Array.for_all (fun c -> c > 800 && c < 1200) counts)

let suites =
  [
    ( "cfq",
      [
        Alcotest.test_case "figure 2 fair queuing" `Quick test_figure2_fair_queue;
        Alcotest.test_case "figure 3 load sharing" `Quick test_figure3_load_share;
        Alcotest.test_case "outputs_by_channel" `Quick test_outputs_by_channel;
        Alcotest.test_case "starvation detected" `Quick
          test_fair_queue_detects_starvation;
        Alcotest.test_case "duality paper example" `Quick test_duality_paper_example;
        Alcotest.test_case "seeded random causal" `Quick test_seeded_random_is_causal;
        Alcotest.test_case "seeded random stable select" `Quick
          test_seeded_random_select_stable;
        Alcotest.test_case "seeded random spread" `Quick test_seeded_random_spread;
        Alcotest.test_case "seeded random reset discards cached draw" `Quick
          test_seeded_random_reset_discards_cached_draw;
        Alcotest.test_case "seeded random n=1 reset" `Quick
          test_seeded_random_single_channel_reset;
        QCheck_alcotest.to_alcotest prop_duality_srr;
        QCheck_alcotest.to_alcotest prop_duality_uneven_quanta;
        QCheck_alcotest.to_alcotest prop_duality_rr;
        QCheck_alcotest.to_alcotest prop_duality_seeded_random;
        QCheck_alcotest.to_alcotest prop_duality_for_rates;
        QCheck_alcotest.to_alcotest prop_duality_sprinklers;
        QCheck_alcotest.to_alcotest prop_duality_load_aware;
      ] );
  ]
