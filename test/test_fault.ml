(* Fault injection, channel suspension, and failure recovery:
   - the Fault module's schedules, spec parser and link semantics;
   - sender-side suspension (deficit engine, scheduler, striper);
   - the receiver's dead-channel watchdog under total single-channel
     failure (never blocks forever; FIFO re-established after revival,
     the Theorem 5.1 check);
   - a seeded randomized fault-schedule soak test (suite "fault-soak",
     seed from STRIPE_FAULT_SEED) for the CI fault matrix. *)

open Stripe_netsim
open Stripe_packet
open Stripe_core
module Obs = Stripe_obs

(* ------------------------------------------------------------------ *)
(* Fault module                                                        *)
(* ------------------------------------------------------------------ *)

let test_parse_spec () =
  match Fault.parse_spec "1:down@0.5,up@1.5" with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok actions ->
    Alcotest.(check int) "two actions" 2 (List.length actions);
    List.iter
      (fun a -> Alcotest.(check int) "channel 1" 1 a.Fault.channel)
      actions;
    (match actions with
    | [ { Fault.at = t0; event = Fault.Down; _ };
        { Fault.at = t1; event = Fault.Up; _ } ] ->
      Alcotest.(check (float 1e-9)) "down at 0.5" 0.5 t0;
      Alcotest.(check (float 1e-9)) "up at 1.5" 1.5 t1
    | _ -> Alcotest.fail "expected [down@0.5; up@1.5]")

let test_parse_spec_rate_burst () =
  match Fault.parse_spec "0:rate=5e6@1.0,burst=0.3/0.2@2.0" with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok [ { Fault.event = Fault.Rate r; _ };
         { Fault.event = Fault.Burst_loss { duration; _ }; _ } ] ->
    Alcotest.(check (float 1e-9)) "rate" 5e6 r;
    Alcotest.(check (float 1e-9)) "burst duration" 0.2 duration
  | Ok _ -> Alcotest.fail "expected [rate; burst]"
  | exception _ -> Alcotest.fail "parse raised"

let test_parse_spec_errors () =
  List.iter
    (fun s ->
      match Fault.parse_spec s with
      | Ok _ -> Alcotest.failf "spec %S should not parse" s
      | Error _ -> ())
    [ ""; "x:down@1"; "0:frob@1"; "0:down"; "0:down@x"; "0:burst=0.5@1" ]

let test_down_link_drops_silently () =
  let sim = Sim.create () in
  let received = ref 0 in
  let link =
    Link.create sim ~name:"l" ~rate_bps:1e6 ~prop_delay:0.001
      ~deliver:(fun (_ : int) -> incr received)
      ()
  in
  Fault.down_up sim link ~down_at:0.010 ~up_at:0.020;
  (* One packet while up, two while down, one after recovery. *)
  List.iter
    (fun at -> Sim.schedule sim ~at (fun () -> ignore (Link.send link ~size:100 0)))
    [ 0.001; 0.012; 0.015; 0.025 ];
  Sim.run sim;
  Alcotest.(check int) "only the up-time packets arrive" 2 !received;
  Alcotest.(check bool) "down drops counted" true (Link.down_drops link >= 2);
  Alcotest.(check bool) "link is back up" true (Link.is_up link)

let test_carrier_watchers () =
  let sim = Sim.create () in
  let transitions = ref [] in
  let link =
    Link.create sim ~name:"l" ~rate_bps:1e6 ~prop_delay:0.001
      ~deliver:(fun (_ : int) -> ())
      ()
  in
  Link.on_carrier link (fun ~up -> transitions := up :: !transitions);
  Fault.down_up sim link ~down_at:0.01 ~up_at:0.02;
  (* set_up is level-triggered: repeating the current state is silent. *)
  Sim.schedule sim ~at:0.015 (fun () -> Link.set_up link false);
  Sim.run sim;
  Alcotest.(check (list bool)) "one down, one up" [ true; false ]
    !transitions

let test_burst_loss_restores_process () =
  let sim = Sim.create () in
  let link =
    Link.create sim ~name:"l" ~rate_bps:1e9 ~prop_delay:0.0001
      ~deliver:(fun (_ : int) -> ())
      ()
  in
  let original = Link.loss_process link in
  Fault.inject sim link ~at:0.01
    (Fault.Burst_loss { loss = Loss.bernoulli ~p:0.9; duration = 0.05 });
  Sim.schedule sim ~at:0.02 (fun () ->
      Alcotest.(check bool) "burst process installed" true
        (Link.loss_process link != original));
  Sim.run sim;
  Alcotest.(check bool) "original process restored" true
    (Link.loss_process link == original)

let test_random_schedule_deterministic () =
  let mk seed =
    Fault.random_schedule ~rng:(Rng.create seed) ~n_channels:3 ~horizon:10.0
      ~mtbf:2.0 ~mttr:0.5
  in
  let s1 = mk 42 and s2 = mk 42 and s3 = mk 43 in
  Alcotest.(check int) "same seed, same schedule" 0 (compare s1 s2);
  Alcotest.(check bool) "different seed differs" true (s1 <> s3);
  let sorted =
    List.for_all2
      (fun a b -> a.Fault.at <= b.Fault.at)
      (List.filteri (fun i _ -> i < List.length s1 - 1) s1)
      (List.tl s1)
  in
  Alcotest.(check bool) "sorted by time" true sorted;
  (* Every channel's last action is an Up: runs end with all links alive. *)
  List.iter
    (fun c ->
      match
        List.rev (List.filter (fun a -> a.Fault.channel = c) s1)
      with
      | [] -> ()
      | last :: _ ->
        Alcotest.(check bool)
          (Printf.sprintf "channel %d ends up" c)
          true (last.Fault.event = Fault.Up))
    [ 0; 1; 2 ]

(* ------------------------------------------------------------------ *)
(* Sender-side suspension                                              *)
(* ------------------------------------------------------------------ *)

let test_deficit_suspension () =
  let d = Srr.create ~quanta:[| 1000; 1000; 1000 |] () in
  Deficit.suspend d 1;
  Alcotest.(check bool) "suspended" true (Deficit.suspended d 1);
  Alcotest.(check int) "two active" 2 (Deficit.n_active d);
  for _ = 1 to 50 do
    let c = Deficit.select d in
    Alcotest.(check bool) "never selects the suspended channel" true (c <> 1);
    Deficit.consume d ~size:900
  done;
  Deficit.resume d 1;
  let seen = Array.make 3 false in
  for _ = 1 to 50 do
    let c = Deficit.select d in
    seen.(c) <- true;
    Deficit.consume d ~size:900
  done;
  Alcotest.(check bool) "resumed channel serves again" true seen.(1)

let test_deficit_all_suspended_raises () =
  let d = Srr.create ~quanta:[| 1000; 1000 |] () in
  Deficit.suspend d 0;
  Deficit.suspend d 1;
  Alcotest.(check bool) "none active" false (Deficit.any_active d);
  Alcotest.check_raises "select raises"
    (Invalid_argument "Deficit.select: all channels suspended") (fun () ->
      ignore (Deficit.select d))

let test_scheduler_noncausal_remap () =
  let sched = Scheduler.random_selection ~n:3 ~seed:9 in
  Scheduler.suspend_channel sched 2;
  for i = 0 to 199 do
    let pkt = Packet.data ~seq:i ~size:100 () in
    let c = Scheduler.choose sched pkt in
    Alcotest.(check bool) "remapped off the suspended channel" true (c <> 2);
    Scheduler.account sched pkt c
  done

let test_striper_all_suspended_drops () =
  let engine = Srr.create ~quanta:[| 1000; 1000 |] () in
  let sched = Scheduler.of_deficit ~name:"SRR" engine in
  let counters = Obs.Counters.create ~n:2 in
  let emitted = ref 0 in
  let striper =
    Striper.create ~scheduler:sched
      ~sink:(Obs.Counters.sink counters)
      ~emit:(fun ~channel:_ _ -> incr emitted)
      ()
  in
  Striper.suspend_channel striper 0;
  Striper.suspend_channel striper 1;
  for i = 0 to 9 do
    Striper.push striper (Packet.data ~seq:i ~size:500 ())
  done;
  Alcotest.(check int) "nothing emitted" 0 !emitted;
  Alcotest.(check int) "all pushes dropped" 10
    (Striper.undispatched_drops striper);
  Alcotest.(check int) "channel-less txq drops counted" 10
    (Obs.Counters.no_channel_drops counters);
  (* Resume one channel: dispatch works again; the resume emitted the
     reset barrier. *)
  Striper.resume_channel striper 0;
  Striper.push striper (Packet.data ~seq:10 ~size:500 ());
  Alcotest.(check bool) "emits after resume" true (!emitted > 0)

let test_striper_suspension_redistributes () =
  let engine = Srr.create ~quanta:[| 1500; 1500; 1500 |] () in
  let sched = Scheduler.of_deficit ~name:"SRR" engine in
  let per_chan = Array.make 3 0 in
  let striper =
    Striper.create ~scheduler:sched
      ~emit:(fun ~channel pkt ->
        if not (Packet.is_marker pkt) then
          per_chan.(channel) <- per_chan.(channel) + 1)
      ()
  in
  Striper.suspend_channel striper 1;
  for i = 0 to 299 do
    Striper.push striper (Packet.data ~seq:i ~size:1000 ())
  done;
  Alcotest.(check int) "suspended channel got nothing" 0 per_chan.(1);
  Alcotest.(check int) "survivors carry everything" 300
    (per_chan.(0) + per_chan.(2));
  Alcotest.(check bool) "roughly balanced across survivors" true
    (abs (per_chan.(0) - per_chan.(2)) < 50)

(* ------------------------------------------------------------------ *)
(* Receiver watchdog under total single-channel failure                *)
(* ------------------------------------------------------------------ *)

(* A simulated 3-channel SRR bundle with markers, paced source, and an
   observability collector; the sender is link-state blind unless
   [sender_aware]. *)
type rig = {
  sim : Sim.t;
  striper : Striper.t;
  reseq : Resequencer.t;
  links : Packet.t Link.t array;
  collector : Obs.Sink.t;
  recovery : Stripe_metrics.Recovery.t;
  pushed : int ref;
}

let make_rig ?(sender_aware = false) ?watchdog () =
  let sim = Sim.create () in
  let collector = Obs.Sink.collector () in
  let obs_sink = collector in
  let recovery = Stripe_metrics.Recovery.create () in
  let engine = Srr.create ~quanta:[| 1500; 1500; 1500 |] () in
  let reseq =
    Resequencer.create ~deficit:(Deficit.clone_initial engine)
      ~now:(fun () -> Sim.now sim)
      ~sink:obs_sink ?watchdog
      ~deliver:(fun ~channel:_ pkt ->
        Stripe_metrics.Recovery.observe recovery ~now:(Sim.now sim)
          ~seq:pkt.Packet.seq)
      ()
  in
  let links =
    Array.init 3 (fun i ->
        Link.create sim
          ~name:(Printf.sprintf "ch%d" i)
          ~rate_bps:10e6 ~prop_delay:0.002 ~channel:i ~sink:obs_sink
          ~deliver:(fun pkt -> Resequencer.receive reseq ~channel:i pkt)
          ())
  in
  let sched = Scheduler.of_deficit ~name:"SRR" engine in
  let striper =
    Striper.create ~scheduler:sched
      ~marker:(Marker.make ~every_rounds:4 ())
      ~now:(fun () -> Sim.now sim)
      ~sink:obs_sink
      ~emit:(fun ~channel pkt ->
        ignore (Link.send links.(channel) ~size:pkt.Packet.size pkt))
      ()
  in
  if sender_aware then
    Array.iteri
      (fun i link ->
        Link.on_carrier link (fun ~up ->
            if up then Striper.resume_channel striper i
            else Striper.suspend_channel striper i))
      links;
  let pushed = ref 0 in
  { sim; striper; reseq; links; collector; recovery; pushed }

let drive rig ~until_ =
  let rng = Rng.create 7 in
  let gen = Stripe_workload.Genpkt.bimodal ~rng ~small:200 ~large:1000 () in
  let rec tick () =
    if Sim.now rig.sim < until_ then begin
      for _ = 1 to 2 do
        Striper.push rig.striper
          (Packet.data ~seq:!(rig.pushed) ~born:(Sim.now rig.sim)
             ~size:(gen ()) ());
        incr rig.pushed
      done;
      Sim.schedule_after rig.sim ~delay:0.0006 tick
    end
  in
  tick ()

(* Satellite regression: one channel dies for good mid-run; a watchdogged
   receiver must keep delivering (never blocks forever), and once the
   channel revives FIFO must be re-established (Theorem 5.1 via the
   trace checker). *)
let test_watchdog_survives_total_channel_failure () =
  let rig =
    make_rig ~watchdog:{ Resequencer.intervals = 3; fallback = 0.01 } ()
  in
  drive rig ~until_:1.0;
  let down_at = 0.3 and up_at = 0.7 in
  Fault.down_up rig.sim rig.links.(1) ~down_at ~up_at;
  let delivered_at_half = ref 0 in
  Sim.schedule rig.sim ~at:0.5 (fun () ->
      delivered_at_half := Resequencer.delivered rig.reseq);
  Sim.run rig.sim;
  (* Progress during the outage: the watchdog skipped the dead channel
     instead of blocking on it until revival. *)
  Alcotest.(check bool) "deliveries continued during the outage" true
    (!delivered_at_half > 0
    && Resequencer.delivered rig.reseq > !delivered_at_half);
  Alcotest.(check bool) "watchdog declared the channel dead" true
    (Resequencer.dead_declarations rig.reseq >= 1);
  Alcotest.(check bool) "watchdog skips recorded" true
    (Resequencer.watchdog_skips rig.reseq > 0);
  Alcotest.(check bool) "channel revived on first arrival" false
    (Resequencer.channel_dead rig.reseq 1);
  Alcotest.(check bool) "receiver not left blocked with data pending" true
    (Resequencer.blocked_on rig.reseq = None
    || Resequencer.pending rig.reseq = 0);
  (* Theorem 5.1 (operational form): after the revived channel's markers
     flow again, delivery is FIFO. Allow a generous post-revival settle
     window of 100 ms (several marker intervals + delay). *)
  let events = Obs.Sink.events rig.collector in
  Alcotest.(check bool) "FIFO re-established after revival" true
    (Obs.Check.fifo_from ~time:(up_at +. 0.1) events);
  Alcotest.(check bool) "something was delivered after revival" true
    (Stripe_metrics.Recovery.first_after rig.recovery ~time:(up_at +. 0.1)
    <> None)

let test_no_watchdog_blocks_on_dead_channel () =
  (* Control for the regression above: without a watchdog the receiver
     blocks on the dead channel for the whole outage. *)
  let rig = make_rig () in
  drive rig ~until_:0.6;
  Sim.schedule rig.sim ~at:0.3 (fun () -> Link.set_up rig.links.(1) false);
  let blocked_mid_outage = ref None in
  Sim.schedule rig.sim ~at:0.55 (fun () ->
      blocked_mid_outage := Resequencer.blocked_on rig.reseq);
  Sim.run rig.sim;
  Alcotest.(check (option int)) "stuck waiting on the dead channel" (Some 1)
    !blocked_mid_outage;
  Alcotest.(check bool) "data trapped in the buffers" true
    (Resequencer.pending rig.reseq > 0)

let test_sender_aware_failover_keeps_fifo () =
  let rig =
    make_rig ~sender_aware:true
      ~watchdog:{ Resequencer.intervals = 3; fallback = 0.01 }
      ()
  in
  drive rig ~until_:1.0;
  Fault.down_up rig.sim rig.links.(1) ~down_at:0.3 ~up_at:0.7;
  Sim.run rig.sim;
  let events = Obs.Sink.events rig.collector in
  (* Suspension moved the load before packets could be lost mid-stream
     (only in-flight packets on the dying link are at risk), and the
     resume barrier resynchronized: the whole run stays FIFO. *)
  Alcotest.(check (list (pair int int))) "no FIFO violations" []
    (Obs.Check.fifo_violations events);
  Alcotest.(check bool) "suspend/resume events recorded" true
    (Obs.Check.count Obs.Event.Suspend events = 1
    && Obs.Check.count Obs.Event.Resume events = 1);
  Alcotest.(check bool) "barrier completed at the receiver" true
    (Resequencer.resets rig.reseq >= 1)

(* ------------------------------------------------------------------ *)
(* Randomized fault-schedule soak (CI matrix reads STRIPE_FAULT_SEED)   *)
(* ------------------------------------------------------------------ *)

let soak_seed () =
  match Sys.getenv_opt "STRIPE_FAULT_SEED" with
  | Some s -> (
    match int_of_string_opt s with
    | Some n -> n
    | None -> Alcotest.failf "bad STRIPE_FAULT_SEED %S" s)
  | None -> 1

let test_fault_soak () =
  let seed = soak_seed () in
  let horizon = 2.0 in
  let rig =
    make_rig ~sender_aware:true
      ~watchdog:{ Resequencer.intervals = 3; fallback = 0.01 }
      ()
  in
  (* Faulty phase over [0, horizon] (the schedule revives everything at
     the horizon), then a clean tail long enough for Theorem 5.1's
     resynchronization to be witnessed. *)
  drive rig ~until_:(horizon +. 0.5);
  let schedule =
    Fault.random_schedule ~rng:(Rng.create seed) ~n_channels:3 ~horizon
      ~mtbf:0.4 ~mttr:0.1
  in
  Fault.apply rig.sim ~links:rig.links schedule;
  Sim.run rig.sim;
  let delivered = Resequencer.delivered rig.reseq in
  Alcotest.(check bool)
    (Printf.sprintf "seed %d: substantial delivery (%d of %d)" seed delivered
       !(rig.pushed))
    true
    (float_of_int delivered > 0.5 *. float_of_int !(rig.pushed));
  Alcotest.(check bool)
    (Printf.sprintf "seed %d: resynchronized after faults stopped" seed)
    true
    (Stripe_metrics.Recovery.resync_time rig.recovery ~errors_stop:horizon
    <> None);
  Alcotest.(check bool)
    (Printf.sprintf "seed %d: not blocked with reachable data at the end" seed)
    true
    (Resequencer.blocked_on rig.reseq = None
    || Stripe_metrics.Recovery.first_after rig.recovery
         ~time:(horizon +. 0.25)
       <> None)

let suites =
  [
    ( "fault",
      [
        Alcotest.test_case "parse spec down/up" `Quick test_parse_spec;
        Alcotest.test_case "parse spec rate/burst" `Quick
          test_parse_spec_rate_burst;
        Alcotest.test_case "parse spec errors" `Quick test_parse_spec_errors;
        Alcotest.test_case "down link drops silently" `Quick
          test_down_link_drops_silently;
        Alcotest.test_case "carrier watchers" `Quick test_carrier_watchers;
        Alcotest.test_case "burst loss restores process" `Quick
          test_burst_loss_restores_process;
        Alcotest.test_case "random schedule deterministic" `Quick
          test_random_schedule_deterministic;
      ] );
    ( "suspension",
      [
        Alcotest.test_case "deficit suspend/resume" `Quick
          test_deficit_suspension;
        Alcotest.test_case "deficit all suspended raises" `Quick
          test_deficit_all_suspended_raises;
        Alcotest.test_case "non-causal remap" `Quick
          test_scheduler_noncausal_remap;
        Alcotest.test_case "striper all suspended drops" `Quick
          test_striper_all_suspended_drops;
        Alcotest.test_case "striper redistributes" `Quick
          test_striper_suspension_redistributes;
      ] );
    ( "watchdog",
      [
        Alcotest.test_case "survives total channel failure" `Quick
          test_watchdog_survives_total_channel_failure;
        Alcotest.test_case "control: no watchdog blocks" `Quick
          test_no_watchdog_blocks_on_dead_channel;
        Alcotest.test_case "sender-aware failover keeps FIFO" `Quick
          test_sender_aware_failover_keeps_fifo;
      ] );
    ( "fault-soak",
      [ Alcotest.test_case "randomized schedule soak" `Slow test_fault_soak ] );
  ]
