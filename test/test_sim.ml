(* Unit tests for the discrete-event engine: clock advancement, ordering,
   horizons, stop, and scheduling validity. *)

open Stripe_netsim

let test_clock_starts_at_zero () =
  let sim = Sim.create () in
  Alcotest.(check (float 0.0)) "t=0" 0.0 (Sim.now sim)

let test_events_run_in_order () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.schedule sim ~at:3.0 (fun () -> log := 3 :: !log);
  Sim.schedule sim ~at:1.0 (fun () -> log := 1 :: !log);
  Sim.schedule sim ~at:2.0 (fun () -> log := 2 :: !log);
  Sim.run sim;
  Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check (float 0.0)) "clock at last event" 3.0 (Sim.now sim)

let test_nested_scheduling () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.schedule sim ~at:1.0 (fun () ->
      log := "outer" :: !log;
      Sim.schedule_after sim ~delay:0.5 (fun () -> log := "inner" :: !log));
  Sim.run sim;
  Alcotest.(check (list string)) "nested event fires" [ "outer"; "inner" ]
    (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock" 1.5 (Sim.now sim)

let test_past_scheduling_rejected () =
  let sim = Sim.create () in
  Sim.schedule sim ~at:2.0 (fun () ->
      Alcotest.check_raises "scheduling in the past raises"
        (Invalid_argument "Sim.schedule: time 1 is before now (2)") (fun () ->
          Sim.schedule sim ~at:1.0 (fun () -> ())));
  Sim.run sim

let test_run_until_horizon () =
  let sim = Sim.create () in
  let fired = ref [] in
  List.iter
    (fun t -> Sim.schedule sim ~at:t (fun () -> fired := t :: !fired))
    [ 1.0; 2.0; 3.0; 4.0 ];
  Sim.run_until sim 2.5;
  Alcotest.(check (list (float 0.0))) "only events <= horizon" [ 1.0; 2.0 ]
    (List.rev !fired);
  Alcotest.(check (float 0.0)) "clock advanced to horizon" 2.5 (Sim.now sim);
  Alcotest.(check int) "later events remain" 2 (Sim.pending sim);
  Sim.run sim;
  Alcotest.(check int) "rest fire on run" 4 (List.length !fired)

let test_run_until_advances_clock_without_events () =
  let sim = Sim.create () in
  Sim.run_until sim 10.0;
  Alcotest.(check (float 0.0)) "clock jumps to horizon" 10.0 (Sim.now sim)

let test_stop () =
  let sim = Sim.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    Sim.schedule sim ~at:(float_of_int i) (fun () ->
        incr count;
        if !count = 3 then Sim.stop sim)
  done;
  Sim.run sim;
  Alcotest.(check int) "stopped after third event" 3 !count;
  Alcotest.(check int) "remaining events kept" 7 (Sim.pending sim)

let test_stop_leaves_clock_at_stop_point () =
  (* Regression: run_until used to fast-forward the clock to the horizon
     even when [stop] fired mid-run, so a stopped run lied about how far
     it had gotten. *)
  let sim = Sim.create () in
  for i = 1 to 10 do
    Sim.schedule sim ~at:(float_of_int i) (fun () ->
        if Sim.now sim = 3.0 then Sim.stop sim)
  done;
  Sim.run_until sim 100.0;
  Alcotest.(check (float 0.0)) "clock stays at the stop point" 3.0 (Sim.now sim);
  Alcotest.(check int) "remaining events kept" 7 (Sim.pending sim);
  (* A resumed run picks up from the stop point and does reach the
     horizon this time. *)
  Sim.run_until sim 100.0;
  Alcotest.(check (float 0.0)) "resumed run reaches horizon" 100.0 (Sim.now sim);
  Alcotest.(check int) "all events fired" 0 (Sim.pending sim)

let test_step () =
  let sim = Sim.create () in
  Alcotest.(check bool) "step on empty" false (Sim.step sim);
  Sim.schedule sim ~at:1.0 (fun () -> ());
  Alcotest.(check bool) "step consumes one" true (Sim.step sim);
  Alcotest.(check bool) "then empty" false (Sim.step sim)

let test_negative_delay_rejected () =
  let sim = Sim.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Sim.schedule_after: negative delay") (fun () ->
      Sim.schedule_after sim ~delay:(-1.0) (fun () -> ()))

let suites =
  [
    ( "sim",
      [
        Alcotest.test_case "clock starts at zero" `Quick test_clock_starts_at_zero;
        Alcotest.test_case "events in order" `Quick test_events_run_in_order;
        Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
        Alcotest.test_case "past scheduling rejected" `Quick test_past_scheduling_rejected;
        Alcotest.test_case "run_until horizon" `Quick test_run_until_horizon;
        Alcotest.test_case "run_until no events" `Quick
          test_run_until_advances_clock_without_events;
        Alcotest.test_case "stop" `Quick test_stop;
        Alcotest.test_case "stop leaves clock at stop point" `Quick
          test_stop_leaves_clock_at_stop_point;
        Alcotest.test_case "step" `Quick test_step;
        Alcotest.test_case "negative delay" `Quick test_negative_delay_rejected;
      ] );
  ]
