(* Calendar queue tests: unit coverage, the qcheck equivalence property
   against the binary heap (the reference model — including FIFO
   tie-breaking, so either engine drives byte-identical simulations),
   the Eventq popped-slot leak regression, and a seeded end-to-end
   trace-equality check between the two engines. *)

open Stripe_netsim

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Calendar queue unit tests ------------------------------------- *)

let test_empty () =
  let q = Calendar_queue.create () in
  check "fresh calendar is empty" true (Calendar_queue.is_empty q);
  check_int "fresh calendar length" 0 (Calendar_queue.length q);
  check "no peek time" true (Calendar_queue.peek_time q = None);
  check "pop on empty" true (Calendar_queue.pop q = None)

let test_time_order () =
  let q = Calendar_queue.create () in
  List.iter
    (fun t -> Calendar_queue.add q ~time:t (int_of_float t))
    [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  let order =
    List.init 5 (fun _ ->
        match Calendar_queue.pop q with Some (_, v) -> v | None -> -1)
  in
  Alcotest.(check (list int)) "ascending time order" [ 1; 2; 3; 4; 5 ] order

let test_fifo_ties () =
  let q = Calendar_queue.create () in
  for i = 0 to 9 do
    Calendar_queue.add q ~time:1.0 i
  done;
  let order =
    List.init 10 (fun _ ->
        match Calendar_queue.pop q with Some (_, v) -> v | None -> -1)
  in
  Alcotest.(check (list int)) "same-time events pop in insertion order"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    order

let test_growth_across_resizes () =
  (* Enough events to force several bucket-ring doublings, inserted in
     reverse so every add lands before the current year. *)
  let q = Calendar_queue.create () in
  let n = 10_000 in
  for i = n downto 1 do
    Calendar_queue.add q ~time:(float_of_int i) i
  done;
  check_int "all inserted" n (Calendar_queue.length q);
  let prev = ref 0 in
  let sorted = ref true in
  for _ = 1 to n do
    match Calendar_queue.pop q with
    | Some (_, v) ->
      if v < !prev then sorted := false;
      prev := v
    | None -> sorted := false
  done;
  check "large reverse-order insert pops sorted" true !sorted

let test_wide_spread () =
  (* Times spanning ten orders of magnitude exercise the width clamp and
     the direct-search fallback for far-future events. *)
  let q = Calendar_queue.create () in
  let times = [ 1e-6; 3.0; 1e4; 0.5; 2e-6; 9e3; 7.0; 0.0 ] in
  List.iteri (fun i t -> Calendar_queue.add q ~time:t i) times;
  let rec drain acc =
    match Calendar_queue.pop q with
    | Some (t, _) -> drain (t :: acc)
    | None -> List.rev acc
  in
  let popped = drain [] in
  Alcotest.(check (list (float 0.0)))
    "wide time spread pops sorted"
    (List.sort compare times)
    popped

let test_clear_and_reuse () =
  let q = Calendar_queue.create () in
  for i = 0 to 99 do
    Calendar_queue.add q ~time:(float_of_int i) i
  done;
  Calendar_queue.clear q;
  check "cleared calendar is empty" true (Calendar_queue.is_empty q);
  Calendar_queue.add q ~time:2.0 20;
  Calendar_queue.add q ~time:1.0 10;
  check "usable after clear" true (Calendar_queue.pop q = Some (1.0, 10))

(* --- Equivalence against the heap ---------------------------------- *)

(* Operations drawn for the property: add at one of a few times (small
   palette to force plenty of ties), pop, clear. Both structures see the
   same sequence; every pop must agree on (time, value), including the
   FIFO order within a tie — that identity is what lets a simulation
   switch engines without changing a single event. *)
type op = Add of float | Pop | Clear

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (6, map (fun t -> Add t) (float_range 0.0 100.0));
        (3, map (fun i -> Add (float_of_int (i mod 8))) (int_bound 1000));
        (4, return Pop);
        (1, return Clear);
      ])

let op_print = function
  | Add t -> Printf.sprintf "Add %g" t
  | Pop -> "Pop"
  | Clear -> "Clear"

let ops_arb =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map op_print ops))
    QCheck.Gen.(list_size (int_range 0 400) op_gen)

let prop_calendar_equals_heap =
  QCheck.Test.make ~name:"calendar = heap on random add/pop/clear" ~count:300
    ops_arb (fun ops ->
      let heap = Eventq.create () in
      let cal = Calendar_queue.create () in
      let next = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | Add t ->
            Eventq.add heap ~time:t !next;
            Calendar_queue.add cal ~time:t !next;
            incr next
          | Pop ->
            if Eventq.pop heap <> Calendar_queue.pop cal then ok := false
          | Clear ->
            Eventq.clear heap;
            Calendar_queue.clear cal)
        ops;
      (* Drain what is left: the full remaining pop sequences must agree
         too, and both must end empty. *)
      let rec drain () =
        let h = Eventq.pop heap and c = Calendar_queue.pop cal in
        if h <> c then ok := false
        else match h with Some _ -> drain () | None -> ()
      in
      drain ();
      !ok && Eventq.is_empty heap && Calendar_queue.is_empty cal)

(* Fleet-style churn stress: a bundle pool drives the shared queue
   through repeated population swings — thousands of arrivals cluster
   events near the clock, departures drain them again — which is
   exactly the add/pop/clear interleaving that exercises the calendar's
   [resize] doublings on the way up and [maybe_shrink] on the way down.
   The property is the same equivalence: every pop (time and value,
   FIFO within ties) must match the reference heap throughout. *)
type churn_seg =
  | Grow of int  (* burst of adds clustered just after the current time *)
  | Drain of int  (* burst of pops *)
  | Wipe  (* teardown of the whole population *)

let churn_seg_gen =
  QCheck.Gen.(
    frequency
      [
        (5, map (fun k -> Grow (1 + (k mod 500))) (int_bound 10_000));
        (5, map (fun k -> Drain (1 + (k mod 500))) (int_bound 10_000));
        (1, return Wipe);
      ])

let churn_seg_print = function
  | Grow k -> Printf.sprintf "Grow %d" k
  | Drain k -> Printf.sprintf "Drain %d" k
  | Wipe -> "Wipe"

let churn_arb =
  QCheck.make
    ~print:(fun segs -> String.concat "; " (List.map churn_seg_print segs))
    QCheck.Gen.(list_size (int_range 1 30) churn_seg_gen)

let prop_calendar_churn_equals_heap =
  QCheck.Test.make ~name:"calendar = heap under fleet-like churn" ~count:100
    churn_arb (fun segs ->
      let heap = Eventq.create () in
      let cal = Calendar_queue.create () in
      let next = ref 0 in
      let now = ref 0.0 in
      let ok = ref true in
      (* Deterministic pseudo-offsets keep the generated case small (and
         shrinkable) while still clustering times the way link arrivals
         do, with occasional far-future stragglers. *)
      let offset i =
        if i mod 97 = 0 then 50.0 +. float_of_int (i mod 7)
        else float_of_int (i * 7919 mod 1000) /. 1000.0
      in
      List.iter
        (fun seg ->
          match seg with
          | Grow k ->
            for _ = 1 to k do
              let t = !now +. offset !next in
              Eventq.add heap ~time:t !next;
              Calendar_queue.add cal ~time:t !next;
              incr next
            done
          | Drain k ->
            for _ = 1 to k do
              let h = Eventq.pop heap and c = Calendar_queue.pop cal in
              if h <> c then ok := false;
              match h with Some (t, _) -> now := t | None -> ()
            done
          | Wipe ->
            Eventq.clear heap;
            Calendar_queue.clear cal)
        segs;
      let rec drain () =
        let h = Eventq.pop heap and c = Calendar_queue.pop cal in
        if h <> c then ok := false
        else match h with Some _ -> drain () | None -> ()
      in
      drain ();
      !ok && Eventq.is_empty heap && Calendar_queue.is_empty cal)

(* --- Eventq popped-slot leak regression ---------------------------- *)

let test_pop_releases_value () =
  (* The heap used to keep popped values reachable in its vacated array
     slots. Register popped values in a weak array and check the GC can
     actually collect them once the only strong reference is dropped. *)
  let q = Eventq.create () in
  let w = Weak.create 8 in
  for i = 0 to 7 do
    Eventq.add q ~time:(float_of_int i) (ref i)
  done;
  for i = 0 to 7 do
    match Eventq.pop q with
    | Some (_, v) -> Weak.set w i (Some v)
    | None -> Alcotest.fail "heap emptied early"
  done;
  Gc.full_major ();
  Gc.full_major ();
  let live = ref 0 in
  for i = 0 to 7 do
    if Weak.check w i then incr live
  done;
  check_int "popped values are collectable" 0 !live

let test_calendar_pop_releases_value () =
  let q = Calendar_queue.create () in
  let w = Weak.create 8 in
  for i = 0 to 7 do
    Calendar_queue.add q ~time:(float_of_int i) (ref i)
  done;
  for i = 0 to 7 do
    match Calendar_queue.pop q with
    | Some (_, v) -> Weak.set w i (Some v)
    | None -> Alcotest.fail "calendar emptied early"
  done;
  Gc.full_major ();
  Gc.full_major ();
  let live = ref 0 in
  for i = 0 to 7 do
    if Weak.check w i then incr live
  done;
  check_int "popped values are collectable" 0 !live

(* --- Seeded end-to-end trace equality ------------------------------ *)

(* A scaled-down copy of the benchmark scenario (4 channels, SRR with
   markers, resequencer) with every observability event rendered to
   JSON. The two engines must produce byte-identical traces. *)
let trace_run ~engine ~n_packets =
  let open Stripe_packet in
  let open Stripe_core in
  let buf = Buffer.create 65536 in
  let sink =
    Stripe_obs.Sink.of_fn (fun e ->
        Buffer.add_string buf (Stripe_obs.Event.to_json e);
        Buffer.add_char buf '\n')
  in
  let sim = Sim.create ~engine () in
  let rng = Rng.create 42 in
  let delays = [| 0.001; 0.002; 0.005; 0.010 |] in
  let n = Array.length delays in
  let rates = Array.make n 10e6 in
  let srr = Srr.for_rates ~rates_bps:rates ~quantum_unit:1500 () in
  let reseq =
    Resequencer.create
      ~deficit:(Deficit.clone_initial srr)
      ~now:(fun () -> Sim.now sim)
      ~sink
      ~deliver:(fun ~channel:_ _ -> ())
      ()
  in
  let links =
    Array.init n (fun i ->
        Link.create sim
          ~name:(Printf.sprintf "ch%d" i)
          ~rate_bps:rates.(i) ~prop_delay:delays.(i) ~rng:(Rng.split rng)
          ~channel:i ~sink
          ~deliver:(fun pkt -> Resequencer.receive reseq ~channel:i pkt)
          ())
  in
  let striper =
    Striper.create
      ~scheduler:(Scheduler.of_deficit ~name:"SRR" srr)
      ~marker:(Marker.make ~every_rounds:4 ())
      ~now:(fun () -> Sim.now sim)
      ~sink
      ~emit:(fun ~channel pkt ->
        ignore (Link.send links.(channel) ~size:pkt.Packet.size pkt))
      ()
  in
  let gen = Stripe_workload.Genpkt.bimodal ~rng ~small:200 ~large:1000 () in
  let seq = ref 0 in
  let rec tick () =
    if !seq < n_packets then begin
      Striper.push striper
        (Packet.data ~seq:!seq ~born:(Sim.now sim) ~size:(gen ()) ());
      incr seq;
      Sim.schedule_after sim ~delay:0.00015 tick
    end
  in
  tick ();
  Sim.run sim;
  Buffer.contents buf

let test_engines_trace_identical () =
  let heap = trace_run ~engine:Sim.Heap ~n_packets:2000 in
  let cal = trace_run ~engine:Sim.Calendar ~n_packets:2000 in
  check "trace is non-trivial" true (String.length heap > 10_000);
  check "heap and calendar traces byte-identical" true (String.equal heap cal)

let suites =
  [
    ( "calendar",
      [
        Alcotest.test_case "empty" `Quick test_empty;
        Alcotest.test_case "time order" `Quick test_time_order;
        Alcotest.test_case "fifo ties" `Quick test_fifo_ties;
        Alcotest.test_case "growth across resizes" `Quick
          test_growth_across_resizes;
        Alcotest.test_case "wide time spread" `Quick test_wide_spread;
        Alcotest.test_case "clear and reuse" `Quick test_clear_and_reuse;
        QCheck_alcotest.to_alcotest prop_calendar_equals_heap;
        QCheck_alcotest.to_alcotest prop_calendar_churn_equals_heap;
        Alcotest.test_case "eventq pop releases value" `Quick
          test_pop_releases_value;
        Alcotest.test_case "calendar pop releases value" `Quick
          test_calendar_pop_releases_value;
        Alcotest.test_case "engines trace identical" `Quick
          test_engines_trace_identical;
      ] );
  ]
