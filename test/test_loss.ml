(* Tests for loss processes: rates, burstiness of Gilbert-Elliott, and the
   deterministic drop pattern used in golden walkthroughs. *)

open Stripe_netsim

let rate process rng n =
  let dropped = ref 0 in
  for _ = 1 to n do
    if Loss.drop process rng then incr dropped
  done;
  float_of_int !dropped /. float_of_int n

let test_none () =
  let rng = Rng.create 1 in
  Alcotest.(check (float 0.0)) "lossless drops nothing" 0.0
    (rate (Loss.none ()) rng 1000)

let test_bernoulli_rate () =
  let rng = Rng.create 2 in
  let r = rate (Loss.bernoulli ~p:0.2) rng 100_000 in
  Alcotest.(check bool)
    (Printf.sprintf "bernoulli rate %.3f near 0.2" r)
    true
    (abs_float (r -. 0.2) < 0.01)

let test_bernoulli_extremes () =
  let rng = Rng.create 3 in
  Alcotest.(check (float 0.0)) "p=0 never drops" 0.0
    (rate (Loss.bernoulli ~p:0.0) rng 1000);
  Alcotest.(check (float 0.0)) "p=1 always drops" 1.0
    (rate (Loss.bernoulli ~p:1.0) rng 1000)

let test_bernoulli_validation () =
  Alcotest.check_raises "p > 1 rejected"
    (Invalid_argument "Loss: p=1.5 not a probability") (fun () ->
      ignore (Loss.bernoulli ~p:1.5))

(* Gilbert-Elliott with a lossy bad state must produce longer loss runs
   than a Bernoulli process of the same average rate. *)
let test_gilbert_burstiness () =
  let rng = Rng.create 4 in
  let mean_run process rng n =
    let runs = ref 0 and losses = ref 0 and in_run = ref false in
    for _ = 1 to n do
      if Loss.drop process rng then begin
        incr losses;
        if not !in_run then begin
          incr runs;
          in_run := true
        end
      end
      else in_run := false
    done;
    if !runs = 0 then 0.0 else float_of_int !losses /. float_of_int !runs
  in
  let gilbert =
    Loss.gilbert ~p_good_to_bad:0.01 ~p_bad_to_good:0.2 ~loss_good:0.0
      ~loss_bad:0.9
  in
  let g_run = mean_run gilbert rng 200_000 in
  let b_run = mean_run (Loss.bernoulli ~p:0.05) rng 200_000 in
  Alcotest.(check bool)
    (Printf.sprintf "gilbert run %.2f > bernoulli run %.2f" g_run b_run)
    true (g_run > b_run *. 1.5)

let test_gilbert_rate_bounds () =
  let rng = Rng.create 5 in
  let g =
    Loss.gilbert ~p_good_to_bad:0.05 ~p_bad_to_good:0.05 ~loss_good:0.0
      ~loss_bad:1.0
  in
  let r = rate g rng 100_000 in
  (* Symmetric chain spends half its time in each state. *)
  Alcotest.(check bool)
    (Printf.sprintf "gilbert rate %.3f near 0.5" r)
    true
    (abs_float (r -. 0.5) < 0.03)

(* Over a long run the empirical loss rate must converge on the chain's
   stationary rate: pi_bad = p_g2b / (p_g2b + p_b2g), then
   rate = (1 - pi_bad) * loss_good + pi_bad * loss_bad. *)
let test_gilbert_stationary_rate () =
  let rng = Rng.create 8 in
  let p_good_to_bad = 0.02 and p_bad_to_good = 0.1 in
  let loss_good = 0.01 and loss_bad = 0.8 in
  let g = Loss.gilbert ~p_good_to_bad ~p_bad_to_good ~loss_good ~loss_bad in
  let pi_bad = p_good_to_bad /. (p_good_to_bad +. p_bad_to_good) in
  let expect = ((1.0 -. pi_bad) *. loss_good) +. (pi_bad *. loss_bad) in
  let r = rate g rng 100_000 in
  Alcotest.(check bool)
    (Printf.sprintf "empirical %.4f near stationary %.4f" r expect)
    true
    (abs_float (r -. expect) < 0.02)

(* With loss_bad = 1 and loss_good = 0, loss runs coincide with bad-state
   sojourns, which are geometric with mean 1/p_bad_to_good: the mean must
   sit near it and the length histogram must decay. *)
let test_gilbert_burst_length_distribution () =
  let rng = Rng.create 9 in
  let g =
    Loss.gilbert ~p_good_to_bad:0.05 ~p_bad_to_good:0.25 ~loss_good:0.0
      ~loss_bad:1.0
  in
  let hist = Hashtbl.create 16 in
  let cur = ref 0 in
  let close_run () =
    if !cur > 0 then begin
      Hashtbl.replace hist !cur
        (1 + Option.value ~default:0 (Hashtbl.find_opt hist !cur));
      cur := 0
    end
  in
  for _ = 1 to 200_000 do
    if Loss.drop g rng then incr cur else close_run ()
  done;
  close_run ();
  let runs = Hashtbl.fold (fun _ c acc -> acc + c) hist 0 in
  let losses = Hashtbl.fold (fun len c acc -> acc + (len * c)) hist 0 in
  let mean = float_of_int losses /. float_of_int (max 1 runs) in
  Alcotest.(check bool)
    (Printf.sprintf "mean burst %.2f in [3, 5] (1/p_bad_to_good = 4)" mean)
    true
    (mean > 3.0 && mean < 5.0);
  let count len = Option.value ~default:0 (Hashtbl.find_opt hist len) in
  Alcotest.(check bool)
    (Printf.sprintf "geometric decay: %d singles > %d of length 4" (count 1)
       (count 4))
    true
    (count 1 > count 4)

let test_deterministic_every () =
  let rng = Rng.create 6 in
  let p = Loss.deterministic_every 3 in
  let pattern = List.init 9 (fun _ -> Loss.drop p rng) in
  Alcotest.(check (list bool)) "every 3rd packet dropped"
    [ false; false; true; false; false; true; false; false; true ]
    pattern

let test_deterministic_every_one () =
  let rng = Rng.create 7 in
  let p = Loss.deterministic_every 1 in
  Alcotest.(check (float 0.0)) "n=1 drops everything" 1.0 (rate p rng 100)

let test_deterministic_validation () =
  Alcotest.check_raises "n=0 rejected"
    (Invalid_argument "Loss.deterministic_every: n must be >= 1") (fun () ->
      ignore (Loss.deterministic_every 0))

let suites =
  [
    ( "loss",
      [
        Alcotest.test_case "none" `Quick test_none;
        Alcotest.test_case "bernoulli rate" `Quick test_bernoulli_rate;
        Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
        Alcotest.test_case "bernoulli validation" `Quick test_bernoulli_validation;
        Alcotest.test_case "gilbert burstiness" `Quick test_gilbert_burstiness;
        Alcotest.test_case "gilbert rate" `Quick test_gilbert_rate_bounds;
        Alcotest.test_case "gilbert stationary rate" `Quick
          test_gilbert_stationary_rate;
        Alcotest.test_case "gilbert burst lengths" `Quick
          test_gilbert_burst_length_distribution;
        Alcotest.test_case "deterministic every" `Quick test_deterministic_every;
        Alcotest.test_case "deterministic n=1" `Quick test_deterministic_every_one;
        Alcotest.test_case "deterministic validation" `Quick
          test_deterministic_validation;
      ] );
  ]
