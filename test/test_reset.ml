(* Tests for the crash-recovery reset barrier: Striper.send_reset +
   Resequencer epoch reinitialization. *)

open Stripe_core
open Stripe_packet

type pair = {
  striper : Striper.t;
  reseq : Resequencer.t;
  wires : Packet.t Queue.t array;
  delivered : int list ref;
}

let make ~n () =
  let quanta = Array.make n 1000 in
  let engine = Srr.create ~quanta () in
  let wires = Array.init n (fun _ -> Queue.create ()) in
  let delivered = ref [] in
  let reseq =
    Resequencer.create ~deficit:(Deficit.clone_initial engine)
      ~deliver:(fun ~channel:_ p -> delivered := p.Packet.seq :: !delivered)
      ()
  in
  let striper =
    Striper.create
      ~scheduler:(Scheduler.of_deficit ~name:"SRR" engine)
      ~emit:(fun ~channel pkt -> Queue.add pkt wires.(channel))
      ()
  in
  { striper; reseq; wires; delivered }

let shuttle ?(drop = fun _ -> false) t =
  Array.iteri
    (fun c q ->
      Queue.iter (fun pkt -> if not (drop pkt) then Resequencer.receive t.reseq ~channel:c pkt) q)
    t.wires;
  Array.iter Queue.clear t.wires

(* Interleave delivery across wires round-robin to mimic similar-speed
   channels. *)
let shuttle_interleaved ?(drop = fun _ -> false) t =
  let remaining = ref true in
  while !remaining do
    remaining := false;
    Array.iteri
      (fun c q ->
        match Queue.take_opt q with
        | Some pkt ->
          remaining := true;
          if not (drop pkt) then Resequencer.receive t.reseq ~channel:c pkt
        | None -> ())
      t.wires
  done

let test_reset_requires_cfq () =
  let striper =
    Striper.create
      ~scheduler:(Scheduler.random_selection ~n:2 ~seed:1)
      ~emit:(fun ~channel:_ _ -> ())
      ()
  in
  Alcotest.check_raises "reset on non-causal scheduler"
    (Invalid_argument "Striper.send_reset: requires a CFQ scheduler") (fun () ->
      Striper.send_reset striper)

let test_reset_markers_on_every_channel () =
  let t = make ~n:3 () in
  Striper.send_reset t.striper;
  Array.iter
    (fun q ->
      match Queue.peek_opt q with
      | Some pkt ->
        let m = Packet.get_marker pkt in
        Alcotest.(check bool) "reset flag" true m.Packet.m_reset;
        Alcotest.(check int) "fresh round" 0 m.Packet.m_round;
        Alcotest.(check int) "fresh DC" 1000 m.Packet.m_dc
      | None -> Alcotest.fail "missing reset marker")
    t.wires

let test_clean_reset_mid_stream () =
  let t = make ~n:2 () in
  for seq = 0 to 9 do
    Striper.push t.striper (Packet.data ~seq ~size:1000 ())
  done;
  Striper.send_reset t.striper;
  for seq = 10 to 19 do
    Striper.push t.striper (Packet.data ~seq ~size:1000 ())
  done;
  shuttle_interleaved t;
  Alcotest.(check (list int)) "stream unbroken across a clean reset"
    (List.init 20 Fun.id)
    (List.rev !(t.delivered));
  Alcotest.(check int) "one barrier completed" 1 (Resequencer.resets t.reseq)

let test_reset_recovers_corrupt_receiver () =
  (* Lose many packets with NO periodic markers: the receiver is now
     arbitrarily desynchronized. A reset must restore FIFO for the new
     epoch. *)
  let t = make ~n:2 () in
  let rng = Stripe_netsim.Rng.create 5 in
  for seq = 0 to 199 do
    Striper.push t.striper (Packet.data ~seq ~size:1000 ())
  done;
  shuttle_interleaved
    ~drop:(fun pkt ->
      (not (Packet.is_marker pkt)) && Stripe_netsim.Rng.bernoulli rng ~p:0.4)
    t;
  (* The old epoch is misordered. *)
  let old_out = List.rev !(t.delivered) in
  Alcotest.(check bool) "old epoch is desynchronized" true
    (old_out <> List.sort compare old_out);
  (* Crash recovery: reset, then a fresh epoch. *)
  Striper.send_reset t.striper;
  for seq = 1000 to 1199 do
    Striper.push t.striper (Packet.data ~seq ~size:1000 ())
  done;
  t.delivered := [];
  shuttle_interleaved t;
  Alcotest.(check int) "barrier completed" 1 (Resequencer.resets t.reseq);
  let new_out = List.rev !(t.delivered) in
  let new_epoch = List.filter (fun s -> s >= 1000) new_out in
  Alcotest.(check (list int)) "fresh epoch delivered FIFO and complete"
    (List.init 200 (fun i -> 1000 + i))
    new_epoch

let test_double_reset () =
  let t = make ~n:2 () in
  Striper.push t.striper (Packet.data ~seq:0 ~size:1000 ());
  Striper.push t.striper (Packet.data ~seq:1 ~size:1000 ());
  Striper.send_reset t.striper;
  Striper.send_reset t.striper;
  Striper.push t.striper (Packet.data ~seq:2 ~size:1000 ());
  Striper.push t.striper (Packet.data ~seq:3 ~size:1000 ());
  shuttle_interleaved t;
  Alcotest.(check (list int)) "both barriers cross cleanly" [ 0; 1; 2; 3 ]
    (List.rev !(t.delivered));
  Alcotest.(check int) "two barriers" 2 (Resequencer.resets t.reseq)

let test_straggler_delivery_before_barrier () =
  (* Data buffered ahead of the reset marker on a channel is delivered
     before the barrier applies. *)
  let t = make ~n:2 () in
  for seq = 0 to 3 do
    Striper.push t.striper (Packet.data ~seq ~size:1000 ())
  done;
  Striper.send_reset t.striper;
  (* Deliver channel 1 fully first, then channel 0: the receiver blocks
     on channel 0, drains stragglers in schedule order, then crosses. *)
  shuttle t;
  Alcotest.(check (list int)) "stragglers then barrier" [ 0; 1; 2; 3 ]
    (List.rev !(t.delivered));
  Alcotest.(check int) "barrier done" 1 (Resequencer.resets t.reseq)

let test_barrier_completes_on_in_service_channel () =
  (* The last reset marker of the barrier arrives on the channel the
     receiver is currently blocked on, mid-visit, in the same round — the
     barrier must complete from inside that visit and the fresh epoch
     flow immediately. *)
  let t = make ~n:2 () in
  Striper.push t.striper (Packet.data ~seq:0 ~size:1000 ());
  Striper.push t.striper (Packet.data ~seq:1 ~size:1000 ());
  Striper.send_reset t.striper;
  Striper.push t.striper (Packet.data ~seq:2 ~size:1000 ());
  Striper.push t.striper (Packet.data ~seq:3 ~size:1000 ());
  (* Old epoch: seq 0 -> ch0, seq 1 -> ch1. Deliver channel 0's whole
     stream first: seq 0, then its reset marker — half the barrier. *)
  Queue.iter (fun pkt -> Resequencer.receive t.reseq ~channel:0 pkt) t.wires.(0);
  Queue.clear t.wires.(0);
  Alcotest.(check (option int)) "blocked mid-visit on channel 1" (Some 1)
    (Resequencer.blocked_on t.reseq);
  Alcotest.(check int) "barrier not yet complete" 0 (Resequencer.resets t.reseq);
  (* Channel 1: straggler, then the barrier-completing reset marker, then
     new-epoch data. *)
  Queue.iter (fun pkt -> Resequencer.receive t.reseq ~channel:1 pkt) t.wires.(1);
  Queue.clear t.wires.(1);
  Alcotest.(check int) "barrier completed in-visit" 1 (Resequencer.resets t.reseq);
  Alcotest.(check (list int)) "old epoch, then fresh epoch, all FIFO"
    [ 0; 1; 2; 3 ]
    (List.rev !(t.delivered));
  Alcotest.(check int) "no stranded packets" 0 (Resequencer.pending t.reseq)

let prop_reset_restores_fifo =
  QCheck.Test.make
    ~name:"reset: fresh epoch is FIFO after arbitrary prior corruption"
    ~count:60
    QCheck.(pair (int_range 0 1000) (float_range 0.0 0.8))
    (fun (seed, loss_p) ->
      let t = make ~n:3 () in
      let rng = Stripe_netsim.Rng.create seed in
      for seq = 0 to 99 do
        Striper.push t.striper
          (Packet.data ~seq ~size:(100 + Stripe_netsim.Rng.int rng 900) ())
      done;
      shuttle_interleaved
        ~drop:(fun pkt ->
          (not (Packet.is_marker pkt))
          && Stripe_netsim.Rng.bernoulli rng ~p:loss_p)
        t;
      Striper.send_reset t.striper;
      for seq = 500 to 599 do
        Striper.push t.striper
          (Packet.data ~seq ~size:(100 + Stripe_netsim.Rng.int rng 900) ())
      done;
      t.delivered := [];
      shuttle_interleaved t;
      let fresh = List.filter (fun s -> s >= 500) (List.rev !(t.delivered)) in
      fresh = List.init 100 (fun i -> 500 + i))

let suites =
  [
    ( "reset",
      [
        Alcotest.test_case "requires cfq" `Quick test_reset_requires_cfq;
        Alcotest.test_case "markers on every channel" `Quick
          test_reset_markers_on_every_channel;
        Alcotest.test_case "clean mid-stream reset" `Quick test_clean_reset_mid_stream;
        Alcotest.test_case "recovers corrupt receiver" `Quick
          test_reset_recovers_corrupt_receiver;
        Alcotest.test_case "double reset" `Quick test_double_reset;
        Alcotest.test_case "stragglers before barrier" `Quick
          test_straggler_delivery_before_barrier;
        Alcotest.test_case "barrier completes on in-service channel" `Quick
          test_barrier_completes_on_in_service_channel;
        QCheck_alcotest.to_alcotest prop_reset_restores_fifo;
      ] );
  ]
