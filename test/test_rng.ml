(* Tests for the deterministic RNG: reproducibility, stream splitting,
   range correctness, and rough distribution sanity. *)

open Stripe_netsim

let test_determinism () =
  let a = Rng.create 1234 and b = Rng.create 1234 in
  let xs = List.init 100 (fun _ -> Rng.bits64 a) in
  let ys = List.init 100 (fun _ -> Rng.bits64 b) in
  Alcotest.(check bool) "equal seeds give equal streams" true (xs = ys)

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let xs = List.init 10 (fun _ -> Rng.bits64 a) in
  let ys = List.init 10 (fun _ -> Rng.bits64 b) in
  Alcotest.(check bool) "different seeds differ" true (xs <> ys)

let test_split_independence () =
  let parent = Rng.create 99 in
  let child = Rng.split parent in
  let xs = List.init 50 (fun _ -> Rng.bits64 parent) in
  let ys = List.init 50 (fun _ -> Rng.bits64 child) in
  Alcotest.(check bool) "split stream differs from parent" true (xs <> ys)

let test_stream_determinism () =
  (* Indexed substreams are a pure function of (seed, index): same pair,
     same sequence, however many other streams were made in between. *)
  let a = Rng.stream ~seed:42 3 in
  ignore (Rng.stream ~seed:42 0);
  ignore (Rng.stream ~seed:7 3);
  let b = Rng.stream ~seed:42 3 in
  let xs = List.init 100 (fun _ -> Rng.bits64 a) in
  let ys = List.init 100 (fun _ -> Rng.bits64 b) in
  Alcotest.(check bool) "stream (seed, index) reproduces" true (xs = ys)

let test_stream_distinctness () =
  let take i =
    let g = Rng.stream ~seed:42 i in
    List.init 50 (fun _ -> Rng.bits64 g)
  in
  let streams = List.init 8 take in
  List.iteri
    (fun i xs ->
      List.iteri
        (fun j ys ->
          if i < j then
            Alcotest.(check bool)
              (Printf.sprintf "streams %d and %d differ" i j)
              true (xs <> ys))
        streams)
    streams;
  let other_seed = take 0 in
  let g = Rng.stream ~seed:43 0 in
  let ys = List.init 50 (fun _ -> Rng.bits64 g) in
  Alcotest.(check bool) "seed changes every stream" true (other_seed <> ys)

let test_stream_rejects_negative () =
  Alcotest.check_raises "negative index rejected"
    (Invalid_argument "Rng.stream: index must be non-negative") (fun () ->
      ignore (Rng.stream ~seed:1 (-1)))

let test_stream_statistics () =
  (* Statistical smoke over a whole fan of substreams, as the sharded
     fleet uses them: pooled uniform draws must average near 1/2. *)
  let sum = ref 0.0 in
  let n_streams = 16 and per = 5_000 in
  for k = 0 to n_streams - 1 do
    let g = Rng.stream ~seed:1234 k in
    for _ = 1 to per do
      sum := !sum +. Rng.float g 1.0
    done
  done;
  let mean = !sum /. float_of_int (n_streams * per) in
  Alcotest.(check bool)
    (Printf.sprintf "pooled stream mean %.4f in [0.45, 0.55]" mean)
    true
    (mean > 0.45 && mean < 0.55)

let test_int_range () =
  let rng = Rng.create 7 in
  let ok = ref true in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    if v < 0 || v >= 17 then ok := false
  done;
  Alcotest.(check bool) "int stays in [0, n)" true !ok

let test_int_covers_range () =
  let rng = Rng.create 8 in
  let seen = Array.make 8 false in
  for _ = 1 to 1_000 do
    seen.(Rng.int rng 8) <- true
  done;
  Alcotest.(check bool) "all 8 buckets hit" true (Array.for_all Fun.id seen)

let test_int_rejects_nonpositive () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "n=0 rejected"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0))

let test_float_range () =
  let rng = Rng.create 11 in
  let ok = ref true in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 3.5 in
    if v < 0.0 || v >= 3.5 then ok := false
  done;
  Alcotest.(check bool) "float stays in [0, x)" true !ok

let test_bernoulli_rate () =
  let rng = Rng.create 5 in
  let hits = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Rng.bernoulli rng ~p:0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "bernoulli(0.3) rate %.3f within 1.5%%" rate)
    true
    (abs_float (rate -. 0.3) < 0.015)

let test_exponential_mean () =
  let rng = Rng.create 6 in
  let sum = ref 0.0 in
  let n = 100_000 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng ~mean:2.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "exponential mean %.3f near 2.0" mean)
    true
    (abs_float (mean -. 2.0) < 0.05)

let test_uniform_bounds () =
  let rng = Rng.create 12 in
  let ok = ref true in
  for _ = 1 to 1000 do
    let v = Rng.uniform rng ~lo:5.0 ~hi:6.0 in
    if v < 5.0 || v >= 6.0 then ok := false
  done;
  Alcotest.(check bool) "uniform in [lo, hi)" true !ok

let test_shuffle_is_permutation () =
  let rng = Rng.create 3 in
  let a = Array.init 20 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check bool) "shuffle preserves elements" true
    (Array.to_list sorted = List.init 20 Fun.id)

let suites =
  [
    ( "rng",
      [
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
        Alcotest.test_case "split independence" `Quick test_split_independence;
        Alcotest.test_case "stream determinism" `Quick test_stream_determinism;
        Alcotest.test_case "stream distinctness" `Quick test_stream_distinctness;
        Alcotest.test_case "stream bad index" `Quick test_stream_rejects_negative;
        Alcotest.test_case "stream statistics" `Quick test_stream_statistics;
        Alcotest.test_case "int range" `Quick test_int_range;
        Alcotest.test_case "int coverage" `Quick test_int_covers_range;
        Alcotest.test_case "int bad bound" `Quick test_int_rejects_nonpositive;
        Alcotest.test_case "float range" `Quick test_float_range;
        Alcotest.test_case "bernoulli rate" `Quick test_bernoulli_rate;
        Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
        Alcotest.test_case "uniform bounds" `Quick test_uniform_bounds;
        Alcotest.test_case "shuffle permutation" `Quick test_shuffle_is_permutation;
      ] );
  ]
