(* Aggregates every module's alcotest suites into one runner. *)

let () =
  Alcotest.run "stripe"
    (List.concat
       [
         Test_eventq.suites;
         Test_calendar.suites;
         Test_sim.suites;
         Test_rng.suites;
         Test_loss.suites;
         Test_link.suites;
         Test_fault.suites;
         Test_impair.suites;
         Test_packet.suites;
         Test_deficit.suites;
         Test_cfq.suites;
         Test_scheduler.suites;
         Test_striper.suites;
         Test_resequencer.suites;
         Test_seq_resequencer.suites;
         Test_reset.suites;
         Test_fragmenter.suites;
         Test_skew_duplex.suites;
         Test_atm.suites;
         Test_stabilizer.suites;
         Test_misc.suites;
         Test_obs.suites;
         Test_properties.suites;
         Test_mppp.suites;
         Test_trace_file.suites;
         Test_fair_queue.suites;
         Test_misc2.suites;
         Test_integration.suites;
         Test_fairness.suites;
         Test_metrics.suites;
         Test_host.suites;
         Test_ipstack.suites;
         Test_adapt.suites;
         Test_fleet.suites;
         Test_sharded.suites;
         Test_chaos.suites;
         Test_health.suites;
         Test_disciplines.suites;
         Test_transport.suites;
         Test_workload.suites;
       ])
