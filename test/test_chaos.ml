(* Chaos-engine tests: endpoint crash/restart recovery (PROTOCOL.md
   §12), the generation tag that pairs §5 reset barriers under fault
   composition, chaos plan parsing/generation/application, the
   overlap-aware Recovery interval arithmetic, the Bundle_pool
   recycle × watchdog interaction, and the always-on monitors'
   detection self-test. *)

open Stripe_netsim
open Stripe_core
open Stripe_packet
module Bundle_pool = Stripe_fleet.Bundle_pool
module Monitor = Stripe_obs.Monitor
module Recovery = Stripe_metrics.Recovery

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else go (i + 1)
  in
  go 0

(* --- Marker integrity: epoch and generation ride the checksum ------- *)

let test_marker_epoch_gen_in_checksum () =
  let m =
    Packet.get_marker
      (Packet.marker ~epoch:1 ~gen:2 ~channel:0 ~round:3 ~dc:500 ~born:0.0 ())
  in
  check "constructor-built marker is valid" true (Packet.marker_valid m);
  check_int "epoch stamped" 1 m.Packet.m_epoch;
  check_int "generation stamped" 2 m.Packet.m_gen;
  (* Forging either incarnation field without restamping must fail the
     integrity check — a receiver can never act on a damaged pair. *)
  check "forged generation detected" false
    (Packet.marker_valid { m with Packet.m_gen = m.Packet.m_gen + 1 });
  check "forged epoch detected" false
    (Packet.marker_valid { m with Packet.m_epoch = m.Packet.m_epoch + 1 })

(* --- A sender/receiver pair over perfect per-channel FIFOs ---------- *)

type pair = {
  striper : Striper.t;
  reseq : Resequencer.t;
  wires : Packet.t Queue.t array;
  delivered : int list ref;
}

let make ?(marker_every = 0) ~n () =
  let quanta = Array.make n 1000 in
  let engine = Srr.create ~quanta () in
  let wires = Array.init n (fun _ -> Queue.create ()) in
  let delivered = ref [] in
  let reseq =
    Resequencer.create
      ~deficit:(Deficit.clone_initial engine)
      ~deliver:(fun ~channel:_ p -> delivered := p.Packet.seq :: !delivered)
      ()
  in
  let striper =
    Striper.create
      ~scheduler:(Scheduler.of_deficit ~name:"SRR" engine)
      ?marker:
        (if marker_every > 0 then Some (Marker.make ~every_rounds:marker_every ())
         else None)
      ~emit:(fun ~channel pkt -> Queue.add pkt wires.(channel))
      ()
  in
  { striper; reseq; wires; delivered }

let push t seq = Striper.push t.striper (Packet.data ~seq ~size:1000 ())

(* Drain the wires channel-by-channel (channel 0's whole history before
   channel 1's — the worst case for barrier pairing). *)
let shuttle ?(drop = fun ~channel:_ _ -> false) t =
  Array.iteri
    (fun c q ->
      Queue.iter
        (fun pkt ->
          if not (drop ~channel:c pkt) then
            Resequencer.receive t.reseq ~channel:c pkt)
        q)
    t.wires;
  Array.iter Queue.clear t.wires

(* Round-robin across the wires, mimicking similar-speed channels. *)
let shuttle_interleaved ?(drop = fun ~channel:_ _ -> false) t =
  let remaining = ref true in
  while !remaining do
    remaining := false;
    Array.iteri
      (fun c q ->
        match Queue.take_opt q with
        | Some pkt ->
          remaining := true;
          if not (drop ~channel:c pkt) then
            Resequencer.receive t.reseq ~channel:c pkt
        | None -> ())
      t.wires
  done

(* --- Sender crash + restart (PROTOCOL.md §12) ----------------------- *)

let test_sender_crash_restart_recovers () =
  let t = make ~marker_every:2 ~n:2 () in
  for seq = 0 to 49 do
    push t seq
  done;
  (* Crash with the old epoch still in flight: per-channel FIFO delivers
     the stragglers first, then the restart's reset barrier, then the
     fresh incarnation. *)
  Striper.crash_restart t.striper;
  check_int "sender epoch bumped" 1 (Striper.epoch t.striper);
  for seq = 100 to 149 do
    push t seq
  done;
  shuttle_interleaved t;
  Alcotest.(check (list int))
    "stragglers then the fresh epoch, both in order"
    (List.init 50 Fun.id @ List.init 50 (fun i -> 100 + i))
    (List.rev !(t.delivered));
  check "receiver completed a crash barrier" true
    (Resequencer.crash_syncs t.reseq >= 1)

let test_sender_crash_survives_lost_reset_markers () =
  let t = make ~marker_every:2 ~n:2 () in
  for seq = 0 to 19 do
    push t seq
  done;
  shuttle_interleaved t;
  Striper.crash_restart t.striper;
  t.delivered := [];
  (* The restart's reset barrier is lost on the wire: recovery must ride
     the epoch stamp on ordinary periodic markers instead. *)
  let drop_resets ~channel:_ pkt =
    Packet.is_marker pkt && (Packet.get_marker pkt).Packet.m_reset
  in
  for seq = 100 to 139 do
    push t seq
  done;
  shuttle_interleaved ~drop:drop_resets t;
  check "crash-synced without any reset marker" true
    (Resequencer.crash_syncs t.reseq >= 1);
  (* Data beaten to the receiver by no marker of the new epoch is
     discarded by the crash-sync; everything else is delivered — the
     first batch is fully accounted for. *)
  check_int "first post-crash batch conserved" 40
    (List.length !(t.delivered) + Resequencer.epoch_discards t.reseq);
  (* Once resynchronized, the stream is FIFO again. *)
  t.delivered := [];
  for seq = 200 to 239 do
    push t seq
  done;
  shuttle_interleaved t;
  Alcotest.(check (list int))
    "steady state restored after losing the reset barrier"
    (List.init 40 (fun i -> 200 + i))
    (List.rev !(t.delivered))

(* --- Receiver crash + cold restart ---------------------------------- *)

let test_receiver_cold_restart () =
  let t = make ~marker_every:2 ~n:2 () in
  for seq = 0 to 19 do
    push t seq
  done;
  (* Strand the receiver mid-stream: only channel 1 delivers, so the
     resequencer blocks on channel 0 with channel 1's data buffered. *)
  Queue.iter (fun pkt -> Resequencer.receive t.reseq ~channel:1 pkt) t.wires.(1);
  Array.iter Queue.clear t.wires;
  let buffered = Resequencer.pending t.reseq in
  check "receiver is holding data" true (buffered > 0);
  let wiped = Resequencer.crash_restart t.reseq in
  check_int "crash wipes exactly the buffered data" buffered wiped;
  check_int "nothing pending after the crash" 0 (Resequencer.pending t.reseq);
  (* Cold recovery needs no out-of-band signal: the next ordinary marker
     per channel crash-syncs it and the barrier rebuilds the engine. *)
  t.delivered := [];
  for seq = 100 to 139 do
    push t seq
  done;
  shuttle_interleaved t;
  check "channels crash-synced cold" true (Resequencer.crash_syncs t.reseq >= 1);
  check_int "post-restart batch conserved" 40
    (List.length !(t.delivered) + Resequencer.epoch_discards t.reseq);
  t.delivered := [];
  for seq = 200 to 219 do
    push t seq
  done;
  shuttle_interleaved t;
  Alcotest.(check (list int))
    "steady state restored after the cold restart"
    (List.init 20 (fun i -> 200 + i))
    (List.rev !(t.delivered))

(* --- The generation tag pairs overlapping §5 barriers --------------- *)

let test_gen_pairs_consecutive_barriers () =
  let t = make ~n:2 () in
  for seq = 0 to 9 do
    push t seq
  done;
  Striper.send_reset t.striper;
  for seq = 10 to 19 do
    push t seq
  done;
  Striper.send_reset t.striper;
  for seq = 20 to 29 do
    push t seq
  done;
  (* Channel 0's whole history (both barriers) arrives before channel 1
     sends anything: without the generation tag the receiver would pair
     channel 0's second reset with channel 1's first. *)
  shuttle t;
  Alcotest.(check (list int))
    "both barriers adopted in order" (List.init 30 Fun.id)
    (List.rev !(t.delivered));
  check_int "two reset barriers completed" 2 (Resequencer.resets t.reseq);
  check_int "no forced barrier" 0 (Resequencer.forced_barriers t.reseq);
  (* A straggling duplicate of the first barrier's reset marker is
     absorbed as the duplicate it is — not parked as a phantom
     half-barrier that would trap data behind it. *)
  Resequencer.receive t.reseq ~channel:0
    (Packet.marker ~reset:true ~gen:1 ~channel:0 ~round:0 ~dc:1000 ~born:0.0 ());
  check_int "stale reset absorbed" 1 (Resequencer.stale_resets t.reseq);
  check_int "no phantom barrier" 2 (Resequencer.resets t.reseq);
  t.delivered := [];
  for seq = 30 to 39 do
    push t seq
  done;
  shuttle t;
  Alcotest.(check (list int))
    "stream continues in order past the stale reset"
    (List.init 10 (fun i -> 30 + i))
    (List.rev !(t.delivered))

let test_min_pair_adoption_with_lost_reset () =
  let t = make ~n:2 () in
  for seq = 0 to 9 do
    push t seq
  done;
  Striper.send_reset t.striper;
  for seq = 10 to 19 do
    push t seq
  done;
  Striper.send_reset t.striper;
  for seq = 20 to 29 do
    push t seq
  done;
  (* Channel 1 loses the first barrier's reset marker, so it parks at
     generation 2 while channel 0 parks at generation 1. Adoption must
     take the minimum pair — unparking channel 0 only — and leave
     channel 1 parked as the start of the next barrier. *)
  let drop ~channel pkt =
    channel = 1 && Packet.is_marker pkt
    &&
    let m = Packet.get_marker pkt in
    m.Packet.m_reset && m.Packet.m_gen = 1
  in
  shuttle_interleaved ~drop t;
  check_int "both barriers still completed" 2 (Resequencer.resets t.reseq);
  check_int "never forced" 0 (Resequencer.forced_barriers t.reseq);
  Alcotest.(check (list int))
    "no packet lost across the mispaired barriers" (List.init 30 Fun.id)
    (List.sort compare !(t.delivered))

(* --- Chaos plans: grammar, determinism, application ----------------- *)

let test_chaos_parse_spec () =
  (match
     Chaos.parse_spec "storm=0+2/0.5@1,crash=rx/0/0.2@2,crash=tx/3/0.1@0.5,violate=1@4"
   with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok actions ->
    check_int "four actions" 4 (List.length actions);
    (match actions with
    | [
     Chaos.Storm { channels = [ 0; 2 ]; at = 1.0; duration = 0.5 };
     Chaos.Crash { side = Chaos.Rx; bundle = 0; at = 2.0; downtime = 0.2 };
     Chaos.Crash { side = Chaos.Tx; bundle = 3; at = 0.5; downtime = 0.1 };
     Chaos.Violate { bundle = 1; at = 4.0 };
    ] ->
      ()
    | _ -> Alcotest.fail "parsed actions do not match the spec"));
  List.iter
    (fun bad ->
      match Chaos.parse_spec bad with
      | Ok _ -> Alcotest.failf "accepted malformed spec %S" bad
      | Error e ->
        check "error names the chaos spec" true (contains e "chaos"))
    [
      "storm=0+2/0.5" (* missing @T *);
      "crash=up/0/0.2@1" (* bad side *);
      "storm=/0.5@1" (* empty group *);
      "violate=0" (* missing time *);
      "frob=1@2" (* unknown action *);
    ]

let test_spec_errors_are_diagnosable () =
  (* The shared Spec scanner puts the kind and the full source string in
     every message, for all three dialects. *)
  match Fault.parse_spec "0:frob@1" with
  | Ok _ -> Alcotest.fail "accepted malformed fault spec"
  | Error e ->
    check "fault error names its kind" true (contains e "fault");
    check "fault error carries the source" true (contains e "0:frob@1")

let test_chaos_random_plan_deterministic () =
  let plan s =
    Chaos.random_plan ~rng:(Rng.create s) ~n_channels:4 ~n_bundles:8
      ~horizon:5.0 ~storm_every:0.4 ~crash_every:0.3 ~mean_outage:0.1
      ~mean_downtime:0.1 ()
  in
  check "equal seeds give equal plans" true (plan 42 = plan 42);
  check "different seeds differ" true (plan 42 <> plan 43);
  let p = plan 42 in
  check "plan is non-trivial" true (List.length p > 2);
  let times =
    List.map
      (function
        | Chaos.Storm { at; _ }
        | Chaos.Crash { at; _ }
        | Chaos.Violate { at; _ }
        | Chaos.Degrade { at; _ } ->
          at)
      p
  in
  check "sorted by time" true (times = List.sort Float.compare times);
  check "every action closes before the horizon reports" true
    (List.for_all
       (fun a ->
         (match a with
         | Chaos.Storm { at; duration; _ } -> at +. duration
         | Chaos.Crash { at; downtime; _ } -> at +. downtime
         | Chaos.Violate { at; _ } -> at
         | Chaos.Degrade { at; duration; _ } -> at +. duration)
         <= Chaos.horizon p)
       p);
  List.iter
    (function
      | Chaos.Storm { channels; _ } ->
        check "storm group is non-empty" true (channels <> []);
        check "storm group is in range" true
          (List.for_all (fun c -> c >= 0 && c < 4) channels)
      | Chaos.Crash { bundle; _ } ->
        check "crash bundle in range" true (bundle >= 0 && bundle < 8)
      | Chaos.Violate _ -> ()
      | Chaos.Degrade { channel; _ } ->
        check "degrade channel in range" true (channel >= 0 && channel < 4))
    p

let test_chaos_apply_numbers_events_in_time_order () =
  let sim = Sim.create () in
  let log = ref [] in
  let driver =
    {
      Chaos.set_channel_up =
        (fun c up -> log := (Sim.now sim, `Ch (c, up)) :: !log);
      crash = (fun s b -> log := (Sim.now sim, `Crash (s, b)) :: !log);
      restart = (fun s b -> log := (Sim.now sim, `Restart (s, b)) :: !log);
      violate = (fun b -> log := (Sim.now sim, `Violate b) :: !log);
      set_loss = (fun c _ -> log := (Sim.now sim, `Loss c) :: !log);
      scale_rate = (fun c f -> log := (Sim.now sim, `Rate (c, f)) :: !log);
    }
  in
  (* Deliberately out of time order: apply must still number the
     primitive transitions chronologically. *)
  let plan =
    [
      Chaos.Crash { side = Chaos.Rx; bundle = 0; at = 1.0; downtime = 0.5 };
      Chaos.Storm { channels = [ 0; 1 ]; at = 0.5; duration = 0.6 };
    ]
  in
  let indices = ref [] in
  Chaos.apply sim
    ~on_event:(fun ~index ~time _ -> indices := (index, time) :: !indices)
    driver plan;
  Sim.run sim;
  let indices = List.rev !indices in
  check_int "six primitive transitions" 6 (List.length indices);
  Alcotest.(check (list int))
    "numbered 0..5" [ 0; 1; 2; 3; 4; 5 ]
    (List.map fst indices);
  let times = List.map snd indices in
  check "indices follow the clock" true
    (times = List.sort Float.compare times);
  let log = List.rev !log in
  check "storm downs both members at 0.5" true
    (List.mem (0.5, `Ch (0, false)) log && List.mem (0.5, `Ch (1, false)) log);
  check "storm recovers both members" true
    (List.mem (1.1, `Ch (0, true)) log && List.mem (1.1, `Ch (1, true)) log);
  check "crash and restart bracket the downtime" true
    (List.mem (1.0, `Crash (Chaos.Rx, 0)) log
    && List.mem (1.5, `Restart (Chaos.Rx, 0)) log);
  check "rejects negative times" true
    (try
       Chaos.apply (Sim.create ()) driver
         [ Chaos.Violate { bundle = 0; at = -1.0 } ];
       false
     with Invalid_argument _ -> true)

(* --- Recovery: union of overlapping outage intervals ---------------- *)

let test_recovery_overlap_union () =
  let outages =
    [ (2.0, 4.0); (1.0, 3.0); (6.0, 7.0); (6.5, 6.8); (9.0, 9.0) ]
  in
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "overlaps coalesced, degenerate dropped"
    [ (1.0, 4.0); (6.0, 7.0) ]
    (Recovery.merge_intervals outages);
  Alcotest.(check (float 1e-9))
    "downtime counts each instant once" 4.0 (Recovery.downtime outages);
  Alcotest.(check (float 1e-9))
    "longest outage is overlap-aware" 3.0
    (Recovery.longest_outage outages);
  (match Recovery.mttr outages with
  | Some m -> Alcotest.(check (float 1e-9)) "mttr over merged outages" 2.0 m
  | None -> Alcotest.fail "mttr of a non-empty outage list");
  check "mttr of no outages" true (Recovery.mttr [] = None);
  Alcotest.(check (float 1e-9))
    "availability over the window" 0.6
    (Recovery.interval_availability ~outages ~from_:0.0 ~until_:10.0);
  Alcotest.(check (float 1e-9))
    "availability clips to the window" 0.5
    (Recovery.interval_availability ~outages ~from_:3.0 ~until_:5.0);
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "touching intervals coalesce"
    [ (1.0, 3.0) ]
    (Recovery.merge_intervals [ (1.0, 2.0); (2.0, 3.0) ])

(* --- Bundle_pool: chaos at fleet scale ------------------------------ *)

let rates = [| 10e6; 10e6; 5e6; 2.5e6 |]
let delays = [| 0.001; 0.002; 0.005; 0.010 |]

let config () =
  {
    Bundle_pool.rate_bps = rates;
    prop_delay = delays;
    quanta = Srr.quanta_for_rates ~rates_bps:rates ~quantum_unit:1500 ();
    marker_every = 4;
    guard = false;
    discipline = Bundle_pool.Srr;
  }

let sizes = [| 200; 1000; 400; 1500; 700; 200; 1200 |]

let push_n pool id n =
  for i = 0 to n - 1 do
    Bundle_pool.push pool id ~size:sizes.(i mod Array.length sizes)
  done

let test_recycled_slot_fresh_watchdog () =
  let sim = Sim.create () in
  let pool =
    Bundle_pool.create ~sender_aware:false
      ~watchdog:{ Resequencer.intervals = 2; fallback = 0.02 }
      ~sim ~initial_capacity:2 (config ())
  in
  let id = Bundle_pool.acquire pool in
  push_n pool id 200;
  Sim.run sim;
  (* Channel 3 goes dark under a link-state-blind sender: its share is
     eaten at the NIC and the receiver's watchdog declares it dead. *)
  Bundle_pool.set_channel_up pool 3 false;
  push_n pool id 400;
  Sim.run sim;
  check "watchdog declared the silent channel dead" true
    (Bundle_pool.rx_channel_dead pool id 3);
  check "dead declaration recorded" true
    (Bundle_pool.rx_dead_declarations pool id > 0);
  (* Slot churn across the outage: the next tenant of the slot must not
     inherit its predecessor's dead-channel or cadence state. *)
  Bundle_pool.release pool id;
  Bundle_pool.set_channel_up pool 3 true;
  let id2 = Bundle_pool.acquire pool in
  check_int "slot was recycled" id id2;
  check "recycled slot does not inherit the dead channel" false
    (Bundle_pool.rx_channel_dead pool id2 3);
  check_int "recycled slot's watchdog history is fresh" 0
    (Bundle_pool.rx_dead_declarations pool id2);
  push_n pool id2 300;
  Sim.run sim;
  check_int "no watchdog skips on the healthy recycled slot" 0
    (Bundle_pool.rx_watchdog_skips pool id2);
  check_int "recycled slot delivers everything" 300
    (Bundle_pool.delivered_packets pool id2)

let test_pool_crash_restart_delivers_again () =
  let sim = Sim.create () in
  let pool =
    Bundle_pool.create ~stamp_seq:true ~sim ~initial_capacity:2 (config ())
  in
  let id = Bundle_pool.acquire pool in
  push_n pool id 100;
  Sim.run sim;
  (* Sender crash: pushes during the downtime are eaten. *)
  Bundle_pool.crash_sender pool id;
  push_n pool id 50;
  Sim.run sim;
  check "crashed sender eats pushes" true
    (Bundle_pool.sender_down_drops pool id >= 50);
  Bundle_pool.restart_sender pool id;
  check_int "restart bumps the sender epoch" 1 (Bundle_pool.sender_epoch pool id);
  let before = Bundle_pool.delivered_packets pool id in
  push_n pool id 100;
  Sim.run sim;
  check "delivers again after the sender restart" true
    (Bundle_pool.delivered_packets pool id > before);
  (* Receiver crash: buffered data is wiped, arrivals dropped until the
     restart, then cold resync through the markers. *)
  ignore (Bundle_pool.crash_receiver pool id);
  Bundle_pool.restart_receiver pool id;
  let before = Bundle_pool.delivered_packets pool id in
  push_n pool id 100;
  Sim.run sim;
  check "delivers again after the receiver restart" true
    (Bundle_pool.delivered_packets pool id > before);
  check "conservation holds across both crashes" true
    (Monitor.conserved
       ~pushed:(Bundle_pool.pushed_packets pool id)
       ~delivered:(Bundle_pool.delivered_packets pool id)
       ~pending:(Bundle_pool.rx_pending_packets pool id)
       ~drops:
         [
           Bundle_pool.carrier_drops pool id;
           Bundle_pool.receiver_down_drops pool id;
           Bundle_pool.rx_epoch_discards pool id;
           Bundle_pool.rx_wiped_packets pool id;
         ])

let test_pool_storm_conservation_and_order () =
  let sim = Sim.create () in
  let pool =
    Bundle_pool.create ~stamp_seq:true
      ~watchdog:{ Resequencer.intervals = 4; fallback = 0.02 }
      ~sim ~initial_capacity:4 (config ())
  in
  let a = Bundle_pool.acquire pool in
  let b = Bundle_pool.acquire pool in
  push_n pool a 100;
  push_n pool b 100;
  Sim.run sim;
  (* Correlated storm: channels 1 and 2 share fate. *)
  Bundle_pool.set_channel_up pool 1 false;
  Bundle_pool.set_channel_up pool 2 false;
  push_n pool a 200;
  push_n pool b 200;
  Sim.run sim;
  Bundle_pool.set_channel_up pool 1 true;
  Bundle_pool.set_channel_up pool 2 true;
  (* The storm legally degrades order to quasi-FIFO while it drains;
     strictness resumes past the quiet line. *)
  Bundle_pool.set_fifo_check_after pool (Sim.now sim +. 0.2);
  push_n pool a 200;
  push_n pool b 200;
  Sim.run sim;
  let heal = Sim.now sim in
  push_n pool a 100;
  push_n pool b 100;
  Sim.run sim;
  List.iter
    (fun id ->
      check "bundle conserved at quiescence" true
        (Monitor.conserved
           ~pushed:(Bundle_pool.pushed_packets pool id)
           ~delivered:(Bundle_pool.delivered_packets pool id)
           ~pending:(Bundle_pool.rx_pending_packets pool id)
           ~drops:
             [
               Bundle_pool.carrier_drops pool id;
               Bundle_pool.receiver_down_drops pool id;
               Bundle_pool.rx_epoch_discards pool id;
               Bundle_pool.rx_wiped_packets pool id;
             ]);
      check "bundle delivers after the storm heals" true
        (Bundle_pool.last_delivery_time pool id > heal))
    [ a; b ];
  check_int "strict FIFO restored past the quiet line" 0
    (Bundle_pool.total_fifo_violations pool)

let test_pool_injected_violation_caught () =
  let sim = Sim.create () in
  let pool =
    Bundle_pool.create ~stamp_seq:true ~sim ~initial_capacity:2 (config ())
  in
  let id = Bundle_pool.acquire pool in
  push_n pool id 50;
  Sim.run sim;
  check_int "clean run has no violations" 0
    (Bundle_pool.total_fifo_violations pool);
  Bundle_pool.inject_violation pool id;
  push_n pool id 50;
  Sim.run sim;
  check "planted violation is caught" true
    (Bundle_pool.total_fifo_violations pool >= 1);
  match Bundle_pool.first_violation pool with
  | Some (_, bundle, _) ->
    check_int "pinned to the poisoned bundle" id bundle
  | None -> Alcotest.fail "violation not recorded"

let suites =
  [
    ( "chaos",
      [
        Alcotest.test_case "marker epoch+gen in checksum" `Quick
          test_marker_epoch_gen_in_checksum;
        Alcotest.test_case "sender crash restart recovers" `Quick
          test_sender_crash_restart_recovers;
        Alcotest.test_case "sender crash survives lost reset markers" `Quick
          test_sender_crash_survives_lost_reset_markers;
        Alcotest.test_case "receiver cold restart" `Quick
          test_receiver_cold_restart;
        Alcotest.test_case "generation tag pairs consecutive barriers" `Quick
          test_gen_pairs_consecutive_barriers;
        Alcotest.test_case "min-pair adoption with a lost reset" `Quick
          test_min_pair_adoption_with_lost_reset;
        Alcotest.test_case "parse_spec grammar" `Quick test_chaos_parse_spec;
        Alcotest.test_case "spec errors are diagnosable" `Quick
          test_spec_errors_are_diagnosable;
        Alcotest.test_case "random plans are seeded" `Quick
          test_chaos_random_plan_deterministic;
        Alcotest.test_case "apply numbers events in time order" `Quick
          test_chaos_apply_numbers_events_in_time_order;
        Alcotest.test_case "recovery merges overlapping outages" `Quick
          test_recovery_overlap_union;
        Alcotest.test_case "recycled slot gets a fresh watchdog" `Quick
          test_recycled_slot_fresh_watchdog;
        Alcotest.test_case "pool crash restart delivers again" `Quick
          test_pool_crash_restart_delivers_again;
        Alcotest.test_case "pool storm conservation and order" `Quick
          test_pool_storm_conservation_and_order;
        Alcotest.test_case "pool injected violation caught" `Quick
          test_pool_injected_violation_caught;
      ] );
  ]
