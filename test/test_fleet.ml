(* Bundle_pool tests: flyweight recycling correctness (a recycled slot
   must be indistinguishable from a fresh bundle), high-water isolation
   across generations (the pooled-reuse regression for
   Fifo_queue.recycle), stale in-flight discard across churn, growth
   past the initial capacity, guard transparency, and heap/calendar
   engine agreement on a churned fleet. *)

open Stripe_netsim
open Stripe_core
module Bundle_pool = Stripe_fleet.Bundle_pool

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let rates = [| 10e6; 10e6; 5e6; 2.5e6 |]
let delays = [| 0.001; 0.002; 0.005; 0.010 |]

let config ?(guard = false) ?(discipline = Bundle_pool.Srr) () =
  {
    Bundle_pool.rate_bps = rates;
    prop_delay = delays;
    quanta = Srr.quanta_for_rates ~rates_bps:rates ~quantum_unit:1500 ();
    marker_every = 4;
    guard;
    discipline;
  }

let sizes = [| 200; 1000; 400; 1500; 700; 200; 1200 |]

let push_n pool id n =
  for i = 0 to n - 1 do
    Bundle_pool.push pool id ~size:sizes.(i mod Array.length sizes)
  done

(* --- Fifo_queue.recycle (the pooled-reuse primitive) ---------------- *)

let test_fifo_recycle_resets_high_water () =
  let q = Stripe_packet.Fifo_queue.create () in
  for i = 1 to 10 do
    Stripe_packet.Fifo_queue.push q ~size:100 i
  done;
  Stripe_packet.Fifo_queue.clear q;
  (* [clear] keeps the lifetime maxima by design... *)
  check_int "clear keeps high water (packets)" 10
    (Stripe_packet.Fifo_queue.high_water_packets q);
  check_int "clear keeps high water (bytes)" 1000
    (Stripe_packet.Fifo_queue.high_water_bytes q);
  (* ...so a pool recycling the queue to a new owner must use [recycle],
     or the second bundle reports the first one's maxima as its own. *)
  for i = 1 to 10 do
    Stripe_packet.Fifo_queue.push q ~size:100 i
  done;
  Stripe_packet.Fifo_queue.recycle q;
  check "recycled queue is empty" true (Stripe_packet.Fifo_queue.is_empty q);
  check_int "recycle restarts high water (packets)" 0
    (Stripe_packet.Fifo_queue.high_water_packets q);
  check_int "recycle restarts high water (bytes)" 0
    (Stripe_packet.Fifo_queue.high_water_bytes q);
  Stripe_packet.Fifo_queue.push q ~size:100 1;
  Stripe_packet.Fifo_queue.push q ~size:100 2;
  check_int "new owner's own maximum" 2
    (Stripe_packet.Fifo_queue.high_water_packets q)

(* --- Recycling correctness ------------------------------------------ *)

let test_recycled_slot_replays_like_fresh () =
  (* Generation 1 and generation 2 of the same slot run the same seeded
     workload; every per-bundle number must agree — and agree with a
     never-recycled slot of a fresh pool. *)
  let run_generation () =
    let sim = Sim.create () in
    let pool = Bundle_pool.create ~sim ~initial_capacity:4 (config ()) in
    let id1 = Bundle_pool.acquire pool in
    push_n pool id1 500;
    Sim.run sim;
    let fresh =
      ( Bundle_pool.delivered_packets pool id1,
        Bundle_pool.delivered_bytes pool id1,
        Bundle_pool.rx_high_water_packets pool id1 )
    in
    Bundle_pool.release pool id1;
    let id2 = Bundle_pool.acquire pool in
    check_int "free list reuses the slot" id1 id2;
    push_n pool id2 500;
    Sim.run sim;
    let recycled =
      ( Bundle_pool.delivered_packets pool id2,
        Bundle_pool.delivered_bytes pool id2,
        Bundle_pool.rx_high_water_packets pool id2 )
    in
    (fresh, recycled)
  in
  let fresh, recycled = run_generation () in
  let dp, db, hw = fresh in
  check "generation 1 delivered data" true (dp > 400);
  check "generation 1 buffered at the resequencer" true (hw > 0);
  Alcotest.(check (triple int int int))
    "recycled generation replays the fresh one exactly" fresh recycled;
  check_int "delivered bytes consistent" db (let _, b, _ = recycled in b)

let test_recycle_restarts_rx_high_water () =
  (* The pooled-reuse regression: the resequencer's buffers are
     recycled, not cleared, so the second owner must never see the
     first owner's buffering maxima. *)
  let sim = Sim.create () in
  let pool = Bundle_pool.create ~sim ~initial_capacity:2 (config ()) in
  let id = Bundle_pool.acquire pool in
  push_n pool id 500;
  Sim.run sim;
  check "first owner buffered" true (Bundle_pool.rx_high_water_packets pool id > 0);
  Bundle_pool.release pool id;
  let id2 = Bundle_pool.acquire pool in
  check_int "same slot" id id2;
  check_int "high water restarts with the new owner" 0
    (Bundle_pool.rx_high_water_packets pool id2);
  (* A tiny second workload: the reported maximum must be the small
     bundle's own, not inherited from the 500-packet first owner. *)
  push_n pool id2 8;
  Sim.run sim;
  let hw = Bundle_pool.rx_high_water_packets pool id2 in
  check "second owner's own (small) maximum" true (hw >= 0 && hw < 8)

let test_stale_in_flight_discarded () =
  (* Release with packets still on the wires, immediately hand the slot
     to a new bundle: the predecessor's tail must drain into the void
     while the new owner's stream delivers exactly as if the slot were
     fresh. *)
  let sim = Sim.create () in
  let pool = Bundle_pool.create ~sim ~initial_capacity:2 (config ()) in
  let id = Bundle_pool.acquire pool in
  push_n pool id 200;
  check "packets in flight at release" true
    (Bundle_pool.in_flight_packets pool id > 0);
  Bundle_pool.release pool id;
  check_int "released tail no longer counted in-flight" 0
    (Bundle_pool.in_flight_packets pool id);
  let id2 = Bundle_pool.acquire pool in
  check_int "same slot" id id2;
  check_int "new owner starts with zero delivered" 0
    (Bundle_pool.delivered_packets pool id2);
  push_n pool id2 300;
  Sim.run sim;
  check_int "new owner pushed its own stream" 300
    (Bundle_pool.pushed_packets pool id2);
  (* The dead generation's 200 packets arrived and were discarded: the
     new owner's delivered count is bounded by its own pushes and its
     stream is complete up to the usual blocked tail. *)
  let dp = Bundle_pool.delivered_packets pool id2 in
  check "delivered only the new owner's data" true (dp > 250 && dp <= 300);
  check_int "wires fully drained" 0 (Bundle_pool.in_flight_packets pool id2)

let test_pool_grows_past_initial_capacity () =
  let sim = Sim.create () in
  let pool = Bundle_pool.create ~sim ~initial_capacity:2 (config ()) in
  let ids = Array.init 9 (fun _ -> Bundle_pool.acquire pool) in
  check "capacity doubled as needed" true (Bundle_pool.capacity pool >= 9);
  check_int "all live" 9 (Bundle_pool.live_bundles pool);
  let distinct = List.sort_uniq compare (Array.to_list ids) in
  check_int "ids are distinct" 9 (List.length distinct);
  (* Slots built by a growth mid-run must work like the initial ones. *)
  Array.iter (fun id -> push_n pool id 50) ids;
  Sim.run sim;
  Array.iter
    (fun id ->
      check "grown slot delivers" true (Bundle_pool.delivered_packets pool id > 30))
    ids;
  check_int "pool totals add up" 9
    (Bundle_pool.total_acquired pool)

let test_guard_is_transparent_on_clean_wires () =
  (* The pool's wires are perfect FIFOs, so a guarded fleet must deliver
     exactly what an unguarded one does — the guard rides its in-order
     fast path and its state just recycles with the slot. *)
  let run ~guard =
    let sim = Sim.create () in
    let pool = Bundle_pool.create ~sim ~initial_capacity:2 (config ~guard ()) in
    let id = Bundle_pool.acquire pool in
    push_n pool id 400;
    Sim.run sim;
    let d = Bundle_pool.delivered_packets pool id in
    Bundle_pool.release pool id;
    let id2 = Bundle_pool.acquire pool in
    push_n pool id2 400;
    Sim.run sim;
    (d, Bundle_pool.delivered_packets pool id2)
  in
  let plain = run ~guard:false in
  let guarded = run ~guard:true in
  check "guarded fleet delivers identically" true (plain = guarded);
  check "both generations delivered" true (fst plain > 300 && snd plain > 300)

(* --- Engine agreement on a churned fleet ---------------------------- *)

let churn_run ~engine =
  let sim = Sim.create ~engine () in
  let rng = Rng.create 7 in
  let pool = Bundle_pool.create ~sim ~initial_capacity:8 (config ()) in
  let live = ref [] in
  let n_churns = ref 0 in
  let rec churn () =
    (* Alternate arrivals and departures; keep pushing traffic into a
       random live bundle between churn events. *)
    if !n_churns < 60 then begin
      incr n_churns;
      (if List.length !live < 6 || (Rng.bool rng && !live <> []) then
         live := Bundle_pool.acquire pool :: !live
       else
         match !live with
         | id :: rest ->
           Bundle_pool.release pool id;
           live := rest
         | [] -> ());
      List.iter (fun id -> push_n pool id (1 + Rng.int rng 30)) !live;
      Sim.schedule_after sim ~delay:0.005 churn
    end
  in
  churn ();
  Sim.run sim;
  ( Bundle_pool.total_acquired pool,
    Bundle_pool.recycles pool,
    Bundle_pool.total_delivered_packets pool,
    Bundle_pool.total_delivered_bytes pool,
    Bundle_pool.markers_sent pool )

let test_engines_agree_on_churned_fleet () =
  let h = churn_run ~engine:Sim.Heap in
  let c = churn_run ~engine:Sim.Calendar in
  let _, recycled, delivered, _, _ = h in
  check "fleet actually churned" true (recycled > 5);
  check "fleet actually delivered" true (delivered > 1000);
  check "heap and calendar agree on every fleet total" true (h = c)

let suites =
  [
    ( "fleet",
      [
        Alcotest.test_case "fifo recycle resets high water" `Quick
          test_fifo_recycle_resets_high_water;
        Alcotest.test_case "recycled slot replays like fresh" `Quick
          test_recycled_slot_replays_like_fresh;
        Alcotest.test_case "recycle restarts rx high water" `Quick
          test_recycle_restarts_rx_high_water;
        Alcotest.test_case "stale in-flight discarded" `Quick
          test_stale_in_flight_discarded;
        Alcotest.test_case "pool grows past initial capacity" `Quick
          test_pool_grows_past_initial_capacity;
        Alcotest.test_case "guard transparent on clean wires" `Quick
          test_guard_is_transparent_on_clean_wires;
        Alcotest.test_case "engines agree on churned fleet" `Quick
          test_engines_agree_on_churned_fleet;
      ] );
  ]
