(* Coverage for the remaining corners: interface output-queue FIFO under
   ARP resolution (regression for a real bug: markers must never overtake
   data awaiting resolution), Node protocol demux, and assorted small
   invariants. (The old string-blob Trace recorder is gone; its successor,
   the structured Stripe_obs subsystem, is covered by test_obs.ml.) *)

open Stripe_netsim
open Stripe_packet
open Stripe_ipstack

(* Regression: a marker sent immediately after data must arrive after it,
   even while the data sits in the interface queue waiting for ARP. *)
let test_iface_fifo_across_arp_miss () =
  let sim = Sim.create () in
  let arrivals = ref [] in
  let rx_ref = ref None in
  let arp =
    Arp.create sim ~resolve_delay:0.005 ~lookup:(fun _ -> Some 0xAB) ()
  in
  let link =
    Link.create sim ~rate_bps:1e7 ~prop_delay:0.001
      ~deliver:(fun frame ->
        match !rx_ref with Some rx -> Iface.rx rx frame | None -> ())
      ()
  in
  let tx =
    Iface.create sim ~name:"tx" ~addr:(Ip.addr "10.0.0.1") ~prefix:24 ~mtu:1500
      ~arp ~link ()
  in
  let rx =
    Iface.create sim ~name:"rx" ~addr:(Ip.addr "10.0.0.2") ~prefix:24 ~mtu:1500
      ~arp ~link ()
  in
  rx_ref := Some rx;
  let tag frame =
    match frame with
    | Iface.Striped_frame ip -> Printf.sprintf "data%d" ip.Ip.body.Packet.seq
    | Iface.Marker_frame _ -> "marker"
    | Iface.Ip_frame _ -> "ip"
  in
  Iface.set_handler rx Iface.Cp_striped_ip (fun f -> arrivals := tag f :: !arrivals);
  Iface.set_handler rx Iface.Cp_marker (fun f -> arrivals := tag f :: !arrivals);
  (* Data hits an ARP miss (5 ms); the marker needs no resolution but must
     still queue behind it. *)
  let ip seq =
    Ip.make ~src:(Ip.addr "10.0.0.1") ~dst:(Ip.addr "10.0.0.2")
      (Packet.data ~seq ~size:500 ())
  in
  Iface.send tx (Iface.Striped_frame (ip 0));
  Iface.send tx
    (Iface.Marker_frame (Packet.marker ~channel:0 ~round:1 ~dc:500 ~born:0.0 ()));
  Iface.send tx (Iface.Striped_frame (ip 1));
  Sim.run sim;
  Alcotest.(check (list string)) "device queue preserves submission order"
    [ "data0"; "marker"; "data1" ]
    (List.rev !arrivals)

let test_node_protocol_demux () =
  let node = Node.create ~name:"R" () in
  let tcp = ref 0 and udp = ref 0 in
  Node.set_protocol_handler node ~proto:6 (fun _ -> incr tcp);
  Node.set_protocol_handler node ~proto:17 (fun _ -> incr udp);
  let dg proto =
    Ip.make ~src:(Ip.addr "1.1.1.1") ~dst:(Ip.addr "2.2.2.2") ~proto
      (Packet.data ~seq:0 ~size:100 ())
  in
  Node.ip_input node (dg 6);
  Node.ip_input node (dg 17);
  Node.ip_input node (dg 17);
  Node.ip_input node (dg 99);
  Alcotest.(check int) "tcp handler" 1 !tcp;
  Alcotest.(check int) "udp handler" 2 !udp;
  Alcotest.(check int) "all counted as local" 4 (Node.delivered_local node)

let test_node_handler_replacement () =
  let node = Node.create ~name:"R" () in
  let first = ref 0 and second = ref 0 in
  Node.set_protocol_handler node ~proto:6 (fun _ -> incr first);
  Node.set_protocol_handler node ~proto:6 (fun _ -> incr second);
  Node.ip_input node
    (Ip.make ~src:(Ip.addr "1.1.1.1") ~dst:(Ip.addr "2.2.2.2") ~proto:6
       (Packet.data ~seq:0 ~size:10 ()));
  Alcotest.(check (pair int int)) "later registration wins" (0, 1)
    (!first, !second)

let test_cpu_backlog () =
  let sim = Sim.create () in
  let cpu = Stripe_host.Cpu.create sim () in
  Stripe_host.Cpu.execute cpu ~cost:0.5 (fun () -> ());
  Stripe_host.Cpu.execute cpu ~cost:0.5 (fun () -> ());
  Alcotest.(check (float 1e-9)) "backlog is queued work" 1.0
    (Stripe_host.Cpu.backlog cpu);
  Sim.run sim;
  Alcotest.(check (float 1e-9)) "backlog drains" 0.0 (Stripe_host.Cpu.backlog cpu)

let test_summary_pp () =
  let s = Stripe_metrics.Summary.create () in
  Stripe_metrics.Summary.add s 1.0;
  Stripe_metrics.Summary.add s 3.0;
  let rendered = Format.asprintf "%a" Stripe_metrics.Summary.pp s in
  Alcotest.(check bool) "pp mentions count" true
    (String.length rendered > 0
    && String.sub rendered 0 3 = "n=2")

let test_fairness_pp () =
  let d = Stripe_core.Srr.create ~quanta:[| 100; 100 |] () in
  let r = Stripe_core.Fairness.measure ~deficit:d ~bytes:[| 0; 0 |] ~max_packet:100 in
  let rendered = Format.asprintf "%a" Stripe_core.Fairness.pp_report r in
  Alcotest.(check bool) "report renders" true (String.length rendered > 0)

let test_deficit_pp_state () =
  let d = Stripe_core.Srr.create ~quanta:[| 100; 200 |] () in
  let rendered = Format.asprintf "%a" Stripe_core.Deficit.pp_state d in
  Alcotest.(check string) "state dump" "ptr=0 ch=0 round=0 serving=false dcs=[0; 0]"
    rendered

let test_packet_pp_reset_and_credit () =
  let m = Packet.marker ~credit:5 ~reset:true ~channel:2 ~round:7 ~dc:10 ~born:0.0 () in
  Alcotest.(check string) "full marker pp" "M(ch=2,R=7,DC=10,credit=5,reset)"
    (Format.asprintf "%a" Packet.pp m)

let test_stripe_layer_marker_counter () =
  (* Markers emitted by a layered striper are visible in its counter and
     arrive via the marker codepoint. *)
  let sim = Sim.create () in
  let arp = Arp.create sim ~lookup:(fun _ -> Some 1) () in
  let rx_ref = ref None in
  let link =
    Link.create sim ~rate_bps:1e7 ~prop_delay:0.001
      ~deliver:(fun f -> match !rx_ref with Some i -> Iface.rx i f | None -> ())
      ()
  in
  let tx_if =
    Iface.create sim ~name:"tx" ~addr:(Ip.addr "10.1.0.1") ~prefix:24 ~mtu:1500
      ~arp ~link ()
  in
  let rx_if =
    Iface.create sim ~name:"rx" ~addr:(Ip.addr "10.1.0.9") ~prefix:24 ~mtu:1500
      ~arp ~link ()
  in
  rx_ref := Some rx_if;
  let layer =
    Stripe_layer.create ~name:"s0" ~members:[| tx_if |]
      ~scheduler:(Stripe_core.Scheduler.srr ~quanta:[| 1500 |] ())
      ~marker:(Stripe_core.Marker.make ~every_rounds:1 ())
      ~deliver_up:(fun _ -> ())
      ()
  in
  let rx_layer =
    Stripe_layer.create ~name:"s0" ~members:[| rx_if |]
      ~scheduler:(Stripe_core.Scheduler.srr ~quanta:[| 1500 |] ())
      ~deliver_up:(fun _ -> ())
      ()
  in
  for seq = 0 to 9 do
    Stripe_layer.send layer
      (Ip.make ~src:(Ip.addr "10.1.0.1") ~dst:(Ip.addr "10.1.0.9")
         (Packet.data ~seq ~size:1000 ()))
  done;
  Sim.run sim;
  Alcotest.(check bool) "markers counted at the sender" true
    (Stripe_layer.markers_sent layer > 0);
  Alcotest.(check int) "all datagrams up" 10
    (Stripe_layer.delivered_datagrams rx_layer)

let suites =
  [
    ( "misc",
      [
        Alcotest.test_case "iface fifo across arp miss" `Quick
          test_iface_fifo_across_arp_miss;
        Alcotest.test_case "node demux" `Quick test_node_protocol_demux;
        Alcotest.test_case "node handler replacement" `Quick
          test_node_handler_replacement;
        Alcotest.test_case "cpu backlog" `Quick test_cpu_backlog;
        Alcotest.test_case "summary pp" `Quick test_summary_pp;
        Alcotest.test_case "fairness pp" `Quick test_fairness_pp;
        Alcotest.test_case "deficit pp" `Quick test_deficit_pp_state;
        Alcotest.test_case "packet pp" `Quick test_packet_pp_reset_and_credit;
        Alcotest.test_case "layer markers" `Quick test_stripe_layer_marker_counter;
      ] );
  ]
