(* Tests for the sharded-fleet layer: the merge algebra must be
   partition-invariant (counters, recovery intervals, monitor verdicts),
   and Sharded_pool must honor its determinism contract — domains = 1
   replays exactly like a directly driven single pool, and any domain
   count merges to the same protocol aggregates. *)

open Stripe_netsim
module Counters = Stripe_obs.Counters
module Event = Stripe_obs.Event
module Monitor = Stripe_obs.Monitor
module Recovery = Stripe_metrics.Recovery
module Bundle_pool = Stripe_fleet.Bundle_pool
module Sharded_pool = Stripe_fleet.Sharded_pool

let n_channels = 4

(* Channel-scoped event kinds only: partitioning by channel keeps each
   channel's whole stream (including the clamped buffered-bytes gauge
   arithmetic) inside one registry, which is the exactness condition
   Counters.merge_into documents. *)
let kinds =
  [|
    Event.Enqueue; Event.Deliver; Event.Transmit; Event.Drop; Event.Arrival;
    Event.Marker_sent; Event.Marker_applied; Event.Skip; Event.Channel_down;
    Event.Watchdog_skip; Event.Suspend; Event.Dup_discard; Event.Quarantine;
  |]

let counters_equal a b =
  Counters.n_channels a = Counters.n_channels b
  && Counters.resets a = Counters.resets b
  && Counters.rounds a = Counters.rounds b
  && Counters.events_seen a = Counters.events_seen b
  && Counters.no_channel_drops a = Counters.no_channel_drops b
  && List.for_all
       (fun c -> Counters.channel a c = Counters.channel b c)
       (List.init (Counters.n_channels a) Fun.id)

let prop_counters_partition_merge =
  QCheck.Test.make
    ~name:"counters: merge over any channel partition = unsharded" ~count:100
    QCheck.(
      pair (int_range 1 4)
        (small_list
           (triple
              (int_range 0 (Array.length kinds - 1))
              (int_range 0 (n_channels - 1))
              (int_range 1 1500))))
    (fun (shards, evs) ->
      let whole = Counters.create ~n:n_channels in
      let parts = Array.init shards (fun _ -> Counters.create ~n:n_channels) in
      List.iteri
        (fun i (k, c, size) ->
          let e =
            Event.v ~channel:c ~size ~seq:i
              ~time:(float_of_int i *. 1e-3)
              kinds.(k)
          in
          Counters.observe whole e;
          Counters.observe parts.(c mod shards) e)
        evs;
      counters_equal whole (Counters.merged (Array.to_list parts)))

let prop_recovery_partition_merge =
  QCheck.Test.make ~name:"recovery: interval union is partition-invariant"
    ~count:100
    QCheck.(
      pair (int_range 1 4)
        (small_list (pair (int_range 0 1000) (int_range 1 150))))
    (fun (shards, raw) ->
      let outages =
        List.map
          (fun (s, d) ->
            (float_of_int s /. 10.0, float_of_int (s + d) /. 10.0))
          raw
      in
      let parts = Array.make shards [] in
      List.iteri (fun i iv -> parts.(i mod shards) <- iv :: parts.(i mod shards)) outages;
      Recovery.merge_parts [ outages ]
      = Recovery.merge_parts (Array.to_list parts))

let test_verdict_merge () =
  let a =
    {
      Monitor.violations = 2;
      seq_inversions = 5;
      first_violation = Some (3.0, "a");
      events_seen = 100;
    }
  in
  let b =
    {
      Monitor.violations = 1;
      seq_inversions = 0;
      first_violation = Some (1.5, "b");
      events_seen = 40;
    }
  in
  let c =
    {
      Monitor.violations = 0;
      seq_inversions = 7;
      first_violation = None;
      events_seen = 1;
    }
  in
  let m = Monitor.merged_verdict [ a; b; c ] in
  Alcotest.(check int) "violations sum" 3 m.Monitor.violations;
  Alcotest.(check int) "inversions sum" 12 m.Monitor.seq_inversions;
  Alcotest.(check int) "events sum" 141 m.Monitor.events_seen;
  (match m.Monitor.first_violation with
  | Some (t, msg) ->
    Alcotest.(check (float 1e-9)) "earliest violation time" 1.5 t;
    Alcotest.(check string) "earliest violation message" "b" msg
  | None -> Alcotest.fail "merged verdict lost the first violation");
  let b' = { b with Monitor.first_violation = Some (3.0, "b") } in
  (match (Monitor.merged_verdict [ a; b' ]).Monitor.first_violation with
  | Some (_, msg) -> Alcotest.(check string) "tie keeps the left shard" "a" msg
  | None -> Alcotest.fail "tie merge lost the violation");
  Alcotest.check_raises "empty merge rejected"
    (Invalid_argument "Monitor.merged_verdict: empty list") (fun () ->
      ignore (Monitor.merged_verdict []))

(* ---- Sharded_pool end-to-end ---- *)

let fleet_config () =
  let rates = [| 10e6; 10e6; 5e6; 2.5e6 |] in
  let delays = [| 0.001; 0.002; 0.005; 0.010 |] in
  let quanta =
    Stripe_core.Srr.quanta_for_rates ~rates_bps:rates ~quantum_unit:1500 ()
  in
  {
    Bundle_pool.rate_bps = rates;
    prop_delay = delays;
    quanta;
    marker_every = 4;
    guard = false;
    discipline = Bundle_pool.Srr;
  }

type op =
  | Acquire of float * int
  | Release of float * int
  | Push of float * int * int

(* Scripted churn with staggered releases so slots recycle mid-run. The
   script's RNG never reads pool state, so every recorder sees the same
   op sequence; ids come back from the recorder's shadow allocator. *)
let record_script sp =
  let rng = Rng.create 5 in
  let ops = ref [] in
  let live = ref [] in
  let t = ref 0.0 in
  for _ = 1 to 600 do
    t := !t +. 0.0015;
    let nlive = List.length !live in
    if nlive = 0 || (nlive < 10 && Rng.int rng 4 = 0) then begin
      let id = Sharded_pool.acquire sp ~at:!t in
      ops := Acquire (!t, id) :: !ops;
      live := id :: !live
    end
    else if Rng.int rng 12 = 0 then begin
      let i = Rng.int rng nlive in
      let id = List.nth !live i in
      live := List.filteri (fun j _ -> j <> i) !live;
      Sharded_pool.release sp ~at:!t id;
      ops := Release (!t, id) :: !ops
    end
    else begin
      let id = List.nth !live (Rng.int rng nlive) in
      let size = 200 + Rng.int rng 1100 in
      Sharded_pool.push sp ~at:!t id ~size;
      ops := Push (!t, id, size) :: !ops
    end
  done;
  List.rev !ops

(* The same script driven straight into one Bundle_pool — the legacy
   single-pool run the sharded replay must reproduce. Checks on the way
   that the recorder's shadow allocator predicted every slot id. *)
let run_direct ~engine ops =
  let sim = Sim.create ~engine () in
  let pool =
    Bundle_pool.create ~rng:(Rng.stream ~seed:33 0) ~sim (fleet_config ())
  in
  List.iter
    (fun op ->
      match op with
      | Acquire (at, id) ->
        Sim.schedule sim ~at (fun () ->
            Alcotest.(check int)
              "shadow allocator predicts the real slot" id
              (Bundle_pool.acquire pool))
      | Release (at, id) ->
        Sim.schedule sim ~at (fun () -> Bundle_pool.release pool id)
      | Push (at, id, size) ->
        Sim.schedule sim ~at (fun () -> Bundle_pool.push pool id ~size))
    ops;
  Sim.run sim;
  ( Bundle_pool.total_delivered_packets pool,
    Bundle_pool.total_delivered_bytes pool,
    Bundle_pool.markers_sent pool )

let e2e ~engine () =
  let reports =
    List.map
      (fun domains ->
        let sp =
          Sharded_pool.create ~engine ~domains ~seed:33 (fleet_config ())
        in
        let ops = record_script sp in
        (ops, Sharded_pool.run sp))
      [ 1; 2; 3 ]
  in
  let ops1, r1 = List.hd reports in
  let direct = run_direct ~engine ops1 in
  Alcotest.(check (triple int int int))
    "domains=1 equals the directly driven pool" direct
    Sharded_pool.(r1.delivered_packets, r1.delivered_bytes, r1.markers_sent);
  Alcotest.(check bool) "script delivered packets" true (r1.delivered_packets > 0);
  let gen_key (g : Sharded_pool.gen_report) =
    (g.ordinal, g.slot, g.delivered_packets, g.delivered_bytes)
  in
  List.iter
    (fun (ops, r) ->
      Alcotest.(check bool)
        "recorder is shard-count independent" true (ops = ops1);
      Alcotest.(check (triple int int int))
        "aggregates invariant under sharding"
        Sharded_pool.(r1.delivered_packets, r1.delivered_bytes, r1.markers_sent)
        Sharded_pool.(r.delivered_packets, r.delivered_bytes, r.markers_sent);
      Alcotest.(check bool)
        "per-generation reports identical" true
        (Array.map gen_key r.Sharded_pool.gens
        = Array.map gen_key r1.Sharded_pool.gens))
    (List.tl reports)

(* The churn-shaped event population (dense near cluster + sparse far
   timers) that used to degenerate the calendar's span-derived bucket
   width: with the quantile-derived width the calendar must still fire
   the identical sequence the reference heap does. *)
let test_calendar_bimodal_equivalence () =
  let run engine =
    let sim = Sim.create ~engine () in
    let rng = Rng.create 17 in
    let next = ref 0 in
    let log = ref [] in
    let ops = ref 4000 in
    let rec schedule_one () =
      let id = !next in
      incr next;
      let delay =
        if Rng.bernoulli rng ~p:0.9 then Rng.exponential rng ~mean:0.01
        else Rng.uniform rng ~lo:1.0 ~hi:5.0
      in
      Sim.schedule_after sim ~delay (fun () ->
          log := (id, Sim.now sim) :: !log;
          if !ops > 0 then begin
            decr ops;
            schedule_one ()
          end)
    in
    for _ = 1 to 512 do
      schedule_one ()
    done;
    Sim.run sim;
    List.rev !log
  in
  Alcotest.(check bool)
    "calendar fires the heap's exact sequence on a bimodal population" true
    (run Sim.Heap = run Sim.Calendar)

let test_shard_of_bundle () =
  for domains = 1 to 5 do
    for id = 0 to 100 do
      let s = Sharded_pool.shard_of_bundle ~domains id in
      Alcotest.(check bool) "shard in range" true (s >= 0 && s < domains);
      Alcotest.(check int) "assignment is stable" s
        (Sharded_pool.shard_of_bundle ~domains id)
    done
  done;
  let parts = Sharded_pool.split_fleet ~domains:3 ~bundles:200 in
  Alcotest.(check int) "split covers the fleet" 200
    (Array.fold_left (fun a p -> a + Array.length p) 0 parts);
  Array.iter
    (fun p ->
      Alcotest.(check bool) "shards are non-trivially loaded" true
        (Array.length p > 20))
    parts

let suites =
  [
    ( "sharded",
      [
        QCheck_alcotest.to_alcotest prop_counters_partition_merge;
        QCheck_alcotest.to_alcotest prop_recovery_partition_merge;
        Alcotest.test_case "verdict merge" `Quick test_verdict_merge;
        Alcotest.test_case "shard assignment" `Quick test_shard_of_bundle;
        Alcotest.test_case "e2e heap: domains 1/2/3" `Quick (e2e ~engine:Sim.Heap);
        Alcotest.test_case "e2e calendar: domains 1/2/3" `Quick
          (e2e ~engine:Sim.Calendar);
        Alcotest.test_case "calendar bimodal equivalence" `Quick
          test_calendar_bimodal_equivalence;
      ] );
  ]
