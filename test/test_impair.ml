(* Misbehaving channels and their containment:
   - the Impair module's profiles and spec parser;
   - link-level reordering / duplication / corruption semantics;
   - marker integrity (checksum, mangling, validation);
   - the receiver channel guard (dedup, bounded reorder restore,
     corrupt-marker discard with tag consumption, window shedding);
   - the resequencer's byte budget (hard invariant under both overflow
     policies, backpressure hysteresis, never blocks forever);
   - end-to-end rigs: determinism from one seed, Theorem 4.1 under a
     guarded reordering channel, Theorem 5.1 resync after impairments
     stop, and a qcheck sweep over random impairment profiles;
   - a seeded randomized impairment soak (suite "impair-soak", seed from
     STRIPE_IMPAIR_SEED) for the CI impairment matrix. *)

open Stripe_netsim
open Stripe_packet
open Stripe_core
module Obs = Stripe_obs

(* ------------------------------------------------------------------ *)
(* Impair module                                                       *)
(* ------------------------------------------------------------------ *)

let test_parse_spec () =
  match Impair.parse_spec "1:reorder=0.2/0.01,dup=0.05,corrupt=0.01" with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok (ch, imp) ->
    Alcotest.(check int) "channel" 1 ch;
    Alcotest.(check (float 1e-9)) "reorder_p" 0.2 imp.Impair.reorder_p;
    Alcotest.(check (float 1e-9)) "window" 0.01 imp.Impair.reorder_window;
    Alcotest.(check (float 1e-9)) "dup_p" 0.05 imp.Impair.dup_p;
    Alcotest.(check (float 1e-9)) "corrupt_p" 0.01 imp.Impair.corrupt_p

let test_parse_spec_single () =
  match Impair.parse_spec "0:dup=0.5" with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok (ch, imp) ->
    Alcotest.(check int) "channel" 0 ch;
    Alcotest.(check (float 1e-9)) "dup only" 0.5 imp.Impair.dup_p;
    Alcotest.(check bool) "others off" true
      (imp.Impair.reorder_p = 0.0 && imp.Impair.corrupt_p = 0.0)

let test_parse_spec_errors () =
  List.iter
    (fun s ->
      match Impair.parse_spec s with
      | Ok _ -> Alcotest.failf "spec %S should not parse" s
      | Error _ -> ())
    [
      ""; "1"; "x:dup=0.1"; "0:frob=0.1"; "0:dup"; "0:dup=x"; "0:dup=1.5";
      "0:reorder=0.2"; "0:reorder=0.2/0"; "0:reorder=0.2/x";
    ]

let test_make_validates () =
  let expect_invalid f =
    match f () with
    | (_ : Impair.t) -> Alcotest.fail "expected Invalid_argument"
    | exception Invalid_argument _ -> ()
  in
  expect_invalid (fun () -> Impair.make ~dup_p:1.5 ());
  expect_invalid (fun () -> Impair.make ~corrupt_p:(-0.1) ());
  expect_invalid (fun () -> Impair.make ~reorder_p:0.2 ());
  Alcotest.(check bool) "none is none" true (Impair.is_none Impair.none);
  Alcotest.(check bool) "make () is none" true (Impair.is_none (Impair.make ()));
  Alcotest.(check bool) "dup profile is not none" false
    (Impair.is_none (Impair.make ~dup_p:0.1 ()))

(* ------------------------------------------------------------------ *)
(* Link-level impairment semantics                                     *)
(* ------------------------------------------------------------------ *)

(* Pace [n] integer payloads through a link and return arrival order. *)
let run_link ?impair ?corrupt ~n () =
  let sim = Sim.create () in
  let arrived = ref [] in
  let link =
    Link.create sim ~name:"l" ~rate_bps:1e6 ~prop_delay:0.001
      ~rng:(Rng.create 5) ?impair ?corrupt
      ~deliver:(fun x -> arrived := x :: !arrived)
      ()
  in
  for i = 0 to n - 1 do
    Sim.schedule sim
      ~at:(0.001 *. float_of_int i)
      (fun () -> ignore (Link.send link ~size:100 i))
  done;
  Sim.run sim;
  (link, List.rev !arrived)

let test_link_duplication () =
  let link, arrived =
    run_link ~impair:(Impair.make ~dup_p:1.0 ()) ~n:5 ()
  in
  Alcotest.(check int) "every packet delivered twice" 10 (List.length arrived);
  Alcotest.(check int) "duplications counted" 5 (Link.duplicated_packets link);
  List.iter
    (fun i ->
      Alcotest.(check int)
        (Printf.sprintf "packet %d twice" i)
        2
        (List.length (List.filter (( = ) i) arrived)))
    [ 0; 1; 2; 3; 4 ]

let test_link_reordering () =
  let link, arrived =
    run_link ~impair:(Impair.make ~reorder_p:0.5 ~reorder_window:0.01 ()) ~n:30 ()
  in
  Alcotest.(check int) "nothing lost or duplicated" 30 (List.length arrived);
  Alcotest.(check bool) "reordered draws counted" true
    (Link.reordered_packets link > 0);
  Alcotest.(check bool) "arrival order differs from send order" true
    (arrived <> List.sort compare arrived)

let test_link_jitter_stays_fifo () =
  (* Control: plain jitter is clamped to FIFO; only the reorder
     impairment may overtake. *)
  let sim = Sim.create () in
  let arrived = ref [] in
  let rng = Rng.create 9 in
  let link =
    Link.create sim ~name:"l" ~rate_bps:1e6 ~prop_delay:0.001
      ~jitter:(fun r -> Rng.float r 0.01)
      ~rng
      ~deliver:(fun x -> arrived := x :: !arrived)
      ()
  in
  for i = 0 to 29 do
    Sim.schedule sim
      ~at:(0.001 *. float_of_int i)
      (fun () -> ignore (Link.send link ~size:100 i))
  done;
  Sim.run sim;
  let arrived = List.rev !arrived in
  Alcotest.(check bool) "jittered arrivals still FIFO" true
    (arrived = List.sort compare arrived)

let test_link_corruption_default_drops () =
  (* No [corrupt] hook: the simulated CRC catches the damage and the
     packet is treated as loss. *)
  let link, arrived = run_link ~impair:(Impair.make ~corrupt_p:1.0 ()) ~n:5 () in
  Alcotest.(check int) "nothing delivered" 0 (List.length arrived);
  Alcotest.(check int) "corruptions counted" 5 (Link.corrupted_packets link);
  Alcotest.(check int) "all dropped as CRC failures" 5 (Link.corrupt_drops link)

let test_link_corruption_hook_mangles () =
  let link, arrived =
    run_link
      ~impair:(Impair.make ~corrupt_p:1.0 ())
      ~corrupt:(fun x -> if x mod 2 = 0 then Some (x + 1000) else None)
      ~n:6 ()
  in
  (* Even payloads slip past the CRC mangled; odd ones are caught. *)
  Alcotest.(check (list int)) "mangled survivors" [ 1000; 1002; 1004 ] arrived;
  Alcotest.(check int) "corruptions counted" 6 (Link.corrupted_packets link);
  Alcotest.(check int) "CRC catches counted" 3 (Link.corrupt_drops link)

let test_link_set_impairments () =
  let sim = Sim.create () in
  let link =
    Link.create sim ~name:"l" ~rate_bps:1e6 ~prop_delay:0.001
      ~deliver:(fun (_ : int) -> ())
      ()
  in
  Alcotest.(check bool) "default is none" true
    (Impair.is_none (Link.impairments link));
  Link.set_impairments link (Impair.make ~dup_p:0.5 ());
  Alcotest.(check (float 1e-9)) "profile installed" 0.5
    (Link.impairments link).Impair.dup_p;
  Link.set_impairments link Impair.none;
  Alcotest.(check bool) "cleared" true (Impair.is_none (Link.impairments link))

(* ------------------------------------------------------------------ *)
(* Marker integrity                                                    *)
(* ------------------------------------------------------------------ *)

let test_marker_checksum () =
  let pkt = Packet.marker ~channel:1 ~round:7 ~dc:300 ~born:0.0 () in
  let m = Packet.get_marker pkt in
  Alcotest.(check bool) "constructor-built marker is valid" true
    (Packet.marker_valid m);
  Alcotest.(check bool) "tampered round detected" false
    (Packet.marker_valid { m with Packet.m_round = m.Packet.m_round + 1 });
  Alcotest.(check bool) "tampered dc detected" false
    (Packet.marker_valid { m with Packet.m_dc = m.Packet.m_dc + 1 });
  Alcotest.(check bool) "tampered reset flag detected" false
    (Packet.marker_valid { m with Packet.m_reset = true })

let test_mangle_marker () =
  let pkt = Packet.marker ~channel:2 ~round:5 ~dc:100 ~born:0.0 () in
  let mangled = Packet.mangle_marker ~salt:12345 pkt in
  Alcotest.(check bool) "mangled marker fails validation" false
    (Packet.marker_valid (Packet.get_marker mangled));
  Alcotest.(check int) "channel field untouched" 2
    (Packet.get_marker mangled).Packet.m_channel;
  let data = Packet.data ~seq:3 ~size:100 () in
  Alcotest.(check bool) "data passes through unchanged" true
    (Packet.equal data (Packet.mangle_marker ~salt:12345 data));
  (* Deterministic in the salt. *)
  Alcotest.(check bool) "same salt, same damage" true
    (Packet.equal mangled (Packet.mangle_marker ~salt:12345 pkt))

(* ------------------------------------------------------------------ *)
(* Channel guard                                                       *)
(* ------------------------------------------------------------------ *)

let mk_guard ?(n = 2) ?window () =
  let out = ref [] in
  let g =
    Channel_guard.create ~n ?window
      ~deliver:(fun ~channel pkt -> out := (channel, pkt.Packet.seq) :: !out)
      ()
  in
  (g, fun () -> List.rev !out)

let rx g ~tag seq =
  Channel_guard.receive g ~channel:0 ~tag (Packet.data ~seq ~size:100 ())

let test_guard_in_order_passthrough () =
  let g, out = mk_guard () in
  List.iter (fun t -> rx g ~tag:t t) [ 0; 1; 2; 3 ];
  Alcotest.(check (list (pair int int))) "forwarded in order"
    [ (0, 0); (0, 1); (0, 2); (0, 3) ]
    (out ());
  Alcotest.(check int) "forwarded" 4 (Channel_guard.forwarded g);
  Alcotest.(check int) "no restores" 0 (Channel_guard.reorder_restores g);
  Alcotest.(check int) "nothing held" 0 (Channel_guard.held_packets g)

let test_guard_restores_reordering () =
  let g, out = mk_guard () in
  List.iter (fun t -> rx g ~tag:t t) [ 0; 2; 3; 1; 4 ];
  Alcotest.(check (list (pair int int))) "released in tag order"
    [ (0, 0); (0, 1); (0, 2); (0, 3); (0, 4) ]
    (out ());
  Alcotest.(check int) "two held packets restored" 2
    (Channel_guard.reorder_restores g);
  Alcotest.(check int) "high water" 2 (Channel_guard.max_held_packets g)

let test_guard_discards_duplicates () =
  let g, out = mk_guard () in
  List.iter (fun t -> rx g ~tag:t t) [ 0; 1; 1; 0; 2 ];
  Alcotest.(check (list (pair int int))) "each tag delivered once"
    [ (0, 0); (0, 1); (0, 2) ]
    (out ());
  Alcotest.(check int) "duplicates discarded" 2 (Channel_guard.dup_discards g);
  (* A duplicate of a packet still held is also caught. *)
  rx g ~tag:5 5;
  rx g ~tag:5 5;
  Alcotest.(check int) "held duplicate discarded" 3
    (Channel_guard.dup_discards g)

let test_guard_channels_independent () =
  let g, out = mk_guard ~n:2 () in
  Channel_guard.receive g ~channel:1 ~tag:0 (Packet.data ~seq:100 ~size:10 ());
  rx g ~tag:0 0;
  Channel_guard.receive g ~channel:1 ~tag:1 (Packet.data ~seq:101 ~size:10 ());
  Alcotest.(check (list (pair int int))) "tags are per channel"
    [ (1, 100); (0, 0); (1, 101) ]
    (out ())

let test_guard_corrupt_marker_consumes_tag () =
  let g, out = mk_guard () in
  let bad =
    Packet.mangle_marker ~salt:99
      (Packet.marker ~channel:0 ~round:1 ~dc:50 ~born:0.0 ())
  in
  rx g ~tag:0 0;
  Channel_guard.receive g ~channel:0 ~tag:1 bad;
  rx g ~tag:2 2;
  (* The bad marker is gone but its tag was consumed: tag 2 is next in
     line and flows without waiting for a gap that will never fill. *)
  Alcotest.(check (list (pair int int))) "stream advances past the discard"
    [ (0, 0); (0, 2) ]
    (out ());
  Alcotest.(check int) "corrupt discard counted" 1
    (Channel_guard.corrupt_discards g);
  (* Out-of-order corrupt marker: consumed as a held gap entry. *)
  Channel_guard.receive g ~channel:0 ~tag:4 bad;
  rx g ~tag:3 3;
  rx g ~tag:5 5;
  Alcotest.(check (list (pair int int))) "held discard releases the line"
    [ (0, 0); (0, 2); (0, 3); (0, 5) ]
    (out ())

let test_guard_valid_marker_passes () =
  let g, out = mk_guard () in
  let ok = Packet.marker ~channel:0 ~round:1 ~dc:50 ~born:0.0 () in
  rx g ~tag:0 0;
  Channel_guard.receive g ~channel:0 ~tag:1 ok;
  Alcotest.(check int) "marker forwarded" 2 (Channel_guard.forwarded g);
  Alcotest.(check (list (pair int int))) "marker kept its FIFO slot"
    [ (0, 0); (0, -1) ]
    (out ())

let test_guard_window_shed () =
  let g, out = mk_guard ~window:2 () in
  rx g ~tag:0 0;
  (* Tag 1 lost. Held grows past the window: gap declared lost. *)
  List.iter (fun t -> rx g ~tag:t t) [ 2; 3; 4 ];
  Alcotest.(check (list (pair int int))) "shed releases in tag order"
    [ (0, 0); (0, 2); (0, 3); (0, 4) ]
    (out ());
  Alcotest.(check int) "nothing held after shed" 0
    (Channel_guard.held_packets g);
  (* A straggler for the abandoned gap must not be delivered late. *)
  rx g ~tag:1 1;
  Alcotest.(check int) "straggler discarded" 1 (Channel_guard.dup_discards g);
  Alcotest.(check bool) "straggler not delivered" true
    (List.for_all (fun (_, s) -> s <> 1) (out ()))

let test_guard_flush () =
  let g, out = mk_guard ~window:16 () in
  rx g ~tag:0 0;
  rx g ~tag:2 2;
  rx g ~tag:3 3;
  Alcotest.(check int) "held while the gap is open" 2
    (Channel_guard.held_packets g);
  Channel_guard.flush g;
  Alcotest.(check (list (pair int int))) "flush releases in tag order"
    [ (0, 0); (0, 2); (0, 3) ]
    (out ());
  Alcotest.(check int) "nothing held" 0 (Channel_guard.held_packets g)

let test_guard_tx_tags () =
  let tx = Channel_guard.Tx.create ~n:2 in
  Alcotest.(check (list int)) "sequential per channel" [ 0; 1; 2 ]
    (List.map (fun _ -> Channel_guard.Tx.next_tag tx ~channel:0) [ (); (); () ]);
  Alcotest.(check int) "channels independent" 0
    (Channel_guard.Tx.next_tag tx ~channel:1);
  Channel_guard.Tx.reset tx;
  Alcotest.(check int) "reset restarts at 0" 0
    (Channel_guard.Tx.next_tag tx ~channel:0)

(* ------------------------------------------------------------------ *)
(* Resequencer byte budget                                             *)
(* ------------------------------------------------------------------ *)

let mk_reseq ?budget ?overflow ?on_pressure () =
  let engine = Srr.create ~quanta:[| 1500; 1500 |] () in
  let delivered = ref [] in
  let r =
    Resequencer.create ~deficit:(Deficit.clone_initial engine)
      ?budget_bytes:budget ?overflow ?on_pressure
      ~deliver:(fun ~channel:_ pkt -> delivered := pkt.Packet.seq :: !delivered)
      ()
  in
  (r, fun () -> List.rev !delivered)

let feed r ~channel ~seq ~size =
  Resequencer.receive r ~channel (Packet.data ~seq ~size ())

let test_budget_drop_newest () =
  let r, out = mk_reseq ~budget:2500 ~overflow:Resequencer.Drop_newest () in
  (* The receiver blocks on channel 0; channel-1 arrivals buffer until
     the budget refuses them. *)
  for i = 0 to 4 do
    feed r ~channel:1 ~seq:i ~size:1000
  done;
  Alcotest.(check int) "buffered stops at the budget" 2000
    (Resequencer.buffered_bytes r);
  Alcotest.(check int) "overflows counted" 3 (Resequencer.overflows r);
  Alcotest.(check int) "drop-newest refuses each overflow" 3
    (Resequencer.overflow_drops r);
  Alcotest.(check bool) "budget is a hard ceiling" true
    (Resequencer.max_buffered_bytes r <= 2500);
  (* The budget is global, so even an arrival on the blocked channel is
     refused — drop-newest wedges here and relies on the marker
     machinery to recover the stream position. *)
  feed r ~channel:0 ~seq:10 ~size:1000;
  Alcotest.(check int) "blocked-channel arrival refused too" 4
    (Resequencer.overflow_drops r);
  Alcotest.(check int) "nothing delivered yet" 0 (Resequencer.delivered r);
  (* The next marker on channel 0 stamps its lost data's (round, DC):
     ahead of the receiver's round, so the scan skips channel 0 and the
     buffered channel-1 data drains — the wedge clears. *)
  Resequencer.receive r ~channel:0
    (Packet.marker ~channel:0 ~round:2 ~dc:1500 ~born:0.0 ());
  Alcotest.(check (list int)) "marker recovered the buffered data" [ 0; 1 ]
    (out ());
  Alcotest.(check int) "buffers drained" 0 (Resequencer.buffered_bytes r);
  Alcotest.(check bool) "still under budget" true
    (Resequencer.max_buffered_bytes r <= 2500)

let test_budget_force_flush_makes_room () =
  let r, _ = mk_reseq ~budget:2500 ~overflow:Resequencer.Force_flush () in
  for i = 0 to 5 do
    feed r ~channel:1 ~seq:i ~size:1000
  done;
  (* Rather than refuse fresh data, the scan was forced through the
     blocked channel and drained old data quasi-FIFO. *)
  Alcotest.(check bool) "budget never exceeded" true
    (Resequencer.max_buffered_bytes r <= 2500);
  Alcotest.(check int) "no packets refused" 0 (Resequencer.overflow_drops r);
  Alcotest.(check bool) "overflow episodes recorded" true
    (Resequencer.overflows r >= 1);
  Alcotest.(check int) "everything accepted was delivered or buffered" 6
    (Resequencer.delivered r + Resequencer.pending r)

let test_budget_force_flush_oversized_packet () =
  let r, _ = mk_reseq ~budget:2500 ~overflow:Resequencer.Force_flush () in
  feed r ~channel:1 ~seq:0 ~size:4000;
  (* Bigger than the whole budget: nothing to evict can make it fit. *)
  Alcotest.(check int) "oversized packet refused" 1
    (Resequencer.overflow_drops r);
  Alcotest.(check int) "nothing buffered" 0 (Resequencer.buffered_bytes r)

let test_budget_markers_always_accepted () =
  let r, _ = mk_reseq ~budget:1000 ~overflow:Resequencer.Drop_newest () in
  feed r ~channel:1 ~seq:0 ~size:600;
  feed r ~channel:1 ~seq:1 ~size:600;
  Alcotest.(check int) "data refused at the budget" 1 (Resequencer.overflows r);
  (* The marker arrives with the budget effectively full: accepted
     anyway — it is tiny and carries the resynchronization state. *)
  Resequencer.receive r ~channel:1
    (Packet.marker ~channel:1 ~round:0 ~dc:1500 ~born:0.0 ());
  Alcotest.(check int) "no overflow charged for the marker" 1
    (Resequencer.overflows r);
  (* Drive the scan through channel 0 until its quantum is exhausted and
     the buffered channel-1 stream (data, then marker) is absorbed. *)
  for i = 10 to 24 do
    feed r ~channel:0 ~seq:i ~size:100
  done;
  Alcotest.(check int) "buffered marker reached and applied" 1
    (Resequencer.markers_seen r)

let test_budget_pressure_hysteresis () =
  let transitions = ref [] in
  let r, _ =
    mk_reseq ~budget:4000
      ~on_pressure:(fun ~high -> transitions := high :: !transitions)
      ()
  in
  for i = 0 to 3 do
    feed r ~channel:1 ~seq:i ~size:1000
  done;
  Alcotest.(check (list bool)) "high fired once past 3/4" [ true ] !transitions;
  Alcotest.(check bool) "pressure visible" true (Resequencer.pressure_high r);
  ignore (Resequencer.drain r);
  Alcotest.(check (list bool)) "cleared once below 1/2" [ false; true ]
    !transitions;
  Alcotest.(check bool) "signal lowered" false (Resequencer.pressure_high r)

let test_corrupt_marker_discarded_by_resequencer () =
  let r, _ = mk_reseq () in
  let bad =
    Packet.mangle_marker ~salt:7
      (Packet.marker ~channel:1 ~round:3 ~dc:200 ~born:0.0 ())
  in
  Resequencer.receive r ~channel:1 bad;
  Alcotest.(check int) "discarded, not applied" 0 (Resequencer.markers_seen r);
  Alcotest.(check int) "counted" 1 (Resequencer.corrupt_marker_discards r)

(* ------------------------------------------------------------------ *)
(* End-to-end rigs                                                     *)
(* ------------------------------------------------------------------ *)

(* A 3-channel SRR bundle with markers, a paced source, impaired links
   (profile applied to every channel until [impair_stop]), optional
   channel guard, and a budgeted resequencer; everything seeds from
   [seed] alone. *)
type rig = {
  sim : Sim.t;
  striper : Striper.t;
  reseq : Resequencer.t;
  guard : Channel_guard.t option;
  collector : Obs.Sink.t;
  pushed : int ref;
}

let rig_budget = 32 * 1024

let make_rig ?(seed = 11) ?(guarded = true) ?(window = 48)
    ?(overflow = Resequencer.Drop_newest) ?impair_stop ~impair () =
  let n = 3 in
  let sim = Sim.create () in
  let master = Rng.create seed in
  let collector = Obs.Sink.collector () in
  let engine = Srr.create ~quanta:(Array.make n 1500) () in
  let reseq =
    Resequencer.create ~deficit:(Deficit.clone_initial engine)
      ~now:(fun () -> Sim.now sim)
      ~sink:collector ~budget_bytes:rig_budget ~overflow
      ~deliver:(fun ~channel:_ _ -> ())
      ()
  in
  let guard =
    if guarded then
      Some
        (Channel_guard.create ~n ~window
           ~now:(fun () -> Sim.now sim)
           ~sink:collector
           ~deliver:(fun ~channel pkt -> Resequencer.receive reseq ~channel pkt)
           ())
    else None
  in
  let mangle_rng = Rng.split master in
  let links =
    Array.init n (fun i ->
        Link.create sim
          ~name:(Printf.sprintf "ch%d" i)
          ~rate_bps:10e6 ~prop_delay:0.002
          ~rng:(Rng.split master)
          ~impair
          ~corrupt:(fun (tag, pkt) ->
            if Packet.is_marker pkt then
              Some
                (tag, Packet.mangle_marker ~salt:(Rng.int mangle_rng 0x3fffffff) pkt)
            else None)
          ~deliver:(fun (tag, pkt) ->
            match guard with
            | Some g -> Channel_guard.receive g ~channel:i ~tag pkt
            | None -> Resequencer.receive reseq ~channel:i pkt)
          ())
  in
  let tx = Channel_guard.Tx.create ~n in
  let sched = Scheduler.of_deficit ~name:"SRR" engine in
  let striper =
    Striper.create ~scheduler:sched
      ~marker:(Marker.make ~every_rounds:4 ())
      ~now:(fun () -> Sim.now sim)
      ~emit:(fun ~channel pkt ->
        let tag =
          if guarded then Channel_guard.Tx.next_tag tx ~channel else -1
        in
        ignore (Link.send links.(channel) ~size:pkt.Packet.size (tag, pkt)))
      ()
  in
  (match impair_stop with
  | Some at ->
    Sim.schedule sim ~at (fun () ->
        Array.iter (fun l -> Link.set_impairments l Impair.none) links)
  | None -> ());
  { sim; striper; reseq; guard; collector; pushed = ref 0 }

let drive rig ~until_ =
  let rng = Rng.create 7 in
  let gen = Stripe_workload.Genpkt.bimodal ~rng ~small:200 ~large:1000 () in
  let rec tick () =
    if Sim.now rig.sim < until_ then begin
      for _ = 1 to 2 do
        Striper.push rig.striper
          (Packet.data ~seq:!(rig.pushed) ~born:(Sim.now rig.sim)
             ~size:(gen ()) ());
        incr rig.pushed
      done;
      Sim.schedule_after rig.sim ~delay:0.0006 tick
    end
  in
  tick ()

let full_impair =
  Impair.make ~reorder_p:0.15 ~reorder_window:0.005 ~dup_p:0.05 ~corrupt_p:0.02
    ()

let test_e2e_deterministic () =
  let trace () =
    let rig = make_rig ~seed:21 ~impair_stop:0.3 ~impair:full_impair () in
    drive rig ~until_:0.5;
    Sim.run rig.sim;
    Obs.Sink.events rig.collector
  in
  let t1 = trace () and t2 = trace () in
  Alcotest.(check bool) "a run produces events" true (List.length t1 > 100);
  Alcotest.(check bool) "identical seed, identical trace" true (t1 = t2)

let test_e2e_guard_restores_fifo () =
  (* Reordering and duplication but no loss: the guard fills every gap
     eventually, so delivery is FIFO end to end (Theorem 4.1 holds even
     though the channels broke its hypothesis). *)
  let impair = Impair.make ~reorder_p:0.15 ~reorder_window:0.005 ~dup_p:0.05 () in
  let rig = make_rig ~seed:31 ~impair () in
  drive rig ~until_:0.5;
  Sim.run rig.sim;
  let events = Obs.Sink.events rig.collector in
  Alcotest.(check (list (pair int int))) "no FIFO violations" []
    (Obs.Check.fifo_violations events);
  Alcotest.(check bool) "impairments actually bit" true
    (Obs.Check.count Obs.Event.Reorder_restore events > 0
    && Obs.Check.count Obs.Event.Dup_discard events > 0);
  Alcotest.(check bool) "everything pushed was delivered" true
    (Resequencer.delivered rig.reseq = !(rig.pushed))

let test_e2e_unguarded_reordering_violates_fifo () =
  (* Control: the same profile without the guard misorders delivery. *)
  let impair = Impair.make ~reorder_p:0.15 ~reorder_window:0.005 ~dup_p:0.05 () in
  let rig = make_rig ~seed:31 ~guarded:false ~impair () in
  drive rig ~until_:0.5;
  Sim.run rig.sim;
  Alcotest.(check bool) "FIFO violated without the guard" true
    (Obs.Check.fifo_violations (Obs.Sink.events rig.collector) <> [])

let test_e2e_resync_after_impairments_stop () =
  (* Corruption drops data (CRC) and mangles markers: real loss. Once
     the impairments stop, markers restore FIFO within a marker interval
     — Theorem 5.1, checked on the trace. *)
  let rig = make_rig ~seed:41 ~impair_stop:0.5 ~impair:full_impair () in
  drive rig ~until_:0.9;
  Sim.run rig.sim;
  let events = Obs.Sink.events rig.collector in
  Alcotest.(check bool) "substantial delivery" true
    (float_of_int (Resequencer.delivered rig.reseq)
    > 0.5 *. float_of_int !(rig.pushed));
  Alcotest.(check bool) "FIFO restored after impairments stop" true
    (Obs.Check.fifo_from ~time:0.75 events);
  Alcotest.(check bool) "budget held throughout" true
    (Resequencer.max_buffered_bytes rig.reseq <= rig_budget);
  Alcotest.(check bool) "receiver not wedged" true
    (Resequencer.blocked_on rig.reseq = None || Resequencer.pending rig.reseq = 0)

(* Random impairment profiles: whatever the channels do, the budget
   holds, the run terminates, and FIFO returns after they stop. *)
let prop_impair_containment =
  QCheck.Test.make ~name:"random impairments: bounded memory + resync"
    ~count:8
    QCheck.(
      quad (int_range 0 1000) (float_range 0.0 0.25) (float_range 0.0 0.1)
        (float_range 0.0 0.04))
    (fun (seed, reorder_p, dup_p, corrupt_p) ->
      let impair =
        Impair.make ~reorder_p ~reorder_window:0.005 ~dup_p ~corrupt_p ()
      in
      let overflow =
        if seed mod 2 = 0 then Resequencer.Drop_newest
        else Resequencer.Force_flush
      in
      let rig = make_rig ~seed ~overflow ~impair_stop:0.5 ~impair () in
      drive rig ~until_:0.9;
      Sim.run rig.sim;
      Resequencer.max_buffered_bytes rig.reseq <= rig_budget
      && Resequencer.delivered rig.reseq > 0
      && Obs.Check.fifo_from ~time:0.75 (Obs.Sink.events rig.collector))

(* ------------------------------------------------------------------ *)
(* Randomized impairment soak (CI matrix reads STRIPE_IMPAIR_SEED)      *)
(* ------------------------------------------------------------------ *)

let soak_seed () =
  match Sys.getenv_opt "STRIPE_IMPAIR_SEED" with
  | Some s -> (
    match int_of_string_opt s with
    | Some n -> n
    | None -> Alcotest.failf "bad STRIPE_IMPAIR_SEED %S" s)
  | None -> 1

let test_impair_soak () =
  let seed = soak_seed () in
  let r = Rng.create seed in
  let impair =
    Impair.make ~reorder_p:(Rng.float r 0.3) ~reorder_window:0.008
      ~dup_p:(Rng.float r 0.1) ~corrupt_p:(Rng.float r 0.05) ()
  in
  let overflow =
    if Rng.bool r then Resequencer.Drop_newest else Resequencer.Force_flush
  in
  let stop = 1.0 in
  let rig = make_rig ~seed ~overflow ~impair_stop:stop ~impair () in
  drive rig ~until_:(stop +. 0.5);
  Sim.run rig.sim;
  (match rig.guard with Some g -> Channel_guard.flush g | None -> ());
  let delivered = Resequencer.delivered rig.reseq in
  Alcotest.(check bool)
    (Printf.sprintf "seed %d: substantial delivery (%d of %d)" seed delivered
       !(rig.pushed))
    true
    (float_of_int delivered > 0.5 *. float_of_int !(rig.pushed));
  Alcotest.(check bool)
    (Printf.sprintf "seed %d: budget held (%d <= %d)" seed
       (Resequencer.max_buffered_bytes rig.reseq)
       rig_budget)
    true
    (Resequencer.max_buffered_bytes rig.reseq <= rig_budget);
  Alcotest.(check bool)
    (Printf.sprintf "seed %d: FIFO restored after impairments stopped" seed)
    true
    (Obs.Check.fifo_from
       ~time:(stop +. 0.3)
       (Obs.Sink.events rig.collector));
  Alcotest.(check bool)
    (Printf.sprintf "seed %d: receiver not wedged" seed)
    true
    (Resequencer.blocked_on rig.reseq = None
    || Resequencer.pending rig.reseq = 0)

let suites =
  [
    ( "impair",
      [
        Alcotest.test_case "parse combined spec" `Quick test_parse_spec;
        Alcotest.test_case "parse single impairment" `Quick
          test_parse_spec_single;
        Alcotest.test_case "parse spec errors" `Quick test_parse_spec_errors;
        Alcotest.test_case "make validates" `Quick test_make_validates;
      ] );
    ( "link-impair",
      [
        Alcotest.test_case "duplication delivers twice" `Quick
          test_link_duplication;
        Alcotest.test_case "reordering overtakes" `Quick test_link_reordering;
        Alcotest.test_case "jitter stays FIFO" `Quick
          test_link_jitter_stays_fifo;
        Alcotest.test_case "corruption drops by default" `Quick
          test_link_corruption_default_drops;
        Alcotest.test_case "corruption hook mangles" `Quick
          test_link_corruption_hook_mangles;
        Alcotest.test_case "set/clear impairments" `Quick
          test_link_set_impairments;
      ] );
    ( "marker-integrity",
      [
        Alcotest.test_case "checksum detects tampering" `Quick
          test_marker_checksum;
        Alcotest.test_case "mangle invalidates markers only" `Quick
          test_mangle_marker;
      ] );
    ( "guard",
      [
        Alcotest.test_case "in-order passthrough" `Quick
          test_guard_in_order_passthrough;
        Alcotest.test_case "restores reordering" `Quick
          test_guard_restores_reordering;
        Alcotest.test_case "discards duplicates" `Quick
          test_guard_discards_duplicates;
        Alcotest.test_case "channels independent" `Quick
          test_guard_channels_independent;
        Alcotest.test_case "corrupt marker consumes its tag" `Quick
          test_guard_corrupt_marker_consumes_tag;
        Alcotest.test_case "valid marker passes" `Quick
          test_guard_valid_marker_passes;
        Alcotest.test_case "window shed declares the gap lost" `Quick
          test_guard_window_shed;
        Alcotest.test_case "flush releases everything" `Quick test_guard_flush;
        Alcotest.test_case "tx tag stamper" `Quick test_guard_tx_tags;
      ] );
    ( "rx-budget",
      [
        Alcotest.test_case "drop-newest hard ceiling" `Quick
          test_budget_drop_newest;
        Alcotest.test_case "force-flush makes room" `Quick
          test_budget_force_flush_makes_room;
        Alcotest.test_case "force-flush oversized packet" `Quick
          test_budget_force_flush_oversized_packet;
        Alcotest.test_case "markers always accepted" `Quick
          test_budget_markers_always_accepted;
        Alcotest.test_case "backpressure hysteresis" `Quick
          test_budget_pressure_hysteresis;
        Alcotest.test_case "corrupt marker discarded" `Quick
          test_corrupt_marker_discarded_by_resequencer;
      ] );
    ( "impair-e2e",
      [
        Alcotest.test_case "deterministic from one seed" `Quick
          test_e2e_deterministic;
        Alcotest.test_case "guard restores FIFO (thm 4.1)" `Quick
          test_e2e_guard_restores_fifo;
        Alcotest.test_case "control: unguarded violates FIFO" `Quick
          test_e2e_unguarded_reordering_violates_fifo;
        Alcotest.test_case "resync after impairments stop (thm 5.1)" `Quick
          test_e2e_resync_after_impairments_stop;
        QCheck_alcotest.to_alcotest prop_impair_containment;
      ] );
    ( "impair-soak",
      [ Alcotest.test_case "randomized impairment soak" `Slow test_impair_soak ] );
  ]
