(* Tests for gray-failure detection (PROTOCOL.md §13): the evidence
   fusion and hysteresis ladder of Stripe_core.Health, quarantine
   backoff and flap bookkeeping, the last-live-channel guard, channel
   lifecycle (hot add/remove/reset), the --health spec grammar, and a
   table of position-annotated parse errors across all four spec
   dialects. Two properties close the file: random evidence streams
   never zero the live membership, and a full gray storm over every
   member of a striped bundle neither deadlocks the reset barrier nor
   stops delivery for good. *)

open Stripe_netsim
open Stripe_packet
open Stripe_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains haystack needle =
  let lh = String.length haystack and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub haystack i ln = needle || go (i + 1)) in
  go 0

(* One fully-bad evidence window: total loss and collapsed goodput. *)
let bad h c = Health.observe h ~channel:c ~sent:100 ~lost:100 ~goodput_ratio:0.0 ()

(* One clean window: everything delivered at nominal goodput. *)
let clean h c =
  Health.observe h ~channel:c ~sent:100 ~lost:0 ~goodput_ratio:1.0 ()

(* ------------------------------------------------------------------ *)
(* Escalation ladder and hysteresis                                    *)
(* ------------------------------------------------------------------ *)

let test_escalation_ladder () =
  (* Defaults: alpha 0.4, escalate 2. A totally bad window scores raw
     1.0, so the EWMA walks 0.40, 0.64, 0.78, ... and each state needs
     two consecutive windows over its enter line: the ladder fires at
     samples 2 (suspect), 4 (probation) and 6 (quarantine). *)
  let h = Health.create ~n:2 () in
  let expected = [| [];
                    [ `S ];
                    [];
                    [ `P ];
                    [];
                    [ `Q ] |] in
  Array.iteri
    (fun i want ->
      bad h 0;
      clean h 1;
      let got =
        List.map
          (function
            | Health.To_suspect { channel } ->
              check_int "suspect channel" 0 channel;
              `S
            | Health.To_probation { channel; from_quarantine } ->
              check_int "probation channel" 0 channel;
              check "escalation, not reinstatement" false from_quarantine;
              `P
            | Health.To_quarantine { channel; backoff } ->
              check_int "quarantine channel" 0 channel;
              Alcotest.(check (float 1e-9)) "first backoff" 0.25 backoff;
              `Q
            | Health.To_healthy _ -> Alcotest.fail "unexpected recovery")
          (Health.sample h ~now:(0.05 *. float_of_int (i + 1)))
      in
      check (Printf.sprintf "transitions at window %d" (i + 1)) true
        (got = want))
    expected;
  check "bad channel quarantined" true (Health.state h 0 = Health.Quarantined);
  check "clean channel untouched" true (Health.state h 1 = Health.Healthy);
  Alcotest.(check (float 1e-9)) "quarantined scale" 0.0 (Health.quantum_scale h 0);
  Alcotest.(check (float 1e-9)) "healthy scale" 1.0 (Health.quantum_scale h 1)

let test_hysteresis_band_resets_streaks () =
  let h = Health.create ~n:1 () in
  bad h 0;
  check "one bad window alone does not escalate" true
    (Health.sample h ~now:0.05 = []);
  (* No evidence: the score decays 0.40 -> 0.24, inside the hysteresis
     band (0.12..0.25), which resets the bad streak. *)
  check "decay window, no transition" true (Health.sample h ~now:0.10 = []);
  bad h 0;
  check "streak restarted: still no escalation" true
    (Health.sample h ~now:0.15 = []);
  bad h 0;
  check "second consecutive bad window escalates" true
    (match Health.sample h ~now:0.20 with
    | [ Health.To_suspect { channel = 0 } ] -> true
    | _ -> false)

let test_recovery_needs_consecutive_clean_windows () =
  let h = Health.create ~n:1 () in
  (* Ladder up to probation. *)
  for i = 1 to 4 do
    bad h 0;
    ignore (Health.sample h ~now:(0.05 *. float_of_int i))
  done;
  check "in probation" true (Health.state h 0 = Health.Probation);
  Alcotest.(check (float 1e-9)) "probation scale" 0.25 (Health.quantum_scale h 0);
  (* Clean windows decay the score below exit (0.12); recovery then
     needs three of them in a row. *)
  let now = ref 0.2 in
  let recovered = ref None in
  while !recovered = None && !now < 3.0 do
    clean h 0;
    now := !now +. 0.05;
    List.iter
      (function
        | Health.To_healthy { channel = 0; from } -> recovered := Some from
        | _ -> Alcotest.fail "unexpected transition during recovery")
      (Health.sample h ~now:!now)
  done;
  check "recovered from probation" true (!recovered = Some Health.Probation);
  Alcotest.(check (float 1e-9)) "full quantum restored" 1.0
    (Health.quantum_scale h 0)

(* ------------------------------------------------------------------ *)
(* Quarantine: timed exit, backoff doubling, flap forgiveness          *)
(* ------------------------------------------------------------------ *)

(* A hair-trigger config so each escalation takes one window. *)
let fast =
  {
    Health.default_config with
    escalate_windows = 1;
    recover_windows = 1;
    base_backoff = 0.25;
    backoff_factor = 2.0;
    max_backoff = 1.0;
  }

(* Walk a healthy channel into quarantine and return the granted
   backoff. With [fast] that is three bad windows. *)
let quarantine_now h c now =
  let granted = ref Float.nan in
  for i = 1 to 3 do
    bad h c;
    List.iter
      (function
        | Health.To_quarantine { backoff; _ } -> granted := backoff
        | _ -> ())
      (Health.sample h ~now:(now +. (0.05 *. float_of_int i)))
  done;
  check "reached quarantine" true (Health.state h c = Health.Quarantined);
  !granted

let test_backoff_doubles_and_caps () =
  let h = Health.create ~config:fast ~n:2 () in
  Alcotest.(check (float 1e-9)) "first backoff" 0.25 (quarantine_now h 0 0.0);
  check_int "one flap" 1 (Health.flaps h 0);
  (* Exit is purely timed: sampling before expiry does nothing, even
     with (stale) evidence accumulated against the channel. *)
  bad h 0;
  check "early sample keeps quarantine" true (Health.sample h ~now:0.2 = []);
  check "reinstated on expiry" true
    (match Health.sample h ~now:0.5 with
    | [ Health.To_probation { channel = 0; from_quarantine = true } ] -> true
    | _ -> false);
  check "probing in probation" true (Health.state h 0 = Health.Probation);
  (* Still bad: the flap doubles the next backoff, and the ceiling
     clamps the schedule at max_backoff. *)
  bad h 0;
  (match Health.sample h ~now:0.55 with
  | [ Health.To_quarantine { channel = 0; backoff } ] ->
    Alcotest.(check (float 1e-9)) "second backoff doubled" 0.5 backoff
  | _ -> Alcotest.fail "expected an immediate re-quarantine");
  check_int "two flaps" 2 (Health.flaps h 0);
  ignore (Health.sample h ~now:1.1);
  bad h 0;
  (match Health.sample h ~now:1.15 with
  | [ Health.To_quarantine { backoff; _ } ] ->
    Alcotest.(check (float 1e-9)) "third backoff" 1.0 backoff
  | _ -> Alcotest.fail "expected a third quarantine");
  ignore (Health.sample h ~now:2.2);
  bad h 0;
  (match Health.sample h ~now:2.25 with
  | [ Health.To_quarantine { backoff; _ } ] ->
    Alcotest.(check (float 1e-9)) "ceiling holds" 1.0 backoff
  | _ -> Alcotest.fail "expected a fourth quarantine")

let test_full_recovery_forgives_flaps () =
  let h = Health.create ~config:fast ~n:2 () in
  ignore (quarantine_now h 0 0.0);
  ignore (Health.sample h ~now:0.5);
  (* Reinstated; now genuinely clean. The reinstated score is pinned at
     the suspect line, so it has to decay below exit before the (single,
     with [fast]) clean window recovers it. *)
  let now = ref 0.5 in
  let healthy = ref false in
  while (not !healthy) && !now < 3.0 do
    clean h 0;
    now := !now +. 0.05;
    List.iter
      (function
        | Health.To_healthy { channel = 0; from = Health.Probation } ->
          healthy := true
        | _ -> Alcotest.fail "unexpected transition")
      (Health.sample h ~now:!now)
  done;
  check "fully recovered" true !healthy;
  check_int "flaps forgiven" 0 (Health.flaps h 0);
  (* The schedule starts over: the next quarantine gets the base
     backoff again, not the doubled one. *)
  Alcotest.(check (float 1e-9)) "backoff schedule reset" 0.25
    (quarantine_now h 0 !now)

let test_quarantine_until () =
  let h = Health.create ~config:fast ~n:2 () in
  check "no expiry while healthy" true (Health.quarantine_until h 0 = None);
  ignore (quarantine_now h 0 0.0);
  (match Health.quarantine_until h 0 with
  | Some t -> Alcotest.(check (float 1e-9)) "expiry = grant time + backoff" 0.4 t
  | None -> Alcotest.fail "expected an expiry time")

(* ------------------------------------------------------------------ *)
(* Last-live-channel guard                                             *)
(* ------------------------------------------------------------------ *)

let test_last_live_guard_defers () =
  let other_live = ref false in
  let h =
    Health.create ~config:fast ~live:(fun c -> c = 0 || !other_live) ~n:2 ()
  in
  (* Channel 1's link is down (live = false): quarantining channel 0
     would zero the membership, so the decision is deferred and the
     channel keeps probing in probation. *)
  for i = 1 to 5 do
    bad h 0;
    List.iter
      (function
        | Health.To_quarantine _ -> Alcotest.fail "guard failed to defer"
        | _ -> ())
      (Health.sample h ~now:(0.05 *. float_of_int i))
  done;
  check "held in probation" true (Health.state h 0 = Health.Probation);
  check "deferrals counted" true (Health.deferred_quarantines h >= 1);
  (* The moment membership allows it, the retried escalation fires. *)
  other_live := true;
  bad h 0;
  check "quarantine lands once another channel is live" true
    (match Health.sample h ~now:1.0 with
    | [ Health.To_quarantine { channel = 0; _ } ] -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Channel lifecycle                                                   *)
(* ------------------------------------------------------------------ *)

let test_add_remove_reset_channel () =
  let h = Health.create ~config:fast ~n:2 () in
  bad h 1;
  ignore (Health.sample h ~now:0.05);
  check "ch1 suspect" true (Health.state h 1 = Health.Suspect);
  check_int "hot add returns the new index" 2 (Health.add_channel h);
  check_int "grown" 3 (Health.n_channels h);
  check "new member healthy" true (Health.state h 2 = Health.Healthy);
  (* Removal shifts higher indices down, mirroring the striper. *)
  Health.remove_channel h 0;
  check_int "shrunk" 2 (Health.n_channels h);
  check "suspect record followed the shift" true
    (Health.state h 0 = Health.Suspect);
  Health.reset_channel h 0;
  check "reset is a clean sheet" true
    (Health.state h 0 = Health.Healthy
    && Health.score h 0 = 0.0
    && Health.flaps h 0 = 0);
  Alcotest.check_raises "cannot remove the last channel"
    (Invalid_argument "Health.remove_channel: last channel") (fun () ->
      Health.remove_channel h 0;
      Health.remove_channel h 0)

let test_observe_validation () =
  let h = Health.create ~n:1 () in
  Alcotest.check_raises "negative count rejected"
    (Invalid_argument "Health.observe: negative count") (fun () ->
      Health.observe h ~channel:0 ~lost:(-1) ());
  Alcotest.check_raises "negative goodput rejected"
    (Invalid_argument "Health.observe: goodput_ratio -0.5") (fun () ->
      Health.observe h ~channel:0 ~goodput_ratio:(-0.5) ());
  Alcotest.check_raises "bad channel rejected"
    (Invalid_argument "Health.observe: bad channel 7") (fun () ->
      Health.observe h ~channel:7 ())

(* ------------------------------------------------------------------ *)
(* Spec grammar                                                        *)
(* ------------------------------------------------------------------ *)

let test_parse_spec_full () =
  match
    Health.parse_spec
      "every=0.1,alpha=0.5,suspect=0.2,quarantine=0.6,exit=0.1,escalate=3,\
       recover=4,frac=0.3,backoff=1,factor=3,maxbackoff=8"
  with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok (cfg, every) ->
    check "every returned separately" true (every = Some 0.1);
    Alcotest.(check (float 1e-9)) "alpha" 0.5 cfg.Health.alpha;
    Alcotest.(check (float 1e-9)) "suspect" 0.2 cfg.Health.enter_suspect;
    Alcotest.(check (float 1e-9)) "quarantine" 0.6 cfg.Health.enter_quarantine;
    Alcotest.(check (float 1e-9)) "exit" 0.1 cfg.Health.exit_healthy;
    check_int "escalate" 3 cfg.Health.escalate_windows;
    check_int "recover" 4 cfg.Health.recover_windows;
    Alcotest.(check (float 1e-9)) "frac" 0.3 cfg.Health.probation_frac;
    Alcotest.(check (float 1e-9)) "backoff" 1.0 cfg.Health.base_backoff;
    Alcotest.(check (float 1e-9)) "factor" 3.0 cfg.Health.backoff_factor;
    Alcotest.(check (float 1e-9)) "maxbackoff" 8.0 cfg.Health.max_backoff

let test_parse_spec_defaults_and_validation () =
  (match Health.parse_spec "every=0.2" with
  | Ok (cfg, Some 0.2) -> check "defaults kept" true (cfg = Health.default_config)
  | Ok _ -> Alcotest.fail "every not returned"
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (* Inconsistent thresholds are rejected by the same config check that
     guards Health.create. *)
  match Health.parse_spec "suspect=0.7,quarantine=0.3" with
  | Ok _ -> Alcotest.fail "accepted suspect > quarantine"
  | Error e ->
    check "config check surfaced" true
      (contains e "enter_suspect <= enter_quarantine")

(* Satellite: every spec dialect annotates its errors with the
   character position of the offending item in the user's own string.
   One table covers all four parsers. *)
let test_spec_errors_carry_positions () =
  let table =
    [
      ( "health",
        (fun s -> Result.map (fun _ -> ()) (Health.parse_spec s)),
        [
          ("alpha=0.5,bogus=1", "at char 10 in health spec");
          ("every=-1", "tick interval must be > 0, got -1 at char 0");
          ("alpha=0.5,frac", "health item \"frac\" lacks a =VALUE at char 10");
        ] );
      ( "fault",
        (fun s -> Result.map (fun _ -> ()) (Fault.parse_spec s)),
        [
          ("0:down@1,frob@2", "at char 9 in fault spec");
          ("0:down@1,up", "lacks an @TIME at char 9");
        ] );
      ( "impair",
        (fun s -> Result.map (fun _ -> ()) (Impair.parse_spec s)),
        [
          ("1:dup=0.5,frob=1", "at char 10 in impair spec");
          ("1:dup=0.5,corrupt=2", "probability 2 not in [0,1] at char 10");
        ] );
      ( "chaos",
        (fun s -> Result.map (fun _ -> ()) (Chaos.parse_spec s)),
        [
          ("storm=0+1/0.5@1,crash=up/0/0.2@2", "at char 16 in chaos spec");
          ("violate=0@1,storm=/0.5@2", "bad storm channel \"\" (want an integer) at char 12");
        ] );
    ]
  in
  List.iter
    (fun (kind, parse, cases) ->
      List.iter
        (fun (spec, want) ->
          match parse spec with
          | Ok () -> Alcotest.failf "%s parser accepted %S" kind spec
          | Error e ->
            check
              (Printf.sprintf "%s error for %S has its position" kind spec)
              true
              (contains e want && contains e spec))
        cases)
    table

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

(* Random interleavings of evidence windows with hot channel
   add/remove/reset: sampling never raises, scores stay in [0,1],
   quantum scales match states, and with every link vouched live the
   guard keeps at least one channel unquarantined — whatever the
   evidence and the membership churn say. *)
let prop_guard_never_zeroes_membership =
  QCheck.Test.make ~name:"health: guard keeps one live channel" ~count:100
    QCheck.(
      pair (int_range 1 5) (list_of_size Gen.(int_range 1 60) (int_range 0 999)))
    (fun (n0, stream) ->
      let h = Health.create ~config:fast ~n:n0 () in
      let now = ref 0.0 in
      List.iter
        (fun tok ->
          let n = Health.n_channels h in
          let c = tok mod n in
          (* Weighted ops: mostly evidence windows, sprinkled with the
             hot-membership operations of PR 5. *)
          (match tok mod 10 with
          | 0 | 1 | 2 | 3 -> bad h c
          | 4 | 5 | 6 -> clean h c
          | 7 -> if n < 6 then ignore (Health.add_channel h)
          | 8 ->
            (* A sane caller never unplugs the last working member;
               the guard can only defer quarantines, not removals. *)
            let others_ok = ref false in
            for i = 0 to n - 1 do
              if i <> c && Health.state h i <> Health.Quarantined then
                others_ok := true
            done;
            if n > 1 && !others_ok then Health.remove_channel h c
          | _ -> Health.reset_channel h c);
          now := !now +. 0.05;
          ignore (Health.sample h ~now:!now);
          let n = Health.n_channels h in
          let unquarantined = ref 0 in
          for i = 0 to n - 1 do
            let s = Health.score h i in
            if not (s >= 0.0 && s <= 1.0) then
              QCheck.Test.fail_reportf "score %g out of range" s;
            let scale = Health.quantum_scale h i in
            (match Health.state h i with
            | Health.Quarantined ->
              if scale <> 0.0 then QCheck.Test.fail_report "quarantined scale"
            | Health.Probation ->
              if scale <> fast.Health.probation_frac then
                QCheck.Test.fail_report "probation scale"
            | Health.Healthy | Health.Suspect ->
              if scale <> 1.0 then QCheck.Test.fail_report "healthy scale");
            if Health.state h i <> Health.Quarantined then incr unquarantined
          done;
          if !unquarantined = 0 then
            QCheck.Test.fail_report "guard let the membership hit zero")
        stream;
      true)

(* Gray storm over the whole bundle: every channel of a 3-member SRR
   stripe turns ~45%-lossy at once while a health tick drives
   suspend/resume and probation retunes against the striper and
   resequencer. The guard must keep a member striping, the reset
   barrier must not deadlock, and once the storm clears delivery must
   resume and the engine must walk everyone back to full quantum. *)
let prop_full_gray_storm_recovers =
  QCheck.Test.make ~name:"health: full-bundle gray storm recovers" ~count:8
    QCheck.(int_range 0 1000)
    (fun seed ->
      let n = 3 in
      let sim = Sim.create () in
      let master = Rng.create (7001 + seed) in
      let nominal = Array.make n 4000 in
      let engine = Srr.create ~max_packet:1000 ~quanta:nominal () in
      let delivered = ref 0 in
      let delivered_late = ref 0 in
      let reseq =
        Resequencer.create
          ~deficit:(Deficit.clone_initial engine)
          ~now:(fun () -> Sim.now sim)
          ~watchdog:{ Resequencer.intervals = 3; fallback = 0.01 }
          ~deliver:(fun ~channel:_ _ ->
            incr delivered;
            if Sim.now sim > 2.5 then incr delivered_late)
          ()
      in
      let links =
        Array.init n (fun i ->
            Link.create sim
              ~name:(Printf.sprintf "ch%d" i)
              ~rate_bps:10e6 ~prop_delay:0.002 ~rng:(Rng.split master)
              ~deliver:(fun pkt -> Resequencer.receive reseq ~channel:i pkt)
              ())
      in
      let striper =
        Striper.create
          ~scheduler:(Scheduler.of_deficit ~name:"SRR" engine)
          ~marker:(Marker.make ~every_rounds:4 ())
          ~now:(fun () -> Sim.now sim)
          ~emit:(fun ~channel pkt ->
            ignore (Link.send links.(channel) ~size:pkt.Packet.size pkt))
          ()
      in
      let gray () =
        Loss.gilbert ~p_good_to_bad:0.1 ~p_bad_to_good:0.1 ~loss_good:0.02
          ~loss_bad:0.9
      in
      Sim.schedule sim ~at:0.5 (fun () ->
          Array.iter (fun l -> Link.set_loss l (gray ())) links);
      Sim.schedule sim ~at:2.0 (fun () ->
          Array.iter (fun l -> Link.set_loss l (Loss.none ())) links);
      let h =
        Health.create ~config:fast
          ~live:(fun c -> c >= 0 && c < n && Link.is_up links.(c))
          ~n ()
      in
      let last_sent = Array.make n 0 in
      let last_lost = Array.make n 0 in
      let staged = ref (Array.copy nominal) in
      let rec tick () =
        for c = 0 to n - 1 do
          let ds = Link.sent_packets links.(c) - last_sent.(c) in
          let dl = Link.lost_packets links.(c) - last_lost.(c) in
          last_sent.(c) <- Link.sent_packets links.(c);
          last_lost.(c) <- Link.lost_packets links.(c);
          if ds > 0 || dl > 0 then Health.observe h ~channel:c ~sent:ds ~lost:dl ()
        done;
        List.iter
          (function
            | Health.To_quarantine { channel; _ } ->
              Striper.suspend_channel striper channel
            | Health.To_probation { channel; from_quarantine = true } ->
              Striper.resume_channel striper channel
            | _ -> ())
          (Health.sample h ~now:(Sim.now sim));
        let live = ref 0 in
        for c = 0 to n - 1 do
          if Health.state h c <> Health.Quarantined then incr live
        done;
        if !live = 0 then QCheck.Test.fail_report "no live member mid-storm";
        let target =
          Array.mapi
            (fun c q ->
              let s = Health.quantum_scale h c in
              if s <= 0.0 || s >= 1.0 then q
              else max 1000 (int_of_float (float_of_int q *. s)))
            nominal
        in
        if target <> !staged && not (Resequencer.transition_pending reseq)
        then begin
          staged := target;
          Resequencer.retune reseq ~quanta:target;
          Striper.retune striper ~quanta:target ()
        end;
        if Sim.now sim < 3.9 then Sim.schedule_after sim ~delay:0.05 tick
      in
      Sim.schedule sim ~at:0.05 tick;
      let seq = ref 0 in
      let rec drive () =
        if Sim.now sim < 3.5 then begin
          Striper.push striper
            (Packet.data ~seq:!seq ~born:(Sim.now sim) ~size:800 ());
          incr seq;
          Sim.schedule_after sim ~delay:0.0008 drive
        end
      in
      drive ();
      Sim.run sim;
      if !delivered_late = 0 then
        QCheck.Test.fail_report "delivery never resumed after the storm";
      (* The engine walked the survivors home: nobody is still
         quarantined two seconds after the storm cleared. *)
      for c = 0 to n - 1 do
        if Health.state h c = Health.Quarantined then
          QCheck.Test.fail_reportf "channel %d still quarantined at the end" c
      done;
      true)

let suites =
  [
    ( "health",
      [
        Alcotest.test_case "escalation ladder" `Quick test_escalation_ladder;
        Alcotest.test_case "hysteresis band resets streaks" `Quick
          test_hysteresis_band_resets_streaks;
        Alcotest.test_case "recovery needs consecutive clean windows" `Quick
          test_recovery_needs_consecutive_clean_windows;
        Alcotest.test_case "backoff doubles and caps" `Quick
          test_backoff_doubles_and_caps;
        Alcotest.test_case "full recovery forgives flaps" `Quick
          test_full_recovery_forgives_flaps;
        Alcotest.test_case "quarantine_until" `Quick test_quarantine_until;
        Alcotest.test_case "last-live guard defers" `Quick
          test_last_live_guard_defers;
        Alcotest.test_case "add/remove/reset channel" `Quick
          test_add_remove_reset_channel;
        Alcotest.test_case "observe validation" `Quick test_observe_validation;
        Alcotest.test_case "parse full spec" `Quick test_parse_spec_full;
        Alcotest.test_case "parse defaults and validation" `Quick
          test_parse_spec_defaults_and_validation;
        Alcotest.test_case "spec errors carry positions" `Quick
          test_spec_errors_carry_positions;
        QCheck_alcotest.to_alcotest prop_guard_never_zeroes_membership;
        QCheck_alcotest.to_alcotest prop_full_gray_storm_recovers;
      ] );
  ]
