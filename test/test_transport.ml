(* Tests for the transport substrate: TCP-lite reliability, credit flow
   control invariants, and socket striping (§6.3). *)

open Stripe_netsim
open Stripe_transport
open Stripe_packet

(* Wire a Tcp_lite sender/receiver over a lossy link with a lossless ack
   path. *)
let tcp_pair sim ?loss ?(rate_bps = 8e6) ?(segment = 1000) () =
  let receiver = ref None in
  let data_link =
    Link.create sim ~rate_bps ~prop_delay:0.005 ?loss ~rng:(Rng.create 4)
      ~deliver:(fun (off, len) ->
        match !receiver with
        | Some r -> ignore (Tcp_lite.Receiver.rx r ~off ~len)
        | None -> ())
      ()
  in
  let sender = ref None in
  let ack_link =
    Link.create sim ~rate_bps:1e8 ~prop_delay:0.005
      ~deliver:(fun ack ->
        match !sender with
        | Some s -> Tcp_lite.Sender.on_ack s ack
        | None -> ())
      ()
  in
  let delivered = ref 0 in
  let rx =
    Tcp_lite.Receiver.create
      ~send_ack:(fun a -> ignore (Link.send ack_link ~size:40 a))
      ~deliver:(fun ~bytes -> delivered := !delivered + bytes)
      ()
  in
  receiver := Some rx;
  let tx =
    Tcp_lite.Sender.create sim ~window:32768 ~rto:0.1
      ~next_segment_size:(fun () -> segment)
      ~transmit:(fun ~off ~size -> ignore (Link.send data_link ~size (off, size)))
      ()
  in
  sender := Some tx;
  (tx, rx, delivered)

let test_tcp_lossless_stream () =
  let sim = Sim.create () in
  let tx, rx, delivered = tcp_pair sim () in
  Tcp_lite.Sender.start tx;
  Sim.run_until sim 1.0;
  Tcp_lite.Sender.shutdown tx;
  Sim.run sim;
  Alcotest.(check bool) "substantial in-order delivery" true (!delivered > 100_000);
  Alcotest.(check int) "no gaps at receiver" !delivered
    (Tcp_lite.Receiver.bytes_delivered rx);
  Alcotest.(check int) "no retransmissions without loss" 0
    (Tcp_lite.Sender.retransmissions tx);
  Alcotest.(check int) "acks advanced snd_una" (Tcp_lite.Receiver.rcv_nxt rx)
    (Tcp_lite.Sender.bytes_acked tx)

let test_tcp_recovers_from_loss () =
  let sim = Sim.create () in
  let tx, rx, _ = tcp_pair sim ~loss:(Loss.bernoulli ~p:0.05) () in
  Tcp_lite.Sender.start tx;
  Sim.run_until sim 2.0;
  Tcp_lite.Sender.stop tx;
  (* Let retransmissions finish delivering the in-flight stream. *)
  Sim.run_until sim 10.0;
  Tcp_lite.Sender.shutdown tx;
  Sim.run sim;
  Alcotest.(check bool) "timeouts occurred" true (Tcp_lite.Sender.timeouts tx > 0);
  Alcotest.(check bool) "retransmissions occurred" true
    (Tcp_lite.Sender.retransmissions tx > 0);
  Alcotest.(check int) "stream eventually complete and in order"
    (Tcp_lite.Sender.bytes_acked tx)
    (Tcp_lite.Receiver.bytes_delivered rx);
  Alcotest.(check bool) "everything offered was delivered" true
    (Tcp_lite.Sender.in_flight tx = 0)

let test_tcp_receiver_reorders () =
  let log = ref [] in
  let rx =
    Tcp_lite.Receiver.create
      ~send_ack:(fun a -> log := a :: !log)
      ~deliver:(fun ~bytes:_ -> ())
      ()
  in
  Alcotest.(check bool) "in order" true (Tcp_lite.Receiver.rx rx ~off:0 ~len:100 = `In_order);
  Alcotest.(check bool) "gap parks segment" true
    (Tcp_lite.Receiver.rx rx ~off:200 ~len:100 = `Out_of_order);
  Alcotest.(check int) "one parked" 1 (Tcp_lite.Receiver.reassembly_buffered rx);
  Alcotest.(check bool) "hole fill drains" true
    (Tcp_lite.Receiver.rx rx ~off:100 ~len:100 = `In_order);
  Alcotest.(check int) "contiguous prefix" 300 (Tcp_lite.Receiver.rcv_nxt rx);
  Alcotest.(check int) "buffer drained" 0 (Tcp_lite.Receiver.reassembly_buffered rx);
  Alcotest.(check bool) "retransmitted dup detected" true
    (Tcp_lite.Receiver.rx rx ~off:0 ~len:100 = `Duplicate);
  Alcotest.(check (list int)) "cumulative acks" [ 100; 100; 300; 300 ]
    (List.rev !log)

let test_tcp_window_bounds_inflight () =
  let sim = Sim.create () in
  let sent = ref 0 in
  let tx =
    Tcp_lite.Sender.create sim ~window:4000 ~rto:1.0
      ~next_segment_size:(fun () -> 1000)
      ~transmit:(fun ~off:_ ~size:_ -> incr sent)
      ()
  in
  Tcp_lite.Sender.start tx;
  Alcotest.(check int) "window fills then stalls" 4 !sent;
  Alcotest.(check int) "in flight equals window" 4000 (Tcp_lite.Sender.in_flight tx);
  Tcp_lite.Sender.on_ack tx 1000;
  Alcotest.(check int) "ack opens one slot" 5 !sent;
  Tcp_lite.Sender.shutdown tx;
  Sim.run sim

(* Pin the go-back-N retransmit discipline the FIFO outstanding queue
   must preserve: a timeout resends every unacknowledged segment oldest
   first, a cumulative ACK pops exactly the covered prefix, and the
   window refills behind it. *)
let test_tcp_retransmit_order () =
  let sim = Sim.create () in
  let sent = ref [] in
  let tx =
    Tcp_lite.Sender.create sim ~window:4000 ~rto:0.1
      ~next_segment_size:(fun () -> 1000)
      ~transmit:(fun ~off ~size:_ -> sent := off :: !sent)
      ()
  in
  Tcp_lite.Sender.start tx;
  Alcotest.(check (list int))
    "initial fill in offset order" [ 0; 1000; 2000; 3000 ]
    (List.rev !sent);
  (* Nothing is acked: the timer fires and resends the whole window,
     oldest first, then backs off and fires again. *)
  sent := [];
  Sim.run_until sim 0.15;
  Alcotest.(check (list int))
    "first timeout resends all outstanding oldest-first"
    [ 0; 1000; 2000; 3000 ]
    (List.rev !sent);
  Alcotest.(check int) "one timeout" 1 (Tcp_lite.Sender.timeouts tx);
  (* A partial cumulative ACK pops the covered prefix only; the next
     timeout resends the surviving tail, still oldest first, after the
     refill that the ACK's freed window admitted. *)
  Tcp_lite.Sender.on_ack tx 2000;
  sent := [];
  Sim.run_until sim 0.3;
  Alcotest.(check (list int))
    "post-ack timeout resends the uncovered tail oldest-first"
    [ 2000; 3000; 4000; 5000 ]
    (List.rev !sent);
  Alcotest.(check int) "retransmissions counted" 8
    (Tcp_lite.Sender.retransmissions tx);
  Tcp_lite.Sender.shutdown tx;
  Sim.run sim

let test_credit_sender_invariants () =
  let s = Credit.Sender.create ~n_channels:2 ~initial_limit:3 in
  Alcotest.(check bool) "initial credit available" true
    (Credit.Sender.can_send s ~channel:0);
  for _ = 1 to 3 do
    Credit.Sender.record_send s ~channel:0
  done;
  Alcotest.(check bool) "exhausted" false (Credit.Sender.can_send s ~channel:0);
  Alcotest.(check int) "stall counted" 1 (Credit.Sender.stalls s);
  Alcotest.check_raises "overrun rejected"
    (Invalid_argument "Credit.Sender.record_send: no credit") (fun () ->
      Credit.Sender.record_send s ~channel:0);
  Credit.Sender.update_limit s ~channel:0 ~limit:5;
  Alcotest.(check bool) "credit restored" true (Credit.Sender.can_send s ~channel:0);
  Credit.Sender.update_limit s ~channel:0 ~limit:4;
  Alcotest.(check int) "stale limit ignored" 5 (Credit.Sender.limit s ~channel:0)

let test_credit_loss_presumption () =
  let s = Credit.Sender.create ~n_channels:1 ~initial_limit:2 in
  Credit.Sender.record_send s ~channel:0;
  Credit.Sender.record_send s ~channel:0;
  Alcotest.(check bool) "stalled" false (Credit.Sender.can_send s ~channel:0);
  (* A packet died in flight: its credit is reclaimed. *)
  Credit.Sender.presume_lost s ~channel:0;
  Alcotest.(check bool) "allowance restores sending" true
    (Credit.Sender.can_send s ~channel:0);
  Alcotest.(check int) "effective limit grew" 3 (Credit.Sender.limit s ~channel:0);
  Alcotest.(check int) "presumption counted" 1 (Credit.Sender.presumed s ~channel:0);
  (* Later advertisements stack on top of the allowance. *)
  Credit.Sender.update_limit s ~channel:0 ~limit:5;
  Alcotest.(check int) "advertisement + allowance" 6
    (Credit.Sender.limit s ~channel:0)

let test_credit_receiver_invariants () =
  let r = Credit.Receiver.create ~n_channels:1 ~buffer:2 in
  Alcotest.(check int) "initial limit = buffer" 2
    (Credit.Receiver.current_limit r ~channel:0);
  Credit.Receiver.record_arrival r ~channel:0;
  Credit.Receiver.record_arrival r ~channel:0;
  Alcotest.(check bool) "buffer full" false (Credit.Receiver.accept r ~channel:0);
  Credit.Receiver.record_consume r ~channel:0;
  Alcotest.(check bool) "consume frees a slot" true
    (Credit.Receiver.accept r ~channel:0);
  Alcotest.(check int) "limit advances with consumption" 3
    (Credit.Receiver.current_limit r ~channel:0);
  Credit.Receiver.record_consume r ~channel:0;
  Alcotest.check_raises "consume from empty rejected"
    (Invalid_argument "Credit.Receiver.record_consume: buffer empty") (fun () ->
      Credit.Receiver.record_consume r ~channel:0)

let overload_scenario sim ~flow_control =
  (* Offered load far above the aggregate channel capacity; slow
     application-side consumption is modeled by the logical-reception
     blocking on the slower channel. *)
  let channels =
    [|
      Socket_stripe.spec ~rate_bps:2e6 ();
      Socket_stripe.spec ~rate_bps:2e6 ();
    |]
  in
  let sched = Stripe_core.Scheduler.srr ~quanta:[| 1000; 1000 |] () in
  let delivered = ref 0 in
  let sock =
    Socket_stripe.create sim ~channels ~scheduler:sched
      ~marker:(Stripe_core.Marker.make ~every_rounds:4 ())
      ~flow_control ~deliver:(fun _ -> incr delivered)
      ()
  in
  (* 2000 packets of 1000 B = 16 Mb offered within 0.5 s: 4x capacity. *)
  for seq = 0 to 1999 do
    Sim.schedule sim ~at:(float_of_int seq *. 0.00025) (fun () ->
        Socket_stripe.send sock (Packet.data ~seq ~size:1000 ()))
  done;
  Sim.run sim;
  (sock, delivered)

let test_socket_stripe_congestion_without_credits () =
  let sim = Sim.create () in
  (* Tiny receive buffers and no flow control: arrivals overrun them. *)
  let channels =
    [| Socket_stripe.spec ~rate_bps:8e6 (); Socket_stripe.spec ~rate_bps:1e6 () |]
  in
  let sched = Stripe_core.Scheduler.srr ~quanta:[| 1000; 1000 |] () in
  let delivered = ref 0 in
  let sock =
    Socket_stripe.create sim ~channels ~scheduler:sched
      ~flow_control:Socket_stripe.No_flow_control
      ~deliver:(fun _ -> incr delivered)
      ()
  in
  ignore sock;
  (* Equal quanta over unequal rates: the fast channel's arrivals pile up
     in its receive buffer while logical reception waits on the slow one.
     The default uncontrolled buffer is large, so instead check the
     high-water mark demonstrates unbounded growth pressure. *)
  for seq = 0 to 999 do
    Socket_stripe.send sock (Packet.data ~seq ~size:1000 ())
  done;
  Sim.run sim;
  let hw =
    Stripe_core.Resequencer.buffer_high_water_packets
      (Socket_stripe.resequencer sock)
  in
  Alcotest.(check bool)
    (Printf.sprintf "skewed rates pile up %d packets at the receiver" hw)
    true (hw > 200)

let test_socket_stripe_credits_bound_buffers () =
  let sim = Sim.create () in
  let sock, delivered =
    overload_scenario sim ~flow_control:(Socket_stripe.Credit_based { buffer = 16 })
  in
  Alcotest.(check int) "credits eliminate congestion loss" 0
    (Socket_stripe.congestion_drops sock);
  Alcotest.(check int) "no channel loss either" 0 (Socket_stripe.channel_losses sock);
  Alcotest.(check bool) "sender experienced back-pressure" true
    (Socket_stripe.sender_stalls sock > 0);
  Alcotest.(check bool) "everything eventually delivered" true
    (!delivered = 2000);
  let hw =
    Stripe_core.Resequencer.buffer_high_water_packets
      (Socket_stripe.resequencer sock)
  in
  Alcotest.(check bool)
    (Printf.sprintf "receive buffers bounded by credits (hw=%d)" hw)
    true
    (hw <= 2 * 16 + 2)

let test_socket_stripe_fifo_delivery () =
  let sim = Sim.create () in
  let sock, _ = overload_scenario sim ~flow_control:Socket_stripe.No_flow_control in
  ignore sock;
  Alcotest.(check int) "lossless socket striping delivers everything" 2000
    (Socket_stripe.delivered_packets sock)

let test_socket_stripe_requires_cfq () =
  let sim = Sim.create () in
  Alcotest.check_raises "non-causal scheduler rejected"
    (Invalid_argument
       "Socket_stripe.create: logical reception requires a CFQ scheduler")
    (fun () ->
      ignore
        (Socket_stripe.create sim
           ~channels:[| Socket_stripe.spec ~rate_bps:1e6 () |]
           ~scheduler:(Stripe_core.Scheduler.random_selection ~n:1 ~seed:0)
           ~deliver:ignore ()))

let suites =
  [
    ( "transport",
      [
        Alcotest.test_case "tcp lossless" `Quick test_tcp_lossless_stream;
        Alcotest.test_case "tcp loss recovery" `Quick test_tcp_recovers_from_loss;
        Alcotest.test_case "tcp receiver reorders" `Quick test_tcp_receiver_reorders;
        Alcotest.test_case "tcp window" `Quick test_tcp_window_bounds_inflight;
        Alcotest.test_case "tcp retransmit order" `Quick
          test_tcp_retransmit_order;
        Alcotest.test_case "credit sender" `Quick test_credit_sender_invariants;
        Alcotest.test_case "credit loss presumption" `Quick
          test_credit_loss_presumption;
        Alcotest.test_case "credit receiver" `Quick test_credit_receiver_invariants;
        Alcotest.test_case "congestion without credits" `Quick
          test_socket_stripe_congestion_without_credits;
        Alcotest.test_case "credits bound buffers" `Quick
          test_socket_stripe_credits_bound_buffers;
        Alcotest.test_case "socket stripe fifo" `Quick test_socket_stripe_fifo_delivery;
        Alcotest.test_case "socket stripe requires cfq" `Quick
          test_socket_stripe_requires_cfq;
      ] );
  ]
