(* Tests for logical reception and marker-based synchronization recovery:
   Theorem 4.1 (FIFO without loss), quasi-FIFO under loss, the Figures
   8-13 walkthrough as a golden test, and Theorem 5.1 (recovery) as a
   randomized property. *)

open Stripe_core
open Stripe_packet

(* A synchronous sender/receiver pair: the striper's emissions per channel
   are appended to per-channel wires; [deliver_in_order] feeds the
   receiver each wire's packets under an arbitrary interleaving that
   preserves per-channel FIFO (which is all the protocol assumes). *)
module Pair = struct
  type t = {
    striper : Striper.t;
    reseq : Resequencer.t;
    wires : Packet.t Queue.t array;
    delivered : int list ref;
  }

  let create ?marker ~quanta () =
    let n = Array.length quanta in
    let engine = Srr.create ~quanta () in
    let sched = Scheduler.of_deficit ~name:"SRR" engine in
    let wires = Array.init n (fun _ -> Queue.create ()) in
    let delivered = ref [] in
    let reseq =
      Resequencer.create ~deficit:(Deficit.clone_initial engine)
        ~deliver:(fun ~channel:_ p -> delivered := p.Packet.seq :: !delivered)
        ()
    in
    let striper =
      Striper.create ~scheduler:sched ?marker
        ~emit:(fun ~channel pkt -> Queue.add pkt wires.(channel))
        ()
    in
    { striper; reseq; wires; delivered }

  let send t sizes =
    List.iteri
      (fun seq size -> Striper.push t.striper (Packet.data ~seq ~size ()))
      sizes

  (* Deliver all wire contents with a per-step random choice of channel —
     any interleaving that keeps each channel FIFO. [drop] filters
     packets by global arrival index. *)
  let shuttle ?(drop = fun _ _ -> false) ~rng t =
    let idx = ref 0 in
    let nonempty () =
      Array.to_list t.wires
      |> List.mapi (fun i q -> (i, q))
      |> List.filter (fun (_, q) -> not (Queue.is_empty q))
    in
    let rec go () =
      match nonempty () with
      | [] -> ()
      | live ->
        let c, q = List.nth live (Stripe_netsim.Rng.int rng (List.length live)) in
        let pkt = Queue.pop q in
        incr idx;
        if not (drop !idx pkt) then Resequencer.receive t.reseq ~channel:c pkt;
        go ()
    in
    go ()

  let delivered t = List.rev !(t.delivered)
end

let test_theorem41_fifo_no_loss () =
  let rng = Stripe_netsim.Rng.create 1 in
  let pair = Pair.create ~quanta:[| 1500; 1500; 1500 |] () in
  let sizes = List.init 500 (fun _ -> 50 + Stripe_netsim.Rng.int rng 1450) in
  Pair.send pair sizes;
  Pair.shuttle ~rng pair;
  Alcotest.(check (list int)) "receiver output = sender input"
    (List.init 500 Fun.id) (Pair.delivered pair)

let prop_theorem41 =
  QCheck.Test.make
    ~name:"logical reception: FIFO for any sizes, quanta and interleaving"
    ~count:100
    QCheck.(triple (int_range 1 5) (int_range 0 10_000)
              (list_of_size (Gen.int_range 0 300) (int_range 1 1500)))
    (fun (n, seed, sizes) ->
      let rng = Stripe_netsim.Rng.create seed in
      let pair = Pair.create ~quanta:(Array.make n 1500) () in
      Pair.send pair sizes;
      Pair.shuttle ~rng pair;
      Pair.delivered pair = List.init (List.length sizes) Fun.id)

let test_blocking_on_expected_channel () =
  (* The §4 narrative: receiver must not deliver packet N+1 from a fast
     channel before packet 2 arrives on the slow one. *)
  let engine = Srr.create ~quanta:[| 100; 100 |] () in
  let delivered = ref [] in
  let reseq =
    Resequencer.create ~deficit:(Deficit.clone_initial engine)
      ~deliver:(fun ~channel:_ p -> delivered := p.Packet.seq :: !delivered)
      ()
  in
  let p seq = Packet.data ~seq ~size:100 () in
  (* Sender sends 0 -> ch0, 1 -> ch1, 2 -> ch0. Fast channel 0 delivers
     both its packets first. *)
  Resequencer.receive reseq ~channel:0 (p 0);
  Resequencer.receive reseq ~channel:0 (p 2);
  Alcotest.(check (list int)) "only packet 0 delivered" [ 0 ] (List.rev !delivered);
  Alcotest.(check (option int)) "blocked on channel 1" (Some 1)
    (Resequencer.blocked_on reseq);
  Alcotest.(check int) "packet 2 buffered" 1 (Resequencer.pending reseq);
  Resequencer.receive reseq ~channel:1 (p 1);
  Alcotest.(check (list int)) "unblocked in order" [ 0; 1; 2 ] (List.rev !delivered)

let test_quasi_fifo_without_markers () =
  (* Round robin example of §4: losing one packet permanently reorders
     when no resynchronization exists. *)
  let rng = Stripe_netsim.Rng.create 2 in
  let pair = Pair.create ~quanta:[| 100; 100 |] () in
  Pair.send pair (List.init 40 (fun _ -> 100));
  (* Drop the sender's 7th emission (a data packet, no markers here). *)
  Pair.shuttle ~rng ~drop:(fun idx _ -> idx = 7) pair;
  let out = Pair.delivered pair in
  let sorted = List.sort compare out in
  Alcotest.(check bool) "delivery is misordered after the loss" true (out <> sorted);
  Alcotest.(check int) "everything else still delivered once... eventually buffered"
    39
    (List.length out + Resequencer.pending pair.Pair.reseq)

(* Figures 8-13: two equal channels, equal-size packets, quantum = packet
   size (SRR reduces to RR). Packet 7 (1-indexed; seq 6) is lost on
   channel 0. A marker sent before round 7 (1-indexed) resynchronizes.
   Expected delivery (paper, 1-indexed): 1..6, 9, 8, 11, 10, 12, 13..18. *)
let test_figures_8_13_walkthrough () =
  let engine = Srr.create ~quanta:[| 100; 100 |] () in
  let sched = Scheduler.of_deficit ~name:"SRR" engine in
  let delivered = ref [] in
  let reseq =
    Resequencer.create ~deficit:(Deficit.clone_initial engine)
      ~deliver:(fun ~channel:_ p -> delivered := p.Packet.seq :: !delivered)
      ()
  in
  let arrivals = Queue.create () in
  let striper =
    Striper.create ~scheduler:sched
      ~marker:(Marker.make ~position:Marker.Round_end ~every_rounds:6 ())
      ~emit:(fun ~channel pkt -> Queue.add (channel, pkt) arrivals)
      ()
  in
  for seq = 0 to 17 do
    Striper.push striper (Packet.data ~seq ~size:100 ())
  done;
  (* Equal channels: arrival order equals send order; drop seq 6. *)
  Queue.iter
    (fun (channel, pkt) ->
      if pkt.Packet.seq <> 6 then Resequencer.receive reseq ~channel pkt)
    arrivals;
  Alcotest.(check (list int)) "paper's recovery sequence"
    [ 0; 1; 2; 3; 4; 5; 8; 7; 10; 9; 11; 12; 13; 14; 15; 16; 17 ]
    (List.rev !delivered);
  Alcotest.(check bool) "receiver skipped a channel visit" true
    (Resequencer.skips reseq >= 1);
  Alcotest.(check int) "nothing left buffered" 0 (Resequencer.pending reseq)

let run_recovery ~seed ~loss_p ~n_channels ~every_rounds =
  (* Lossy phase, then lossless phase: Theorem 5.1 says delivery must be
     FIFO from (shortly after) the moment losses stop. *)
  let rng = Stripe_netsim.Rng.create seed in
  let quanta = Array.make n_channels 1500 in
  let pair =
    Pair.create ~marker:(Marker.make ~every_rounds ()) ~quanta ()
  in
  let n_lossy = 600 and n_clean = 600 in
  let sizes =
    List.init (n_lossy + n_clean) (fun _ -> 50 + Stripe_netsim.Rng.int rng 1450)
  in
  Pair.send pair sizes;
  (* Drop only packets from the lossy prefix of the sender's stream. *)
  let drop _idx pkt =
    (not (Packet.is_marker pkt))
    && pkt.Packet.seq < n_lossy
    && Stripe_netsim.Rng.bernoulli rng ~p:loss_p
  in
  Pair.shuttle ~rng ~drop pair;
  let out = Pair.delivered pair in
  (* Theorem 5.1 promises FIFO once a marker has been delivered on every
     channel after errors stop; allow a recovery window of packets past
     the loss boundary before demanding order, but require the whole tail
     to be present. *)
  let slack = 200 in
  let tail = List.filter (fun seq -> seq >= n_lossy + slack) out in
  let in_order = List.sort compare tail = tail in
  let complete = List.length tail = n_clean - slack in
  (in_order, complete)

let test_recovery_moderate_loss () =
  let in_order, complete = run_recovery ~seed:5 ~loss_p:0.3 ~n_channels:2 ~every_rounds:4 in
  Alcotest.(check bool) "clean-phase tail complete" true complete;
  Alcotest.(check bool) "clean-phase tail in order" true in_order

let test_recovery_extreme_loss () =
  (* The paper measured recovery at loss rates up to 80 %. *)
  let in_order, complete = run_recovery ~seed:6 ~loss_p:0.8 ~n_channels:3 ~every_rounds:2 in
  Alcotest.(check bool) "survives 80% loss" true (in_order && complete)

let prop_recovery =
  QCheck.Test.make
    ~name:"marker recovery: FIFO restored after losses stop (any rate/shape)"
    ~count:40
    QCheck.(triple (int_range 0 1000) (float_range 0.05 0.8) (int_range 2 4))
    (fun (seed, loss_p, n_channels) ->
      let in_order, complete =
        run_recovery ~seed ~loss_p ~n_channels ~every_rounds:3
      in
      in_order && complete)

let test_marker_credit_callback () =
  let engine = Srr.create ~quanta:[| 100 |] () in
  let credits = ref [] in
  let reseq =
    Resequencer.create ~deficit:engine
      ~on_credit:(fun c k -> credits := (c, k) :: !credits)
      ~deliver:(fun ~channel:_ _ -> ())
      ()
  in
  Resequencer.receive reseq ~channel:0
    (Packet.marker ~credit:55 ~channel:0 ~round:0 ~dc:100 ~born:0.0 ());
  Alcotest.(check (list (pair int int))) "credit surfaced" [ (0, 55) ] !credits

let test_drain () =
  let engine = Srr.create ~quanta:[| 100; 100 |] () in
  let reseq =
    Resequencer.create ~deficit:(Deficit.clone_initial engine)
      ~deliver:(fun ~channel:_ _ -> ())
      ()
  in
  (* Two packets buffered on channel 1 while blocked on channel 0. *)
  Resequencer.receive reseq ~channel:1 (Packet.data ~seq:10 ~size:100 ());
  Resequencer.receive reseq ~channel:1 (Packet.data ~seq:11 ~size:100 ());
  Alcotest.(check int) "buffered" 2 (Resequencer.pending reseq);
  let drained = Resequencer.drain reseq in
  Alcotest.(check (list int)) "drain returns them in channel order" [ 10; 11 ]
    (List.map (fun p -> p.Packet.seq) drained);
  Alcotest.(check int) "empty after drain" 0 (Resequencer.pending reseq)

let test_drain_clears_blocking_state () =
  (* Regression: drain used to empty the buffers but leave [waiting] and
     the recorded marker stamps behind, so [blocked_on] reported a stale
     channel and a stale stamp could skip a channel forever. *)
  let engine = Srr.create ~quanta:[| 100; 100 |] () in
  let delivered = ref [] in
  let reseq =
    Resequencer.create ~deficit:(Deficit.clone_initial engine)
      ~deliver:(fun ~channel:_ p -> delivered := p.Packet.seq :: !delivered)
      ()
  in
  (* A future-round marker on channel 0 forces a skip; the scan moves on
     and blocks on channel 1, leaving marker state recorded for 0. *)
  Resequencer.receive reseq ~channel:0
    (Packet.marker ~channel:0 ~round:7 ~dc:100 ~born:0.0 ());
  Alcotest.(check (option int)) "blocked on ch1 after the skip" (Some 1)
    (Resequencer.blocked_on reseq);
  Resequencer.receive reseq ~channel:0 (Packet.data ~seq:20 ~size:100 ());
  Alcotest.(check int) "data buffered behind the block" 1
    (Resequencer.pending reseq);
  let drained = Resequencer.drain reseq in
  Alcotest.(check (list int)) "drain returns the buffered data" [ 20 ]
    (List.map (fun p -> p.Packet.seq) drained);
  Alcotest.(check (option int)) "drain clears the blocked channel" None
    (Resequencer.blocked_on reseq);
  (* The recorded marker stamp died with the drained stream: channel 0
     must be servable again, not skipped until round 7. *)
  Resequencer.receive reseq ~channel:1 (Packet.data ~seq:30 ~size:100 ());
  Resequencer.receive reseq ~channel:0 (Packet.data ~seq:31 ~size:100 ());
  Alcotest.(check (list int)) "both channels flow after drain" [ 30; 31 ]
    (List.rev !delivered)

let test_mid_visit_marker_correction () =
  (* A marker for the channel currently in service, stamped with the
     receiver's own round, must correct the DC mid-visit (the sender's
     authoritative value supersedes the simulated one) rather than be
     deferred or treated as a skip. *)
  let engine = Srr.create ~quanta:[| 200; 200 |] () in
  let delivered = ref [] in
  let reseq =
    Resequencer.create ~deficit:(Deficit.clone_initial engine)
      ~deliver:(fun ~channel:_ p -> delivered := p.Packet.seq :: !delivered)
      ()
  in
  let p seq = Packet.data ~seq ~size:100 () in
  (* One packet into the round-0 visit of channel 0: DC simulated at 100,
     blocked mid-visit awaiting more channel-0 data. *)
  Resequencer.receive reseq ~channel:0 (p 0);
  Alcotest.(check (option int)) "blocked mid-visit on ch0" (Some 0)
    (Resequencer.blocked_on reseq);
  (* Same-round marker corrects the DC upward: the sender actually has
     250 bytes of service left for this visit. *)
  Resequencer.receive reseq ~channel:0
    (Packet.marker ~channel:0 ~round:0 ~dc:250 ~born:0.0 ());
  Alcotest.(check int) "correction is not a skip" 0 (Resequencer.skips reseq);
  Alcotest.(check (option int)) "still awaiting ch0 data" (Some 0)
    (Resequencer.blocked_on reseq);
  (* With the corrected DC of 250, three more 100-byte packets belong to
     this visit (250 -> 150 -> 50 -> -50); the simulated DC of 100 would
     have moved on after one. *)
  Resequencer.receive reseq ~channel:0 (p 1);
  Resequencer.receive reseq ~channel:0 (p 2);
  Resequencer.receive reseq ~channel:0 (p 3);
  Resequencer.receive reseq ~channel:1 (p 4);
  Alcotest.(check (list int)) "visit served to the corrected DC"
    [ 0; 1; 2; 3; 4 ]
    (List.rev !delivered);
  Alcotest.(check int) "nothing stranded in the buffers" 0
    (Resequencer.pending reseq)

let test_bad_channel_rejected () =
  let engine = Srr.create ~quanta:[| 100 |] () in
  let reseq =
    Resequencer.create ~deficit:engine ~deliver:(fun ~channel:_ _ -> ()) ()
  in
  Alcotest.check_raises "bad channel"
    (Invalid_argument "Resequencer.receive: bad channel") (fun () ->
      Resequencer.receive reseq ~channel:5 (Packet.data ~seq:0 ~size:10 ()))

let test_buffer_high_water () =
  let engine = Srr.create ~quanta:[| 100; 100 |] () in
  let reseq =
    Resequencer.create ~deficit:(Deficit.clone_initial engine)
      ~deliver:(fun ~channel:_ _ -> ())
      ()
  in
  for i = 0 to 9 do
    Resequencer.receive reseq ~channel:1 (Packet.data ~seq:(i * 2 + 1) ~size:100 ())
  done;
  Alcotest.(check bool) "high water reflects skew run-ahead" true
    (Resequencer.buffer_high_water_packets reseq >= 10)

let suites =
  [
    ( "resequencer",
      [
        Alcotest.test_case "theorem 4.1 FIFO" `Quick test_theorem41_fifo_no_loss;
        Alcotest.test_case "blocking semantics" `Quick test_blocking_on_expected_channel;
        Alcotest.test_case "quasi-FIFO without markers" `Quick
          test_quasi_fifo_without_markers;
        Alcotest.test_case "figures 8-13 walkthrough" `Quick
          test_figures_8_13_walkthrough;
        Alcotest.test_case "recovery at 30% loss" `Quick test_recovery_moderate_loss;
        Alcotest.test_case "recovery at 80% loss" `Quick test_recovery_extreme_loss;
        Alcotest.test_case "marker credit callback" `Quick test_marker_credit_callback;
        Alcotest.test_case "drain" `Quick test_drain;
        Alcotest.test_case "drain clears blocking state" `Quick
          test_drain_clears_blocking_state;
        Alcotest.test_case "mid-visit marker correction" `Quick
          test_mid_visit_marker_correction;
        Alcotest.test_case "bad channel" `Quick test_bad_channel_rejected;
        Alcotest.test_case "buffer high water" `Quick test_buffer_high_water;
        QCheck_alcotest.to_alcotest prop_theorem41;
        QCheck_alcotest.to_alcotest prop_recovery;
      ] );
  ]
