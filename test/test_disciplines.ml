(* Per-discipline end-to-end coverage (PROTOCOL.md §14): seeded runs
   are byte-identical on the heap and calendar engines for every
   discipline, the new disciplines' fairness behavior pins to the
   analytic values, and the engine-less schedulers keep a sender and a
   seed-sharing replica aligned across suspensions and §5 resets. *)

open Stripe_netsim
open Stripe_packet
open Stripe_core
module Bundle_pool = Stripe_fleet.Bundle_pool

let n = 3
let rates = [| 10e6; 10e6; 10e6 |]
let delays = [| 0.008; 0.001; 0.004 |]
let seed = 0x5eed
let run_until = 0.4
let max_packet = 1500

type disc = Srr_d | Sprinklers_d | Rfq_d | Load_aware_d

let all_discs =
  [
    ("srr", Srr_d); ("sprinklers", Sprinklers_d); ("rfq", Rfq_d);
    ("load-aware", Load_aware_d);
  ]

(* A miniature of the bench rig: 3 delay-skewed links, the striper over
   the discipline under test, a resequencer for the engine-backed
   disciplines, arrival-order delivery for the engine-less ones, and a
   mid-run carrier failover so the §5 barrier (and, for Sprinklers, the
   permutation reseed) is part of what determinism is asserted over.
   Returns the full delivery trace — time, sequence, channel — plus the
   delivered byte count: "byte-identical" means this whole trace. *)
let run_e2e ~engine disc =
  let sim = Sim.create ~engine () in
  let trace = ref [] in
  let bytes = ref 0 in
  let engine_opt =
    match disc with
    | Srr_d ->
      Some (Srr.for_rates ~max_packet ~rates_bps:rates ~quantum_unit:1500 ())
    | Sprinklers_d ->
      Some
        (Sprinklers.for_rates ~max_packet ~seed ~rates_bps:rates
           ~quantum_unit:1500 ())
    | Rfq_d | Load_aware_d -> None
  in
  let la_debt = ref (fun (_ : int) -> 0.0) in
  let scheduler =
    match engine_opt, disc with
    | Some e, _ -> Scheduler.of_deficit ~name:"disc" e
    | None, Rfq_d -> Scheduler.seeded_rfq ~n ~seed
    | None, _ ->
      Scheduler.load_aware ~weights:rates ~debt:(fun c -> !la_debt c) ~n ()
  in
  let deliver ~channel (pkt : Packet.t) =
    trace := (Sim.now sim, pkt.Packet.seq, channel) :: !trace;
    bytes := !bytes + pkt.Packet.size
  in
  let reseq =
    match engine_opt with
    | Some e ->
      Some
        (Resequencer.create ~deficit:(Deficit.clone_initial e)
           ~now:(fun () -> Sim.now sim)
           ~deliver ())
    | None -> None
  in
  let ingest c pkt =
    match reseq with
    | Some r -> Resequencer.receive r ~channel:c pkt
    | None -> if not (Packet.is_marker pkt) then deliver ~channel:c pkt
  in
  let master = Rng.create 4242 in
  let links =
    Array.init n (fun i ->
        Link.create sim
          ~name:(Printf.sprintf "ch%d" i)
          ~rate_bps:rates.(i) ~prop_delay:delays.(i) ~rng:(Rng.split master)
          ~deliver:(fun pkt -> ingest i pkt)
          ())
  in
  la_debt := (fun c -> float_of_int (Link.queue_bytes links.(c)));
  let striper =
    Striper.create ~scheduler
      ?marker:
        (match engine_opt with
        | Some _ -> Some (Marker.make ~every_rounds:4 ())
        | None -> None)
      ~now:(fun () -> Sim.now sim)
      ~emit:(fun ~channel pkt ->
        ignore (Link.send links.(channel) ~size:pkt.Packet.size pkt))
      ()
  in
  Sim.schedule sim ~at:0.1 (fun () ->
      Link.set_up links.(2) false;
      Striper.suspend_channel striper 2);
  Sim.schedule sim ~at:0.25 (fun () ->
      Link.set_up links.(2) true;
      Striper.resume_channel striper 2);
  let seq = ref 0 in
  let rec burst () =
    if Sim.now sim < run_until then begin
      for _ = 1 to 6 do
        Striper.push striper
          (Packet.data ~seq:!seq ~born:(Sim.now sim) ~size:1000 ());
        incr seq
      done;
      Sim.schedule_after sim ~delay:0.012 burst
    end
  in
  burst ();
  Sim.run sim;
  (List.rev !trace, !bytes)

let test_engines_agree (slug, disc) () =
  let heap, hb = run_e2e ~engine:Sim.Heap disc in
  let cal, cb = run_e2e ~engine:Sim.Calendar disc in
  Alcotest.(check int) (slug ^ ": delivered bytes agree") hb cb;
  Alcotest.(check int)
    (slug ^ ": delivery count agrees")
    (List.length heap) (List.length cal);
  List.iter2
    (fun (th, sh, ch) (tc, sc, cc) ->
      Alcotest.(check (float 0.0)) (slug ^ ": delivery time") th tc;
      Alcotest.(check int) (slug ^ ": delivery seq") sh sc;
      Alcotest.(check int) (slug ^ ": delivery channel") ch cc)
    heap cal;
  Alcotest.(check bool) (slug ^ ": something was delivered") true (hb > 0)

let test_seeded_rerun_identical (slug, disc) () =
  let a, ab = run_e2e ~engine:Sim.Heap disc in
  let b, bb = run_e2e ~engine:Sim.Heap disc in
  Alcotest.(check bool) (slug ^ ": reruns byte-identical") true
    (ab = bb && a = b)

(* Sprinklers fairness pins. The bound is analytic: SRR's
   Max + 2*Quantum over the stripe-scaled quanta, i.e. exactly
   2*(stripe_scale - 1)*Quantum wider than SRR's on the same rates. *)
let test_sprinklers_fairness_bound_pin () =
  let spr =
    Sprinklers.for_rates ~max_packet ~seed ~rates_bps:rates ~quantum_unit:1500
      ()
  in
  let srr = Srr.for_rates ~max_packet ~rates_bps:rates ~quantum_unit:1500 () in
  (* 3 x 10 Mbps, unit 1500: SRR quanta 1500 each; Sprinklers scales by
     default_stripe_scale = 4 -> 6000 each. *)
  Alcotest.(check int) "srr bound = Max + 2*1500" 4500
    (Srr.fairness_bound srr);
  Alcotest.(check int) "sprinklers bound = Max + 2*6000" 13500
    (Sprinklers.fairness_bound spr);
  Alcotest.(check int) "widened by 2*(scale-1)*quantum"
    (Srr.fairness_bound srr + (2 * (Sprinklers.default_stripe_scale - 1) * 1500))
    (Sprinklers.fairness_bound spr)

(* And empirical: a backlogged Sprinklers run must keep every channel's
   byte total within the bound of its proportional share, whatever
   orders the permutations deal (Thm 3.2 holds verbatim because every
   round still visits every channel exactly once). *)
let test_sprinklers_fairness_empirical () =
  let spr =
    Sprinklers.for_rates ~max_packet ~seed ~rates_bps:rates ~quantum_unit:1500
      ()
  in
  let bound = Sprinklers.fairness_bound spr in
  let cfq = Cfq.of_deficit ~name:"Sprinklers" (fun () -> spr) in
  let inst = cfq.Cfq.fresh () in
  let rng = Rng.create 99 in
  let per_chan = Array.make n 0 in
  let total = ref 0 in
  for _ = 1 to 3000 do
    let size = 64 + Rng.int rng (max_packet - 63) in
    let c = inst.Cfq.select () in
    inst.Cfq.update ~size;
    per_chan.(c) <- per_chan.(c) + size;
    total := !total + size
  done;
  let share = float_of_int !total /. float_of_int n in
  Array.iteri
    (fun c bytes ->
      let dev = Float.abs (float_of_int bytes -. share) in
      if dev > float_of_int bound then
        Alcotest.failf "channel %d deviates %.0f B > bound %d B" c dev bound)
    per_chan

(* Load-aware fairness pin: with equal weights, pure min-load selection
   keeps the per-channel assigned totals within one maximum packet of
   each other at every prefix (assign-to-argmin can never push the
   chosen channel more than Max past the current minimum). *)
let test_load_aware_spread_pin () =
  let cfq = Cfq.load_aware ~name:"LA" ~n () in
  let inst = cfq.Cfq.fresh () in
  let rng = Rng.create 7 in
  let per_chan = Array.make n 0 in
  for _ = 1 to 3000 do
    let size = 64 + Rng.int rng (max_packet - 63) in
    let c = inst.Cfq.select () in
    inst.Cfq.update ~size;
    per_chan.(c) <- per_chan.(c) + size;
    let mx = Array.fold_left max per_chan.(0) per_chan in
    let mn = Array.fold_left min per_chan.(0) per_chan in
    if mx - mn > max_packet then
      Alcotest.failf "spread %d B exceeds one max packet" (mx - mn)
  done

(* Live migration: swapping the weight vector of a load-aware scheduler
   redirects selection from the next packet, no rebuild. *)
let test_load_aware_set_weights_migrates () =
  let debt = [| 100.0; 100.0; 100.0 |] in
  let s = Scheduler.load_aware ~debt:(fun c -> debt.(c)) ~n () in
  Alcotest.(check bool) "supports weights" true (Scheduler.supports_weights s);
  Alcotest.(check bool) "no deficit engine" true (Scheduler.deficit s = None);
  let pkt = Packet.data ~seq:0 ~born:0.0 ~size:100 () in
  (* Equal debt, equal weights: ties to the lowest index. *)
  Alcotest.(check int) "tie to channel 0" 0 (Scheduler.choose s pkt);
  Scheduler.account s pkt 0;
  (* Retune: channel 2 is now 10x the capacity, so the same debt is the
     least normalized load there. *)
  Scheduler.set_weights s [| 1.0; 1.0; 10.0 |];
  Alcotest.(check int) "retuned weights migrate selection" 2
    (Scheduler.choose s pkt);
  Alcotest.(check_raises) "width mismatch rejected"
    (Invalid_argument "Scheduler.set_weights: weight vector width mismatch")
    (fun () -> Scheduler.set_weights s [| 1.0 |]);
  Alcotest.(check_raises) "non-positive weight rejected"
    (Invalid_argument "Scheduler.set_weights: weights must be positive")
    (fun () -> Scheduler.set_weights s [| 1.0; 0.0; 1.0 |]);
  let srr = Scheduler.srr ~quanta:[| 1500; 1500 |] () in
  Alcotest.(check bool) "srr has no weights" false
    (Scheduler.supports_weights srr)

(* The all-but-one-suspended degenerate membership for the seeded RFQ
   scheduler: a receiver replica that shares the seed and learns the
   suspension set (via the §5 barrier) must keep producing the sender's
   exact choices — including the deterministic remap to the one live
   channel — and stay aligned through resume and reset. *)
let test_rfq_suspension_replay_aligned () =
  let pkt = Packet.data ~seq:0 ~born:0.0 ~size:100 () in
  let mk () = Scheduler.seeded_rfq ~n ~seed:31 in
  let sender = ref (mk ()) and replica = ref (mk ()) in
  let both f = f !sender; f !replica in
  let step label =
    let cs = Scheduler.choose !sender pkt in
    let cr = Scheduler.choose !replica pkt in
    Alcotest.(check int) label cs cr;
    Scheduler.account !sender pkt cs;
    Scheduler.account !replica pkt cr;
    cs
  in
  for _ = 1 to 20 do ignore (step "pre-suspension aligned") done;
  (* All but channel 2 suspended: every choice must remap to 2, on both
     sides, consuming draws in lockstep. *)
  both (fun s -> Scheduler.suspend_channel s 0);
  both (fun s -> Scheduler.suspend_channel s 1);
  for _ = 1 to 20 do
    Alcotest.(check int) "remap to the one live channel" 2
      (step "suspended aligned")
  done;
  both (fun s -> Scheduler.resume_channel s 0);
  both (fun s -> Scheduler.resume_channel s 1);
  for _ = 1 to 20 do ignore (step "post-resume aligned") done;
  (* §5 reset: both sides restart from s0 (a fresh scheduler from the
     same construction), with the suspension set re-learned from the
     barrier. *)
  sender := Scheduler.reset !sender;
  replica := Scheduler.reset !replica;
  both (fun s -> Scheduler.suspend_channel s 1);
  for _ = 1 to 20 do
    let c = step "post-reset aligned" in
    Alcotest.(check bool) "suspended channel never chosen" true (c <> 1)
  done

(* Fleet-level smoke for the two new disciplines: a Bundle_pool run
   under each discipline delivers the traffic, Sprinklers through the
   resequencer (FIFO), Load_aware in arrival order with markers
   discarded. *)
let fleet_config discipline =
  {
    Bundle_pool.rate_bps = rates;
    prop_delay = delays;
    quanta = Srr.quanta_for_rates ~rates_bps:rates ~quantum_unit:1500 ();
    marker_every = 4;
    guard = false;
    discipline;
  }

let test_fleet_disciplines () =
  List.iter
    (fun disc ->
      let sim = Sim.create () in
      let pool =
        Bundle_pool.create ~stamp_seq:true ~sim
          (fleet_config disc)
      in
      let b0 = Bundle_pool.acquire pool in
      let b1 = Bundle_pool.acquire pool in
      for i = 0 to 199 do
        Bundle_pool.push pool b0 ~size:(200 + (97 * i mod 1300));
        Bundle_pool.push pool b1 ~size:1000
      done;
      Sim.run sim;
      List.iter
        (fun b ->
          Alcotest.(check int) "all pushed packets delivered"
            (Bundle_pool.pushed_packets pool b)
            (Bundle_pool.delivered_packets pool b);
          Alcotest.(check int) "no FIFO violations" 0
            (Bundle_pool.fifo_violations pool b))
        [ b0; b1 ])
    [
      Bundle_pool.Sprinklers 0x5eed; Bundle_pool.Load_aware; Bundle_pool.Srr;
    ]

let suites =
  [
    ( "disciplines",
      List.map
        (fun d ->
          Alcotest.test_case
            (fst d ^ ": heap/calendar byte-identical")
            `Quick (test_engines_agree d))
        all_discs
      @ List.map
          (fun d ->
            Alcotest.test_case
              (fst d ^ ": seeded rerun identical")
              `Quick (test_seeded_rerun_identical d))
          all_discs
      @ [
          Alcotest.test_case "sprinklers fairness bound pin" `Quick
            test_sprinklers_fairness_bound_pin;
          Alcotest.test_case "sprinklers empirical fairness" `Quick
            test_sprinklers_fairness_empirical;
          Alcotest.test_case "load-aware spread pin" `Quick
            test_load_aware_spread_pin;
          Alcotest.test_case "load-aware set_weights migrates" `Quick
            test_load_aware_set_weights_migrates;
          Alcotest.test_case "rfq suspension replay aligned" `Quick
            test_rfq_suspension_replay_aligned;
          Alcotest.test_case "fleet disciplines deliver" `Quick
            test_fleet_disciplines;
        ] );
  ]
