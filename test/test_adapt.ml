(* Tests for adaptive striping (PROTOCOL.md §11): live quantum
   retuning with DC rescale, the goodput probe and its retune planner,
   hot bundle add/remove riding the §5 reset barrier, and the
   scheduler/watchdog bugfixes that shipped with the feature. *)

open Stripe_core
open Stripe_packet

(* ------------------------------------------------------------------ *)
(* Deficit.retune semantics                                            *)
(* ------------------------------------------------------------------ *)

let test_retune_at_boundary_immediate () =
  let d = Srr.create ~quanta:[| 500; 500 |] () in
  let events = ref [] in
  Deficit.set_hook d (Some (fun e -> events := e :: !events));
  (* A fresh engine is at a round boundary: the swap is immediate. *)
  Deficit.retune d ~quanta:[| 1000; 500 |];
  Alcotest.(check (array int)) "quanta swapped" [| 1000; 500 |]
    (Deficit.quanta d);
  Alcotest.(check bool) "nothing staged" true (Deficit.pending_retune d = None);
  match !events with
  | [ Deficit.Retune { round; old_quanta; new_quanta } ] ->
    Alcotest.(check int) "effective round" 0 round;
    Alcotest.(check (array int)) "old vector" [| 500; 500 |] old_quanta;
    Alcotest.(check (array int)) "new vector" [| 1000; 500 |] new_quanta
  | _ -> Alcotest.fail "expected exactly one Retune event"

let test_retune_mid_round_staged_and_rescaled () =
  let d = Srr.create ~quanta:[| 500; 500 |] () in
  ignore (Deficit.select d);
  Deficit.consume d ~size:900;
  (* ch0 overdrew to -400; pointer is on ch1 — mid-round. *)
  Deficit.retune d ~quanta:[| 800; 800 |];
  Alcotest.(check (array int)) "old vector still serving" [| 500; 500 |]
    (Deficit.quanta d);
  Alcotest.(check bool) "vector staged" true
    (Deficit.pending_retune d = Some [| 800; 800 |]);
  (* Finish the round: adoption happens at the pointer wrap. *)
  ignore (Deficit.select d);
  Deficit.consume d ~size:500;
  Alcotest.(check (array int)) "adopted at the round boundary" [| 800; 800 |]
    (Deficit.quanta d);
  Alcotest.(check bool) "staged slot cleared" true
    (Deficit.pending_retune d = None);
  (* The carried deficit keeps its fraction of the per-round grant:
     -400 * 800/500 = -640. *)
  Alcotest.(check int) "DC rescaled proportionally" (-640) (Deficit.dc d 0)

let test_retune_validates () =
  let d = Srr.create ~max_packet:1500 ~quanta:[| 1500; 1500 |] () in
  Alcotest.check_raises "width mismatch"
    (Invalid_argument
       "Deficit.retune: quanta length must match n_channels (resize with \
        add_channel/remove_channel)") (fun () ->
      Deficit.retune d ~quanta:[| 1500 |]);
  Alcotest.check_raises "quantum below max packet"
    (Invalid_argument
       "Deficit.retune: quantum 1000 below max packet size 1500 violates the \
        marker-recovery precondition (Quantum_i >= Max)") (fun () ->
      Deficit.retune d ~quanta:[| 1000; 1500 |])

(* Regression (this PR): resuming a suspended channel must clear its
   frozen DC — replaying a stale deficit would over- or under-serve the
   channel by up to a quantum against channels that kept running. *)
let test_resume_clears_stale_deficit () =
  let d = Srr.create ~quanta:[| 500; 500 |] () in
  ignore (Deficit.select d);
  Deficit.consume d ~size:900;
  Alcotest.(check int) "overdraw recorded" (-400) (Deficit.dc d 0);
  Deficit.suspend d 0;
  Alcotest.(check int) "DC frozen while suspended" (-400) (Deficit.dc d 0);
  Deficit.resume d 0;
  Alcotest.(check int) "resume re-enters with a clean slate" 0 (Deficit.dc d 0);
  (* Resuming a channel that was never suspended must not touch it. *)
  ignore (Deficit.select d);
  Deficit.consume d ~size:600;
  Alcotest.(check int) "ch1 overdrew" (-100) (Deficit.dc d 1);
  Deficit.resume d 1;
  Alcotest.(check int) "no-op resume keeps the DC" (-100) (Deficit.dc d 1)

(* The ISSUE's acceptance property: after a retune is adopted, the
   retuned engine's per-channel service tracks an oracle that ran with
   the new quanta from the start, within the Thm 3.2 allowance. *)
let prop_retune_matches_fresh_oracle =
  let gen =
    QCheck.Gen.(
      int_range 2 4 >>= fun n ->
      let quanta_gen = array_size (return n) (int_range 1500 4500) in
      quanta_gen >>= fun oldq ->
      quanta_gen >>= fun newq ->
      list_size (int_range 0 60) (int_range 1 1500) >>= fun prefix ->
      list_size (int_range 50 300) (int_range 1 1500) >>= fun suffix ->
      return (oldq, newq, prefix, suffix))
  in
  let print (oldq, newq, prefix, suffix) =
    Printf.sprintf "old=[%s] new=[%s] prefix=%d pkts suffix=%d pkts"
      (String.concat ";" (Array.to_list (Array.map string_of_int oldq)))
      (String.concat ";" (Array.to_list (Array.map string_of_int newq)))
      (List.length prefix) (List.length suffix)
  in
  QCheck.Test.make ~count:150
    ~name:"adapt: retuned engine within Max + 2*Quantum of a fresh oracle"
    (QCheck.make ~print gen)
    (fun (oldq, newq, prefix, suffix) ->
      let max_pkt = 1500 in
      let d = Srr.create ~max_packet:max_pkt ~quanta:oldq () in
      List.iter
        (fun size ->
          ignore (Deficit.select d);
          Deficit.consume d ~size)
        prefix;
      Deficit.retune d ~quanta:newq;
      (* Serve filler until the staged vector is adopted at the wrap. *)
      let filler = ref 0 in
      while Deficit.pending_retune d <> None do
        ignore (Deficit.select d);
        Deficit.consume d ~size:750;
        incr filler;
        if !filler > 10_000 then failwith "retune never adopted"
      done;
      (* Identical tail through the retuned engine and a fresh oracle. *)
      let oracle = Srr.create ~max_packet:max_pkt ~quanta:newq () in
      let n = Array.length oldq in
      let served_d = Array.make n 0 and served_o = Array.make n 0 in
      List.iter
        (fun size ->
          let c = Deficit.select d in
          Deficit.consume d ~size;
          served_d.(c) <- served_d.(c) + size;
          let c' = Deficit.select oracle in
          Deficit.consume oracle ~size;
          served_o.(c') <- served_o.(c') + size)
        suffix;
      let ok = ref true in
      for c = 0 to n - 1 do
        if abs (served_d.(c) - served_o.(c)) > max_pkt + (2 * newq.(c)) then
          ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Rate_probe: estimation and the retune planner                       *)
(* ------------------------------------------------------------------ *)

let test_rate_probe_ewma () =
  let p = Rate_probe.create ~n:2 () in
  (* The first sample only anchors the window. *)
  Rate_probe.sample p ~now:0.0;
  Alcotest.(check int) "anchor forms no sample" 0 (Rate_probe.samples p);
  Rate_probe.observe p ~channel:0 ~bytes:1250;
  Rate_probe.sample p ~now:1.0;
  Alcotest.(check (float 1e-6)) "first window seeds the estimate" 10_000.0
    (Rate_probe.rate_bps p 0);
  Rate_probe.observe p ~channel:0 ~bytes:2500;
  Rate_probe.sample p ~now:2.0;
  (* Default alpha 0.3: 0.7*10000 + 0.3*20000. *)
  Alcotest.(check (float 1e-6)) "EWMA fold" 13_000.0 (Rate_probe.rate_bps p 0);
  Alcotest.(check int) "two samples" 2 (Rate_probe.samples p);
  Alcotest.(check (float 1e-6)) "silent channel has no estimate" 0.0
    (Rate_probe.rate_bps p 1)

let test_rate_probe_resize () =
  let p = Rate_probe.create ~n:2 () in
  Rate_probe.sample p ~now:0.0;
  Rate_probe.observe p ~channel:0 ~bytes:1000;
  Rate_probe.observe p ~channel:1 ~bytes:2000;
  Rate_probe.sample p ~now:1.0;
  Alcotest.(check int) "new channel index" 2 (Rate_probe.add_channel p);
  Alcotest.(check int) "widened" 3 (Rate_probe.n_channels p);
  Alcotest.(check (float 1e-6)) "newcomer starts unseeded" 0.0
    (Rate_probe.rate_bps p 2);
  Rate_probe.remove_channel p 0;
  Alcotest.(check int) "narrowed" 2 (Rate_probe.n_channels p);
  Alcotest.(check (float 1e-6)) "survivor estimate shifted down" 16_000.0
    (Rate_probe.rate_bps p 0)

let test_rate_probe_reset_channel_forgets_outage () =
  (* A channel estimated at 10 Mbps goes silent: every outage window
     folds a zero instantaneous rate, so the EWMA decays geometrically
     but never clears — after three silent windows it still reads
     ~3.4 Mbps of capacity that no longer exists. *)
  let p = Rate_probe.create ~n:2 () in
  Rate_probe.sample p ~now:0.0;
  Rate_probe.observe p ~channel:0 ~bytes:1_250_000;
  Rate_probe.observe p ~channel:1 ~bytes:1_250_000;
  Rate_probe.sample p ~now:1.0;
  Alcotest.(check (float 1e-6)) "seeded at 10 Mbps" 10e6 (Rate_probe.rate_bps p 0);
  for w = 2 to 4 do
    Rate_probe.observe p ~channel:1 ~bytes:1_250_000;
    Rate_probe.sample p ~now:(float_of_int w)
  done;
  let stale = Rate_probe.rate_bps p 0 in
  Alcotest.(check bool) "outage decays but never clears" true
    (stale > 3e6 && stale < 10e6);
  (* Resume-time reset: the channel returns to the unseeded state, so
     [plan] withholds retunes until a fresh measurement exists... *)
  Rate_probe.reset_channel p 0;
  Alcotest.(check (float 1e-6)) "reset forgets the stale blend" 0.0
    (Rate_probe.rate_bps p 0);
  Alcotest.(check bool) "no retune plan from an unseeded channel" true
    (Rate_probe.plan ~max_packet:1500 ~rates_bps:(Rate_probe.rates p)
       ~quanta:[| 1500; 1500 |] ~quantum_unit:1500 ()
    = None);
  (* ...and the first post-resume window seeds the estimate directly —
     no blend with pre-outage capacity. The resumed link came back at
     2 Mbps; without the reset the EWMA would report
     0.7*stale + 0.3*2e6 > 4 Mbps. *)
  Rate_probe.observe p ~channel:0 ~bytes:250_000;
  Rate_probe.observe p ~channel:1 ~bytes:1_250_000;
  Rate_probe.sample p ~now:5.0;
  Alcotest.(check (float 1e-6)) "first fresh window seeds directly" 2e6
    (Rate_probe.rate_bps p 0);
  (* The untouched channel's estimate never flinched. *)
  Alcotest.(check (float 1e-6)) "peer estimate unaffected" 10e6
    (Rate_probe.rate_bps p 1)

let test_plan_retunes_outside_band () =
  (* One channel halved: the target vector is 2:1 and well outside the
     25% band of the current uniform quanta. *)
  match
    Rate_probe.plan ~max_packet:1500 ~rates_bps:[| 5e6; 10e6 |]
      ~quanta:[| 1500; 1500 |] ~quantum_unit:1500 ()
  with
  | Some q ->
    Alcotest.(check (array int)) "proportional target" [| 1500; 3000 |] q
  | None -> Alcotest.fail "expected a retune plan"

let test_plan_holds_within_band () =
  (* An 8% skew stays inside the default 25% hysteresis band. *)
  Alcotest.(check bool) "within band: hold" true
    (Rate_probe.plan ~max_packet:1500 ~rates_bps:[| 10e6; 10.8e6 |]
       ~quanta:[| 1500; 1500 |] ~quantum_unit:1500 ()
    = None);
  (* The same skew trips a tighter band. *)
  Alcotest.(check bool) "tight band: retune" true
    (Rate_probe.plan ~max_packet:1500 ~band:0.05 ~rates_bps:[| 10e6; 10.8e6 |]
       ~quanta:[| 1500; 1500 |] ~quantum_unit:1500 ()
    <> None)

let test_plan_needs_full_estimates () =
  Alcotest.(check bool) "missing estimate: no decision" true
    (Rate_probe.plan ~max_packet:1500 ~rates_bps:[| 0.0; 10e6 |]
       ~quanta:[| 1500; 1500 |] ~quantum_unit:1500 ()
    = None)

let test_plan_clamps () =
  (* An extreme skew is clamped by max_quantum, and a small quantum_unit
     is scaled back up to the Thm 5.1 floor by max_packet. *)
  (match
     Rate_probe.plan ~max_packet:1500 ~max_quantum:10_000
       ~rates_bps:[| 1e6; 100e6 |] ~quanta:[| 1500; 1500 |] ~quantum_unit:1500
       ()
   with
  | Some q -> Alcotest.(check (array int)) "ceiling" [| 1500; 10_000 |] q
  | None -> Alcotest.fail "expected a clamped plan");
  match
    Rate_probe.plan ~max_packet:1500 ~rates_bps:[| 5e6; 10e6 |]
      ~quanta:[| 1500; 1500 |] ~quantum_unit:500 ()
  with
  | Some q ->
    Alcotest.(check (array int)) "scaled up to the marker floor"
      [| 1500; 3000 |] q
  | None -> Alcotest.fail "expected a plan at the marker floor"

(* ------------------------------------------------------------------ *)
(* Watchdog bugfixes (this PR)                                         *)
(* ------------------------------------------------------------------ *)

type wd_pair = {
  striper : Striper.t;
  reseq : Resequencer.t;
  wires : Packet.t Queue.t array;
  now : float ref;
}

let make_wd ~intervals ~fallback () =
  let now = ref 0.0 in
  let engine = Srr.create ~quanta:[| 1000; 1000 |] () in
  let wires = Array.init 2 (fun _ -> Queue.create ()) in
  let reseq =
    Resequencer.create
      ~deficit:(Deficit.clone_initial engine)
      ~now:(fun () -> !now)
      ~watchdog:{ Resequencer.intervals; fallback }
      ~deliver:(fun ~channel:_ _ -> ())
      ()
  in
  let striper =
    Striper.create
      ~scheduler:(Scheduler.of_deficit ~name:"SRR" engine)
      ~marker:(Marker.make ~every_rounds:1 ())
      ~now:(fun () -> !now)
      ~emit:(fun ~channel pkt -> Queue.add pkt wires.(channel))
      ()
  in
  { striper; reseq; wires; now }

let shuttle_wd t =
  Array.iteri
    (fun c q ->
      Queue.iter (fun pkt -> Resequencer.receive t.reseq ~channel:c pkt) q;
      Queue.clear q)
    t.wires

(* One full round (one 1000-byte packet per channel) plus its trailing
   markers, timestamped at [at]. *)
let push_round t ~at seq0 =
  t.now := at;
  Striper.push t.striper (Packet.data ~seq:seq0 ~size:1000 ());
  Striper.push t.striper (Packet.data ~seq:(seq0 + 1) ~size:1000 ());
  shuttle_wd t

(* Regression: the reset barrier must reseed the marker-cadence
   estimate. Carrying the old epoch's gap across a reset made the
   watchdog judge post-reset silence against a cadence the sender may
   no longer use — here a 0.1 s pre-reset cadence versus a post-reset
   sender that has gone quiet: the fallback (100 s), not the stale
   0.1 s estimate, must set the deadline. *)
let test_barrier_reseeds_marker_cadence () =
  let t = make_wd ~intervals:3 ~fallback:100.0 () in
  (* Establish a 0.1 s marker cadence on both channels. *)
  push_round t ~at:0.0 0;
  push_round t ~at:0.1 2;
  push_round t ~at:0.2 4;
  push_round t ~at:0.3 6;
  (* Reset barrier at t=0.4, then a lone packet so the scan blocks on
     the silent channel. *)
  t.now := 0.4;
  Striper.send_reset t.striper;
  shuttle_wd t;
  Alcotest.(check int) "barrier completed" 1 (Resequencer.resets t.reseq);
  Striper.push t.striper (Packet.data ~seq:8 ~size:1000 ());
  shuttle_wd t;
  Alcotest.(check bool) "scan is blocked" true
    (Resequencer.blocked_on t.reseq <> None);
  (* 1.6 s of silence: 16x the stale cadence, far under 3x fallback. *)
  t.now := 2.0;
  Resequencer.tick t.reseq;
  Alcotest.(check int) "no spurious death from the stale cadence" 0
    (Resequencer.dead_declarations t.reseq);
  Alcotest.(check bool) "channel 1 alive" false
    (Resequencer.channel_dead t.reseq 1);
  (* The fallback deadline still works: 3 x 100 s of silence kills it. *)
  t.now := 500.0;
  Resequencer.tick t.reseq;
  Alcotest.(check bool) "channel 1 dead after real silence" true
    (Resequencer.channel_dead t.reseq 1)

(* Regression: a marker gap above the estimate (but inside the
   watchdog horizon) is adopted outright rather than half-averaged,
   and a stretch {e beyond} the horizon is adopted after one
   corroborating gap. After the sender stretches its cadence
   0.1 s -> 9.8 s, the first stretched gap is held back as a suspect —
   from one sample it is indistinguishable from an outage that
   swallowed markers, and adopting an outage would inflate the
   watchdog and barrier-staleness horizons by the outage length (the
   chaos-storm failure mode). The second consistent gap adopts the new
   cadence, setting the death deadline to 3 x 9.8 s = 29.4 s. *)
let test_marker_cadence_adopts_up () =
  let t = make_wd ~intervals:3 ~fallback:1000.0 () in
  push_round t ~at:0.0 0;
  push_round t ~at:0.1 2;
  push_round t ~at:0.2 4;
  (* Cadence stretch: markers now arrive 9.8 s apart. The first
     stretched gap is suspect-only; the second corroborates it. *)
  push_round t ~at:10.0 6;
  push_round t ~at:19.8 8;
  (* Block the scan so the watchdog has a channel to judge. (The
     stretch arrival itself can declare a transient death — the first
     wire drains before the late marker reaches the second — which the
     arrival immediately revives; only deaths after this point are the
     estimator's verdict.) *)
  Striper.push t.striper (Packet.data ~seq:10 ~size:1000 ());
  shuttle_wd t;
  Alcotest.(check bool) "scan is blocked" true
    (Resequencer.blocked_on t.reseq <> None);
  Alcotest.(check bool) "both channels alive after the stretch" true
    ((not (Resequencer.channel_dead t.reseq 0))
    && not (Resequencer.channel_dead t.reseq 1));
  let deaths0 = Resequencer.dead_declarations t.reseq in
  t.now := 40.0;
  (* 20.2 s of silence: far past the old-cadence deadline (0.3 s),
     inside the adopted stretched-cadence deadline. *)
  Resequencer.tick t.reseq;
  Alcotest.(check int) "silence within the stretched cadence tolerated" deaths0
    (Resequencer.dead_declarations t.reseq);
  Alcotest.(check bool) "both channels still alive" true
    ((not (Resequencer.channel_dead t.reseq 0))
    && not (Resequencer.channel_dead t.reseq 1));
  t.now := 51.0;
  (* 31.2 s of silence: past 3 x 9.8 s — genuine death. *)
  Resequencer.tick t.reseq;
  Alcotest.(check bool) "death after three stretched intervals" true
    (Resequencer.dead_declarations t.reseq > deaths0)

(* ------------------------------------------------------------------ *)
(* Hot retune / add / remove through the reset barrier                 *)
(* ------------------------------------------------------------------ *)

(* A queue-wire harness with *live membership*: [tx_map] maps engine
   channels to wires on the send side (respliced the moment the striper
   resizes), [rx_map] maps wires back to receiver channels and switches
   only when the resequencer adopts the staged transition at its
   barrier — the same two-view discipline Stripe_layer uses, driven by
   [Resequencer.on_transition_adopted]. *)
let test_hot_add_remove_stays_fifo () =
  let engine = Srr.create ~quanta:[| 1000; 1000 |] () in
  let wires = Array.init 4 (fun _ -> Queue.create ()) in
  let tx_map = ref [| 0; 1 |] in
  let rx_map = ref [| 0; 1 |] in
  let delivered = ref [] in
  let reseq =
    Resequencer.create
      ~deficit:(Deficit.clone_initial engine)
      ~deliver:(fun ~channel:_ p -> delivered := p.Packet.seq :: !delivered)
      ()
  in
  Resequencer.on_transition_adopted reseq (fun () -> rx_map := !tx_map);
  let striper =
    Striper.create
      ~scheduler:(Scheduler.of_deficit ~name:"SRR" engine)
      ~marker:(Marker.make ~every_rounds:2 ())
      ~emit:(fun ~channel pkt -> Queue.add pkt wires.((!tx_map).(channel)))
      ()
  in
  let shuttle () =
    Array.iteri
      (fun w q ->
        Queue.iter
          (fun pkt ->
            (* Resolve the wire per packet: [rx_map] may switch while
               this very queue drains (the hook fires inside receive). *)
            let c = ref (-1) in
            Array.iteri (fun i wid -> if wid = w then c := i) !rx_map;
            if !c >= 0 then Resequencer.receive reseq ~channel:!c pkt)
          q;
        Queue.clear q)
      wires
  in
  let seq = ref 0 in
  let push k =
    for _ = 1 to k do
      Striper.push striper (Packet.data ~seq:!seq ~size:900 ());
      incr seq
    done
  in
  push 40;
  shuttle ();
  (* Hot add: both views widen immediately — the receiver must demux
     the newcomer's reset marker to complete the barrier. *)
  tx_map := [| 0; 1; 2 |];
  rx_map := [| 0; 1; 2 |];
  Alcotest.(check int) "receiver stages the add" 2
    (Resequencer.add_channel reseq ~quantum:1000);
  Alcotest.(check int) "striper widens" 2
    (Striper.add_channel striper ~quantum:1000);
  push 60;
  shuttle ();
  Alcotest.(check bool) "add adopted at its barrier" false
    (Resequencer.transition_pending reseq);
  Alcotest.(check bool) "newcomer carried traffic" true
    (Striper.channel_bytes striper 2 > 0);
  (* Hot remove of channel 0: stage the receiver, let the striper emit
     the goodbye barrier under the old map, then resplice the send
     side. [rx_map] keeps the old numbering until the barrier adopts. *)
  Resequencer.remove_channel reseq 0;
  Striper.remove_channel striper 0;
  tx_map := [| 1; 2 |];
  push 50;
  shuttle ();
  Alcotest.(check bool) "remove adopted at its barrier" false
    (Resequencer.transition_pending reseq);
  Alcotest.(check (array int)) "receive map respliced at adoption" [| 1; 2 |]
    !rx_map;
  Alcotest.(check int) "two barriers total" 2 (Resequencer.resets reseq);
  Alcotest.(check (list int)) "delivery FIFO across add and remove"
    (List.init 150 Fun.id)
    (List.rev !delivered)

let test_one_transition_per_barrier () =
  let engine = Srr.create ~quanta:[| 1000; 1000 |] () in
  let reseq =
    Resequencer.create
      ~deficit:(Deficit.clone_initial engine)
      ~deliver:(fun ~channel:_ _ -> ())
      ()
  in
  ignore (Resequencer.add_channel reseq ~quantum:1000);
  Alcotest.check_raises "second transition while one is staged"
    (Invalid_argument
       "Resequencer.retune: a transition is already staged (one per barrier)")
    (fun () -> Resequencer.retune reseq ~quanta:[| 2000; 1000 |])

let test_retune_rides_barrier_end_to_end () =
  let engine = Srr.create ~quanta:[| 1000; 1000 |] () in
  let wires = Array.init 2 (fun _ -> Queue.create ()) in
  let delivered = ref [] in
  let reseq =
    Resequencer.create
      ~deficit:(Deficit.clone_initial engine)
      ~deliver:(fun ~channel:_ p -> delivered := p.Packet.seq :: !delivered)
      ()
  in
  let striper =
    Striper.create
      ~scheduler:(Scheduler.of_deficit ~name:"SRR" engine)
      ~marker:(Marker.make ~every_rounds:2 ())
      ~emit:(fun ~channel pkt -> Queue.add pkt wires.(channel))
      ()
  in
  let shuttle () =
    Array.iteri
      (fun c q ->
        Queue.iter (fun pkt -> Resequencer.receive reseq ~channel:c pkt) q;
        Queue.clear q)
      wires
  in
  for seq = 0 to 39 do
    Striper.push striper (Packet.data ~seq ~size:900 ())
  done;
  shuttle ();
  let pre0 = Striper.channel_bytes striper 0 in
  let pre1 = Striper.channel_bytes striper 1 in
  (* Receiver first, then the sender fires the barrier the staged
     vector rides on. *)
  Resequencer.retune reseq ~quanta:[| 3000; 1000 |];
  Striper.retune striper ~quanta:[| 3000; 1000 |] ();
  for seq = 40 to 119 do
    Striper.push striper (Packet.data ~seq ~size:900 ())
  done;
  shuttle ();
  Alcotest.(check bool) "retune adopted" false
    (Resequencer.transition_pending reseq);
  Alcotest.(check int) "one barrier" 1 (Resequencer.resets reseq);
  Alcotest.(check (list int)) "delivery FIFO across the retune"
    (List.init 120 Fun.id)
    (List.rev !delivered);
  (* The new 3:1 split is visible in the post-retune byte deltas. *)
  let delta0 = Striper.channel_bytes striper 0 - pre0 in
  let delta1 = Striper.channel_bytes striper 1 - pre1 in
  Alcotest.(check bool) "weighted split took effect" true
    (delta0 > 2 * delta1)

let suites =
  [
    ( "adapt",
      [
        Alcotest.test_case "retune at boundary" `Quick
          test_retune_at_boundary_immediate;
        Alcotest.test_case "retune staged mid-round" `Quick
          test_retune_mid_round_staged_and_rescaled;
        Alcotest.test_case "retune validation" `Quick test_retune_validates;
        Alcotest.test_case "resume clears DC" `Quick
          test_resume_clears_stale_deficit;
        Alcotest.test_case "probe ewma" `Quick test_rate_probe_ewma;
        Alcotest.test_case "probe resize" `Quick test_rate_probe_resize;
        Alcotest.test_case "probe reset forgets outage" `Quick
          test_rate_probe_reset_channel_forgets_outage;
        Alcotest.test_case "plan outside band" `Quick
          test_plan_retunes_outside_band;
        Alcotest.test_case "plan within band" `Quick test_plan_holds_within_band;
        Alcotest.test_case "plan needs estimates" `Quick
          test_plan_needs_full_estimates;
        Alcotest.test_case "plan clamps" `Quick test_plan_clamps;
        Alcotest.test_case "barrier reseeds cadence" `Quick
          test_barrier_reseeds_marker_cadence;
        Alcotest.test_case "cadence adopts up" `Quick
          test_marker_cadence_adopts_up;
        Alcotest.test_case "hot add/remove FIFO" `Quick
          test_hot_add_remove_stays_fifo;
        Alcotest.test_case "one transition per barrier" `Quick
          test_one_transition_per_barrier;
        Alcotest.test_case "retune rides barrier" `Quick
          test_retune_rides_barrier_end_to_end;
        QCheck_alcotest.to_alcotest prop_retune_matches_fresh_oracle;
      ] );
  ]
