(* stripe-sim: run a configurable striping scenario and report load
   sharing, ordering and recovery metrics.

   Examples:
     dune exec bin/stripe_sim.exe -- \
       --channel 10e6:0.001 --channel 4e6:0.020 \
       --scheduler srr --packets 5000 --workload bimodal

     dune exec bin/stripe_sim.exe -- \
       --channel 8e6:0.005:0.2 --channel 8e6:0.005:0.2 \
       --scheduler srr --markers 4 --packets 20000 --loss-stop 0.5

     dune exec bin/stripe_sim.exe -- --mode mppp --packets 5000
     dune exec bin/stripe_sim.exe -- --mode fragment --packets 5000 *)

open Cmdliner
open Stripe_netsim
open Stripe_packet
open Stripe_core

type channel_conf = { rate : float; delay : float; loss : float }

let parse_channel s =
  match String.split_on_char ':' s with
  | [ rate; delay ] -> (
    match (float_of_string_opt rate, float_of_string_opt delay) with
    | Some rate, Some delay -> Ok { rate; delay; loss = 0.0 }
    | _ -> Error (`Msg ("bad channel spec: " ^ s)))
  | [ rate; delay; loss ] -> (
    match
      (float_of_string_opt rate, float_of_string_opt delay, float_of_string_opt loss)
    with
    | Some rate, Some delay, Some loss -> Ok { rate; delay; loss }
    | _ -> Error (`Msg ("bad channel spec: " ^ s)))
  | _ -> Error (`Msg ("channel spec must be RATE:DELAY[:LOSS], got " ^ s))

let channel_conv =
  Arg.conv (parse_channel, fun fmt c ->
      Format.fprintf fmt "%g:%g:%g" c.rate c.delay c.loss)

let channels =
  Arg.(
    value
    & opt_all channel_conv
        [
          { rate = 10e6; delay = 0.001; loss = 0.0 };
          { rate = 10e6; delay = 0.010; loss = 0.0 };
        ]
    & info [ "c"; "channel" ] ~docv:"RATE:DELAY[:LOSS]"
        ~doc:
          "Add a channel: bits/s, one-way delay in seconds, optional loss \
           probability. Repeatable.")

let scheduler_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("srr", `Srr); ("rr", `Rr); ("grr", `Grr); ("random", `Random);
             ("rfq", `Rfq); ("sprinklers", `Sprinklers);
             ("load-aware", `Load_aware);
           ])
        `Srr
    & info [ "s"; "scheduler"; "discipline" ] ~docv:"SCHED"
        ~doc:
          "Striping discipline: $(b,srr), $(b,rr), $(b,grr), \
           $(b,sprinklers) (randomized variable-size stripes — SRR quanta \
           scaled to burst granularity with a seeded per-round permuted \
           visit order; causal, works with quasi mode), $(b,rfq) (seeded \
           randomized fair queuing, §3.4 — causal but engine-less), \
           $(b,load-aware) (min-load selection by transmit-queue debt \
           over relative rate; non-causal), or $(b,random). Engine-less \
           disciplines deliver in arrival order under $(b,--mode quasi).")

let mode_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("quasi", `Quasi); ("seq", `Seq); ("none", `None);
             ("mppp", `Mppp); ("fragment", `Fragment);
           ])
        `Quasi
    & info [ "mode" ] ~docv:"MODE"
        ~doc:
          "Resequencing mode: $(b,quasi) = logical reception + markers (the \
           paper's strIPe), $(b,seq) = sequence-number headers (guaranteed \
           FIFO), $(b,none) = arrival order, $(b,mppp) = Multilink PPP \
           fragments (RFC 1717), $(b,fragment) = OSIRIS-style minipackets.")

let packets =
  Arg.(
    value & opt int 10_000
    & info [ "n"; "packets" ] ~docv:"N" ~doc:"Number of packets to stripe.")

let workload =
  Arg.(
    value
    & opt
        (enum
           [
             ("bimodal", `Bimodal); ("alternating", `Alternating);
             ("uniform", `Uniform); ("imix", `Imix); ("fixed", `Fixed);
           ])
        `Bimodal
    & info [ "w"; "workload" ] ~docv:"DIST"
        ~doc:
          "Packet size distribution: $(b,bimodal) 200/1000, \
           $(b,alternating) 1000/200, $(b,uniform) 64..1500, $(b,imix), or \
           $(b,fixed) 1000.")

let markers =
  Arg.(
    value & opt int 4
    & info [ "m"; "markers" ] ~docv:"K"
        ~doc:"Send resynchronization markers every K rounds; 0 disables them.")

let loss_stop =
  Arg.(
    value & opt (some float) None
    & info [ "loss-stop" ] ~docv:"FRACTION"
        ~doc:
          "Stop all channel loss after this fraction of the run, to measure \
           resynchronization (e.g. 0.5).")

let seed =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")

let engine_arg =
  Arg.(
    value
    & opt (enum [ ("heap", Sim.Heap); ("calendar", Sim.Calendar) ]) Sim.Heap
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Event-queue engine: $(b,heap) (binary heap, the reference) or \
           $(b,calendar) (calendar queue, O(1) amortized). Both produce \
           identical seeded runs; $(b,calendar) is faster at scale.")

let replay_file =
  Arg.(
    value
    & opt (some file) None
    & info [ "replay" ] ~docv:"FILE"
        ~doc:
          "Replay a stored packet trace (see Trace_file; one packet per \
           line: time seq size flow frame) instead of generating a \
           workload. Overrides $(b,--packets) and $(b,--workload).")

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a structured event trace of the run to $(docv) (one event \
           per line, see $(b,--trace-format)) and report per-channel \
           counters. Events cover the whole pipeline: transmit, dequeue, \
           drop, arrival, enqueue, skip, block/unblock, marker and \
           delivery.")

let trace_format =
  Arg.(
    value
    & opt (enum [ ("json", `Json); ("csv", `Csv) ]) `Json
    & info [ "trace-format" ] ~docv:"FMT"
        ~doc:"Structured trace format: $(b,json) (JSON lines) or $(b,csv).")

let fault_conv =
  Arg.conv
    ( (fun s ->
        match Fault.parse_spec s with
        | Ok actions -> Ok actions
        | Error e -> Error (`Msg e)),
      fun fmt actions ->
        Format.pp_print_list Fault.pp_action fmt actions )

let fault_specs =
  Arg.(
    value
    & opt_all fault_conv []
    & info [ "fault" ] ~docv:"SPEC"
        ~doc:
          "Inject link faults: $(b,CH:EVENT@T[,EVENT@T...]) where EVENT is \
           $(b,down), $(b,up), $(b,rate=BPS) or $(b,burst=P/DUR) (Bernoulli \
           loss probability P for DUR seconds). Example: \
           $(b,1:down@0.5,up@1.5). Repeatable.")

let impair_conv =
  Arg.conv
    ( (fun s ->
        match Impair.parse_spec s with
        | Ok v -> Ok v
        | Error e -> Error (`Msg e)),
      fun fmt (ch, imp) -> Format.fprintf fmt "%d:%a" ch Impair.pp imp )

let impair_specs =
  Arg.(
    value
    & opt_all impair_conv []
    & info [ "impair" ] ~docv:"SPEC"
        ~doc:
          "Impair a channel inside its FIFO contract: \
           $(b,CH:reorder=P/WINDOW,dup=P,corrupt=P) gives each packet on \
           channel CH probability P of an unclamped extra delay uniform in \
           [0,WINDOW] seconds (breaking FIFO), of being delivered twice, \
           and of wire corruption. Example: \
           $(b,1:reorder=0.2/0.01,dup=0.05,corrupt=0.01). Repeatable. \
           $(b,--loss-stop) also stops impairments.")

let chaos_conv =
  Arg.conv
    ( (fun s ->
        match Chaos.parse_spec s with
        | Ok actions -> Ok actions
        | Error e -> Error (`Msg e)),
      fun fmt actions ->
        Format.pp_print_list Chaos.pp_action fmt actions )

let chaos_specs =
  Arg.(
    value
    & opt_all chaos_conv []
    & info [ "chaos" ] ~docv:"SPEC"
        ~doc:
          "Run a chaos plan against the bundle: comma-separated \
           $(b,storm=C1+C2+.../DUR@T) (correlated carrier loss on every \
           listed channel for DUR seconds), $(b,crash=tx/0/DUR@T) and \
           $(b,crash=rx/0/DUR@T) (endpoint crash + restart, PROTOCOL.md \
           §12), and $(b,violate=0@T) (poison the FIFO monitor — a \
           detection self-test, not a protocol event). The bundle id must \
           be 0: this simulator runs a single bundle. While a chaos plan \
           runs, always-on invariant monitors (FIFO order past the quiet \
           line, buffer budget, progress) shadow the delivery stream and \
           any violation is reported with the seed and the chaos event \
           index. Quasi mode with a CFQ scheduler only. Repeatable.")

let guard_window =
  Arg.(
    value
    & opt ~vopt:(Some 32) (some int) None
    & info [ "guard" ] ~docv:"WINDOW"
        ~doc:
          "Enable the receiver channel guard: per-channel sequence tags \
           (out of band of the payload) discard duplicates and restore \
           FIFO within a window of $(docv) held packets (default 32) \
           before the resequencer sees the stream. Quasi mode with a CFQ \
           scheduler only.")

let rx_buffer =
  Arg.(
    value
    & opt (some int) None
    & info [ "rx-buffer" ] ~docv:"BYTES"
        ~doc:
          "Bound the resequencer's buffered data bytes across all \
           channels (default: unbounded). Overflow behavior is set by \
           $(b,--overflow-policy). Quasi mode only.")

let overflow_policy =
  Arg.(
    value
    & opt
        (enum
           [
             ("drop-newest", Resequencer.Drop_newest);
             ("force-flush", Resequencer.Force_flush);
           ])
        Resequencer.Drop_newest
    & info [ "overflow-policy" ] ~docv:"POLICY"
        ~doc:
          "What a full $(b,--rx-buffer) does to an arriving data packet: \
           $(b,drop-newest) refuses it (a tail-drop loss the marker \
           machinery recovers from), $(b,force-flush) evicts buffered \
           data quasi-FIFO to make room, keeping the freshest data.")

let crash_at =
  Arg.(
    value
    & opt (some float) None
    & info [ "crash-at" ] ~docv:"T"
        ~doc:
          "Crash the sender at time $(docv): its striping state is \
           corrupted on the spot and, 20 ms later (the reboot), the §5 \
           reset barrier is emitted so the receiver resynchronizes. Quasi \
           mode with a CFQ scheduler only.")

let watchdog_k =
  Arg.(
    value
    & opt (some int) None
    & info [ "watchdog" ] ~docv:"K"
        ~doc:
          "Receiver dead-channel watchdog: declare a channel dead after \
           $(docv) marker intervals of silence and skip it (quasi-FIFO) \
           instead of blocking. Quasi mode only.")

let no_auto_suspend =
  Arg.(
    value & flag
    & info [ "no-auto-suspend" ]
        ~doc:
          "Do not suspend channels in the striper on carrier loss: model a \
           sender that cannot see link state (receiver-only recovery).")

let adapt_interval =
  Arg.(
    value
    & opt (some float) None
    & info [ "adapt" ] ~docv:"SECONDS"
        ~doc:
          "Adaptive striping: every $(docv), fold each channel's delivered \
           bytes into an EWMA goodput estimate and, when the estimates \
           drift outside the $(b,--adapt-band) hysteresis, retune the \
           quantum vector live through the §5 reset barrier (sender \
           retune + staged receiver retune). Recovers bandwidth \
           proportionality after mid-run rate changes (e.g. \
           $(b,--fault 0:rate=5e6\\@1)). Quasi mode with a CFQ scheduler \
           only.")

let adapt_band =
  Arg.(
    value & opt float 0.25
    & info [ "adapt-band" ] ~docv:"FRACTION"
        ~doc:
          "Relative hysteresis for $(b,--adapt): only retune when some \
           channel's target quantum differs from its current one by more \
           than $(docv) of the current value.")

let health_conv =
  Arg.conv
    ( (fun s ->
        match Health.parse_spec s with
        | Ok v -> Ok v
        | Error e -> Error (`Msg e)),
      fun fmt (_, every) ->
        Format.fprintf fmt "health every=%g" (Option.value every ~default:0.05)
    )

let health_spec =
  Arg.(
    value
    & opt (some health_conv) None
    & info [ "health" ] ~docv:"SPEC"
        ~doc:
          "Gray-failure health engine (PROTOCOL.md §13): every tick, fold \
           each channel's wire loss and goodput into an EWMA badness score \
           and walk the Healthy/Suspect/Probation/Quarantined state machine \
           with hysteresis. Probation cuts the channel's quantum to a \
           fraction of nominal through the §5 reset barrier (floored at the \
           max packet, keeping Thm 5.1); quarantine suspends the channel \
           and reinstates it on an exponential backoff. $(docv) is \
           comma-separated $(b,KEY=VALUE) over the defaults: $(b,every) \
           (tick seconds, default 0.05), $(b,alpha), $(b,suspect), \
           $(b,quarantine), $(b,exit), $(b,escalate), $(b,recover), \
           $(b,frac), $(b,backoff), $(b,factor), $(b,maxbackoff). Example: \
           $(b,every=0.05,frac=0.25,backoff=0.5). Quasi mode with a CFQ \
           scheduler only.")

let domains_arg =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Run $(docv) independent replicas of the scenario in parallel, one \
           per OCaml 5 domain. Replica 0 keeps $(b,--seed) (and the \
           $(b,--trace) path) so its report is exactly the single-domain \
           output; the others draw seeds from indexed substreams of the \
           master seed and write $(b,FILE.dK) traces. A merged summary \
           (delivered/goodput sums, merged monitor verdicts, merged \
           per-channel table when tracing) follows the per-replica reports. \
           $(b,0) means auto: one replica per recommended domain.")

(* One delivery sink shared by every mode. *)
type sink = {
  reorder : Reorder.t;
  recovery : Stripe_metrics.Recovery.t;
  goodput : Stripe_metrics.Throughput.t;
}

let make_sink () =
  {
    reorder = Reorder.create ();
    recovery = Stripe_metrics.Recovery.create ();
    goodput = Stripe_metrics.Throughput.create ();
  }

let sink_deliver sink sim pkt =
  Reorder.observe sink.reorder ~seq:pkt.Packet.seq;
  Stripe_metrics.Recovery.observe sink.recovery ~now:(Sim.now sim)
    ~seq:pkt.Packet.seq;
  Stripe_metrics.Throughput.account sink.goodput ~now:(Sim.now sim)
    ~bytes:pkt.Packet.size

(* What one scenario replica hands back to the main domain: its whole
   report as text (buffered so parallel replicas never interleave on
   stdout), plus the pieces the merged summary aggregates. *)
type replica_out = {
  text : string;
  delivered : int;
  ooo : int;
  goodput_mbps : float;
  verdict : Stripe_obs.Monitor.verdict option;
  counters : Stripe_obs.Counters.t option;
}

let run channel_confs sched_kind mode n_packets workload_kind marker_rounds
    loss_stop seed engine replay_file trace_out trace_format fault_specs
    impair_specs chaos_specs guard_window rx_buffer overflow_policy crash_at
    watchdog_k no_auto_suspend adapt_interval adapt_band health_spec domains =
  let n = List.length channel_confs in
  if n = 0 then `Error (false, "need at least one channel")
  else begin
    let confs = Array.of_list channel_confs in
    (* One self-contained scenario replica: its own sim, its own RNG
       chain seeded below, its own report text. Replica 0 with the
       master seed is the legacy run — with --domains 1 its text is
       printed verbatim, so the single-domain output is unchanged. *)
    let run_replica ~replica ~seed ~trace_out () =
      let buf = Buffer.create 4096 in
      let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
      let warn s = if replica = 0 then prerr_endline s in
    let sim = Sim.create ~engine () in
    let rng = Rng.create seed in
    (* Structured observability: when --trace is given, every instrumented
       component shares one sink that tees into a per-channel counter
       registry and the trace file. Otherwise the null sink keeps the hot
       paths allocation-free. *)
    let module Obs = Stripe_obs in
    let obs_counters, obs_sink, obs_close =
      match trace_out with
      | None -> (None, Obs.Sink.null, fun () -> ())
      | Some path ->
        let counters = Obs.Counters.create ~n in
        let oc = open_out path in
        let file_sink =
          match trace_format with
          | `Json -> Obs.Sink.jsonl oc
          | `Csv -> Obs.Sink.csv oc
        in
        let sink = Obs.Sink.tee (Obs.Counters.sink counters) file_sink in
        ( Some counters,
          sink,
          fun () ->
            Obs.Sink.flush sink;
            close_out oc )
    in
    (* A chaos plan arms the always-on invariant monitors: they ride the
       same event stream as --trace, teed in front of whatever sink the
       user asked for (the null sink when tracing is off). *)
    let chaos_actions = List.concat chaos_specs in
    let monitor =
      if chaos_actions = [] then None
      else Some (Obs.Monitor.create ?budget_bytes:rx_buffer ())
    in
    let obs_sink =
      match monitor with
      | Some m -> Obs.Sink.tee (Obs.Monitor.sink m) obs_sink
      | None -> obs_sink
    in
    let rates = Array.map (fun c -> c.rate) confs in
    (* Load-aware's debt oracle: outstanding transmit-queue bytes per
       link. The links are built after the scheduler (per mode), so the
       oracle reads through a cell that [make_links] fills in. *)
    let la_debt = ref (fun (_ : int) -> 0.0) in
    let engine_opt =
      match sched_kind with
      | `Srr ->
        Some (Srr.for_rates ~max_packet:1500 ~rates_bps:rates ~quantum_unit:1500 ())
      | `Rr -> Some (Rr.create ~n ())
      | `Grr -> Some (Grr.for_rates ~rates_bps:rates ())
      | `Sprinklers ->
        Some
          (Sprinklers.for_rates ~max_packet:1500 ~seed ~rates_bps:rates
             ~quantum_unit:1500 ())
      | `Random | `Rfq | `Load_aware -> None
    in
    let make_scheduler () =
      match engine_opt with
      | Some e ->
        Scheduler.of_deficit
          ~name:
            (match sched_kind with
            | `Srr -> "SRR" | `Rr -> "RR" | `Grr -> "GRR"
            | `Sprinklers -> "Sprinklers"
            | `Random | `Rfq | `Load_aware -> ".")
          e
      | None -> (
        match sched_kind with
        | `Rfq -> Scheduler.seeded_rfq ~n ~seed
        | `Load_aware ->
          Scheduler.load_aware ~weights:rates
            ~debt:(fun c -> !la_debt c)
            ~n ()
        | _ -> Scheduler.random_selection ~n ~seed)
    in
    let sink = make_sink () in
    let lossy = ref true in
    let errors_stop = ref None in
    let aggregate = Array.fold_left (fun a c -> a +. c.rate) 0.0 confs in
    let interval = 700.0 *. 8.0 /. (aggregate *. 0.9) in
    (* Fault application and crash recovery are wired up per mode (the
       link payload type differs); the refs let the generic tail of [run]
       trigger them. *)
    let fault_ref = ref (fun (_ : Fault.action list) -> ()) in
    let crash_ref = ref None in
    (* The --chaos driver (set up by quasi mode) and its endpoint-down
       gates: a crashed sender drops offered packets, a crashed receiver
       drops arrivals on the floor until its restart. *)
    let chaos_ref = ref None in
    let tx_crashed = ref false in
    let rx_crashed = ref false in
    let tx_crash_drops = ref 0 in
    let rx_crash_drops = ref 0 in
    let last_chaos_event = ref (-1) in
    let impairs = impair_specs in
    List.iter
      (fun (c, _) ->
        if c >= n then
          warn (Printf.sprintf "warning: --impair names channel %d of %d" c n))
      impairs;
    let impair_for i =
      List.fold_left
        (fun acc (c, imp) -> if c = i then imp else acc)
        Impair.none impairs
    in
    let clear_impair = ref (fun () -> ()) in
    let stop_errors () =
      lossy := false;
      !clear_impair ()
    in
    (* End-of-run hook (e.g. flushing the channel guard's held packets
       once no more arrivals can fill their gaps). *)
    let finish_ref = ref (fun () -> ()) in
    (* Set when the workload has offered its last packet: recurring
       policy timers (the --adapt probe) stop rescheduling so the
       simulation can drain and terminate. *)
    let offer_done = ref false in
    (* The wire: mode-specific payloads share polymorphic links via a
       variant. Each link draws from its own split of the master RNG, so
       the whole run — loss, jitter, impairments — reproduces from one
       --seed. *)
    let make_links ?corrupt receive =
      let links =
        Array.mapi
          (fun i conf ->
            Link.create sim
              ~name:(Printf.sprintf "ch%d" i)
              ~rate_bps:conf.rate ~prop_delay:conf.delay ~channel:i
              ~rng:(Rng.split rng) ~impair:(impair_for i) ?corrupt
              ~sink:obs_sink
              ~deliver:(fun (is_marker, payload) ->
                let dropped =
                  !lossy && conf.loss > 0.0 && (not is_marker)
                  && Rng.bernoulli rng ~p:conf.loss
                in
                if dropped then begin
                  (* Loss is applied here, past the link model, so the wire's
                     own Drop instrumentation never sees it — record it. *)
                  if Obs.Sink.active obs_sink then
                    Obs.Sink.emit obs_sink
                      (Obs.Event.v ~time:(Sim.now sim) ~channel:i
                         Obs.Event.Drop)
                end
                else receive i payload)
              ())
          confs
      in
      la_debt := (fun c -> float_of_int (Link.queue_bytes links.(c)));
      fault_ref := (fun schedule -> Fault.apply sim ~links schedule);
      clear_impair :=
        (fun () ->
          Array.iter (fun l -> Link.set_impairments l Impair.none) links);
      links
    in
    (* Per-mode plumbing returns: push, describe (extra stats lines). *)
    let push, describe =
      match mode with
      | `Quasi | `None | `Seq ->
        let scheduler = make_scheduler () in
        if Obs.Sink.active obs_sink then
          Scheduler.observe scheduler ~now:(fun () -> Sim.now sim) obs_sink;
        let receive_cell = ref (fun _ _ -> ()) in
        (* The wire payload carries the guard's out-of-band tag next to
           the packet (-1 when the guard is off). The corrupt hook models
           damage the link CRC missed: only marker payloads are mangled —
           that is the damage the protocol-level checksum exists to
           catch; corrupted data is CRC-dropped like loss. *)
        let mangle_rng = Rng.split rng in
        let corrupt =
          if List.exists (fun (_, imp) -> imp.Impair.corrupt_p > 0.0) impairs
          then
            Some
              (fun (is_m, (tag, pkt)) ->
                if is_m then
                  Some
                    ( is_m,
                      ( tag,
                        Packet.mangle_marker
                          ~salt:(Rng.int mangle_rng 0x3fffffff)
                          pkt ) )
                else None)
          else None
        in
        let links = make_links ?corrupt (fun i pkt -> !receive_cell i pkt) in
        let deliver pkt = sink_deliver sink sim pkt in
        let reseq_stats = ref (fun () -> []) in
        (* The adaptive policy below needs the resequencer to stage the
           receiver half of each retune. *)
        let reseq_cell = ref None in
        let guard_tx =
          match mode, engine_opt, guard_window with
          | `Quasi, Some _, Some _ -> Some (Channel_guard.Tx.create ~n)
          | _, _, Some _ ->
            warn "warning: --guard needs quasi mode with a CFQ scheduler";
            None
          | _, _, None -> None
        in
        (match mode, engine_opt with
        | `Quasi, Some e ->
          let watchdog =
            Option.map
              (fun k ->
                (* Fallback cadence estimate for the start-up window, before
                   the channel's own inter-marker gap has been observed: a
                   round moves ~n quanta of wire, markers come every
                   [marker_rounds] rounds. *)
                let round_time = float_of_int n *. 1500.0 *. 8.0 /. (aggregate *. 0.9) in
                {
                  Resequencer.intervals = k;
                  fallback = float_of_int (max 1 marker_rounds) *. round_time;
                })
              watchdog_k
          in
          let pressure_episodes = ref 0 in
          let r =
            Resequencer.create ~deficit:(Deficit.clone_initial e)
              ~now:(fun () -> Sim.now sim)
              ~sink:obs_sink ?watchdog ?budget_bytes:rx_buffer
              ~overflow:overflow_policy
              ~on_pressure:(fun ~high ->
                if high then incr pressure_episodes)
              ~deliver:(fun ~channel:_ pkt -> deliver pkt)
              ()
          in
          reseq_cell := Some r;
          let guard =
            match guard_tx with
            | Some _ ->
              let w = Option.value guard_window ~default:32 in
              Some
                (Channel_guard.create ~n ~window:w
                   ~now:(fun () -> Sim.now sim)
                   ~sink:obs_sink
                   ~deliver:(fun ~channel pkt ->
                     Resequencer.receive r ~channel pkt)
                   ())
            | None -> None
          in
          (match guard with
          | Some g ->
            receive_cell :=
              (fun i (tag, pkt) ->
                Channel_guard.receive g ~channel:i ~tag pkt);
            finish_ref := (fun () -> Channel_guard.flush g)
          | None ->
            receive_cell :=
              (fun i (_tag, pkt) -> Resequencer.receive r ~channel:i pkt));
          reseq_stats :=
            (fun () ->
              [
                Printf.sprintf
                  "resequencer: skips=%d wd-skips=%d dead-declared=%d \
                   round-realigns=%d buffered-high-water=%d pkts"
                  (Resequencer.skips r)
                  (Resequencer.watchdog_skips r)
                  (Resequencer.dead_declarations r)
                  (Resequencer.round_realigns r)
                  (Resequencer.buffer_high_water_packets r);
              ]
              @ (match rx_buffer with
                | Some b ->
                  [
                    Printf.sprintf
                      "rx-buffer: budget=%dB max-buffered=%dB overflows=%d \
                       dropped=%d forced=%d pressure-episodes=%d"
                      b
                      (Resequencer.max_buffered_bytes r)
                      (Resequencer.overflows r)
                      (Resequencer.overflow_drops r)
                      (Resequencer.forced_deliveries r)
                      !pressure_episodes;
                  ]
                | None -> [])
              @ (if Resequencer.corrupt_marker_discards r > 0 then
                   [
                     Printf.sprintf "corrupt markers discarded: %d"
                       (Resequencer.corrupt_marker_discards r);
                   ]
                 else [])
              @ (match guard with
                | Some g ->
                  [
                    Printf.sprintf
                      "guard: dup-discards=%d reorder-restores=%d \
                       corrupt-discards=%d max-held=%d pkts"
                      (Channel_guard.dup_discards g)
                      (Channel_guard.reorder_restores g)
                      (Channel_guard.corrupt_discards g)
                      (Channel_guard.max_held_packets g);
                  ]
                | None -> []))
        | `Seq, _ ->
          let r =
            Seq_resequencer.create
              ?deficit:(Option.map Deficit.clone_initial engine_opt)
              ~n_channels:n ~deliver ()
          in
          receive_cell :=
            (fun i (_tag, pkt) -> Seq_resequencer.receive r ~channel:i pkt);
          reseq_stats :=
            (fun () ->
              [
                Printf.sprintf
                  "seq mode: fast-path=%d detected-losses=%d (guaranteed FIFO)"
                  (Seq_resequencer.fast_deliveries r)
                  (Seq_resequencer.detected_losses r);
              ])
        | (`Quasi | `None), _ ->
          receive_cell :=
            (fun _ (_tag, pkt) ->
              if not (Packet.is_marker pkt) then deliver pkt)
        | (`Mppp | `Fragment), _ -> assert false (* handled below *));
        let striper =
          Striper.create ~scheduler
            ?marker:
              (match mode, engine_opt with
              | `Quasi, Some _ when marker_rounds > 0 ->
                Some (Marker.make ~every_rounds:marker_rounds ())
              | _ -> None)
            ~now:(fun () -> Sim.now sim)
            ~sink:obs_sink
            ~emit:(fun ~channel pkt ->
              let tag =
                match guard_tx with
                | Some tx -> Channel_guard.Tx.next_tag tx ~channel
                | None -> -1
              in
              ignore
                (Link.send links.(channel) ~size:pkt.Packet.size
                   (Packet.is_marker pkt, (tag, pkt))))
            ()
        in
        (* Sender-side failure detection: carrier transitions suspend /
           resume the channel in the striper (resume fires the §5 reset
           barrier), unless the user asked for a link-state-blind
           sender. *)
        if not no_auto_suspend then
          Array.iteri
            (fun i link ->
              Link.on_carrier link (fun ~up ->
                  if up then Striper.resume_channel striper i
                  else Striper.suspend_channel striper i))
            links;
        (* Adaptive striping (PROTOCOL.md §11): a recurring probe folds
           each link's delivered bytes into an EWMA goodput estimate and
           retunes the quantum vector through the reset barrier when the
           estimates leave the hysteresis band. Receiver staging happens
           before the sender's retune so the staged vector is already
           waiting when the barrier lands. *)
        let adapt_stats = ref (fun () -> []) in
        (match adapt_interval, mode, engine_opt with
        | Some dt, `Quasi, Some e when dt > 0.0 ->
          let probe = Rate_probe.create ~n () in
          let last_bytes = Array.make n 0 in
          let retunes = ref 0 in
          let deferred = ref 0 in
          (* A channel coming back from an outage must not blend its
             pre-outage EWMA (decayed by the zero-rate windows observed
             while it was down) into the first post-resume estimate:
             clear it so the next window seeds the estimate fresh. *)
          Array.iteri
            (fun c link ->
              Link.on_carrier link (fun ~up ->
                  if up then begin
                    last_bytes.(c) <- Link.delivered_bytes link;
                    Rate_probe.reset_channel probe c
                  end))
            links;
          let rec probe_tick () =
            for c = 0 to n - 1 do
              let total = Link.delivered_bytes links.(c) in
              Rate_probe.observe probe ~channel:c ~bytes:(total - last_bytes.(c));
              last_bytes.(c) <- total
            done;
            Rate_probe.sample probe ~now:(Sim.now sim);
            let pending =
              match !reseq_cell with
              | Some r -> Resequencer.transition_pending r
              | None -> false
            in
            if pending then incr deferred
            else begin
              match
                Rate_probe.plan ~max_packet:1500 ~band:adapt_band
                  ~rates_bps:(Rate_probe.rates probe)
                  ~quanta:(Deficit.quanta e) ~quantum_unit:1500 ()
              with
              | Some quanta ->
                incr retunes;
                (match !reseq_cell with
                | Some r -> Resequencer.retune r ~quanta
                | None -> ());
                Striper.retune striper ~quanta ()
              | None -> ()
            end;
            if not !offer_done then Sim.schedule_after sim ~delay:dt probe_tick
          in
          Sim.schedule_after sim ~delay:dt probe_tick;
          adapt_stats :=
            (fun () ->
              let join f a =
                String.concat " " (Array.to_list (Array.map f a))
              in
              [
                Printf.sprintf "adaptive: probes=%d retunes=%d deferred=%d"
                  (Rate_probe.samples probe)
                  !retunes !deferred;
                Printf.sprintf "  goodput-est: [%s] Mbps  quanta: [%s]"
                  (join
                     (fun r -> Printf.sprintf "%.2f" (r /. 1e6))
                     (Rate_probe.rates probe))
                  (join string_of_int (Deficit.quanta e));
              ])
        | Some _, _, _ ->
          warn "warning: --adapt needs quasi mode with a CFQ scheduler"
        | None, _, _ -> ());
        (* Gray-failure health engine (PROTOCOL.md §13): a recurring tick
           harvests each link's wire counters as evidence, fuses them into
           a per-channel badness score, and maps the state machine's
           transitions onto the striper — quarantine suspends the channel
           through the §5 reset barrier, a timed reinstatement resumes it
           as a probation probe — while each state's quantum demand lands
           as a staged retune at a round boundary, floored at the max
           packet so Thm 5.1 keeps holding. *)
        let health_stats = ref (fun () -> []) in
        (match health_spec, mode, engine_opt with
        | Some (hconfig, every), `Quasi, Some e ->
          let tick_every = Option.value every ~default:0.05 in
          let h =
            Health.create ~config:hconfig
              ~live:(fun c -> c >= 0 && c < n && Link.is_up links.(c))
              ~sink:obs_sink ~n ()
          in
          let nominal = Array.copy (Deficit.quanta e) in
          let last_sent = Array.make n 0 in
          let last_lost = Array.make n 0 in
          let last_sb = Array.make n 0 in
          let last_db = Array.make n 0 in
          let staged = ref (Array.copy nominal) in
          let quarantines = ref 0 in
          let reinstates = ref 0 in
          let retunes = ref 0 in
          let deferred = ref 0 in
          let rec health_tick () =
            (* The window's per-channel evidence: wire loss rate and the
               goodput ratio (delivered/sent bytes). *)
            for c = 0 to n - 1 do
              let ds = Link.sent_packets links.(c) - last_sent.(c) in
              let dl = Link.lost_packets links.(c) - last_lost.(c) in
              let dsb = Link.sent_bytes links.(c) - last_sb.(c) in
              let ddb = Link.delivered_bytes links.(c) - last_db.(c) in
              last_sent.(c) <- Link.sent_packets links.(c);
              last_lost.(c) <- Link.lost_packets links.(c);
              last_sb.(c) <- Link.sent_bytes links.(c);
              last_db.(c) <- Link.delivered_bytes links.(c);
              if ds > 0 || dl > 0 then
                Health.observe h ~channel:c ~sent:ds ~lost:dl
                  ~goodput_ratio:
                    (if dsb > 0 then
                       Float.min 1.0 (float_of_int ddb /. float_of_int dsb)
                     else 1.0)
                  ()
            done;
            List.iter
              (function
                | Health.To_quarantine { channel; _ } ->
                  incr quarantines;
                  Striper.suspend_channel striper channel
                | Health.To_probation { channel; from_quarantine = true } ->
                  incr reinstates;
                  Striper.resume_channel striper channel
                | Health.To_suspect _ | Health.To_probation _
                | Health.To_healthy _ -> ())
              (Health.sample h ~now:(Sim.now sim));
            let target =
              Array.mapi
                (fun c q ->
                  let s = Health.quantum_scale h c in
                  if s <= 0.0 || s >= 1.0 then q
                  else max 1500 (int_of_float (float_of_int q *. s)))
                nominal
            in
            if target <> !staged then begin
              let pending =
                match !reseq_cell with
                | Some r -> Resequencer.transition_pending r
                | None -> false
              in
              if pending then incr deferred
              else begin
                incr retunes;
                staged := target;
                (match !reseq_cell with
                | Some r -> Resequencer.retune r ~quanta:target
                | None -> ());
                Striper.retune striper ~quanta:target ()
              end
            end;
            if not !offer_done then
              Sim.schedule_after sim ~delay:tick_every health_tick
          in
          Sim.schedule_after sim ~delay:tick_every health_tick;
          health_stats :=
            (fun () ->
              let per f =
                String.concat " " (List.init n f)
              in
              [
                Printf.sprintf
                  "health: quarantines=%d reinstates=%d retunes=%d \
                   deferred=%d guard-deferrals=%d"
                  !quarantines !reinstates !retunes !deferred
                  (Health.deferred_quarantines h);
                Printf.sprintf "  states: [%s]  scores: [%s]"
                  (per (fun c -> Health.state_name (Health.state h c)))
                  (per (fun c -> Printf.sprintf "%.2f" (Health.score h c)));
              ])
        | Some _, _, _ ->
          warn "warning: --health needs quasi mode with a CFQ scheduler"
        | None, _, _ -> ());
        (match mode, engine_opt with
        | `Quasi, Some e ->
          crash_ref :=
            Some
              (fun () ->
                (* State loss first (the receiver starts drifting), reboot
                   with the reset barrier 20 ms later. *)
                Deficit.set_round e (Deficit.round e + 7);
                Sim.schedule_after sim ~delay:0.02 (fun () ->
                    Striper.send_reset striper));
          (* Chaos driver: storms toggle link carrier (the carrier
             watchers above do sender-side suspend/resume), crashes map
             onto the PROTOCOL.md §12 endpoint crash/restart entry
             points, and violate poisons the FIFO monitor's high-water
             so the very next delivery registers — proving the
             detection path fires. *)
          let inner_receive = !receive_cell in
          receive_cell :=
            (fun i payload ->
              if !rx_crashed then incr rx_crash_drops
              else inner_receive i payload);
          chaos_ref :=
            Some
              {
                Chaos.set_channel_up =
                  (fun c up -> if c >= 0 && c < n then Link.set_up links.(c) up);
                crash =
                  (fun side b ->
                    if b = 0 then
                      match side with
                      | Chaos.Tx -> tx_crashed := true
                      | Chaos.Rx -> (
                        rx_crashed := true;
                        match !reseq_cell with
                        | Some r -> ignore (Resequencer.crash_restart r)
                        | None -> ()));
                restart =
                  (fun side b ->
                    if b = 0 then
                      match side with
                      | Chaos.Tx ->
                        tx_crashed := false;
                        Striper.crash_restart striper
                      | Chaos.Rx -> rx_crashed := false);
                violate =
                  (fun _ ->
                    match monitor with
                    | Some m ->
                      Obs.Monitor.set_quiet_after m (Sim.now sim);
                      Obs.Sink.emit (Obs.Monitor.sink m)
                        (Obs.Event.v ~time:(Sim.now sim) ~size:0 ~seq:max_int
                           Obs.Event.Deliver)
                    | None -> ());
                set_loss =
                  (fun c l -> if c >= 0 && c < n then Link.set_loss links.(c) l);
                scale_rate =
                  (fun c f ->
                    if c >= 0 && c < n then
                      Link.set_rate_bps links.(c) (confs.(c).rate *. f));
              }
        | _ -> ());
        ( (fun pkt ->
            if !tx_crashed then incr tx_crash_drops else Striper.push striper pkt),
          fun () ->
            List.concat
              [
                Array.to_list
                  (Array.mapi
                     (fun i _ ->
                       Printf.sprintf "  ch%d: %7d pkts %9d bytes" i
                         (Striper.channel_packets striper i)
                         (Striper.channel_bytes striper i))
                     links);
                [ Printf.sprintf "markers: %d" (Striper.markers_sent striper) ];
                (if Striper.undispatched_drops striper > 0 then
                   [
                     Printf.sprintf "dropped with no live channel: %d"
                       (Striper.undispatched_drops striper);
                   ]
                 else []);
                (if impairs <> [] then begin
                   let sum f = Array.fold_left (fun a l -> a + f l) 0 links in
                   [
                     Printf.sprintf
                       "impairments: reordered=%d duplicated=%d corrupted=%d \
                        crc-dropped=%d"
                       (sum Link.reordered_packets)
                       (sum Link.duplicated_packets)
                       (sum Link.corrupted_packets)
                       (sum Link.corrupt_drops);
                   ]
                 end
                 else []);
                !reseq_stats ();
                !adapt_stats ();
                !health_stats ();
              ] )
      | `Mppp ->
        let receiver = ref None in
        let links =
          make_links (fun i frag ->
              match !receiver with
              | Some r -> Mppp.Receiver.receive r ~link:i frag
              | None -> ())
        in
        let rx =
          Mppp.Receiver.create ~n_links:n
            ~deliver:(fun pkt -> sink_deliver sink sim pkt)
            ()
        in
        receiver := Some rx;
        let sender =
          Mppp.Sender.create ~scheduler:(make_scheduler ())
            ~emit:(fun ~link f ->
              ignore (Link.send links.(link) ~size:(Mppp.wire_size f) (false, f)))
            ()
        in
        ( Mppp.Sender.push sender,
          fun () ->
            [
              Printf.sprintf "mppp: fragments=%d header-bytes=%d lost=%d discarded=%d"
                (Mppp.Sender.fragments_sent sender)
                (Mppp.Sender.header_bytes_sent sender)
                (Mppp.Receiver.lost_fragments rx)
                (Mppp.Receiver.discarded_datagrams rx);
            ] )
      | `Fragment ->
        let reasm = ref None in
        let links =
          make_links (fun i frag ->
              match !reasm with
              | Some r -> Fragmenter.Reassembler.receive r ~channel:i frag
              | None -> ())
        in
        let rx =
          Fragmenter.Reassembler.create ~n_channels:n
            ~deliver:(fun pkt -> sink_deliver sink sim pkt)
            ()
        in
        reasm := Some rx;
        let sender =
          Fragmenter.Sender.create ~shares:rates
            ~emit:(fun ~channel f ->
              ignore
                (Link.send links.(channel) ~size:(Fragmenter.wire_size f)
                   (false, f)))
            ()
        in
        ( Fragmenter.Sender.push sender,
          fun () ->
            [
              Printf.sprintf "fragmenting: %d minipackets/datagram, dropped=%d"
                n
                (Fragmenter.Reassembler.dropped_incomplete rx);
            ] )
    in
    let gen =
      match workload_kind with
      | `Bimodal -> Stripe_workload.Genpkt.bimodal ~rng ~small:200 ~large:1000 ()
      | `Alternating -> Stripe_workload.Genpkt.alternating ~small:200 ~large:1000
      | `Uniform -> Stripe_workload.Genpkt.uniform ~rng ~lo:64 ~hi:1500
      | `Imix -> Stripe_workload.Genpkt.imix ~rng
      | `Fixed -> Stripe_workload.Genpkt.fixed 1000
    in
    let fault_actions = List.concat fault_specs in
    if fault_actions <> [] then !fault_ref fault_actions;
    (match crash_at, !crash_ref with
    | Some t, Some reboot -> Fault.crash sim ~at:t reboot
    | Some _, None ->
      warn "warning: --crash-at needs quasi mode with a CFQ scheduler"
    | None, _ -> ());
    (match chaos_actions, !chaos_ref with
    | [], _ -> ()
    | _ :: _, None ->
      warn "warning: --chaos needs quasi mode with a CFQ scheduler"
    | _ :: _, Some driver ->
      if
        List.exists
          (function
            | Chaos.Crash { bundle; _ } | Chaos.Violate { bundle; _ } ->
              bundle <> 0
            | Chaos.Storm _ | Chaos.Degrade _ -> false)
          chaos_actions
      then
        warn
          "warning: --chaos names a bundle other than 0; those actions do \
           nothing here";
      (* Quiet line: chaos legally degrades delivery to quasi-FIFO while
         its effects drain (Thm 5.1); strict FIFO resumes a drain grace
         after the last planned event. *)
      (match monitor with
      | Some m ->
        Obs.Monitor.set_quiet_after m
          (Chaos.horizon chaos_actions +. Float.max 0.25 (100.0 *. interval))
      | None -> ());
      Chaos.apply sim
        ~on_event:(fun ~index ~time:_ _ -> last_chaos_event := index)
        driver chaos_actions);
    let n_offered =
      match replay_file with
      | Some path ->
        let entries = Stripe_workload.Trace_file.load path in
        let n = List.length entries in
        List.iteri
          (fun i e ->
            Sim.schedule sim ~at:e.Stripe_workload.Trace_file.time (fun () ->
                push e.Stripe_workload.Trace_file.packet;
                if i = n - 1 then offer_done := true;
                match loss_stop with
                | Some frac
                  when float_of_int (i + 1) >= frac *. float_of_int n
                       && !errors_stop = None ->
                  errors_stop := Some (Sim.now sim);
                  stop_errors ()
                | Some _ | None -> ()))
          entries;
        n
      | None ->
        let seq = ref 0 in
        let rec tick () =
          if !seq < n_packets then begin
            push (Packet.data ~seq:!seq ~born:(Sim.now sim) ~size:(gen ()) ());
            incr seq;
            (match loss_stop with
            | Some frac
              when float_of_int !seq >= frac *. float_of_int n_packets
                   && !errors_stop = None ->
              errors_stop := Some (Sim.now sim);
              stop_errors ()
            | Some _ | None -> ());
            Sim.schedule_after sim ~delay:interval tick
          end
          else offer_done := true
        in
        tick ();
        n_packets
    in
    Sim.run sim;
    !finish_ref ();
    out "channels: %d  packets: %d  mode: %s\n" n n_offered
      (match mode with
      | `Quasi -> "quasi-FIFO (logical reception + markers)"
      | `Seq -> "guaranteed FIFO (sequence numbers)"
      | `None -> "no resequencing"
      | `Mppp -> "Multilink PPP (RFC 1717)"
      | `Fragment -> "fragmenting minipackets");
    List.iter (fun line -> out "%s\n" line) (describe ());
    out "delivered: %d  out-of-order: %d  max displacement: %d\n"
      (Reorder.observed sink.reorder)
      (Reorder.out_of_order sink.reorder)
      (Reorder.max_displacement sink.reorder);
    out "goodput: %.2f Mbps\n"
      (Stripe_metrics.Throughput.mbps sink.goodput);
    (match monitor with
    | Some m ->
      out
        "chaos: %d actions (last event index %d)  tx-crash-dropped: %d  \
         rx-crash-dropped: %d\n"
        (List.length chaos_actions)
        !last_chaos_event !tx_crash_drops !rx_crash_drops;
      out "monitors: violations=%d inversions=%d events-seen=%d\n"
        (Obs.Monitor.violations m)
        (Obs.Monitor.seq_inversions m)
        (Obs.Monitor.events_seen m);
      (match Obs.Monitor.first_violation m with
      | Some (t, msg) ->
        out "MONITOR VIOLATION at t=%.3f (seed %d, chaos event %d): %s\n"
          t seed !last_chaos_event msg
      | None -> ())
    | None -> ());
    if fault_actions <> [] || crash_at <> None || chaos_actions <> [] then begin
      let end_ = Sim.now sim in
      out
        "availability: %.1f%% of 10 ms slots  longest outage: %.1f ms\n"
        (100.0
        *. Stripe_metrics.Recovery.availability sink.recovery ~from_:0.0
             ~until_:end_ ~bucket:0.01)
        (1000.0
        *. Stripe_metrics.Recovery.max_gap sink.recovery ~from_:0.0
             ~until_:end_)
    end;
    (match !errors_stop with
    | Some t -> (
      match Stripe_metrics.Recovery.resync_time sink.recovery ~errors_stop:t with
      | Some dt ->
        out "resync after losses stopped: %.2f ms\n" (1000.0 *. dt)
      | None -> out "stream did not resynchronize\n")
    | None -> ());
    (match obs_counters with
    | Some c ->
      out "\n%s\n" (Stripe_metrics.Table.render (Stripe_metrics.Channel_report.table c));
      out "trace: %d events, %d rounds, %d resets -> %s\n"
        (Obs.Counters.events_seen c) (Obs.Counters.rounds c)
        (Obs.Counters.resets c)
        (Option.value trace_out ~default:"-")
    | None -> ());
    obs_close ();
    {
      text = Buffer.contents buf;
      delivered = Reorder.observed sink.reorder;
      ooo = Reorder.out_of_order sink.reorder;
      goodput_mbps = Stripe_metrics.Throughput.mbps sink.goodput;
      verdict = Option.map Obs.Monitor.verdict monitor;
      counters = obs_counters;
    }
    in
    let domains = Stripe_fleet.Sharded_pool.resolve_domains domains in
    if domains = 1 then begin
      let r = run_replica ~replica:0 ~seed ~trace_out () in
      print_string r.text;
      `Ok ()
    end
    else begin
      (* N independent replicas of the scenario, one per domain: replica
         0 keeps the master seed (and the --trace path), the others draw
         their seeds from indexed substreams and write FILE.dK traces.
         Each replica's report prints whole, then a merged summary. *)
      let rseed k =
        if k = 0 then seed else Rng.int (Rng.stream ~seed k) 0x3FFFFFFF
      in
      let trace_for k =
        Option.map
          (fun p -> if k = 0 then p else Printf.sprintf "%s.d%d" p k)
          trace_out
      in
      let replica k () =
        run_replica ~replica:k ~seed:(rseed k) ~trace_out:(trace_for k) ()
      in
      let joins =
        Array.init (domains - 1) (fun i -> Domain.spawn (replica (i + 1)))
      in
      let rs = Array.append [| replica 0 () |] (Array.map Domain.join joins) in
      Array.iteri
        (fun k r ->
          Printf.printf "=== replica %d (seed %d) ===\n%s" k (rseed k) r.text)
        rs;
      Printf.printf "=== merged (%d domains) ===\n" domains;
      Printf.printf
        "delivered: %d  out-of-order: %d  aggregate goodput: %.2f Mbps\n"
        (Array.fold_left (fun a r -> a + r.delivered) 0 rs)
        (Array.fold_left (fun a r -> a + r.ooo) 0 rs)
        (Array.fold_left (fun a r -> a +. r.goodput_mbps) 0.0 rs);
      (match Array.to_list rs |> List.filter_map (fun r -> r.verdict) with
      | [] -> ()
      | vs ->
        let v = Stripe_obs.Monitor.merged_verdict vs in
        Printf.printf "monitors: violations=%d inversions=%d events-seen=%d\n"
          v.Stripe_obs.Monitor.violations v.seq_inversions v.events_seen;
        (match v.first_violation with
        | Some (t, msg) ->
          Printf.printf "MONITOR VIOLATION at t=%.3f: %s\n" t msg
        | None -> ()));
      (match Array.to_list rs |> List.filter_map (fun r -> r.counters) with
      | [] -> ()
      | regs ->
        print_newline ();
        Stripe_metrics.Table.print
          (Stripe_metrics.Channel_report.merged_table ~title:"all replicas"
             regs));
      `Ok ()
    end
  end

let cmd =
  let doc = "simulate reliable and scalable channel striping (SIGCOMM 1996)" in
  let info = Cmd.info "stripe-sim" ~version:"1.0.0" ~doc in
  Cmd.v info
    Term.(
      ret
        (const run $ channels $ scheduler_arg $ mode_arg $ packets $ workload
       $ markers $ loss_stop $ seed $ engine_arg $ replay_file $ trace_out
       $ trace_format $ fault_specs $ impair_specs $ chaos_specs $ guard_window
       $ rx_buffer $ overflow_policy $ crash_at $ watchdog_k $ no_auto_suspend
       $ adapt_interval $ adapt_band $ health_spec $ domains_arg))

let () = exit (Cmd.eval cmd)
