(* Gray-failure experiment: channel 1 of a 3 x 10 Mbps SRR bundle does
   not die — it gets {e worse}. From t=1.0 s to t=3.0 s a Gilbert–
   Elliott loss process (bursty, ~45% mean loss) sits on the link while
   carrier stays up, so the §5/§8 failure machinery (carrier watchers,
   crash barriers) never triggers. Three protection levels are compared
   against a clean baseline:

   - none:      the base protocol; the striper keeps feeding the gray
                member and delivery blocks on every burst until markers
                resynchronize (Thm 5.1);
   - watchdog:  the receiver's marker-cadence watchdog skips the channel
                whenever a burst swallows its markers, restoring service
                but still losing everything striped into the gray link;
   - health:    the watchdog plus the PROTOCOL.md §13 health engine: a
                periodic tick fuses per-channel loss and goodput
                evidence, cuts the member's quantum at a round boundary
                on probation, quarantines it through suspend + the §5
                reset barrier when evidence worsens, and reinstates it
                on a timed exponential backoff that the still-gray link
                flaps back into quarantine — until the episode ends and
                the member recovers to full quantum.

   Reported per configuration: deliveries, goodput retained against the
   clean baseline, misordering, watchdog skips, quarantine entries and
   peak flap count, detection latency (gray onset to the engine's first
   transition), and liveness violations from the always-on monitor
   (the health engine must never zero the live membership).

   The whole scenario runs in virtual time on seeded randomness, so the
   numbers are deterministic — which makes them a CI gate. The binary
   itself enforces the §13 acceptance bar on every run: the health
   engine must retain strictly more goodput than the watchdog alone,
   with zero liveness violations.

     dune exec bench/exp_gray.exe --                  # table
     dune exec bench/exp_gray.exe -- --json FILE      # machine output
     dune exec bench/exp_gray.exe -- --check FILE [--max-regress F]
       # exit 1 if delivery/goodput drop, or detection latency
       # regresses, more than F (default 0.05) against FILE *)

open Stripe_netsim
open Stripe_packet
open Stripe_core

let n = 3
let gray_at = 1.0
let gray_stop = 3.0
let src_stop = 4.0
let run_end = 4.5
let tick_every = 0.05
let nominal_quantum = 4000
let max_packet = Sizes.large_packet

let gray_loss () =
  Loss.gilbert ~p_good_to_bad:0.1 ~p_bad_to_good:0.1 ~loss_good:0.02
    ~loss_bad:0.9

type outcome = {
  delivered : int;
  bytes : int;
  ooo : int;
  wd_skips : int;
  quarantines : int;
  flaps : int;
  detect_ms : float;  (* negative = the engine never reacted *)
  deferred : int;
  violations : int;
}

let run_config ~gray ~watchdog ~with_health () =
  let sim = Sim.create () in
  let master = Rng.create 9091 in
  let recovery = Stripe_metrics.Recovery.create () in
  let reorder = Reorder.create () in
  let delivered_bytes = ref 0 in
  let engine =
    Srr.create ~max_packet ~quanta:(Array.make n nominal_quantum) ()
  in
  let wd =
    if watchdog then Some { Resequencer.intervals = 3; fallback = 0.01 }
    else None
  in
  let reseq =
    Resequencer.create ~deficit:(Deficit.clone_initial engine)
      ~now:(fun () -> Sim.now sim)
      ?watchdog:wd
      ~deliver:(fun ~channel:_ pkt ->
        Stripe_metrics.Recovery.observe recovery ~now:(Sim.now sim)
          ~seq:pkt.Packet.seq;
        Reorder.observe reorder ~seq:pkt.Packet.seq;
        delivered_bytes := !delivered_bytes + pkt.Packet.size)
      ()
  in
  let links =
    Array.init n (fun i ->
        Link.create sim
          ~name:(Printf.sprintf "ch%d" i)
          ~rate_bps:10e6 ~prop_delay:0.002 ~rng:(Rng.split master)
          ~deliver:(fun pkt -> Resequencer.receive reseq ~channel:i pkt)
          ())
  in
  let striper =
    Striper.create
      ~scheduler:(Scheduler.of_deficit ~name:"SRR" engine)
      ~marker:(Marker.make ~every_rounds:4 ())
      ~now:(fun () -> Sim.now sim)
      ~emit:(fun ~channel pkt ->
        ignore (Link.send links.(channel) ~size:pkt.Packet.size pkt))
      ()
  in
  if gray then begin
    Sim.schedule sim ~at:gray_at (fun () ->
        Link.set_loss links.(1) (gray_loss ()));
    Sim.schedule sim ~at:gray_stop (fun () ->
        Link.set_loss links.(1) (Loss.none ()))
  end;
  let monitor = Stripe_obs.Monitor.create ~live_channels:n () in
  let quarantines = ref 0 in
  let max_flaps = ref 0 in
  let detect_at = ref (-1.0) in
  let health =
    if not with_health then None
    else begin
      let h =
        Health.create
          ~live:(fun c -> c >= 0 && c < n && Link.is_up links.(c))
          ~sink:(Stripe_obs.Monitor.sink monitor)
          ~n ()
      in
      let nominal = Array.make n nominal_quantum in
      let last_sent = Array.make n 0 in
      let last_lost = Array.make n 0 in
      let last_sb = Array.make n 0 in
      let last_db = Array.make n 0 in
      let staged = ref (Array.copy nominal) in
      let rec tick () =
        (* Harvest the window's per-channel evidence: wire loss rate and
           the goodput ratio (delivered/sent bytes — in-flight packets
           cost a few percent, well under the suspect line). *)
        for c = 0 to n - 1 do
          let ds = Link.sent_packets links.(c) - last_sent.(c) in
          let dl = Link.lost_packets links.(c) - last_lost.(c) in
          let dsb = Link.sent_bytes links.(c) - last_sb.(c) in
          let ddb = Link.delivered_bytes links.(c) - last_db.(c) in
          last_sent.(c) <- Link.sent_packets links.(c);
          last_lost.(c) <- Link.lost_packets links.(c);
          last_sb.(c) <- Link.sent_bytes links.(c);
          last_db.(c) <- Link.delivered_bytes links.(c);
          if ds > 0 || dl > 0 then
            Health.observe h ~channel:c ~sent:ds ~lost:dl
              ~goodput_ratio:
                (if dsb > 0 then
                   Float.min 1.0 (float_of_int ddb /. float_of_int dsb)
                 else 1.0)
              ()
        done;
        let now = Sim.now sim in
        let trs = Health.sample h ~now in
        if trs <> [] && !detect_at < 0.0 && now >= gray_at then
          detect_at := now;
        List.iter
          (function
            | Health.To_quarantine { channel; _ } ->
              incr quarantines;
              if Health.flaps h channel > !max_flaps then
                max_flaps := Health.flaps h channel;
              Striper.suspend_channel striper channel
            | Health.To_probation { channel; from_quarantine = true } ->
              (* Timed reinstatement probe: resume rides the §5 reset
                 barrier (default [?reset]). *)
              Striper.resume_channel striper channel
            | Health.To_suspect _ | Health.To_probation _ | Health.To_healthy _
              -> ())
          trs;
        (* Apply the states' quantum demands at a round boundary, floored
           at the max packet so probation keeps the Thm 5.1 marker
           precondition. A pending transition defers to the next tick. *)
        let target =
          Array.mapi
            (fun c q ->
              let s = Health.quantum_scale h c in
              if s <= 0.0 || s >= 1.0 then q
              else max max_packet (int_of_float (float_of_int q *. s)))
            nominal
        in
        if target <> !staged && not (Resequencer.transition_pending reseq)
        then begin
          staged := target;
          Resequencer.retune reseq ~quanta:target;
          Striper.retune striper ~quanta:target ()
        end;
        if now < run_end then Sim.schedule_after sim ~delay:tick_every tick
      in
      Sim.schedule sim ~at:tick_every tick;
      Some h
    end
  in
  (* Paced bimodal source at ~53% of the healthy aggregate — the two
     survivors can carry all of it when the gray member is out. *)
  let rng = Rng.create 77 in
  let gen =
    Stripe_workload.Genpkt.bimodal ~rng ~small:Sizes.small_packet
      ~large:Sizes.large_packet ()
  in
  let seq = ref 0 in
  let rec drive () =
    if Sim.now sim < src_stop then begin
      for _ = 1 to 2 do
        Striper.push striper
          (Packet.data ~seq:!seq ~born:(Sim.now sim) ~size:(gen ()) ());
        incr seq
      done;
      Sim.schedule_after sim ~delay:0.0006 drive
    end
  in
  drive ();
  Sim.run sim;
  {
    delivered = Stripe_metrics.Recovery.deliveries recovery;
    bytes = !delivered_bytes;
    ooo = Reorder.out_of_order reorder;
    wd_skips = Resequencer.watchdog_skips reseq;
    quarantines = !quarantines;
    flaps = !max_flaps;
    detect_ms =
      (if !detect_at < 0.0 then -1.0 else 1000.0 *. (!detect_at -. gray_at));
    deferred = (match health with Some h -> Health.deferred_quarantines h | None -> 0);
    violations = Stripe_obs.Monitor.violations monitor;
  }

type result = { slug : string; label : string; retained : float; o : outcome }

let configs =
  [
    ("clean", "clean baseline (no gray)", false, false, false);
    ("none", "no protection", true, false, false);
    ("watchdog", "receiver watchdog", true, true, false);
    ("health", "health engine + watchdog", true, true, true);
  ]

let fmt_ms v = if v < 0.0 then "never" else Printf.sprintf "%.1f" v

let print_table results =
  let tbl =
    Stripe_metrics.Table.create ~title:"Gray-failure protection"
      ~columns:
        [
          "configuration"; "delivered"; "goodput"; "ooo"; "wd skips"; "quar";
          "flaps"; "detect (ms)"; "viol";
        ]
  in
  List.iter
    (fun r ->
      Stripe_metrics.Table.add_row tbl
        [
          r.label;
          string_of_int r.o.delivered;
          Printf.sprintf "%.1f%%" (100.0 *. r.retained);
          string_of_int r.o.ooo;
          string_of_int r.o.wd_skips;
          string_of_int r.o.quarantines;
          string_of_int r.o.flaps;
          fmt_ms r.o.detect_ms;
          string_of_int r.o.violations;
        ])
    results;
  Stripe_metrics.Table.print tbl;
  print_endline
    "A gray member defeats fail-stop protection: carrier never drops, so";
  print_endline
    "only the evidence — bursty loss, goodput shortfall — gives it away.";
  print_endline
    "Unprotected, every burst stalls logical reception until the next";
  print_endline
    "marker; the watchdog restores service but the striper keeps paying";
  print_endline
    "the gray link's loss rate on a third of the traffic. The health";
  print_endline
    "engine detects within a few evidence windows, cuts the member's";
  print_endline
    "quantum on probation, quarantines it outright as evidence worsens,";
  print_endline
    "and probes it back on an exponential backoff — each flap doubling";
  print_endline
    "the wait — until the episode ends and the member earns its full";
  print_endline
    "quantum back. The last-live-channel guard and the liveness monitor";
  print_endline "agree throughout: the bundle never heals itself to death.\n"

let json_of_result r =
  Printf.sprintf
    "{\"config\":\"%s\",\"delivered\":%d,\"retained\":%.4f,\"ooo\":%d,\"wd_skips\":%d,\"quarantines\":%d,\"flaps\":%d,\"detect_ms\":%.3f,\"deferred\":%d,\"violations\":%d}"
    r.slug r.o.delivered r.retained r.o.ooo r.o.wd_skips r.o.quarantines
    r.o.flaps r.o.detect_ms r.o.deferred r.o.violations

(* Same minimal committed-JSON scanner as exp_failover: find
   "FIELD":NUMBER after a "config":"SLUG" tag. *)
let scan_number ~slug ~field path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  let find needle from =
    let nl = String.length needle and sl = String.length s in
    let rec go i =
      if i + nl > sl then None
      else if String.sub s i nl = needle then Some (i + nl)
      else go (i + 1)
    in
    go from
  in
  match find (Printf.sprintf "\"config\":\"%s\"" slug) 0 with
  | None -> None
  | Some after_tag -> (
    match find (Printf.sprintf "\"%s\":" field) after_tag with
    | None -> None
    | Some p ->
      let stop = ref p in
      while
        !stop < String.length s
        && (match s.[!stop] with
           | '0' .. '9' | '.' | '-' | 'e' | 'E' | '+' -> true
           | _ -> false)
      do
        incr stop
      done;
      float_of_string_opt (String.sub s p (!stop - p)))

let check ~max_regress ~file results =
  if not (Sys.file_exists file) then begin
    Printf.eprintf
      "  FAIL: baseline file %s does not exist — regenerate it with --json %s \
       and commit it\n"
      file file;
    exit 1
  end;
  let fail = ref false in
  let lookup slug field =
    match scan_number ~slug ~field file with
    | Some v -> v
    | None ->
      Printf.eprintf
        "  FAIL: no committed \"%s\" entry for config \"%s\" in %s — \
         regenerate the baseline with --json\n"
        field slug file;
      fail := true;
      Float.nan
  in
  let check_lower slug what current committed =
    if Float.is_nan committed then ()
    else begin
      let floor = committed *. (1.0 -. max_regress) in
      Printf.printf
        "  check %-10s %-12s %10.3f vs committed %10.3f (floor %.3f)\n" slug
        what current committed floor;
      if current < floor then begin
        Printf.eprintf "  FAIL: %s %s regressed (%.3f < %.3f)\n" slug what
          current floor;
        fail := true
      end
    end
  in
  let check_time slug what current committed =
    if Float.is_nan committed then ()
    else if committed < 0.0 then
      Printf.printf "  check %-10s %-12s %10s vs committed never\n" slug what
        (fmt_ms current)
    else begin
      let ceiling = (committed *. (1.0 +. max_regress)) +. 1.0 in
      Printf.printf
        "  check %-10s %-12s %10.3f vs committed %10.3f (ceiling %.3f)\n" slug
        what current committed ceiling;
      if current < 0.0 || current > ceiling then begin
        Printf.eprintf "  FAIL: %s %s regressed (%s > %.3f ms)\n" slug what
          (fmt_ms current) ceiling;
        fail := true
      end
    end
  in
  List.iter
    (fun r ->
      check_lower r.slug "delivered" (float_of_int r.o.delivered)
        (lookup r.slug "delivered");
      check_lower r.slug "retained" r.retained (lookup r.slug "retained");
      check_time r.slug "detect_ms" r.o.detect_ms (lookup r.slug "detect_ms"))
    results;
  if !fail then exit 1

let () =
  let json_out = ref None in
  let check_file = ref None in
  let max_regress = ref 0.05 in
  let rec parse = function
    | [] -> ()
    | "--json" :: file :: rest ->
      json_out := Some file;
      parse rest
    | "--check" :: file :: rest ->
      check_file := Some file;
      parse rest
    | "--max-regress" :: v :: rest ->
      max_regress := float_of_string v;
      parse rest
    | arg :: _ ->
      Printf.eprintf
        "usage: exp_gray [--json FILE] [--check FILE] [--max-regress F] (got \
         %s)\n"
        arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  print_endline
    "Gray failure - channel 1 at ~45% bursty loss 1.0-3.0 s, carrier up (3 x \
     10 Mbps SRR, markers every 4 rounds)";
  let results =
    let raw =
      List.map
        (fun (slug, label, gray, watchdog, with_health) ->
          (slug, label, run_config ~gray ~watchdog ~with_health ()))
        configs
    in
    let clean_bytes =
      match raw with (_, _, o) :: _ -> float_of_int o.bytes | [] -> 1.0
    in
    List.map
      (fun (slug, label, o) ->
        { slug; label; retained = float_of_int o.bytes /. clean_bytes; o })
      raw
  in
  print_table results;
  (* The §13 acceptance bar holds on every run, not just --check: the
     health engine must strictly beat the watchdog alone, and self-
     healing must never zero the live membership. *)
  let find slug = List.find (fun r -> r.slug = slug) results in
  let health = find "health" and watchdog = find "watchdog" in
  if health.retained <= watchdog.retained then begin
    Printf.eprintf
      "  FAIL: health engine retained %.4f <= watchdog-only %.4f\n"
      health.retained watchdog.retained;
    exit 1
  end;
  List.iter
    (fun r ->
      if r.o.violations > 0 then begin
        Printf.eprintf "  FAIL: %s saw %d liveness violations\n" r.slug
          r.o.violations;
        exit 1
      end)
    results;
  (match !json_out with
  | None -> ()
  | Some file ->
    let oc = open_out file in
    Printf.fprintf oc
      "{\n\
      \  \"scenario\": \"gray failure: 3x10Mbps SRR markers=4, channel 1 \
       Gilbert ~45%% loss 1.0-3.0s carrier up, 53%% offered load\",\n\
      \  \"configs\": [\n    %s\n  ]\n\
       }\n"
      (String.concat ",\n    " (List.map json_of_result results));
    close_out oc;
    Printf.printf "  wrote %s\n%!" file);
  match !check_file with
  | None -> ()
  | Some file -> check ~max_regress:!max_regress ~file results
