(* B2: microbenchmarks of per-packet protocol costs with Bechamel. The
   paper argues SRR "requires only a few more instructions than the
   normal amount of processing needed to send a packet" and that the
   marker protocol "only involves keeping a counter and sending a
   marker" - these timings quantify that claim on today's hardware. *)

open Bechamel
open Toolkit

let deficit_bench name make =
  Test.make ~name
    (Staged.stage (fun () ->
         let d = make () in
         for _ = 1 to 256 do
           ignore (Stripe_core.Deficit.select d);
           Stripe_core.Deficit.consume d ~size:700
         done))

(* Round trip through striper + resequencer, parameterized on the
   observability sink: the null-sink run must cost the same as the
   unobserved baseline (call sites skip event construction entirely when
   the sink is inactive), while the counters run prices full telemetry. *)
let round_trip_bench ~name ~sink =
  Test.make ~name
    (Staged.stage (fun () ->
         let engine = Stripe_core.Srr.create ~quanta:[| 1500; 1500; 1500 |] () in
         let sink = sink () in
         let reseq =
           Stripe_core.Resequencer.create
             ~deficit:(Stripe_core.Deficit.clone_initial engine)
             ~sink
             ~deliver:(fun ~channel:_ _ -> ())
             ()
         in
         let striper =
           Stripe_core.Striper.create
             ~scheduler:(Stripe_core.Scheduler.of_deficit ~name:"SRR" engine)
             ~sink
             ~emit:(fun ~channel pkt ->
               Stripe_core.Resequencer.receive reseq ~channel pkt)
             ()
         in
         for seq = 0 to 255 do
           Stripe_core.Striper.push striper
             (Stripe_packet.Packet.data ~seq ~size:700 ())
         done))

let striper_resequencer_bench =
  round_trip_bench ~name:"striper+resequencer round trip, null sink (256 pkts)"
    ~sink:(fun () -> Stripe_obs.Sink.null)

let counters_sink_bench =
  round_trip_bench ~name:"round trip, counters sink (256 pkts)" ~sink:(fun () ->
      Stripe_obs.Counters.sink (Stripe_obs.Counters.create ~n:3))

let marker_bench =
  Test.make ~name:"marker emission + processing (256 pkts, every round)"
    (Staged.stage (fun () ->
         let engine = Stripe_core.Srr.create ~quanta:[| 1500; 1500 |] () in
         let reseq =
           Stripe_core.Resequencer.create
             ~deficit:(Stripe_core.Deficit.clone_initial engine)
             ~deliver:(fun ~channel:_ _ -> ())
             ()
         in
         let striper =
           Stripe_core.Striper.create
             ~scheduler:(Stripe_core.Scheduler.of_deficit ~name:"SRR" engine)
             ~marker:(Stripe_core.Marker.make ~every_rounds:1 ())
             ~emit:(fun ~channel pkt ->
               Stripe_core.Resequencer.receive reseq ~channel pkt)
             ()
         in
         for seq = 0 to 255 do
           Stripe_core.Striper.push striper
             (Stripe_packet.Packet.data ~seq ~size:700 ())
         done))

let seq_resequencer_bench =
  Test.make ~name:"seq-mode round trip, fast path (256 pkts)"
    (Staged.stage (fun () ->
         let engine = Stripe_core.Srr.create ~quanta:[| 1500; 1500 |] () in
         let reseq =
           Stripe_core.Seq_resequencer.create
             ~deficit:(Stripe_core.Deficit.clone_initial engine)
             ~n_channels:2
             ~deliver:(fun _ -> ())
             ()
         in
         let striper =
           Stripe_core.Striper.create
             ~scheduler:(Stripe_core.Scheduler.of_deficit ~name:"SRR" engine)
             ~emit:(fun ~channel pkt ->
               Stripe_core.Seq_resequencer.receive reseq ~channel pkt)
             ()
         in
         for seq = 0 to 255 do
           Stripe_core.Striper.push striper
             (Stripe_packet.Packet.data ~seq ~size:700 ())
         done))

let mppp_bench =
  Test.make ~name:"MPPP fragment+reassemble (256 pkts)"
    (Staged.stage (fun () ->
         let receiver = ref None in
         let sender =
           Stripe_core.Mppp.Sender.create
             ~scheduler:(Stripe_core.Scheduler.srr ~quanta:[| 1500; 1500 |] ())
             ~emit:(fun ~link f ->
               match !receiver with
               | Some r -> Stripe_core.Mppp.Receiver.receive r ~link f
               | None -> ())
             ()
         in
         receiver :=
           Some (Stripe_core.Mppp.Receiver.create ~n_links:2 ~deliver:(fun _ -> ()) ());
         for seq = 0 to 255 do
           Stripe_core.Mppp.Sender.push sender
             (Stripe_packet.Packet.data ~seq ~size:700 ())
         done))

let fragmenter_bench =
  Test.make ~name:"minipacket fragment+reassemble (256 pkts)"
    (Staged.stage (fun () ->
         let reasm = ref None in
         let sender =
           Stripe_core.Fragmenter.Sender.create ~shares:[| 1.0; 1.0 |]
             ~emit:(fun ~channel f ->
               match !reasm with
               | Some r -> Stripe_core.Fragmenter.Reassembler.receive r ~channel f
               | None -> ())
             ()
         in
         reasm :=
           Some
             (Stripe_core.Fragmenter.Reassembler.create ~n_channels:2
                ~deliver:(fun _ -> ())
                ());
         for seq = 0 to 255 do
           Stripe_core.Fragmenter.Sender.push sender
             (Stripe_packet.Packet.data ~seq ~size:700 ())
         done))

(* The fleet-churn event population is bimodal: a dense cluster of wire
   events within ~10 ms of now plus sparse bundle-lifetime timers
   seconds out. A span-derived calendar bucket width degenerates on this
   shape — the far timers stretch the span, the whole dense cluster
   lands in one bucket, and every insert pays a cluster-sized memmove —
   which is exactly the regression the quantile-derived width fixes.
   Each fired event reschedules itself with a fresh bimodal delay, so a
   steady ~4k-event population churns through schedule/pop pairs. *)
let event_queue_bench ~name ~engine =
  Test.make ~name
    (Staged.stage (fun () ->
         let sim = Stripe_netsim.Sim.create ~engine () in
         let rng = Stripe_netsim.Rng.create 9 in
         let bimodal_delay () =
           if Stripe_netsim.Rng.bernoulli rng ~p:0.9 then
             Stripe_netsim.Rng.exponential rng ~mean:0.01
           else Stripe_netsim.Rng.uniform rng ~lo:1.0 ~hi:5.0
         in
         let ops = ref 16_384 in
         let rec fire () =
           if !ops > 0 then begin
             decr ops;
             Stripe_netsim.Sim.schedule_after sim ~delay:(bimodal_delay ()) fire
           end
         in
         for _ = 1 to 4096 do
           Stripe_netsim.Sim.schedule_after sim ~delay:(bimodal_delay ()) fire
         done;
         Stripe_netsim.Sim.run sim))

let heap_churn_bench =
  event_queue_bench ~name:"event queue, bimodal churn population: heap (20k ev)"
    ~engine:Stripe_netsim.Sim.Heap

let calendar_churn_bench =
  event_queue_bench
    ~name:"event queue, bimodal churn population: calendar (20k ev)"
    ~engine:Stripe_netsim.Sim.Calendar

(* The go-back-N sender's outstanding set is a FIFO queue: appends at
   fill and prefix pops at each cumulative ACK are O(1), where the old
   list representation paid O(window) per segment. This prices the
   steady-state churn — a full window acknowledged one segment at a
   time. *)
let tcp_window_bench =
  Test.make ~name:"tcp_lite window churn, 64-seg window (256 acks)"
    (Staged.stage (fun () ->
         let sim = Stripe_netsim.Sim.create () in
         let tx =
           Stripe_transport.Tcp_lite.Sender.create sim ~window:64000
             ~next_segment_size:(fun () -> 1000)
             ~transmit:(fun ~off:_ ~size:_ -> ())
             ()
         in
         Stripe_transport.Tcp_lite.Sender.start tx;
         for k = 1 to 256 do
           Stripe_transport.Tcp_lite.Sender.on_ack tx (k * 1000)
         done;
         Stripe_transport.Tcp_lite.Sender.shutdown tx))

let tests =
  Test.make_grouped ~name:"per-packet costs"
    [
      deficit_bench "SRR select+consume x256" (fun () ->
          Stripe_core.Srr.create ~quanta:[| 1500; 1500; 1500; 1500 |] ());
      deficit_bench "RR select+consume x256" (fun () ->
          Stripe_core.Rr.create ~n:4 ());
      deficit_bench "GRR select+consume x256" (fun () ->
          Stripe_core.Grr.create ~ratios:[| 2; 1; 3; 1 |] ());
      striper_resequencer_bench;
      counters_sink_bench;
      marker_bench;
      seq_resequencer_bench;
      mppp_bench;
      fragmenter_bench;
      heap_churn_bench;
      calendar_churn_bench;
      tcp_window_bench;
    ]

let benchmark () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let raw_results = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  Analyze.merge ols instances results

let run () =
  Exp_common.section "B2 - per-packet scheduler cost microbenchmarks (Bechamel)";
  let results = benchmark () in
  Hashtbl.iter
    (fun measure_name result_by_test ->
      if measure_name = Measure.label Instance.monotonic_clock then
        Hashtbl.iter
          (fun test_name ols ->
            match Analyze.OLS.estimates ols with
            | Some [ est ] ->
              Printf.printf "  %-55s %10.1f ns/run (%.2f ns/pkt)\n" test_name est
                (est /. 256.0)
            | Some _ | None ->
              Printf.printf "  %-55s (no estimate)\n" test_name)
          result_by_test)
    results;
  print_newline ();
  print_endline
    "The SRR decision is tens of nanoseconds per packet - 'a few more";
  print_endline "instructions' over plain round robin, as the paper claims.\n"
