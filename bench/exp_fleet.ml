(* Many-bundle fleet benchmark: the scale gate.

   Reference scenario: a Bundle_pool of 4-channel SRR bundles
   (heterogeneous rates, markers every 4 rounds, logical reception)
   churned by a Poisson process — bundles arrive at a fixed rate, live
   an exponential lifetime, and die; a global Poisson packet process
   sprays bimodal data packets uniformly over whatever bundles are
   alive.

   The workload is generated once (a cheap protocol-free pass) and
   recorded into a [Stripe_fleet.Sharded_pool], which replays it across
   [--domains N] OCaml 5 domains, each shard carrying its slice of the
   fleet on its own Sim event loop (DESIGN.md §10). The partition is by
   pool slot, so the replay is bit-deterministic in the shard count:
   [--domains 1] reproduces the legacy single-pool run byte-identically
   (the BENCH_fleet.json anchor), and any N merges to the same
   delivered/markers/share numbers — only wall-clock changes.

   Reported:
   - aggregate pps: data packets delivered per wall-clock second across
     the fleet — the number the CI gate protects; with [--domains N],
     also per-shard pps and a scaling-efficiency line;
   - per-bundle fairness: every bundle runs the same configuration and
     sees the same arrival statistics, so delivered goodput normalized
     by lifetime should be equal across bundles. The p50/p99 of the
     relative share error |rate/mean - 1| measure how uniformly the
     engine serves 10k+ bundles through churn (the tail is dominated by
     short-lived bundles' Poisson variance, which is why the committed
     numbers carry it: a scheduling bug that starves recycled slots
     shows up as a p99 step).

   Usage:
     dune exec bench/exp_fleet.exe --                  # full run, table
     dune exec bench/exp_fleet.exe -- --quick          # 10k bundles
     dune exec bench/exp_fleet.exe -- --bundles 50000  # custom fleet
     dune exec bench/exp_fleet.exe -- --domains 4      # 4 shards (0 = auto)
     dune exec bench/exp_fleet.exe -- --json FILE      # machine output
     dune exec bench/exp_fleet.exe -- --check FILE --max-regress 0.30
       # CI gate: exit 1 if pps drops >30% below FILE's committed
       # numbers, or if the protocol aggregates (delivered, markers,
       # share p50/p99) drift from the committed single-domain anchor —
       # the latter holds for every --domains N, so a multicore run is
       # gated on aggregate equality, not wall-clock.

   Like exp_throughput, each engine runs [--repeat] times and the
   fastest run is reported (wall-clock noise is one-sided); the
   simulated behavior is seed-deterministic, so fairness numbers are
   identical across repeats, engines, and domain counts. *)

open Stripe_netsim
open Stripe_core
module Bundle_pool = Stripe_fleet.Bundle_pool
module Sharded_pool = Stripe_fleet.Sharded_pool

let reference_rates = [| 10e6; 10e6; 5e6; 2.5e6 |]
let reference_delays = [| 0.001; 0.002; 0.005; 0.010 |]
let reference_seed = 42

(* Churn process: steady-state population = arrival_rate * mean_life. *)
let arrival_rate = 2000.0 (* bundles per simulated second *)
let mean_life = 0.5 (* seconds *)
let packet_rate = 100_000.0 (* fleet-wide data packets per simulated second *)

(* Lifetimes shorter than this yield goodput estimates too noisy to
   count against the equal-share reference. *)
let min_measured_life = 0.02

type result = {
  engine : string;
  domains : int;
  bundles : int;
  peak_live : int;
  delivered : int;
  markers : int;
  wall_s : float;
  pps : float;
  share_p50 : float;
  share_p99 : float;
  sim_seconds : float;
  efficiency : float;
  shards : Sharded_pool.shard_report array;
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let i = int_of_float (p *. float_of_int (n - 1)) in
    sorted.(min (n - 1) (max 0 i))

let run_once ~engine ~total_bundles ~domains () =
  (* Generation pass: protocol-free, so it always runs on the heap
     engine of a private sim. The RNG stream structure and the dense
     live-table dynamics are identical to the legacy single-pool loop,
     so the recorded op tape is the exact op sequence that loop issued
     against its pool. *)
  let gsim = Sim.create ~engine:Sim.Heap () in
  let rng = Rng.create reference_seed in
  let arrivals_rng = Rng.split rng in
  let life_rng = Rng.split rng in
  let traffic_rng = Rng.split rng in
  let size_rng = Rng.split rng in
  let pool =
    Sharded_pool.create ~engine ~clock:Unix.gettimeofday ~domains
      ~seed:reference_seed
      {
        Bundle_pool.rate_bps = reference_rates;
        prop_delay = reference_delays;
        quanta =
          Srr.quanta_for_rates ~rates_bps:reference_rates ~quantum_unit:1500 ();
        marker_every = 4;
        guard = false;
        discipline = Bundle_pool.Srr;
      }
  in
  let gen_size = Stripe_workload.Genpkt.bimodal ~rng:size_rng ~small:200 ~large:1000 () in
  (* Dense table of live bundle ids for O(1) uniform picks; [pos] maps
     a slot id back to its dense index for swap-removal. *)
  let ids = ref (Array.make 1024 0) in
  let pos = ref (Array.make 1024 (-1)) in
  let n_ids = ref 0 in
  let add_live id =
    if !n_ids = Array.length !ids then begin
      let bigger = Array.make (2 * !n_ids) 0 in
      Array.blit !ids 0 bigger 0 !n_ids;
      ids := bigger
    end;
    !ids.(!n_ids) <- id;
    (if id >= Array.length !pos then begin
       let bigger = Array.make (2 * (id + 1)) (-1) in
       Array.blit !pos 0 bigger 0 (Array.length !pos);
       pos := bigger
     end);
    !pos.(id) <- !n_ids;
    incr n_ids
  in
  let remove_live id =
    let i = !pos.(id) in
    let last = !ids.(!n_ids - 1) in
    !ids.(i) <- last;
    !pos.(last) <- i;
    !pos.(id) <- -1;
    decr n_ids
  in
  let arrivals_done = ref false in
  let start_bundle () =
    let id = Sharded_pool.acquire pool ~at:(Sim.now gsim) in
    add_live id;
    let life = Rng.exponential life_rng ~mean:mean_life in
    Sim.schedule_after gsim ~delay:life (fun () ->
        remove_live id;
        Sharded_pool.release pool ~at:(Sim.now gsim) id)
  in
  let rec arrival_tick () =
    if Sharded_pool.total_acquired pool < total_bundles then begin
      start_bundle ();
      Sim.schedule_after gsim
        ~delay:(Rng.exponential arrivals_rng ~mean:(1.0 /. arrival_rate))
        arrival_tick
    end
    else arrivals_done := true
  in
  let rec traffic_tick () =
    (* The packet process outlives the arrival process just long enough
       to keep the tail population loaded; it stops once the last
       bundle has departed, letting the run drain to a natural end. *)
    if not (!arrivals_done && !n_ids = 0) then begin
      if !n_ids > 0 then begin
        let id = !ids.(Rng.int traffic_rng !n_ids) in
        Sharded_pool.push pool ~at:(Sim.now gsim) id ~size:(gen_size ())
      end;
      Sim.schedule_after gsim
        ~delay:(Rng.exponential traffic_rng ~mean:(1.0 /. packet_rate))
        traffic_tick
    end
  in
  (* Warm start at the steady-state population so the measured window
     is churn around equilibrium rather than a cold ramp. *)
  let steady = int_of_float (arrival_rate *. mean_life) in
  for _ = 1 to min steady total_bundles do
    start_bundle ()
  done;
  arrival_tick ();
  traffic_tick ();
  Sim.run gsim;
  Gc.compact ();
  let report = Sharded_pool.run pool in
  (* Internal merge consistency: the aggregate the report carries must
     equal the sum of its per-shard entries — always on, every run. *)
  let shard_sum f =
    Array.fold_left (fun acc s -> acc + f s) 0 report.Sharded_pool.shards
  in
  assert (
    report.Sharded_pool.delivered_packets
    = shard_sum (fun s -> s.Sharded_pool.delivered_packets)
    && report.Sharded_pool.markers_sent
       = shard_sum (fun s -> s.Sharded_pool.markers_sent));
  let shares = ref (Array.make 4096 0.0) in
  let n_shares = ref 0 in
  Array.iter
    (fun (g : Sharded_pool.gen_report) ->
      let life = g.death -. g.birth in
      if life >= min_measured_life then begin
        if !n_shares = Array.length !shares then begin
          let bigger = Array.make (2 * !n_shares) 0.0 in
          Array.blit !shares 0 bigger 0 !n_shares;
          shares := bigger
        end;
        !shares.(!n_shares) <- float_of_int g.delivered_bytes /. life;
        incr n_shares
      end)
    report.Sharded_pool.gens;
  let n = !n_shares in
  let errors =
    let s = Array.sub !shares 0 n in
    let mean = Array.fold_left ( +. ) 0.0 s /. float_of_int (max 1 n) in
    let e = Array.map (fun r -> Float.abs ((r /. mean) -. 1.0)) s in
    Array.sort compare e;
    e
  in
  {
    engine = Sim.engine_name engine;
    domains = report.Sharded_pool.domains;
    bundles = report.Sharded_pool.acquired;
    peak_live = report.Sharded_pool.peak_live;
    delivered = report.Sharded_pool.delivered_packets;
    markers = report.Sharded_pool.markers_sent;
    wall_s = report.Sharded_pool.wall_s;
    pps =
      float_of_int report.Sharded_pool.delivered_packets
      /. report.Sharded_pool.wall_s;
    share_p50 = percentile errors 0.50;
    share_p99 = percentile errors 0.99;
    sim_seconds = report.Sharded_pool.end_time;
    efficiency = report.Sharded_pool.efficiency;
    shards = report.Sharded_pool.shards;
  }

let quick_tag engine = engine ^ "-quick"
let domain_tag domains tag = Printf.sprintf "%s-d%d" tag domains

let json_of_shard (s : Sharded_pool.shard_report) =
  Printf.sprintf
    "{\"shard\":%d,\"slots\":%d,\"generations\":%d,\"delivered\":%d,\"markers\":%d,\"wall_s\":%.4f}"
    s.Sharded_pool.shard s.Sharded_pool.slots s.Sharded_pool.generations
    s.Sharded_pool.delivered_packets s.Sharded_pool.markers_sent
    s.Sharded_pool.wall_s

let json_of_result ?(tag = fun e -> e) r =
  let shard_part =
    if r.domains = 1 then ""
    else
      Printf.sprintf ",\"efficiency\":%.3f,\"shards\":[%s]" r.efficiency
        (String.concat ","
           (Array.to_list (Array.map json_of_shard r.shards)))
  in
  Printf.sprintf
    "{\"engine\":\"%s\",\"domains\":%d,\"bundles\":%d,\"peak_live\":%d,\"delivered\":%d,\"markers\":%d,\"wall_s\":%.4f,\"pps\":%.1f,\"share_p50\":%.4f,\"share_p99\":%.4f,\"sim_seconds\":%.4f%s}"
    (tag r.engine) r.domains r.bundles r.peak_live r.delivered r.markers
    r.wall_s r.pps r.share_p50 r.share_p99 r.sim_seconds shard_part

let print_result r =
  Printf.printf
    "  %-10s %6d bundles (peak %4d live)  %8d pkts  %6.3f s wall  %9.0f \
     pkts/s  share err p50 %.3f p99 %.3f\n\
     %!"
    r.engine r.bundles r.peak_live r.delivered r.wall_s r.pps r.share_p50
    r.share_p99;
  if r.domains > 1 then begin
    let pps_of (s : Sharded_pool.shard_report) =
      if s.Sharded_pool.wall_s > 0.0 then
        float_of_int s.Sharded_pool.delivered_packets /. s.Sharded_pool.wall_s
      else 0.0
    in
    Printf.printf "  %-10s %d domains: shard pps [%s]  efficiency %.0f%%\n%!" ""
      r.domains
      (String.concat " "
         (Array.to_list
            (Array.map (fun s -> Printf.sprintf "%.0fk" (pps_of s /. 1e3))
               r.shards)))
      (100.0 *. r.efficiency)
  end

(* Same minimal committed-JSON scanner as exp_throughput: find
   "FIELD":NUMBER after an "engine":"ENGINE" tag. *)
let scan_number ~engine ~field path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  let find needle from =
    let nl = String.length needle and sl = String.length s in
    let rec go i =
      if i + nl > sl then None
      else if String.sub s i nl = needle then Some (i + nl)
      else go (i + 1)
    in
    go from
  in
  match find (Printf.sprintf "\"engine\":\"%s\"" engine) 0 with
  | None -> None
  | Some after_tag -> (
    match find (Printf.sprintf "\"%s\":" field) after_tag with
    | None -> None
    | Some p ->
      let stop = ref p in
      while
        !stop < String.length s
        && (match s.[!stop] with
           | '0' .. '9' | '.' | '-' | 'e' | 'E' | '+' -> true
           | _ -> false)
      do
        incr stop
      done;
      float_of_string_opt (String.sub s p (!stop - p)))

let best_of ~repeat ~engine ~total_bundles ~domains () =
  let best = ref (run_once ~engine ~total_bundles ~domains ()) in
  for _ = 2 to repeat do
    let r = run_once ~engine ~total_bundles ~domains () in
    if r.pps > !best.pps then best := r
  done;
  !best

let quick_bundles = 10_000
let full_bundles = 25_000

let () =
  let quick = ref false in
  let bundles = ref None in
  let json_out = ref None in
  let check = ref None in
  let max_regress = ref 0.30 in
  let repeat = ref 3 in
  let domains = ref 1 in
  let engines = ref [ Sim.Heap; Sim.Calendar ] in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--bundles" :: v :: rest ->
      bundles := Some (int_of_string v);
      parse rest
    | "--repeat" :: v :: rest ->
      repeat := max 1 (int_of_string v);
      parse rest
    | "--domains" :: v :: rest ->
      domains := Sharded_pool.resolve_domains (int_of_string v);
      parse rest
    | "--json" :: file :: rest ->
      json_out := Some file;
      parse rest
    | "--check" :: file :: rest ->
      check := Some file;
      parse rest
    | "--max-regress" :: v :: rest ->
      max_regress := float_of_string v;
      parse rest
    | "--engine" :: "heap" :: rest ->
      engines := [ Sim.Heap ];
      parse rest
    | "--engine" :: "calendar" :: rest ->
      engines := [ Sim.Calendar ];
      parse rest
    | arg :: _ ->
      Printf.eprintf
        "usage: exp_fleet [--quick] [--bundles N] [--repeat N] [--domains N] \
         [--json FILE] [--check FILE] [--max-regress F] [--engine \
         heap|calendar] (got %s)\n"
        arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let domains = !domains in
  let total_bundles =
    match !bundles with
    | Some n -> n
    | None -> if !quick then quick_bundles else full_bundles
  in
  Printf.printf
    "exp_fleet: %d bundles x 4ch SRR markers=4, Poisson churn (%.0f/s, mean \
     life %.2fs), %.0fk pkts/s offered, %d domain%s, best of %d\n\
     %!"
    total_bundles arrival_rate mean_life
    (packet_rate /. 1000.0)
    domains
    (if domains = 1 then "" else "s")
    !repeat;
  let results =
    List.map
      (fun e -> best_of ~repeat:!repeat ~engine:e ~total_bundles ~domains ())
      !engines
  in
  List.iter print_result results;
  (* The committed anchor entries are single-domain; a multi-domain run
     tags its entries with the domain count and is gated purely on
     aggregate equality against the anchor. *)
  let base_tag r = if !quick then quick_tag r.engine else r.engine in
  let entry_tag r =
    let t = base_tag r in
    if r.domains = 1 then t else domain_tag r.domains t
  in
  (match !json_out with
  | None -> ()
  | Some file ->
    (* A full-run export also measures and embeds the quick size, so the
       committed file supports like-for-like [--quick --check] in CI. *)
    let quick_entries =
      if !quick then []
      else
        List.map
          (fun e ->
            let r =
              best_of ~repeat:!repeat ~engine:e ~total_bundles:quick_bundles
                ~domains ()
            in
            json_of_result
              ~tag:(fun _ -> entry_tag { r with engine = quick_tag r.engine })
              r)
          !engines
    in
    let entries =
      List.map (fun r -> json_of_result ~tag:(fun _ -> entry_tag r) r) results
      @ quick_entries
    in
    let oc = open_out file in
    Printf.fprintf oc
      "{\n\
      \  \"scenario\": \"bundle-pool fleet, 4ch SRR markers=4, poisson churn \
       2000/s life 0.5s, 100k pps offered\",\n\
      \  \"bundles\": %d,\n\
      \  \"engines\": [\n    %s\n  ]\n\
       }\n"
      total_bundles
      (String.concat ",\n    " entries);
    close_out oc;
    Printf.printf "  wrote %s\n%!" file);
  match !check with
  | None -> ()
  | Some file ->
    if not (Sys.file_exists file) then begin
      Printf.eprintf
        "  FAIL: baseline file %s does not exist — regenerate it with --json \
         %s and commit it\n"
        file file;
      exit 1
    end;
    let fail = ref false in
    List.iter
      (fun r ->
        let anchor = base_tag r in
        (* Wall-clock gate: single-domain only (CI runners may be
           single-core, so a sharded run's pps is not comparable). *)
        (if r.domains = 1 then
           match scan_number ~engine:anchor ~field:"pps" file with
           | None ->
             Printf.eprintf
               "  FAIL: no committed \"pps\" entry for engine \"%s\" in %s — \
                regenerate the baseline with --json\n"
               anchor file;
             fail := true
           | Some committed ->
             let floor = committed *. (1.0 -. !max_regress) in
             Printf.printf
               "  check %-16s %.0f pps vs committed %.0f (floor %.0f)\n" anchor
               r.pps committed floor;
             if r.pps < floor then begin
               Printf.eprintf
                 "  FAIL: %s regressed more than %.0f%% (%.0f < %.0f pps)\n"
                 anchor
                 (100.0 *. !max_regress)
                 r.pps floor;
               fail := true
             end);
        (* Determinism gate: the protocol aggregates must equal the
           committed single-domain anchor — for every domain count. *)
        let eq_int field actual =
          match scan_number ~engine:anchor ~field file with
          | None -> ()
          | Some committed ->
            if float_of_int actual <> committed then begin
              Printf.eprintf
                "  FAIL: %s (domains=%d): \"%s\" %d differs from committed \
                 anchor %.0f\n"
                anchor r.domains field actual committed;
              fail := true
            end
        in
        let eq_float field actual =
          match scan_number ~engine:anchor ~field file with
          | None -> ()
          | Some committed ->
            (* The committed JSON rounds to 4 decimals. *)
            if Float.abs (actual -. committed) > 5e-5 then begin
              Printf.eprintf
                "  FAIL: %s (domains=%d): \"%s\" %.4f differs from committed \
                 anchor %.4f\n"
                anchor r.domains field actual committed;
              fail := true
            end
        in
        eq_int "delivered" r.delivered;
        eq_int "markers" r.markers;
        eq_float "share_p50" r.share_p50;
        eq_float "share_p99" r.share_p99;
        if r.domains > 1 then
          Printf.printf
            "  check %-16s domains=%d aggregates match the single-domain \
             anchor\n"
            anchor r.domains)
      results;
    if !fail then exit 1
