(* Regenerates the paper's worked examples: the fair-queuing /
   load-sharing duality of Figures 2-3, the SRR traces with deficit
   counters of Figures 5-6, and the marker-recovery walkthrough of
   Figures 8-13. *)

open Stripe_core
open Stripe_packet

let paper_packets =
  [ (550, "a"); (200, "d"); (400, "e"); (150, "b"); (300, "c"); (400, "f") ]

let run_fig2_3 () =
  Exp_common.section
    "Figures 2 & 3 - fair queuing vs load sharing duality (quantum 500)";
  let cfq = Cfq.of_deficit ~name:"SRR" (fun () -> Srr.create ~quanta:[| 500; 500 |] ()) in
  let dispatch = Cfq.load_share cfq paper_packets in
  Printf.printf "Load sharing (Fig 3): input a d e b c f ->\n";
  List.iter
    (fun (ch, (size, id)) ->
      Printf.printf "  packet %s (%4d B) -> channel %d\n" id size (ch + 1))
    dispatch;
  let queues = Cfq.outputs_by_channel ~n:2 dispatch in
  Printf.printf "Fair queuing (Fig 2): serving those channel queues back:\n  ";
  (match Cfq.fair_queue cfq queues with
  | Some order ->
    List.iter (fun (_, (_, id)) -> Printf.printf "%s " id) order;
    print_newline ();
    let restored = List.map snd order = paper_packets in
    Printf.printf "Round-trip reproduces the input stream: %b\n" restored
  | None -> print_endline "  (left backlogged regime - unexpected)");
  print_newline ()

let run_fig5_6 () =
  Exp_common.section
    "Figures 5 & 6 - SRR deficit counter trace (two channels, quantum 500)";
  let d = Srr.create ~quanta:[| 500; 500 |] () in
  Deficit.set_hook d
    (Some
       (function
       | Deficit.Begin_visit { channel; round; dc } ->
         Printf.printf "  round %d: visit channel %d, DC+quantum = %d\n"
           (round + 1) (channel + 1) dc
       | Deficit.Consume { channel; round = _; dc_before; dc_after } ->
         Printf.printf "    send on channel %d: DC %d -> %d\n" (channel + 1)
           dc_before dc_after
       | Deficit.End_visit { channel; round; dc } ->
         Printf.printf "  round %d: leave channel %d with DC = %d\n" (round + 1)
           (channel + 1) dc
       | Deficit.New_round { round } ->
         Printf.printf "  --- start of round %d ---\n" (round + 1)
       | Deficit.Retune _ -> ()));
  List.iter
    (fun (size, id) ->
      let c = Deficit.select d in
      Printf.printf "  packet %s (%d B) assigned to channel %d\n" id size (c + 1);
      Deficit.consume d ~size)
    paper_packets;
  Deficit.set_hook d None;
  print_newline ()

let run_fig8_13 () =
  Exp_common.section
    "Figures 8-13 - marker recovery walkthrough (packet 7 lost on channel 1)";
  let engine = Srr.create ~quanta:[| 100; 100 |] () in
  let sched = Scheduler.of_deficit ~name:"SRR" engine in
  let delivered = ref [] in
  let reseq =
    Resequencer.create ~deficit:(Deficit.clone_initial engine)
      ~deliver:(fun ~channel:_ p -> delivered := (p.Packet.seq + 1) :: !delivered)
      ()
  in
  let wire = Queue.create () in
  let striper =
    Striper.create ~scheduler:sched
      ~marker:(Marker.make ~position:Marker.Round_end ~every_rounds:6 ())
      ~emit:(fun ~channel pkt -> Queue.add (channel, pkt) wire)
      ()
  in
  for seq = 0 to 17 do
    Striper.push striper (Packet.data ~seq ~size:100 ())
  done;
  Queue.iter
    (fun (channel, pkt) ->
      if Packet.is_marker pkt then begin
        let m = Packet.get_marker pkt in
        Printf.printf "  marker on channel %d carrying G=%d\n" (channel + 1)
          (m.Packet.m_round + 1);
        Resequencer.receive reseq ~channel pkt
      end
      else if pkt.Packet.seq = 6 then
        Printf.printf "  packet 7 LOST on channel %d\n" (channel + 1)
      else Resequencer.receive reseq ~channel pkt)
    wire;
  Printf.printf "Delivery order (paper: 1-6, 9, 8, 11, 10, 12, 13-18):\n  ";
  List.iter (Printf.printf "%d ") (List.rev !delivered);
  print_newline ();
  Printf.printf "Channel visits skipped by the marker rule: %d\n"
    (Resequencer.skips reseq);
  Printf.printf
    "FIFO restored from packet 13 on (one marker interval after the loss)\n\n"

let run () =
  run_fig2_3 ();
  run_fig5_6 ();
  run_fig8_13 ()
