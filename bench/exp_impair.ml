(* Impairment containment experiment: a 3 x 10 Mbps SRR bundle (markers
   every 4 rounds, ~80% offered load) where channel 1 violates the
   loss-only FIFO assumption — intra-channel reordering, duplication,
   wire corruption that mangles markers past the link CRC — in
   escalating combinations. Impairments stop at 1.5 s of a 2.0 s run so
   resynchronization (Theorem 5.1) can be measured.

   Each profile runs twice: with the resequencer exposed directly to the
   misbehaving channel, and with the channel guard in front (sequence
   tags: duplicate discard + bounded reorder restore + marker-checksum
   verification). Both receivers run under a finite byte budget, so the
   table also shows that memory stays bounded (peak <= budget) whatever
   the channel does.

   The whole scenario runs in virtual time on seeded randomness, so the
   containment metrics are deterministic — which makes them a CI gate:

     dune exec bench/exp_impair.exe --                  # table
     dune exec bench/exp_impair.exe -- --json FILE      # machine output
     dune exec bench/exp_impair.exe -- --check FILE [--max-regress F]
       # exit 1 if delivery drops, resync regresses more than F
       # (default 0.05) against FILE's committed numbers, or any run's
       # peak buffering exceeds the byte budget *)

open Stripe_netsim
open Stripe_packet
open Stripe_core

let n = 3
let impair_stop = 1.5
let run_until = 2.0
let budget = 64 * 1024
let guard_window = 48

type rig = {
  sim : Sim.t;
  striper : Striper.t;
  reseq : Resequencer.t;
  guard : Channel_guard.t option;
  recovery : Stripe_metrics.Recovery.t;
  reorder : Reorder.t;
}

let make_rig ~impair ~guarded () =
  let sim = Sim.create () in
  let master = Rng.create 4242 in
  let recovery = Stripe_metrics.Recovery.create () in
  let reorder = Reorder.create () in
  let engine = Srr.create ~quanta:(Array.make n 1500) () in
  let reseq =
    Resequencer.create ~deficit:(Deficit.clone_initial engine)
      ~now:(fun () -> Sim.now sim)
      ~budget_bytes:budget ~overflow:Resequencer.Drop_newest
      ~deliver:(fun ~channel:_ pkt ->
        Stripe_metrics.Recovery.observe recovery ~now:(Sim.now sim)
          ~seq:pkt.Packet.seq;
        Reorder.observe reorder ~seq:pkt.Packet.seq)
      ()
  in
  let guard =
    if guarded then
      Some
        (Channel_guard.create ~n ~window:guard_window
           ~now:(fun () -> Sim.now sim)
           ~deliver:(fun ~channel pkt -> Resequencer.receive reseq ~channel pkt)
           ())
    else None
  in
  let mangle_rng = Rng.split master in
  let links =
    Array.init n (fun i ->
        Link.create sim
          ~name:(Printf.sprintf "ch%d" i)
          ~rate_bps:10e6
          ~prop_delay:(0.002 +. (0.001 *. float_of_int i))
          ~rng:(Rng.split master)
          ~impair:(if i = 1 then impair else Impair.none)
          ~corrupt:(fun (tag, pkt) ->
            (* Only marker damage slips past the simulated CRC; corrupted
               data is dropped like loss. *)
            if Packet.is_marker pkt then
              Some
                (tag, Packet.mangle_marker ~salt:(Rng.int mangle_rng 0x3fffffff) pkt)
            else None)
          ~deliver:(fun (tag, pkt) ->
            match guard with
            | Some g -> Channel_guard.receive g ~channel:i ~tag pkt
            | None -> Resequencer.receive reseq ~channel:i pkt)
          ())
  in
  let tx_tags = Channel_guard.Tx.create ~n in
  let sched = Scheduler.of_deficit ~name:"SRR" engine in
  let striper =
    Striper.create ~scheduler:sched
      ~marker:(Marker.make ~every_rounds:4 ())
      ~now:(fun () -> Sim.now sim)
      ~emit:(fun ~channel pkt ->
        let tag =
          if guarded then Channel_guard.Tx.next_tag tx_tags ~channel else -1
        in
        ignore (Link.send links.(channel) ~size:pkt.Packet.size (tag, pkt)))
      ()
  in
  Sim.schedule sim ~at:impair_stop (fun () ->
      Array.iter (fun l -> Link.set_impairments l Impair.none) links);
  { sim; striper; reseq; guard; recovery; reorder }

(* Paced bimodal source at ~80% of the aggregate. *)
let drive rig =
  let rng = Rng.create 77 in
  let gen =
    Stripe_workload.Genpkt.bimodal ~rng ~small:Sizes.small_packet
      ~large:Sizes.large_packet ()
  in
  let seq = ref 0 in
  let rec tick () =
    if Sim.now rig.sim < run_until then begin
      for _ = 1 to 2 do
        Striper.push rig.striper
          (Packet.data ~seq:!seq ~born:(Sim.now rig.sim) ~size:(gen ()) ());
        incr seq
      done;
      Sim.schedule_after rig.sim ~delay:0.0006 tick
    end
  in
  tick ();
  fun () -> !seq

let profiles =
  [
    ("clean", "clean", Impair.none);
    ("reorder", "reorder", Impair.make ~reorder_p:0.2 ~reorder_window:0.01 ());
    ( "reorder_dup",
      "reorder+dup",
      Impair.make ~reorder_p:0.2 ~reorder_window:0.01 ~dup_p:0.05 () );
    ( "reorder_dup_corrupt",
      "reorder+dup+corrupt",
      Impair.make ~reorder_p:0.2 ~reorder_window:0.01 ~dup_p:0.05
        ~corrupt_p:0.02 () );
  ]

type result = {
  slug : string;  (* profile slug + "_raw" | "_guard" *)
  label : string;
  guarded : bool;
  delivered : int;
  rate : float;  (* delivered / offered; duplicates can push it past 1 *)
  ooo : int;
  dup_disc : int;
  crpt_disc : int;
  overflows : int;
  peak_buf : int;
  resync_ms : float;  (* negative = FIFO never restored *)
}

let run_config (profile_slug, label, impair) guarded =
  let rig = make_rig ~impair ~guarded () in
  let offered = drive rig in
  Sim.run rig.sim;
  (match rig.guard with Some g -> Channel_guard.flush g | None -> ());
  let offered = offered () in
  let delivered = Stripe_metrics.Recovery.deliveries rig.recovery in
  let resync_ms =
    match
      Stripe_metrics.Recovery.resync_time rig.recovery ~errors_stop:impair_stop
    with
    | Some dt -> 1000.0 *. dt
    | None -> -1.0
  in
  let dup_disc, crpt_disc =
    match rig.guard with
    | Some g ->
      ( Channel_guard.dup_discards g,
        Channel_guard.corrupt_discards g
        + Resequencer.corrupt_marker_discards rig.reseq )
    | None -> (0, Resequencer.corrupt_marker_discards rig.reseq)
  in
  {
    slug = profile_slug ^ if guarded then "_guard" else "_raw";
    label;
    guarded;
    delivered;
    rate = float_of_int delivered /. float_of_int offered;
    ooo = Reorder.out_of_order rig.reorder;
    dup_disc;
    crpt_disc;
    overflows = Resequencer.overflows rig.reseq;
    peak_buf = Resequencer.max_buffered_bytes rig.reseq;
    resync_ms;
  }

let fmt_ms v = if v < 0.0 then "never" else Printf.sprintf "%.1f" v

let print_table results =
  let tbl =
    Stripe_metrics.Table.create ~title:"Impairment containment"
      ~columns:
        [
          "impairment"; "guard"; "delivered"; "rate"; "ooo"; "dup disc";
          "crpt disc"; "ovfl"; "peak buf"; "resync (ms)";
        ]
  in
  List.iter
    (fun r ->
      Stripe_metrics.Table.add_row tbl
        [
          r.label;
          (if r.guarded then "yes" else "no");
          string_of_int r.delivered;
          Printf.sprintf "%.1f%%" (100.0 *. r.rate);
          string_of_int r.ooo;
          string_of_int r.dup_disc;
          string_of_int r.crpt_disc;
          string_of_int r.overflows;
          Printf.sprintf "%dB" r.peak_buf;
          fmt_ms r.resync_ms;
        ])
    results;
  Stripe_metrics.Table.print tbl;
  print_endline
    "The guard turns a lying channel back into the loss-only FIFO pipe the";
  print_endline
    "protocol assumes: duplicates are discarded by tag, reordering is undone";
  print_endline
    "within the hold window, and a marker whose checksum fails is dropped";
  print_endline
    "before its (round, DC) stamp can poison the receiver's simulation.";
  print_endline
    "Unguarded, duplicates inflate delivery past 100% and reordering defeats";
  print_endline
    "logical reception until the next marker. Corrupt-dropped data (damage";
  print_endline
    "the CRC does catch) leaves tag gaps the guard waits out for a hold";
  print_endline
    "window before declaring them plain loss - the containment delay shows";
  print_endline
    "up as buffer occupancy, which presses against the byte budget but never";
  print_endline
    "exceeds it. FIFO returns within a marker interval of the impairments";
  print_endline "stopping (Theorem 5.1).\n"

let json_of_result r =
  Printf.sprintf
    "{\"config\":\"%s\",\"delivered\":%d,\"rate\":%.4f,\"ooo\":%d,\"dup_disc\":%d,\"crpt_disc\":%d,\"overflows\":%d,\"peak_buf\":%d,\"resync_ms\":%.3f}"
    r.slug r.delivered r.rate r.ooo r.dup_disc r.crpt_disc r.overflows
    r.peak_buf r.resync_ms

(* Same minimal committed-JSON scanner as exp_failover: find
   "FIELD":NUMBER after a "config":"SLUG" tag. *)
let scan_number ~slug ~field path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  let find needle from =
    let nl = String.length needle and sl = String.length s in
    let rec go i =
      if i + nl > sl then None
      else if String.sub s i nl = needle then Some (i + nl)
      else go (i + 1)
    in
    go from
  in
  match find (Printf.sprintf "\"config\":\"%s\"" slug) 0 with
  | None -> None
  | Some after_tag -> (
    match find (Printf.sprintf "\"%s\":" field) after_tag with
    | None -> None
    | Some p ->
      let stop = ref p in
      while
        !stop < String.length s
        && (match s.[!stop] with
           | '0' .. '9' | '.' | '-' | 'e' | 'E' | '+' -> true
           | _ -> false)
      do
        incr stop
      done;
      float_of_string_opt (String.sub s p (!stop - p)))

(* The run is virtual-time deterministic, so a tight default tolerance
   holds; the slack absorbs deliberate small protocol changes without
   baseline churn. Resync times get 1 ms absolute headroom on top so a
   0 ms committed value does not demand exact zeros forever. The byte
   budget is a hard invariant, not a regression band: the resequencer
   may never buffer past it whatever channel 1 does. *)
let check ~max_regress ~file results =
  if not (Sys.file_exists file) then begin
    Printf.eprintf
      "  FAIL: baseline file %s does not exist — regenerate it with --json %s \
       and commit it\n"
      file file;
    exit 1
  end;
  let fail = ref false in
  let lookup slug field =
    match scan_number ~slug ~field file with
    | Some v -> v
    | None ->
      Printf.eprintf
        "  FAIL: no committed \"%s\" entry for config \"%s\" in %s — \
         regenerate the baseline with --json\n"
        field slug file;
      fail := true;
      Float.nan
  in
  let check_lower slug what current committed =
    if Float.is_nan committed then ()
    else begin
      let floor = committed *. (1.0 -. max_regress) in
      Printf.printf
        "  check %-26s %-12s %10.3f vs committed %10.3f (floor %.3f)\n" slug
        what current committed floor;
      if current < floor then begin
        Printf.eprintf "  FAIL: %s %s regressed (%.3f < %.3f)\n" slug what
          current floor;
        fail := true
      end
    end
  in
  let check_time slug what current committed =
    if Float.is_nan committed then ()
    else if committed < 0.0 then begin
      (* Committed "never": coming back at all is an improvement. *)
      Printf.printf "  check %-26s %-12s %10s vs committed never\n" slug what
        (fmt_ms current)
    end
    else begin
      let ceiling = (committed *. (1.0 +. max_regress)) +. 1.0 in
      Printf.printf
        "  check %-26s %-12s %10.3f vs committed %10.3f (ceiling %.3f)\n" slug
        what current committed ceiling;
      if current < 0.0 || current > ceiling then begin
        Printf.eprintf "  FAIL: %s %s regressed (%s > %.3f ms)\n" slug what
          (fmt_ms current) ceiling;
        fail := true
      end
    end
  in
  List.iter
    (fun r ->
      check_lower r.slug "delivered" (float_of_int r.delivered)
        (lookup r.slug "delivered");
      check_time r.slug "resync_ms" r.resync_ms (lookup r.slug "resync_ms");
      if r.peak_buf > budget then begin
        Printf.eprintf "  FAIL: %s peak buffering %dB exceeds the %dB budget\n"
          r.slug r.peak_buf budget;
        fail := true
      end)
    results;
  if !fail then exit 1

let () =
  let json_out = ref None in
  let check_file = ref None in
  let max_regress = ref 0.05 in
  let rec parse = function
    | [] -> ()
    | "--json" :: file :: rest ->
      json_out := Some file;
      parse rest
    | "--check" :: file :: rest ->
      check_file := Some file;
      parse rest
    | "--max-regress" :: v :: rest ->
      max_regress := float_of_string v;
      parse rest
    | arg :: _ ->
      Printf.eprintf
        "usage: exp_impair [--json FILE] [--check FILE] [--max-regress F] \
         (got %s)\n"
        arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  print_endline
    "Impairments - channel 1 reorders/duplicates/corrupts until 1.5 s (3 x 10 \
     Mbps SRR, markers every 4 rounds, 64 KiB receive budget)";
  let results =
    List.concat_map
      (fun profile -> List.map (run_config profile) [ false; true ])
      profiles
  in
  print_table results;
  (match !json_out with
  | None -> ()
  | Some file ->
    let oc = open_out file in
    Printf.fprintf oc
      "{\n\
      \  \"scenario\": \"impairments: 3x10Mbps SRR markers=4, channel 1 \
       reorder/dup/corrupt until 1.5s, 64KiB budget, 80%% offered load\",\n\
      \  \"configs\": [\n    %s\n  ]\n\
       }\n"
      (String.concat ",\n    " (List.map json_of_result results));
    close_out oc;
    Printf.printf "  wrote %s\n%!" file);
  match !check_file with
  | None -> ()
  | Some file -> check ~max_regress:!max_regress ~file results
