(* Impairment containment experiment: a 3 x 10 Mbps SRR bundle (markers
   every 4 rounds, ~80% offered load) where channel 1 violates the
   loss-only FIFO assumption — intra-channel reordering, duplication,
   wire corruption that mangles markers past the link CRC — in
   escalating combinations. Impairments stop at 1.5 s of a 2.0 s run so
   resynchronization (Theorem 5.1) can be measured.

   Each profile runs twice: with the resequencer exposed directly to the
   misbehaving channel, and with the channel guard in front (sequence
   tags: duplicate discard + bounded reorder restore + marker-checksum
   verification). Both receivers run under a finite byte budget, so the
   table also shows that memory stays bounded (peak <= budget) whatever
   the channel does. *)

open Stripe_netsim
open Stripe_packet
open Stripe_core

let n = 3
let impair_stop = 1.5
let run_until = 2.0
let budget = 64 * 1024
let guard_window = 48

type rig = {
  sim : Sim.t;
  striper : Striper.t;
  reseq : Resequencer.t;
  guard : Channel_guard.t option;
  recovery : Stripe_metrics.Recovery.t;
  reorder : Reorder.t;
}

let make_rig ~impair ~guarded () =
  let sim = Sim.create () in
  let master = Rng.create 4242 in
  let recovery = Stripe_metrics.Recovery.create () in
  let reorder = Reorder.create () in
  let engine = Srr.create ~quanta:(Array.make n 1500) () in
  let reseq =
    Resequencer.create ~deficit:(Deficit.clone_initial engine)
      ~now:(fun () -> Sim.now sim)
      ~budget_bytes:budget ~overflow:Resequencer.Drop_newest
      ~deliver:(fun ~channel:_ pkt ->
        Stripe_metrics.Recovery.observe recovery ~now:(Sim.now sim)
          ~seq:pkt.Packet.seq;
        Reorder.observe reorder ~seq:pkt.Packet.seq)
      ()
  in
  let guard =
    if guarded then
      Some
        (Channel_guard.create ~n ~window:guard_window
           ~now:(fun () -> Sim.now sim)
           ~deliver:(fun ~channel pkt -> Resequencer.receive reseq ~channel pkt)
           ())
    else None
  in
  let mangle_rng = Rng.split master in
  let links =
    Array.init n (fun i ->
        Link.create sim
          ~name:(Printf.sprintf "ch%d" i)
          ~rate_bps:10e6
          ~prop_delay:(0.002 +. (0.001 *. float_of_int i))
          ~rng:(Rng.split master)
          ~impair:(if i = 1 then impair else Impair.none)
          ~corrupt:(fun (tag, pkt) ->
            (* Only marker damage slips past the simulated CRC; corrupted
               data is dropped like loss. *)
            if Packet.is_marker pkt then
              Some
                (tag, Packet.mangle_marker ~salt:(Rng.int mangle_rng 0x3fffffff) pkt)
            else None)
          ~deliver:(fun (tag, pkt) ->
            match guard with
            | Some g -> Channel_guard.receive g ~channel:i ~tag pkt
            | None -> Resequencer.receive reseq ~channel:i pkt)
          ())
  in
  let tx_tags = Channel_guard.Tx.create ~n in
  let sched = Scheduler.of_deficit ~name:"SRR" engine in
  let striper =
    Striper.create ~scheduler:sched
      ~marker:(Marker.make ~every_rounds:4 ())
      ~now:(fun () -> Sim.now sim)
      ~emit:(fun ~channel pkt ->
        let tag =
          if guarded then Channel_guard.Tx.next_tag tx_tags ~channel else -1
        in
        ignore (Link.send links.(channel) ~size:pkt.Packet.size (tag, pkt)))
      ()
  in
  Sim.schedule sim ~at:impair_stop (fun () ->
      Array.iter (fun l -> Link.set_impairments l Impair.none) links);
  { sim; striper; reseq; guard; recovery; reorder }

(* Paced bimodal source at ~80% of the aggregate. *)
let drive rig =
  let rng = Rng.create 77 in
  let gen =
    Stripe_workload.Genpkt.bimodal ~rng ~small:Sizes.small_packet
      ~large:Sizes.large_packet ()
  in
  let seq = ref 0 in
  let rec tick () =
    if Sim.now rig.sim < run_until then begin
      for _ = 1 to 2 do
        Striper.push rig.striper
          (Packet.data ~seq:!seq ~born:(Sim.now rig.sim) ~size:(gen ()) ());
        incr seq
      done;
      Sim.schedule_after rig.sim ~delay:0.0006 tick
    end
  in
  tick ();
  fun () -> !seq

let profiles =
  [
    ("clean", Impair.none);
    ("reorder", Impair.make ~reorder_p:0.2 ~reorder_window:0.01 ());
    ( "reorder+dup",
      Impair.make ~reorder_p:0.2 ~reorder_window:0.01 ~dup_p:0.05 () );
    ( "reorder+dup+corrupt",
      Impair.make ~reorder_p:0.2 ~reorder_window:0.01 ~dup_p:0.05
        ~corrupt_p:0.02 () );
  ]

let run () =
  Exp_common.section
    "Impairments - channel 1 reorders/duplicates/corrupts until 1.5 s \
     (3 x 10 Mbps SRR, markers every 4 rounds, 64 KiB receive budget)";
  let tbl =
    Stripe_metrics.Table.create ~title:"Impairment containment"
      ~columns:
        [
          "impairment"; "guard"; "delivered"; "rate"; "ooo"; "dup disc";
          "crpt disc"; "ovfl"; "peak buf"; "resync (ms)";
        ]
  in
  List.iter
    (fun (label, impair) ->
      List.iter
        (fun guarded ->
          let rig = make_rig ~impair ~guarded () in
          let offered = drive rig in
          Sim.run rig.sim;
          (match rig.guard with Some g -> Channel_guard.flush g | None -> ());
          let offered = offered () in
          let delivered = Stripe_metrics.Recovery.deliveries rig.recovery in
          let resync =
            match
              Stripe_metrics.Recovery.resync_time rig.recovery
                ~errors_stop:impair_stop
            with
            | Some dt -> Printf.sprintf "%.1f" (1000.0 *. dt)
            | None -> "never"
          in
          let dup_disc, crpt_disc =
            match rig.guard with
            | Some g ->
              ( Channel_guard.dup_discards g,
                Channel_guard.corrupt_discards g
                + Resequencer.corrupt_marker_discards rig.reseq )
            | None -> (0, Resequencer.corrupt_marker_discards rig.reseq)
          in
          Stripe_metrics.Table.add_row tbl
            [
              label;
              (if guarded then "yes" else "no");
              string_of_int delivered;
              Printf.sprintf "%.1f%%"
                (100.0 *. float_of_int delivered /. float_of_int offered);
              string_of_int (Reorder.out_of_order rig.reorder);
              string_of_int dup_disc;
              string_of_int crpt_disc;
              string_of_int (Resequencer.overflows rig.reseq);
              Printf.sprintf "%dB" (Resequencer.max_buffered_bytes rig.reseq);
              resync;
            ])
        [ false; true ])
    profiles;
  Stripe_metrics.Table.print tbl;
  print_endline
    "The guard turns a lying channel back into the loss-only FIFO pipe the";
  print_endline
    "protocol assumes: duplicates are discarded by tag, reordering is undone";
  print_endline
    "within the hold window, and a marker whose checksum fails is dropped";
  print_endline
    "before its (round, DC) stamp can poison the receiver's simulation.";
  print_endline
    "Unguarded, duplicates inflate delivery past 100% and reordering defeats";
  print_endline
    "logical reception until the next marker. Corrupt-dropped data (damage";
  print_endline
    "the CRC does catch) leaves tag gaps the guard waits out for a hold";
  print_endline
    "window before declaring them plain loss - the containment delay shows";
  print_endline
    "up as buffer occupancy, which presses against the byte budget but never";
  print_endline
    "exceeds it. FIFO returns within a marker interval of the impairments";
  print_endline "stopping (Theorem 5.1).\n"
