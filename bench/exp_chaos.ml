(* Chaos soak: storm x fleet-size matrix with always-on invariant
   monitors.

   A static Bundle_pool fleet (4-channel SRR bundles, heterogeneous
   rates, markers every 4 rounds, sender-aware carrier tracking, the
   marker-cadence watchdog armed, [stamp_seq] FIFO monitoring on) is
   loaded by a fleet-wide Poisson packet process while a seeded
   [Chaos.random_plan] plays out against it: correlated carrier storms
   take shared-risk channel groups down across every bundle at once,
   and endpoint crashes kill one side of one bundle for a finite
   downtime (PROTOCOL.md §12).

   Monitored during and after the schedule:
   - FIFO: per-bundle delivered-sequence inversions are counted
     throughout and count as violations past the quiet line (last chaos
     event + drain grace) — chaos legally degrades delivery to
     quasi-FIFO while it drains (Thm 5.1), but afterwards order must be
     restored;
   - conservation, per bundle at quiescence:
       pushed = delivered + rx_pending + carrier_drops
                + receiver_down_drops + rx_epoch_discards + rx_wiped;
   - recovery: every crashed endpoint must deliver again after its
     restart; per-endpoint MTTR and availability come from the union of
     its actual outage intervals (overlap-aware, Recovery.mttr).

   Any violation or unrecovered endpoint fails the run loudly with the
   seed and the chaos event index to replay against.

   Usage:
     dune exec bench/exp_chaos.exe --                   # full matrix
     dune exec bench/exp_chaos.exe -- --quick           # one small cell
     dune exec bench/exp_chaos.exe -- --seed 7          # one seed
     dune exec bench/exp_chaos.exe -- --bundles 2000    # one fleet size
     dune exec bench/exp_chaos.exe -- --json FILE       # machine output
     dune exec bench/exp_chaos.exe -- --inject-violation
       # detection self-test: plant a violation, exit 0 iff it is caught *)

open Stripe_netsim
open Stripe_core
module Bundle_pool = Stripe_fleet.Bundle_pool
module Sharded_pool = Stripe_fleet.Sharded_pool
module Recovery = Stripe_metrics.Recovery
module Monitor = Stripe_obs.Monitor

let reference_rates = [| 10e6; 10e6; 5e6; 2.5e6 |]
let reference_delays = [| 0.001; 0.002; 0.005; 0.010 |]
let n_channels = Array.length reference_rates
let chaos_horizon = 1.5 (* storms/crashes are drawn inside [0, this) *)
let drain_grace = 0.4 (* quiet-line grace floor; scaled up per cell *)
let traffic_tail = 0.8 (* post-quiet traffic proving recovery *)
let packet_rate = 200_000.0 (* fleet-wide data packets per simulated second *)
let marker_every = 4
let wd_intervals = 4

(* Every recovery horizon in the receiver — watchdog death, barrier
   staleness, post-crash cold resync — is a small multiple of the
   per-bundle marker cadence, and that cadence scales inversely with the
   per-bundle packet rate: markers ride the data schedule (every
   [marker_every] rounds), so a 1200-bundle fleet sharing the same
   offered load has 4x the inter-marker time of a 300-bundle one. The
   watchdog fallback (the operator's "slowest expected cadence" knob)
   and the quiet line's drain grace must scale the same way or a large
   fleet flaps channels dead between markers and drains past the quiet
   line. *)
let cell_horizons ~quanta ~bundles =
  let round_bytes = Array.fold_left ( + ) 0 quanta in
  let mean_size = 600.0 (* bimodal 200/1000 traffic below *) in
  let per_bundle_rate = packet_rate /. float_of_int bundles in
  let cadence =
    float_of_int marker_every *. float_of_int round_bytes /. mean_size
    /. per_bundle_rate
  in
  let fallback = Float.max 0.05 cadence in
  let grace =
    Float.max drain_grace ((float_of_int wd_intervals +. 2.0) *. fallback)
  in
  (fallback, grace)

type profile = {
  pname : string;
  storm_every : float;
  crash_every : float;
  degrade_every : float;
}

(* Cells with gray degradations ([degrade_every] > 0) also run the §13
   health engine fleet-wide: one engine on the pool's shared wire
   counters — one gray link must not require one detection per bundle —
   with its Quarantine/Reinstate events feeding a liveness monitor. *)
let profiles =
  [
    { pname = "storms"; storm_every = 0.25; crash_every = 0.0; degrade_every = 0.0 };
    { pname = "crashes"; storm_every = 0.0; crash_every = 0.02; degrade_every = 0.0 };
    { pname = "degrades"; storm_every = 0.0; crash_every = 0.0; degrade_every = 0.06 };
    { pname = "mixed"; storm_every = 0.3; crash_every = 0.03; degrade_every = 0.1 };
  ]

type run = {
  tag : string;
  seed : int;
  bundles : int;
  chaos_events : int;
  delivered : int;
  carrier_drops : int;
  crashes : int;
  restarts : int;
  crashed_endpoints : int;
  recovered : int;
  mttr_ms : float; (* -1 when the run crashed nothing *)
  avail_mean : float;
  avail_min : float;
  inversions : int;
  violations : int;
  conservation_failures : int;
  wd_dead : int;
  quarantines : int;
  health_violations : int;
  failure : string option; (* diagnosis incl. seed + event index *)
}

let side_index = function Chaos.Tx -> 0 | Chaos.Rx -> 1

(* What one shard of a cell reports back to the merge barrier. With the
   whole fleet in one shard ([--domains 1]) this is exactly the legacy
   single-pool cell, and the merge of one shard is the identity. *)
type shard_out = {
  sr : run;  (* [tag] empty and [failure] = non-FIFO causes only *)
  violate_event : int;
  mttr_sum : float;
  avail_sum : float;
  first_viol : (float * int * int) option;  (* global bundle id *)
}

(* One shard: [locals] lists the global ids of the bundles it owns
   (local id = index in [locals]); [fleet] is the global fleet size the
   chaos plan and marker-cadence horizons are drawn against, so every
   shard sees the same plan and the same quiet-line grace. Bundle
   events for non-owned bundles are filtered at the driver; channel
   events apply everywhere (a storm hits every shard's channels, as it
   hit every bundle of the single pool). *)
let run_shard ~profile ~discipline ~fleet ~locals ~traffic_rate ~chaos_rng
    ~traffic_rng ~size_rng ~seed ~inject () =
  let bundles = Array.length locals in
  let local_of_global = Array.make (max 1 fleet) (-1) in
  Array.iteri (fun l g -> local_of_global.(g) <- l) locals;
  let sim = Sim.create () in
  let quanta =
    Srr.quanta_for_rates ~rates_bps:reference_rates ~quantum_unit:1500 ()
  in
  let wd_fallback, grace = cell_horizons ~quanta ~bundles:fleet in
  let health_on = profile.degrade_every > 0.0 in
  let health_monitor = Monitor.create ~live_channels:n_channels () in
  let pool =
    Bundle_pool.create ~stamp_seq:true
      ~watchdog:{ Resequencer.intervals = wd_intervals; fallback = wd_fallback }
      ?health:(if health_on then Some Health.default_config else None)
      ?health_sink:
        (if health_on then Some (Monitor.sink health_monitor) else None)
      ~sim
      {
        Bundle_pool.rate_bps = reference_rates;
        prop_delay = reference_delays;
        quanta;
        marker_every;
        guard = false;
        discipline;
      }
  in
  for _ = 1 to bundles do
    ignore (Bundle_pool.acquire pool)
  done;
  let plan =
    Chaos.random_plan ~rng:chaos_rng ~n_channels ~n_bundles:fleet
      ~horizon:chaos_horizon ~storm_every:profile.storm_every
      ~crash_every:profile.crash_every ~degrade_every:profile.degrade_every
      ~mean_outage:0.08 ~mean_downtime:0.08 ~mean_degrade:0.15 ()
  in
  let plan =
    if inject then
      plan @ [ Chaos.Violate { bundle = 0; at = chaos_horizon /. 2.0 } ]
    else plan
  in
  (* Actual (not planned) endpoint outages: overlapping planned crashes
     collapse onto the first crash/restart pair that really fired. *)
  let down_since = Array.init 2 (fun _ -> Array.make bundles Float.nan) in
  let outages = Array.init 2 (fun _ -> Array.make bundles []) in
  let last_restart = Array.init 2 (fun _ -> Array.make bundles Float.nan) in
  let driver =
    {
      Chaos.set_channel_up = (fun c up -> Bundle_pool.set_channel_up pool c up);
      crash =
        (fun side b ->
          let b = local_of_global.(b) in
          let s = side_index side in
          if b >= 0 && Float.is_nan down_since.(s).(b) then begin
            (match side with
            | Chaos.Tx -> Bundle_pool.crash_sender pool b
            | Chaos.Rx -> ignore (Bundle_pool.crash_receiver pool b));
            down_since.(s).(b) <- Sim.now sim
          end);
      restart =
        (fun side b ->
          let b = local_of_global.(b) in
          let s = side_index side in
          if b >= 0 && not (Float.is_nan down_since.(s).(b)) then begin
            (match side with
            | Chaos.Tx -> Bundle_pool.restart_sender pool b
            | Chaos.Rx -> Bundle_pool.restart_receiver pool b);
            outages.(s).(b) <-
              (down_since.(s).(b), Sim.now sim) :: outages.(s).(b);
            down_since.(s).(b) <- Float.nan;
            last_restart.(s).(b) <- Sim.now sim
          end);
      violate =
        (fun b ->
          let b = local_of_global.(b) in
          if b >= 0 then Bundle_pool.inject_violation pool b);
      set_loss = (fun c l -> Bundle_pool.set_channel_loss pool c l);
      scale_rate = (fun c f -> Bundle_pool.scale_channel_rate pool c f);
    }
  in
  let last_event = ref (-1) in
  let violate_event = ref (-1) in
  Chaos.apply sim
    ~on_event:(fun ~index ~time:_ what ->
      last_event := index;
      if String.length what >= 7 && String.sub what 0 7 = "violate" then
        violate_event := index)
    driver plan;
  (* Post-incident resync: a watchdog skip over packets that were merely
     delayed (a rate collapse) leaves their late copies as a buffered
     surplus the resequencer delivers at a constant quasi-FIFO offset
     forever — data packets carry no round identity, so only a §5 reset
     barrier expunges it. Fire one pool-wide once the fault horizon has
     passed; the surplus drains during barrier assembly, before the
     FIFO check arms. (Health cells get further resyncs for free: every
     health retune fires a slot reset across the pool.) *)
  let resync_at = Chaos.horizon plan +. 0.05 in
  Sim.schedule sim ~at:resync_at (fun () -> Bundle_pool.resync pool);
  (* The quiet line is dynamic, pushed out by whichever settles last:

     - Wire backlog. A rate collapse leaves serialization debt that
       drains long after its window (and long after the plan's horizon
       when storms concentrate load on the collapsed channel).
       Predicting the drain is hopeless; measuring it is easy: at each
       provisional quiet line, ask the pool for its latest scheduled
       wire departure and push the line out while real backlog — beyond
       a normal few packets of serialization — remains.

     - Health engine actions. Every transition — probation retunes,
       quarantine suspensions, backoff reinstatements — rides a §5
       barrier whose adoption is only quasi-FIFO (Thm 5.1), so the FIFO
       check cannot arm until a grace after the engine's LAST action.
       The engine must run to convergence, not be cut off at the chaos
       horizon: freezing it mid-probation freezes the scaled quanta,
       and a probation cut concentrates the open-loop offered load onto
       the surviving channels — past the slowest wire's capacity, so
       the backlog would grow without bound. Left running, the engine
       converges on its own once the faults clear: probation channels
       collect clean windows and recover, quarantined channels
       reinstate on their backoff and heal, quanta return to nominal,
       and the wire drains. *)
  let max_prop = Array.fold_left Float.max 0.0 reference_delays in
  let last_health_action = ref resync_at in
  let armed_quiet = ref infinity in
  let traffic_until = ref 0.0 in
  let rec arm_quiet q =
    armed_quiet := q;
    Bundle_pool.set_fifo_check_after pool q;
    if q +. traffic_tail > !traffic_until then
      traffic_until := q +. traffic_tail;
    Sim.schedule sim ~at:q (fun () ->
        if !armed_quiet = q then begin
          let busy_end = Bundle_pool.wire_busy_until pool in
          let wire_q =
            if busy_end -. q > 0.05 then busy_end +. max_prop +. grace
            else q
          in
          let q' = Float.max wire_q (!last_health_action +. grace) in
          if q' > q +. 1e-6 then arm_quiet q'
        end)
  in
  arm_quiet (resync_at +. grace);
  let quarantines = ref 0 in
  if health_on then begin
    let rec health_tick () =
      if Sim.now sim < !traffic_until then begin
        let retunes_before = Bundle_pool.health_retunes pool in
        let transitions = Bundle_pool.health_tick pool ~now:(Sim.now sim) in
        List.iter
          (function
            | Health.To_quarantine _ -> incr quarantines
            | _ -> ())
          transitions;
        if
          (match transitions with _ :: _ -> true | [] -> false)
          || Bundle_pool.health_retunes pool <> retunes_before
        then begin
          let now = Sim.now sim in
          last_health_action := now;
          if !armed_quiet < now +. grace then arm_quiet (now +. grace)
        end;
        Sim.schedule_after sim ~delay:0.05 health_tick
      end
    in
    Sim.schedule sim ~at:0.05 health_tick
  end;
  let gen_size =
    Stripe_workload.Genpkt.bimodal ~rng:size_rng ~small:200 ~large:1000 ()
  in
  let rec traffic_tick () =
    if Sim.now sim < !traffic_until then begin
      Bundle_pool.push pool (Rng.int traffic_rng bundles) ~size:(gen_size ());
      Sim.schedule_after sim
        ~delay:(Rng.exponential traffic_rng ~mean:(1.0 /. traffic_rate))
        traffic_tick
    end
  in
  if bundles > 0 then traffic_tick ();
  Sim.run sim;
  let run_end = Sim.now sim in
  (* Recovery per crashed endpoint. *)
  let crashed = ref 0 in
  let recovered = ref 0 in
  let mttr_sum = ref 0.0 in
  let avail_sum = ref 0.0 in
  let avail_min = ref 1.0 in
  let first_unrecovered = ref None in
  for s = 0 to 1 do
    for b = 0 to bundles - 1 do
      if outages.(s).(b) <> [] then begin
        incr crashed;
        (match Recovery.mttr outages.(s).(b) with
        | Some m -> mttr_sum := !mttr_sum +. m
        | None -> ());
        let avail =
          Recovery.interval_availability ~outages:outages.(s).(b) ~from_:0.0
            ~until_:run_end
        in
        avail_sum := !avail_sum +. avail;
        if avail < !avail_min then avail_min := avail;
        let last_d = Bundle_pool.last_delivery_time pool b in
        if (not (Float.is_nan last_d)) && last_d > last_restart.(s).(b) then
          incr recovered
        else if !first_unrecovered = None then
          first_unrecovered :=
            Some
              (Printf.sprintf "%s/%d" (if s = 0 then "tx" else "rx") locals.(b))
      end
    done
  done;
  (* Conservation at quiescence, per bundle. *)
  let conservation_failures = ref 0 in
  let first_unconserved = ref None in
  for b = 0 to bundles - 1 do
    match
      Monitor.check_conservation
        ~what:(Printf.sprintf "bundle %d" locals.(b))
        ~pushed:(Bundle_pool.pushed_packets pool b)
        ~delivered:(Bundle_pool.delivered_packets pool b)
        ~pending:(Bundle_pool.rx_pending_packets pool b)
        ~drops:
          [
            Bundle_pool.carrier_drops pool b;
            Bundle_pool.receiver_down_drops pool b;
            Bundle_pool.rx_epoch_discards pool b;
            Bundle_pool.rx_wiped_packets pool b;
            Bundle_pool.wire_loss_drops pool b;
          ]
    with
    | Ok () -> ()
    | Error msg ->
      incr conservation_failures;
      if !first_unconserved = None then first_unconserved := Some msg
  done;
  let sums f = Array.init bundles (fun b -> f pool b) |> Array.fold_left ( + ) 0 in
  let violations = Bundle_pool.total_fifo_violations pool in
  let first_viol =
    match Bundle_pool.first_violation pool with
    | Some (time, b, sq) -> Some (time, locals.(b), sq)
    | None -> None
  in
  (* FIFO and injection verdicts need the fleet-wide violation count, so
     they are rendered at the merge barrier; here only the failures this
     shard can judge alone. *)
  let failure =
    let fail fmt =
      Printf.ksprintf
        (fun msg ->
          Some
            (Printf.sprintf "%s (seed %d, last chaos event %d)" msg seed
               !last_event))
        fmt
    in
    if !conservation_failures > 0 then
      fail "%s" (Option.value ~default:"conservation" !first_unconserved)
    else if !recovered < !crashed then
      fail "endpoint %s never delivered after restart"
        (Option.value ~default:"?" !first_unrecovered)
    else if Monitor.violations health_monitor > 0 then
      fail "health engine liveness violation: %s"
        (match Monitor.first_violation health_monitor with
        | Some (_, msg) -> msg
        | None -> "?")
    else None
  in
  {
    sr =
      {
        tag = "";
        seed;
        bundles;
        chaos_events = !last_event + 1;
        delivered = Bundle_pool.total_delivered_packets pool;
        carrier_drops = sums Bundle_pool.carrier_drops;
        crashes = Bundle_pool.crashes pool;
        restarts = Bundle_pool.restarts pool;
        crashed_endpoints = !crashed;
        recovered = !recovered;
        mttr_ms =
          (if !crashed = 0 then -1.0
           else 1000.0 *. !mttr_sum /. float_of_int !crashed);
        avail_mean =
          (if !crashed = 0 then 1.0 else !avail_sum /. float_of_int !crashed);
        avail_min = !avail_min;
        inversions = sums Bundle_pool.seq_inversions;
        violations;
        conservation_failures = !conservation_failures;
        wd_dead = sums Bundle_pool.rx_dead_declarations;
        quarantines = !quarantines;
        health_violations = Monitor.violations health_monitor;
        failure;
      };
    violate_event = !violate_event;
    mttr_sum = !mttr_sum;
    avail_sum = !avail_sum;
    first_viol;
  }

(* A cell: the legacy single pool when [domains = 1] — bit-identical to
   the pre-sharding benchmark, same RNG split order and all — else the
   fleet partitioned by bundle id across N domains. Every shard replays
   the same seeded chaos plan (channel events everywhere, bundle events
   filtered to its own bundles), drives its proportional slice of the
   offered load from indexed RNG substreams, and runs its own sim,
   pool, health engine and monitors. The merge sums counters, pools the
   recovery stats (endpoint-weighted MTTR/availability, min
   availability) and renders the fleet-wide FIFO/injection verdicts.

   Unlike exp_fleet's recorded tape, the quiet line here adapts to each
   shard's own wire backlog and health-engine convergence, so cross-N
   byte-equality of counters is not a contract for chaos cells — the
   invariants (zero violations, conservation, full recovery) are. *)
let run_cell ~profile ~discipline ~bundles ~seed ~inject ~domains () =
  let shards =
    if domains = 1 then
      let rng = Rng.create seed in
      let chaos_rng = Rng.split rng in
      let traffic_rng = Rng.split rng in
      let size_rng = Rng.split rng in
      [|
        run_shard ~profile ~discipline ~fleet:bundles
          ~locals:(Array.init bundles (fun b -> b))
          ~traffic_rate:packet_rate ~chaos_rng ~traffic_rng ~size_rng ~seed
          ~inject ();
      |]
    else begin
      let parts = Sharded_pool.split_fleet ~domains ~bundles in
      let shard k () =
        (* Each shard re-derives the identical plan from the seed's
           first split; traffic and sizes come from indexed substreams
           so the per-shard Poisson processes are independent. *)
        let rng = Rng.create seed in
        let chaos_rng = Rng.split rng in
        let traffic_rng = Rng.stream ~seed ((2 * k) + 1) in
        let size_rng = Rng.stream ~seed ((2 * k) + 2) in
        let locals = parts.(k) in
        run_shard ~profile ~discipline ~fleet:bundles ~locals
          ~traffic_rate:
            (packet_rate
            *. float_of_int (Array.length locals)
            /. float_of_int bundles)
          ~chaos_rng ~traffic_rng ~size_rng ~seed ~inject ()
      in
      let joins =
        Array.init (domains - 1) (fun i -> Domain.spawn (shard (i + 1)))
      in
      let first = shard 0 () in
      Array.append [| first |] (Array.map Domain.join joins)
    end
  in
  let sum f = Array.fold_left (fun a s -> a + f s.sr) 0 shards in
  let violations = sum (fun r -> r.violations) in
  let crashed = sum (fun r -> r.crashed_endpoints) in
  let mttr_sum = Array.fold_left (fun a s -> a +. s.mttr_sum) 0.0 shards in
  let avail_sum = Array.fold_left (fun a s -> a +. s.avail_sum) 0.0 shards in
  let chaos_events =
    Array.fold_left (fun a s -> max a s.sr.chaos_events) 0 shards
  in
  let first_viol =
    Array.fold_left
      (fun acc s ->
        match (acc, s.first_viol) with
        | None, v | v, None -> v
        | (Some (ta, _, _) as a), Some (tb, _, _) ->
          if tb < ta then s.first_viol else a)
      None shards
  in
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        Some
          (Printf.sprintf "%s (seed %d, last chaos event %d)" msg seed
             (chaos_events - 1)))
      fmt
  in
  let shard_failure =
    Array.fold_left
      (fun acc s -> if acc = None then s.sr.failure else acc)
      None shards
  in
  let failure =
    if violations > 0 && not inject then begin
      match first_viol with
      | Some (time, b, sq) ->
        fail "FIFO violation: bundle %d seq %d at t=%.4f" b sq time
      | None -> fail "FIFO violation"
    end
    else if shard_failure <> None then shard_failure
    else if inject && violations = 0 then
      fail "injected violation was NOT caught"
    else None
  in
  let tag0 =
    Printf.sprintf "%s%s-%d-s%d" profile.pname
      (match discipline with
      | Bundle_pool.Srr -> ""
      | Bundle_pool.Sprinklers _ -> "-spr"
      | Bundle_pool.Load_aware -> "-la")
      bundles seed
  in
  ( {
      tag = (if domains = 1 then tag0 else Printf.sprintf "%s-d%d" tag0 domains);
      seed;
      bundles;
      chaos_events;
      delivered = sum (fun r -> r.delivered);
      carrier_drops = sum (fun r -> r.carrier_drops);
      crashes = sum (fun r -> r.crashes);
      restarts = sum (fun r -> r.restarts);
      crashed_endpoints = crashed;
      recovered = sum (fun r -> r.recovered);
      mttr_ms =
        (if crashed = 0 then -1.0
         else 1000.0 *. mttr_sum /. float_of_int crashed);
      avail_mean =
        (if crashed = 0 then 1.0 else avail_sum /. float_of_int crashed);
      avail_min =
        Array.fold_left (fun a s -> Float.min a s.sr.avail_min) 1.0 shards;
      inversions = sum (fun r -> r.inversions);
      violations;
      conservation_failures = sum (fun r -> r.conservation_failures);
      wd_dead = sum (fun r -> r.wd_dead);
      quarantines = sum (fun r -> r.quarantines);
      health_violations = sum (fun r -> r.health_violations);
      failure;
    },
    Array.fold_left (fun a s -> max a s.violate_event) (-1) shards )

let print_run r =
  Printf.printf
    "  %-18s %4d ev  %8d pkts  drops %6d  crash %3d/%3d  recovered %3d/%3d  \
     mttr %s  avail %.4f/%.4f  inv %5d  wd %4d  quar %3d  viol %d/%d  consv \
     %d\n\
     %!"
    r.tag r.chaos_events r.delivered r.carrier_drops r.crashes r.restarts
    r.recovered r.crashed_endpoints
    (if r.mttr_ms < 0.0 then "   n/a" else Printf.sprintf "%5.1fms" r.mttr_ms)
    r.avail_mean r.avail_min r.inversions r.wd_dead r.quarantines r.violations
    r.health_violations r.conservation_failures

let json_of_run r =
  Printf.sprintf
    "{\"run\":\"%s\",\"seed\":%d,\"bundles\":%d,\"chaos_events\":%d,\"delivered\":%d,\"carrier_drops\":%d,\"crashes\":%d,\"restarts\":%d,\"crashed_endpoints\":%d,\"recovered\":%d,\"mttr_ms\":%.3f,\"avail_mean\":%.5f,\"avail_min\":%.5f,\"inversions\":%d,\"violations\":%d,\"conservation_failures\":%d,\"watchdog_dead\":%d,\"quarantines\":%d,\"health_violations\":%d}"
    r.tag r.seed r.bundles r.chaos_events r.delivered r.carrier_drops r.crashes
    r.restarts r.crashed_endpoints r.recovered r.mttr_ms r.avail_mean
    r.avail_min r.inversions r.violations r.conservation_failures r.wd_dead
    r.quarantines r.health_violations

let () =
  let quick = ref false in
  let bundles = ref None in
  let seed = ref None in
  let json_out = ref None in
  let inject = ref false in
  let profile_filter = ref None in
  let domains = ref 1 in
  let discipline = ref Bundle_pool.Srr in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--bundles" :: v :: rest ->
      bundles := Some (int_of_string v);
      parse rest
    | "--domains" :: v :: rest ->
      domains := Sharded_pool.resolve_domains (int_of_string v);
      parse rest
    | "--seed" :: v :: rest ->
      seed := Some (int_of_string v);
      parse rest
    | "--profile" :: v :: rest ->
      profile_filter := Some v;
      parse rest
    | "--discipline" :: v :: rest ->
      (discipline :=
         match v with
         | "srr" -> Bundle_pool.Srr
         | "sprinklers" -> Bundle_pool.Sprinklers 0x5eed
         | "load-aware" -> Bundle_pool.Load_aware
         | _ ->
           Printf.eprintf
             "unknown discipline %S (want srr|sprinklers|load-aware)\n" v;
           exit 2);
      parse rest
    | "--json" :: file :: rest ->
      json_out := Some file;
      parse rest
    | "--inject-violation" :: rest ->
      inject := true;
      parse rest
    | "--health-selftest" :: _ ->
      (* The liveness monitor must fire when quarantines zero the live
         membership, and shadow reinstatements back out. No simulation:
         drive the event stream directly. *)
      let mon = Monitor.create ~live_channels:n_channels () in
      let sink = Monitor.sink mon in
      let ev kind c t =
        Stripe_obs.Sink.emit sink
          (Stripe_obs.Event.v ~channel:c ~size:0 ~seq:0 ~time:t kind)
      in
      for c = 0 to n_channels - 2 do
        ev Stripe_obs.Event.Quarantine c (float_of_int c)
      done;
      if Monitor.violations mon <> 0 then begin
        Printf.eprintf
          "  FAIL: liveness monitor fired with one live channel left\n";
        exit 1
      end;
      ev Stripe_obs.Event.Reinstate 0 10.0;
      ev Stripe_obs.Event.Quarantine 0 11.0;
      ev Stripe_obs.Event.Quarantine (n_channels - 1) 12.0;
      if Monitor.violations mon <> 1 then begin
        Printf.eprintf
          "  FAIL: liveness monitor missed a membership-zeroing quarantine \
           (saw %d violations)\n"
          (Monitor.violations mon);
        exit 1
      end;
      Printf.printf
        "exp_chaos: health-monitor self-test passed — %d quarantines tolerated \
         with a live member, the zeroing one caught\n"
        n_channels;
      exit 0
    | arg :: _ ->
      Printf.eprintf
        "usage: exp_chaos [--quick] [--bundles N] [--seed S] [--profile \
         storms|crashes|degrades|mixed] [--discipline \
         srr|sprinklers|load-aware] [--domains N] [--json FILE] \
         [--inject-violation] [--health-selftest] (got %s)\n"
        arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let seeds = match !seed with Some s -> [ s ] | None -> [ 11; 23; 42 ] in
  let profiles =
    match !profile_filter with
    | None -> profiles
    | Some name -> (
      match List.filter (fun p -> p.pname = name) profiles with
      | [] ->
        Printf.eprintf
          "unknown profile %S (want storms|crashes|degrades|mixed)\n" name;
        exit 2
      | ps -> ps)
  in
  if !inject then begin
    (* Detection self-test: one small cell with a planted violation;
       success means the monitor caught it and can name the event. *)
    let b = Option.value ~default:200 !bundles in
    let s = List.hd seeds in
    let mixed =
      { pname = "mixed"; storm_every = 0.3; crash_every = 0.03; degrade_every = 0.1 }
    in
    Printf.printf
      "exp_chaos: detection self-test, %d bundles, seed %d, planted FIFO \
       violation\n\
       %!"
      b s;
    let r, violate_event =
      run_cell ~profile:mixed ~discipline:!discipline ~bundles:b ~seed:s
        ~inject:true ~domains:!domains ()
    in
    print_run r;
    match r.failure with
    | Some msg ->
      Printf.eprintf "  FAIL: %s\n" msg;
      exit 1
    | None ->
      Printf.printf
        "  caught planted violation (seed %d, chaos event %d): monitors are \
         live\n"
        s violate_event;
      exit 0
  end;
  let sizes =
    match !bundles with
    | Some n -> [ n ]
    | None -> if !quick then [ 200 ] else [ 300; 1200 ]
  in
  let cells =
    if !quick then
      [ (List.nth profiles (List.length profiles - 1), List.hd sizes, List.hd seeds) ]
    else
      List.concat_map
        (fun p -> List.map (fun n -> (p, n, List.hd seeds)) sizes)
        profiles
      @ (match (List.rev profiles, List.rev sizes) with
        | p :: _, n :: _ -> List.map (fun s -> (p, n, s)) (List.tl seeds)
        | _ -> [])
  in
  Printf.printf
    "exp_chaos: %d cells x 4ch SRR fleet, chaos horizon %.1fs, quiet line = \
     last event + cadence-scaled grace (>= %.1fs), %.0fk pkts/s offered%s\n\
     %!"
    (List.length cells) chaos_horizon drain_grace
    (packet_rate /. 1000.0)
    (if !domains > 1 then Printf.sprintf ", %d domains" !domains else "");
  let runs =
    List.map
      (fun (p, n, s) ->
        let r, _ =
          run_cell ~profile:p ~discipline:!discipline ~bundles:n ~seed:s
            ~inject:false ~domains:!domains ()
        in
        print_run r;
        r)
      cells
  in
  (match !json_out with
  | None -> ()
  | Some file ->
    let oc = open_out file in
    Printf.fprintf oc
      "{\n\
      \  \"scenario\": \"chaos soak: 4ch SRR fleet, seeded storms + endpoint \
       crashes, monitors on\",\n\
      \  \"runs\": [\n    %s\n  ]\n\
       }\n"
      (String.concat ",\n    " (List.map json_of_run runs));
    close_out oc;
    Printf.printf "  wrote %s\n%!" file);
  let failures = List.filter (fun r -> r.failure <> None) runs in
  if failures <> [] then begin
    List.iter
      (fun r ->
        Printf.eprintf "  FAIL %s: %s\n" r.tag
          (Option.value ~default:"" r.failure))
      failures;
    exit 1
  end;
  Printf.printf
    "  all %d cells clean: zero violations, every crashed endpoint recovered\n"
    (List.length runs)
