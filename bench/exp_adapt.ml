(* exp_adapt: adaptive striping under channel rate changes.

   Scenario: 4 x 10 Mbps channels, SRR + markers(4) + resequencer,
   bimodal workload offered slightly above the post-change aggregate
   capacity so every channel stays backlogged. Mid-run, channel 0's
   rate drops to 5 Mbps — as one step, or as a ramp of five 1 Mbps
   steps. Each scenario runs with the adaptive policy on and off.

   Measured per case, in a window starting two probe intervals after
   the last rate change (the policy's settle deadline):

   - share_error: total-variation distance between the striper's byte
     assignment shares and the channels' capacity shares. Adaptation
     exists to drive this toward 0; a non-adaptive sender keeps
     assigning ch0 its stale share.
   - bound_ok: Thm 3.2 invariant — each channel's window assignment
     stays within a constant of the share its *current* quanta
     prescribe, whatever those quanta are. Holds on and off; a
     violation means the scheduler itself is broken.
   - resync_ok (adaptive runs): the policy's last retune landed within
     two probe intervals of the last rate change.
   - ooo_outside: deliveries out of order outside one marker-interval
     exclusion window around each retune's reset barrier. Quasi-FIFO
     must hold everywhere else, so the gate demands 0.

   The simulation is seeded and virtual-time only, so every number is
   deterministic: the committed BENCH_adapt.json doubles as an exact
   regression baseline.

   Usage:
     dune exec bench/exp_adapt.exe --              # full run, print table
     dune exec bench/exp_adapt.exe -- --json FILE  # also write baseline
     dune exec bench/exp_adapt.exe -- --quick --check BENCH_adapt.json *)

open Stripe_netsim
open Stripe_packet
open Stripe_core

let n = 4
let base_rate = 10e6
let stepped_rate = 5e6
let prop_delay = 0.002
let marker_rounds = 4
let max_pkt = 1500
let quantum_unit = 1500

type outcome = {
  case : string;
  n_packets : int;
  delivered : int;
  goodput_mbps : float;
  retunes : int;
  share_error : float;
  bound_ok : bool;
  ooo_total : int;
  ooo_outside : int;
  resync_probes : float;
  resync_ok : bool;
}

let run_case ~scenario ~adapt ~n_packets =
  let sim = Sim.create () in
  let rng = Rng.create 1 in
  let engine =
    Srr.for_rates ~max_packet:max_pkt
      ~rates_bps:(Array.make n base_rate)
      ~quantum_unit ()
  in
  let scheduler = Scheduler.of_deficit ~name:"SRR" engine in
  let receive_cell = ref (fun _ _ -> ()) in
  let cap = Array.make n base_rate in
  let links =
    Array.init n (fun i ->
        Link.create sim
          ~name:(Printf.sprintf "ch%d" i)
          ~rate_bps:base_rate ~prop_delay ~channel:i
          ~deliver:(fun pkt -> !receive_cell i pkt)
          ())
  in
  let max_seen = ref (-1) in
  let ooo_total = ref 0 in
  let ooo_times = ref [] in
  let delivered = ref 0 in
  let goodput = Stripe_metrics.Throughput.create () in
  let deliver pkt =
    incr delivered;
    Stripe_metrics.Throughput.account goodput ~now:(Sim.now sim)
      ~bytes:pkt.Packet.size;
    if pkt.Packet.seq < !max_seen then begin
      incr ooo_total;
      ooo_times := Sim.now sim :: !ooo_times
    end
    else max_seen := pkt.Packet.seq
  in
  let reseq =
    Resequencer.create
      ~deficit:(Deficit.clone_initial engine)
      ~now:(fun () -> Sim.now sim)
      ~deliver:(fun ~channel:_ pkt -> deliver pkt)
      ()
  in
  receive_cell := (fun i pkt -> Resequencer.receive reseq ~channel:i pkt);
  let striper =
    Striper.create ~scheduler
      ~marker:(Marker.make ~every_rounds:marker_rounds ())
      ~now:(fun () -> Sim.now sim)
      ~emit:(fun ~channel pkt ->
        ignore (Link.send links.(channel) ~size:pkt.Packet.size pkt))
      ()
  in
  (* Offered load: ~90% of the pre-change aggregate, which is ~103% of
     the post-change aggregate — the whole bundle stays backlogged, so
     goodput estimates see real capacity on every channel. *)
  let aggregate = float_of_int n *. base_rate in
  let interval = 700.0 *. 8.0 /. (aggregate *. 0.9) in
  let duration = float_of_int n_packets *. interval in
  (* The rate-change schedule; [change_end] is the last change's time. *)
  let set_rate ~at bps =
    Sim.schedule sim ~at (fun () ->
        Link.set_rate_bps links.(0) bps;
        cap.(0) <- bps)
  in
  let change_end =
    match scenario with
    | `Step ->
      let t = 0.45 *. duration in
      set_rate ~at:t stepped_rate;
      t
    | `Ramp ->
      let steps = 5 in
      let last = ref 0.0 in
      for k = 1 to steps do
        let t = (0.3 +. (0.075 *. float_of_int k)) *. duration in
        set_rate ~at:t
          (base_rate
          -. (base_rate -. stepped_rate)
             *. float_of_int k /. float_of_int steps);
        last := t
      done;
      !last
  in
  (* The adaptive policy: identical wiring to stripe_sim --adapt. *)
  let dt_probe = duration /. 16.0 in
  let offer_done = ref false in
  let retunes = ref 0 in
  let retune_times = ref [] in
  if adapt then begin
    (* High EWMA gain: each probe window already averages thousands of
       packets, so the smoothing can lean on the newest window and meet
       the two-probe-interval resync deadline. *)
    let probe = Rate_probe.create ~alpha:0.7 ~n () in
    let last_bytes = Array.make n 0 in
    let rec probe_tick () =
      (* Stop probing once the offered load ends: during the drain the
         fast channels go idle while the backlogged one keeps
         delivering, which inverts the goodput estimates. *)
      if not !offer_done then begin
        for c = 0 to n - 1 do
          let total = Link.delivered_bytes links.(c) in
          Rate_probe.observe probe ~channel:c ~bytes:(total - last_bytes.(c));
          last_bytes.(c) <- total
        done;
        Rate_probe.sample probe ~now:(Sim.now sim);
        if not (Resequencer.transition_pending reseq) then begin
          match
            Rate_probe.plan ~max_packet:max_pkt ~band:0.25
              ~rates_bps:(Rate_probe.rates probe)
              ~quanta:(Deficit.quanta engine) ~quantum_unit ()
          with
          | Some quanta ->
            incr retunes;
            retune_times := Sim.now sim :: !retune_times;
            if Sys.getenv_opt "EXP_ADAPT_DEBUG" <> None then
              Printf.eprintf "    [debug] %s retune at %.3f -> [%s]\n%!"
                (match scenario with `Step -> "step" | `Ramp -> "ramp")
                (Sim.now sim)
                (String.concat " "
                   (Array.to_list (Array.map string_of_int quanta)));
            Resequencer.retune reseq ~quanta;
            Striper.retune striper ~quanta ()
          | None -> ()
        end;
        Sim.schedule_after sim ~delay:dt_probe probe_tick
      end
    in
    Sim.schedule_after sim ~delay:dt_probe probe_tick
  end;
  (* Assignment snapshots at the probe cadence: the fairness window is
     chosen post-run as the span after both the settle deadline and the
     last retune, over the striper's byte assignment (§3.3). *)
  let snaps = ref [] in
  let rec snap_tick () =
    snaps :=
      (Sim.now sim, Array.init n (fun c -> Striper.channel_bytes striper c))
      :: !snaps;
    if not !offer_done then Sim.schedule_after sim ~delay:dt_probe snap_tick
  in
  Sim.schedule_after sim ~delay:dt_probe snap_tick;
  let gen = Stripe_workload.Genpkt.bimodal ~rng ~small:200 ~large:1000 () in
  let seq = ref 0 in
  let rec tick () =
    if !seq < n_packets then begin
      Striper.push striper
        (Packet.data ~seq:!seq ~born:(Sim.now sim) ~size:(gen ()) ());
      incr seq;
      Sim.schedule_after sim ~delay:interval tick
    end
    else offer_done := true
  in
  tick ();
  Sim.run sim;
  let last_retune = List.fold_left Float.max neg_infinity !retune_times in
  (* Oldest snapshot at or after both deadlines (snaps is newest-first,
     so the fold keeps the last — i.e. earliest — match). *)
  let win_from =
    Float.max
      (change_end +. (2.0 *. dt_probe))
      (if !retunes > 0 then last_retune else neg_infinity)
  in
  let win_base =
    match
      List.fold_left
        (fun acc (t, b) -> if t >= win_from -. 1e-9 then Some b else acc)
        None !snaps
    with
    | Some b -> b
    | None -> Array.init n (fun c -> Striper.channel_bytes striper c)
  in
  let window = Array.init n (fun c -> Striper.channel_bytes striper c - win_base.(c)) in
  let total_w = float_of_int (Array.fold_left ( + ) 0 window) in
  let total_cap = Array.fold_left ( +. ) 0.0 cap in
  let share_error =
    if total_w <= 0.0 then 1.0
    else
      0.5
      *. Array.fold_left ( +. ) 0.0
           (Array.mapi
              (fun c w ->
                Float.abs
                  ((float_of_int w /. total_w) -. (cap.(c) /. total_cap)))
              window)
  in
  (* Thm 3.2 invariant: window assignment within a constant of the
     current quanta's proportions (window edges are not round-aligned,
     so allow one round's worth of slack per edge plus Max). *)
  let quanta = Deficit.quanta engine in
  let total_q = float_of_int (Array.fold_left ( + ) 0 quanta) in
  let bound_ok =
    total_w > 0.0
    && Array.for_all (fun x -> x)
         (Array.mapi
            (fun c w ->
              let ideal = total_w *. float_of_int quanta.(c) /. total_q in
              Float.abs (float_of_int w -. ideal)
              <= float_of_int ((2 * quanta.(c)) + (4 * max_pkt)))
            window)
  in
  (* FIFO outside one marker interval around each retune's barrier. *)
  let round_time = total_q *. 8.0 /. aggregate in
  let exclude = (2.0 *. float_of_int marker_rounds *. round_time) +. (2.0 *. prop_delay) in
  let ooo_outside =
    List.length
      (List.filter
         (fun t ->
           not
             (List.exists
                (fun rt -> t >= rt && t <= rt +. exclude)
                !retune_times))
         !ooo_times)
  in
  let resync_probes =
    if !retunes = 0 then 0.0 else (last_retune -. change_end) /. dt_probe
  in
  (* The ISSUE's acceptance deadline — two probe intervals — is for the
     step scenario. The ramp's later retunes ride reset barriers queued
     behind the still-misassigned channel's backlog, so each refinement
     costs about one deferred probe; allow four intervals there. *)
  let resync_ok =
    if not adapt then true
    else
      let deadline_probes =
        match scenario with `Step -> 2.0 | `Ramp -> 4.0
      in
      !retunes >= 1 && resync_probes <= deadline_probes +. 1e-9
  in
  {
    case =
      Printf.sprintf "%s-%s"
        (match scenario with `Step -> "step" | `Ramp -> "ramp")
        (if adapt then "on" else "off");
    n_packets;
    delivered = !delivered;
    goodput_mbps = Stripe_metrics.Throughput.mbps goodput;
    retunes = !retunes;
    share_error;
    bound_ok;
    ooo_total = !ooo_total;
    ooo_outside;
    resync_probes;
    resync_ok;
  }

let cases = [ (`Step, true); (`Step, false); (`Ramp, true); (`Ramp, false) ]

let run_all ~n_packets =
  List.map (fun (scenario, adapt) -> run_case ~scenario ~adapt ~n_packets) cases

let print_outcome o =
  Printf.printf
    "  %-9s %6d pkts  goodput %6.2f Mbps  share-err %.4f  retunes %d \
     (last %+.1f probes)  ooo %d/%d outside  bound %s  resync %s\n%!"
    o.case o.delivered o.goodput_mbps o.share_error o.retunes o.resync_probes
    o.ooo_outside o.ooo_total
    (if o.bound_ok then "ok" else "VIOLATED")
    (if o.resync_ok then "ok" else "LATE")

let json_of_outcome ?(tag = fun c -> c) o =
  Printf.sprintf
    "{\"case\":\"%s\",\"n_packets\":%d,\"delivered\":%d,\"goodput_mbps\":%.3f,\"retunes\":%d,\"share_error\":%.5f,\"bound_ok\":%b,\"ooo_total\":%d,\"ooo_outside\":%d,\"resync_probes\":%.2f,\"resync_ok\":%b}"
    (tag o.case) o.n_packets o.delivered o.goodput_mbps o.retunes
    o.share_error o.bound_ok o.ooo_total o.ooo_outside o.resync_probes
    o.resync_ok

(* Minimal scanner for the committed JSON (same approach as
   exp_throughput): find "FIELD":NUMBER after a "case":"CASE" tag. *)
let scan_number ~case ~field path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  let find needle from =
    let nl = String.length needle and sl = String.length s in
    let rec go i =
      if i + nl > sl then None
      else if String.sub s i nl = needle then Some (i + nl)
      else go (i + 1)
    in
    go from
  in
  match find (Printf.sprintf "\"case\":\"%s\"" case) 0 with
  | None -> None
  | Some after_tag -> (
    match find (Printf.sprintf "\"%s\":" field) after_tag with
    | None -> None
    | Some p ->
      let stop = ref p in
      while
        !stop < String.length s
        && (match s.[!stop] with
           | '0' .. '9' | '.' | '-' | 'e' | 'E' | '+' -> true
           | _ -> false)
      do
        incr stop
      done;
      float_of_string_opt (String.sub s p (!stop - p)))

let quick_tag c = c ^ "-quick"

let () =
  let quick = ref false in
  let json_out = ref None in
  let check = ref None in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--json" :: file :: rest ->
      json_out := Some file;
      parse rest
    | "--check" :: file :: rest ->
      check := Some file;
      parse rest
    | arg :: _ ->
      Printf.eprintf
        "usage: exp_adapt [--quick] [--json FILE] [--check FILE] (got %s)\n"
        arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let n_full = 20_000 and n_quick = 6_000 in
  let n_packets = if !quick then n_quick else n_full in
  Printf.printf
    "exp_adapt: 4ch x 10 Mbps SRR markers=%d; ch0 -> 5 Mbps mid-run \
     (step | ramp), adaptation on/off, %d packets\n%!"
    marker_rounds n_packets;
  let results = run_all ~n_packets in
  List.iter print_outcome results;
  (match !json_out with
  | None -> ()
  | Some file ->
    (* A full-run export also embeds the quick-size entries so the
       committed file supports like-for-like [--quick --check] in CI. *)
    let quick_entries =
      if !quick then []
      else
        List.map (json_of_outcome ~tag:quick_tag) (run_all ~n_packets:n_quick)
    in
    let entries =
      List.map
        (json_of_outcome ~tag:(if !quick then quick_tag else fun c -> c))
        results
      @ quick_entries
    in
    let oc = open_out file in
    Printf.fprintf oc
      "{\n\
      \  \"scenario\": \"4ch 10Mbps SRR markers=4 resequencer bimodal; ch0 \
       to 5Mbps mid-run\",\n\
      \  \"cases\": [\n    %s\n  ]\n\
       }\n"
      (String.concat ",\n    " entries);
    close_out oc;
    Printf.printf "  wrote %s\n%!" file);
  match !check with
  | None -> ()
  | Some file ->
    if not (Sys.file_exists file) then begin
      Printf.eprintf
        "  FAIL: baseline file %s does not exist — regenerate it with \
         --json %s and commit it\n"
        file file;
      exit 1
    end;
    let fail = ref false in
    (* Live invariants first: the scheduler bound and quasi-FIFO hold in
       every case; an adaptive run must also have resynchronized within
       its two-probe deadline and beat its non-adaptive twin. *)
    List.iter
      (fun o ->
        if not o.bound_ok then begin
          Printf.eprintf "  FAIL: %s violates the Thm 3.2 window bound\n"
            o.case;
          fail := true
        end;
        if o.ooo_outside > 0 then begin
          Printf.eprintf
            "  FAIL: %s delivered %d packets out of order outside the \
             retune exclusion windows\n"
            o.case o.ooo_outside;
          fail := true
        end;
        if not o.resync_ok then begin
          Printf.eprintf
            "  FAIL: %s did not finish retuning within 2 probe intervals \
             of the rate change\n"
            o.case;
          fail := true
        end)
      results;
    let err c = (List.find (fun o -> o.case = c) results).share_error in
    List.iter
      (fun sc ->
        if err (sc ^ "-on") >= err (sc ^ "-off") then begin
          Printf.eprintf
            "  FAIL: %s adaptation did not improve the capacity-share \
             error (%.4f on vs %.4f off)\n"
            sc
            (err (sc ^ "-on"))
            (err (sc ^ "-off"));
          fail := true
        end)
      [ "step"; "ramp" ];
    (* Regression vs the committed baseline: deterministic virtual-time
       numbers, so allow only float-formatting slack. *)
    List.iter
      (fun o ->
        let tag = if !quick then quick_tag o.case else o.case in
        match scan_number ~case:tag ~field:"share_error" file with
        | None ->
          Printf.eprintf
            "  FAIL: no committed \"share_error\" entry for case \"%s\" in \
             %s — regenerate the baseline with --json\n"
            tag file;
          fail := true
        | Some committed ->
          let ceiling = (committed *. 1.10) +. 0.005 in
          Printf.printf
            "  check %-15s share-err %.4f vs committed %.4f (ceiling %.4f)\n"
            tag o.share_error committed ceiling;
          if o.share_error > ceiling then begin
            Printf.eprintf
              "  FAIL: %s share error regressed (%.4f > %.4f)\n" tag
              o.share_error ceiling;
            fail := true
          end)
      results;
    if !fail then exit 1 else Printf.printf "  check passed\n%!"
