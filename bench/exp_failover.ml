(* Failover experiment: one member of a 3 x 10 Mbps SRR bundle loses
   carrier at t=1.0 s and recovers at t=2.0 s (markers every 4 rounds,
   ~80% offered load). Four protection configurations are compared:

   - sender-aware:    the striper suspends the dead member on carrier
                      loss (load moves to the survivors) and resumes it
                      with the §5 reset barrier on recovery;
   - receiver watchdog: the sender keeps striping into the dead link;
                      the receiver's marker-cadence watchdog declares
                      the channel dead and skips it (quasi-FIFO);
   - both combined;
   - unprotected:     the paper's base protocol, which assumes members
                      stay up — logical reception blocks on the dead
                      channel until it revives.

   Reported per configuration: deliveries, misordering, the longest
   service outage, time to the first delivery after the member returns,
   resynchronization time after the outage ends (Theorem 5.1 applies
   once markers flow again), and availability in 10 ms slots. *)

open Stripe_netsim
open Stripe_packet
open Stripe_core

let n = 3
let down_at = 1.0
let up_at = 2.0
let run_until = 3.0

type rig = {
  sim : Sim.t;
  striper : Striper.t;
  reseq : Resequencer.t;
  recovery : Stripe_metrics.Recovery.t;
  reorder : Reorder.t;
  links : Packet.t Link.t array;
}

let make_rig ~sender_aware ~watchdog () =
  let sim = Sim.create () in
  let recovery = Stripe_metrics.Recovery.create () in
  let reorder = Reorder.create () in
  let engine = Srr.create ~quanta:(Array.make n 1500) () in
  let reseq =
    Resequencer.create ~deficit:(Deficit.clone_initial engine)
      ~now:(fun () -> Sim.now sim)
      ?watchdog
      ~deliver:(fun ~channel:_ pkt ->
        Stripe_metrics.Recovery.observe recovery ~now:(Sim.now sim)
          ~seq:pkt.Packet.seq;
        Reorder.observe reorder ~seq:pkt.Packet.seq)
      ()
  in
  let links =
    Array.init n (fun i ->
        Link.create sim
          ~name:(Printf.sprintf "ch%d" i)
          ~rate_bps:10e6 ~prop_delay:0.002
          ~deliver:(fun pkt -> Resequencer.receive reseq ~channel:i pkt)
          ())
  in
  let sched = Scheduler.of_deficit ~name:"SRR" engine in
  let striper =
    Striper.create ~scheduler:sched
      ~marker:(Marker.make ~every_rounds:4 ())
      ~now:(fun () -> Sim.now sim)
      ~emit:(fun ~channel pkt ->
        ignore (Link.send links.(channel) ~size:pkt.Packet.size pkt))
      ()
  in
  if sender_aware then
    Array.iteri
      (fun i link ->
        Link.on_carrier link (fun ~up ->
            if up then Striper.resume_channel striper i
            else Striper.suspend_channel striper i))
      links;
  { sim; striper; reseq; recovery; reorder; links }

(* Paced bimodal source at ~80% of the healthy aggregate. *)
let drive rig =
  let rng = Rng.create 77 in
  let gen =
    Stripe_workload.Genpkt.bimodal ~rng ~small:Sizes.small_packet
      ~large:Sizes.large_packet ()
  in
  let seq = ref 0 in
  let rec tick () =
    if Sim.now rig.sim < run_until then begin
      for _ = 1 to 2 do
        Striper.push rig.striper
          (Packet.data ~seq:!seq ~born:(Sim.now rig.sim) ~size:(gen ()) ());
        incr seq
      done;
      Sim.schedule_after rig.sim ~delay:0.0006 tick
    end
  in
  tick ()

let fmt_ms v = Printf.sprintf "%.1f" (1000.0 *. v)

let run () =
  Exp_common.section
    "Failover - member down at 1.0 s, back at 2.0 s (3 x 10 Mbps SRR, \
     markers every 4 rounds)";
  let tbl =
    Stripe_metrics.Table.create ~title:"Protection configurations"
      ~columns:
        [
          "configuration"; "delivered"; "ooo"; "wd skips";
          "longest outage (ms)"; "failback (ms)"; "resync (ms)"; "avail";
        ]
  in
  List.iter
    (fun (label, sender_aware, with_wd) ->
      let watchdog =
        if with_wd then Some { Resequencer.intervals = 3; fallback = 0.01 }
        else None
      in
      let rig = make_rig ~sender_aware ~watchdog () in
      drive rig;
      Fault.down_up rig.sim rig.links.(1) ~down_at ~up_at;
      Sim.run rig.sim;
      let first_back =
        match Stripe_metrics.Recovery.first_after rig.recovery ~time:up_at with
        | Some t -> fmt_ms (t -. up_at)
        | None -> "never"
      in
      let resync =
        (* The channel outage is the error episode: once the member is
           back and the reset barrier / markers have flowed, delivery
           must be FIFO again (Theorem 5.1). *)
        match
          Stripe_metrics.Recovery.resync_time rig.recovery ~errors_stop:up_at
        with
        | Some dt -> fmt_ms dt
        | None -> "never"
      in
      Stripe_metrics.Table.add_row tbl
        [
          label;
          string_of_int (Stripe_metrics.Recovery.deliveries rig.recovery);
          string_of_int (Reorder.out_of_order rig.reorder);
          string_of_int (Resequencer.watchdog_skips rig.reseq);
          fmt_ms
            (Stripe_metrics.Recovery.max_gap rig.recovery ~from_:down_at
               ~until_:run_until);
          first_back;
          resync;
          Printf.sprintf "%.1f%%"
            (100.0
            *. Stripe_metrics.Recovery.availability rig.recovery ~from_:0.0
                 ~until_:run_until ~bucket:0.01);
        ])
    [
      ("sender-aware + watchdog", true, true);
      ("sender-aware", true, false);
      ("receiver watchdog", false, true);
      ("unprotected", false, false);
    ];
  Stripe_metrics.Table.print tbl;
  print_endline
    "Full protection needs both ends. Sender-side suspension alone keeps";
  print_endline
    "packets off the dead member (zero misordering, instant resync at";
  print_endline
    "failback via the reset barrier) but the receiver still blocks for the";
  print_endline
    "whole outage: suspension is invisible to its simulation of the sender.";
  print_endline
    "The receiver watchdog alone restores service after the dead-channel";
  print_endline
    "timeout, at the cost of losing what was striped into the dead link";
  print_endline
    "(quasi-FIFO). Combined, the survivors carry everything and delivery";
  print_endline "never reorders.\n"
