(* Failover experiment: one member of a 3 x 10 Mbps SRR bundle loses
   carrier at t=1.0 s and recovers at t=2.0 s (markers every 4 rounds,
   ~80% offered load). Four protection configurations are compared:

   - sender-aware:    the striper suspends the dead member on carrier
                      loss (load moves to the survivors) and resumes it
                      with the §5 reset barrier on recovery;
   - receiver watchdog: the sender keeps striping into the dead link;
                      the receiver's marker-cadence watchdog declares
                      the channel dead and skips it (quasi-FIFO);
   - both combined;
   - unprotected:     the paper's base protocol, which assumes members
                      stay up — logical reception blocks on the dead
                      channel until it revives.

   Reported per configuration: deliveries, misordering, the longest
   service outage, time to the first delivery after the member returns,
   resynchronization time after the outage ends (Theorem 5.1 applies
   once markers flow again), and availability in 10 ms slots.

   The whole scenario runs in virtual time on seeded randomness, so the
   recovery metrics are deterministic — which makes them a CI gate:

     dune exec bench/exp_failover.exe --                  # table
     dune exec bench/exp_failover.exe -- --json FILE      # machine output
     dune exec bench/exp_failover.exe -- --check FILE [--max-regress F]
       # exit 1 if availability drops, or failback/resync regress,
       # more than F (default 0.05) against FILE's committed numbers *)

open Stripe_netsim
open Stripe_packet
open Stripe_core

let n = 3
let down_at = 1.0
let up_at = 2.0
let run_until = 3.0

type rig = {
  sim : Sim.t;
  striper : Striper.t;
  reseq : Resequencer.t;
  recovery : Stripe_metrics.Recovery.t;
  reorder : Reorder.t;
  links : Packet.t Link.t array;
}

let make_rig ~sender_aware ~watchdog () =
  let sim = Sim.create () in
  let recovery = Stripe_metrics.Recovery.create () in
  let reorder = Reorder.create () in
  let engine = Srr.create ~quanta:(Array.make n 1500) () in
  let reseq =
    Resequencer.create ~deficit:(Deficit.clone_initial engine)
      ~now:(fun () -> Sim.now sim)
      ?watchdog
      ~deliver:(fun ~channel:_ pkt ->
        Stripe_metrics.Recovery.observe recovery ~now:(Sim.now sim)
          ~seq:pkt.Packet.seq;
        Reorder.observe reorder ~seq:pkt.Packet.seq)
      ()
  in
  let links =
    Array.init n (fun i ->
        Link.create sim
          ~name:(Printf.sprintf "ch%d" i)
          ~rate_bps:10e6 ~prop_delay:0.002
          ~deliver:(fun pkt -> Resequencer.receive reseq ~channel:i pkt)
          ())
  in
  let sched = Scheduler.of_deficit ~name:"SRR" engine in
  let striper =
    Striper.create ~scheduler:sched
      ~marker:(Marker.make ~every_rounds:4 ())
      ~now:(fun () -> Sim.now sim)
      ~emit:(fun ~channel pkt ->
        ignore (Link.send links.(channel) ~size:pkt.Packet.size pkt))
      ()
  in
  if sender_aware then
    Array.iteri
      (fun i link ->
        Link.on_carrier link (fun ~up ->
            if up then Striper.resume_channel striper i
            else Striper.suspend_channel striper i))
      links;
  { sim; striper; reseq; recovery; reorder; links }

(* Paced bimodal source at ~80% of the healthy aggregate. *)
let drive rig =
  let rng = Rng.create 77 in
  let gen =
    Stripe_workload.Genpkt.bimodal ~rng ~small:Sizes.small_packet
      ~large:Sizes.large_packet ()
  in
  let seq = ref 0 in
  let rec tick () =
    if Sim.now rig.sim < run_until then begin
      for _ = 1 to 2 do
        Striper.push rig.striper
          (Packet.data ~seq:!seq ~born:(Sim.now rig.sim) ~size:(gen ()) ());
        incr seq
      done;
      Sim.schedule_after rig.sim ~delay:0.0006 tick
    end
  in
  tick ()

type result = {
  slug : string;
  label : string;
  delivered : int;
  ooo : int;
  wd_skips : int;
  longest_outage_ms : float;
  failback_ms : float;  (* negative = service never came back *)
  resync_ms : float;  (* negative = FIFO never restored *)
  availability : float;
}

let configs =
  [
    ("full", "sender-aware + watchdog", true, true);
    ("sender_aware", "sender-aware", true, false);
    ("watchdog", "receiver watchdog", false, true);
    ("unprotected", "unprotected", false, false);
  ]

let run_config (slug, label, sender_aware, with_wd) =
  let watchdog =
    if with_wd then Some { Resequencer.intervals = 3; fallback = 0.01 }
    else None
  in
  let rig = make_rig ~sender_aware ~watchdog () in
  drive rig;
  Fault.down_up rig.sim rig.links.(1) ~down_at ~up_at;
  Sim.run rig.sim;
  let failback_ms =
    match Stripe_metrics.Recovery.first_after rig.recovery ~time:up_at with
    | Some t -> 1000.0 *. (t -. up_at)
    | None -> -1.0
  in
  let resync_ms =
    (* The channel outage is the error episode: once the member is back
       and the reset barrier / markers have flowed, delivery must be
       FIFO again (Theorem 5.1). *)
    match Stripe_metrics.Recovery.resync_time rig.recovery ~errors_stop:up_at with
    | Some dt -> 1000.0 *. dt
    | None -> -1.0
  in
  {
    slug;
    label;
    delivered = Stripe_metrics.Recovery.deliveries rig.recovery;
    ooo = Reorder.out_of_order rig.reorder;
    wd_skips = Resequencer.watchdog_skips rig.reseq;
    longest_outage_ms =
      1000.0
      *. Stripe_metrics.Recovery.max_gap rig.recovery ~from_:down_at
           ~until_:run_until;
    failback_ms;
    resync_ms;
    availability =
      Stripe_metrics.Recovery.availability rig.recovery ~from_:0.0
        ~until_:run_until ~bucket:0.01;
  }

let fmt_ms v = if v < 0.0 then "never" else Printf.sprintf "%.1f" v

let print_table results =
  let tbl =
    Stripe_metrics.Table.create ~title:"Protection configurations"
      ~columns:
        [
          "configuration"; "delivered"; "ooo"; "wd skips";
          "longest outage (ms)"; "failback (ms)"; "resync (ms)"; "avail";
        ]
  in
  List.iter
    (fun r ->
      Stripe_metrics.Table.add_row tbl
        [
          r.label;
          string_of_int r.delivered;
          string_of_int r.ooo;
          string_of_int r.wd_skips;
          Printf.sprintf "%.1f" r.longest_outage_ms;
          fmt_ms r.failback_ms;
          fmt_ms r.resync_ms;
          Printf.sprintf "%.1f%%" (100.0 *. r.availability);
        ])
    results;
  Stripe_metrics.Table.print tbl;
  print_endline
    "Full protection needs both ends. Sender-side suspension alone keeps";
  print_endline
    "packets off the dead member (zero misordering, instant resync at";
  print_endline
    "failback via the reset barrier) but the receiver still blocks for the";
  print_endline
    "whole outage: suspension is invisible to its simulation of the sender.";
  print_endline
    "The receiver watchdog alone restores service after the dead-channel";
  print_endline
    "timeout, at the cost of losing what was striped into the dead link";
  print_endline "(quasi-FIFO). Combined, the survivors carry everything and delivery";
  print_endline "never reorders.\n"

let json_of_result r =
  Printf.sprintf
    "{\"config\":\"%s\",\"delivered\":%d,\"ooo\":%d,\"wd_skips\":%d,\"longest_outage_ms\":%.3f,\"failback_ms\":%.3f,\"resync_ms\":%.3f,\"availability\":%.4f}"
    r.slug r.delivered r.ooo r.wd_skips r.longest_outage_ms r.failback_ms
    r.resync_ms r.availability

(* Same minimal committed-JSON scanner as exp_fleet: find "FIELD":NUMBER
   after a "config":"SLUG" tag. *)
let scan_number ~slug ~field path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  let find needle from =
    let nl = String.length needle and sl = String.length s in
    let rec go i =
      if i + nl > sl then None
      else if String.sub s i nl = needle then Some (i + nl)
      else go (i + 1)
    in
    go from
  in
  match find (Printf.sprintf "\"config\":\"%s\"" slug) 0 with
  | None -> None
  | Some after_tag -> (
    match find (Printf.sprintf "\"%s\":" field) after_tag with
    | None -> None
    | Some p ->
      let stop = ref p in
      while
        !stop < String.length s
        && (match s.[!stop] with
           | '0' .. '9' | '.' | '-' | 'e' | 'E' | '+' -> true
           | _ -> false)
      do
        incr stop
      done;
      float_of_string_opt (String.sub s p (!stop - p)))

(* The run is virtual-time deterministic, so a tight default tolerance
   holds; the slack absorbs deliberate small protocol changes without
   baseline churn. Recovery times get 1 ms absolute headroom on top so
   a 0 ms committed value does not demand exact zeros forever. *)
let check ~max_regress ~file results =
  if not (Sys.file_exists file) then begin
    Printf.eprintf
      "  FAIL: baseline file %s does not exist — regenerate it with --json %s \
       and commit it\n"
      file file;
    exit 1
  end;
  let fail = ref false in
  let lookup slug field =
    match scan_number ~slug ~field file with
    | Some v -> v
    | None ->
      Printf.eprintf
        "  FAIL: no committed \"%s\" entry for config \"%s\" in %s — \
         regenerate the baseline with --json\n"
        field slug file;
      fail := true;
      Float.nan
  in
  let check_lower slug what current committed =
    if Float.is_nan committed then ()
    else begin
      let floor = committed *. (1.0 -. max_regress) in
      Printf.printf "  check %-13s %-12s %10.3f vs committed %10.3f (floor %.3f)\n"
        slug what current committed floor;
      if current < floor then begin
        Printf.eprintf "  FAIL: %s %s regressed (%.3f < %.3f)\n" slug what
          current floor;
        fail := true
      end
    end
  in
  let check_time slug what current committed =
    if Float.is_nan committed then ()
    else if committed < 0.0 then begin
      (* Committed "never": coming back at all is an improvement. *)
      Printf.printf "  check %-13s %-12s %10s vs committed never\n" slug what
        (fmt_ms current)
    end
    else begin
      let ceiling = (committed *. (1.0 +. max_regress)) +. 1.0 in
      Printf.printf
        "  check %-13s %-12s %10.3f vs committed %10.3f (ceiling %.3f)\n" slug
        what current committed ceiling;
      if current < 0.0 || current > ceiling then begin
        Printf.eprintf "  FAIL: %s %s regressed (%s > %.3f ms)\n" slug what
          (fmt_ms current) ceiling;
        fail := true
      end
    end
  in
  List.iter
    (fun r ->
      check_lower r.slug "availability" r.availability
        (lookup r.slug "availability");
      check_lower r.slug "delivered" (float_of_int r.delivered)
        (lookup r.slug "delivered");
      check_time r.slug "failback_ms" r.failback_ms
        (lookup r.slug "failback_ms");
      check_time r.slug "resync_ms" r.resync_ms (lookup r.slug "resync_ms"))
    results;
  if !fail then exit 1

let () =
  let json_out = ref None in
  let check_file = ref None in
  let max_regress = ref 0.05 in
  let rec parse = function
    | [] -> ()
    | "--json" :: file :: rest ->
      json_out := Some file;
      parse rest
    | "--check" :: file :: rest ->
      check_file := Some file;
      parse rest
    | "--max-regress" :: v :: rest ->
      max_regress := float_of_string v;
      parse rest
    | arg :: _ ->
      Printf.eprintf
        "usage: exp_failover [--json FILE] [--check FILE] [--max-regress F] \
         (got %s)\n"
        arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  print_endline
    "Failover - member down at 1.0 s, back at 2.0 s (3 x 10 Mbps SRR, markers \
     every 4 rounds)";
  let results = List.map run_config configs in
  print_table results;
  (match !json_out with
  | None -> ()
  | Some file ->
    let oc = open_out file in
    Printf.fprintf oc
      "{\n\
      \  \"scenario\": \"failover: 3x10Mbps SRR markers=4, member 1 down \
       1.0-2.0s, 80%% offered load\",\n\
      \  \"configs\": [\n    %s\n  ]\n\
       }\n"
      (String.concat ",\n    " (List.map json_of_result results));
    close_out oc;
    Printf.printf "  wrote %s\n%!" file);
  match !check_file with
  | None -> ()
  | Some file -> check ~max_regress:!max_regress ~file results
