(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation. Run with no argument for all experiments, or name one:

     dune exec bench/main.exe -- [table1|fig2-3|fig5-6|fig8-13|fig15|
                                  grr-worst|resync-loss|marker-freq|
                                  marker-pos|credit|video|fairness|micro] *)

let experiments =
  [
    ("table1", fun () -> Exp_table1.run ());
    ("fig2-3", fun () -> Exp_figures.run_fig2_3 ());
    ("fig5-6", fun () -> Exp_figures.run_fig5_6 ());
    ("fig8-13", fun () -> Exp_figures.run_fig8_13 ());
    ("fig15", fun () -> Exp_fig15.run ());
    ("grr-worst", fun () -> Exp_grr_worst.run ());
    ("resync-loss", fun () -> Exp_resync.run_e1 ());
    ("marker-freq", fun () -> Exp_resync.run_e2 ());
    ("marker-pos", fun () -> Exp_resync.run_e3 ());
    ("credit", fun () -> Exp_credit.run ());
    ("video", fun () -> Exp_video.run ());
    ("fairness", fun () -> Exp_fairness.run ());
    ("mtu", fun () -> Exp_mtu.run ());
    ("skew", fun () -> Exp_skew.run ());
    ("atm-epd", fun () -> Exp_atm.run ());
    ("mppp", fun () -> Exp_mppp.run ());
    ("fq", fun () -> Exp_fq.run ());
    ("latency", fun () -> Exp_latency.run ());
    ("micro", fun () -> Micro.run ());
  ]

let () =
  match Sys.argv with
  | [| _ |] ->
    print_endline
      "Reproducing 'A Reliable and Scalable Striping Protocol' (SIGCOMM 1996)";
    print_endline "All experiments; pass a name to run one (see bench/main.ml).\n";
    List.iter (fun (_, f) -> f ()) experiments
  | [| _; name |] -> (
    match List.assoc_opt name experiments with
    | Some f -> f ()
    | None ->
      Printf.eprintf "unknown experiment %S; known: %s\n" name
        (String.concat ", " (List.map fst experiments));
      exit 1)
  | _ ->
    prerr_endline "usage: main.exe [experiment]";
    exit 1
