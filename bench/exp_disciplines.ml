(* Striping-discipline comparison matrix: the same 3 x 10 Mbps bundle
   (skewed one-way delays 8/1/4 ms) under the same bursty source, run
   once per discipline per scenario:

   disciplines   SRR, RR, GRR (CFQ engines, quasi-FIFO machinery),
                 Sprinklers (randomized variable-size stripes: SRR
                 quanta scaled to burst granularity + seeded per-round
                 permuted visit order — still causal, still replayed),
                 RFQ (seeded random draw per packet — causal but
                 engine-less), Load-aware (min completion time by
                 transmit-queue debt over rate — non-causal). The
                 engine-less disciplines deliver in arrival order.
   scenarios     clean | impair (channel 1 reorders/duplicates/corrupts
                 behind a channel guard until 1.2 s) | failover
                 (channel 2 carrier drops at 0.5 s, heals at 1.1 s,
                 suspend/resume + §5 barrier through the striper) |
                 health (Gilbert-Elliott gray loss on channel 1 from
                 0.5 s to 1.2 s under the §13 health engine:
                 quarantine on evidence, timed reinstatement).

   The source is deliberately bursty — trains of 6 consecutive 1000 B
   packets every 12 ms, each train exactly one Sprinklers stripe —
   because burst locality is exactly what variable-size stripes buy:
   SRR's packet-grain rotation sprays each train across all three
   (delay-skewed) channels, so trains arrive interleaved; Sprinklers
   parks a whole train on one wire, trading a wider fairness bound for
   burst-local FIFO arrivals. The gaps matter too: at saturation every
   discipline is backlogged and depth degenerates to bytes-in-flight
   (which larger stripes make {e worse}); with idle gaps between
   trains the gauge isolates placement. The [depth] columns quantify it:
   max/p99 over arrivals of how far each packet's sequence trails the
   highest sequence already arrived (the same gauge as
   [Resequencer.reorder_depth_max], measured here uniformly at the wire
   exit so engine-less disciplines are comparable).

   Reported per cell: the discipline's analytic fairness bound (bytes;
   n/a for the engine-less disciplines), goodput, arrival reorder depth
   (max and p99), delivered-order inversions, and post-fault resync
   time. Everything runs in virtual time on seeded randomness, so the
   matrix is deterministic — a CI gate:

     dune exec bench/exp_disciplines.exe --                  # table
     dune exec bench/exp_disciplines.exe -- --json FILE      # baseline
     dune exec bench/exp_disciplines.exe -- --check FILE [--max-regress F]
       # exit 1 if delivery or resync regresses more than F (default
       # 0.05) against FILE, or the Sprinklers acceptance bar fails:
       # strictly lower clean-scenario arrival reorder depth than SRR
       # at equal (±2%) goodput. *)

open Stripe_netsim
open Stripe_packet
open Stripe_core

let n = 3
let rates = [| 10e6; 10e6; 10e6 |]
let delays = [| 0.008; 0.001; 0.004 |]
let errors_stop = 1.2
let fail_at = 0.5
let heal_at = 1.1
let gray_at = 0.5
let run_until = 1.6
let drain_until = 2.0
let guard_window = 48
let max_packet = 1500
let sprinklers_seed = 0x5eed

type disc = Srr_d | Rr_d | Grr_d | Sprinklers_d | Rfq_d | Load_aware_d

let disciplines =
  [
    ("srr", Srr_d); ("rr", Rr_d); ("grr", Grr_d);
    ("sprinklers", Sprinklers_d); ("rfq", Rfq_d); ("load-aware", Load_aware_d);
  ]

type scenario = Clean | Impair_s | Failover | Health_s

let scenarios =
  [
    ("clean", Clean); ("impair", Impair_s); ("failover", Failover);
    ("health", Health_s);
  ]

(* Uniform arrival reorder-depth gauge: fed at the wire exit (before
   guard/resequencer) so every discipline is measured at the same
   point. Same bucket scheme as the resequencer's gauge. *)
module Depth = struct
  let buckets = 256

  type t = { hist : int array; mutable max_seq : int; mutable max_d : int;
             mutable samples : int }

  let create () =
    { hist = Array.make buckets 0; max_seq = -1; max_d = 0; samples = 0 }

  let observe t ~seq =
    if seq >= 0 then begin
      let d = if seq < t.max_seq then t.max_seq - seq else 0 in
      if d > t.max_d then t.max_d <- d;
      let b = if d >= buckets then buckets - 1 else d in
      t.hist.(b) <- t.hist.(b) + 1;
      t.samples <- t.samples + 1;
      if seq > t.max_seq then t.max_seq <- seq
    end

  let max_depth t = t.max_d

  let percentile t ~p =
    if t.samples = 0 then 0
    else begin
      let need =
        max 1 (int_of_float (ceil (p *. float_of_int t.samples)))
      in
      let acc = ref 0 and d = ref 0 and found = ref (-1) in
      while !found < 0 && !d < buckets - 1 do
        acc := !acc + t.hist.(!d);
        if !acc >= need then found := !d;
        incr d
      done;
      if !found >= 0 then !found else t.max_d
    end
end

type result = {
  slug : string;  (* "<discipline>_<scenario>" *)
  disc_label : string;
  scen_label : string;
  fairness : int;  (* analytic bound, bytes; -1 = not bounded *)
  delivered : int;
  goodput_mbps : float;
  depth_max : int;
  depth_p99 : int;
  inversions : int;  (* delivered-order inversions *)
  resync_ms : float;  (* negative = FIFO never restored / not applicable *)
}

let run_cell (disc_slug, disc) (scen_slug, scen) =
  let sim = Sim.create () in
  let master = Rng.create 4242 in
  let recovery = Stripe_metrics.Recovery.create () in
  let reorder = Reorder.create () in
  let depth = Depth.create () in
  let delivered_bytes = ref 0 in
  let engine_opt =
    match disc with
    | Srr_d ->
      Some (Srr.for_rates ~max_packet ~rates_bps:rates ~quantum_unit:1500 ())
    | Rr_d -> Some (Rr.create ~n ())
    | Grr_d -> Some (Grr.for_rates ~rates_bps:rates ())
    | Sprinklers_d ->
      Some
        (Sprinklers.for_rates ~max_packet ~seed:sprinklers_seed
           ~rates_bps:rates ~quantum_unit:1500 ())
    | Rfq_d | Load_aware_d -> None
  in
  let la_debt = ref (fun (_ : int) -> 0.0) in
  let scheduler =
    match engine_opt, disc with
    | Some e, _ -> Scheduler.of_deficit ~name:disc_slug e
    | None, Rfq_d -> Scheduler.seeded_rfq ~n ~seed:sprinklers_seed
    | None, _ ->
      Scheduler.load_aware ~weights:rates ~debt:(fun c -> !la_debt c) ~n ()
  in
  let deliver ~channel:_ (pkt : Packet.t) =
    Stripe_metrics.Recovery.observe recovery ~now:(Sim.now sim)
      ~seq:pkt.Packet.seq;
    Reorder.observe reorder ~seq:pkt.Packet.seq;
    delivered_bytes := !delivered_bytes + pkt.Packet.size
  in
  let reseq =
    match engine_opt with
    | Some e ->
      Some
        (Resequencer.create ~deficit:(Deficit.clone_initial e)
           ~now:(fun () -> Sim.now sim)
           ~watchdog:{ Resequencer.intervals = 3; fallback = 0.02 }
           ~deliver ())
    | None -> None
  in
  (* Arrival path: depth gauge first (uniform measurement point), then
     guard (impair scenario only), then resequencer or arrival-order
     delivery. *)
  let ingest c pkt =
    match reseq with
    | Some r -> Resequencer.receive r ~channel:c pkt
    | None -> if not (Packet.is_marker pkt) then deliver ~channel:c pkt
  in
  let guard =
    match scen with
    | Impair_s ->
      Some
        (Channel_guard.create ~n ~window:guard_window
           ~now:(fun () -> Sim.now sim)
           ~deliver:(fun ~channel pkt -> ingest channel pkt)
           ())
    | _ -> None
  in
  let mangle_rng = Rng.split master in
  let impairment =
    Impair.make ~reorder_p:0.2 ~reorder_window:0.01 ~dup_p:0.05
      ~corrupt_p:0.02 ()
  in
  let links =
    Array.init n (fun i ->
        Link.create sim
          ~name:(Printf.sprintf "ch%d" i)
          ~rate_bps:rates.(i) ~prop_delay:delays.(i) ~rng:(Rng.split master)
          ~impair:
            (if scen = Impair_s && i = 1 then impairment else Impair.none)
          ~corrupt:(fun (tag, pkt) ->
            if Packet.is_marker pkt then
              Some
                ( tag,
                  Packet.mangle_marker
                    ~salt:(Rng.int mangle_rng 0x3fffffff)
                    pkt )
            else None)
          ~deliver:(fun (tag, pkt) ->
            if not (Packet.is_marker pkt) then
              Depth.observe depth ~seq:pkt.Packet.seq;
            match guard with
            | Some g -> Channel_guard.receive g ~channel:i ~tag pkt
            | None -> ingest i pkt)
          ())
  in
  la_debt := (fun c -> float_of_int (Link.queue_bytes links.(c)));
  let tx_tags = Channel_guard.Tx.create ~n in
  let striper =
    Striper.create ~scheduler
      ?marker:
        (match engine_opt with
        | Some _ -> Some (Marker.make ~every_rounds:4 ())
        | None -> None)
      ~now:(fun () -> Sim.now sim)
      ~emit:(fun ~channel pkt ->
        let tag =
          match guard with
          | Some _ -> Channel_guard.Tx.next_tag tx_tags ~channel
          | None -> -1
        in
        ignore (Link.send links.(channel) ~size:pkt.Packet.size (tag, pkt)))
      ()
  in
  (* Scenario events. *)
  (match scen with
  | Clean -> ()
  | Impair_s ->
    Sim.schedule sim ~at:errors_stop (fun () ->
        Array.iter (fun l -> Link.set_impairments l Impair.none) links)
  | Failover ->
    Sim.schedule sim ~at:fail_at (fun () ->
        Link.set_up links.(2) false;
        Striper.suspend_channel striper 2);
    Sim.schedule sim ~at:heal_at (fun () ->
        Link.set_up links.(2) true;
        Striper.resume_channel striper 2)
  | Health_s ->
    let gray =
      Loss.gilbert ~p_good_to_bad:0.1 ~p_bad_to_good:0.1 ~loss_good:0.02
        ~loss_bad:0.9
    in
    Sim.schedule sim ~at:gray_at (fun () -> Link.set_loss links.(1) gray);
    Sim.schedule sim ~at:errors_stop (fun () ->
        Link.set_loss links.(1) (Loss.none ()));
    let h =
      Health.create
        ~live:(fun c -> c >= 0 && c < n && Link.is_up links.(c))
        ~n ()
    in
    let last_sent = Array.make n 0 in
    let last_lost = Array.make n 0 in
    let rec tick () =
      for c = 0 to n - 1 do
        let ds = Link.sent_packets links.(c) - last_sent.(c) in
        let dl = Link.lost_packets links.(c) - last_lost.(c) in
        last_sent.(c) <- Link.sent_packets links.(c);
        last_lost.(c) <- Link.lost_packets links.(c);
        if ds > 0 || dl > 0 then
          Health.observe h ~channel:c ~sent:ds ~lost:dl ~goodput_ratio:1.0 ()
      done;
      List.iter
        (function
          | Health.To_quarantine { channel; _ } ->
            Striper.suspend_channel striper channel
          | Health.To_probation { channel; from_quarantine = true } ->
            Striper.resume_channel striper channel
          | Health.To_suspect _ | Health.To_probation _ | Health.To_healthy _
            -> ())
        (Health.sample h ~now:(Sim.now sim));
      if Sim.now sim < run_until then Sim.schedule_after sim ~delay:0.05 tick
    in
    Sim.schedule sim ~at:0.05 tick);
  (* Bursty source: a train of 6 consecutive 1000 B packets every 12 ms
     — long enough for each train to serialize and propagate before the
     next, so what the depth gauge sees is pure placement, not queueing.
     One train is exactly one Sprinklers stripe (6000 B); burst
     locality is the whole experiment — see the header comment. *)
  let seq = ref 0 in
  let rec burst () =
    if Sim.now sim < run_until then begin
      for _ = 1 to 6 do
        Striper.push striper
          (Packet.data ~seq:!seq ~born:(Sim.now sim) ~size:1000 ());
        incr seq
      done;
      Sim.schedule_after sim ~delay:0.012 burst
    end
  in
  burst ();
  Sim.schedule sim ~at:drain_until (fun () ->
      match guard with Some g -> Channel_guard.flush g | None -> ());
  Sim.run sim;
  let delivered = Stripe_metrics.Recovery.deliveries recovery in
  let resync_ms =
    match engine_opt with
    | None -> -1.0  (* arrival order: FIFO is never the contract *)
    | Some _ -> (
      match
        Stripe_metrics.Recovery.resync_time recovery ~errors_stop
      with
      | Some dt -> 1000.0 *. dt
      | None -> -1.0)
  in
  {
    slug = disc_slug ^ "_" ^ scen_slug;
    disc_label = disc_slug;
    scen_label = scen_slug;
    fairness =
      (match engine_opt with
      | Some e -> Srr.fairness_bound e
      | None -> -1);
    delivered;
    goodput_mbps =
      8.0 *. float_of_int !delivered_bytes /. run_until /. 1e6;
    depth_max = Depth.max_depth depth;
    depth_p99 = Depth.percentile depth ~p:0.99;
    inversions = Reorder.out_of_order reorder;
    resync_ms;
  }

let fmt_ms v = if v < 0.0 then "n/a" else Printf.sprintf "%.1f" v
let fmt_bound v = if v < 0 then "n/a" else Printf.sprintf "%dB" v

let print_table results =
  let tbl =
    Stripe_metrics.Table.create ~title:"Striping disciplines"
      ~columns:
        [
          "discipline"; "scenario"; "fair bound"; "delivered"; "goodput";
          "depth max"; "depth p99"; "inversions"; "resync (ms)";
        ]
  in
  List.iter
    (fun r ->
      Stripe_metrics.Table.add_row tbl
        [
          r.disc_label;
          r.scen_label;
          fmt_bound r.fairness;
          string_of_int r.delivered;
          Printf.sprintf "%.2f Mbps" r.goodput_mbps;
          string_of_int r.depth_max;
          string_of_int r.depth_p99;
          string_of_int r.inversions;
          fmt_ms r.resync_ms;
        ])
    results;
  Stripe_metrics.Table.print tbl;
  print_endline
    "Engine disciplines (srr/rr/grr/sprinklers) resequence: inversions stay 0";
  print_endline
    "and FIFO returns within about a marker interval of each fault horizon.";
  print_endline
    "Sprinklers trades a stripe_scale-wider fairness bound for burst-local";
  print_endline
    "FIFO arrivals: on the bursty source its arrival reorder depth sits well";
  print_endline
    "under SRR's at the same goodput, which shrinks the resequencing buffer";
  print_endline
    "the receiver must hold. The engine-less disciplines (rfq/load-aware)";
  print_endline
    "deliver in arrival order: load-aware's queue-debt selector keeps the";
  print_endline
    "wire busy (goodput) but surrenders ordering entirely - the depth and";
  print_endline "inversion columns price that trade.\n"

let json_of_result r =
  Printf.sprintf
    "{\"config\":\"%s\",\"fairness\":%d,\"delivered\":%d,\"goodput_mbps\":%.4f,\"depth_max\":%d,\"depth_p99\":%d,\"inversions\":%d,\"resync_ms\":%.3f}"
    r.slug r.fairness r.delivered r.goodput_mbps r.depth_max r.depth_p99
    r.inversions r.resync_ms

(* Minimal committed-JSON scanner (same as exp_impair): find
   "FIELD":NUMBER after a "config":"SLUG" tag. *)
let scan_number ~slug ~field path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  let find needle from =
    let nl = String.length needle and sl = String.length s in
    let rec go i =
      if i + nl > sl then None
      else if String.sub s i nl = needle then Some (i + nl)
      else go (i + 1)
    in
    go from
  in
  match find (Printf.sprintf "\"config\":\"%s\"" slug) 0 with
  | None -> None
  | Some after_tag -> (
    match find (Printf.sprintf "\"%s\":" field) after_tag with
    | None -> None
    | Some p ->
      let stop = ref p in
      while
        !stop < String.length s
        && (match s.[!stop] with
           | '0' .. '9' | '.' | '-' | 'e' | 'E' | '+' -> true
           | _ -> false)
      do
        incr stop
      done;
      float_of_string_opt (String.sub s p (!stop - p)))

(* The Sprinklers acceptance bar, enforced on every run: on the bursty
   clean scenario it must beat SRR's arrival reorder depth strictly, at
   equal (±2%) goodput. *)
let acceptance results =
  let get slug = List.find (fun r -> r.slug = slug) results in
  let srr = get "srr_clean" and spr = get "sprinklers_clean" in
  let ok_depth = spr.depth_max < srr.depth_max in
  let ok_goodput =
    Float.abs (spr.goodput_mbps -. srr.goodput_mbps)
    <= 0.02 *. srr.goodput_mbps
  in
  Printf.printf
    "acceptance: sprinklers depth %d %s srr depth %d at %.2f vs %.2f Mbps \
     (%s)\n"
    spr.depth_max
    (if ok_depth then "<" else ">=")
    srr.depth_max spr.goodput_mbps srr.goodput_mbps
    (if ok_depth && ok_goodput then "ok" else "FAIL");
  ok_depth && ok_goodput

let check ~max_regress ~file results =
  if not (Sys.file_exists file) then begin
    Printf.eprintf
      "  FAIL: baseline file %s does not exist — regenerate it with --json \
       %s and commit it\n"
      file file;
    exit 1
  end;
  let fail = ref false in
  let lookup slug field =
    match scan_number ~slug ~field file with
    | Some v -> v
    | None ->
      Printf.eprintf
        "  FAIL: no committed \"%s\" entry for config \"%s\" in %s — \
         regenerate the baseline with --json\n"
        field slug file;
      fail := true;
      Float.nan
  in
  let check_lower slug what current committed =
    if Float.is_nan committed then ()
    else begin
      let floor = committed *. (1.0 -. max_regress) in
      Printf.printf
        "  check %-24s %-12s %10.3f vs committed %10.3f (floor %.3f)\n" slug
        what current committed floor;
      if current < floor then begin
        Printf.eprintf "  FAIL: %s %s regressed (%.3f < %.3f)\n" slug what
          current floor;
        fail := true
      end
    end
  in
  let check_time slug what current committed =
    if Float.is_nan committed then ()
    else if committed < 0.0 then ()
    else begin
      let ceiling = (committed *. (1.0 +. max_regress)) +. 1.0 in
      Printf.printf
        "  check %-24s %-12s %10.3f vs committed %10.3f (ceiling %.3f)\n"
        slug what current committed ceiling;
      if current < 0.0 || current > ceiling then begin
        Printf.eprintf "  FAIL: %s %s regressed (%s > %.3f ms)\n" slug what
          (fmt_ms current) ceiling;
        fail := true
      end
    end
  in
  List.iter
    (fun r ->
      check_lower r.slug "delivered" (float_of_int r.delivered)
        (lookup r.slug "delivered");
      check_time r.slug "resync_ms" r.resync_ms (lookup r.slug "resync_ms"))
    results;
  if not (acceptance results) then fail := true;
  if !fail then exit 1

let () =
  let json_out = ref None in
  let check_file = ref None in
  let max_regress = ref 0.05 in
  let rec parse = function
    | [] -> ()
    | "--json" :: file :: rest ->
      json_out := Some file;
      parse rest
    | "--check" :: file :: rest ->
      check_file := Some file;
      parse rest
    | "--max-regress" :: v :: rest ->
      max_regress := float_of_string v;
      parse rest
    | arg :: _ ->
      Printf.eprintf
        "usage: exp_disciplines [--json FILE] [--check FILE] [--max-regress \
         F] (got %s)\n"
        arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  print_endline
    "Striping disciplines - 3 x 10 Mbps, delays 8/1/4 ms, bursty source (6 x \
     1000 B trains every 12 ms), scenarios clean/impair/failover/health";
  let results =
    List.concat_map
      (fun d -> List.map (fun s -> run_cell d s) scenarios)
      disciplines
  in
  print_table results;
  (match !check_file with
  | Some _ -> ()
  | None -> ignore (acceptance results));
  (match !json_out with
  | None -> ()
  | Some file ->
    let oc = open_out file in
    Printf.fprintf oc
      "{\n\
      \  \"scenario\": \"disciplines: 3x10Mbps delays 8/1/4ms, bursty 6x1000B \
       trains every 12ms, scenarios clean/impair/failover/health\",\n\
      \  \"configs\": [\n    %s\n  ]\n\
       }\n"
      (String.concat ",\n    " (List.map json_of_result results));
    close_out oc;
    Printf.printf "  wrote %s\n%!" file);
  match !check_file with
  | None -> ()
  | Some file -> check ~max_regress:!max_regress ~file results
