(* End-to-end engine throughput benchmark: the perf trajectory gate.

   Reference scenario: 4 channels at 10 Mbps with dissimilar one-way
   delays, SRR striping with markers every 4 rounds, quasi-FIFO logical
   reception through the resequencer, 1M bimodal packets (the paper's
   sending program). Measures *simulated packets per wall-clock second*
   and the allocation rate of the hot path (minor words per packet).

   Usage:
     dune exec bench/exp_throughput.exe --             # full run, table
     dune exec bench/exp_throughput.exe -- --quick     # 100k packets
     dune exec bench/exp_throughput.exe -- --json FILE # machine output
     dune exec bench/exp_throughput.exe -- --repeat 5  # best-of-5 per engine
     dune exec bench/exp_throughput.exe -- --check FILE --max-regress 0.30
       # CI gate: exit 1 if pps drops >30% below FILE's committed numbers

   Each engine is run [--repeat] times (default 3) and the fastest run
   is reported: wall-clock noise on a shared machine is one-sided, so
   best-of-N converges on the machine's true throughput while the
   allocation rate (minor words per packet) is identical across runs
   anyway.

   BENCH_throughput.json at the repo root records the trajectory: the
   frozen pre-optimization baseline (boxed binary heap, tuple FIFO
   queues, closure-per-send links, measured at commit 60b89d5) next to
   the current engines, so every future PR can see where the hot path
   stands. *)

open Stripe_netsim
open Stripe_packet
open Stripe_core

(* The pre-optimization baseline, measured on this scenario (full size,
   release profile) at commit 60b89d5 before the calendar queue and the
   allocation-lean hot path landed. Frozen here — and echoed into the
   JSON — so the speedup is always reported against the same reference
   point. *)
let baseline_pps = 730780.0
let baseline_minor_words_per_packet = 132.78

type result = {
  engine : string;
  n_packets : int;
  delivered : int;
  wall_s : float;
  pps : float;
  minor_words : float;
  minor_words_per_packet : float;
  sim_seconds : float;
}

let reference_delays = [| 0.001; 0.002; 0.005; 0.010 |]
let reference_rate = 10e6
let reference_seed = 42

let run_once ~engine ~n_packets () =
  let sim = Sim.create ~engine () in
  let rng = Rng.create reference_seed in
  let n = Array.length reference_delays in
  let rates = Array.make n reference_rate in
  let srr = Srr.for_rates ~rates_bps:rates ~quantum_unit:1500 () in
  let scheduler = Scheduler.of_deficit ~name:"SRR" srr in
  let delivered = ref 0 in
  let reseq =
    Resequencer.create
      ~deficit:(Deficit.clone_initial srr)
      ~now:(fun () -> Sim.now sim)
      ~deliver:(fun ~channel:_ _ -> incr delivered)
      ()
  in
  let links =
    Array.init n (fun i ->
        Link.create sim
          ~name:(Printf.sprintf "ch%d" i)
          ~rate_bps:rates.(i) ~prop_delay:reference_delays.(i)
          ~rng:(Rng.split rng)
          ~deliver:(fun pkt -> Resequencer.receive reseq ~channel:i pkt)
          ())
  in
  let striper =
    Striper.create ~scheduler
      ~marker:(Marker.make ~every_rounds:4 ())
      ~now:(fun () -> Sim.now sim)
      ~emit:(fun ~channel pkt ->
        ignore (Link.send links.(channel) ~size:pkt.Packet.size pkt))
      ()
  in
  let gen = Stripe_workload.Genpkt.bimodal ~rng ~small:200 ~large:1000 () in
  let aggregate = Array.fold_left ( +. ) 0.0 rates in
  let interval = 700.0 *. 8.0 /. (aggregate *. 0.9) in
  let seq = ref 0 in
  let rec tick () =
    if !seq < n_packets then begin
      Striper.push striper
        (Packet.data ~seq:!seq ~born:(Sim.now sim) ~size:(gen ()) ());
      incr seq;
      Sim.schedule_after sim ~delay:interval tick
    end
  in
  tick ();
  (* Compact so each engine starts from the same flat major heap rather
     than inheriting the previous run's fragmentation. *)
  Gc.compact ();
  let minor0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  Sim.run sim;
  let wall_s = Unix.gettimeofday () -. t0 in
  let minor_words = Gc.minor_words () -. minor0 in
  if !delivered <> n_packets then
    failwith
      (Printf.sprintf "exp_throughput: delivered %d of %d packets" !delivered
         n_packets);
  {
    engine = Sim.engine_name engine;
    n_packets;
    delivered = !delivered;
    wall_s;
    pps = float_of_int !delivered /. wall_s;
    minor_words;
    minor_words_per_packet = minor_words /. float_of_int n_packets;
    sim_seconds = Sim.now sim;
  }

(* Quick (100k-packet) runs measure systematically lower pps than full
   runs — less time for startup costs to amortize — so the committed
   file carries both sizes and [--check] compares like-for-like: a
   [--quick] check reads the ["<engine>-quick"] entries. *)
let quick_tag engine = engine ^ "-quick"

let json_of_result ?(tag = fun e -> e) r =
  Printf.sprintf
    "{\"engine\":\"%s\",\"n_packets\":%d,\"delivered\":%d,\"wall_s\":%.4f,\"pps\":%.1f,\"minor_words\":%.0f,\"minor_words_per_packet\":%.2f,\"sim_seconds\":%.4f}"
    (tag r.engine) r.n_packets r.delivered r.wall_s r.pps r.minor_words
    r.minor_words_per_packet r.sim_seconds

let print_result r =
  Printf.printf
    "  %-10s %9d pkts  %7.3f s wall  %10.0f pkts/s  %8.2f minor words/pkt\n%!"
    r.engine r.n_packets r.wall_s r.pps r.minor_words_per_packet

(* Minimal scanner for the committed JSON: find "NAME":NUMBER after an
   "engine":"ENGINE" tag. Good enough for the gate; no JSON dep. *)
let scan_number ~engine ~field path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  let find needle from =
    let nl = String.length needle and sl = String.length s in
    let rec go i =
      if i + nl > sl then None
      else if String.sub s i nl = needle then Some (i + nl)
      else go (i + 1)
    in
    go from
  in
  match find (Printf.sprintf "\"engine\":\"%s\"" engine) 0 with
  | None -> None
  | Some after_tag -> (
    match find (Printf.sprintf "\"%s\":" field) after_tag with
    | None -> None
    | Some p ->
      let stop = ref p in
      while
        !stop < String.length s
        && (match s.[!stop] with
           | '0' .. '9' | '.' | '-' | 'e' | 'E' | '+' -> true
           | _ -> false)
      do
        incr stop
      done;
      float_of_string_opt (String.sub s p (!stop - p)))

let best_of ~repeat ~engine ~n_packets () =
  let best = ref (run_once ~engine ~n_packets ()) in
  for _ = 2 to repeat do
    let r = run_once ~engine ~n_packets () in
    if r.pps > !best.pps then best := r
  done;
  !best

let () =
  let quick = ref false in
  let json_out = ref None in
  let check = ref None in
  let max_regress = ref 0.30 in
  let repeat = ref 3 in
  let engines = ref [ Sim.Heap; Sim.Calendar ] in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--repeat" :: v :: rest ->
      repeat := max 1 (int_of_string v);
      parse rest
    | "--json" :: file :: rest ->
      json_out := Some file;
      parse rest
    | "--check" :: file :: rest ->
      check := Some file;
      parse rest
    | "--max-regress" :: v :: rest ->
      max_regress := float_of_string v;
      parse rest
    | "--engine" :: "heap" :: rest ->
      engines := [ Sim.Heap ];
      parse rest
    | "--engine" :: "calendar" :: rest ->
      engines := [ Sim.Calendar ];
      parse rest
    | arg :: _ ->
      Printf.eprintf
        "usage: exp_throughput [--quick] [--repeat N] [--json FILE] \
         [--check FILE] [--max-regress F] [--engine heap|calendar] (got %s)\n"
        arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let n_packets = if !quick then 100_000 else 1_000_000 in
  Printf.printf
    "exp_throughput: 4 channels x %.0f Mbps, SRR + markers(4) + resequencer, \
     %d packets, best of %d\n%!"
    (reference_rate /. 1e6) n_packets !repeat;
  let results =
    List.map (fun e -> best_of ~repeat:!repeat ~engine:e ~n_packets ()) !engines
  in
  List.iter print_result results;
  if baseline_pps > 0.0 then
    List.iter
      (fun r ->
        Printf.printf
          "  %-10s vs baseline: %.2fx pps, %.2fx fewer minor words/pkt\n"
          r.engine (r.pps /. baseline_pps)
          (baseline_minor_words_per_packet /. r.minor_words_per_packet))
      results;
  (match !json_out with
  | None -> ()
  | Some file ->
    (* A full-run export also measures and embeds the quick size, so a
       committed file supports like-for-like [--quick --check] in CI. *)
    let quick_entries =
      if !quick then []
      else
        List.map
          (fun e ->
            json_of_result ~tag:quick_tag
              (best_of ~repeat:!repeat ~engine:e ~n_packets:100_000 ()))
          !engines
    in
    let entries =
      List.map
        (json_of_result ~tag:(if !quick then quick_tag else fun e -> e))
        results
      @ quick_entries
    in
    let oc = open_out file in
    Printf.fprintf oc
      "{\n\
      \  \"scenario\": \"4ch 10Mbps SRR markers=4 resequencer bimodal\",\n\
      \  \"n_packets\": %d,\n\
      \  \"baseline\": \
       {\"engine\":\"boxed-heap@60b89d5\",\"pps\":%.1f,\"minor_words_per_packet\":%.2f},\n\
      \  \"engines\": [\n    %s\n  ]\n\
       }\n"
      n_packets baseline_pps baseline_minor_words_per_packet
      (String.concat ",\n    " entries);
    close_out oc;
    Printf.printf "  wrote %s\n%!" file);
  match !check with
  | None -> ()
  | Some file ->
    if not (Sys.file_exists file) then begin
      Printf.eprintf
        "  FAIL: baseline file %s does not exist — regenerate it with \
         --json %s and commit it\n"
        file file;
      exit 1
    end;
    let fail = ref false in
    List.iter
      (fun r ->
        let tag = if !quick then quick_tag r.engine else r.engine in
        match scan_number ~engine:tag ~field:"pps" file with
        | None ->
          (* A silently missing key would let the gate pass vacuously —
             e.g. a full-run baseline committed without its embedded
             quick entries, checked by a --quick CI job. *)
          Printf.eprintf
            "  FAIL: no committed \"pps\" entry for engine \"%s\" in %s — \
             regenerate the baseline with --json\n"
            tag file;
          fail := true
        | Some committed ->
          let floor = committed *. (1.0 -. !max_regress) in
          Printf.printf
            "  check %-14s %.0f pps vs committed %.0f (floor %.0f)\n" tag r.pps
            committed floor;
          if r.pps < floor then begin
            Printf.eprintf
              "  FAIL: %s regressed more than %.0f%% (%.0f < %.0f pps)\n" tag
              (100.0 *. !max_regress) r.pps floor;
            fail := true
          end)
      results;
    if !fail then exit 1
