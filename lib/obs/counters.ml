type channel = {
  mutable tx_packets : int;
  mutable tx_bytes : int;
  mutable delivered_packets : int;
  mutable delivered_bytes : int;
  mutable drops : int;
  mutable txq_drops : int;
  mutable arrivals : int;
  mutable skips : int;
  mutable markers_sent : int;
  mutable markers_applied : int;
  mutable blocks : int;
  mutable buffered_packets : int;
  mutable buffered_bytes : int;
  mutable hw_buffered_packets : int;
  mutable hw_buffered_bytes : int;
  mutable downs : int;
  mutable ups : int;
  mutable watchdog_skips : int;
  mutable suspends : int;
  mutable resumes : int;
  mutable dup_discards : int;
  mutable reorder_restores : int;
  mutable corrupt_discards : int;
  mutable buffer_overflows : int;
}

type t = {
  chans : channel array;
  mutable resets : int;
  mutable rounds : int;
  mutable n_events : int;
  mutable no_channel_drops_ : int;
}

let fresh_channel () =
  {
    tx_packets = 0;
    tx_bytes = 0;
    delivered_packets = 0;
    delivered_bytes = 0;
    drops = 0;
    txq_drops = 0;
    arrivals = 0;
    skips = 0;
    markers_sent = 0;
    markers_applied = 0;
    blocks = 0;
    buffered_packets = 0;
    buffered_bytes = 0;
    hw_buffered_packets = 0;
    hw_buffered_bytes = 0;
    downs = 0;
    ups = 0;
    watchdog_skips = 0;
    suspends = 0;
    resumes = 0;
    dup_discards = 0;
    reorder_restores = 0;
    corrupt_discards = 0;
    buffer_overflows = 0;
  }

let create ~n =
  if n <= 0 then invalid_arg "Counters.create: n must be positive";
  { chans = Array.init n (fun _ -> fresh_channel ()); resets = 0; rounds = 0;
    n_events = 0; no_channel_drops_ = 0 }

let n_channels t = Array.length t.chans

let channel t c =
  if c < 0 || c >= Array.length t.chans then
    invalid_arg "Counters.channel: bad channel";
  t.chans.(c)

let resets t = t.resets
let rounds t = t.rounds
let events_seen t = t.n_events
let no_channel_drops t = t.no_channel_drops_

let observe t (e : Event.t) =
  t.n_events <- t.n_events + 1;
  let ch =
    if e.channel >= 0 && e.channel < Array.length t.chans then
      Some t.chans.(e.channel)
    else None
  in
  match e.kind, ch with
  | Event.Transmit, Some c ->
    c.tx_packets <- c.tx_packets + 1;
    if e.size > 0 then c.tx_bytes <- c.tx_bytes + e.size
  | Event.Deliver, Some c ->
    c.delivered_packets <- c.delivered_packets + 1;
    if e.size > 0 then c.delivered_bytes <- c.delivered_bytes + e.size;
    c.buffered_packets <- max 0 (c.buffered_packets - 1);
    if e.size > 0 then c.buffered_bytes <- max 0 (c.buffered_bytes - e.size)
  | Event.Enqueue, Some c ->
    c.buffered_packets <- c.buffered_packets + 1;
    if e.size > 0 then c.buffered_bytes <- c.buffered_bytes + e.size;
    if c.buffered_packets > c.hw_buffered_packets then
      c.hw_buffered_packets <- c.buffered_packets;
    if c.buffered_bytes > c.hw_buffered_bytes then
      c.hw_buffered_bytes <- c.buffered_bytes
  | Event.Drop, Some c -> c.drops <- c.drops + 1
  | Event.Txq_drop, Some c -> c.txq_drops <- c.txq_drops + 1
  | Event.Txq_drop, None ->
    (* A [Txq_drop] without a channel is the striper reporting a packet it
       could not dispatch because every channel was suspended. *)
    t.no_channel_drops_ <- t.no_channel_drops_ + 1
  | Event.Arrival, Some c -> c.arrivals <- c.arrivals + 1
  | Event.Skip, Some c -> c.skips <- c.skips + 1
  | Event.Marker_sent, Some c -> c.markers_sent <- c.markers_sent + 1
  | Event.Marker_applied, Some c -> c.markers_applied <- c.markers_applied + 1
  | Event.Block, Some c -> c.blocks <- c.blocks + 1
  | Event.Channel_down, Some c -> c.downs <- c.downs + 1
  | Event.Channel_up, Some c -> c.ups <- c.ups + 1
  | Event.Watchdog_skip, Some c -> c.watchdog_skips <- c.watchdog_skips + 1
  | Event.Suspend, Some c -> c.suspends <- c.suspends + 1
  | Event.Resume, Some c -> c.resumes <- c.resumes + 1
  | Event.Dup_discard, Some c -> c.dup_discards <- c.dup_discards + 1
  | Event.Reorder_restore, Some c ->
    c.reorder_restores <- c.reorder_restores + 1
  | Event.Corrupt_discard, Some c ->
    c.corrupt_discards <- c.corrupt_discards + 1
  | Event.Buffer_overflow, Some c ->
    c.buffer_overflows <- c.buffer_overflows + 1
  | Event.Reset_barrier, _ -> t.resets <- t.resets + 1
  | Event.Round, _ -> if e.round > t.rounds then t.rounds <- e.round
  | Event.Dequeue, _ | Event.Unblock, _ -> ()
  | ( Event.Transmit | Event.Deliver | Event.Enqueue | Event.Drop
    | Event.Arrival | Event.Skip | Event.Marker_sent
    | Event.Marker_applied | Event.Block | Event.Channel_down
    | Event.Channel_up | Event.Watchdog_skip | Event.Suspend
    | Event.Resume | Event.Dup_discard | Event.Reorder_restore
    | Event.Corrupt_discard | Event.Buffer_overflow ), None ->
    ()

let sink t = Sink.of_fn (observe t)

let total f t = Array.fold_left (fun acc c -> acc + f c) 0 t.chans

let total_tx_bytes = total (fun c -> c.tx_bytes)
let total_delivered_packets = total (fun c -> c.delivered_packets)
let total_drops = total (fun c -> c.drops + c.txq_drops)
let total_skips = total (fun c -> c.skips)
let total_watchdog_skips = total (fun c -> c.watchdog_skips)
let total_downs = total (fun c -> c.downs)
let total_dup_discards = total (fun c -> c.dup_discards)
let total_reorder_restores = total (fun c -> c.reorder_restores)
let total_corrupt_discards = total (fun c -> c.corrupt_discards)
let total_buffer_overflows = total (fun c -> c.buffer_overflows)

let pp fmt t =
  Array.iteri
    (fun i c ->
      Format.fprintf fmt
        "ch%d: tx=%d/%dB delivered=%d/%dB drops=%d+%d skips=%d markers=%d/%d \
         buf-hw=%d@."
        i c.tx_packets c.tx_bytes c.delivered_packets c.delivered_bytes c.drops
        c.txq_drops c.skips c.markers_sent c.markers_applied
        c.hw_buffered_packets)
    t.chans;
  Format.fprintf fmt "resets=%d rounds=%d events=%d" t.resets t.rounds
    t.n_events
