type channel = {
  mutable tx_packets : int;
  mutable tx_bytes : int;
  mutable delivered_packets : int;
  mutable delivered_bytes : int;
  mutable drops : int;
  mutable txq_drops : int;
  mutable arrivals : int;
  mutable skips : int;
  mutable markers_sent : int;
  mutable markers_applied : int;
  mutable blocks : int;
  mutable buffered_packets : int;
  mutable buffered_bytes : int;
  mutable hw_buffered_packets : int;
  mutable hw_buffered_bytes : int;
  mutable downs : int;
  mutable ups : int;
  mutable watchdog_skips : int;
  mutable suspends : int;
  mutable resumes : int;
  mutable dup_discards : int;
  mutable reorder_restores : int;
  mutable reorder_depth : int;
  mutable corrupt_discards : int;
  mutable buffer_overflows : int;
  mutable retunes : int;
  mutable health_suspects : int;
  mutable probations : int;
  mutable quarantines : int;
  mutable reinstates : int;
}

(* The registry sits on the per-event path of every instrumented run, so
   it accumulates into flat [int array]s — one slot per (channel, kind)
   plus side arrays for byte and occupancy accounting — rather than
   per-channel records. [observe] is a couple of array stores with zero
   allocation (the record-based original boxed an option per event); the
   [channel] record is materialized on demand as a snapshot. *)
type t = {
  n : int;
  counts : int array;  (* n * Event.n_kinds; (ch, kind) occurrence counts *)
  tx_bytes_ : int array;
  delivered_bytes_ : int array;
  buffered_packets_ : int array;
  buffered_bytes_ : int array;
  hw_buffered_packets_ : int array;
  hw_buffered_bytes_ : int array;
  (* Arrival reorder-depth gauge, fed by [Enqueue] events carrying a
     sequence number: per-channel maximum of (highest seq already
     enqueued anywhere) - seq. [rd_max_seq_] is the global running
     maximum the depth is judged against. *)
  rdepth_ : int array;
  mutable rd_max_seq_ : int;
  mutable resets : int;
  mutable rounds : int;
  mutable n_events : int;
  mutable no_channel_drops_ : int;
}

let create ~n =
  if n <= 0 then invalid_arg "Counters.create: n must be positive";
  {
    n;
    counts = Array.make (n * Event.n_kinds) 0;
    tx_bytes_ = Array.make n 0;
    delivered_bytes_ = Array.make n 0;
    buffered_packets_ = Array.make n 0;
    buffered_bytes_ = Array.make n 0;
    hw_buffered_packets_ = Array.make n 0;
    hw_buffered_bytes_ = Array.make n 0;
    rdepth_ = Array.make n 0;
    rd_max_seq_ = -1;
    resets = 0;
    rounds = 0;
    n_events = 0;
    no_channel_drops_ = 0;
  }

let n_channels t = t.n

let count t c k = t.counts.((c * Event.n_kinds) + Event.kind_index k)

let channel t c =
  if c < 0 || c >= t.n then invalid_arg "Counters.channel: bad channel";
  let k kind = count t c kind in
  {
    tx_packets = k Event.Transmit;
    tx_bytes = t.tx_bytes_.(c);
    delivered_packets = k Event.Deliver;
    delivered_bytes = t.delivered_bytes_.(c);
    drops = k Event.Drop;
    txq_drops = k Event.Txq_drop;
    arrivals = k Event.Arrival;
    skips = k Event.Skip;
    markers_sent = k Event.Marker_sent;
    markers_applied = k Event.Marker_applied;
    blocks = k Event.Block;
    buffered_packets = t.buffered_packets_.(c);
    buffered_bytes = t.buffered_bytes_.(c);
    hw_buffered_packets = t.hw_buffered_packets_.(c);
    hw_buffered_bytes = t.hw_buffered_bytes_.(c);
    downs = k Event.Channel_down;
    ups = k Event.Channel_up;
    watchdog_skips = k Event.Watchdog_skip;
    suspends = k Event.Suspend;
    resumes = k Event.Resume;
    dup_discards = k Event.Dup_discard;
    reorder_restores = k Event.Reorder_restore;
    reorder_depth = t.rdepth_.(c);
    corrupt_discards = k Event.Corrupt_discard;
    buffer_overflows = k Event.Buffer_overflow;
    retunes = k Event.Retune;
    health_suspects = k Event.Health_suspect;
    probations = k Event.Probation;
    quarantines = k Event.Quarantine;
    reinstates = k Event.Reinstate;
  }

let resets t = t.resets
let rounds t = t.rounds
let events_seen t = t.n_events
let no_channel_drops t = t.no_channel_drops_

let observe t (e : Event.t) =
  t.n_events <- t.n_events + 1;
  let ch = e.channel in
  if ch >= 0 && ch < t.n then begin
    let slot = (ch * Event.n_kinds) + Event.kind_index e.kind in
    t.counts.(slot) <- t.counts.(slot) + 1;
    match e.kind with
    | Event.Transmit ->
      if e.size > 0 then t.tx_bytes_.(ch) <- t.tx_bytes_.(ch) + e.size
    | Event.Deliver ->
      if e.size > 0 then
        t.delivered_bytes_.(ch) <- t.delivered_bytes_.(ch) + e.size;
      t.buffered_packets_.(ch) <- max 0 (t.buffered_packets_.(ch) - 1);
      if e.size > 0 then
        t.buffered_bytes_.(ch) <- max 0 (t.buffered_bytes_.(ch) - e.size)
    | Event.Enqueue ->
      t.buffered_packets_.(ch) <- t.buffered_packets_.(ch) + 1;
      if e.size > 0 then
        t.buffered_bytes_.(ch) <- t.buffered_bytes_.(ch) + e.size;
      if e.seq >= 0 then begin
        if e.seq > t.rd_max_seq_ then t.rd_max_seq_ <- e.seq
        else if t.rd_max_seq_ - e.seq > t.rdepth_.(ch) then
          t.rdepth_.(ch) <- t.rd_max_seq_ - e.seq
      end;
      if t.buffered_packets_.(ch) > t.hw_buffered_packets_.(ch) then
        t.hw_buffered_packets_.(ch) <- t.buffered_packets_.(ch);
      if t.buffered_bytes_.(ch) > t.hw_buffered_bytes_.(ch) then
        t.hw_buffered_bytes_.(ch) <- t.buffered_bytes_.(ch)
    | Event.Reset_barrier -> t.resets <- t.resets + 1
    | Event.Round -> if e.round > t.rounds then t.rounds <- e.round
    | _ -> ()
  end
  else
    match e.kind with
    | Event.Txq_drop ->
      (* A [Txq_drop] without a channel is the striper reporting a packet
         it could not dispatch because every channel was suspended. *)
      t.no_channel_drops_ <- t.no_channel_drops_ + 1
    | Event.Reset_barrier -> t.resets <- t.resets + 1
    | Event.Round -> if e.round > t.rounds then t.rounds <- e.round
    | _ -> ()

let sink t = Sink.of_fn (observe t)

let merge_into ~into t =
  if t.n <> into.n then
    invalid_arg "Counters.merge_into: channel counts differ";
  let add dst src = Array.iteri (fun i v -> dst.(i) <- dst.(i) + v) src in
  add into.counts t.counts;
  add into.tx_bytes_ t.tx_bytes_;
  add into.delivered_bytes_ t.delivered_bytes_;
  add into.buffered_packets_ t.buffered_packets_;
  add into.buffered_bytes_ t.buffered_bytes_;
  (* High-water marks are not additive in general; summing them gives
     the exact global high-water when each registry saw a disjoint
     channel set (per-channel partitions), and a safe upper bound when
     shards alias the same channel indices. *)
  add into.hw_buffered_packets_ t.hw_buffered_packets_;
  add into.hw_buffered_bytes_ t.hw_buffered_bytes_;
  (* Depth is a maximum, not a count: merging takes the elementwise max
     (exact for disjoint channel sets, and the right reading — worst
     observed depth — when shards alias channels). *)
  Array.iteri
    (fun i v -> if v > into.rdepth_.(i) then into.rdepth_.(i) <- v)
    t.rdepth_;
  if t.rd_max_seq_ > into.rd_max_seq_ then into.rd_max_seq_ <- t.rd_max_seq_;
  into.resets <- into.resets + t.resets;
  into.rounds <- max into.rounds t.rounds;
  into.n_events <- into.n_events + t.n_events;
  into.no_channel_drops_ <- into.no_channel_drops_ + t.no_channel_drops_

let merged = function
  | [] -> invalid_arg "Counters.merged: empty list"
  | t :: rest ->
    let into = create ~n:t.n in
    merge_into ~into t;
    List.iter (fun s -> merge_into ~into s) rest;
    into

let total_kind t k =
  let s = ref 0 in
  for c = 0 to t.n - 1 do
    s := !s + count t c k
  done;
  !s

let total_tx_bytes t = Array.fold_left ( + ) 0 t.tx_bytes_
let total_delivered_packets t = total_kind t Event.Deliver
let total_drops t = total_kind t Event.Drop + total_kind t Event.Txq_drop
let total_skips t = total_kind t Event.Skip
let total_watchdog_skips t = total_kind t Event.Watchdog_skip
let total_downs t = total_kind t Event.Channel_down
let total_dup_discards t = total_kind t Event.Dup_discard
let total_reorder_restores t = total_kind t Event.Reorder_restore
let max_reorder_depth t = Array.fold_left max 0 t.rdepth_
let total_corrupt_discards t = total_kind t Event.Corrupt_discard
let total_buffer_overflows t = total_kind t Event.Buffer_overflow
let total_retunes t = total_kind t Event.Retune

let total_member_changes t =
  total_kind t Event.Member_add + total_kind t Event.Member_remove

let total_health_suspects t = total_kind t Event.Health_suspect
let total_probations t = total_kind t Event.Probation
let total_quarantines t = total_kind t Event.Quarantine
let total_reinstates t = total_kind t Event.Reinstate

let pp fmt t =
  for i = 0 to t.n - 1 do
    let c = channel t i in
    Format.fprintf fmt
      "ch%d: tx=%d/%dB delivered=%d/%dB drops=%d+%d skips=%d markers=%d/%d \
       buf-hw=%d@."
      i c.tx_packets c.tx_bytes c.delivered_packets c.delivered_bytes c.drops
      c.txq_drops c.skips c.markers_sent c.markers_applied
      c.hw_buffered_packets
  done;
  Format.fprintf fmt "resets=%d rounds=%d events=%d" t.resets t.rounds
    t.n_events
