(** Always-on invariant monitors over the event stream.

    A monitor is a {!Sink}: tee {!sink} into a component's sink
    ({!Sink.tee}) and it shadows the protocol's externally visible
    behavior, asserting the invariants every chaos soak must preserve:

    - {b FIFO order}: delivered data sequence numbers are strictly
      increasing past the {e quiet line} (inversions before it are
      counted as {!seq_inversions} but are legal quasi-FIFO slippage
      while chaos drains, Thm 5.1);
    - {b buffer budget}: the resequencer's buffered data bytes (shadowed
      from [Enqueue]/[Deliver]/[Epoch_discard] events) never exceed the
      configured budget;
    - {b progress}: data never sits buffered across [wedge_intervals]
      marker intervals with no delivery — the wedged-receiver detector;
    - {b liveness} (PROTOCOL.md §13): the health engine never drives a
      bundle to zero active members — shadowed from
      [Quarantine]/[Reinstate] events, armed by [live_channels].

    Violations are recorded with time and diagnosis, forwarded as
    [Violation] events (when a forward sink is given), and never raise:
    the driver decides whether a soak aborts. Conservation — pushed =
    delivered + pending + counted drops — cannot be checked from events
    alone (drops happen at many layers with their own counters), so it
    is provided as the explicit checkers {!conserved} /
    {!check_conservation} over harvested counter values. *)

type t

val create :
  ?quiet_after:float ->
  ?budget_bytes:int ->
  ?wedge_intervals:int ->
  ?live_channels:int ->
  ?forward:Sink.t ->
  unit ->
  t
(** [quiet_after] (default 0.0 — strict from the start) is the FIFO
    quiet line; chaos drivers move it past their last event plus a
    drain grace ({!set_quiet_after}). [budget_bytes] arms the budget
    monitor with the same bound handed to the resequencer.
    [wedge_intervals] (default 8) is the progress monitor's K.
    [live_channels] arms the liveness monitor with the bundle width:
    a [Quarantine] event that leaves all of them quarantined at once
    is a violation. [forward] receives a [Violation] event per
    violation, with [seq] = the monitor's event ordinal at detection. *)

val sink : t -> Sink.t
(** The monitor as an event sink. Tee it into the observed component's
    sink; a fresh call returns a new sink sharing this monitor. *)

val set_quiet_after : t -> float -> unit

val violations : t -> int

val first_violation : t -> (float * string) option
(** Time and diagnosis of the first violation — report it together with
    the run's seed and the chaos driver's last event index. *)

val all_violations : t -> (float * string) list
val seq_inversions : t -> int

val quarantined_channels : t -> int
(** The liveness monitor's current shadow of how many channels the
    health engine holds in quarantine (0 when disarmed). *)

val buffered_bytes : t -> int
(** The budget monitor's current shadow of buffered data bytes. *)

val events_seen : t -> int

type verdict = {
  violations : int;
  seq_inversions : int;
  first_violation : (float * string) option;
  events_seen : int;
}
(** Immutable summary of a monitor's findings, detachable from the
    monitor itself — the shape that crosses shard merge barriers. *)

val verdict : t -> verdict
(** Snapshot this monitor's findings. *)

val merge_verdicts : verdict -> verdict -> verdict
(** Counts add; [first_violation] keeps the earliest by violation time
    (ties keep the left argument's, so folding over shards in shard
    order is deterministic). *)

val merged_verdict : verdict list -> verdict
(** Left fold of {!merge_verdicts} over a non-empty list. *)

val conserved :
  pushed:int -> delivered:int -> pending:int -> drops:int list -> bool
(** The conservation identity over harvested counters: [pushed =
    delivered + pending + sum drops]. *)

val check_conservation :
  what:string ->
  pushed:int ->
  delivered:int ->
  pending:int ->
  drops:int list ->
  (unit, string) result
(** Like {!conserved}, but a diagnosable [Error] naming [what]. *)
