(* Always-on invariant monitors over the event stream.

   The monitor is a sink: tee it into any component's sink and it
   shadows the protocol's externally visible state — delivered sequence
   numbers, resequencer buffer occupancy, marker-interval progress —
   asserting the invariants every chaos soak must preserve. It never
   inspects component internals, so a violation is a real contract
   breach at the observable boundary, not an implementation detail.

   Monitors fail loudly but non-fatally: each violation is recorded
   with its time and a one-line diagnosis, emitted as a [Violation]
   event to the forward sink (if any), and counted; the driver decides
   whether to abort. The FIFO monitor honors a "quiet line": chaos
   legally degrades delivery to quasi-FIFO while its effects drain
   (Thm 5.1), so sequence inversions are always counted but only become
   violations at/after the line. *)

type t = {
  mutable quiet_after : float;
  budget_bytes : int option;
  wedge_intervals : int;
  forward : Sink.t;
  (* Liveness: shadow of which channels the health engine holds in
     quarantine ([Quarantine] sets, [Reinstate] clears). The health
     engine must never quarantine the whole membership (PROTOCOL.md
     §13); the moment every armed channel is dark it is a violation.
     Empty array = monitor disarmed. *)
  quarantined : bool array;
  mutable n_quarantined : int;
  (* FIFO: highest data seq delivered so far (0 = nothing judged). *)
  mutable last_seq : int;
  mutable inversions : int;
  (* Budget: shadow of the resequencer's buffered data bytes, from
     Enqueue minus Deliver minus Epoch_discard. *)
  mutable buffered : int;
  (* Progress: marker intervals in a row with data buffered and nothing
     delivered. *)
  mutable delivered_since_marker : bool;
  mutable streak : int;
  mutable n_events : int;
  mutable violations : (float * string) list;  (* newest first *)
  mutable n_violations : int;
}

let create ?(quiet_after = 0.0) ?budget_bytes ?(wedge_intervals = 8)
    ?live_channels ?(forward = Sink.null) () =
  if wedge_intervals <= 0 then
    invalid_arg "Monitor.create: wedge_intervals must be positive";
  (match budget_bytes with
  | Some b when b <= 0 ->
    invalid_arg "Monitor.create: budget_bytes must be positive"
  | _ -> ());
  (match live_channels with
  | Some n when n <= 0 ->
    invalid_arg "Monitor.create: live_channels must be positive"
  | _ -> ());
  {
    quiet_after;
    budget_bytes;
    wedge_intervals;
    forward;
    quarantined =
      (match live_channels with Some n -> Array.make n false | None -> [||]);
    n_quarantined = 0;
    last_seq = 0;
    inversions = 0;
    buffered = 0;
    delivered_since_marker = true;
    streak = 0;
    n_events = 0;
    violations = [];
    n_violations = 0;
  }

let violate t ~time fmt =
  Printf.ksprintf
    (fun msg ->
      t.n_violations <- t.n_violations + 1;
      t.violations <- (time, msg) :: t.violations;
      if Sink.active t.forward then
        Sink.emit t.forward
          (Event.v ~seq:t.n_events ~time Event.Violation))
    fmt

let on_event t (e : Event.t) =
  t.n_events <- t.n_events + 1;
  match e.kind with
  | Event.Deliver ->
    t.delivered_since_marker <- true;
    t.streak <- 0;
    t.buffered <- t.buffered - e.size;
    if e.seq > 0 then begin
      if e.seq < t.last_seq then begin
        t.inversions <- t.inversions + 1;
        if e.time >= t.quiet_after then
          violate t ~time:e.time
            "FIFO: seq %d delivered after %d (past the quiet line %g)"
            e.seq t.last_seq t.quiet_after
      end
      else t.last_seq <- e.seq
    end
  | Event.Enqueue -> begin
    t.buffered <- t.buffered + e.size;
    match t.budget_bytes with
    | Some b when t.buffered > b ->
      violate t ~time:e.time "budget: %d data bytes buffered exceeds %d"
        t.buffered b
    | Some _ | None -> ()
  end
  | Event.Epoch_discard -> t.buffered <- t.buffered - e.size
  | Event.Marker_applied ->
    (* A marker interval elapsed at the receiver. Data sitting buffered
       across [wedge_intervals] of them with no delivery means the scan
       is wedged — the marker machinery exists precisely so that
       buffered data survives at most a bounded number of intervals. *)
    if t.buffered > 0 && not t.delivered_since_marker then begin
      t.streak <- t.streak + 1;
      if t.streak = t.wedge_intervals then
        violate t ~time:e.time
          "progress: %d bytes buffered across %d marker intervals with no \
           delivery"
          t.buffered t.wedge_intervals
    end
    else t.streak <- 0;
    t.delivered_since_marker <- false
  | Event.Quarantine ->
    let n = Array.length t.quarantined in
    if n > 0 && e.channel >= 0 && e.channel < n then begin
      if not t.quarantined.(e.channel) then begin
        t.quarantined.(e.channel) <- true;
        t.n_quarantined <- t.n_quarantined + 1
      end;
      if t.n_quarantined >= n then
        violate t ~time:e.time
          "liveness: quarantining channel %d leaves 0 of %d members active"
          e.channel n
    end
  | Event.Reinstate ->
    let n = Array.length t.quarantined in
    if n > 0 && e.channel >= 0 && e.channel < n then
      if t.quarantined.(e.channel) then begin
        t.quarantined.(e.channel) <- false;
        t.n_quarantined <- t.n_quarantined - 1
      end
  | Event.Crash | Event.Restart ->
    (* An endpoint lost its state: the shadow restarts with it. The
       receiver pair wipes the buffer; delivered-order memory is void
       (post-restart stragglers may legally carry lower seqs — the
       quiet line governs when strictness resumes). *)
    t.buffered <- 0;
    t.streak <- 0;
    t.delivered_since_marker <- true;
    t.last_seq <- 0
  | _ -> ()

let sink t = Sink.of_fn (on_event t)
let set_quiet_after t time = t.quiet_after <- time
let violations t = t.n_violations

let first_violation t =
  match List.rev t.violations with [] -> None | v :: _ -> Some v

let all_violations t = List.rev t.violations
let seq_inversions t = t.inversions
let quarantined_channels t = t.n_quarantined
let buffered_bytes t = t.buffered
let events_seen t = t.n_events

type verdict = {
  violations : int;
  seq_inversions : int;
  first_violation : (float * string) option;
  events_seen : int;
}

let verdict t =
  {
    violations = t.n_violations;
    seq_inversions = t.inversions;
    first_violation = first_violation t;
    events_seen = t.n_events;
  }

let merge_verdicts a b =
  {
    violations = a.violations + b.violations;
    seq_inversions = a.seq_inversions + b.seq_inversions;
    first_violation =
      (match (a.first_violation, b.first_violation) with
      | None, v | v, None -> v
      | Some (ta, _), Some (tb, _) ->
        if tb < ta then b.first_violation else a.first_violation);
    events_seen = a.events_seen + b.events_seen;
  }

let merged_verdict = function
  | [] -> invalid_arg "Monitor.merged_verdict: empty list"
  | v :: rest -> List.fold_left merge_verdicts v rest

let conserved ~pushed ~delivered ~pending ~drops =
  pushed = delivered + pending + List.fold_left ( + ) 0 drops

let check_conservation ~what ~pushed ~delivered ~pending ~drops =
  if conserved ~pushed ~delivered ~pending ~drops then Ok ()
  else
    Error
      (Printf.sprintf
         "conservation: %s: pushed %d <> delivered %d + pending %d + drops %d"
         what pushed delivered pending
         (List.fold_left ( + ) 0 drops))
