let deliveries evs =
  List.filter (fun (e : Event.t) -> e.kind = Event.Deliver) evs

let delivered_seqs evs = List.map (fun (e : Event.t) -> e.seq) (deliveries evs)

let fifo_violations evs =
  let rec scan prev acc = function
    | [] -> List.rev acc
    | (e : Event.t) :: rest ->
      let acc = if e.seq < prev then (prev, e.seq) :: acc else acc in
      scan (max prev e.seq) acc rest
  in
  scan min_int [] (deliveries evs)

let last_time kind evs =
  List.fold_left
    (fun acc (e : Event.t) -> if e.kind = kind then Some e.time else acc)
    None evs

let first_time kind evs =
  List.fold_left
    (fun acc (e : Event.t) ->
      match acc with Some _ -> acc | None -> if e.kind = kind then Some e.time else None)
    None evs

let count kind evs =
  List.fold_left
    (fun acc (e : Event.t) -> if e.kind = kind then acc + 1 else acc)
    0 evs

let resync_within ~bound evs =
  if bound < 0.0 then invalid_arg "Check.resync_within: negative bound";
  match last_time Event.Drop evs with
  | None -> true
  | Some last_drop ->
    List.for_all
      (fun (e : Event.t) ->
        e.kind <> Event.Skip || e.time <= last_drop +. bound)
      evs

let fifo_from ~time evs =
  let seqs =
    List.filter_map
      (fun (e : Event.t) ->
        if e.kind = Event.Deliver && e.time >= time then Some e.seq else None)
      evs
  in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | [ _ ] | [] -> true
  in
  increasing seqs
