(** Typed observability events.

    Every instrumented transition in the protocol stack is described by one
    flat record: a timestamp, an event kind, and the protocol coordinates
    the kind needs ([channel], the implicit packet number [(round, dc)],
    [size], [seq]). Fields a kind does not use keep their sentinel values
    ([-1] for [channel]/[round]/[size]/[seq]; [dc] is meaningful only when
    [round >= 0]).

    Event ownership is partitioned by layer so a single shared sink never
    sees the same transition twice:

    - {b Striper} (sender): [Transmit] (a data packet dispatched to a
      channel, carrying its implicit stamp), [Marker_sent],
      [Reset_barrier] (a sender reset, [channel = -1]), [Suspend]/[Resume]
      (a channel administratively removed from / returned to the striping
      set), and [Txq_drop] with [channel = -1] (a data packet dropped
      because every channel was suspended).
    - {b Scheduler}: [Round] (the CFQ engine's pointer wrapped; [round] is
      the new round number).
    - {b Link} (wire): [Dequeue] (head-of-line packet starts serializing),
      [Drop] (lost on the wire), [Txq_drop] (rejected by a full transmit
      queue), [Arrival] (physical arrival at the far end), and the carrier
      transitions [Channel_down]/[Channel_up] (fault injection pulling or
      restoring the cable).
    - {b Resequencer} (receiver): [Enqueue] (a data packet buffered
      awaiting logical reception), [Marker_applied], [Skip] (channel visit
      skipped by the marker rule [r > G]), [Block]/[Unblock] (logical
      reception waiting on a channel), [Deliver] (logical reception, with
      the receiver's [(round, dc)] stamp), [Reset_barrier] (barrier
      completed, [round] = completed-barrier count), [Watchdog_skip] (a
      visit to a channel the marker-cadence watchdog declared dead was
      skipped without waiting), and [Buffer_overflow] (an arrival found
      the byte budget exhausted; what follows depends on the overflow
      policy — see {!Stripe_core.Resequencer}).
    - {b Channel guard} (receiver, below the resequencer):
      [Dup_discard] (a duplicate delivery identified by its channel tag
      and discarded), [Reorder_restore] (an out-of-order arrival held
      back and re-released in tag order), and [Corrupt_discard] (a
      corrupted packet discarded — by the guard's marker-checksum check).
      The {b Link} also emits [Corrupt_discard] for wire corruption its
      simulated CRC detects; the two sites are disjoint per packet.
    - {b Adaptive operation} (PROTOCOL.md §11): the {b Scheduler} relays
      [Retune] from the deficit engine — one event per channel when a new
      quantum vector takes effect, with [dc] = the channel's old quantum
      and [size] = its new quantum, [round] = the round the change
      applies from. The {b Striper} emits [Member_add]/[Member_remove]
      when the bundle grows or shrinks live ([channel] = the index added
      or removed, [size] = the new bundle width).
    - {b Chaos and recovery} (PROTOCOL.md §12): the {b Striper} emits
      [Crash] when an endpoint loses its striping state and [Restart]
      when it comes back ([round] = the new epoch on a sender restart;
      the {b Resequencer} emits the receiver-side pair). The
      {b Resequencer} also emits [Epoch_discard] (a buffered pre-crash
      packet discarded because a later-epoch marker proved it stale;
      [size] = bytes discarded on the channel). [Violation] is reserved
      for the invariant monitors ({!Monitor}): it is emitted by the
      monitor itself, never by protocol components, when an always-on
      invariant (FIFO-after-quiet, budget, progress, conservation) is
      observed broken ([seq] = monitor-specific detail).
    - {b Channel health} (PROTOCOL.md §13): the {!Stripe_core.Health}
      engine owns the gray-failure lifecycle events — [Health_suspect]
      (fused evidence score crossed the suspect threshold with
      hysteresis), [Probation] (quantum cut to the probe fraction at a
      round boundary; [size] = the scaled quantum in per-mille of
      nominal), [Quarantine] (sustained failure: the channel is fully
      suspended through the §5 reset barrier; [size] = the reinstatement
      backoff in milliseconds), and [Reinstate] (a quarantined channel
      returns to probation probing after its backoff, or a probation
      channel is restored to full quantum; [seq] = the channel's flap
      count). All four carry [channel]. Emitted only by the health
      engine, never by protocol components. *)

type kind =
  | Enqueue
  | Dequeue
  | Transmit
  | Drop
  | Txq_drop
  | Arrival
  | Marker_sent
  | Marker_applied
  | Skip
  | Block
  | Unblock
  | Reset_barrier
  | Deliver
  | Round
  | Channel_down
  | Channel_up
  | Watchdog_skip
  | Suspend
  | Resume
  | Dup_discard
  | Reorder_restore
  | Corrupt_discard
  | Buffer_overflow
  | Retune
  | Member_add
  | Member_remove
  | Crash
  | Restart
  | Epoch_discard
  | Violation
  | Health_suspect
  | Probation
  | Quarantine
  | Reinstate

type t = {
  time : float;
  kind : kind;
  channel : int;
  round : int;
  dc : int;
  size : int;
  seq : int;
}

val v :
  ?channel:int ->
  ?round:int ->
  ?dc:int ->
  ?size:int ->
  ?seq:int ->
  time:float ->
  kind ->
  t
(** Constructor with sentinel defaults ([channel]/[round]/[size]/[seq] =
    [-1], [dc] = [0]). *)

val n_kinds : int
(** Number of event kinds. *)

val kind_index : kind -> int
(** Dense index in [0, n_kinds): backs flat counter arrays
    ({!Counters}). Stable within a build, not across versions — use
    {!kind_name} for anything persisted. *)

val kind_name : kind -> string
(** Stable lowercase name used by the JSON and CSV exports. *)

val kind_of_name : string -> kind option

val to_json : t -> string
(** One JSON object (no trailing newline):
    [{"t":..,"ev":"..","ch":..,"round":..,"dc":..,"size":..,"seq":..}]. *)

val csv_header : string

val to_csv : t -> string
(** One CSV row matching {!csv_header} (no trailing newline). *)

val pp : Format.formatter -> t -> unit
