(** Per-channel counter registry, fed by {!Event.t}s.

    A registry is itself a sink consumer: install {!sink} (or tee it with a
    file sink) on the instrumented components and the counters accumulate
    bytes/packets transmitted and delivered, drops, skips, markers, and the
    high-water occupancy of the receiver's resequencing buffers — the
    telemetry a production striping deployment watches per member link.

    Buffer occupancy is derived from the resequencer's [Enqueue] (physical
    reception buffered) and [Deliver] (logical reception) events; the
    high-water marks record how far physical reception ran ahead of logical
    reception on each channel. *)

type channel = {
  mutable tx_packets : int;  (** Data packets dispatched ([Transmit]). *)
  mutable tx_bytes : int;
  mutable delivered_packets : int;  (** Logical receptions ([Deliver]). *)
  mutable delivered_bytes : int;
  mutable drops : int;  (** Wire losses ([Drop]). *)
  mutable txq_drops : int;  (** Transmit-queue overflows ([Txq_drop]). *)
  mutable arrivals : int;  (** Physical arrivals ([Arrival]). *)
  mutable skips : int;  (** Marker-rule channel skips ([Skip]). *)
  mutable markers_sent : int;
  mutable markers_applied : int;
  mutable blocks : int;  (** Times logical reception blocked here. *)
  mutable buffered_packets : int;  (** Current resequencer occupancy. *)
  mutable buffered_bytes : int;
  mutable hw_buffered_packets : int;  (** High-water occupancy. *)
  mutable hw_buffered_bytes : int;
  mutable downs : int;  (** Carrier losses ([Channel_down]). *)
  mutable ups : int;  (** Carrier recoveries ([Channel_up]). *)
  mutable watchdog_skips : int;
      (** Receiver visits skipped by the dead-channel watchdog
          ([Watchdog_skip]). *)
  mutable suspends : int;  (** Sender suspensions ([Suspend]). *)
  mutable resumes : int;  (** Sender resumptions ([Resume]). *)
  mutable dup_discards : int;
      (** Duplicate deliveries discarded by the channel guard
          ([Dup_discard]). *)
  mutable reorder_restores : int;
      (** Out-of-order arrivals held and re-released in tag order by the
          channel guard ([Reorder_restore]). *)
  mutable reorder_depth : int;
      (** Arrival reorder-depth gauge: maximum over this channel's
          [Enqueue] events (with a sequence number) of how far the
          arriving packet trailed the highest sequence already enqueued
          on {e any} channel. 0 means arrivals never ran behind. *)
  mutable corrupt_discards : int;
      (** Corrupted packets discarded — by the link CRC or the guard's
          marker-checksum check ([Corrupt_discard]). *)
  mutable buffer_overflows : int;
      (** Arrivals that found the resequencer byte budget exhausted
          ([Buffer_overflow]). *)
  mutable retunes : int;
      (** Quantum changes applied to this channel by an adaptive retune
          ([Retune]). *)
  mutable health_suspects : int;
      (** Health-engine suspect transitions ([Health_suspect]). *)
  mutable probations : int;
      (** Health-engine probation entries — quantum cut to the probe
          fraction ([Probation]). *)
  mutable quarantines : int;
      (** Health-engine quarantines — full suspension through the §5
          barrier ([Quarantine]). *)
  mutable reinstates : int;
      (** Health-engine reinstatements — backoff expiry returning a
          quarantined channel to probation, or a probation channel
          restored to full quantum ([Reinstate]). *)
}

type t

val create : n:int -> t

val observe : t -> Event.t -> unit
(** Fold one event into the registry. Events whose [channel] is outside
    [0..n-1] only update the global counters. Allocation-free. *)

val sink : t -> Sink.t
(** A sink that feeds this registry. *)

val merge_into : into:t -> t -> unit
(** [merge_into ~into t] folds [t]'s accumulated state into [into]:
    occurrence counts, byte totals, occupancy gauges, [resets],
    [events_seen] and [no_channel_drops] add; [rounds] takes the max.
    Partitioning one event stream across registries and merging back
    reproduces the unsharded registry exactly as long as each packet's
    [Enqueue]/[Deliver] pair lands in one registry (the occupancy gauges
    clamp at zero, so an orphaned [Deliver] under-counts) — occurrence
    counts and byte totals are exact under any partition. The high-water
    occupancy marks sum: exact when the registries saw disjoint
    channels, an upper bound when shards alias the same channel indices.
    Requires equal channel counts. *)

val merged : t list -> t
(** [merged ts] is a fresh registry holding the merge of [ts] (see
    {!merge_into}). Requires a non-empty list of equal-width
    registries. *)

val n_channels : t -> int

val channel : t -> int -> channel
(** Snapshot of one channel's counters at the moment of the call. The
    registry accumulates into flat arrays (so {!observe} stays
    allocation-free on the per-event path) and materializes this record
    on demand; mutating it affects nothing. *)

val resets : t -> int
(** Reset barriers observed. *)

val rounds : t -> int
(** Highest scheduler round number observed ([Round] events). *)

val events_seen : t -> int

val no_channel_drops : t -> int
(** Packets the sender dropped because every channel was suspended
    ([Txq_drop] events carrying no channel). *)

val total_tx_bytes : t -> int
val total_delivered_packets : t -> int
val total_drops : t -> int
val total_skips : t -> int
val total_watchdog_skips : t -> int
val total_downs : t -> int
val total_dup_discards : t -> int
val total_reorder_restores : t -> int

val max_reorder_depth : t -> int
(** Worst arrival reorder depth observed on any channel (see the
    [reorder_depth] field of {!channel}). Merging registries takes the
    elementwise max, so the merged value is the global worst case. *)

val total_corrupt_discards : t -> int
val total_buffer_overflows : t -> int

val total_retunes : t -> int
(** Per-channel quantum changes observed ([Retune] events; one retune of
    an [n]-channel bundle counts [n]). *)

val total_member_changes : t -> int
(** Live bundle membership changes observed ([Member_add] +
    [Member_remove]). *)

val total_health_suspects : t -> int
val total_probations : t -> int
val total_quarantines : t -> int

val total_reinstates : t -> int
(** Health-engine transitions observed ([Health_suspect], [Probation],
    [Quarantine], [Reinstate]) across all channels (PROTOCOL.md §13). *)

val pp : Format.formatter -> t -> unit
