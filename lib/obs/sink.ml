type t = {
  is_active : bool;
  emit_fn : Event.t -> unit;
  flush_fn : unit -> unit;
  contents : (unit -> Event.t list) option;
}

let null =
  { is_active = false; emit_fn = ignore; flush_fn = ignore; contents = None }

let active t = t.is_active

let emit t ev = if t.is_active then t.emit_fn ev

let flush t = t.flush_fn ()

let of_fn f =
  { is_active = true; emit_fn = f; flush_fn = ignore; contents = None }

let collector () =
  let rev = ref [] in
  {
    is_active = true;
    emit_fn = (fun e -> rev := e :: !rev);
    flush_fn = ignore;
    contents = Some (fun () -> List.rev !rev);
  }

let ring ~capacity =
  if capacity <= 0 then invalid_arg "Sink.ring: capacity must be positive";
  let buf = Array.make capacity None in
  let count = ref 0 in
  {
    is_active = true;
    emit_fn =
      (fun e ->
        buf.(!count mod capacity) <- Some e;
        incr count);
    flush_fn = ignore;
    contents =
      Some
        (fun () ->
          let n = !count in
          let kept = min n capacity in
          let start = n - kept in
          List.filter_map
            (fun i -> buf.((start + i) mod capacity))
            (List.init kept Fun.id));
  }

let events t =
  match t.contents with
  | Some f -> f ()
  | None -> invalid_arg "Sink.events: this sink does not retain events"

let jsonl oc =
  {
    is_active = true;
    emit_fn =
      (fun e ->
        output_string oc (Event.to_json e);
        output_char oc '\n');
    flush_fn = (fun () -> Stdlib.flush oc);
    contents = None;
  }

let csv oc =
  output_string oc Event.csv_header;
  output_char oc '\n';
  {
    is_active = true;
    emit_fn =
      (fun e ->
        output_string oc (Event.to_csv e);
        output_char oc '\n');
    flush_fn = (fun () -> Stdlib.flush oc);
    contents = None;
  }

let tee a b =
  if not (a.is_active || b.is_active) then null
  else
    {
      is_active = true;
      emit_fn =
        (fun e ->
          if a.is_active then a.emit_fn e;
          if b.is_active then b.emit_fn e);
      flush_fn =
        (fun () ->
          a.flush_fn ();
          b.flush_fn ());
      contents = (match a.contents with Some _ -> a.contents | None -> b.contents);
    }
