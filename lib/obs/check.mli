(** Trace-driven assertions: the paper's theorems checked mechanically
    against a recorded event stream (a {!Sink.collector}'s contents or a
    parsed trace file).

    These are deliberately small, total functions over event lists so tests
    can compose them with scenario-specific bounds. *)

val deliveries : Event.t list -> Event.t list
(** The [Deliver] events, in trace order. *)

val delivered_seqs : Event.t list -> int list
(** Sequence numbers in logical-reception order. *)

val fifo_violations : Event.t list -> (int * int) list
(** Theorem 4.1 checker: every [(hi, lo)] pair where a packet with
    sequence [lo] was delivered after one with a higher sequence [hi].
    Empty iff delivery was FIFO. *)

val last_time : Event.kind -> Event.t list -> float option
val first_time : Event.kind -> Event.t list -> float option
val count : Event.kind -> Event.t list -> int

val resync_within : bound:float -> Event.t list -> bool
(** Theorem 5.1 checker: [true] iff no [Skip] event occurs more than
    [bound] seconds after the last [Drop]. The theorem promises
    resynchronization within one marker interval of errors stopping, so
    [bound] is typically the marker interval in seconds plus the one-way
    delay (skips happen at the receiver). Vacuously [true] without
    drops. *)

val fifo_from : time:float -> Event.t list -> bool
(** [true] iff the [Deliver] events at or after [time] carry strictly
    increasing sequence numbers — "FIFO delivery is restored" from a given
    instant. *)
