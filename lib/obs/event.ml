type kind =
  | Enqueue
  | Dequeue
  | Transmit
  | Drop
  | Txq_drop
  | Arrival
  | Marker_sent
  | Marker_applied
  | Skip
  | Block
  | Unblock
  | Reset_barrier
  | Deliver
  | Round
  | Channel_down
  | Channel_up
  | Watchdog_skip
  | Suspend
  | Resume
  | Dup_discard
  | Reorder_restore
  | Corrupt_discard
  | Buffer_overflow
  | Retune
  | Member_add
  | Member_remove
  | Crash
  | Restart
  | Epoch_discard
  | Violation
  | Health_suspect
  | Probation
  | Quarantine
  | Reinstate

type t = {
  time : float;
  kind : kind;
  channel : int;
  round : int;
  dc : int;
  size : int;
  seq : int;
}

let v ?(channel = -1) ?(round = -1) ?(dc = 0) ?(size = -1) ?(seq = -1) ~time
    kind =
  { time; kind; channel; round; dc; size; seq }

let n_kinds = 34

(* Dense index for counter arrays; keep in sync with [kind] and
   [n_kinds]. *)
let kind_index = function
  | Enqueue -> 0
  | Dequeue -> 1
  | Transmit -> 2
  | Drop -> 3
  | Txq_drop -> 4
  | Arrival -> 5
  | Marker_sent -> 6
  | Marker_applied -> 7
  | Skip -> 8
  | Block -> 9
  | Unblock -> 10
  | Reset_barrier -> 11
  | Deliver -> 12
  | Round -> 13
  | Channel_down -> 14
  | Channel_up -> 15
  | Watchdog_skip -> 16
  | Suspend -> 17
  | Resume -> 18
  | Dup_discard -> 19
  | Reorder_restore -> 20
  | Corrupt_discard -> 21
  | Buffer_overflow -> 22
  | Retune -> 23
  | Member_add -> 24
  | Member_remove -> 25
  | Crash -> 26
  | Restart -> 27
  | Epoch_discard -> 28
  | Violation -> 29
  | Health_suspect -> 30
  | Probation -> 31
  | Quarantine -> 32
  | Reinstate -> 33

let kind_name = function
  | Enqueue -> "enqueue"
  | Dequeue -> "dequeue"
  | Transmit -> "transmit"
  | Drop -> "drop"
  | Txq_drop -> "txq_drop"
  | Arrival -> "arrival"
  | Marker_sent -> "marker_sent"
  | Marker_applied -> "marker_applied"
  | Skip -> "skip"
  | Block -> "block"
  | Unblock -> "unblock"
  | Reset_barrier -> "reset_barrier"
  | Deliver -> "deliver"
  | Round -> "round"
  | Channel_down -> "channel_down"
  | Channel_up -> "channel_up"
  | Watchdog_skip -> "watchdog_skip"
  | Suspend -> "suspend"
  | Resume -> "resume"
  | Dup_discard -> "dup_discard"
  | Reorder_restore -> "reorder_restore"
  | Corrupt_discard -> "corrupt_discard"
  | Buffer_overflow -> "buffer_overflow"
  | Retune -> "retune"
  | Member_add -> "member_add"
  | Member_remove -> "member_remove"
  | Crash -> "crash"
  | Restart -> "restart"
  | Epoch_discard -> "epoch_discard"
  | Violation -> "violation"
  | Health_suspect -> "health_suspect"
  | Probation -> "probation"
  | Quarantine -> "quarantine"
  | Reinstate -> "reinstate"

let all_kinds =
  [
    Enqueue; Dequeue; Transmit; Drop; Txq_drop; Arrival; Marker_sent;
    Marker_applied; Skip; Block; Unblock; Reset_barrier; Deliver; Round;
    Channel_down; Channel_up; Watchdog_skip; Suspend; Resume; Dup_discard;
    Reorder_restore; Corrupt_discard; Buffer_overflow; Retune; Member_add;
    Member_remove; Crash; Restart; Epoch_discard; Violation; Health_suspect;
    Probation; Quarantine; Reinstate;
  ]

let kind_of_name s =
  List.find_opt (fun k -> kind_name k = s) all_kinds

let to_json e =
  Printf.sprintf
    "{\"t\":%.9f,\"ev\":\"%s\",\"ch\":%d,\"round\":%d,\"dc\":%d,\"size\":%d,\"seq\":%d}"
    e.time (kind_name e.kind) e.channel e.round e.dc e.size e.seq

let csv_header = "time,event,channel,round,dc,size,seq"

let to_csv e =
  Printf.sprintf "%.9f,%s,%d,%d,%d,%d,%d" e.time (kind_name e.kind) e.channel
    e.round e.dc e.size e.seq

let pp fmt e =
  Format.fprintf fmt "%.6f %s ch=%d" e.time (kind_name e.kind) e.channel;
  if e.round >= 0 then Format.fprintf fmt " round=%d dc=%d" e.round e.dc;
  if e.size >= 0 then Format.fprintf fmt " size=%d" e.size;
  if e.seq >= 0 then Format.fprintf fmt " seq=%d" e.seq
