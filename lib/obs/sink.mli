(** Pluggable event sinks.

    Instrumented components hold a sink and report {!Event.t}s to it. The
    contract for hot paths is: guard with {!active} {e before} building the
    event, so the {!null} sink costs one branch and zero allocation:

    {[
      if Sink.active t.sink then
        Sink.emit t.sink (Event.v ~channel ~time Event.Deliver)
    ]} *)

type t

val null : t
(** Discards everything; {!active} is [false]. The default for every
    instrumented component. *)

val active : t -> bool
(** [false] only for {!null} (and a tee of two null sinks) — the
    zero-overhead guard for instrumentation sites. *)

val emit : t -> Event.t -> unit
(** Record one event. A no-op on an inactive sink. *)

val flush : t -> unit
(** Flush buffered output (file sinks); a no-op elsewhere. *)

val of_fn : (Event.t -> unit) -> t
(** Arbitrary callback sink. *)

val collector : unit -> t
(** Unbounded in-memory sink; read back with {!events}. For tests and
    trace-driven assertions. *)

val ring : capacity:int -> t
(** Bounded in-memory sink keeping the most recent [capacity] events —
    flight-recorder style for long runs. {!events} returns them oldest
    first. *)

val events : t -> Event.t list
(** Recorded events of a {!collector} or {!ring} sink, in emission order.
    Raises [Invalid_argument] for non-retaining sinks. *)

val jsonl : out_channel -> t
(** JSON-lines file sink: one {!Event.to_json} object per line. The caller
    owns the channel; call {!flush} before closing it. *)

val csv : out_channel -> t
(** CSV file sink; writes {!Event.csv_header} immediately, then one row per
    event. *)

val tee : t -> t -> t
(** Fan out to two sinks. Collapses to {!null} when both are inactive;
    {!events} prefers the first retaining side. *)
