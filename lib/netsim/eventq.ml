(* Growable binary heap in struct-of-arrays layout.

   The per-entry record of the original implementation boxed every
   insertion (entry record + boxed time float); at millions of simulated
   events that dominated the minor heap. Times now live in an unboxed
   [float array], sequence numbers and values in parallel arrays, so the
   steady-state add/pop cycle allocates nothing.

   The [vals] array is backed by a physical-equality dummy ([Obj.magic
   ()]): slots outside [0, size) are always reset to it, so a popped
   value is collectable the moment the caller drops it (the original
   kept the migrated root reachable at [heap.(size)], pinning delivered
   packets live). The dummy never escapes: every read is guarded by
   [size]. *)

type 'a t = {
  mutable times : float array;
  mutable seqs : int array;
  mutable vals : 'a array;
  mutable size : int;
  mutable next_seq : int;
}

let dummy : unit -> 'a = fun () -> Obj.magic ()

let create () =
  { times = [||]; seqs = [||]; vals = [||]; size = 0; next_seq = 0 }

let is_empty q = q.size = 0

let length q = q.size

let precedes q i j =
  q.times.(i) < q.times.(j)
  || (q.times.(i) = q.times.(j) && q.seqs.(i) < q.seqs.(j))

let swap q i j =
  let t = q.times.(i) in
  q.times.(i) <- q.times.(j);
  q.times.(j) <- t;
  let s = q.seqs.(i) in
  q.seqs.(i) <- q.seqs.(j);
  q.seqs.(j) <- s;
  let v = q.vals.(i) in
  q.vals.(i) <- q.vals.(j);
  q.vals.(j) <- v

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if precedes q i parent then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.size && precedes q l !smallest then smallest := l;
  if r < q.size && precedes q r !smallest then smallest := r;
  if !smallest <> i then begin
    swap q i !smallest;
    sift_down q !smallest
  end

let grow q =
  if q.size = Array.length q.vals then begin
    let cap = max 16 (2 * q.size) in
    let times = Array.make cap 0.0 in
    let seqs = Array.make cap 0 in
    let vals = Array.make cap (dummy ()) in
    Array.blit q.times 0 times 0 q.size;
    Array.blit q.seqs 0 seqs 0 q.size;
    Array.blit q.vals 0 vals 0 q.size;
    q.times <- times;
    q.seqs <- seqs;
    q.vals <- vals
  end

let[@inline] add q ~time value =
  grow q;
  let i = q.size in
  q.times.(i) <- time;
  q.seqs.(i) <- q.next_seq;
  q.vals.(i) <- value;
  q.next_seq <- q.next_seq + 1;
  q.size <- i + 1;
  sift_up q i

let peek_time q = if q.size = 0 then None else Some q.times.(0)

let[@inline] peek_time_unsafe q = q.times.(0)

(* Remove the root: migrate the last entry into slot 0 and clear the
   vacated slot so the moved value is not retained twice (and the root
   of a now-empty heap is not retained at all). *)
let remove_root q =
  let last = q.size - 1 in
  q.size <- last;
  if last > 0 then begin
    q.times.(0) <- q.times.(last);
    q.seqs.(0) <- q.seqs.(last);
    q.vals.(0) <- q.vals.(last)
  end;
  q.vals.(last) <- dummy ();
  if last > 1 then sift_down q 0

let pop q =
  if q.size = 0 then None
  else begin
    let time = q.times.(0) and v = q.vals.(0) in
    remove_root q;
    Some (time, v)
  end

let[@inline] pop_exn q =
  if q.size = 0 then invalid_arg "Eventq.pop_exn: empty queue";
  let v = q.vals.(0) in
  remove_root q;
  v

let clear q =
  q.size <- 0;
  q.times <- [||];
  q.seqs <- [||];
  q.vals <- [||]
