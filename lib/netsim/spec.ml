(* Shared scanner for the compact command-line spec grammars
   (--fault, --impair, --chaos, --health). The grammars are built from
   the same few shapes — a CH: prefix, comma-separated items,
   NAME=VALUE pairs, @TIME suffixes, A/B value pairs — and every parser
   used to hand-roll them with near-identical code and error strings.
   This module is that code, written once, with every error naming the
   offending fragment, its character position, the spec kind, and the
   full spec string. *)

type ctx = { kind : string; spec : string; pos : int (* -1 = unknown *) }

let ctx ~kind spec = { kind; spec; pos = -1 }
let at c pos = { c with pos }
let ( let* ) = Result.bind

let errf c fmt =
  Printf.ksprintf
    (fun m ->
      Error
        (if c.pos >= 0 then
           Printf.sprintf "%s at char %d in %s spec %S" m c.pos c.kind c.spec
         else Printf.sprintf "%s in %s spec %S" m c.kind c.spec))
    fmt

let float_ c ~what v =
  match float_of_string_opt (String.trim v) with
  | Some f when Float.is_finite f -> Ok f
  | Some _ | None -> errf c "bad %s %S (want a finite number)" what v

let positive c ~what v =
  let* f = float_ c ~what v in
  if f <= 0.0 then errf c "%s must be > 0, got %g" what f else Ok f

let non_negative c ~what v =
  let* f = float_ c ~what v in
  if f < 0.0 then errf c "%s must be >= 0, got %g" what f else Ok f

let prob c ~what v =
  let* p = float_ c ~what v in
  if p < 0.0 || p > 1.0 then
    errf c "%s probability %g not in [0,1]" what p
  else Ok p

let int_ c ~what v =
  match int_of_string_opt (String.trim v) with
  | Some i -> Ok i
  | None -> errf c "bad %s %S (want an integer)" what v

let channel c ~what v =
  let* i = int_ c ~what v in
  if i < 0 then errf c "negative %s %d" what i else Ok i

let channel_prefix c =
  match String.index_opt c.spec ':' with
  | None -> errf c "missing CH: prefix"
  | Some i ->
    let* ch = channel (at c 0) ~what:"channel" (String.sub c.spec 0 i) in
    Ok (ch, String.sub c.spec (i + 1) (String.length c.spec - i - 1))

let items rest = List.map String.trim (String.split_on_char ',' rest)

(* Comma-split [rest] into items, each paired with a ctx positioned at
   the item's first non-blank character. [rest] must be a suffix of the
   ctx's spec (which is what {!channel_prefix} returns and what parsers
   without a prefix pass — the whole spec), so positions are offsets
   into the full source string the user typed. *)
let located c rest =
  let base = String.length c.spec - String.length rest in
  let cur = ref base in
  List.map
    (fun p ->
      let start = !cur in
      cur := !cur + String.length p + 1;
      let lead = ref 0 in
      let n = String.length p in
      while !lead < n && (p.[!lead] = ' ' || p.[!lead] = '\t') do
        incr lead
      done;
      (at c (start + !lead), String.trim p))
    (String.split_on_char ',' rest)

let kv tok =
  match String.index_opt tok '=' with
  | None -> (tok, None)
  | Some i ->
    (String.sub tok 0 i, Some (String.sub tok (i + 1) (String.length tok - i - 1)))

let timed c tok =
  match String.rindex_opt tok '@' with
  | None -> errf c "event %S lacks an @TIME" tok
  | Some i ->
    let* at =
      non_negative c ~what:"time"
        (String.sub tok (i + 1) (String.length tok - i - 1))
    in
    Ok (String.sub tok 0 i, at)

let pair c ~what ~sep v =
  match String.split_on_char sep v with
  | [ a; b ] -> Ok (a, b)
  | _ -> errf c "%s needs exactly two %c-separated fields, got %S" what sep v
