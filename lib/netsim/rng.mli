(** Deterministic pseudo-random number generation for simulations.

    All randomness in the simulator flows through an explicit generator
    value, so that every experiment is reproducible from its seed and
    independent streams can be split off for independent model components
    (loss processes, jitter processes, workloads) without cross-talk. The
    implementation is SplitMix64, which is statistically strong enough for
    simulation workloads and trivially portable. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator. Equal seeds give equal
    streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Use one split per stochastic model component. *)

val stream : seed:int -> int -> t
(** [stream ~seed index] is the [index]-th independent generator derived
    from the master [seed]. Unlike {!split}, the result depends only on
    the [(seed, index)] pair — not on how many other streams were
    derived before it — so it is bit-identical across runs and across
    different shard counts. Used for per-shard streams in sharded
    fleets. Requires [index >= 0]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. Requires [x >= 0]. *)

val bool : t -> bool
(** Fair coin flip. *)

val bernoulli : t -> p:float -> bool
(** [bernoulli t ~p] is [true] with probability [p]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed value with the given mean. *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform in [\[lo, hi)]. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
