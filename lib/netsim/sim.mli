(** Discrete-event simulation engine.

    A simulation is a virtual clock plus a queue of pending events. Model
    components schedule closures at future instants; [run] drains the queue
    in time order, advancing the clock. Time is in seconds of simulated
    time. The engine is single-threaded and deterministic. *)

type t

type engine =
  | Heap  (** Growable binary heap: O(log n), the reference engine. *)
  | Calendar
      (** Calendar queue: O(1) amortized for the clustered near-future
          events links generate. Identical observable behavior. *)

val engine_name : engine -> string
val engine_of_name : string -> engine option

val create : ?engine:engine -> unit -> t
(** Fresh simulation with the clock at 0. [engine] selects the event
    queue implementation (default [Heap]); both engines produce
    byte-identical seeded runs. *)

val engine : t -> engine
(** Which event-queue engine this simulation runs on. *)

val now : t -> float
(** Current simulated time. *)

val schedule : t -> at:float -> (unit -> unit) -> unit
(** [schedule sim ~at f] runs [f] when the clock reaches [at]. [at] must
    not be in the past ([at >= now sim]); raises [Invalid_argument]
    otherwise. *)

val schedule_after : t -> delay:float -> (unit -> unit) -> unit
(** [schedule_after sim ~delay f] is [schedule sim ~at:(now sim +. delay)].
    [delay] must be non-negative. *)

val run : t -> unit
(** Drain all events. Returns when the queue is empty. *)

val run_until : t -> float -> unit
(** [run_until sim horizon] processes events with time [<= horizon], then
    advances the clock to [horizon] (even if no event fired exactly
    there). Events beyond the horizon stay queued. If {!stop} fires
    mid-run the clock stays at the stopping event's time — the run did
    not reach the horizon, and a caller resuming after the stop must see
    the time it actually stopped at. *)

val step : t -> bool
(** Process a single event. Returns [false] if the queue was empty. *)

val pending : t -> int
(** Number of queued events. *)

val stop : t -> unit
(** Ask a running [run]/[run_until] to return after the current event.
    Queued events are kept. *)
