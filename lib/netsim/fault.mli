(** Fault injection against simulated links.

    The striping protocol is meant to run over real, failure-prone
    interfaces (§6.1); this module supplies the failures. A fault is a
    link event placed on the simulator clock: carrier loss and recovery
    ([Down]/[Up] — a down link drops everything silently, see
    {!Link.set_up}), service-rate degradation, and burst-loss episodes
    that temporarily swap a harsher loss process onto the link. Schedules
    can be written out explicitly, parsed from a compact command-line
    spec, or drawn from a seeded random availability model for soak
    testing. Sender crash/reboot injection is a scheduled closure, so the
    protocol layer above decides what "reboot" means (typically
    reinitializing striper state and emitting the §5 reset barrier). *)

type event =
  | Down  (** Carrier loss: the link drops everything until [Up]. *)
  | Up  (** Carrier recovery. *)
  | Rate of float  (** Set the service rate (bits per second, > 0). *)
  | Burst_loss of { loss : Loss.t; duration : float }
      (** Install [loss] for [duration] seconds, then restore whatever
          loss process the link had when the burst began. *)

type action = { at : float; channel : int; event : event }
(** One scheduled fault: [event] hits channel [channel] at time [at]. *)

val inject : Sim.t -> 'a Link.t -> at:float -> event -> unit
(** Schedule one event against one link. Raises [Invalid_argument] for a
    non-positive [Rate] or a negative burst duration. *)

val apply : Sim.t -> links:'a Link.t array -> action list -> unit
(** Schedule a whole fault script against a channel array. Raises
    [Invalid_argument] if an action names a channel out of range. *)

val down_up : Sim.t -> 'a Link.t -> down_at:float -> up_at:float -> unit
(** One outage: carrier loss at [down_at], recovery at [up_at]. *)

val flap : Sim.t -> 'a Link.t -> first_down:float -> period:float ->
  down_for:float -> until_:float -> unit
(** Periodic flapping: starting at [first_down], the link goes down for
    [down_for] seconds out of every [period], until [until_]. *)

val crash : Sim.t -> at:float -> (unit -> unit) -> unit
(** Sender crash/reboot injection: run the given reboot procedure at
    [at]. The caller supplies what rebooting means — for the striping
    stack, reinitializing the striper mid-run and emitting the §5 reset
    barrier ({!Stripe_core.Striper.send_reset}) so the receiver
    resynchronizes from scratch. *)

val random_schedule :
  rng:Rng.t -> n_channels:int -> horizon:float -> mtbf:float ->
  mttr:float -> action list
(** Seeded random fault script over [n_channels] channels: each channel
    alternates exponentially distributed up times (mean [mtbf]) and down
    times (mean [mttr]) from time 0 to [horizon], and any channel still
    down at the horizon is brought back up there, so runs always end with
    every channel alive. Returns the actions sorted by time. Equal seeds
    give equal schedules. *)

val group_down_up :
  Sim.t ->
  links:'a Link.t array ->
  channels:int list ->
  down_at:float ->
  up_at:float ->
  unit
(** One shared-risk-group outage: every channel in [channels] loses
    carrier at [down_at] and recovers at [up_at] — the correlated
    failure of links riding one physical facility (conduit, wavelength,
    line card). Raises [Invalid_argument] on a bad channel or an
    inverted interval. *)

val random_group_schedule :
  rng:Rng.t ->
  channels:int list ->
  horizon:float ->
  mtbf:float ->
  mttr:float ->
  action list
(** Like {!random_schedule}, but one two-state availability process
    drives the whole group: every channel in [channels] fails and
    recovers at the same instants. Any outage still open at [horizon]
    is closed there. Equal seeds give equal schedules. *)

val parse_spec : string -> (action list, string) result
(** Parse a command-line fault spec: [CH:EVENT@T[,EVENT@T...]] where
    [EVENT] is [down], [up], [rate=BPS], or [burst=P/DUR] (Bernoulli loss
    probability [P] for [DUR] seconds). Example:
    ["1:down@0.5,up@1.5,burst=0.3/0.2@2.0"]. *)

val pp_action : Format.formatter -> action -> unit
