type engine = Heap | Calendar

let engine_name = function Heap -> "heap" | Calendar -> "calendar"

let engine_of_name = function
  | "heap" -> Some Heap
  | "calendar" -> Some Calendar
  | _ -> None

type events =
  | Qheap of (unit -> unit) Eventq.t
  | Qcal of (unit -> unit) Calendar_queue.t

type t = {
  clock : float array;
      (* Single-cell unboxed store: assigning a mutable float field of a
         mixed record boxes on every event, a float-array store does
         not. *)
  mutable stopped : bool;
  events : events;
}

let create ?(engine = Heap) () =
  {
    clock = [| 0.0 |];
    stopped = false;
    events =
      (match engine with
      | Heap -> Qheap (Eventq.create ())
      | Calendar -> Qcal (Calendar_queue.create ()));
  }

let engine t = match t.events with Qheap _ -> Heap | Qcal _ -> Calendar

let[@inline] now t = t.clock.(0)

let[@inline] schedule t ~at f =
  if at < t.clock.(0) then
    invalid_arg
      (Printf.sprintf "Sim.schedule: time %g is before now (%g)" at
         t.clock.(0));
  match t.events with
  | Qheap q -> Eventq.add q ~time:at f
  | Qcal q -> Calendar_queue.add q ~time:at f

let[@inline] schedule_after t ~delay f =
  if delay < 0.0 then invalid_arg "Sim.schedule_after: negative delay";
  schedule t ~at:(t.clock.(0) +. delay) f

let step t =
  match t.events with
  | Qheap q ->
    if Eventq.is_empty q then false
    else begin
      t.clock.(0) <- Eventq.peek_time_unsafe q;
      (Eventq.pop_exn q) ();
      true
    end
  | Qcal q ->
    if Calendar_queue.is_empty q then false
    else begin
      t.clock.(0) <- Calendar_queue.peek_time_unsafe q;
      (Calendar_queue.pop_exn q) ();
      true
    end

let run t =
  t.stopped <- false;
  let continue = ref true in
  while !continue do
    if t.stopped then continue := false else continue := step t
  done

let run_until t horizon =
  t.stopped <- false;
  let continue = ref true in
  let next_time () =
    match t.events with
    | Qheap q ->
      if Eventq.is_empty q then infinity else Eventq.peek_time_unsafe q
    | Qcal q ->
      if Calendar_queue.is_empty q then infinity
      else Calendar_queue.peek_time_unsafe q
  in
  while !continue do
    if t.stopped then continue := false
    else if next_time () <= horizon then ignore (step t)
    else continue := false
  done;
  (* Fast-forward to the horizon only when the run actually reached it: a
     [stop] mid-run leaves the clock at the stop point, so the caller can
     resume from where the stopping event fired instead of silently
     losing the rest of the window. *)
  if (not t.stopped) && t.clock.(0) < horizon then t.clock.(0) <- horizon

let pending t =
  match t.events with
  | Qheap q -> Eventq.length q
  | Qcal q -> Calendar_queue.length q

let stop t = t.stopped <- true
